// mbq_bench — benchmark corpus generator, replay harness, and scorer.
//
// Generate a versioned on-disk corpus of MaxCut instances (SK /
// Erdos-Renyi / random-regular / hardware-grid families):
//
//   mbq_bench generate --out corpus/ [--families sk,er,regular,grid]
//             [--sizes 4,6,8] [--instances 2] [--seed S] [--shots 4096]
//             [--depth 1] [--name NAME]
//
// Replay a corpus through any execution configuration and emit a scored
// JSON report (Hellinger fidelity / TVD / chi-squared against the exact
// reference distribution, approximation ratio, outcome-stream digest):
//
//   mbq_bench run --corpus corpus/ --report report.json
//             [--backend router] [--processes N] [--endpoint EP]
//             [--worker PATH] [--seed S] [--noise X] [--shots N]
//             [--deterministic] [--quiet]
//
// --deterministic omits wall-clock and execution-context fields, so two
// such reports from equivalent runs (any process count, local or via a
// daemon at --endpoint) are byte-identical — `cmp` is the CI gate.
//
// Summarize a report per family:
//
//   mbq_bench score --report report.json
//
// See docs/benchmarks.md for the corpus format and scoring definitions.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mbq/api/registry.h"
#include "mbq/bench/corpus.h"
#include "mbq/bench/generators.h"
#include "mbq/bench/harness.h"
#include "mbq/bench/report.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/speccomp/json.h"

namespace {

int usage(int code) {
  std::cerr <<
      "usage: mbq_bench generate --out DIR [--families LIST] [--sizes LIST]\n"
      "                 [--instances N] [--seed S] [--shots N] [--depth P]\n"
      "                 [--name NAME] [--json]\n"
      "       mbq_bench run --corpus DIR --report FILE [--backend NAME]\n"
      "                 [--processes N] [--endpoint ENDPOINT] [--worker PATH]\n"
      "                 [--seed S] [--noise X] [--shots N] [--deterministic]\n"
      "                 [--quiet]\n"
      "       mbq_bench score --report FILE\n"
      "\n"
      "Families: sk, er, regular, grid (default: all four).  Sizes and\n"
      "families are comma-separated lists; sizes up to 28 qubits score\n"
      "against the exact dense reference (larger corpora generate fine,\n"
      "but `run` refuses to score them with a clear error).  ENDPOINT is\n"
      "unix:/path or tcp:host:port (a running mbqd).  --deterministic\n"
      "omits wall-clock and execution-context fields so equivalent runs\n"
      "produce byte-identical reports.  generate --json also writes each\n"
      "spec as instances/<id>.spec.json text (speccomp JSON codec) next\n"
      "to the binary frame.\n";
  return code;
}

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_generate(int argc, char** argv) {
  using namespace mbq;

  std::string out_dir;
  std::string name = "mbq-bench";
  std::string families_csv = "sk,er,regular,grid";
  std::string sizes_csv = "4,6,8";
  int instances = 2;
  std::uint64_t seed = 1;
  std::uint64_t shots = 4096;
  int depth = 1;
  bool json = false;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "mbq_bench: " << arg << " needs a value\n";
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_dir = value();
    } else if (arg == "--name") {
      name = value();
    } else if (arg == "--families") {
      families_csv = value();
    } else if (arg == "--sizes") {
      sizes_csv = value();
    } else if (arg == "--instances") {
      if (!parse_int(value(), instances)) return usage(2);
    } else if (arg == "--seed") {
      if (!parse_u64(value(), seed)) return usage(2);
    } else if (arg == "--shots") {
      if (!parse_u64(value(), shots)) return usage(2);
    } else if (arg == "--depth") {
      if (!parse_int(value(), depth)) return usage(2);
    } else if (arg == "--json") {
      json = true;
    } else {
      std::cerr << "mbq_bench: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (out_dir.empty()) {
    std::cerr << "mbq_bench: generate needs --out DIR\n";
    return usage(2);
  }
  if (instances < 1 || depth < 1 || shots < 1) {
    std::cerr << "mbq_bench: --instances/--depth/--shots must be >= 1\n";
    return usage(2);
  }

  std::vector<bench::Family> families;
  for (const std::string& f : split_list(families_csv))
    families.push_back(bench::family_from_name(f));
  std::vector<int> sizes;
  for (const std::string& s : split_list(sizes_csv)) {
    int n = 0;
    if (!parse_int(s.c_str(), n) || n < 2) {
      std::cerr << "mbq_bench: bad size '" << s << "'\n";
      return usage(2);
    }
    sizes.push_back(n);
  }
  if (families.empty() || sizes.empty()) {
    std::cerr << "mbq_bench: --families and --sizes must be non-empty\n";
    return usage(2);
  }

  const qaoa::Angles angles = qaoa::Angles::linear_ramp(depth);

  bench::Corpus corpus;
  corpus.name = name;
  for (const bench::Family family : families) {
    for (const int n : sizes) {
      for (int k = 0; k < instances; ++k) {
        bench::Instance inst;
        inst.family = family;
        inst.num_qubits = n;
        inst.index = static_cast<std::uint64_t>(k);
        inst.id = bench::family_name(family) + "-n" + std::to_string(n) +
                  "-i" + std::to_string(k);
        inst.angles = angles;
        inst.shots = shots;
        inst.spec = bench::make_instance(family, n, inst.index, seed);
        corpus.instances.push_back(std::move(inst));
      }
    }
  }
  bench::write_corpus(out_dir, corpus);
  if (json) {
    // Text twins of the binary frames, for non-C++ consumers; read back
    // with speccomp::spec_from_json or `mbq_spec encode`.
    for (const bench::Instance& inst : corpus.instances) {
      const std::filesystem::path path = std::filesystem::path(out_dir) /
                                         "instances" /
                                         (inst.id + ".spec.json");
      std::ofstream os(path, std::ios::trunc);
      if (!os.good()) {
        std::cerr << "mbq_bench: cannot open '" << path.string() << "'\n";
        return 1;
      }
      os << speccomp::spec_to_json(inst.spec);
    }
  }
  std::cout << "mbq_bench: wrote " << corpus.instances.size()
            << " instances to " << out_dir << " (seed " << seed << ")"
            << (json ? " with JSON spec twins" : "") << "\n";
  return 0;
}

int cmd_run(int argc, char** argv) {
  using namespace mbq;

  std::string corpus_dir;
  std::string report_path;
  bool quiet = false;
  bench::RunOptions opts;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "mbq_bench: " << arg << " needs a value\n";
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus_dir = value();
    } else if (arg == "--report") {
      report_path = value();
    } else if (arg == "--backend") {
      opts.backend = value();
    } else if (arg == "--processes") {
      if (!parse_int(value(), opts.processes)) return usage(2);
    } else if (arg == "--endpoint") {
      opts.endpoint = value();
    } else if (arg == "--worker") {
      opts.worker_path = value();
    } else if (arg == "--seed") {
      if (!parse_u64(value(), opts.seed)) return usage(2);
    } else if (arg == "--noise") {
      double x = 0.0;
      if (!parse_double(value(), x)) return usage(2);
      opts.noise = x;
    } else if (arg == "--shots") {
      if (!parse_u64(value(), opts.shots_override)) return usage(2);
    } else if (arg == "--deterministic") {
      opts.timing = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "mbq_bench: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (corpus_dir.empty() || report_path.empty()) {
    std::cerr << "mbq_bench: run needs --corpus DIR and --report FILE\n";
    return usage(2);
  }
  // Reject unknown backends before touching the corpus: failing on argv
  // beats failing mid-replay after minutes of scored instances.
  if (!api::BackendRegistry::instance().contains(opts.backend)) {
    std::cerr << "mbq_bench: unknown backend '" << opts.backend
              << "' (known:";
    for (const std::string& name : api::BackendRegistry::instance().names())
      std::cerr << " " << name;
    std::cerr << ")\n";
    return usage(2);
  }

  if (!quiet) {
    opts.progress = [](const bench::InstanceResult& r) {
      std::fprintf(stderr, "mbq_bench: %-16s fidelity=%.4f ratio=%.4f",
                   r.id.c_str(), r.hellinger_fidelity, r.approximation_ratio);
      if (r.shots_per_sec >= 0.0)
        std::fprintf(stderr, " %.0f shots/s", r.shots_per_sec);
      std::fprintf(stderr, "\n");
    };
  }

  const bench::Corpus corpus = bench::read_corpus(corpus_dir);
  const bench::Report report = bench::run_corpus(corpus, opts);
  bench::write_report(report_path, report);
  std::cout << "mbq_bench: scored " << report.instances.size()
            << " instances -> " << report_path << "\n";
  return 0;
}

int cmd_score(int argc, char** argv) {
  using namespace mbq;

  std::string report_path;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "mbq_bench: --report needs a value\n";
        return usage(2);
      }
      report_path = argv[++i];
    } else {
      std::cerr << "mbq_bench: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (report_path.empty()) {
    std::cerr << "mbq_bench: score needs --report FILE\n";
    return usage(2);
  }

  const bench::Report report = bench::read_report(report_path);
  std::printf("corpus:  %s\nbackend: %s  seed: %llu  noise: %g\n\n",
              report.corpus.c_str(), report.backend.c_str(),
              static_cast<unsigned long long>(report.seed), report.noise);
  std::printf("%-10s %9s %14s %13s %10s\n", "family", "instances",
              "mean_fidelity", "min_fidelity", "mean_ratio");
  for (const bench::FamilySummary& s : bench::summarize(report))
    std::printf("%-10s %9d %14.4f %13.4f %10.4f\n",
                bench::family_name(s.family).c_str(), s.instances,
                s.mean_fidelity, s.min_fidelity, s.mean_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") return usage(0);
  try {
    if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
    if (cmd == "run") return cmd_run(argc - 2, argv + 2);
    if (cmd == "score") return cmd_score(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::cerr << "mbq_bench: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "mbq_bench: unknown subcommand '" << cmd << "'\n";
  return usage(2);
}
