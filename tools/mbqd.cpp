// mbqd — the persistent mbq serving daemon.
//
// Serve mode (the default) binds the requested endpoints, spawns the
// worker fleet and runs until SIGINT/SIGTERM:
//
//   mbqd --listen unix:/tmp/mbqd.sock --listen tcp:localhost:7711
//        [--workers 4]
//
// Stats mode connects to a RUNNING daemon as a client and prints its
// counters (one shot; wire it to watch(1) for a live view):
//
//   mbqd --stats --endpoint unix:/tmp/mbqd.sock
//
// Clients are api::Sessions with SessionOptions::daemon_endpoint (or
// MBQ_DAEMON_ENDPOINT) pointing at any of the listen endpoints; see
// docs/serving.md for the deployment story.

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "mbq/serve/client.h"
#include "mbq/serve/daemon.h"

namespace {

volatile sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(int code) {
  std::cerr <<
      "usage: mbqd [--listen ENDPOINT]... [--workers N] [--name NAME]\n"
      "            [--max-pending N] [--slices-per-request N]\n"
      "            [--worker-timeout-ms N] [--worker PATH]\n"
      "       mbqd --stats --endpoint ENDPOINT\n"
      "\n"
      "ENDPOINT is unix:/path/to.sock or tcp:host:port (tcp port 0 binds\n"
      "an ephemeral port, printed at startup).  Default listen endpoint:\n"
      "unix:/tmp/mbqd.sock.  --workers 0 reads MBQ_NUM_PROCESSES\n"
      "(default 2); --worker-timeout-ms -1 reads MBQ_WORKER_TIMEOUT_MS.\n";
  return code;
}

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbq;

  bool stats_mode = false;
  std::string stats_endpoint;
  serve::DaemonOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "mbqd: " << arg << " needs a value\n";
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--stats") {
      stats_mode = true;
    } else if (arg == "--endpoint") {
      stats_endpoint = value();
    } else if (arg == "--listen") {
      opts.endpoints.emplace_back(value());
    } else if (arg == "--workers") {
      if (!parse_int(value(), opts.workers)) return usage(2);
    } else if (arg == "--name") {
      opts.name = value();
    } else if (arg == "--max-pending") {
      if (!parse_int(value(), opts.max_pending_requests)) return usage(2);
    } else if (arg == "--slices-per-request") {
      if (!parse_int(value(), opts.max_slices_per_request)) return usage(2);
    } else if (arg == "--worker-timeout-ms") {
      if (!parse_int(value(), opts.worker_timeout_ms)) return usage(2);
    } else if (arg == "--worker") {
      opts.worker_path = value();
    } else {
      std::cerr << "mbqd: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }

  if (stats_mode) {
    if (stats_endpoint.empty()) {
      if (const char* env = std::getenv("MBQ_DAEMON_ENDPOINT"))
        stats_endpoint = env;
    }
    if (stats_endpoint.empty()) {
      std::cerr << "mbqd: --stats needs --endpoint (or "
                   "MBQ_DAEMON_ENDPOINT)\n";
      return usage(2);
    }
    try {
      serve::DaemonClient client(stats_endpoint, "mbqd-stats");
      std::cout << serve::format_stats(client.stats());
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "mbqd: " << e.what() << "\n";
      return 1;
    }
  }

  if (opts.endpoints.empty()) opts.endpoints.push_back("unix:/tmp/mbqd.sock");

  try {
    serve::Daemon daemon(std::move(opts));
    daemon.start();
    for (const serve::Endpoint& ep : daemon.endpoints())
      std::cout << "mbqd: listening on " << ep.to_string() << "\n";
    std::cout << "mbqd: serving with " << daemon.workers() << " workers\n"
              << std::flush;

    struct sigaction sa {};
    sa.sa_handler = on_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    while (g_stop == 0 && daemon.running()) ::pause();

    std::cout << "mbqd: shutting down\n";
    daemon.stop();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mbqd: " << e.what() << "\n";
    return 1;
  }
}
