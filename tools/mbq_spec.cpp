// mbq_spec — WorkloadSpec codec and spec-compiler inspection CLI.
//
//   mbq_spec encode  [--in F] [--out F]            JSON text -> binary frame
//   mbq_spec decode  [--in F] [--out F]            binary frame -> JSON text
//   mbq_spec compile [--opt MODE] [--in F] [--out F]
//                                                  run the pass pipeline and
//                                                  emit the optimized spec
//                                                  as JSON
//   mbq_spec stats   [--opt MODE] [--in F]         run the pipeline and print
//                                                  the per-pass effect table
//
// --in/--out default to "-" (stdin/stdout).  compile/stats accept either
// codec on input (a frame starting with '{' is JSON, anything else is
// binary).  MODE is an MBQ_SPEC_OPT value: on, off, all, or a comma list
// of {canonicalize, peephole, fuse, schedule}; default is the
// environment's MBQ_SPEC_OPT (or "on").
//
// Round-trip smoke (CI):  mbq_spec encode < spec.json | mbq_spec decode
// reproduces the canonical JSON byte-for-byte.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mbq/api/workload_spec.h"
#include "mbq/common/error.h"
#include "mbq/speccomp/json.h"
#include "mbq/speccomp/speccomp.h"

namespace {

using namespace mbq;

int usage() {
  std::cerr
      << "usage: mbq_spec <encode|decode|compile|stats> [options]\n"
         "  encode  [--in F] [--out F]          JSON spec -> binary frame\n"
         "  decode  [--in F] [--out F]          binary frame -> JSON spec\n"
         "  compile [--opt MODE] [--in F] [--out F]\n"
         "                                      optimize, emit JSON spec\n"
         "  stats   [--opt MODE] [--in F]       optimize, print pass table\n"
         "--in/--out default to - (stdin/stdout); compile/stats autodetect\n"
         "the input codec.  MODE: on | off | all | comma list of\n"
         "{canonicalize, peephole, fuse, schedule}.\n";
  return 2;
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream is(path, std::ios::binary);
  MBQ_REQUIRE(is.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void write_all(const std::string& path, const std::string& data) {
  if (path == "-") {
    std::cout.write(data.data(), static_cast<std::streamsize>(data.size()));
    std::cout.flush();
    MBQ_REQUIRE(std::cout.good(), "short write to stdout");
    return;
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MBQ_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
  MBQ_REQUIRE(os.good(), "short write to '" << path << "'");
}

std::string frame_to_string(const std::vector<std::byte>& frame) {
  return std::string(reinterpret_cast<const char*>(frame.data()),
                     frame.size());
}

api::WorkloadSpec parse_binary(const std::string& data) {
  return api::parse_spec(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(data.data()), data.size()));
}

/// compile/stats input: '{' (after optional whitespace) means JSON.
api::WorkloadSpec parse_either(const std::string& data) {
  for (const char c : data) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '{' ? speccomp::spec_from_json(data) : parse_binary(data);
  }
  throw Error("empty spec input");
}

struct Args {
  std::string in = "-";
  std::string out = "-";
  speccomp::SpecCompileOptions opt = speccomp::SpecCompileOptions::from_env();
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return false;  // every flag takes a value
    const std::string value = argv[++i];
    if (flag == "--in") {
      a.in = value;
    } else if (flag == "--out") {
      a.out = value;
    } else if (flag == "--opt") {
      a.opt = speccomp::SpecCompileOptions::parse(value);
    } else {
      return false;
    }
  }
  return true;
}

void print_stats(const speccomp::CompiledSpec& compiled) {
  std::printf("%-14s %-8s %-8s %s\n", "pass", "enabled", "changed", "effect");
  for (const speccomp::PassStats& s : compiled.stats) {
    std::string effect;
    const auto add = [&effect](const char* label, std::int64_t v) {
      if (v == 0) return;
      effect += effect.empty() ? "" : ", ";
      effect += label;
      effect += "=" + std::to_string(v);
    };
    add("terms_dropped", s.terms_dropped);
    add("terms_merged", s.terms_merged);
    add("gates_eliminated", s.gates_eliminated);
    add("gates_fused", s.gates_fused);
    add("wires_deferrable", s.wires_deferrable);
    add("wires_total", s.wires_total);
    if (effect.empty()) effect = "-";
    std::printf("%-14s %-8s %-8s %s\n", s.pass.c_str(),
                s.enabled ? "yes" : "no", s.changed ? "yes" : "no",
                effect.c_str());
  }
  std::printf("fingerprint (raw spec bytes): 0x%016llx\n",
              static_cast<unsigned long long>(
                  api::spec_fingerprint(compiled.spec)));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  if (!parse_args(argc, argv, args)) return usage();

  try {
    if (cmd == "encode") {
      const api::WorkloadSpec spec = speccomp::spec_from_json(read_all(args.in));
      write_all(args.out, frame_to_string(api::serialize_spec(spec)));
    } else if (cmd == "decode") {
      const api::WorkloadSpec spec = parse_binary(read_all(args.in));
      write_all(args.out, speccomp::spec_to_json(spec));
    } else if (cmd == "compile") {
      const api::WorkloadSpec spec = parse_either(read_all(args.in));
      const speccomp::CompiledSpec compiled =
          speccomp::compile_spec(spec, args.opt);
      write_all(args.out, speccomp::spec_to_json(compiled.spec));
    } else if (cmd == "stats") {
      const api::WorkloadSpec spec = parse_either(read_all(args.in));
      print_stats(speccomp::compile_spec(spec, args.opt));
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "mbq_spec: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
