// mbq_worker — the shard worker process entrypoint.
//
// Spawned by shard::WorkerPool with one argument: the file descriptor of
// its AF_UNIX channel to the parent.  The loop is the whole program:
// read a request frame, execute it (shard::execute_request builds the
// backend from the registry and replays the slice's Rng streams), write
// the response frame, repeat until the parent closes the channel.
//
// Determinism: requests carry (seed, stream indices), never generator
// state, so results are independent of which worker runs a slice and of
// everything this process did before.  Workers run their slices
// serially — process count is the parallelism axis here, and results
// are bit-identical regardless (set MBQ_WORKER_THREADS to opt into
// intra-worker OpenMP threading on large registers).

#include <unistd.h>

#include <cstdlib>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>

#include "mbq/api/workload_spec.h"
#include "mbq/common/parallel.h"
#include "mbq/shard/protocol.h"
#include "mbq/shard/task.h"
#include "mbq/speccomp/json.h"

namespace {

/// --decode-spec: read a JSON workload spec on stdin, rebuild it with
/// the same decode path a shard request would use, and answer with the
/// canonical JSON plus the wire fingerprint on stdout.  Exists so
/// non-C++ clients (and the CI smoke) can verify that the exact bytes a
/// worker process would execute match what they authored — the
/// worker-side half of the text codec.
int decode_spec_stdin() {
  try {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    const mbq::api::WorkloadSpec spec =
        mbq::speccomp::spec_from_json(buf.str());
    // Through the binary wire codec, exactly like a shard frame.
    const mbq::api::WorkloadSpec rebuilt =
        mbq::api::parse_spec(mbq::api::serialize_spec(spec));
    char fp[32];
    std::snprintf(fp, sizeof fp, "0x%016llx",
                  static_cast<unsigned long long>(
                      mbq::api::spec_fingerprint(rebuilt)));
    std::cout << "spec_fingerprint " << fp << "\n"
              << mbq::speccomp::spec_to_json(rebuilt);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mbq_worker: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mbq;

  if (argc == 2 && std::string(argv[1]) == "--decode-spec")
    return decode_spec_stdin();

  if (argc != 2) {
    std::cerr << "usage: mbq_worker <channel-fd> | mbq_worker --decode-spec\n"
              << "(spawned by mbq::shard::WorkerPool; --decode-spec reads a "
                 "JSON spec on stdin and echoes the canonical form)\n";
    return 2;
  }
  const int fd = std::atoi(argv[1]);
  if (fd < 0 || std::to_string(fd) != argv[1]) {
    std::cerr << "mbq_worker: invalid channel fd '" << argv[1] << "'\n";
    return 2;
  }

  // Workers default to one thread apiece: the pool already keys its
  // worker count to the cores it wants used, and nested OpenMP teams in
  // every child would oversubscribe the box.
  int worker_threads = 1;
  if (const char* env = std::getenv("MBQ_WORKER_THREADS"))
    if (const int n = std::atoi(env); n >= 1) worker_threads = n;
  set_num_threads(worker_threads);

  try {
    while (true) {
      const auto frame = shard::read_frame(fd);
      if (!frame.has_value()) break;  // parent closed the channel: done
      shard::Response response;
      try {
        response = shard::execute_request(shard::decode_request(*frame));
      } catch (const std::exception& e) {
        // decode_request threw: answer with an error rather than dying,
        // so the parent gets the message instead of a broken channel.
        response.ok = false;
        response.error_message = e.what();
      }
      const auto out = shard::encode_response(response);
      shard::write_frame(fd, out);
    }
  } catch (const std::exception& e) {
    // Channel-level failure (parent died mid-frame, protocol corruption):
    // nothing sensible to answer, so report and exit nonzero.
    std::cerr << "mbq_worker: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
