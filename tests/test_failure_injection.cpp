// Failure-injection sweep: malformed inputs anywhere in the stack must
// throw mbq::Error with context, never crash or silently misbehave.

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/tensor.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/dynamic_statevector.h"
#include "mbq/sim/statevector.h"
#include "mbq/stab/tableau.h"
#include "mbq/zx/diagram.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq {
namespace {

TEST(FailureInjection, StatevectorLimits) {
  EXPECT_THROW(Statevector(-1), Error);
  EXPECT_THROW(Statevector(29), Error);
  Statevector sv(2);
  EXPECT_THROW(sv.apply_h(2), Error);
  EXPECT_THROW(sv.apply_cz(0, 0), Error);
  EXPECT_THROW(sv.apply_exp_zs(0.1, {5}), Error);
  EXPECT_THROW(sv.expectation_diagonal(std::vector<real>(3)), Error);
  Rng rng(1);
  EXPECT_THROW(sv.measure(0, rng, 2), Error);
}

TEST(FailureInjection, DynamicStatevectorLifecycle) {
  DynamicStatevector dsv;
  EXPECT_THROW(dsv.apply_h(0), Error);  // wire not live
  dsv.add_wire(0);
  EXPECT_THROW(dsv.add_wire(0), Error);
  EXPECT_THROW(dsv.apply_cz(0, 0), Error);
  EXPECT_THROW(dsv.add_wire_state(1, 0.0, 0.0), Error);  // zero state
  Rng rng(2);
  dsv.measure_remove(0, measurement_basis(MeasBasis::X, 0), rng);
  EXPECT_THROW(dsv.apply_h(0), Error);  // removed
}

TEST(FailureInjection, HamiltonianShape) {
  EXPECT_THROW(qaoa::CostHamiltonian(0), Error);
  EXPECT_THROW(qaoa::CostHamiltonian(64), Error);
  qaoa::CostHamiltonian c(3);
  EXPECT_THROW(c.add_term({3}, 1.0), Error);
  EXPECT_THROW(qaoa::CostHamiltonian::qubo(2, {1.0}, {}), Error);
  EXPECT_THROW(qaoa::CostHamiltonian::qubo(2, {1.0, 2.0}, {{{0, 0}, 1.0}}),
               Error);
  const Graph g = cycle_graph(4);
  EXPECT_THROW(qaoa::CostHamiltonian::maxcut_weighted(g, {1.0}), Error);
}

TEST(FailureInjection, TableauMisuse) {
  EXPECT_THROW(Tableau(0), Error);
  Tableau t(2);
  EXPECT_THROW(t.apply_h(2), Error);
  EXPECT_THROW(t.apply_cx(1, 1), Error);
  EXPECT_THROW(t.expectation(PauliString("XXX")), Error);  // width mismatch
  EXPECT_THROW(t.expectation_zs({7}), Error);
  EXPECT_THROW(t.stabilizer_row(2), Error);
}

TEST(FailureInjection, ZxDiagramMisuse) {
  zx::Diagram d;
  EXPECT_THROW(d.remove_node(0), Error);
  const int a = d.add_z(0.1);
  EXPECT_THROW(d.set_phase(99, 0.0), Error);
  const int h = d.add_hbox();
  EXPECT_THROW(d.set_phase(h, 0.2), Error);  // H-boxes carry no spider phase
  d.add_edge(a, h);
  const int e = d.edges_between(a, h)[0];
  d.remove_edge(e);
  EXPECT_THROW(d.remove_edge(e), Error);  // double removal
}

TEST(FailureInjection, TensorGuards) {
  EXPECT_THROW(Tensor({0}, std::vector<cplx>(4)), Error);  // size mismatch
  const Tensor t({0, 1}, std::vector<cplx>(4, cplx{1, 0}));
  EXPECT_THROW(t.leg_position(9), Error);
  EXPECT_THROW(t.self_contract(0, 0), Error);
  const Tensor u({5}, std::vector<cplx>(2, cplx{1, 0}));
  EXPECT_THROW(Tensor::proportionality_distance(t, u), Error);
}

TEST(FailureInjection, RunnerForcedBranchImpossible) {
  // Forcing the X-measurement of |+> to outcome 1 has probability 0.
  mbqc::Pattern p;
  p.add_prep(0);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.set_outputs({});
  mbqc::RunOptions opt;
  opt.forced = {1};
  Rng rng(3);
  EXPECT_THROW(mbqc::run(p, rng, opt), Error);
}

TEST(FailureInjection, AnglesAndCircuitShape) {
  EXPECT_THROW(qaoa::Angles({}, {}), Error);
  EXPECT_THROW(qaoa::Angles::from_flat({0.1, 0.2, 0.3}), Error);
  EXPECT_THROW(Circuit(0), Error);
  Circuit c(2);
  EXPECT_THROW(c.controlled_exp_x(0, {0}, 0.1, 0), Error);  // repeated qubit
  EXPECT_THROW(c.controlled_exp_x(0, {1}, 0.1, 2), Error);  // bad ctrl value
}

TEST(FailureInjection, CompilerRejectsWideExhaustiveEnumeration) {
  // run_all_branches guards against exponential blowup.
  Rng rng(4);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(4));
  const auto cp = core::compile_qaoa(cost, qaoa::Angles::random(2, rng));
  EXPECT_GT(cp.pattern.num_measurements(), 12);
  EXPECT_THROW(mbqc::run_all_branches(cp.pattern), Error);
}

TEST(FailureInjection, GraphGuards) {
  EXPECT_THROW(Graph(-1), Error);
  Graph g(3);
  EXPECT_THROW(g.neighbors(3), Error);
  EXPECT_THROW(g.common_neighbor_count(0, 5), Error);
  Rng rng(5);
  EXPECT_THROW(random_regular_graph(4, 4, rng), Error);  // d >= n
}

}  // namespace
}  // namespace mbq
