// Flow and generalized flow: existence on well-structured patterns,
// verification of the defining conditions, and absence on graphs that
// cannot support determinism.

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/flow.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/standardize.h"

namespace mbq::mbqc {
namespace {

/// Open graph of a 1D chain pattern: wire 0 input, wire n-1 output, XY
/// measurements everywhere else — the canonical flow example.
OpenGraph chain_open_graph(int n) {
  Pattern p;
  p.add_input(0);
  for (int i = 1; i < n; ++i) p.add_prep(i);
  for (int i = 0; i + 1 < n; ++i) p.add_entangle(i, i + 1);
  for (int i = 0; i + 1 < n; ++i) p.add_measure(i, MeasBasis::XY, 0.3);
  p.set_outputs({n - 1});
  return open_graph_from_pattern(p);
}

TEST(Flow, ChainHasCausalFlow) {
  const OpenGraph og = chain_open_graph(5);
  const auto flow = find_causal_flow(og);
  ASSERT_TRUE(flow.has_value());
  EXPECT_TRUE(verify_causal_flow(og, *flow));
  // f(i) = i+1 along the chain.
  for (int i = 0; i + 1 < 5; ++i) EXPECT_EQ(flow->f[i], i + 1);
}

TEST(Flow, JTranslatedCircuitHasCausalFlow) {
  Rng rng(1);
  Circuit c(2);
  c.h(0).rz(0, 0.4).cz(0, 1).rx(1, 0.7);
  const Pattern p = standardize(pattern_from_circuit(c, true));
  const OpenGraph og = open_graph_from_pattern(p);
  const auto flow = find_causal_flow(og);
  ASSERT_TRUE(flow.has_value());
  EXPECT_TRUE(verify_causal_flow(og, *flow));
}

TEST(Flow, RejectsNonXYPlanes) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  p.add_measure(1, MeasBasis::YZ, 0.5);
  p.set_outputs({0});
  const OpenGraph og = open_graph_from_pattern(p);
  EXPECT_FALSE(find_causal_flow(og).has_value());
}

TEST(Flow, NoFlowOnIsolatedMeasuredVertex) {
  // A measured vertex with no neighbours cannot be corrected.
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_measure(0, MeasBasis::XY, 0.2);
  p.set_outputs({1});
  const OpenGraph og = open_graph_from_pattern(p);
  EXPECT_FALSE(find_causal_flow(og).has_value());
}

TEST(GFlow, ChainHasGFlow) {
  const OpenGraph og = chain_open_graph(5);
  const auto gf = find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(verify_gflow(og, *gf));
}

TEST(GFlow, YZGadgetPatternHasGFlow) {
  // The paper's edge gadget: two wires (outputs) + YZ-measured ancilla.
  // Causal flow does not apply (YZ plane) but gflow exists with
  // g(ancilla) = {ancilla}.
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 2);
  p.add_entangle(1, 2);
  p.add_measure(2, MeasBasis::YZ, 0.9);
  p.set_outputs({0, 1});
  const OpenGraph og = open_graph_from_pattern(p);
  EXPECT_FALSE(find_causal_flow(og).has_value());
  const auto gf = find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(verify_gflow(og, *gf));
  const int anc = og.vertex_of_wire.at(2);
  EXPECT_EQ(gf->g[anc], std::vector<int>{anc});
}

TEST(GFlow, GadgetThenJChainHasGFlow) {
  // The QAOA-layer structure: a YZ gadget ancilla hanging off a wire,
  // followed by a J-chain on the wire.  Wires are measured after the
  // gadget ancilla, so the YZ byproduct is correctable: gflow exists.
  Pattern p;
  p.add_prep(0);  // wire
  p.add_prep(1);  // gadget ancilla
  p.add_prep(2);  // J-chain ancilla
  p.add_prep(3);  // final output
  p.add_entangle(0, 1);
  p.add_entangle(0, 2);
  p.add_entangle(2, 3);
  p.add_measure(1, MeasBasis::YZ, 0.2);
  p.add_measure(0, MeasBasis::XY, 0.1);
  p.add_measure(2, MeasBasis::XY, 0.3);
  p.set_outputs({3});
  const OpenGraph og = open_graph_from_pattern(p);
  const auto gf = find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(verify_gflow(og, *gf));
  // YZ-measured vertices must appear in their own correction set.
  const int anc = og.vertex_of_wire.at(1);
  EXPECT_TRUE(std::binary_search(gf->g[anc].begin(), gf->g[anc].end(), anc));
}

TEST(GFlow, MidChainYZHasNoGFlow) {
  // Counterexample: a YZ measurement in the MIDDLE of a path, with both
  // chain neighbours measured in XY toward far-away outputs, creates a
  // cyclic correction dependency — no gflow exists.
  Pattern p;
  for (int i = 0; i < 5; ++i) p.add_prep(i);
  for (int i = 0; i + 1 < 5; ++i) p.add_entangle(i, i + 1);
  p.add_measure(0, MeasBasis::XY, 0.1);
  p.add_measure(2, MeasBasis::YZ, 0.2);
  p.add_measure(1, MeasBasis::XY, 0.3);
  p.set_outputs({3, 4});
  const OpenGraph og = open_graph_from_pattern(p);
  EXPECT_FALSE(find_gflow(og).has_value());
}

TEST(GFlow, NoGFlowWhenOutputsTooFew) {
  // Complete graph K3 with all vertices measured in XY and no outputs:
  // no gflow (nothing left to absorb corrections).
  Pattern p;
  for (int i = 0; i < 3; ++i) p.add_prep(i);
  p.add_entangle(0, 1);
  p.add_entangle(1, 2);
  p.add_entangle(0, 2);
  for (int i = 0; i < 3; ++i) p.add_measure(i, MeasBasis::XY, 0.4);
  p.set_outputs({});
  const OpenGraph og = open_graph_from_pattern(p);
  EXPECT_FALSE(find_gflow(og).has_value());
}

TEST(GFlow, VerifyRejectsBrokenGFlow) {
  const OpenGraph og = chain_open_graph(4);
  auto gf = find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  ASSERT_TRUE(verify_gflow(og, *gf));
  // Corrupt: give vertex 0 an empty correction set.
  gf->g[0].clear();
  EXPECT_FALSE(verify_gflow(og, *gf));
}

TEST(GFlow, PauliZMeasurementTreatedAsYZ) {
  // Z-measured ancilla hanging off an output wire: g = {anc}, Odd(g)
  // touches only the output.
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  p.add_measure(1, MeasBasis::Z, 0.0);
  p.set_outputs({0});
  const OpenGraph og = open_graph_from_pattern(p);
  const auto gf = find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(verify_gflow(og, *gf));
}

}  // namespace
}  // namespace mbq::mbqc
