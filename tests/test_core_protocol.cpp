// End-to-end protocol tests: expectation through the adaptive MBQC
// protocol equals the gate-model value; sampling statistics are
// consistent; classical post-processing of byproducts matches quantum
// corrections.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::core {
namespace {

using qaoa::Angles;
using qaoa::CostHamiltonian;

TEST(Protocol, ExpectationMatchesGateModel) {
  Rng rng(1);
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const MbqcQaoaSolver solver(c);
  for (int p : {1, 2}) {
    const Angles a = Angles::random(p, rng);
    const real gate = qaoa::qaoa_expectation(c, a);
    Rng run_rng(p);
    const real mbqc_val = solver.expectation(a, run_rng);
    EXPECT_NEAR(mbqc_val, gate, 1e-9) << "p=" << p;
  }
}

TEST(Protocol, ExpectationMatchesAnalyticP1) {
  const Graph g = petersen_graph();
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const MbqcQaoaSolver solver(c);
  const real gamma = 0.4, beta = 0.25;
  Rng rng(2);
  EXPECT_NEAR(solver.expectation(Angles({gamma}, {beta}), rng),
              qaoa::maxcut_p1_expectation(g, gamma, beta), 1e-9);
}

TEST(Protocol, ClassicalModeMatchesQuantumMode) {
  Rng rng(3);
  const Graph g = complete_graph(3);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a = Angles::random(2, rng);
  const MbqcQaoaSolver quantum(c, CorrectionMode::Quantum);
  const MbqcQaoaSolver classical(c, CorrectionMode::ClassicalPostProcess);
  Rng r1(4), r2(4);
  EXPECT_NEAR(quantum.expectation(a, r1), classical.expectation(a, r2), 1e-9);
}

TEST(Protocol, SampleMeanTracksExpectation) {
  Rng rng(5);
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const qaoa::P1Optimum opt = qaoa::maxcut_p1_grid_optimum(g, 32);
  const Angles a({opt.gamma}, {opt.beta});
  const MbqcQaoaSolver solver(c);
  const auto samples = solver.sample(a, 400, rng);
  real mean = 0.0;
  for (const auto& s : samples) mean += s.cost;
  mean /= samples.size();
  Rng erng(6);
  const real expect = solver.expectation(a, erng);
  EXPECT_NEAR(mean, expect, 0.25);  // statistical tolerance
}

TEST(Protocol, ClassicalSamplingAlsoUnbiased) {
  Rng rng(7);
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a({0.6}, {0.4});
  const MbqcQaoaSolver classical(c, CorrectionMode::ClassicalPostProcess);
  const auto samples = classical.sample(a, 400, rng);
  real mean = 0.0;
  for (const auto& s : samples) mean += s.cost;
  mean /= samples.size();
  EXPECT_NEAR(mean, qaoa::qaoa_expectation(c, a), 0.25);
}

TEST(Protocol, BestOfFindsOptimumOnEasyInstance) {
  Rng rng(8);
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const qaoa::P1Optimum popt = qaoa::maxcut_p1_grid_optimum(g, 32);
  const MbqcQaoaSolver solver(c);
  const ShotRecord best =
      solver.best_of(Angles({popt.gamma}, {popt.beta}), 64, rng);
  const auto exact = opt::brute_force_maximum(c);
  EXPECT_NEAR(best.cost, exact.value, 1e-9);  // C4 optimum found in 64 shots
}

TEST(Protocol, FusedLinearStyleAgrees) {
  Rng rng(9);
  const CostHamiltonian c = CostHamiltonian::qubo(
      3, {1.0, -0.5, 0.25}, {{{0, 1}, 0.8}, {{1, 2}, -0.6}}, 0.0);
  const Angles a = Angles::random(2, rng);
  const MbqcQaoaSolver gadget(c, CorrectionMode::Quantum,
                              LinearTermStyle::Gadget);
  const MbqcQaoaSolver fused(c, CorrectionMode::Quantum,
                             LinearTermStyle::FusedIntoMixer);
  Rng r1(10), r2(10);
  EXPECT_NEAR(gadget.expectation(a, r1), fused.expectation(a, r2), 1e-9);
}

}  // namespace
}  // namespace mbq::core
