// Sec. IV's ZH-calculus derivation, reproduced diagrammatically: the MIS
// partial mixer U_v(beta) = Lambda_{N(v)}(e^{i beta X_v}) IS a ZH-diagram
// built from one parameterized H-box (plus NOT conjugation for the
// 0-controls and Hadamards on the target) — "It can be shown using
// ZH-calculus ... that this partial mixing operator can be expressed as
// [a diagram with an e^{i beta} box]".
//
// Construction verified here:
//   U_v(beta) = Lambda_N^{(0)}(e^{i beta}) .
//               H_v . Lambda_{N=0, v=1}(e^{-2 i beta}) . H_v
// where Lambda_S^{(...)}(a) is the multi-controlled phase realized by an
// H-box with parameter `a` attached to the wires of S (controls at 0 get
// X(pi) conjugation).  The first factor supplies the block-local global
// phase e^{i beta}; both factors are single H-boxes.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/linalg/unitaries.h"
#include "mbq/zx/diagram.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

/// Helper managing wire frontiers on a diagram under construction.
struct Wires {
  Diagram& d;
  std::vector<int> cur;

  explicit Wires(Diagram& diagram, int n) : d(diagram), cur(n) {
    for (int q = 0; q < n; ++q) {
      cur[q] = d.add_input();
    }
  }
  /// Append a node to wire q.
  void advance(int q, int node) {
    d.add_edge(cur[q], node);
    cur[q] = node;
  }
  /// Plain wire spider (phase 0) for attaching gadget legs.
  int tap(int q) {
    const int z = d.add_z(0.0);
    advance(q, z);
    return z;
  }
  void finish() {
    for (int q = 0; q < static_cast<int>(cur.size()); ++q) {
      const int out = d.add_output();
      d.add_edge(cur[q], out);
    }
  }
};

/// Attach an H-box with parameter `param` across the given wire taps,
/// with controls-at-0 conjugated by X(pi) spiders.
void controlled_phase_hbox(Diagram& d, Wires& w, const std::vector<int>& on,
                           const std::vector<bool>& zero_controlled,
                           cplx param) {
  const int box = d.add_hbox(param);
  for (std::size_t i = 0; i < on.size(); ++i) {
    const int q = on[i];
    if (zero_controlled[i]) w.advance(q, d.add_x(kPi));
    d.add_edge(w.tap(q), box);
    if (zero_controlled[i]) w.advance(q, d.add_x(kPi));
  }
}

/// The Sec. IV diagram for Lambda_{N(v)}(e^{i beta X_v}); target `v`,
/// neighbours = all other qubits.
Diagram mis_partial_mixer_diagram(int n, int v, real beta) {
  Diagram d;
  Wires w(d, n);
  std::vector<int> neighbours;
  for (int q = 0; q < n; ++q)
    if (q != v) neighbours.push_back(q);

  // Factor 1: e^{i beta} iff all neighbours are 0.
  if (!neighbours.empty()) {
    controlled_phase_hbox(d, w, neighbours,
                          std::vector<bool>(neighbours.size(), true),
                          std::exp(kI * beta));
  } else {
    d.multiply_scalar(std::exp(kI * beta));
  }

  // Factor 2: H_v . [e^{-2 i beta} iff v=1 and neighbours=0] . H_v.
  w.advance(v, d.add_hbox());  // Hadamard (sqrt(2)-scaled; compare up to
                               // scalar below)
  std::vector<int> all{v};
  std::vector<bool> zero{false};
  for (int q : neighbours) {
    all.push_back(q);
    zero.push_back(true);
  }
  controlled_phase_hbox(d, w, all, zero, std::exp(-2.0 * kI * beta));
  w.advance(v, d.add_hbox());

  w.finish();
  d.validate();
  return d;
}

TEST(ZhMis, PartialMixerDiagramMatchesOracle) {
  for (int n : {2, 3, 4}) {
    for (real beta : {0.37, -1.1, 2.4}) {
      const int v = 0;
      std::vector<int> controls;
      for (int q = 1; q < n; ++q) controls.push_back(q);
      const Matrix oracle = gates::controlled_exp_x(beta, v, controls, 0, n);
      const Diagram d = mis_partial_mixer_diagram(n, v, beta);
      const Matrix got = evaluate_matrix(d);
      EXPECT_TRUE(Matrix::approx_equal_up_to_phase(got, oracle, 1e-9))
          << "n=" << n << " beta=" << beta;
    }
  }
}

TEST(ZhMis, NoNeighborsReducesToPlainRotation) {
  // Degree-0 vertex: the partial mixer is just e^{i beta X}.
  const real beta = 0.81;
  const Diagram d = mis_partial_mixer_diagram(1, 0, beta);
  const Matrix got = evaluate_matrix(d);
  EXPECT_TRUE(Matrix::approx_equal_up_to_phase(got, gates::exp_x(-2.0 * beta),
                                               1e-9));
}

TEST(ZhMis, HBoxParameterIsThePoint) {
  // With the H-box parameter set to 1 both controlled phases vanish and
  // the diagram is the identity.
  const Diagram d = mis_partial_mixer_diagram(3, 0, 0.0);
  const Matrix got = evaluate_matrix(d);
  EXPECT_TRUE(
      Matrix::approx_equal_up_to_phase(got, Matrix::identity(8), 1e-9));
}

}  // namespace
}  // namespace mbq::zx
