// The serve wire protocol in isolation (no daemon, no processes):
// endpoint strings parse strictly, every frame codec round-trips exactly
// and rejects malformed input, FrameBuffer reassembles frames from
// arbitrary chunkings of the byte stream, and SliceMerger produces
// arrival-order-independent merges while rejecting duplicate coverage —
// the client half of the daemon's at-most-once guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <numeric>
#include <vector>

#include "mbq/api/workload.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/serve/endpoint.h"
#include "mbq/serve/frames.h"

namespace mbq {
namespace {

using qaoa::Angles;
using namespace mbq::serve;

// --- endpoints ---------------------------------------------------------

TEST(ServeEndpoint, ParsesUnixAndTcpShapes) {
  const Endpoint u = parse_endpoint("unix:/tmp/mbqd.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/mbqd.sock");
  EXPECT_EQ(u.to_string(), "unix:/tmp/mbqd.sock");

  const Endpoint t = parse_endpoint("tcp:localhost:7711");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "localhost");
  EXPECT_EQ(t.port, 7711);
  EXPECT_EQ(t.to_string(), "tcp:localhost:7711");

  const Endpoint num = parse_endpoint("tcp:127.0.0.1:0");
  EXPECT_EQ(num.host, "127.0.0.1");
  EXPECT_EQ(num.port, 0);  // ephemeral; resolved by listen_endpoint

  EXPECT_THROW(parse_endpoint("unix:"), Error);
  EXPECT_THROW(parse_endpoint("tcp:localhost"), Error);
  EXPECT_THROW(parse_endpoint("tcp:localhost:notaport"), Error);
  EXPECT_THROW(parse_endpoint("tcp:localhost:70000"), Error);
  EXPECT_THROW(parse_endpoint("tcp:no.such.host.example:1"), Error);
  EXPECT_THROW(parse_endpoint("http://localhost:80"), Error);
  EXPECT_THROW(parse_endpoint(""), Error);
}

// --- frame codecs ------------------------------------------------------

TEST(ServeFrames, HandshakeRoundTrips) {
  Hello h;
  h.client_name = "test-client";
  const Hello hb = decode_hello(encode_hello(h));
  EXPECT_EQ(hb.version, kProtocolVersion);
  EXPECT_EQ(hb.client_name, "test-client");

  HelloOk ok;
  ok.daemon_name = "mbqd-test";
  ok.workers = 7;
  const HelloOk ob = decode_hello_ok(encode_hello_ok(ok));
  EXPECT_EQ(ob.version, kProtocolVersion);
  EXPECT_EQ(ob.daemon_name, "mbqd-test");
  EXPECT_EQ(ob.workers, 7u);

  // Wrong tag and truncation both throw.
  EXPECT_THROW(decode_hello_ok(encode_hello(h)), Error);
  auto frame = encode_hello(h);
  frame.resize(frame.size() - 2);
  EXPECT_THROW(decode_hello(frame), Error);
  EXPECT_THROW(frame_kind({}), Error);
}

TEST(ServeFrames, SubmitEmbedsTheShardRequestVerbatim) {
  Rng rng(3);
  Submit s;
  s.request_id = 0xABCDEF0112345678ULL;
  s.request.kind = shard::TaskKind::kSample;
  s.request.backend = "mbqc";
  s.request.seed = 99;
  s.request.workload = api::Workload::maxcut(cycle_graph(5));
  s.request.points = {Angles::random(2, rng), Angles::random(2, rng)};
  s.request.shots = 16;
  s.request.base_call = 4;
  s.request.end = 32;

  const Submit back = decode_submit(encode_submit(s));
  EXPECT_EQ(back.request_id, s.request_id);
  EXPECT_EQ(back.request.kind, s.request.kind);
  EXPECT_EQ(back.request.backend, s.request.backend);
  EXPECT_EQ(back.request.seed, s.request.seed);
  ASSERT_EQ(back.request.points.size(), 2u);
  EXPECT_EQ(back.request.points[0].gamma, s.request.points[0].gamma);
  EXPECT_EQ(back.request.points[1].beta, s.request.points[1].beta);
  EXPECT_EQ(back.request.shots, s.request.shots);
  EXPECT_EQ(back.request.base_call, s.request.base_call);
  EXPECT_EQ(back.request.end, s.request.end);
  // The embedded bytes ARE the shard codec: stripping the 9-byte serve
  // header must yield a frame shard::decode_request accepts.
  const auto frame = encode_submit(s);
  const shard::Request direct = shard::decode_request(
      std::span<const std::byte>(frame).subspan(9));
  EXPECT_EQ(direct.seed, s.request.seed);

  auto truncated = encode_submit(s);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(decode_submit(truncated), Error);
}

TEST(ServeFrames, ResultAndControlFramesRoundTrip) {
  Slice sl;
  sl.request_id = 5;
  sl.begin = 10;
  sl.end = 13;
  sl.outcomes = {1, 0xFFFFFFFFFFFFFFFFULL, 7};
  const Slice slb = decode_slice(encode_slice(sl));
  EXPECT_EQ(slb.request_id, 5u);
  EXPECT_EQ(slb.begin, 10u);
  EXPECT_EQ(slb.end, 13u);
  EXPECT_EQ(slb.outcomes, sl.outcomes);
  EXPECT_TRUE(slb.values.empty());

  Slice sv;
  sv.request_id = 6;
  sv.begin = 0;
  sv.end = 2;
  sv.values = {-0.0, 3.5e-300};
  const Slice svb = decode_slice(encode_slice(sv));
  ASSERT_EQ(svb.values.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(svb.values[i]),
              std::bit_cast<std::uint64_t>(sv.values[i]));

  Done d;
  d.request_id = 5;
  d.slices = 8;
  d.redispatched = 2;
  d.warm_hit = true;
  const Done db = decode_done(encode_done(d));
  EXPECT_EQ(db.request_id, 5u);
  EXPECT_EQ(db.slices, 8u);
  EXPECT_EQ(db.redispatched, 2u);
  EXPECT_TRUE(db.warm_hit);

  ErrorFrame e;
  e.request_id = 9;
  e.error_index = 123;
  e.error_in_eval = true;
  e.message = "backend 'x' cannot run this workload";
  const ErrorFrame eb = decode_error(encode_error(e));
  EXPECT_EQ(eb.request_id, 9u);
  EXPECT_EQ(eb.error_index, 123u);
  EXPECT_TRUE(eb.error_in_eval);
  EXPECT_EQ(eb.message, e.message);

  Busy b;
  b.request_id = 4;
  b.message = "queue full";
  const Busy bb = decode_busy(encode_busy(b));
  EXPECT_EQ(bb.request_id, 4u);
  EXPECT_EQ(bb.message, "queue full");
}

TEST(ServeFrames, StatsRoundTripAndFormat) {
  DaemonStats s;
  s.connections_total = 10;
  s.connections_active = 2;
  s.requests_total = 100;
  s.requests_active = 3;
  s.busy_rejections = 4;
  s.slices_dispatched = 400;
  s.slices_redispatched = 5;
  s.slices_completed = 395;
  s.worker_respawns = 2;
  s.warm_hits = 60;
  s.warm_misses = 40;
  s.queue_depth = 7;
  s.workers = {{1234, true, 200, 0}, {1235, false, 195, 2}};

  const DaemonStats b = decode_stats_reply(encode_stats_reply(s));
  EXPECT_EQ(b.connections_total, 10u);
  EXPECT_EQ(b.connections_active, 2u);
  EXPECT_EQ(b.requests_total, 100u);
  EXPECT_EQ(b.requests_active, 3u);
  EXPECT_EQ(b.busy_rejections, 4u);
  EXPECT_EQ(b.slices_dispatched, 400u);
  EXPECT_EQ(b.slices_redispatched, 5u);
  EXPECT_EQ(b.slices_completed, 395u);
  EXPECT_EQ(b.worker_respawns, 2u);
  EXPECT_EQ(b.warm_hits, 60u);
  EXPECT_EQ(b.warm_misses, 40u);
  EXPECT_EQ(b.queue_depth, 7u);
  ASSERT_EQ(b.workers.size(), 2u);
  EXPECT_EQ(b.workers[0].pid, 1234);
  EXPECT_TRUE(b.workers[0].busy);
  EXPECT_EQ(b.workers[1].slices_done, 195u);
  EXPECT_EQ(b.workers[1].respawns, 2u);

  const std::string text = format_stats(b);
  EXPECT_NE(text.find("re-dispatched"), std::string::npos) << text;
  EXPECT_NE(text.find("warm cache"), std::string::npos) << text;
  EXPECT_NE(text.find("1234"), std::string::npos) << text;
}

// --- incremental framing -----------------------------------------------

TEST(ServeFrameBuffer, ReassemblesAcrossArbitraryChunkings) {
  // Three frames of different sizes, fed in chunk sizes from 1 byte to
  // larger-than-everything: the popped sequence must always be exactly
  // the three payloads, in order.
  std::vector<std::vector<std::byte>> payloads;
  payloads.push_back(encode_stats_request());
  Hello h;
  h.client_name = "chunk-test";
  payloads.push_back(encode_hello(h));
  Busy b;
  b.request_id = 77;
  b.message = std::string(300, 'x');
  payloads.push_back(encode_busy(b));

  std::vector<std::byte> stream;
  for (const auto& p : payloads) {
    const std::uint32_t size = static_cast<std::uint32_t>(p.size());
    for (int i = 0; i < 4; ++i)
      stream.push_back(static_cast<std::byte>((size >> (8 * i)) & 0xFF));
    stream.insert(stream.end(), p.begin(), p.end());
  }

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{64},
                                  stream.size()}) {
    FrameBuffer fb;
    std::vector<std::vector<std::byte>> got;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - at);
      fb.append(std::span<const std::byte>(stream).subspan(at, n));
      while (auto f = fb.pop()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), payloads.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < payloads.size(); ++i)
      EXPECT_EQ(got[i], payloads[i]) << "chunk " << chunk << " frame " << i;
    EXPECT_EQ(fb.buffered(), 0u);
  }
}

TEST(ServeFrameBuffer, OversizedLengthPrefixThrows) {
  FrameBuffer fb;
  const std::byte huge[4] = {std::byte{0xFF}, std::byte{0xFF},
                             std::byte{0xFF}, std::byte{0xFF}};
  fb.append(huge);
  EXPECT_THROW(fb.pop(), Error);
}

// --- slice merging -----------------------------------------------------

TEST(ServeSliceMerger, MergeIsArrivalOrderIndependent) {
  // 10 slices of uneven sizes covering [5, 47), merged in every rotation
  // and a few shuffles: the merged vector must always equal the direct
  // layout.  This is the client-side half of the streaming contract.
  const std::uint64_t begin = 5, end = 47;
  std::vector<Slice> slices;
  std::vector<std::uint64_t> want;
  std::uint64_t at = begin;
  int k = 0;
  while (at < end) {
    const std::uint64_t size = std::min<std::uint64_t>(1 + (k % 7), end - at);
    Slice s;
    s.request_id = 1;
    s.begin = at;
    s.end = at + size;
    for (std::uint64_t i = at; i < at + size; ++i) {
      s.outcomes.push_back(i * 1000003ULL);
      want.push_back(i * 1000003ULL);
    }
    slices.push_back(std::move(s));
    at += size;
    ++k;
  }
  ASSERT_GE(slices.size(), 8u);

  std::vector<std::size_t> order(slices.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Rotations first (deterministic coverage), then random shuffles.
    if (trial < static_cast<int>(slices.size())) {
      std::rotate(order.begin(), order.begin() + trial, order.end());
    } else {
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    SliceMerger m(shard::TaskKind::kSample, begin, end);
    for (const std::size_t i : order) {
      EXPECT_FALSE(m.complete());
      m.add(slices[i]);
    }
    ASSERT_TRUE(m.complete());
    EXPECT_EQ(m.missing(), 0u);
    EXPECT_EQ(m.outcomes(), want) << "trial " << trial;
  }
}

TEST(ServeSliceMerger, RejectsDuplicateAndMalformedSlices) {
  SliceMerger m(shard::TaskKind::kSample, 0, 10);
  Slice s;
  s.begin = 2;
  s.end = 5;
  s.outcomes = {1, 2, 3};
  m.add(s);
  // Exact duplicate: the at-most-once guard must refuse to overwrite.
  EXPECT_THROW(m.add(s), Error);
  // Overlapping coverage.
  Slice o;
  o.begin = 4;
  o.end = 6;
  o.outcomes = {9, 9};
  EXPECT_THROW(m.add(o), Error);
  // Out of range.
  Slice r;
  r.begin = 8;
  r.end = 12;
  r.outcomes = {0, 0, 0, 0};
  EXPECT_THROW(m.add(r), Error);
  // Payload size mismatch.
  Slice p;
  p.begin = 6;
  p.end = 8;
  p.outcomes = {1};
  EXPECT_THROW(m.add(p), Error);
  // Wrong payload kind for the task.
  Slice v;
  v.begin = 6;
  v.end = 7;
  v.values = {0.5};
  EXPECT_THROW(m.add(v), Error);
  EXPECT_FALSE(m.complete());
  EXPECT_EQ(m.missing(), 7u);

  // Expectation merges place f64 payloads bit-exactly.
  SliceMerger em(shard::TaskKind::kExpectation, 0, 2);
  Slice e1;
  e1.begin = 1;
  e1.end = 2;
  e1.values = {-0.0};
  Slice e0;
  e0.begin = 0;
  e0.end = 1;
  e0.values = {3.5e-300};
  em.add(e1);
  em.add(e0);
  ASSERT_TRUE(em.complete());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(em.values()[0]),
            std::bit_cast<std::uint64_t>(3.5e-300));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(em.values()[1]),
            std::bit_cast<std::uint64_t>(-0.0));
}

}  // namespace
}  // namespace mbq
