// Optional float32 statevector storage: within-precision determinism of
// the f32 path (bit-identical across ISA flavors AND kernel thread
// counts), its documented NON-comparability to f64 (close, never
// bitwise), the precision field riding the spec codec / JSON / the
// fingerprint, and the capability-gated routing that sends F32
// workloads to the one backend that can store them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "mbq/api/registry.h"
#include "mbq/api/router_backend.h"
#include "mbq/api/session.h"
#include "mbq/api/workload.h"
#include "mbq/api/workload_spec.h"
#include "mbq/common/error.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/collapse_kernels.h"
#include "mbq/sim/collapse_threaded.h"
#include "mbq/sim/dynamic_statevector.h"
#include "mbq/speccomp/json.h"

namespace mbq {
namespace {

bool same_bits(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

::testing::AssertionResult buffers_bit_equal(const std::vector<cplx>& want,
                                             const std::vector<cplx>& got) {
  if (want.size() != got.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  for (std::size_t i = 0; i < want.size(); ++i)
    if (!same_bits(want[i].real(), got[i].real()) ||
        !same_bits(want[i].imag(), got[i].imag()))
      return ::testing::AssertionFailure()
             << "amplitude " << i << ": (" << got[i].real() << ", "
             << got[i].imag() << ") != (" << want[i].real() << ", "
             << want[i].imag() << ")";
  return ::testing::AssertionSuccess();
}

struct IsaGuard {
  SimdIsa saved;
  IsaGuard() : saved(active_simd_isa()) {}
  ~IsaGuard() { force_simd_isa(saved); }
};

struct ThreadGuard {
  int saved;
  ThreadGuard() : saved(thr::kernel_threads()) {}
  ~ThreadGuard() { thr::set_kernel_threads(saved); }
};

// --- the f32 kernel tables ---------------------------------------------

TEST(PrecisionF32, EveryHostFlavorHasAVerifiedF32Table) {
  for (SimdIsa isa : supported_simd_isas()) {
    const CollapseKernelsF32* k = kernels_for_isa_f32(isa);
    ASSERT_NE(k, nullptr) << isa_name(isa);
    EXPECT_EQ(k->isa, isa);
    EXPECT_TRUE(verify_kernels_f32(*k)) << isa_name(isa);
  }
  EXPECT_EQ(kernels_t<float>().isa, active_simd_isa_f32());
  EXPECT_EQ(kernels_t<double>().isa, active_simd_isa());
}

// --- within-precision determinism --------------------------------------

// The same scripted run as the f64 ISA-sweep test, on f32 storage, at a
// register size crossing the chunk cutoff.  state_in_order widens f32
// amplitudes to f64 EXACTLY, so a bitwise comparison of the widened
// values is a bitwise comparison of the stored floats.
struct ScriptResult {
  std::vector<int> outcomes;
  std::vector<cplx> amps;
  double fold;
};

ScriptResult run_script(Precision p, SimdIsa isa, int threads,
                        std::uint64_t seed, int wires) {
  force_simd_isa(isa);
  thr::set_kernel_threads(threads);
  DynamicStatevector dsv(p);
  EXPECT_EQ(dsv.precision(), p);
  Rng rng(seed);
  for (int w = 0; w < wires; ++w) dsv.add_wire(w);
  const std::uint64_t cz_masks[2] = {0b11, 0b1100};
  dsv.apply_cz_masks(cz_masks, 2);
  dsv.apply_rz(1, 0.37);
  dsv.apply_pauli_masks(0b0010, 0b0100, true);
  ScriptResult r;
  r.outcomes.push_back(dsv.prep_cz_measure(
      wires, 0b101, measurement_basis(MeasBasis::XY, 0.3), rng));
  r.outcomes.push_back(dsv.prep_cz_teleport_measure(
      wires + 1, 0b1000, 1, measurement_basis(MeasBasis::YZ, 0.9), rng));
  dsv.apply_h(2);
  r.outcomes.push_back(
      dsv.measure_remove(2, measurement_basis(MeasBasis::X, 0.0), rng));
  dsv.normalize();
  r.amps = dsv.state_in_order(dsv.wire_order());
  r.fold = dsv.norm_fold();
  return r;
}

TEST(PrecisionF32, StatevectorBitIdenticalAcrossIsasAndThreads) {
  IsaGuard isa_guard;
  ThreadGuard thread_guard;
  // 5 wires stays on the plain paths; 15 wires crosses the chunk cutoff
  // and exercises every chunked f32 driver.
  for (int wires : {5, 15}) {
    const ScriptResult want =
        run_script(Precision::F32, SimdIsa::Scalar, 1, 42, wires);
    for (SimdIsa isa : supported_simd_isas()) {
      for (int t : {1, 2, 8}) {
        const ScriptResult got =
            run_script(Precision::F32, isa, t, 42, wires);
        SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                     " threads=" + std::to_string(t) +
                     " wires=" + std::to_string(wires));
        EXPECT_EQ(want.outcomes, got.outcomes);
        EXPECT_TRUE(buffers_bit_equal(want.amps, got.amps));
        EXPECT_PRED2(same_bits, want.fold, got.fold);
      }
    }
  }
}

TEST(PrecisionF32, TracksF64WithinPrecisionButNotBitwise) {
  IsaGuard isa_guard;
  ThreadGuard thread_guard;
  const ScriptResult f64 =
      run_script(Precision::F64, SimdIsa::Scalar, 1, 7, 6);
  const ScriptResult f32 =
      run_script(Precision::F32, SimdIsa::Scalar, 1, 7, 6);
  ASSERT_EQ(f64.amps.size(), f32.amps.size());
  // Same sampled branch under the same rng draws (the probabilities
  // differ only at f32 rounding, far from the draw boundaries here)...
  EXPECT_EQ(f64.outcomes, f32.outcomes);
  // ...amplitudes agree to f32 accuracy but NOT bitwise.
  bool any_differs = false;
  for (std::size_t i = 0; i < f64.amps.size(); ++i) {
    EXPECT_LT(std::abs(f64.amps[i] - f32.amps[i]), 1e-3) << i;
    any_differs |= !same_bits(f64.amps[i].real(), f32.amps[i].real()) ||
                   !same_bits(f64.amps[i].imag(), f32.amps[i].imag());
  }
  EXPECT_TRUE(any_differs)
      << "f32 bit-identical to f64 — the storage is not actually f32";
}

// Compiled executor == interpreted runner on f32 storage too, on a
// forced branch (branch choice held fixed so the comparison is exact).
TEST(PrecisionF32, CompiledMatchesInterpretedOnF32) {
  Rng setup(3);
  const qaoa::Angles angles = qaoa::Angles::random(2, setup);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(4));
  const mbqc::Pattern pattern = core::compile_qaoa(cost, angles).pattern;

  mbqc::RunOptions options;
  options.precision = Precision::F32;
  options.forced.assign(
      static_cast<std::size_t>(pattern.num_measurements()), 0);
  for (std::size_t i = 0; i < options.forced.size(); i += 3)
    options.forced[i] = 1;

  Rng ra(1), rb(1);
  const mbqc::RunResult compiled = mbqc::run(pattern, ra, options);
  const mbqc::RunResult interpreted =
      mbqc::run_interpreted(pattern, rb, options);
  EXPECT_EQ(compiled.outcomes, interpreted.outcomes);
  EXPECT_TRUE(
      buffers_bit_equal(compiled.output_state, interpreted.output_state));
}

// --- the precision field on the spec -----------------------------------

TEST(PrecisionF32, SpecCodecAndJsonCarryPrecision) {
  api::Workload w = api::Workload::maxcut(cycle_graph(4));
  EXPECT_EQ(w.precision(), Precision::F64);
  const std::uint64_t fp64 = api::spec_fingerprint(w.spec());

  w.with_precision(Precision::F32);
  EXPECT_EQ(w.precision(), Precision::F32);
  EXPECT_NE(api::spec_fingerprint(w.spec()), fp64)
      << "fingerprint must distinguish storage precisions";

  // Binary codec round trip.
  const auto frame = api::serialize_spec(w.spec());
  const api::Workload back = api::Workload::from_spec(api::parse_spec(frame));
  EXPECT_EQ(back.precision(), Precision::F32);
  EXPECT_EQ(api::spec_fingerprint(back.spec()),
            api::spec_fingerprint(w.spec()));

  // JSON codec round trip; the field is spelled with the enum name.
  const std::string json = speccomp::spec_to_json(w.spec());
  EXPECT_NE(json.find("\"precision\""), std::string::npos);
  EXPECT_NE(json.find("\"f32\""), std::string::npos);
  const api::WorkloadSpec parsed = speccomp::spec_from_json(json);
  EXPECT_EQ(parsed.precision, Precision::F32);

  // A spec without the field (older producer) defaults to f64.
  const std::string json64 =
      speccomp::spec_to_json(api::Workload::maxcut(cycle_graph(4)).spec());
  EXPECT_EQ(speccomp::spec_from_json(json64).precision, Precision::F64);

  EXPECT_STREQ(precision_name(Precision::F64), "f64");
  EXPECT_STREQ(precision_name(Precision::F32), "f32");
  EXPECT_EQ(parse_precision("f32"), Precision::F32);
  EXPECT_THROW(parse_precision("f16"), Error);
}

// --- capability-gated routing ------------------------------------------

TEST(PrecisionF32, OnlyTheMbqcAdapterAcceptsF32Storage) {
  auto& registry = api::BackendRegistry::instance();
  Rng setup(11);
  const qaoa::Angles angles = qaoa::Angles::random(1, setup);
  api::Workload w = api::Workload::maxcut(cycle_graph(4));
  w.with_precision(Precision::F32);

  const auto mbqc = registry.create("mbqc");
  EXPECT_TRUE(mbqc->capabilities().supports_f32_storage);
  EXPECT_EQ(mbqc->unsupported_reason(w, angles, nullptr), "");

  for (const char* name : {"statevector", "clifford", "zx"}) {
    const auto b = registry.create(name);
    EXPECT_FALSE(b->capabilities().supports_f32_storage) << name;
    const std::string reason = b->unsupported_reason(w, angles, nullptr);
    EXPECT_FALSE(reason.empty()) << name;
  }
  // The statevector adapter is capable of these angles — its rejection
  // must be the precision one, spelled out.
  const std::string sv_reason =
      registry.create("statevector")->unsupported_reason(w, angles, nullptr);
  EXPECT_NE(sv_reason.find("f32"), std::string::npos) << sv_reason;
}

TEST(PrecisionF32, RouterRoutesF32WorkloadsToMbqc) {
  api::RouterBackend router{api::RouterOptions{}};
  EXPECT_TRUE(router.capabilities().supports_f32_storage);

  Rng setup(13);
  const qaoa::Angles angles = qaoa::Angles::random(1, setup);
  api::Workload w = api::Workload::maxcut(cycle_graph(4));
  w.with_precision(Precision::F32);

  const api::RouteDecision d = router.route(w, angles);
  EXPECT_EQ(d.backend_name, "mbqc");
  bool statevector_rejected_for_precision = false;
  for (const auto& [name, why] : d.rejected)
    if (name == "statevector")
      statevector_rejected_for_precision =
          why.find("f32") != std::string::npos;
  EXPECT_TRUE(statevector_rejected_for_precision);
}

// --- the Session face ---------------------------------------------------

TEST(PrecisionF32, SessionRunsF32EndToEndAndTracksF64) {
  Rng setup(17);
  const qaoa::Angles angles = qaoa::Angles::random(2, setup);
  const auto make = [&](Precision p) {
    api::SessionOptions options;
    options.precision = p;
    return api::Session(api::Workload::maxcut(cycle_graph(6)), "mbqc",
                        options);
  };

  auto s64 = make(Precision::F64);
  auto s32a = make(Precision::F32);
  auto s32b = make(Precision::F32);
  EXPECT_EQ(s32a.workload().precision(), Precision::F32);

  const real e64 = s64.expectation(angles);
  const real e32 = s32a.expectation(angles);
  EXPECT_TRUE(std::isfinite(e32));
  EXPECT_NEAR(e64, e32, 1e-3);

  // Within-precision determinism through the full Session stack: two
  // identically-seeded f32 sessions produce identical shot streams.
  // (call-index k of one session vs call-index k of the other — the
  // Session determinism contract is per (seed, call index, shot).)
  EXPECT_PRED2(same_bits, static_cast<double>(e32),
               static_cast<double>(s32b.expectation(angles)));
  const auto sa = s32a.sample(angles, 64);
  const auto sb = s32b.sample(angles, 64);
  ASSERT_EQ(sa.shots.size(), sb.shots.size());
  for (std::size_t i = 0; i < sa.shots.size(); ++i)
    EXPECT_EQ(sa.shots[i].x, sb.shots[i].x) << i;
}

// Sharded sampling re-derives the workload from the serialized spec in
// freshly exec'd worker processes — so bit-identical shards prove the
// precision field actually rides the codec (remote ≡ local).
TEST(PrecisionF32, ShardedSamplingMatchesInProcessOnF32) {
  Rng setup(23);
  const qaoa::Angles angles = qaoa::Angles::random(1, setup);
  api::Workload w = api::Workload::maxcut(cycle_graph(6));
  w.with_precision(Precision::F32);

  api::SessionOptions serial;
  serial.seed = 7;
  serial.num_processes = 1;
  api::SessionOptions sharded;
  sharded.seed = 7;
  sharded.num_processes = 2;
  api::Session s1(w, "mbqc", serial);
  api::Session s2(w, "mbqc", sharded);

  const auto r1 = s1.sample(angles, 96);
  const auto r2 = s2.sample(angles, 96);
  ASSERT_GT(s2.shard_workers(), 0)
      << "sharding fell back in-process; the cross-process half of this "
         "test would be vacuous";
  ASSERT_EQ(r1.shots.size(), r2.shots.size());
  for (std::size_t i = 0; i < r1.shots.size(); ++i)
    ASSERT_EQ(r1.shots[i].x, r2.shots[i].x) << "shot " << i;
}

TEST(PrecisionF32, SessionKernelThreadsKnobRoutesToTheDrivers) {
  ThreadGuard guard;
  api::SessionOptions options;
  options.kernel_threads = 2;
  api::Session session(api::Workload::maxcut(cycle_graph(4)), "mbqc",
                       options);
  EXPECT_EQ(thr::kernel_threads(), 2);
}

}  // namespace
}  // namespace mbq
