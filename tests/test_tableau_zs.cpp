// Width-unlimited Z-product expectations on the tableau.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/sim/pauli.h"
#include "mbq/sim/statevector.h"
#include "mbq/stab/tableau.h"

namespace mbq {
namespace {

TEST(TableauZs, MatchesPauliStringOnSmallRegisters) {
  Rng crng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Tableau t(5);
    for (int step = 0; step < 20; ++step) {
      const int q = static_cast<int>(crng.uniform_index(5));
      int r = static_cast<int>(crng.uniform_index(5));
      if (r == q) r = (r + 1) % 5;
      switch (crng.uniform_index(4)) {
        case 0: t.apply_h(q); break;
        case 1: t.apply_s(q); break;
        case 2: t.apply_cx(q, r); break;
        case 3: t.apply_cz(q, r); break;
      }
    }
    for (const auto& qs : std::vector<std::vector<int>>{
             {0}, {1, 3}, {0, 2, 4}, {0, 1, 2, 3, 4}}) {
      std::uint64_t zm = 0;
      for (int q : qs) zm |= 1ULL << q;
      ASSERT_EQ(t.expectation_zs(qs),
                t.expectation(PauliString(0, zm, 5)))
          << "trial " << trial;
    }
  }
}

TEST(TableauZs, RepeatedQubitsCancel) {
  Tableau t(2);
  t.apply_x(0);  // |10>: <Z0> = -1
  EXPECT_EQ(t.expectation_zs({0}), -1);
  EXPECT_EQ(t.expectation_zs({0, 0}), 1);       // Z^2 = I
  EXPECT_EQ(t.expectation_zs({0, 0, 0}), -1);
  EXPECT_EQ(t.expectation_zs({}), 1);           // identity
}

TEST(TableauZs, WorksBeyond64Qubits) {
  // 80-qubit GHZ-like chain: Z_i Z_j = +1 for all pairs, Z_i alone = 0.
  const int n = 80;
  Tableau t(n);
  t.apply_h(0);
  for (int q = 0; q + 1 < n; ++q) t.apply_cx(q, q + 1);
  EXPECT_EQ(t.expectation_zs({0, 79}), 1);
  EXPECT_EQ(t.expectation_zs({13, 57}), 1);
  EXPECT_EQ(t.expectation_zs({42}), 0);
  EXPECT_EQ(t.expectation_zs({0, 1, 2}), 0);  // odd number of Z's
}

TEST(TableauZs, GraphStateCorrelations) {
  // On a graph state every pure-Z product has expectation 0 unless
  // empty (Z products anti-commute with some vertex stabilizer K_v
  // whenever the support is non-empty... specifically <Z_S> = 0 for any
  // non-empty S on a connected graph state with no isolated structure).
  const Graph g = cycle_graph(6);
  Tableau t = Tableau::graph_state(g);
  EXPECT_EQ(t.expectation_zs({0}), 0);
  EXPECT_EQ(t.expectation_zs({0, 1}), 0);
  EXPECT_EQ(t.expectation_zs({0, 1, 2, 3, 4, 5}), 0);
}

TEST(TableauZs, OutOfRangeThrows) {
  Tableau t(3);
  EXPECT_THROW(t.expectation_zs({3}), Error);
  EXPECT_THROW(t.expectation_zs({-1}), Error);
}

}  // namespace
}  // namespace mbq
