// Tests for pattern execution: gadget semantics branch by branch,
// determinism, sampling statistics, classical-correction mode.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/runner.h"
#include "mbq/sim/statevector.h"

namespace mbq::mbqc {
namespace {

std::vector<cplx> plus_state() {
  const real s = 1.0 / std::sqrt(2.0);
  return {s, s};
}

TEST(Runner, JPatternAllBranches) {
  // X^m J(alpha) teleportation, corrected: both branches must agree.
  const real alpha = 0.71;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});

  const auto branches = run_all_branches(p);
  ASSERT_EQ(branches.size(), 2u);
  const auto expect = gates::j(alpha) * plus_state();
  for (const auto& b : branches)
    EXPECT_NEAR(fidelity(b.output_state, expect), 1.0, kTol);
}

TEST(Runner, SampledMatchesForcedStatistics) {
  const real alpha = -1.3;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});

  Rng rng(3);
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const RunResult r = run(p, rng);
    ones += r.outcomes[0];
  }
  // XY measurements in J-patterns are unbiased.
  EXPECT_NEAR(static_cast<real>(ones) / trials, 0.5, 0.05);
}

TEST(Runner, AdaptiveAngleSignDomain) {
  // Two chained J's: J(beta) J(alpha) = H rz(beta) H rz(alpha).  The
  // second measurement must flip its angle with the first outcome; all
  // four branches agree after corrections.
  const real alpha = 0.42, beta = -0.97;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 1);
  const signal_t m0 = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_entangle(1, 2);
  const signal_t m1 =
      p.add_measure(1, MeasBasis::XY, -beta, SignalExpr(m0), {});
  p.add_correct_x(2, SignalExpr(m1));
  p.add_correct_z(2, SignalExpr(m0));
  p.set_outputs({2});

  const auto expect = gates::j(beta) * (gates::j(alpha) * plus_state());
  for (const auto& b : run_all_branches(p))
    EXPECT_NEAR(fidelity(b.output_state, expect), 1.0, kTol);
}

TEST(Runner, YZGadgetAllBranches) {
  // Single-qubit phase gadget: ancilla CZ-linked, YZ(theta) measurement,
  // Z correction on the wire; implements exp(-i theta/2 Z) on |+>.
  const real theta = 1.23;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(1, MeasBasis::YZ, theta);
  p.add_correct_z(0, SignalExpr(m));
  p.set_outputs({0});

  const auto expect = gates::exp_z(theta) * plus_state();
  for (const auto& b : run_all_branches(p))
    EXPECT_NEAR(fidelity(b.output_state, expect), 1.0, kTol);
}

TEST(Runner, TwoQubitZZGadgetAllBranches) {
  // The paper's per-edge gadget (Eq. 8): ancilla CZ-linked to both wires,
  // YZ(theta) measurement, Z byproduct on both wires.
  const real theta = 0.77;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);  // ancilla
  p.add_entangle(0, 2);
  p.add_entangle(1, 2);
  const signal_t m = p.add_measure(2, MeasBasis::YZ, theta);
  p.add_correct_z(0, SignalExpr(m));
  p.add_correct_z(1, SignalExpr(m));
  p.set_outputs({0, 1});

  // exp(-i theta/2 ZZ) |++>.
  Statevector sv = Statevector::all_plus(2);
  sv.apply_exp_zs(theta, {0, 1});
  for (const auto& b : run_all_branches(p))
    EXPECT_NEAR(fidelity(b.output_state, sv.amplitudes()), 1.0, kTol);
}

TEST(Runner, InputStatesLoaded) {
  // Identity pattern on an input wire: state must round-trip.
  Pattern p;
  p.add_input(5);
  p.set_outputs({5});
  RunOptions opt;
  opt.input_states[5] = {cplx{0.6, 0.0}, cplx{0.0, 0.8}};
  Rng rng(1);
  const RunResult r = run(p, rng, opt);
  const std::vector<cplx> expect{cplx{0.6, 0.0}, cplx{0.0, 0.8}};
  EXPECT_NEAR(fidelity(r.output_state, expect), 1.0, kTol);
}

TEST(Runner, SkippedCorrectionsReported) {
  const real alpha = 0.33;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});

  RunOptions opt;
  opt.apply_corrections = false;
  opt.forced = {1};
  Rng rng(2);
  const RunResult r = run(p, rng, opt);
  EXPECT_EQ(r.pending_x.at(1), 1);
  // Output state is the UNcorrected X J(alpha)|+>.
  const auto expect = gates::x() * (gates::j(alpha) * plus_state());
  EXPECT_NEAR(fidelity(r.output_state, expect), 1.0, kTol);
}

TEST(Runner, ForcedSizeMismatchThrows) {
  Pattern p;
  p.add_prep(0);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.set_outputs({});
  RunOptions opt;
  opt.forced = {0, 1};
  Rng rng(4);
  EXPECT_THROW(run(p, rng, opt), Error);
}

TEST(Runner, PeakLiveReported) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.add_prep(2);
  p.add_entangle(1, 2);
  p.add_measure(1, MeasBasis::X, 0.0);
  p.set_outputs({2});
  Rng rng(5);
  const RunResult r = run(p, rng);
  EXPECT_EQ(r.peak_live, 2);  // never more than two wires alive
}

}  // namespace
}  // namespace mbq::mbqc
