// Batched/async angle evaluation: expectation_batch and sample_batch
// must be BIT-identical to the serial per-point loop at every thread
// count (the determinism contract in session.h), the async path must
// agree with the serial one, and the batch objective must drive the
// optimizers' batch paths to exactly the scalar-path result.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/opt/spsa.h"

namespace mbq::api {
namespace {

using qaoa::Angles;

/// Restores the build-default thread count when the test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_num_threads(0); }
};

std::vector<Angles> random_points(int count, int p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Angles> points;
  points.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) points.push_back(Angles::random(p, rng));
  return points;
}

TEST(ExpectationBatch, BitIdenticalToSerialLoopAtEveryThreadCount) {
  ThreadCountGuard guard;
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(32, 1, 71);

  // The serial reference: one expectation() call per point, in order.
  std::vector<real> serial;
  {
    Session session(w, "mbqc", {.seed = 21});
    for (const Angles& a : points) serial.push_back(session.expectation(a));
  }

  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    Session session(w, "mbqc", {.seed = 21});
    const std::vector<real> batch = session.expectation_batch(points);
    ASSERT_EQ(batch.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
      EXPECT_EQ(batch[i], serial[i]) << "threads=" << threads << " i=" << i;
  }
}

TEST(ExpectationBatch, MixedDepthsAndBackendsMatchSerial) {
  ThreadCountGuard guard;
  for (const char* backend : {"statevector", "mbqc-classical", "router"}) {
    const Workload w = Workload::maxcut(path_graph(4));
    const std::vector<Angles> points = random_points(12, 2, 5);
    std::vector<real> serial;
    {
      Session session(w, backend, {.seed = 3});
      for (const Angles& a : points) serial.push_back(session.expectation(a));
    }
    set_num_threads(4);
    Session session(w, backend, {.seed = 3});
    const std::vector<real> batch = session.expectation_batch(points);
    for (std::size_t i = 0; i < points.size(); ++i)
      EXPECT_EQ(batch[i], serial[i]) << backend << " i=" << i;
  }
}

TEST(ExpectationBatch, InterleavesWithSerialCallsDeterministically) {
  // A batch advances the per-session evaluation counter by its size, so
  // serial calls after a batch continue the same stream sequence.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(6, 1, 13);

  Session all_serial(w, "mbqc", {.seed = 9});
  std::vector<real> expected;
  for (const Angles& a : points) expected.push_back(all_serial.expectation(a));

  Session mixed(w, "mbqc", {.seed = 9});
  const std::vector<real> head =
      mixed.expectation_batch(std::span(points).subspan(0, 4));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(head[i], expected[i]);
  EXPECT_EQ(mixed.expectation(points[4]), expected[4]);
  EXPECT_EQ(mixed.expectation(points[5]), expected[5]);
}

TEST(ExpectationBatch, DuplicatePointsShareOnePrepare) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.3}, {0.2});
  const Angles b({0.7}, {-0.1});
  const std::vector<Angles> points = {a, b, a, a, b};
  // The cache bookkeeping asserted below is the IN-PROCESS contract; a
  // sharded expectation_batch documentedly leaves the cache untouched,
  // so pin num_processes (MBQ_NUM_PROCESSES=2 runs this suite too).
  Session session(w, "statevector", {.num_processes = 1});
  const std::vector<real> values = session.expectation_batch(points);
  EXPECT_EQ(session.cache_misses(), 2u);  // a, b prepared once each
  EXPECT_EQ(session.cache_hits(), 3u);    // the three duplicates
  EXPECT_EQ(values[0], values[2]);
  EXPECT_EQ(values[0], values[3]);
  EXPECT_EQ(values[1], values[4]);
}

TEST(ExpectationBatch, EmptyBatchIsANoOp) {
  Session session(Workload::maxcut(cycle_graph(3)), "statevector");
  EXPECT_TRUE(session.expectation_batch({}).empty());
  EXPECT_TRUE(session.sample_batch({}, 8).empty());
  EXPECT_EQ(session.cache_entries(), 0u);
}

TEST(ExpectationBatch, UnsupportedPointThrowsLikeSerialLoop) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  // In-process cache bookkeeping assertions: pin num_processes.
  Session session(w, "clifford", {.num_processes = 1});
  const std::vector<Angles> points = {Angles({kPi / 2}, {kPi / 4}),
                                      Angles({0.37}, {0.21})};
  EXPECT_THROW(session.expectation_batch(points), Error);
  // Points before the failure are cached and counted, as in the serial
  // loop; the rejected point never touches the cache.
  EXPECT_EQ(session.cache_entries(), 1u);
  EXPECT_EQ(session.cache_misses(), 1u);
  session.expectation(points[0]);
  EXPECT_EQ(session.cache_hits(), 1u);
}

TEST(SampleBatch, BitIdenticalToSerialCallsAtEveryThreadCount) {
  ThreadCountGuard guard;
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(4, 1, 77);
  const int shots = 16;

  std::vector<SampleResult> serial;
  {
    Session session(w, "mbqc", {.seed = 55});
    for (const Angles& a : points) serial.push_back(session.sample(a, shots));
  }

  for (int threads : {1, 2, 8}) {
    set_num_threads(threads);
    Session session(w, "mbqc", {.seed = 55});
    const std::vector<SampleResult> batch = session.sample_batch(points, shots);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i].shots.size(), serial[i].shots.size());
      for (std::size_t s = 0; s < batch[i].shots.size(); ++s) {
        EXPECT_EQ(batch[i].shots[s].x, serial[i].shots[s].x)
            << "threads=" << threads << " point=" << i << " shot=" << s;
        EXPECT_EQ(batch[i].shots[s].cost, serial[i].shots[s].cost);
      }
    }
  }
}

TEST(SampleBatch, AdvancesTheSampleCallCounter) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(3, 1, 31);

  Session serial(w, "mbqc", {.seed = 8});
  for (const Angles& a : points) serial.sample(a, 8);
  const SampleResult after_serial = serial.sample(points[0], 8);

  Session batched(w, "mbqc", {.seed = 8});
  batched.sample_batch(points, 8);
  const SampleResult after_batch = batched.sample(points[0], 8);
  for (std::size_t s = 0; s < after_serial.shots.size(); ++s)
    EXPECT_EQ(after_batch.shots[s].x, after_serial.shots[s].x);
}

TEST(ExpectationAsync, InterleavingWithBatchesKeepsSerialEquivalence) {
  // Session's stream bookkeeping (expectation_calls_) advances on the
  // CALLING thread before any entry point returns — expectation_async
  // assigns its stream index at submission, not when the future
  // resolves.  Point k in SUBMISSION order therefore always draws
  // stream kExpectationStreamBase + k, whatever mix of async, batch and
  // scalar calls carried it and however the futures are interleaved.
  // This had no coverage: a bookkeeping scheme that touched the counter
  // inside the future would pass the all-async and all-batch tests and
  // still break this one.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(8, 1, 23);

  Session all_serial(w, "mbqc", {.seed = 77});
  std::vector<real> expected;
  for (const Angles& a : points) expected.push_back(all_serial.expectation(a));

  Session mixed(w, "mbqc", {.seed = 77});
  // Submission order 0..7: async, batch of 4, async, scalar, batch of 1
  // — with both futures left pending across the calls that follow them.
  auto f0 = mixed.expectation_async(points[0]);
  const std::vector<real> mid =
      mixed.expectation_batch(std::span(points).subspan(1, 4));
  auto f5 = mixed.expectation_async(points[5]);
  const real v6 = mixed.expectation(points[6]);
  const std::vector<real> tail =
      mixed.expectation_batch(std::span(points).subspan(7, 1));

  EXPECT_EQ(f0.get(), expected[0]);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(mid[i], expected[1 + i]) << i;
  EXPECT_EQ(f5.get(), expected[5]);
  EXPECT_EQ(v6, expected[6]);
  EXPECT_EQ(tail[0], expected[7]);
}

TEST(ExpectationAsync, AgreesWithSerialAndOverlaps) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::vector<Angles> points = random_points(5, 1, 41);

  std::vector<real> serial;
  {
    Session session(w, "mbqc", {.seed = 17});
    for (const Angles& a : points) serial.push_back(session.expectation(a));
  }

  Session session(w, "mbqc", {.seed = 17});
  std::vector<std::future<real>> pending;
  pending.reserve(points.size());
  for (const Angles& a : points) pending.push_back(session.expectation_async(a));
  for (std::size_t i = 0; i < pending.size(); ++i)
    EXPECT_EQ(pending[i].get(), serial[i]) << i;
}

TEST(BatchObjective, DrivesOptimizersToTheScalarPathResult) {
  const Workload w = Workload::maxcut(cycle_graph(4));

  opt::NelderMeadOptions nm;
  nm.max_evaluations = 200;
  Session scalar_session(w, "statevector");
  Rng rng1(5);
  const opt::OptResult scalar =
      opt::nelder_mead(scalar_session.objective(), {0.3, 0.2}, nm, rng1);

  Session batch_session(w, "statevector");
  Rng rng2(5);
  const opt::OptResult batch =
      opt::nelder_mead(batch_session.batch_objective(), {0.3, 0.2}, nm, rng2);

  EXPECT_EQ(batch.value, scalar.value);
  EXPECT_EQ(batch.evaluations, scalar.evaluations);
  ASSERT_EQ(batch.x.size(), scalar.x.size());
  for (std::size_t d = 0; d < batch.x.size(); ++d)
    EXPECT_EQ(batch.x[d], scalar.x[d]);

  // Grid search through the same batch objective: identical optimum.
  Session g1(w, "statevector");
  Session g2(w, "statevector");
  const opt::OptResult grid_scalar =
      opt::grid_search(g1.objective(), {{0, 1, 6}, {0, 1, 6}});
  const opt::OptResult grid_batch =
      opt::grid_search(g2.batch_objective(), {{0, 1, 6}, {0, 1, 6}}, 7);
  EXPECT_EQ(grid_batch.value, grid_scalar.value);
  EXPECT_EQ(grid_batch.x, grid_scalar.x);
  EXPECT_EQ(grid_batch.evaluations, grid_scalar.evaluations);
}

TEST(Router, BatchRoutesPerPointWithinOneBatch) {
  // One batch holding a Clifford point and a generic point: the router
  // must route them to different adapters and still return values
  // identical to the per-point serial loop.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles clifford_point({kPi / 2}, {kPi / 4});
  const Angles generic_point({0.37}, {0.21});
  const std::vector<Angles> points = {clifford_point, generic_point};

  std::vector<real> serial;
  {
    Session session(w, "router", {.seed = 2});
    for (const Angles& a : points) serial.push_back(session.expectation(a));
  }
  Session session(w, "router", {.seed = 2});
  const std::vector<real> batch = session.expectation_batch(points);
  EXPECT_EQ(batch[0], serial[0]);
  EXPECT_EQ(batch[1], serial[1]);

  RouterBackend router;
  EXPECT_EQ(router.route(w, clifford_point).backend_name, "clifford");
  EXPECT_EQ(router.route(w, generic_point).backend_name, "zx");
}

}  // namespace
}  // namespace mbq::api
