// Standardization across measurement planes: mid-pattern X/Z corrections
// must be absorbed correctly into XY *and* YZ/Z/X measurement domains
// (the plane-dependent s/t table of standardize.cpp).

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/sim/statevector.h"

namespace mbq::mbqc {
namespace {

/// Compare a pattern against its standardized form on every branch: with
/// corrections applied both must produce the same (deterministic) output.
void expect_standardize_preserves(const Pattern& p,
                                  const std::vector<cplx>& expect) {
  const Pattern s = standardize(p);
  ASSERT_TRUE(is_standard(s));
  for (const auto& b : run_all_branches(p))
    ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9) << "original";
  for (const auto& b : run_all_branches(s))
    ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9)
        << "standardized";
}

TEST(StandardizePlanes, CorrectionBeforeYZMeasurement) {
  // X^s correction on a wire that is later the SUPPORT of a YZ gadget:
  // the X flips the gadget's effective angle (s-domain... here it lands
  // in the t-domain per the YZ table) — build a pattern where a J-step
  // byproduct is corrected mid-pattern instead of at the end.
  const real alpha = 0.9, theta = 1.2;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m0 = p.add_measure(0, MeasBasis::XY, -alpha);
  // Mid-pattern corrections (NOT terminal):
  p.add_correct_x(1, SignalExpr(m0));
  // Now a YZ gadget on wire 1.
  p.add_prep(2);
  p.add_entangle(1, 2);
  const signal_t m1 = p.add_measure(2, MeasBasis::YZ, theta);
  p.add_correct_z(1, SignalExpr(m1));
  p.set_outputs({1});

  // Reference: exp_z(theta) . J(alpha) |+>.
  std::vector<cplx> expect{1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
  expect = gates::j(alpha) * expect;
  expect = gates::exp_z(theta) * expect;
  expect_standardize_preserves(p, expect);

  // The standardized pattern must have rewritten the mid-pattern X into
  // the YZ measurement's domains (no correction before a measurement).
  const Pattern s = standardize(p);
  bool seen_measure_after_correction = false;
  bool seen_correction = false;
  for (const Command& c : s.commands()) {
    if (std::holds_alternative<CmdCorrectX>(c) ||
        std::holds_alternative<CmdCorrectZ>(c))
      seen_correction = true;
    else if (std::holds_alternative<CmdMeasure>(c) && seen_correction)
      seen_measure_after_correction = true;
  }
  EXPECT_FALSE(seen_measure_after_correction);
}

TEST(StandardizePlanes, CorrectionBeforeZMeasurement) {
  // Z-basis measurement preceded by an X correction: standardization
  // absorbs the X as an outcome flip (t-domain).  The physically-same
  // branch of the standardized pattern has its RAW outcome XORed with
  // the absorbed correction value; after the t-flip the RECORDED
  // outcomes and the collapsed states must coincide.
  // Use a generic XY angle for the first measurement so wire 1 is left
  // in superposition and the later Z measurement is genuinely random on
  // both branches (an X-basis first measurement would leave wire 1 in a
  // computational state and make one Z branch impossible).
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, 0.7);
  // Correct wire 1 with X^m, then measure it in Z (wire 2 entangled to
  // it witnesses the collapse).
  p.add_correct_x(1, SignalExpr(m));
  p.add_prep(2);
  p.add_entangle(1, 2);
  p.add_measure(1, MeasBasis::Z, 0.0);
  p.set_outputs({2});

  const Pattern s = standardize(p);
  ASSERT_TRUE(is_standard(s));
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      RunOptions orig_opt;
      orig_opt.forced = {a, b};
      // Same physical branch in the standardized pattern: wire 1 was
      // not physically corrected there, so its raw outcome is b ^ a.
      RunOptions std_opt;
      std_opt.forced = {a, b ^ a};
      Rng rng(0);
      const auto r1 = run(p, rng, orig_opt);
      const auto r2 = run(s, rng, std_opt);
      ASSERT_EQ(r1.outcomes, r2.outcomes) << "a=" << a << " b=" << b;
      ASSERT_NEAR(fidelity(r1.output_state, r2.output_state), 1.0, 1e-9);
    }
  }
}

TEST(StandardizePlanes, ZCorrectionBeforeXYMeasurement) {
  // Z^s before an XY measurement flips the recorded outcome; two chained
  // J's with the intermediate Z correction materialized mid-pattern.
  const real alpha = 0.4, beta = -0.8;
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 1);
  const signal_t m0 = p.add_measure(0, MeasBasis::XY, -alpha);
  // Materialize the J byproducts RIGHT NOW instead of adapting later.
  p.add_correct_x(1, SignalExpr(m0));
  p.add_entangle(1, 2);
  const signal_t m1 = p.add_measure(1, MeasBasis::XY, -beta);
  p.add_correct_x(2, SignalExpr(m1));
  p.set_outputs({2});

  std::vector<cplx> expect{1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
  expect = gates::j(alpha) * expect;
  expect = gates::j(beta) * expect;
  expect_standardize_preserves(p, expect);
}

}  // namespace
}  // namespace mbq::mbqc
