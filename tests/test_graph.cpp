// Unit tests for mbq/graph: construction, generators, properties, io.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/graph/graph.h"
#include "mbq/graph/io.h"

namespace mbq {
namespace {

TEST(Graph, AddEdgeAndQuery) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.neighbors(1), (std::vector<int>{0, 2}));
}

TEST(Graph, EdgesNormalizedAndSorted) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(2, 0);
  const auto& es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (Edge{0, 2}));
  EXPECT_EQ(es[1], (Edge{1, 3}));
}

TEST(Graph, RejectsSelfLoopAndDuplicate) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), Error);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), Error);
  EXPECT_THROW(g.add_edge(0, 5), Error);
}

TEST(Graph, Components) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto comps = g.connected_components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.isolated_vertices(), (std::vector<int>{2}));
}

TEST(Graph, TriangleCount) {
  Graph g = complete_graph(4);  // C(4,3) = 4 triangles
  EXPECT_EQ(g.triangle_count(), 4);
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2);
  EXPECT_EQ(cycle_graph(5).triangle_count(), 0);
}

TEST(Graph, Bipartite) {
  EXPECT_TRUE(path_graph(5).is_bipartite());
  EXPECT_TRUE(cycle_graph(6).is_bipartite());
  EXPECT_FALSE(cycle_graph(5).is_bipartite());
  EXPECT_TRUE(complete_bipartite_graph(3, 4).is_bipartite());
  EXPECT_FALSE(complete_graph(3).is_bipartite());
}

TEST(Generators, Path) {
  const Graph g = path_graph(4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Generators, Cycle) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(cycle_graph(2), Error);
}

TEST(Generators, Complete) {
  const Graph g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Generators, Star) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.degree(0), 5);
}

TEST(Generators, Grid) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_bipartite());
}

TEST(Generators, Petersen) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 15);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.triangle_count(), 0);
}

TEST(Generators, Gnm) {
  Rng rng(1);
  const Graph g = random_gnm_graph(10, 20, rng);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_THROW(random_gnm_graph(4, 7, rng), Error);  // > C(4,2)
}

// Pinned draws for fixed seeds, one per sampling regime (rejection for
// m <= C(n,2)/2, partial Fisher-Yates above).  These freeze the exact
// edge sets: a change to either code path that alters the sampled graphs
// — in particular a regression to rejection sampling in the dense
// regime, which stalls near m = C(n,2) — fails here, not in a timeout.
TEST(Generators, GnmPinnedSparseRegime) {
  {
    Rng rng(42);
    const Graph g = random_gnm_graph(6, 4, rng);  // C(6,2)=15, m <= 7
    EXPECT_EQ(g.edges(),
              (std::vector<Edge>{{0, 2}, {1, 4}, {3, 4}, {4, 5}}));
  }
  {
    Rng rng(123);
    const Graph g = random_gnm_graph(8, 6, rng);  // C(8,2)=28, m <= 14
    EXPECT_EQ(g.edges(), (std::vector<Edge>{
                             {1, 3}, {1, 7}, {2, 7}, {3, 5}, {3, 6}, {5, 6}}));
  }
}

TEST(Generators, GnmPinnedDenseRegime) {
  {
    Rng rng(42);
    const Graph g = random_gnm_graph(6, 11, rng);  // m > 15/2
    EXPECT_EQ(g.edges(),
              (std::vector<Edge>{{0, 1}, {0, 2}, {0, 4}, {1, 2}, {1, 3},
                                 {1, 4}, {1, 5}, {2, 4}, {3, 4}, {3, 5},
                                 {4, 5}}));
  }
  {
    Rng rng(123);
    const Graph g = random_gnm_graph(8, 20, rng);  // m > 28/2
    EXPECT_EQ(g.edges(),
              (std::vector<Edge>{{0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6},
                                 {0, 7}, {1, 2}, {1, 3}, {1, 4}, {1, 7},
                                 {2, 3}, {2, 4}, {2, 7}, {3, 5}, {3, 6},
                                 {3, 7}, {4, 6}, {4, 7}, {5, 6}, {6, 7}}));
  }
}

TEST(Generators, GnmCompleteGraphInstant) {
  // m == C(n,2): the worst case for rejection sampling (the last draw
  // hits with probability 1/C(n,2)); Fisher-Yates does it in m draws.
  Rng rng(99);
  const Graph g = random_gnm_graph(5, 10, rng);
  EXPECT_EQ(g, complete_graph(5));
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(random_gnp_graph(6, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(random_gnp_graph(6, 1.0, rng).num_edges(), 15);
}

TEST(Generators, RandomRegular) {
  Rng rng(3);
  const Graph g = random_regular_graph(12, 3, rng);
  for (int v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_THROW(random_regular_graph(5, 3, rng), Error);  // odd n*d
}

TEST(Io, RoundTrip) {
  Rng rng(4);
  const Graph g = random_gnm_graph(8, 11, rng);
  const Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, RejectsTruncated) {
  EXPECT_THROW(from_edge_list("3 2\n0 1\n"), Error);
}

TEST(Io, WeightedRoundTripBitExact) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  // Deliberately awkward doubles: 0.1 is not representable, 1/3 fills
  // the mantissa — a formatting round trip must still be bit-exact.
  const std::vector<real> w{0.1, -1.0 / 3.0, 2.5e-17};
  const WeightedGraph back = from_edge_list_weighted(to_edge_list(g, w));
  EXPECT_EQ(back.graph, g);
  ASSERT_EQ(back.vertex_weights.size(), 3u);
  for (int v = 0; v < 3; ++v) EXPECT_EQ(back.vertex_weights[v], w[v]);
}

TEST(Io, WeightedReaderAcceptsPlainFiles) {
  const Graph g = path_graph(4);
  const WeightedGraph back = from_edge_list_weighted(to_edge_list(g));
  EXPECT_EQ(back.graph, g);
  EXPECT_TRUE(back.vertex_weights.empty());
}

TEST(Io, PlainReaderRejectsWeightedFiles) {
  // Silently dropping the weights section would be round-trip loss.
  const Graph g = path_graph(3);
  const std::string text = to_edge_list(g, {1.0, 2.0, 3.0});
  EXPECT_THROW(from_edge_list(text), Error);
}

TEST(Io, WeightedHardErrors) {
  const Graph g = path_graph(3);
  // Writer: weight count must match the vertex count.
  EXPECT_THROW(to_edge_list(g, {1.0, 2.0}), Error);
  // Reader: declared weight count must match the vertex count...
  EXPECT_THROW(from_edge_list_weighted("3 1\n0 1\nweights 2\n1.0\n2.0\n"),
               Error);
  // ...and a truncated weights section is a hard error, not empty fill.
  EXPECT_THROW(from_edge_list_weighted("3 1\n0 1\nweights 3\n1.0\n2.0\n"),
               Error);
}

}  // namespace
}  // namespace mbq
