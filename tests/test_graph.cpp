// Unit tests for mbq/graph: construction, generators, properties, io.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/graph/graph.h"
#include "mbq/graph/io.h"

namespace mbq {
namespace {

TEST(Graph, AddEdgeAndQuery) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.neighbors(1), (std::vector<int>{0, 2}));
}

TEST(Graph, EdgesNormalizedAndSorted) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(2, 0);
  const auto& es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (Edge{0, 2}));
  EXPECT_EQ(es[1], (Edge{1, 3}));
}

TEST(Graph, RejectsSelfLoopAndDuplicate) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), Error);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), Error);
  EXPECT_THROW(g.add_edge(0, 5), Error);
}

TEST(Graph, Components) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  const auto comps = g.connected_components();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.isolated_vertices(), (std::vector<int>{2}));
}

TEST(Graph, TriangleCount) {
  Graph g = complete_graph(4);  // C(4,3) = 4 triangles
  EXPECT_EQ(g.triangle_count(), 4);
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2);
  EXPECT_EQ(cycle_graph(5).triangle_count(), 0);
}

TEST(Graph, Bipartite) {
  EXPECT_TRUE(path_graph(5).is_bipartite());
  EXPECT_TRUE(cycle_graph(6).is_bipartite());
  EXPECT_FALSE(cycle_graph(5).is_bipartite());
  EXPECT_TRUE(complete_bipartite_graph(3, 4).is_bipartite());
  EXPECT_FALSE(complete_graph(3).is_bipartite());
}

TEST(Generators, Path) {
  const Graph g = path_graph(4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Generators, Cycle) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(g.num_edges(), 5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(cycle_graph(2), Error);
}

TEST(Generators, Complete) {
  const Graph g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Generators, Star) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.degree(0), 5);
}

TEST(Generators, Grid) {
  const Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_bipartite());
}

TEST(Generators, Petersen) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 15);
  for (int v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.triangle_count(), 0);
}

TEST(Generators, Gnm) {
  Rng rng(1);
  const Graph g = random_gnm_graph(10, 20, rng);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_THROW(random_gnm_graph(4, 7, rng), Error);  // > C(4,2)
}

TEST(Generators, GnpExtremes) {
  Rng rng(2);
  EXPECT_EQ(random_gnp_graph(6, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(random_gnp_graph(6, 1.0, rng).num_edges(), 15);
}

TEST(Generators, RandomRegular) {
  Rng rng(3);
  const Graph g = random_regular_graph(12, 3, rng);
  for (int v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_THROW(random_regular_graph(5, 3, rng), Error);  // odd n*d
}

TEST(Io, RoundTrip) {
  Rng rng(4);
  const Graph g = random_gnm_graph(8, 11, rng);
  const Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, RejectsTruncated) {
  EXPECT_THROW(from_edge_list("3 2\n0 1\n"), Error);
}

}  // namespace
}  // namespace mbq
