// Optimizer and classical-baseline tests.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/opt/spsa.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::opt {
namespace {

real quadratic_bowl(const std::vector<real>& x) {
  // Maximum 5 at (1, -2).
  const real dx = x[0] - 1.0, dy = x[1] + 2.0;
  return 5.0 - (dx * dx + 3 * dy * dy);
}

TEST(NelderMead, FindsQuadraticMaximum) {
  Rng rng(1);
  NelderMeadOptions opt;
  const OptResult r = nelder_mead(quadratic_bowl, {0.0, 0.0}, opt, rng);
  EXPECT_NEAR(r.value, 5.0, 1e-5);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], -2.0, 1e-3);
  EXPECT_GT(r.evaluations, 0);
  EXPECT_LE(r.evaluations, opt.max_evaluations);
}

TEST(NelderMead, RestartsImproveMultimodal) {
  // f has a poor local max at x=-2 (value 1) and global at x=2 (value 3).
  auto f = [](const std::vector<real>& x) {
    const real a = std::exp(-4 * (x[0] + 2) * (x[0] + 2));
    const real b = 3.0 * std::exp(-4 * (x[0] - 2) * (x[0] - 2));
    return a + b;
  };
  Rng rng(2);
  NelderMeadOptions opt;
  opt.restarts = 8;
  opt.initial_step = 2.0;
  const OptResult r = nelder_mead(f, {-2.0}, opt, rng);
  EXPECT_GT(r.value, 2.5);
}

TEST(Grid, FindsCoarseOptimum) {
  const OptResult r = grid_search(quadratic_bowl, {{-3, 3, 25}, {-4, 0, 25}});
  EXPECT_NEAR(r.x[0], 1.0, 0.3);
  EXPECT_NEAR(r.x[1], -2.0, 0.3);
  EXPECT_EQ(r.evaluations, 625);
}

TEST(Grid, RejectsHugeGrids) {
  EXPECT_THROW(
      grid_search(quadratic_bowl, {{0, 1, 10000}, {0, 1, 10000}}), Error);
}

TEST(Spsa, ConvergesOnSmoothObjective) {
  Rng rng(3);
  SpsaOptions opt;
  opt.iterations = 400;
  const OptResult r = spsa(quadratic_bowl, {0.0, 0.0}, opt, rng);
  EXPECT_GT(r.value, 4.5);
}

TEST(Spsa, ToleratesNoise) {
  Rng noise(4);
  auto noisy = [&](const std::vector<real>& x) {
    return quadratic_bowl(x) + 0.05 * noise.normal();
  };
  Rng rng(5);
  SpsaOptions opt;
  opt.iterations = 500;
  const OptResult r = spsa(noisy, {2.0, 1.0}, opt, rng);
  EXPECT_GT(quadratic_bowl(r.x), 4.0);
}

TEST(Exact, BruteForceMaxCut) {
  const Graph g = cycle_graph(6);
  const auto sol = brute_force_maximum(qaoa::CostHamiltonian::maxcut(g));
  EXPECT_NEAR(sol.value, 6.0, 1e-12);  // even cycle: cut all edges
}

TEST(Exact, BruteForceQubo) {
  const auto c = qaoa::CostHamiltonian::qubo(
      2, {1.0, 1.0}, {{{0, 1}, -3.0}}, 0.0);
  const auto sol = brute_force_maximum(c);
  EXPECT_NEAR(sol.value, 1.0, 1e-12);  // pick exactly one variable
  EXPECT_TRUE(sol.x == 1 || sol.x == 2);
}

TEST(Exact, GreedyMisIsIndependent) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_gnm_graph(12, 20, rng);
    const std::uint64_t set = greedy_mis(g);
    for (const Edge& e : g.edges())
      EXPECT_FALSE(((set >> e.u) & 1) && ((set >> e.v) & 1));
    EXPECT_GT(std::popcount(set), 0);
  }
}

TEST(Exact, SimulatedAnnealingNearOptimal) {
  Rng rng(7);
  const Graph g = petersen_graph();
  const auto c = qaoa::CostHamiltonian::maxcut(g);
  const auto exact = brute_force_maximum(c);
  AnnealOptions opt;
  opt.sweeps = 300;
  const auto sa = simulated_annealing(c, opt, rng);
  EXPECT_GE(sa.value, 0.9 * exact.value);
  EXPECT_NEAR(c.evaluate(sa.x), sa.value, 1e-12);
}

TEST(Integration, NelderMeadOptimizesQaoaAngles) {
  // p=1 MaxCut on C4 via the analytic objective: NM should reach the
  // grid optimum.
  const Graph g = cycle_graph(4);
  auto f = [&](const std::vector<real>& v) {
    return qaoa::maxcut_p1_expectation(g, v[0], v[1]);
  };
  Rng rng(8);
  NelderMeadOptions opt;
  opt.restarts = 4;
  const OptResult r = nelder_mead(f, {0.3, 0.3}, opt, rng);
  const auto grid = qaoa::maxcut_p1_grid_optimum(g, 64);
  EXPECT_GE(r.value, grid.value - 1e-3);
}

}  // namespace
}  // namespace mbq::opt
