// Optimizer and classical-baseline tests.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/opt/spsa.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::opt {
namespace {

real quadratic_bowl(const std::vector<real>& x) {
  // Maximum 5 at (1, -2).
  const real dx = x[0] - 1.0, dy = x[1] + 2.0;
  return 5.0 - (dx * dx + 3 * dy * dy);
}

TEST(NelderMead, FindsQuadraticMaximum) {
  Rng rng(1);
  NelderMeadOptions opt;
  const OptResult r = nelder_mead(quadratic_bowl, {0.0, 0.0}, opt, rng);
  EXPECT_NEAR(r.value, 5.0, 1e-5);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], -2.0, 1e-3);
  EXPECT_GT(r.evaluations, 0);
  EXPECT_LE(r.evaluations, opt.max_evaluations);
}

TEST(NelderMead, RestartsImproveMultimodal) {
  // f has a poor local max at x=-2 (value 1) and global at x=2 (value 3).
  auto f = [](const std::vector<real>& x) {
    const real a = std::exp(-4 * (x[0] + 2) * (x[0] + 2));
    const real b = 3.0 * std::exp(-4 * (x[0] - 2) * (x[0] - 2));
    return a + b;
  };
  Rng rng(2);
  NelderMeadOptions opt;
  opt.restarts = 8;
  opt.initial_step = 2.0;
  const OptResult r = nelder_mead(f, {-2.0}, opt, rng);
  EXPECT_GT(r.value, 2.5);
}

TEST(Grid, FindsCoarseOptimum) {
  const OptResult r = grid_search(quadratic_bowl, {{-3, 3, 25}, {-4, 0, 25}});
  EXPECT_NEAR(r.x[0], 1.0, 0.3);
  EXPECT_NEAR(r.x[1], -2.0, 0.3);
  EXPECT_EQ(r.evaluations, 625);
}

TEST(Grid, RejectsHugeGrids) {
  EXPECT_THROW(
      grid_search(quadratic_bowl, {{0, 1, 10000}, {0, 1, 10000}}), Error);
}

TEST(Spsa, ConvergesOnSmoothObjective) {
  Rng rng(3);
  SpsaOptions opt;
  opt.iterations = 400;
  const OptResult r = spsa(quadratic_bowl, {0.0, 0.0}, opt, rng);
  EXPECT_GT(r.value, 4.5);
}

TEST(Spsa, ToleratesNoise) {
  Rng noise(4);
  auto noisy = [&](const std::vector<real>& x) {
    return quadratic_bowl(x) + 0.05 * noise.normal();
  };
  Rng rng(5);
  SpsaOptions opt;
  opt.iterations = 500;
  const OptResult r = spsa(noisy, {2.0, 1.0}, opt, rng);
  EXPECT_GT(quadratic_bowl(r.x), 4.0);
}

TEST(Exact, BruteForceMaxCut) {
  const Graph g = cycle_graph(6);
  const auto sol = brute_force_maximum(qaoa::CostHamiltonian::maxcut(g));
  EXPECT_NEAR(sol.value, 6.0, 1e-12);  // even cycle: cut all edges
}

TEST(Exact, BruteForceQubo) {
  const auto c = qaoa::CostHamiltonian::qubo(
      2, {1.0, 1.0}, {{{0, 1}, -3.0}}, 0.0);
  const auto sol = brute_force_maximum(c);
  EXPECT_NEAR(sol.value, 1.0, 1e-12);  // pick exactly one variable
  EXPECT_TRUE(sol.x == 1 || sol.x == 2);
}

TEST(Exact, GreedyMisIsIndependent) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_gnm_graph(12, 20, rng);
    const std::uint64_t set = greedy_mis(g);
    for (const Edge& e : g.edges())
      EXPECT_FALSE(((set >> e.u) & 1) && ((set >> e.v) & 1));
    EXPECT_GT(std::popcount(set), 0);
  }
}

TEST(Exact, SimulatedAnnealingNearOptimal) {
  Rng rng(7);
  const Graph g = petersen_graph();
  const auto c = qaoa::CostHamiltonian::maxcut(g);
  const auto exact = brute_force_maximum(c);
  AnnealOptions opt;
  opt.sweeps = 300;
  const auto sa = simulated_annealing(c, opt, rng);
  EXPECT_GE(sa.value, 0.9 * exact.value);
  EXPECT_NEAR(c.evaluate(sa.x), sa.value, 1e-12);
}

TEST(BatchPath, BatchedLiftsScalarObjectives) {
  const auto batch = batched(quadratic_bowl);
  const std::vector<real> values = batch({{1.0, -2.0}, {0.0, 0.0}});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 5.0);
  EXPECT_EQ(values[1], quadratic_bowl({0.0, 0.0}));
}

TEST(BatchPath, NelderMeadBatchTrajectoryEqualsScalar) {
  NelderMeadOptions opt;
  opt.restarts = 2;
  Rng rng1(9), rng2(9);
  // Count the points fed through the batch interface to confirm batching
  // actually happens (the initial simplex arrives as one call of 3).
  std::size_t max_batch = 0;
  BatchObjective counting = [&](const std::vector<std::vector<real>>& pts) {
    max_batch = std::max(max_batch, pts.size());
    std::vector<real> out;
    for (const auto& x : pts) out.push_back(quadratic_bowl(x));
    return out;
  };
  const OptResult scalar = nelder_mead(quadratic_bowl, {0.0, 0.0}, opt, rng1);
  const OptResult batch = nelder_mead(counting, {0.0, 0.0}, opt, rng2);
  EXPECT_EQ(batch.value, scalar.value);
  EXPECT_EQ(batch.x, scalar.x);
  EXPECT_EQ(batch.evaluations, scalar.evaluations);
  EXPECT_GE(max_batch, 3u);  // n+1 simplex points in one batch
}

TEST(BatchPath, GridSearchBatchEqualsScalarAcrossChunkSizes) {
  const OptResult scalar =
      grid_search(quadratic_bowl, {{-3, 3, 25}, {-4, 0, 25}});
  for (int chunk : {1, 7, 256, 1024}) {
    const OptResult batch =
        grid_search(batched(quadratic_bowl), {{-3, 3, 25}, {-4, 0, 25}}, chunk);
    EXPECT_EQ(batch.value, scalar.value) << "chunk=" << chunk;
    EXPECT_EQ(batch.x, scalar.x) << "chunk=" << chunk;
    EXPECT_EQ(batch.evaluations, scalar.evaluations);
  }
}

TEST(BatchPath, SpsaBatchEqualsScalar) {
  SpsaOptions opt;
  opt.iterations = 150;
  Rng rng1(12), rng2(12);
  const OptResult scalar = spsa(quadratic_bowl, {0.0, 0.0}, opt, rng1);
  const OptResult batch =
      spsa(batched(quadratic_bowl), {0.0, 0.0}, opt, rng2);
  EXPECT_EQ(batch.value, scalar.value);
  EXPECT_EQ(batch.x, scalar.x);
  EXPECT_EQ(batch.evaluations, scalar.evaluations);
}

TEST(Integration, NelderMeadOptimizesQaoaAngles) {
  // p=1 MaxCut on C4 via the analytic objective: NM should reach the
  // grid optimum.
  const Graph g = cycle_graph(4);
  auto f = [&](const std::vector<real>& v) {
    return qaoa::maxcut_p1_expectation(g, v[0], v[1]);
  };
  Rng rng(8);
  NelderMeadOptions opt;
  opt.restarts = 4;
  const OptResult r = nelder_mead(f, {0.3, 0.3}, opt, rng);
  const auto grid = qaoa::maxcut_p1_grid_optimum(g, 64);
  EXPECT_GE(r.value, grid.value - 1e-3);
}

}  // namespace
}  // namespace mbq::opt
