// Unit tests for the dynamic (qubit-reuse) statevector simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/sim/dynamic_statevector.h"
#include "mbq/sim/statevector.h"

namespace mbq {
namespace {

TEST(MeasurementBasis, Columns) {
  // XY(0) must be the X basis; YZ(0) the Z basis.
  EXPECT_TRUE(Matrix::approx_equal(measurement_basis(MeasBasis::XY, 0.0),
                                   measurement_basis(MeasBasis::X, 0.0)));
  EXPECT_TRUE(Matrix::approx_equal(measurement_basis(MeasBasis::YZ, 0.0),
                                   measurement_basis(MeasBasis::Z, 0.0)));
  for (real a : {0.3, -1.2, 2.9}) {
    EXPECT_TRUE(measurement_basis(MeasBasis::XY, a).is_unitary());
    EXPECT_TRUE(measurement_basis(MeasBasis::YZ, a).is_unitary());
  }
}

TEST(DynamicSv, AddWirePlusAndZero) {
  DynamicStatevector dsv;
  dsv.add_wire(10, true);
  dsv.add_wire(20, false);
  EXPECT_EQ(dsv.num_live(), 2);
  // State should be |0>_20 ⊗ |+>_10.
  const auto amps = dsv.state_in_order({10, 20});
  const real s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(amps[0] - cplx{s, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(amps[1] - cplx{s, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(amps[2]), 0.0, kTol);
  EXPECT_THROW(dsv.add_wire(10), Error);
}

TEST(DynamicSv, MatchesFixedSimulatorOnRandomCircuit) {
  Rng rng(5);
  DynamicStatevector dsv;
  Statevector sv(3);
  for (int q = 0; q < 3; ++q) {
    dsv.add_wire(q, true);
    sv.apply_h(q);
  }
  for (int step = 0; step < 30; ++step) {
    const int q = static_cast<int>(rng.uniform_index(3));
    switch (rng.uniform_index(4)) {
      case 0:
        dsv.apply_h(q);
        sv.apply_h(q);
        break;
      case 1: {
        const real t = rng.angle();
        dsv.apply_rz(q, t);
        sv.apply_rz(q, t);
        break;
      }
      case 2: {
        int r = static_cast<int>(rng.uniform_index(3));
        if (r == q) r = (r + 1) % 3;
        dsv.apply_cz(q, r);
        sv.apply_cz(q, r);
        break;
      }
      case 3:
        dsv.apply_x(q);
        sv.apply_x(q);
        break;
    }
  }
  EXPECT_NEAR(fidelity(dsv.state_in_order({0, 1, 2}), sv.amplitudes()), 1.0,
              kTol);
}

TEST(DynamicSv, MeasureRemoveZBasis) {
  // Bell pair; Z measurement of one half collapses the other.
  DynamicStatevector dsv;
  dsv.add_wire(0, true);
  dsv.add_wire(1, false);
  // CX(0 -> 1) built from H and CZ.
  dsv.apply_h(1);
  dsv.apply_cz(0, 1);
  dsv.apply_h(1);
  Rng rng(1);
  const Matrix zb = measurement_basis(MeasBasis::Z, 0.0);
  const int m = dsv.measure_remove(0, zb, rng);
  EXPECT_EQ(dsv.num_live(), 1);
  const auto amps = dsv.state_in_order({1});
  EXPECT_NEAR(std::abs(amps[m]), 1.0, kTol);  // perfectly correlated
  EXPECT_NEAR(std::abs(amps[1 - m]), 0.0, kTol);
}

TEST(DynamicSv, ForcedOutcomeZeroProbabilityThrows) {
  DynamicStatevector dsv;
  dsv.add_wire(0, false);  // |0>
  Rng rng(2);
  const Matrix zb = measurement_basis(MeasBasis::Z, 0.0);
  EXPECT_THROW(dsv.measure_remove(0, zb, rng, 1), Error);
}

TEST(DynamicSv, XYMeasurementProbabilities) {
  // On |0>, an XY(alpha) measurement is 50/50 for every alpha.
  for (real a : {0.0, 0.7, -2.1}) {
    DynamicStatevector dsv;
    dsv.add_wire(0, false);
    EXPECT_NEAR(dsv.prob_one(0, measurement_basis(MeasBasis::XY, a)), 0.5,
                kTol);
  }
  // On |+>, X measurement gives 0 with certainty.
  DynamicStatevector dsv;
  dsv.add_wire(0, true);
  EXPECT_NEAR(dsv.prob_one(0, measurement_basis(MeasBasis::X, 0.0)), 0.0,
              kTol);
}

TEST(DynamicSv, JGadgetTeleportation) {
  // The core MBQC step: wire v entangled to fresh ancilla by CZ, measure v
  // in XY(-alpha); outcome m yields X^m J(alpha) |psi> on the ancilla.
  Rng rng(7);
  for (int forced = 0; forced <= 1; ++forced) {
    const real alpha = 0.83;
    // Input |psi> = rz(0.4) H |0> on wire 0.
    DynamicStatevector dsv;
    dsv.add_wire(0, true);
    dsv.apply_rz(0, 0.4);
    dsv.add_wire(1, true);
    dsv.apply_cz(0, 1);
    const int m = dsv.measure_remove(
        0, measurement_basis(MeasBasis::XY, -alpha), rng, forced);
    ASSERT_EQ(m, forced);
    // Reference: X^m J(alpha) rz(0.4) |+>.
    std::vector<cplx> ref{1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
    ref = gates::rz(0.4) * ref;
    ref = gates::j(alpha) * ref;
    if (m) ref = gates::x() * ref;
    EXPECT_NEAR(fidelity(dsv.state_in_order({1}), ref), 1.0, kTol)
        << "branch " << forced;
  }
}

TEST(DynamicSv, YZGadgetPhase) {
  // Ancilla gadget: ancilla |+> CZ-coupled to wire, measured in YZ(theta)
  // implements exp(-i theta/2 Z) (outcome 0) or Z * that (outcome 1).
  Rng rng(8);
  for (int forced = 0; forced <= 1; ++forced) {
    const real theta = 1.1;
    DynamicStatevector dsv;
    dsv.add_wire(0, true);  // input |+>
    dsv.apply_rz(0, 0.9);   // arbitrary input state
    dsv.add_wire(5, true);  // ancilla
    dsv.apply_cz(0, 5);
    const int m = dsv.measure_remove(
        5, measurement_basis(MeasBasis::YZ, theta), rng, forced);
    ASSERT_EQ(m, forced);
    std::vector<cplx> ref{1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
    ref = gates::rz(0.9) * ref;
    ref = gates::exp_z(theta) * ref;
    if (m) ref = gates::z() * ref;
    EXPECT_NEAR(fidelity(dsv.state_in_order({0}), ref), 1.0, kTol)
        << "branch " << forced;
  }
}

TEST(DynamicSv, PeakLiveTracksHighWater) {
  DynamicStatevector dsv;
  Rng rng(3);
  dsv.add_wire(0, true);
  dsv.add_wire(1, true);
  dsv.add_wire(2, true);
  EXPECT_EQ(dsv.peak_live(), 3);
  dsv.measure_remove(1, measurement_basis(MeasBasis::X, 0.0), rng);
  EXPECT_EQ(dsv.num_live(), 2);
  dsv.add_wire(3, true);
  EXPECT_EQ(dsv.peak_live(), 3);  // never exceeded 3
  dsv.add_wire(4, true);
  EXPECT_EQ(dsv.peak_live(), 4);
}

TEST(DynamicSv, StateInOrderPermutes) {
  DynamicStatevector dsv;
  dsv.add_wire(7, false);
  dsv.apply_x(7);  // |1>_7
  dsv.add_wire(3, false);
  // Order {3, 7}: index bit0 = wire3, bit1 = wire7 -> state index 2.
  auto amps = dsv.state_in_order({3, 7});
  EXPECT_NEAR(std::abs(amps[2] - cplx{1, 0}), 0.0, kTol);
  // Order {7, 3}: index 1.
  amps = dsv.state_in_order({7, 3});
  EXPECT_NEAR(std::abs(amps[1] - cplx{1, 0}), 0.0, kTol);
  EXPECT_THROW(dsv.state_in_order({7}), Error);
}

TEST(DynamicSv, RzKernelBitIdenticalToApply1q) {
  // The dedicated diagonal-phase kernel must produce numerically
  // identical amplitudes to routing diag(1, e^{i t}) through the generic
  // 1q path (== comparison: exact values, tolerant of zero signs — the
  // generic path's 0·a cross terms may flip a zero's sign), while
  // keeping the norm fold usable where apply_1q must invalidate it.
  for (real theta : {0.37, -1.9, 3.14159, 0.0}) {
    DynamicStatevector a, b;
    for (DynamicStatevector* d : {&a, &b}) {
      d->add_wire(0);
      d->add_wire(1, false);
      d->add_wire(2);
      d->apply_h(1);
      d->apply_cz(0, 2);
      d->apply_rz(0, 0.6);
      d->normalize();  // establishes a valid running fold
    }
    ASSERT_TRUE(a.norm_fold_valid());
    a.apply_rz(1, theta);
    b.apply_1q(1, Matrix(2, 2, {1, 0, 0, std::exp(cplx{0.0, theta})}));
    EXPECT_TRUE(a.norm_fold_valid());
    EXPECT_FALSE(b.norm_fold_valid());
    const auto wa = a.state_in_order({0, 1, 2});
    const auto wb = b.state_in_order({0, 1, 2});
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      ASSERT_EQ(wa[i].real(), wb[i].real()) << "theta " << theta << " i " << i;
      ASSERT_EQ(wa[i].imag(), wb[i].imag()) << "theta " << theta << " i " << i;
    }
  }
}

TEST(DynamicSv, ZeroStateThresholdConstantsArePinned) {
  // The three guards have distinct units and deliberately distinct
  // scales; pin them so a refactor can't silently collapse them back
  // into one magic number.
  EXPECT_EQ(DynamicStatevector::kMinAddWireNorm, 1e-12);
  EXPECT_EQ(DynamicStatevector::kMinBornNorm2, 1e-14);
  EXPECT_EQ(DynamicStatevector::kMinProjectionNorm2, 1e-18);
}

TEST(DynamicSv, AddWireStateNormBoundary) {
  // |a| just above kMinAddWireNorm is accepted (and renormalized to a
  // clean unit state); just below is rejected.
  DynamicStatevector ok;
  ok.add_wire_state(0, cplx{2e-12, 0.0}, cplx{0.0, 0.0});
  EXPECT_NEAR(std::abs(ok.state_in_order({0})[0] - cplx{1, 0}), 0.0, kTol);

  DynamicStatevector bad;
  EXPECT_THROW(bad.add_wire_state(0, cplx{0.5e-12, 0.0}, cplx{0.0, 0.0}),
               Error);
}

TEST(DynamicSv, NormalizeBornNormBoundary) {
  // normalize() gates on the SQUARED norm: |psi|^2 = 4e-14 > kMinBornNorm2
  // passes (and leaves a valid fold), 2.5e-15 < kMinBornNorm2 throws.
  DynamicStatevector ok;
  ok.add_wire(0, false);
  ok.apply_1q(0, Matrix(2, 2, {2e-7, 0, 0, 0}));
  ok.normalize();
  EXPECT_TRUE(ok.norm_fold_valid());
  EXPECT_NEAR(ok.norm(), 1.0, kTol);

  DynamicStatevector bad;
  bad.add_wire(0, false);
  bad.apply_1q(0, Matrix(2, 2, {0.5e-7, 0, 0, 0}));
  EXPECT_THROW(bad.normalize(), Error);
}

TEST(DynamicSv, ProjectionNormBoundary) {
  // A forced outcome whose projection lands just above
  // kMinProjectionNorm2 (4e-18) is rescued by renormalization; just
  // below (2.5e-19) is rejected as numerically meaningless.
  Rng rng(1);
  DynamicStatevector ok;
  ok.add_wire(0, false);
  ok.apply_1q(0, Matrix(2, 2, {1, 0, 2e-9, 0}));
  EXPECT_EQ(
      ok.measure_remove(0, measurement_basis(MeasBasis::Z, 0.0), rng, 1), 1);

  DynamicStatevector bad;
  bad.add_wire(0, false);
  bad.apply_1q(0, Matrix(2, 2, {1, 0, 0.5e-9, 0}));
  EXPECT_THROW(
      bad.measure_remove(0, measurement_basis(MeasBasis::Z, 0.0), rng, 1),
      Error);
}

}  // namespace
}  // namespace mbq
