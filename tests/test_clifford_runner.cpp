// The Clifford pattern runner must agree with the statevector runner at
// Clifford parameter points.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/clifford_runner.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/pauli.h"

namespace mbq::mbqc {
namespace {

TEST(CliffordRunner, DetectsCliffordAngles) {
  Pattern p;
  p.add_prep(0);
  p.add_measure(0, MeasBasis::XY, kPi / 2);
  p.set_outputs({});
  EXPECT_TRUE(is_clifford_pattern(p));
  Pattern q;
  q.add_prep(0);
  q.add_measure(0, MeasBasis::XY, 0.3);
  q.set_outputs({});
  EXPECT_FALSE(is_clifford_pattern(q));
  Rng rng(0);
  EXPECT_THROW(run_clifford(q, rng), Error);
}

TEST(CliffordRunner, MatchesStatevectorOnCliffordQaoa) {
  // MaxCut gadget angles are -gamma; mixer J angles are 2*beta.  Pick
  // gamma = pi/2, beta = pi/4: all angles Clifford.
  const Graph g = cycle_graph(4);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a({kPi / 2}, {kPi / 4});
  const auto cp = core::compile_qaoa(cost, a);
  ASSERT_TRUE(is_clifford_pattern(cp.pattern));

  // Statevector reference for output-register Pauli expectations.
  const Statevector ref = qaoa::qaoa_state(cost, a);

  Rng rng(1);
  for (int rep = 0; rep < 5; ++rep) {
    const CliffordRunResult r = run_clifford(cp.pattern, rng);
    const int width = r.tableau.num_qubits();
    auto z_string = [&](std::initializer_list<int> outs) {
      std::uint64_t zmask = 0;
      for (int o : outs)
        zmask |= std::uint64_t{1} << r.output_qubits[o];
      return PauliString(0, zmask, width);
    };
    for (const Edge& e : g.edges()) {
      const real expect = std::real(
          PauliString(0,
                      (1ULL << e.u) | (1ULL << e.v), 4)
              .expectation(ref));
      EXPECT_NEAR(static_cast<real>(r.tableau.expectation(z_string({e.u, e.v}))),
                  expect, 1e-9)
          << "edge " << e.u << "," << e.v;
    }
  }
}

TEST(CliffordRunner, GraphStatePatternStabilizers) {
  // N + E only: the pattern prepares the graph state itself; check a
  // stabilizer through the runner.
  const Graph g = path_graph(3);
  Pattern p;
  for (int v = 0; v < 3; ++v) p.add_prep(v);
  for (const Edge& e : g.edges()) p.add_entangle(e.u, e.v);
  p.set_outputs({0, 1, 2});
  Rng rng(2);
  const CliffordRunResult r = run_clifford(p, rng);
  // K_1 = Z0 X1 Z2 stabilizes |G>.
  EXPECT_EQ(r.tableau.expectation(PauliString("ZXZ")), 1);
  EXPECT_EQ(r.tableau.expectation(PauliString("XZI")), 1);
}

TEST(CliffordRunner, DeterministicOutputsAcrossRuns) {
  // Corrected Clifford QAOA pattern: output-register stabilizer
  // expectations must not depend on the random branch.
  const Graph g = path_graph(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a({kPi}, {kPi / 2});
  const auto cp = core::compile_qaoa(cost, a);
  ASSERT_TRUE(is_clifford_pattern(cp.pattern));
  std::vector<int> values;
  Rng rng(3);
  for (int rep = 0; rep < 6; ++rep) {
    const CliffordRunResult r = run_clifford(cp.pattern, rng);
    std::uint64_t zmask = (1ULL << r.output_qubits[0]) |
                          (1ULL << r.output_qubits[1]);
    values.push_back(
        r.tableau.expectation(PauliString(0, zmask, r.tableau.num_qubits())));
  }
  for (int v : values) EXPECT_EQ(v, values.front());
}

}  // namespace
}  // namespace mbq::mbqc
