// Hardware-efficient ansatz (Sec. V): construction, parameter plumbing,
// and MBQC translation through the tailored compiler.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/hea.h"

namespace mbq::qaoa {
namespace {

TEST(Hea, ParameterRoundTrip) {
  Rng rng(1);
  const HeaParameters p = HeaParameters::random(3, 4, rng);
  EXPECT_EQ(p.layers(), 3);
  const auto flat = p.flat();
  EXPECT_EQ(static_cast<int>(flat.size()), hea_parameter_count(3, 4));
  const HeaParameters q = HeaParameters::from_flat(flat, 3, 4);
  EXPECT_EQ(q.flat(), flat);
  EXPECT_THROW(HeaParameters::from_flat({0.1}, 3, 4), Error);
}

TEST(Hea, CircuitShape) {
  Rng rng(2);
  const Graph coupling = path_graph(4);
  const HeaParameters p = HeaParameters::random(2, 4, rng);
  const Circuit c = hea_circuit(coupling, p);
  // Per layer: 4 Rz + 4 Rx + 3 CZ.
  EXPECT_EQ(c.size(), 2u * (4 + 4 + 3));
  EXPECT_EQ(c.entangling_count_compiled(), 2u * 3u);
}

TEST(Hea, MbqcTranslationMatchesStatevector) {
  Rng rng(3);
  const Graph coupling = cycle_graph(3);
  const HeaParameters params = HeaParameters::random(2, 3, rng);
  const Circuit c = hea_circuit(coupling, params);
  Statevector sv = Statevector::all_plus(3);
  c.apply_to(sv);
  const auto cp = core::compile_circuit_tailored(c);
  Rng run_rng(4);
  for (int i = 0; i < 3; ++i) {
    const auto r = mbqc::run(cp.pattern, run_rng);
    ASSERT_NEAR(fidelity(r.output_state, sv.amplitudes()), 1.0, 1e-9);
  }
}

TEST(Hea, TranslatedPatternHasGFlow) {
  Rng rng(5);
  const Graph coupling = path_graph(3);
  const HeaParameters params = HeaParameters::random(1, 3, rng);
  const auto cp =
      core::compile_circuit_tailored(hea_circuit(coupling, params));
  const auto og = mbqc::open_graph_from_pattern(cp.pattern);
  const auto gf = mbqc::find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(mbqc::verify_gflow(og, *gf));
}

TEST(Hea, TailoredCheaperThanGenericOnRzLayers) {
  // Rz gates are free teleportation-wise in the tailored translation; the
  // J-decomposition pays 2 ancillas per Rz.
  Rng rng(6);
  const Graph coupling = path_graph(4);
  const HeaParameters params = HeaParameters::random(2, 4, rng);
  const Circuit c = hea_circuit(coupling, params);
  const auto tailored = core::compile_circuit_tailored(c);
  // Tailored: Rz -> 1 gadget ancilla; Rx -> 2 J ancillas.
  // 2 layers * 4 qubits * (1 + 2) = 24 ancillas.
  EXPECT_EQ(tailored.pattern.num_prepared() - 4, 24);
}

}  // namespace
}  // namespace mbq::qaoa
