// The serving daemon, end to end: an in-process serve::Daemon with a
// real mbq_worker fleet, real sockets (UNIX and TCP), real api::Sessions
// in remote mode.  The load-bearing assertions are all bit-identity —
// everything a Session gets back through mbqd must equal the
// single-process local path exactly, including through backpressure,
// concurrent tenants, protocol-version rejection, and (the acceptance
// test) a worker SIGKILLed mid-run with a second client attached.

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/graph/generators.h"
#include "mbq/serve/client.h"
#include "mbq/serve/daemon.h"
#include "mbq/shard/protocol.h"
#include "mbq/shard/worker_pool.h"

namespace mbq {
namespace {

using api::SampleResult;
using api::Session;
using api::SessionOptions;
using api::Workload;
using qaoa::Angles;
using namespace mbq::serve;

std::string worker_path() {
  const std::string path = shard::resolve_worker_path();
  EXPECT_FALSE(path.empty())
      << "mbq_worker not found next to the test binary — build the "
         "mbq_worker target (part of the default build)";
  return path;
}

/// Unique unix socket path per test (daemons unlink on stop, but a
/// crashed earlier run must not collide).
std::string unix_socket_path(const std::string& tag) {
  return "/tmp/mbq-serve-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

DaemonOptions daemon_options(std::vector<std::string> endpoints,
                             int workers) {
  DaemonOptions o;
  o.endpoints = std::move(endpoints);
  o.workers = workers;
  o.worker_path = worker_path();
  return o;
}

SessionOptions remote_options(std::uint64_t seed,
                              const std::string& endpoint) {
  SessionOptions o;
  o.seed = seed;
  o.daemon_endpoint = endpoint;
  return o;
}

SessionOptions local_options(std::uint64_t seed) {
  SessionOptions o;
  o.seed = seed;
  o.num_processes = 1;  // the single-process reference path
  return o;
}

void expect_same_shots(const SampleResult& got, const SampleResult& want,
                       const std::string& context) {
  ASSERT_EQ(got.shots.size(), want.shots.size()) << context;
  for (std::size_t s = 0; s < want.shots.size(); ++s) {
    EXPECT_EQ(got.shots[s].x, want.shots[s].x) << context << " shot " << s;
    EXPECT_EQ(got.shots[s].cost, want.shots[s].cost)
        << context << " shot " << s;
  }
}

/// The tests construct Sessions with explicit options; a stray
/// MBQ_DAEMON_ENDPOINT in the environment would silently re-route the
/// "local" references through some other daemon.
class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("MBQ_DAEMON_ENDPOINT");
    ::unsetenv("MBQ_WORKER_TIMEOUT_MS");
  }
};

// --- bit-identity over both transports ---------------------------------

TEST_F(ServeDaemonTest, UnixRemoteSessionMatchesLocalBitForBit) {
  const std::string sock = unix_socket_path("unix");
  Daemon daemon(daemon_options({"unix:" + sock}, 2));
  daemon.start();
  ASSERT_TRUE(daemon.running());
  EXPECT_EQ(daemon.workers(), 2);

  Rng rng(11);
  const Workload w = Workload::maxcut(random_regular_graph(10, 3, rng));
  const Angles a({0.42}, {0.31});
  std::vector<Angles> batch;
  Rng prng(12);
  for (int i = 0; i < 3; ++i) batch.push_back(Angles::random(1, prng));

  Session remote(w, "mbqc", remote_options(404, "unix:" + sock));
  Session local(w, "mbqc", local_options(404));
  ASSERT_TRUE(remote.remote());
  ASSERT_FALSE(local.remote());

  expect_same_shots(remote.sample(a, 200), local.sample(a, 200), "sample");

  const auto remote_batch = remote.sample_batch(batch, 64);
  const auto local_batch = local.sample_batch(batch, 64);
  ASSERT_EQ(remote_batch.size(), local_batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_same_shots(remote_batch[i], local_batch[i],
                      "batch point " + std::to_string(i));

  const auto remote_es = remote.expectation_batch(batch);
  const auto local_es = local.expectation_batch(batch);
  ASSERT_EQ(remote_es.size(), local_es.size());
  for (std::size_t i = 0; i < remote_es.size(); ++i)
    EXPECT_EQ(remote_es[i], local_es[i]) << "expectation " << i;

  // Interleaving remote and local calls must keep the stream counters in
  // lockstep: call #4 on each side still agrees.
  expect_same_shots(remote.sample(a, 50), local.sample(a, 50),
                    "post-batch sample");

  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.requests_total, 4u);
  EXPECT_EQ(stats.requests_active, 0u);
  EXPECT_GE(stats.slices_completed, 4u);
  EXPECT_EQ(stats.slices_completed,
            stats.slices_dispatched - stats.slices_redispatched);
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST_F(ServeDaemonTest, TcpServesTwoConcurrentTenantsCorrectly) {
  Daemon daemon(daemon_options({"tcp:127.0.0.1:0"}, 2));
  daemon.start();
  const std::string endpoint = daemon.endpoint_string();
  ASSERT_NE(endpoint.find("tcp:"), std::string::npos) << endpoint;
  ASSERT_EQ(endpoint.find(":0", endpoint.size() - 2), std::string::npos)
      << "ephemeral port not resolved: " << endpoint;

  Rng rng(21);
  const Workload w1 = Workload::maxcut(random_regular_graph(10, 3, rng));
  const Workload w2 = Workload::maxcut(cycle_graph(12));
  const Angles a({0.42}, {0.31});

  // Local single-process references, computed up front.
  SampleResult want1 = Session(w1, "mbqc", local_options(1)).sample(a, 400);
  SampleResult want2 = Session(w2, "mbqc", local_options(2)).sample(a, 400);

  // Two tenants, genuinely concurrent: each holds its own connection and
  // submits at the same time, so slices of both interleave on the fleet.
  SampleResult got1, got2;
  std::atomic<int> failures{0};
  std::thread t1([&] {
    try {
      got1 = Session(w1, "mbqc", remote_options(1, endpoint)).sample(a, 400);
    } catch (...) {
      failures.fetch_add(1);
    }
  });
  std::thread t2([&] {
    try {
      got2 = Session(w2, "mbqc", remote_options(2, endpoint)).sample(a, 400);
    } catch (...) {
      failures.fetch_add(1);
    }
  });
  t1.join();
  t2.join();
  ASSERT_EQ(failures.load(), 0);
  expect_same_shots(got1, want1, "tenant 1");
  expect_same_shots(got2, want2, "tenant 2");

  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.connections_total, 2u);
  EXPECT_GE(stats.requests_total, 2u);
  daemon.stop();
}

// --- warm cache --------------------------------------------------------

TEST_F(ServeDaemonTest, RepeatedFingerprintIsAWarmHit) {
  const std::string sock = unix_socket_path("warm");
  Daemon daemon(daemon_options({"unix:" + sock}, 2));
  daemon.start();

  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = "mbqc";
  req.seed = 77;
  req.workload = Workload::maxcut(cycle_graph(8));
  req.points = {Angles({0.42}, {0.31})};
  req.shots = 64;
  req.end = 64;

  DaemonClient client("unix:" + sock, "warm-test");
  const auto first = client.run(req);
  EXPECT_FALSE(first.warm_hit)
      << "a never-seen (spec, angles) pair reported warm";
  const auto second = client.run(req);
  EXPECT_TRUE(second.warm_hit)
      << "the identical resubmission missed the warm cache";
  // Warm or cold is a latency property only — payloads are bit-equal.
  EXPECT_EQ(first.outcomes, second.outcomes);

  // A different client repeating the same fingerprint also hits: the
  // cache is daemon-wide, not per-connection.
  DaemonClient other("unix:" + sock, "warm-test-2");
  EXPECT_TRUE(other.run(req).warm_hit);

  // New angles on the same workload miss again.
  req.points = {Angles({0.1}, {0.2})};
  EXPECT_FALSE(client.run(req).warm_hit);

  const DaemonStats stats = daemon.stats();
  EXPECT_GE(stats.warm_hits, 2u);
  EXPECT_GE(stats.warm_misses, 2u);
  daemon.stop();
}

// --- backpressure and protocol rejection -------------------------------

TEST_F(ServeDaemonTest, OverloadedConnectionGetsBusyNotAHang) {
  const std::string sock = unix_socket_path("busy");
  DaemonOptions opts = daemon_options({"unix:" + sock}, 1);
  opts.max_pending_requests = 1;
  Daemon daemon(std::move(opts));
  daemon.start();

  // DaemonClient::run is synchronous, so overload needs the raw wire:
  // handshake, then two SUBMITs back to back on one connection.
  const int fd = connect_endpoint(parse_endpoint("unix:" + sock));
  Hello hello;
  hello.client_name = "busy-test";
  shard::write_frame(fd, encode_hello(hello));
  auto reply = shard::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(frame_kind(*reply), FrameKind::kHelloOk);

  Submit s;
  s.request.kind = shard::TaskKind::kSample;
  s.request.backend = "mbqc";
  s.request.seed = 5;
  s.request.workload = Workload::maxcut(cycle_graph(10));
  s.request.points = {Angles({0.42}, {0.31})};
  s.request.shots = 512;
  s.request.end = 512;
  s.request_id = 1;
  shard::write_frame(fd, encode_submit(s));
  s.request_id = 2;
  shard::write_frame(fd, encode_submit(s));

  // Request 2 must bounce with a typed BUSY naming it; request 1 must
  // still stream to DONE untouched by the rejection.
  bool saw_busy = false, saw_done = false;
  SliceMerger merger(shard::TaskKind::kSample, 0, 512);
  while (!saw_done) {
    auto frame = shard::read_frame(fd, 30000);
    ASSERT_TRUE(frame.has_value()) << "daemon went silent";
    switch (frame_kind(*frame)) {
      case FrameKind::kBusy: {
        const Busy b = decode_busy(*frame);
        EXPECT_EQ(b.request_id, 2u);
        EXPECT_FALSE(b.message.empty());
        saw_busy = true;
        break;
      }
      case FrameKind::kSlice:
        merger.add(decode_slice(*frame));
        break;
      case FrameKind::kDone: {
        const Done d = decode_done(*frame);
        EXPECT_EQ(d.request_id, 1u);
        saw_done = true;
        break;
      }
      default:
        FAIL() << "unexpected frame kind "
               << static_cast<int>(frame_kind(*frame));
    }
  }
  EXPECT_TRUE(saw_busy);
  EXPECT_TRUE(merger.complete());
  ::close(fd);

  EXPECT_GE(daemon.stats().busy_rejections, 1u);
  daemon.stop();
}

TEST_F(ServeDaemonTest, ProtocolVersionMismatchFailsWithAMessage) {
  const std::string sock = unix_socket_path("version");
  Daemon daemon(daemon_options({"unix:" + sock}, 1));
  daemon.start();

  const int fd = connect_endpoint(parse_endpoint("unix:" + sock));
  Hello hello;
  hello.version = kProtocolVersion + 7;
  hello.client_name = "time-traveler";
  shard::write_frame(fd, encode_hello(hello));
  auto reply = shard::read_frame(fd, 30000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(frame_kind(*reply), FrameKind::kError);
  const ErrorFrame e = decode_error(*reply);
  EXPECT_EQ(e.request_id, kNoRequest);
  EXPECT_NE(e.message.find("version"), std::string::npos) << e.message;
  // ...and the daemon hangs up rather than serving a mismatched peer.
  EXPECT_FALSE(shard::read_frame(fd, 30000).has_value());
  ::close(fd);
  daemon.stop();
}

TEST_F(ServeDaemonTest, RemoteModeNeverFallsBackSilently) {
  // No daemon at this endpoint: the Session must throw, not quietly run
  // locally.
  Session s(Workload::maxcut(cycle_graph(6)), "mbqc",
            remote_options(3, "unix:/tmp/mbq-no-daemon-here.sock"));
  EXPECT_THROW(s.sample(Angles({0.1}, {0.2}), 16), Error);

  // An instance-constructed backend has no registry name a worker could
  // rebuild — remote mode refuses it loudly.
  Session inst(Workload::maxcut(cycle_graph(6)),
               api::BackendRegistry::instance().create("mbqc"),
               remote_options(3, "unix:/tmp/mbq-no-daemon-here.sock"));
  EXPECT_THROW(inst.sample(Angles({0.1}, {0.2}), 16), Error);
}

// --- THE acceptance test: SIGKILL mid-run, second tenant attached ------

TEST_F(ServeDaemonTest, SigkillMidRunRedispatchesAndStaysBitIdentical) {
  Daemon daemon(daemon_options({"tcp:localhost:0"}, 2));
  daemon.start();
  const std::string endpoint = daemon.endpoint_string();

  Rng rng(31);
  const Workload w = Workload::maxcut(random_regular_graph(14, 3, rng));
  const Workload w2 = Workload::maxcut(cycle_graph(12));
  const Angles a({0.42}, {0.31});
  constexpr int kShots = 1500;

  // Single-process references.
  const SampleResult want =
      Session(w, "mbqc", local_options(1001)).sample(a, kShots);
  const SampleResult want2 =
      Session(w2, "mbqc", local_options(1002)).sample(a, 300);

  // Killing a worker that happens to be idle only respawns it; a busy
  // victim is what forces a re-dispatch.  The schedule isn't ours to
  // control, so retry a few times until the stat moves — asserting
  // bit-identity on EVERY attempt, kill or no kill.
  bool redispatched = false;
  for (int attempt = 0; attempt < 5 && !redispatched; ++attempt) {
    const std::uint64_t before = daemon.stats().slices_redispatched;

    SampleResult got, got2;
    std::atomic<int> failures{0};
    std::thread tenant([&] {
      try {
        got = Session(w, "mbqc", remote_options(1001, endpoint))
                  .sample(a, kShots);
      } catch (...) {
        failures.fetch_add(1);
      }
    });
    std::thread second_tenant([&] {
      try {
        got2 = Session(w2, "mbqc", remote_options(1002, endpoint))
                   .sample(a, 300);
      } catch (...) {
        failures.fetch_add(1);
      }
    });

    // Wait until some worker is actually busy, then SIGKILL it.
    std::int64_t victim = -1;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (victim < 0 && std::chrono::steady_clock::now() < deadline) {
      for (const WorkerStats& ws : daemon.stats().workers)
        if (ws.busy) {
          victim = ws.pid;
          break;
        }
      if (victim < 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (victim >= 0) ::kill(static_cast<pid_t>(victim), SIGKILL);

    tenant.join();
    second_tenant.join();
    ASSERT_EQ(failures.load(), 0)
        << "a remote call failed on attempt " << attempt;
    expect_same_shots(got, want, "attempt " + std::to_string(attempt));
    expect_same_shots(got2, want2,
                      "second tenant, attempt " + std::to_string(attempt));
    redispatched = daemon.stats().slices_redispatched > before;
  }

  const DaemonStats stats = daemon.stats();
  EXPECT_TRUE(redispatched)
      << "5 SIGKILLs of a busy worker never produced a re-dispatched "
         "slice; stats: "
      << format_stats(stats);
  EXPECT_GE(stats.worker_respawns, 1u);
  EXPECT_EQ(stats.requests_active, 0u);

  // The fleet healed: two live workers, and the daemon still serves.
  EXPECT_EQ(daemon.worker_pids().size(), 2u);
  const SampleResult after =
      Session(w2, "mbqc", remote_options(1002, endpoint)).sample(a, 300);
  // Fresh session, same seed: same first call as want2.
  expect_same_shots(after, want2, "post-recovery");
  daemon.stop();
}

}  // namespace
}  // namespace mbq
