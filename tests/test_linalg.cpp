// Unit tests for mbq/linalg: dense matrices, gate unitaries, tensors.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/linalg/dense.h"
#include "mbq/linalg/tensor.h"
#include "mbq/linalg/unitaries.h"

namespace mbq {
namespace {

TEST(Matrix, IdentityMul) {
  const Matrix i = Matrix::identity(4);
  Matrix a(4, 4);
  Rng rng(1);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      a(r, c) = cplx{rng.uniform(), rng.uniform()};
  EXPECT_TRUE(Matrix::approx_equal(i * a, a));
  EXPECT_TRUE(Matrix::approx_equal(a * i, a));
}

TEST(Matrix, AdjointInvolution) {
  Matrix a(2, 3);
  a(0, 1) = cplx{1, 2};
  a(1, 2) = cplx{-3, 0.5};
  EXPECT_TRUE(Matrix::approx_equal(a.adjoint().adjoint(), a));
  EXPECT_EQ(a.adjoint().rows(), 3u);
}

TEST(Matrix, KronDims) {
  const Matrix k = gates::h().kron(gates::x());
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_TRUE(k.is_unitary());
}

TEST(Matrix, UpToPhase) {
  const Matrix h = gates::h();
  const Matrix hp = h * std::exp(kI * 0.7);
  EXPECT_TRUE(Matrix::approx_equal_up_to_phase(h, hp));
  EXPECT_FALSE(Matrix::approx_equal(h, hp));
  EXPECT_FALSE(Matrix::approx_equal_up_to_phase(h, gates::x()));
}

TEST(Gates, StandardAlgebra) {
  using namespace gates;
  EXPECT_TRUE(Matrix::approx_equal(h() * h(), id2()));
  EXPECT_TRUE(Matrix::approx_equal(s() * s(), z()));
  EXPECT_TRUE(Matrix::approx_equal(t() * t(), s()));
  EXPECT_TRUE(Matrix::approx_equal(s() * sdg(), id2()));
  EXPECT_TRUE(Matrix::approx_equal(x() * x(), id2()));
  // Y = i X Z.
  EXPECT_TRUE(Matrix::approx_equal(y(), kI * (x() * z())));
  // H X H = Z.
  EXPECT_TRUE(Matrix::approx_equal(h() * x() * h(), z()));
}

TEST(Gates, RotationConventions) {
  using namespace gates;
  // rz(theta) = diag(1, e^{i theta}); rz(pi) = Z.
  EXPECT_TRUE(Matrix::approx_equal(rz(kPi), z()));
  EXPECT_TRUE(Matrix::approx_equal_up_to_phase(rx(kPi), x()));
  // exp_z is the physics convention.
  EXPECT_TRUE(Matrix::approx_equal_up_to_phase(exp_z(0.37), rz(0.37)));
  // J(alpha) = H rz(alpha); J(0) = H.
  EXPECT_TRUE(Matrix::approx_equal(j(0.0), h()));
  // rz(a) rz(b) = rz(a+b).
  EXPECT_TRUE(Matrix::approx_equal(rz(0.3) * rz(0.4), rz(0.7)));
}

TEST(Gates, JDecompositions) {
  using namespace gates;
  // rz(t) = J(0) J(t), rx(t) = J(t) J(0).
  EXPECT_TRUE(Matrix::approx_equal(j(0.0) * j(0.9), rz(0.9)));
  EXPECT_TRUE(Matrix::approx_equal(j(0.9) * j(0.0), rx(0.9)));
}

TEST(Gates, CxFromCz) {
  using namespace gates;
  // CX(control=0, target=1) = (I ⊗ H) CZ (I ⊗ H); qubit1 is high bit, so
  // embed H at position 1 of 2.
  const Matrix h1 = embed1(h(), 1, 2);
  EXPECT_TRUE(Matrix::approx_equal(h1 * cz() * h1, cx()));
}

TEST(Gates, Embed1Consistency) {
  using namespace gates;
  // X on qubit 0 of 2 maps |00> -> |01> (index 0 -> 1).
  const Matrix m = embed1(x(), 0, 2);
  EXPECT_NEAR(std::abs(m(1, 0) - cplx{1, 0}), 0.0, kTol);
  const Matrix m2 = embed1(x(), 1, 2);
  EXPECT_NEAR(std::abs(m2(2, 0) - cplx{1, 0}), 0.0, kTol);
}

TEST(Gates, ExpZsDiagonalParity) {
  using namespace gates;
  const Matrix m = exp_zs(0.8, {0, 2}, 3);
  // Basis 000 (even parity) gets e^{-i 0.4}; 101 (even) too; 001 odd.
  EXPECT_NEAR(std::abs(m(0, 0) - std::exp(-kI * 0.4)), 0.0, kTol);
  EXPECT_NEAR(std::abs(m(5, 5) - std::exp(-kI * 0.4)), 0.0, kTol);
  EXPECT_NEAR(std::abs(m(1, 1) - std::exp(kI * 0.4)), 0.0, kTol);
}

TEST(Gates, ControlledExpXActsOnlyWhenControlsMatch) {
  using namespace gates;
  const Matrix m = controlled_exp_x(0.6, 0, {1}, 0, 2);
  // Control qubit 1 == 0 -> acts on qubit 0; == 1 -> identity block.
  EXPECT_NEAR(std::abs(m(0, 0) - std::cos(0.6)), 0.0, kTol);
  EXPECT_NEAR(std::abs(m(1, 0) - kI * std::sin(0.6)), 0.0, kTol);
  EXPECT_NEAR(std::abs(m(2, 2) - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(m(3, 2)), 0.0, kTol);
  EXPECT_TRUE(m.is_unitary());
}

TEST(Vector, InnerAndFidelity) {
  const std::vector<cplx> a{1, 0};
  const std::vector<cplx> b{0, 1};
  EXPECT_NEAR(std::abs(inner(a, b)), 0.0, kTol);
  EXPECT_NEAR(fidelity(a, a), 1.0, kTol);
  const std::vector<cplx> c{std::exp(kI * 1.2), 0};  // global phase
  EXPECT_NEAR(fidelity(a, c), 1.0, kTol);
}

// ---- Tensor ----

Tensor matrix_as_tensor(const Matrix& m, int leg_in, int leg_out) {
  // 2x2 matrix as tensor with legs {in, out}: T[in + 2*out]? Our
  // convention: legs vector {in, out}, data index bit0 = in, bit1 = out,
  // value = m(out, in).
  return Tensor({leg_in, leg_out},
                {m(0, 0), m(0, 1), m(1, 0), m(1, 1)});
}

TEST(Tensor, MatrixComposeViaContraction) {
  // (HX) as contraction of X(in=0,mid=1) with H(mid=1,out=2).
  const Tensor tx = matrix_as_tensor(gates::x(), 0, 1);
  const Tensor th = matrix_as_tensor(gates::h(), 1, 2);
  const Tensor prod = Tensor::contract(tx, th);
  const Matrix hx = gates::h() * gates::x();
  const Tensor expect = matrix_as_tensor(hx, 0, 2);
  EXPECT_NEAR(Tensor::max_abs_diff(prod, expect), 0.0, kTol);
}

TEST(Tensor, ScalarContraction) {
  // <+|0> = 1/sqrt(2): contract |0> (leg 0) with <+| (leg 0).
  const real s = 1.0 / std::sqrt(2.0);
  const Tensor ket0({0}, {1.0, 0.0});
  const Tensor braplus({0}, {s, s});
  const Tensor r = Tensor::contract(ket0, braplus);
  EXPECT_EQ(r.rank(), 0);
  EXPECT_NEAR(std::abs(r.data()[0] - cplx{s, 0}), 0.0, kTol);
}

TEST(Tensor, PermutationRoundTrip) {
  Rng rng(9);
  std::vector<cplx> d(8);
  for (auto& x : d) x = cplx{rng.uniform(), rng.uniform()};
  const Tensor t({2, 5, 7}, d);
  const Tensor p = t.permuted({7, 2, 5});
  EXPECT_NEAR(Tensor::max_abs_diff(t, p), 0.0, kTol);  // aligns by leg id
  // Spot-check an entry: t(bits a,b,c on legs 2,5,7) == p(c,a,b).
  EXPECT_EQ(t.at({1, 0, 1}), p.at({1, 1, 0}));
}

TEST(Tensor, SelfContractTrace) {
  // Trace of H via self-contraction = 0.
  const Tensor th = matrix_as_tensor(gates::h(), 0, 1);
  const Tensor tr = th.self_contract(0, 1);
  EXPECT_EQ(tr.rank(), 0);
  EXPECT_NEAR(std::abs(tr.data()[0]), 0.0, kTol);
}

TEST(Tensor, ProportionalityDistance) {
  const Tensor a({0}, {1.0, 2.0});
  const Tensor b({0}, {cplx{0, 3}, cplx{0, 6}});  // 3i * a
  EXPECT_NEAR(Tensor::proportionality_distance(a, b), 0.0, kTol);
  const Tensor c({0}, {1.0, -2.0});
  EXPECT_GT(Tensor::proportionality_distance(a, c), 0.1);
}

TEST(Tensor, RejectsDuplicateLegs) {
  EXPECT_THROW(Tensor({1, 1}, std::vector<cplx>(4)), Error);
  EXPECT_THROW(Tensor({1}, std::vector<cplx>(3)), Error);
}

}  // namespace
}  // namespace mbq
