// Focused coverage of the Session prepare() cache: LRU eviction order at
// the cache_capacity boundary, hit/miss counter accounting, and the
// support-check path around eviction — an entry that was evicted must
// re-run the full check-then-prepare path on its next use, and a point
// the backend rejects must keep being rejected whatever the cache holds
// (failed checks never touch the cache or its counters).

#include <gtest/gtest.h>

#include "mbq/api/api.h"
#include "mbq/graph/generators.h"

namespace mbq::api {
namespace {

using qaoa::Angles;

Angles point(real gamma, real beta) { return Angles({gamma}, {beta}); }

TEST(SessionCache, CapacityBoundaryHoldsWithoutEviction) {
  Session session(Workload::maxcut(cycle_graph(3)), "statevector",
                  {.cache_capacity = 3});
  session.expectation(point(0.1, 0.1));
  session.expectation(point(0.2, 0.2));
  session.expectation(point(0.3, 0.3));
  EXPECT_EQ(session.cache_entries(), 3u);
  EXPECT_EQ(session.cache_misses(), 3u);
  EXPECT_EQ(session.cache_hits(), 0u);
  // Exactly at capacity every entry is still resident: all hits.
  session.expectation(point(0.1, 0.1));
  session.expectation(point(0.2, 0.2));
  session.expectation(point(0.3, 0.3));
  EXPECT_EQ(session.cache_entries(), 3u);
  EXPECT_EQ(session.cache_misses(), 3u);
  EXPECT_EQ(session.cache_hits(), 3u);
}

TEST(SessionCache, EvictionFollowsLeastRecentlyUsedOrder) {
  Session session(Workload::maxcut(cycle_graph(3)), "statevector",
                  {.cache_capacity = 3});
  session.expectation(point(0.1, 0.1));  // A
  session.expectation(point(0.2, 0.2));  // B
  session.expectation(point(0.3, 0.3));  // C
  // Touch in the order C, A — so recency is now B < C < A.
  session.expectation(point(0.3, 0.3));
  session.expectation(point(0.1, 0.1));
  EXPECT_EQ(session.cache_hits(), 2u);

  // One past capacity evicts exactly the LRU entry, B.
  session.expectation(point(0.4, 0.4));  // D
  EXPECT_EQ(session.cache_entries(), 3u);
  session.expectation(point(0.3, 0.3));  // C still resident
  session.expectation(point(0.1, 0.1));  // A still resident
  session.expectation(point(0.4, 0.4));  // D resident
  EXPECT_EQ(session.cache_hits(), 5u);
  EXPECT_EQ(session.cache_misses(), 4u);  // A, B, C, D

  // B was evicted: re-requesting it is a fresh miss, which evicts the
  // next LRU in line — C (A and D were touched more recently above).
  session.expectation(point(0.2, 0.2));
  EXPECT_EQ(session.cache_misses(), 5u);
  // C misses again and evicts A, now the oldest.
  session.expectation(point(0.3, 0.3));
  EXPECT_EQ(session.cache_misses(), 6u);
  // The survivors — D and the freshly re-inserted B and C — all hit.
  session.expectation(point(0.4, 0.4));
  session.expectation(point(0.2, 0.2));
  session.expectation(point(0.3, 0.3));
  EXPECT_EQ(session.cache_hits(), 8u);
  EXPECT_EQ(session.cache_misses(), 6u);
}

TEST(SessionCache, CapacityOneThrashesDeterministically) {
  Session session(Workload::maxcut(cycle_graph(3)), "statevector",
                  {.cache_capacity = 1});
  const real a = session.expectation(point(0.5, 0.3));
  session.expectation(point(0.7, 0.1));
  EXPECT_EQ(session.cache_entries(), 1u);
  // The first point was evicted; its re-evaluation is a miss with an
  // identical value (prepare() is deterministic).
  EXPECT_EQ(session.expectation(point(0.5, 0.3)), a);
  EXPECT_EQ(session.cache_misses(), 3u);
  EXPECT_EQ(session.cache_hits(), 0u);
}

TEST(SessionCache, HitAfterEvictionRerunsSupportCheckPath) {
  // Clifford points of unit-weight MaxCut on C4: 2*gamma*(+-1/2) and
  // 2*beta must be pi/2 multiples.  The clifford backend's support check
  // compiles the pattern and tests its angles — exactly the path that
  // must re-run when an evicted point comes back.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a = point(kPi / 2, kPi / 4);
  const Angles b = point(0.0, kPi / 4);
  const Angles c = point(kPi / 2, 0.0);
  Session session(w, "clifford", {.cache_capacity = 2});

  const real at_a = session.expectation(a);
  session.expectation(b);
  EXPECT_EQ(session.cache_misses(), 2u);
  session.expectation(c);  // evicts a
  EXPECT_EQ(session.cache_entries(), 2u);

  // a must pass the full check-then-prepare path again and reproduce its
  // value exactly (the tableau run is deterministic in the expectation).
  EXPECT_EQ(session.expectation(a), at_a);
  EXPECT_EQ(session.cache_misses(), 4u);
  EXPECT_EQ(session.cache_hits(), 0u);
}

TEST(SessionCache, RejectedPointsNeverTouchCacheOrCounters) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  Session session(w, "clifford", {.cache_capacity = 2});
  const Angles generic = point(0.37, 0.21);  // not a Clifford point

  // Rejected before the cache exists...
  EXPECT_THROW(session.expectation(generic), Error);
  EXPECT_EQ(session.cache_entries(), 0u);
  EXPECT_EQ(session.cache_misses(), 0u);

  // ...and still rejected when the cache is full and churning.
  session.expectation(point(kPi / 2, kPi / 4));
  session.expectation(point(0.0, kPi / 4));
  session.expectation(point(kPi / 2, 0.0));  // forces an eviction
  EXPECT_THROW(session.expectation(generic), Error);
  EXPECT_THROW(session.sample(generic, 4), Error);
  EXPECT_EQ(session.cache_entries(), 2u);
  EXPECT_EQ(session.cache_misses(), 3u);
  EXPECT_EQ(session.cache_hits(), 0u);
}

TEST(SessionCache, SampleAndExpectationShareEntries) {
  Session session(Workload::maxcut(cycle_graph(4)), "mbqc",
                  {.cache_capacity = 4});
  const Angles a = point(0.6, 0.4);
  session.expectation(a);
  EXPECT_EQ(session.cache_misses(), 1u);
  session.sample(a, 8);
  session.best_of(a, 8);
  EXPECT_EQ(session.cache_misses(), 1u);
  EXPECT_EQ(session.cache_hits(), 2u);
  EXPECT_EQ(session.cache_entries(), 1u);
}

TEST(SessionCache, CapacityMustBePositive) {
  EXPECT_THROW(Session(Workload::maxcut(cycle_graph(3)), "statevector",
                       {.cache_capacity = 0}),
               Error);
}

}  // namespace
}  // namespace mbq::api
