// Unit tests for the stabilizer tableau, cross-validated against the
// statevector simulator on small Clifford circuits.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/sim/pauli.h"
#include "mbq/sim/statevector.h"
#include "mbq/stab/tableau.h"

namespace mbq {
namespace {

TEST(Tableau, InitialStabilizers) {
  Tableau t(3);
  EXPECT_EQ(t.stabilizer_row(0), "+ZII");
  EXPECT_EQ(t.stabilizer_row(1), "+IZI");
  EXPECT_EQ(t.stabilizer_row(2), "+IIZ");
  EXPECT_EQ(t.expectation(PauliString("ZII")), 1);
  EXPECT_EQ(t.expectation(PauliString("XII")), 0);
  EXPECT_EQ(t.expectation(PauliString("IZZ")), 1);
}

TEST(Tableau, HadamardMakesPlus) {
  Tableau t(1);
  t.apply_h(0);
  EXPECT_EQ(t.expectation(PauliString("X")), 1);
  EXPECT_EQ(t.expectation(PauliString("Z")), 0);
}

TEST(Tableau, SGateYields_Y) {
  Tableau t(1);
  t.apply_h(0);
  t.apply_s(0);  // S|+> = |+i>, stabilized by +Y
  EXPECT_EQ(t.expectation(PauliString("Y")), 1);
  t.apply_sdg(0);
  EXPECT_EQ(t.expectation(PauliString("X")), 1);
}

TEST(Tableau, PauliGatesFlipSigns) {
  Tableau t(1);
  t.apply_x(0);  // |1>: stabilized by -Z
  EXPECT_EQ(t.expectation(PauliString("Z")), -1);
  t.apply_h(0);
  EXPECT_EQ(t.expectation(PauliString("X")), -1);
  t.apply_z(0);
  EXPECT_EQ(t.expectation(PauliString("X")), 1);
}

TEST(Tableau, BellState) {
  Tableau t(2);
  t.apply_h(0);
  t.apply_cx(0, 1);
  EXPECT_EQ(t.expectation(PauliString("XX")), 1);
  EXPECT_EQ(t.expectation(PauliString("ZZ")), 1);
  EXPECT_EQ(t.expectation(PauliString("YY")), -1);
  EXPECT_EQ(t.expectation(PauliString("ZI")), 0);
}

TEST(Tableau, GraphStateStabilizers) {
  // |G> is stabilized by K_v = X_v prod_{w ~ v} Z_w.
  const Graph g = cycle_graph(4);
  Tableau t = Tableau::graph_state(g);
  EXPECT_EQ(t.expectation(PauliString("XZIZ")), 1);
  EXPECT_EQ(t.expectation(PauliString("ZXZI")), 1);
  EXPECT_EQ(t.expectation(PauliString("IZXZ")), 1);
  EXPECT_EQ(t.expectation(PauliString("ZIZX")), 1);
  EXPECT_EQ(t.expectation(PauliString("XXII")), 0);
}

TEST(Tableau, MeasureDeterministic) {
  Tableau t(2);
  Rng rng(1);
  EXPECT_TRUE(t.is_deterministic_z(0));
  EXPECT_EQ(t.measure_z(0, rng), 0);
  t.apply_x(0);
  EXPECT_EQ(t.measure_z(0, rng), 1);
  EXPECT_THROW(t.measure_z(0, rng, 0), Error);  // contradicts determinism
}

TEST(Tableau, MeasureRandomThenRepeatable) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Tableau t(2);
    t.apply_h(0);
    t.apply_cx(0, 1);
    EXPECT_FALSE(t.is_deterministic_z(0));
    const int m0 = t.measure_z(0, rng);
    // After collapse, both qubits deterministic and correlated.
    EXPECT_TRUE(t.is_deterministic_z(0));
    EXPECT_EQ(t.measure_z(0, rng), m0);
    EXPECT_EQ(t.measure_z(1, rng), m0);
  }
}

TEST(Tableau, MeasureXBasis) {
  Tableau t(1);
  t.apply_h(0);  // |+>
  Rng rng(3);
  EXPECT_EQ(t.measure_x(0, rng), 0);
  Tableau t2(1);
  t2.apply_h(0);
  t2.apply_z(0);  // |->
  EXPECT_EQ(t2.measure_x(0, rng), 1);
}

TEST(Tableau, MeasureYBasis) {
  Tableau t(1);
  t.apply_h(0);
  t.apply_s(0);  // |+i>
  Rng rng(4);
  EXPECT_EQ(t.measure_y(0, rng), 0);
}

TEST(Tableau, MeasurementStatisticsMatchStatevector) {
  // Random 4-qubit Clifford circuit; compare Z-measurement marginal of
  // qubit 0 against statevector probabilities (0, 1/2, or 1).
  Rng crng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Tableau t(4);
    Statevector sv(4);
    for (int step = 0; step < 24; ++step) {
      const int q = static_cast<int>(crng.uniform_index(4));
      int r = static_cast<int>(crng.uniform_index(4));
      if (r == q) r = (r + 1) % 4;
      switch (crng.uniform_index(4)) {
        case 0:
          t.apply_h(q);
          sv.apply_h(q);
          break;
        case 1:
          t.apply_s(q);
          sv.apply_rz(q, kPi / 2);
          break;
        case 2:
          t.apply_cx(q, r);
          sv.apply_cx(q, r);
          break;
        case 3:
          t.apply_cz(q, r);
          sv.apply_cz(q, r);
          break;
      }
    }
    const real p1 = sv.prob_one(0);
    if (t.is_deterministic_z(0)) {
      Rng rng(6);
      const int m = t.measure_z(0, rng);
      EXPECT_NEAR(p1, static_cast<real>(m), kTol);
    } else {
      EXPECT_NEAR(p1, 0.5, kTol);
    }
  }
}

TEST(Tableau, ExpectationMatchesStatevector) {
  Rng crng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Tableau t(3);
    Statevector sv(3);
    for (int step = 0; step < 15; ++step) {
      const int q = static_cast<int>(crng.uniform_index(3));
      int r = static_cast<int>(crng.uniform_index(3));
      if (r == q) r = (r + 1) % 3;
      switch (crng.uniform_index(3)) {
        case 0:
          t.apply_h(q);
          sv.apply_h(q);
          break;
        case 1:
          t.apply_s(q);
          sv.apply_rz(q, kPi / 2);
          break;
        case 2:
          t.apply_cz(q, r);
          sv.apply_cz(q, r);
          break;
      }
    }
    for (const char* ps : {"XII", "ZZI", "YIZ", "XYZ", "IZZ"}) {
      const PauliString p(ps);
      const real sv_val = std::real(p.expectation(sv));
      EXPECT_NEAR(static_cast<real>(t.expectation(p)), sv_val, 1e-6)
          << "trial " << trial << " pauli " << ps;
    }
  }
}

TEST(Tableau, CanonicalFormEquality) {
  // Same state prepared two ways: |G> for the path 0-1 vs H0 CX(0,1) H1
  // applied suitably.  Use two equivalent graph-state constructions.
  const Graph g = path_graph(2);
  Tableau a = Tableau::graph_state(g);
  // Equivalent preparation: Bell pair (XX, ZZ), then H on qubit 1 maps
  // XX -> XZ and ZZ -> ZX, i.e. exactly the path graph state.
  Tableau b(2);
  b.apply_h(0);
  b.apply_cx(0, 1);
  b.apply_h(1);
  EXPECT_EQ(a.canonical_stabilizers(), b.canonical_stabilizers());
  // And a different state differs.
  Tableau c(2);
  EXPECT_NE(a.canonical_stabilizers(), c.canonical_stabilizers());
}

TEST(Tableau, LargeGraphState) {
  // 400-qubit ring graph state: check a stabilizer and a few measurements.
  const int n = 400;
  const Graph g = cycle_graph(n);
  Tableau t = Tableau::graph_state(g);
  Rng rng(8);
  // Z-measure a qubit; neighbours' correlation survives.
  const int m = t.measure_z(17, rng);
  (void)m;
  // All X-measurements on a graph state are ±1-determined only after
  // enough collapses; just ensure nothing throws and determinism is
  // consistent when re-measuring.
  const int m2 = t.measure_z(17, rng);
  EXPECT_EQ(m, m2);
}

}  // namespace
}  // namespace mbq
