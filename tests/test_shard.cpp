// Process-sharded sampling & batch evaluation: results must be
// BIT-identical to the in-process path at every worker count (the
// process-count half of Session's determinism contract), worker death
// must surface as a descriptive Error — never a hang — with the Session
// falling back in-process afterwards, and ShardPlan must cover the
// index space exactly for every (total, workers) shape.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/common/serialize.h"
#include "mbq/graph/generators.h"
#include "mbq/shard/plan.h"
#include "mbq/shard/protocol.h"
#include "mbq/shard/task.h"
#include "mbq/shard/worker_pool.h"

namespace mbq {
namespace {

using api::SampleResult;
using api::Session;
using api::SessionOptions;
using api::Workload;
using qaoa::Angles;

std::string worker_path() {
  const std::string path = shard::resolve_worker_path();
  EXPECT_FALSE(path.empty())
      << "mbq_worker not found next to the test binary — build the "
         "mbq_worker target (part of the default build)";
  return path;
}

SessionOptions sharded_options(std::uint64_t seed, int processes) {
  SessionOptions o;
  o.seed = seed;
  o.num_processes = processes;
  return o;
}

std::vector<Angles> random_points(int count, int p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Angles> points;
  points.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) points.push_back(Angles::random(p, rng));
  return points;
}

void expect_same_shots(const SampleResult& got, const SampleResult& want,
                       const std::string& context) {
  ASSERT_EQ(got.shots.size(), want.shots.size()) << context;
  for (std::size_t s = 0; s < want.shots.size(); ++s) {
    EXPECT_EQ(got.shots[s].x, want.shots[s].x) << context << " shot " << s;
    EXPECT_EQ(got.shots[s].cost, want.shots[s].cost)
        << context << " shot " << s;
  }
}

// --- ShardPlan ---------------------------------------------------------

TEST(ShardPlan, PropertiesHoldOverUnevenCounts) {
  // Exact cover in order, balanced within one item, empties only as a
  // trailing suffix — for every shape including total < workers,
  // total == 0, and counts that do not divide evenly.
  for (const std::uint64_t total : {0ULL, 1ULL, 2ULL, 3ULL, 5ULL, 7ULL,
                                    16ULL, 17ULL, 100ULL, 1023ULL}) {
    for (const int workers : {1, 2, 3, 4, 5, 7, 16}) {
      const shard::ShardPlan plan(total, workers);
      ASSERT_EQ(plan.num_workers(), workers);
      EXPECT_EQ(plan.total(), total);

      std::uint64_t covered = 0, min_size = ~0ULL, max_size = 0;
      std::uint64_t expect_begin = 0;
      bool seen_empty = false;
      for (const shard::ShardRange& r : plan.ranges()) {
        ASSERT_LE(r.begin, r.end);
        ASSERT_EQ(r.begin, expect_begin) << "ranges must be contiguous";
        expect_begin = r.end;
        covered += r.size();
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
        if (r.empty()) seen_empty = true;
        else EXPECT_FALSE(seen_empty) << "empty ranges must be trailing";
      }
      EXPECT_EQ(covered, total) << total << "/" << workers;
      EXPECT_EQ(plan.ranges().back().end, total);
      EXPECT_LE(max_size - min_size, 1u) << "sizes must differ by <= 1";
      EXPECT_EQ(plan.active_workers(),
                static_cast<int>(std::min<std::uint64_t>(
                    total, static_cast<std::uint64_t>(workers))));
    }
  }
  EXPECT_THROW(shard::ShardPlan(4, 0), Error);
}

// --- wire format -------------------------------------------------------

TEST(ShardProtocol, WorkloadAndRequestRoundTrip) {
  Workload qaoa_w = Workload::maxcut(cycle_graph(5));
  qaoa_w.with_linear_style(core::LinearTermStyle::FusedIntoMixer);
  Workload mis_w = Workload::mis(path_graph(4));

  for (const Workload* w : {&qaoa_w, &mis_w}) {
    shard::Request req;
    req.kind = shard::TaskKind::kSample;
    req.backend = "mbqc";
    req.seed = 0xDEADBEEF;
    req.workload = *w;
    req.points = random_points(3, 2, 9);
    req.shots = 17;
    req.base_call = 5;
    req.begin = 3;
    req.end = 29;

    const auto frame = shard::encode_request(req);
    const shard::Request back = shard::decode_request(frame);
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.backend, req.backend);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.workload.ansatz(), w->ansatz());
    EXPECT_EQ(back.workload.num_qubits(), w->num_qubits());
    EXPECT_EQ(back.workload.linear_style(), w->linear_style());
    EXPECT_EQ(back.workload.cost().constant(), w->cost().constant());
    ASSERT_EQ(back.workload.cost().terms().size(), w->cost().terms().size());
    for (std::size_t t = 0; t < w->cost().terms().size(); ++t) {
      EXPECT_EQ(back.workload.cost().terms()[t].coeff,
                w->cost().terms()[t].coeff);
      EXPECT_EQ(back.workload.cost().terms()[t].support,
                w->cost().terms()[t].support);
    }
    ASSERT_EQ(back.points.size(), req.points.size());
    for (std::size_t i = 0; i < req.points.size(); ++i) {
      EXPECT_EQ(back.points[i].gamma, req.points[i].gamma);  // bit-exact
      EXPECT_EQ(back.points[i].beta, req.points[i].beta);
    }
    EXPECT_EQ(back.shots, req.shots);
    EXPECT_EQ(back.base_call, req.base_call);
    EXPECT_EQ(back.begin, req.begin);
    EXPECT_EQ(back.end, req.end);
  }
  EXPECT_EQ(shard::unshardable_reason(qaoa_w), "");

  // Truncated frames throw instead of decoding garbage.
  auto frame = shard::encode_request(shard::Request{});
  frame.resize(frame.size() - 3);
  EXPECT_THROW(shard::decode_request(frame), Error);
}

TEST(ShardProtocol, CustomWorkloadsAreUnshardable) {
  const Workload w = Workload::custom(
      qaoa::CostHamiltonian::maxcut(cycle_graph(3)),
      [](const Angles&) { return Circuit(3); });
  EXPECT_FALSE(shard::shardable(w));
  EXPECT_NE(shard::unshardable_reason(w), "");
  ByteWriter out;
  EXPECT_THROW(shard::encode_workload(out, w), Error);
}

TEST(ShardProtocol, ResponseRoundTripIsBitExact) {
  shard::Response ok;
  ok.outcomes = {0, 7, 0xFFFFFFFFFFFFFFFFULL};
  ok.values = {0.1, -0.0, 3.5e-300};
  const shard::Response ok_back =
      shard::decode_response(shard::encode_response(ok));
  EXPECT_TRUE(ok_back.ok);
  EXPECT_EQ(ok_back.outcomes, ok.outcomes);
  ASSERT_EQ(ok_back.values.size(), ok.values.size());
  for (std::size_t i = 0; i < ok.values.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ok_back.values[i]),
              std::bit_cast<std::uint64_t>(ok.values[i]));

  shard::Response err;
  err.ok = false;
  err.error_index = 42;
  err.error_message = "backend 'x' cannot run this workload";
  err.error_in_eval = true;
  const shard::Response err_back =
      shard::decode_response(shard::encode_response(err));
  EXPECT_FALSE(err_back.ok);
  EXPECT_EQ(err_back.error_index, 42u);
  EXPECT_EQ(err_back.error_message, err.error_message);
  EXPECT_TRUE(err_back.error_in_eval);

  // A corrupt vector-length prefix must throw Error, never attempt the
  // allocation it announces.
  ByteWriter corrupt;
  corrupt.u8(0);            // kStatusOk
  corrupt.u32(0xFFFFFFFF);  // outcomes length: ~32 GiB of u64s
  EXPECT_THROW(shard::decode_response(corrupt.data()), Error);
}

// --- worker task logic (in-process, no fork) ---------------------------

TEST(ShardTask, SliceReplaysTheSerialStreams) {
  // execute_request IS the worker binary's compute path; run it inline
  // against a serial Session to pin the stream assignment itself.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.4}, {0.3});
  const int shots = 12;

  Session serial(w, "mbqc", sharded_options(11, 1));
  const SampleResult want = serial.sample(a, shots);

  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = "mbqc";
  req.seed = 11;
  req.workload = w;
  req.points = {a};
  req.shots = shots;
  req.base_call = 0;  // the session's first sample call
  req.begin = 3;
  req.end = 9;
  const shard::Response r = shard::execute_request(req);
  ASSERT_TRUE(r.ok) << r.error_message;
  ASSERT_EQ(r.outcomes.size(), 6u);
  for (std::size_t t = 0; t < r.outcomes.size(); ++t)
    EXPECT_EQ(r.outcomes[t], want.shots[3 + t].x) << t;
}

TEST(ShardTask, ErrorsCarryTheLowestFailingIndex) {
  // Non-Clifford angles on the clifford backend: the slice fails at its
  // first pair with the same message Session::require_supported emits.
  const Workload w = Workload::maxcut(cycle_graph(4));
  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = "clifford";
  req.seed = 1;
  req.workload = w;
  req.points = {Angles({0.37}, {0.21})};
  req.shots = 8;
  req.begin = 2;
  req.end = 6;
  const shard::Response r = shard::execute_request(req);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error_index, 2u);
  EXPECT_NE(r.error_message.find("cannot run this workload"),
            std::string::npos)
      << r.error_message;

  // Expectation slices report support failures as CHECK-phase (streams
  // not yet drawn), which the parent maps to an unburned call counter.
  shard::Request exp = req;
  exp.kind = shard::TaskKind::kExpectation;
  exp.begin = 0;
  exp.end = 1;
  const shard::Response er = shard::execute_request(exp);
  ASSERT_FALSE(er.ok);
  EXPECT_EQ(er.error_index, 0u);
  EXPECT_FALSE(er.error_in_eval);

  req.backend = "no-such-backend";
  const shard::Response unknown = shard::execute_request(req);
  ASSERT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error_message.find("unknown backend"), std::string::npos);
}

// --- process-count invariance ------------------------------------------

TEST(ShardSession, SampleInvariantAcrossProcessCounts) {
  // The acceptance sweep: workers {1, 2, 4} x seeds {0, 1, 42} against
  // the in-process reference — outcome streams AND merged histograms
  // bit-identical (1 process = the documented in-process fallback).
  const Workload w = Workload::maxcut(cycle_graph(5));
  const Angles a({0.4}, {0.3});
  const int shots = 24;

  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL}) {
    Session reference(w, "mbqc", sharded_options(seed, 1));
    const SampleResult want = reference.sample(a, shots);

    for (const int processes : {1, 2, 4}) {
      Session session(w, "mbqc", sharded_options(seed, processes));
      const SampleResult got = session.sample(a, shots);
      if (processes > 1)
        EXPECT_EQ(session.shard_workers(), processes)
            << "sharding silently fell back — the sweep would be vacuous";
      else
        EXPECT_EQ(session.shard_workers(), 0);
      expect_same_shots(got, want,
                        "seed " + std::to_string(seed) + " processes " +
                            std::to_string(processes));
      EXPECT_EQ(got.counts(5), want.counts(5));
    }
  }
}

TEST(ShardSession, SampleBatchInvariantAcrossProcessCounts) {
  const Workload w = Workload::maxcut(path_graph(4));
  const std::vector<Angles> points = random_points(3, 1, 77);
  const int shots = 10;

  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL}) {
    Session reference(w, "mbqc", sharded_options(seed, 1));
    const std::vector<SampleResult> want =
        reference.sample_batch(points, shots);

    for (const int processes : {2, 4}) {
      Session session(w, "mbqc", sharded_options(seed, processes));
      const std::vector<SampleResult> got =
          session.sample_batch(points, shots);
      ASSERT_EQ(session.shard_workers(), processes);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        expect_same_shots(got[i], want[i],
                          "seed " + std::to_string(seed) + " point " +
                              std::to_string(i));
    }
  }
}

TEST(ShardSession, ExpectationBatchInvariantAcrossProcessCounts) {
  for (const char* backend : {"mbqc", "statevector"}) {
    const Workload w = Workload::maxcut(cycle_graph(4));
    const std::vector<Angles> points = random_points(7, 2, 5);

    Session reference(w, backend, sharded_options(42, 1));
    const std::vector<real> want = reference.expectation_batch(points);

    for (const int processes : {2, 4}) {
      Session session(w, backend, sharded_options(42, processes));
      const std::vector<real> got = session.expectation_batch(points);
      ASSERT_EQ(session.shard_workers(), processes) << backend;
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << backend << " point " << i;
    }
  }
}

TEST(ShardSession, ShardedAndInProcessCallsShareOneStreamSequence) {
  // Mixing sharded and in-process calls on one session must not disturb
  // the call-index sequence: call k draws stream(k) either way.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.4}, {0.3});

  Session reference(w, "mbqc", sharded_options(13, 1));
  const SampleResult want0 = reference.sample(a, 8);
  const SampleResult want1 = reference.sample(a, 8);
  const SampleResult want2 = reference.sample(a, 8);

  Session session(w, "mbqc", sharded_options(13, 2));
  const SampleResult got0 = session.sample(a, 8);   // sharded
  EXPECT_EQ(session.shard_workers(), 2);
  const SampleResult got1 = session.sample(a, 1);   // 1 shot: in-process
  const SampleResult got2 = session.sample(a, 8);   // sharded again
  expect_same_shots(got0, want0, "call 0");
  ASSERT_EQ(got1.shots.size(), 1u);
  EXPECT_EQ(got1.shots[0].x, want1.shots[0].x);
  expect_same_shots(got2, want2, "call 2");
}

TEST(ShardSession, EnvironmentVariableSelectsTheProcessCount) {
  // num_processes = 0 (the default) defers to MBQ_NUM_PROCESSES — the
  // hook the CI matrix uses to run the whole tier-1 suite sharded.
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.4}, {0.3});

  Session reference(w, "mbqc", sharded_options(3, 1));
  const SampleResult want = reference.sample(a, 8);

  ASSERT_EQ(setenv("MBQ_NUM_PROCESSES", "2", 1), 0);
  Session session(w, "mbqc", sharded_options(3, 0));
  EXPECT_EQ(session.num_processes(), 2);
  const SampleResult got = session.sample(a, 8);
  ASSERT_EQ(unsetenv("MBQ_NUM_PROCESSES"), 0);
  EXPECT_EQ(session.shard_workers(), 2);
  expect_same_shots(got, want, "via MBQ_NUM_PROCESSES");
}

// --- graceful fallback -------------------------------------------------

TEST(ShardSession, CustomWorkloadsFallBackInProcess) {
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(3));
  const Workload w = Workload::custom(cost, [](const Angles& a) {
    Circuit c(3);
    for (int q = 0; q < 3; ++q) c.rz(q, a.gamma[0]);
    return c;
  });
  const Angles a({0.4}, {0.3});

  Session reference(w, "statevector", sharded_options(5, 1));
  Session session(w, "statevector", sharded_options(5, 4));
  const SampleResult want = reference.sample(a, 8);
  const SampleResult got = session.sample(a, 8);
  EXPECT_EQ(session.shard_workers(), 0) << "custom ansatz cannot shard";
  expect_same_shots(got, want, "custom fallback");
}

TEST(ShardSession, RuntimeRegisteredBackendsFallBackInProcess) {
  // A backend add()ed at runtime exists in THIS process's registry only
  // — a worker could never rebuild it, so such sessions must not shard
  // (and must still work).
  static bool registered = false;
  if (!registered) {
    api::BackendRegistry::instance().add(
        "shard-test-alias",
        [] { return std::make_shared<api::StatevectorBackend>(); });
    registered = true;
  }
  EXPECT_FALSE(api::BackendRegistry::instance().is_builtin("shard-test-alias"));
  EXPECT_TRUE(api::BackendRegistry::instance().is_builtin("mbqc"));

  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.4}, {0.3});
  Session session(w, "shard-test-alias", sharded_options(5, 4));
  Session reference(w, "statevector", sharded_options(5, 1));
  const SampleResult got = session.sample(a, 8);
  EXPECT_EQ(session.shard_workers(), 0);
  expect_same_shots(got, reference.sample(a, 8), "runtime-registered");
}

TEST(ShardSession, MissingWorkerBinaryFallsBackInProcess) {
  SessionOptions o = sharded_options(5, 4);
  o.worker_path = "/nonexistent/mbq_worker";
  const Workload w = Workload::maxcut(cycle_graph(4));
  Session session(w, "mbqc", o);
  Session reference(w, "mbqc", sharded_options(5, 1));
  const Angles a({0.4}, {0.3});
  const SampleResult got = session.sample(a, 8);
  EXPECT_EQ(session.shard_workers(), 0);
  expect_same_shots(got, reference.sample(a, 8), "missing worker binary");
}

TEST(ShardSession, UnsupportedPointsThrowLikeTheSerialLoop) {
  // Support failures must throw Error whether detected in the parent
  // (sample: the parent still runs checked_prepared) or in a worker
  // (expectation_batch: workers do their own checks and the parent
  // rethrows the lowest failing point, with the call's stream indices
  // NOT consumed — matching the serial loop, which throws before
  // burning any).
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles clifford_point({kPi / 2}, {kPi / 4});
  const Angles generic_point({0.37}, {0.21});

  Session session(w, "clifford", sharded_options(2, 2));
  EXPECT_THROW(session.sample(generic_point, 8), Error);

  const std::vector<Angles> points = {clifford_point, generic_point};
  try {
    session.expectation_batch(points);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot run this workload"),
              std::string::npos)
        << e.what();
  }
  // The failed batch burned no expectation streams: the next call still
  // draws stream 0, like a serial session whose failing loop never got
  // past the support check.
  Session reference(w, "clifford", sharded_options(2, 1));
  EXPECT_EQ(session.expectation(clifford_point),
            reference.expectation(clifford_point));
}

// --- worker death ------------------------------------------------------

TEST(ShardWorkerDeath, PoolRoundThrowsDescriptivelyAndNeverHangs) {
  shard::WorkerPool pool(2, worker_path());
  ASSERT_EQ(pool.size(), 2);
  ASSERT_TRUE(pool.alive());
  ASSERT_EQ(pool.pids().size(), 2u);

  // Kill worker 1 and wait until it is fully gone, so the round below
  // deterministically hits a dead channel.
  const pid_t victim = pool.pids()[1];
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(victim, &status, 0), victim);

  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = "mbqc";
  req.seed = 1;
  req.workload = Workload::maxcut(cycle_graph(4));
  req.points = {Angles({0.4}, {0.3})};
  req.shots = 4;
  req.begin = 0;
  req.end = 2;
  const std::vector<std::vector<std::byte>> requests = {
      shard::encode_request(req), shard::encode_request(req)};

  try {
    pool.round(requests);
    FAIL() << "round with a killed worker should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker"), std::string::npos) << what;
    EXPECT_NE(what.find("killed or crashed"), std::string::npos) << what;
  }
  EXPECT_FALSE(pool.alive());
  EXPECT_THROW(pool.round(requests), Error);  // a broken pool stays broken
}

TEST(ShardWorkerDeath, SessionSurfacesTheErrorThenFallsBack) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.4}, {0.3});

  Session session(w, "mbqc", sharded_options(21, 2));
  const SampleResult first = session.sample(a, 8);  // spawns the pool
  ASSERT_EQ(session.shard_workers(), 2);

  const pid_t victim = session.worker_pool()->pids()[0];
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(victim, &status, 0), victim);

  EXPECT_THROW(session.sample(a, 8), Error);  // descriptive, no hang
  EXPECT_EQ(session.shard_workers(), 0);

  // The session stays usable in-process, and the failed call burned its
  // call index exactly as a serial call crashing mid-shots would — so
  // call 2 here matches call 2 of an uninterrupted reference session.
  Session reference(w, "mbqc", sharded_options(21, 1));
  const SampleResult ref0 = reference.sample(a, 8);
  reference.sample(a, 8);  // index 1: consumed by the failed call above
  const SampleResult ref2 = reference.sample(a, 8);
  expect_same_shots(first, ref0, "pre-death call");
  expect_same_shots(session.sample(a, 8), ref2, "post-death call");
}

TEST(ShardWorkerDeath, WedgedWorkerTimesOutWithAMessageNotAHang) {
  // A SIGSTOP'd worker is the nasty case: its socket stays open, so
  // without a deadline the parent blocks forever.  MBQ_WORKER_TIMEOUT_MS
  // (re-read every round) must turn it into an Error naming the worker
  // and its slice.
  shard::WorkerPool pool(2, worker_path());
  const pid_t victim = pool.pids()[1];
  ASSERT_EQ(kill(victim, SIGSTOP), 0);

  shard::Request req;
  req.kind = shard::TaskKind::kSample;
  req.backend = "mbqc";
  req.seed = 1;
  req.workload = Workload::maxcut(cycle_graph(4));
  req.points = {Angles({0.4}, {0.3})};
  req.shots = 4;
  req.begin = 0;
  req.end = 2;
  const std::vector<std::vector<std::byte>> requests = {
      shard::encode_request(req), shard::encode_request(req)};

  ASSERT_EQ(setenv("MBQ_WORKER_TIMEOUT_MS", "300", 1), 0);
  EXPECT_EQ(shard::worker_timeout_ms(), 300);
  try {
    pool.round(requests);
    FAIL() << "round against a stopped worker should have timed out";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(victim)), std::string::npos) << what;
    EXPECT_NE(what.find("slice"), std::string::npos) << what;
    EXPECT_NE(what.find("timed out after 300 ms"), std::string::npos)
        << what;
  }
  ASSERT_EQ(unsetenv("MBQ_WORKER_TIMEOUT_MS"), 0);
  EXPECT_EQ(shard::worker_timeout_ms(), 0);
  EXPECT_FALSE(pool.alive());  // the poisoned pool tore itself down

  // Unwedge and reap so the stopped child does not outlive the test.
  kill(victim, SIGCONT);
  kill(victim, SIGKILL);
  int status = 0;
  waitpid(victim, &status, 0);
}

// --- merge-order independence ------------------------------------------

TEST(ShardTask, SliceMergeIsArrivalOrderIndependent) {
  // Execute a plan's slices independently and merge them in many
  // different arrival orders: every permutation must reproduce the
  // serial result bit for bit, because each slice's payload is a pure
  // function of (seed, global indices) and merging places it at its
  // global offset.  This is the exact property the serving daemon's
  // streaming dispatch leans on.
  const Workload w = Workload::maxcut(cycle_graph(6));
  const std::vector<Angles> points = random_points(3, 1, 77);
  const int shots = 20;
  const std::uint64_t total = points.size() * shots;

  Session serial(w, "mbqc", sharded_options(33, 1));
  const auto want_batch = serial.sample_batch(points, shots);
  std::vector<std::uint64_t> want;
  for (const SampleResult& r : want_batch)
    for (const auto& shot : r.shots) want.push_back(shot.x);
  ASSERT_EQ(want.size(), total);

  shard::Request whole;
  whole.kind = shard::TaskKind::kSample;
  whole.backend = "mbqc";
  whole.seed = 33;
  whole.workload = w;
  whole.points = points;
  whole.shots = shots;
  whole.base_call = 0;
  whole.begin = 0;
  whole.end = total;

  // Uneven 7-way plan over 60 pairs: slice boundaries cut through the
  // middle of points, the stress case for rebasing.
  const shard::ShardPlan plan(total, 7);
  struct Piece {
    std::uint64_t begin, end;
    std::vector<std::uint64_t> outcomes;
  };
  std::vector<Piece> pieces;
  for (const auto& [begin, end] : plan.ranges()) {
    const shard::SliceRequest slice = shard::rebase_slice(whole, begin, end);
    const shard::Response r = shard::execute_request(slice.request);
    ASSERT_TRUE(r.ok) << r.error_message;
    pieces.push_back({begin, end, r.outcomes});
  }
  ASSERT_GE(pieces.size(), 5u);

  std::vector<std::size_t> order(pieces.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    if (trial < static_cast<int>(order.size()))
      std::rotate(order.begin(), order.begin() + trial, order.end());
    else
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniform_index(i)]);

    std::vector<std::uint64_t> merged(total, ~std::uint64_t{0});
    for (const std::size_t pi : order) {
      const Piece& p = pieces[pi];
      ASSERT_EQ(p.outcomes.size(), p.end - p.begin);
      std::copy(p.outcomes.begin(), p.outcomes.end(),
                merged.begin() + static_cast<std::ptrdiff_t>(p.begin));
    }
    EXPECT_EQ(merged, want) << "arrival order trial " << trial;
  }
}

}  // namespace
}  // namespace mbq
