// Unit tests for mbq/common: rng, bits, signals, tables, angles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/common/signal.h"
#include "mbq/common/table.h"
#include "mbq/common/types.h"

namespace mbq {
namespace {

TEST(Types, WrapAngle) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_angle(kPi), kPi, 1e-15);
  EXPECT_NEAR(wrap_angle(-kPi), kPi, 1e-12);  // (-pi, pi] convention
  EXPECT_NEAR(wrap_angle(3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(2 * kPi + 0.25), 0.25, 1e-12);
  EXPECT_NEAR(wrap_angle(-2 * kPi - 0.25), -0.25, 1e-12);
}

TEST(Types, PiMultiple) {
  EXPECT_TRUE(is_pi_multiple(0.0));
  EXPECT_TRUE(is_pi_multiple(kPi));
  EXPECT_TRUE(is_pi_multiple(-3 * kPi));
  EXPECT_FALSE(is_pi_multiple(kPi / 2));
  EXPECT_FALSE(is_pi_multiple(0.1));
}

TEST(Types, AnglesEqualMod2Pi) {
  EXPECT_TRUE(angles_equal_mod_2pi(0.3, 0.3 + kTwoPi));
  EXPECT_TRUE(angles_equal_mod_2pi(-kPi, kPi));
  EXPECT_FALSE(angles_equal_mod_2pi(0.0, kPi));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  real sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const real x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitIndependent) {
  Rng rng(5);
  Rng child = rng.split();
  // Parent and child should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (rng.next() == child.next());
  EXPECT_LT(same, 4);
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity64(0), 0);
  EXPECT_EQ(parity64(1), 1);
  EXPECT_EQ(parity64(0b1011), 1);
  EXPECT_EQ(parity64(0b1111), 0);
}

TEST(Bits, GetSetFlip) {
  EXPECT_EQ(get_bit(0b100, 2), 1);
  EXPECT_EQ(get_bit(0b100, 1), 0);
  EXPECT_EQ(set_bit(0b100, 0, 1), 0b101u);
  EXPECT_EQ(set_bit(0b101, 0, 0), 0b100u);
  EXPECT_EQ(flip_bit(0b100, 2), 0u);
}

TEST(Bits, InsertRemove) {
  EXPECT_EQ(insert_zero_bit(0b101, 1), 0b1001u);
  EXPECT_EQ(insert_zero_bit(0b11, 0), 0b110u);
  EXPECT_EQ(remove_bit(0b1001, 1), 0b101u);
  // remove is a left inverse of insert.
  for (std::uint64_t x = 0; x < 64; ++x)
    for (int b = 0; b < 5; ++b)
      EXPECT_EQ(remove_bit(insert_zero_bit(x, b), b), x);
}

TEST(Bits, BitstringRoundTrip) {
  const std::uint64_t x = 0b110010;
  EXPECT_EQ(bitstring(x, 6), "010011");  // qubit 0 first
  EXPECT_EQ(parse_bitstring(bitstring(x, 6)), x);
  EXPECT_EQ(index_of(bits_of(x, 6)), x);
}

TEST(Bits, ParseRejectsGarbage) {
  EXPECT_THROW(parse_bitstring("01x"), Error);
}

TEST(Signal, XorCancels) {
  SignalExpr a(3);
  SignalExpr b(3);
  EXPECT_TRUE((a ^ b).empty());
}

TEST(Signal, MergeSorted) {
  SignalExpr s{5, 1, 3};
  EXPECT_EQ(s.variables(), (std::vector<signal_t>{1, 3, 5}));
  s ^= SignalExpr{3, 7};
  EXPECT_EQ(s.variables(), (std::vector<signal_t>{1, 5, 7}));
}

TEST(Signal, Evaluate) {
  SignalExpr s{0, 2};
  EXPECT_EQ(s.evaluate({1, 0, 0}), 1);
  EXPECT_EQ(s.evaluate({1, 0, 1}), 0);
  EXPECT_THROW(s.evaluate({1}), Error);  // s2 not yet measured
}

TEST(Signal, Str) {
  EXPECT_EQ(SignalExpr{}.str(), "0");
  EXPECT_EQ((SignalExpr{2, 0}).str(), "s0^s2");
}

TEST(Signal, RejectsNegative) { EXPECT_THROW(SignalExpr(-1), Error); }

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.row().add(1).add("x");
  t.row().add(2).add("y");
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("| 2"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "y");
}

TEST(Table, IncompleteRowThrows) {
  Table t({"a", "b"});
  t.row().add(1);
  EXPECT_THROW(t.markdown(), Error);
}

TEST(Table, CsvQuoting) {
  Table t({"a"});
  t.row().add(std::string("x,\"y\""));
  EXPECT_EQ(t.csv(), "a\n\"x,\"\"y\"\"\"\n");
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
  // With 8! arrangements, two shuffles almost surely differ.
  auto w2 = v;
  rng.shuffle(w2);
  EXPECT_TRUE(w != v || w2 != v);
}

TEST(Parallel, SumMatchesSerial) {
  const std::int64_t n = 100000;
  const real par = parallel_sum(n, [](std::int64_t i) {
    return 1.0 / ((i + 1.0) * (i + 1.0));
  });
  real ser = 0.0;
  for (std::int64_t i = 0; i < n; ++i) ser += 1.0 / ((i + 1.0) * (i + 1.0));
  EXPECT_NEAR(par, ser, 1e-9);
  EXPECT_GE(num_threads(), 1);
}

TEST(Parallel, ForCoversAllIndices) {
  const std::int64_t n = 50000;
  std::vector<std::int64_t> hit(n, 0);
  parallel_for(n, [&](std::int64_t i) { hit[i] = i + 1; });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hit[i], i + 1);
}

// Regression: the restore-default value used to be captured lazily on
// the FIRST set_num_threads call, so a process whose first call was
// already an override (set_num_threads(2)) could record the overridden
// max as "the default" on some OpenMP runtimes.  The default is now
// captured at static-initialization time, before any override can run,
// and stays invariant however many overrides happen.
TEST(Parallel, SetNumThreadsRestoresTheStartupDefault) {
  const int startup_default = default_num_threads();
  EXPECT_GE(startup_default, 1);

  // Overrides must not contaminate the recorded default.
  set_num_threads(2);
  EXPECT_EQ(default_num_threads(), startup_default);
  if (has_openmp()) EXPECT_EQ(num_threads(), 2);

  set_num_threads(3);
  EXPECT_EQ(default_num_threads(), startup_default);

  // n <= 0 restores the startup default, not the last override.
  set_num_threads(0);
  EXPECT_EQ(num_threads(), startup_default);
  set_num_threads(-5);
  EXPECT_EQ(num_threads(), startup_default);
}

TEST(Error, RequireMessage) {
  try {
    MBQ_REQUIRE(false, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mbq
