// QAOA layer tests: Hamiltonians, circuit-vs-fast-path agreement, and the
// analytic p=1 MaxCut oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::qaoa {
namespace {

TEST(Hamiltonian, MaxCutValues) {
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  // 0101 pattern cuts all 4 edges; 0000 cuts none; 0001 cuts 2.
  EXPECT_NEAR(c.evaluate(parse_bitstring("0101")), 4.0, kTol);
  EXPECT_NEAR(c.evaluate(parse_bitstring("0000")), 0.0, kTol);
  EXPECT_NEAR(c.evaluate(parse_bitstring("1000")), 2.0, kTol);
  EXPECT_FALSE(c.has_linear_terms());
  EXPECT_EQ(c.max_order(), 2);
  EXPECT_EQ(c.interaction_graph(), g);
}

TEST(Hamiltonian, QuboMatchesDirectEvaluation) {
  // c(x) = 2 x0 - 3 x1 + 1.5 x0 x2 - 0.5 x1 x2 + 7.
  const std::vector<real> lin{2.0, -3.0, 0.0};
  const std::vector<std::pair<Edge, real>> quad{{{0, 2}, 1.5},
                                                {{1, 2}, -0.5}};
  const CostHamiltonian c = CostHamiltonian::qubo(3, lin, quad, 7.0);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const real x0 = get_bit(x, 0), x1 = get_bit(x, 1), x2 = get_bit(x, 2);
    const real expect = 2 * x0 - 3 * x1 + 1.5 * x0 * x2 - 0.5 * x1 * x2 + 7;
    EXPECT_NEAR(c.evaluate(x), expect, kTol) << "x=" << x;
  }
}

TEST(Hamiltonian, TermMergingAndCancellation) {
  CostHamiltonian c(3);
  c.add_term({0, 1}, 0.5);
  c.add_term({1, 0}, 0.5);  // merges
  EXPECT_EQ(c.terms().size(), 1u);
  EXPECT_NEAR(c.terms()[0].coeff, 1.0, kTol);
  c.add_term({2, 2}, 4.0);  // Z^2 = I: pure constant
  EXPECT_NEAR(c.constant(), 4.0, kTol);
  EXPECT_EQ(c.terms().size(), 1u);
}

TEST(Hamiltonian, CostTableMatchesEvaluate) {
  Rng rng(1);
  const Graph g = random_gnm_graph(6, 9, rng);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const auto table = c.cost_table();
  for (std::uint64_t x = 0; x < table.size(); x += 7)
    EXPECT_NEAR(table[x], c.evaluate(x), kTol);
}

TEST(Hamiltonian, PenalizedMis) {
  const Graph g = path_graph(3);
  const CostHamiltonian c = CostHamiltonian::mis_penalized(g, 2.0);
  EXPECT_NEAR(c.evaluate(parse_bitstring("101")), 2.0, kTol);  // IS of size 2
  EXPECT_NEAR(c.evaluate(parse_bitstring("110")), 0.0, kTol);  // 2 - 2
  EXPECT_NEAR(c.evaluate(parse_bitstring("111")), -1.0, kTol);  // 3 - 4
}

TEST(Angles, FlattenRoundTrip) {
  const Angles a({0.1, 0.2}, {0.3, 0.4});
  const Angles b = Angles::from_flat(a.flat());
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.p(), 2);
  EXPECT_THROW(Angles({0.1}, {}), Error);
}

TEST(Qaoa, CircuitMatchesFastPath) {
  Rng rng(2);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_index(2));
    const Graph g = random_gnm_graph(n, std::min(6, n * (n - 1) / 2), rng);
    const CostHamiltonian c = CostHamiltonian::maxcut(g);
    const Angles a = Angles::random(1 + static_cast<int>(rng.uniform_index(3)),
                                    rng);
    // Path 1: explicit circuit.
    Statevector sv(n);
    qaoa_circuit(c, a).apply_to(sv);
    // Path 2: fast diagonal.
    const Statevector fast = qaoa_state(c, a);
    EXPECT_NEAR(sv.fidelity_with(fast), 1.0, 1e-9) << "trial " << trial;
    // Expectations agree too.
    const auto table = c.cost_table();
    EXPECT_NEAR(sv.expectation_diagonal(table), qaoa_expectation(c, a, &table),
                1e-9);
  }
}

TEST(Qaoa, ExpectationAtZeroAnglesIsMeanCost) {
  // gamma = beta = 0: state stays |+...+>, <C> = average cost.
  const Graph g = petersen_graph();
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a({0.0}, {0.0});
  // Mean cut of a random bipartition = |E|/2.
  EXPECT_NEAR(qaoa_expectation(c, a), g.num_edges() / 2.0, 1e-9);
}

TEST(Qaoa, SamplingConcentratesOnGoodCuts) {
  // On C4 at good angles, samples should beat the random-guess mean.
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const P1Optimum opt = maxcut_p1_grid_optimum(g, 48);
  Rng rng(3);
  const auto samples =
      qaoa_sample(c, Angles({opt.gamma}, {opt.beta}), 500, rng);
  real mean = 0.0;
  for (auto x : samples) mean += c.evaluate(x);
  mean /= samples.size();
  EXPECT_GT(mean, 2.4);  // random guessing gives 2.0
}

// --- analytic p=1 oracle ---

TEST(AnalyticP1, MatchesSimulatorOnManyGraphs) {
  Rng rng(4);
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(4));
  graphs.push_back(cycle_graph(5));
  graphs.push_back(complete_graph(4));
  graphs.push_back(star_graph(5));
  graphs.push_back(petersen_graph());
  graphs.push_back(random_gnm_graph(6, 8, rng));
  for (const Graph& g : graphs) {
    const CostHamiltonian c = CostHamiltonian::maxcut(g);
    const auto table = c.cost_table();
    for (int trial = 0; trial < 4; ++trial) {
      const real gamma = rng.angle();
      const real beta = rng.uniform(-kPi / 2, kPi / 2);
      const real analytic = maxcut_p1_expectation(g, gamma, beta);
      const real simulated =
          qaoa_expectation(c, Angles({gamma}, {beta}), &table);
      ASSERT_NEAR(analytic, simulated, 1e-9)
          << g.str() << " gamma=" << gamma << " beta=" << beta;
    }
  }
}

TEST(AnalyticP1, TriangleFreeSpecialization) {
  // On triangle-free graphs the lambda term vanishes.
  const Graph g = cycle_graph(6);
  const real gamma = 0.7, beta = 0.3;
  for (const Edge& e : g.edges()) {
    const real full = maxcut_p1_edge_expectation(g, e, gamma, beta);
    const real tf = 0.5 + 0.25 * std::sin(4 * beta) * std::sin(gamma) *
                              (std::pow(std::cos(gamma), 1) +
                               std::pow(std::cos(gamma), 1));
    EXPECT_NEAR(full, tf, 1e-12);
  }
}

TEST(AnalyticP1, GridOptimumBeatsRandom) {
  const Graph g = cycle_graph(8);
  const P1Optimum opt = maxcut_p1_grid_optimum(g, 48);
  // Known: ring of even length, p=1 optimum achieves 3/4 ratio (<C>/|E| =
  // 0.75) in the large-n limit; 8-ring is very close.
  EXPECT_GT(opt.value / g.num_edges(), 0.74);
  EXPECT_LT(opt.value / g.num_edges(), 0.80);
}

}  // namespace
}  // namespace mbq::qaoa
