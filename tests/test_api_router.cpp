// The cost-routing meta-backend: adapter selection at Clifford vs.
// generic angles and across instance sizes, the routing report, parity
// with the reference on every routed path, and the cross-check mode —
// including that it catches an injected disagreement.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"

namespace mbq::api {
namespace {

using qaoa::Angles;

const Angles kCliffordPoint({kPi / 2}, {kPi / 4});
const Angles kGenericPoint({0.37}, {0.21});

TEST(Router, RegisteredInRegistry) {
  auto& registry = BackendRegistry::instance();
  EXPECT_TRUE(registry.contains("router"));
  EXPECT_TRUE(registry.contains("router-checked"));
  EXPECT_EQ(registry.create("router")->name(), "router");
}

TEST(Router, PicksCliffordAtCliffordPoints) {
  const RouterBackend router;
  const Workload w = Workload::maxcut(cycle_graph(4));
  const RouteDecision d = router.route(w, kCliffordPoint);
  EXPECT_EQ(d.backend_name, "clifford");
  EXPECT_TRUE(d.rejected.empty());
  EXPECT_FALSE(d.reason.empty());
}

TEST(Router, PicksZxForTinyInstancesAtGenericAngles) {
  const RouterBackend router;
  const Workload w = Workload::maxcut(cycle_graph(4));
  const RouteDecision d = router.route(w, kGenericPoint);
  EXPECT_EQ(d.backend_name, "zx");
  // clifford was considered and passed over, with a reason.
  ASSERT_EQ(d.rejected.size(), 1u);
  EXPECT_EQ(d.rejected[0].first, "clifford");
  EXPECT_FALSE(d.rejected[0].second.empty());
}

TEST(Router, PicksSimulatorBeyondTheTinyInstanceRule) {
  const RouterBackend router;
  Rng rng(3);
  const Workload w = Workload::maxcut(cycle_graph(6));  // > zx_max_qubits = 5
  const RouteDecision d = router.route(w, Angles::random(1, rng));
  EXPECT_EQ(d.backend_name, "statevector");
  bool zx_policy_rejected = false;
  for (const auto& [name, why] : d.rejected)
    if (name == "zx")
      zx_policy_rejected = why.find("routing policy") != std::string::npos;
  EXPECT_TRUE(zx_policy_rejected);
}

TEST(Router, RoutedExpectationMatchesReferenceEverywhere) {
  Rng rng(11);
  for (int n : {4, 6}) {
    const Workload w = Workload::maxcut(cycle_graph(n));
    for (const Angles& a :
         {kCliffordPoint, Angles::random(1, rng), Angles::random(2, rng)}) {
      Session reference(w, "statevector");
      Session routed(w, "router");
      EXPECT_NEAR(routed.expectation(a), reference.expectation(a), 1e-9)
          << "n=" << n;
    }
  }
}

TEST(Router, SamplingGoesThroughTheRoutedAdapter) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  Session session(w, "router", {.seed = 5});
  const SampleResult r = session.sample(kGenericPoint, 256);
  EXPECT_EQ(r.shots.size(), 256u);
  const auto counts = r.counts(4);
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 256);
}

TEST(Router, SessionSurfacesRouterName) {
  Session session(Workload::maxcut(cycle_graph(4)), "router");
  EXPECT_EQ(session.backend_name(), "router");
  EXPECT_EQ(session.unsupported_reason(kGenericPoint), "");
}

TEST(Router, UnsupportedWhenNoCandidateFits) {
  RouterOptions options;
  options.candidates = {"clifford"};
  const RouterBackend router(options);
  const Workload w = Workload::maxcut(cycle_graph(4));
  const std::string reason = router.unsupported_reason(w, kGenericPoint,
                                                       nullptr);
  EXPECT_NE(reason.find("clifford"), std::string::npos) << reason;
  Session session(w, std::make_shared<RouterBackend>(options));
  EXPECT_THROW(session.expectation(kGenericPoint), Error);
}

TEST(Router, RejectsUnknownCandidatesAndSelfRouting) {
  RouterOptions unknown;
  unknown.candidates = {"no-such-backend"};
  EXPECT_THROW(RouterBackend{unknown}, Error);
  RouterOptions self;
  self.candidates = {"router"};
  EXPECT_THROW(RouterBackend{self}, Error);
}

TEST(Router, EnvOverridesDefaultRouterCandidates) {
  // MBQ_ROUTER_CANDIDATES re-orders/restricts the registry's DEFAULT
  // router — the knob CI uses to re-run tier-1 with routing pinned to
  // the f32-capable adapter.  Explicitly constructed routers never read
  // the variable.
  struct EnvGuard {
    std::string saved;
    bool had;
    EnvGuard() {
      const char* v = std::getenv("MBQ_ROUTER_CANDIDATES");
      had = v != nullptr;
      if (had) saved = v;
    }
    ~EnvGuard() {
      if (had)
        ::setenv("MBQ_ROUTER_CANDIDATES", saved.c_str(), 1);
      else
        ::unsetenv("MBQ_ROUTER_CANDIDATES");
    }
  } guard;

  ::setenv("MBQ_ROUTER_CANDIDATES", "mbqc,statevector", 1);
  auto backend = BackendRegistry::instance().create("router");
  auto* router = dynamic_cast<RouterBackend*>(backend.get());
  ASSERT_NE(router, nullptr);
  const std::vector<std::string> forced{"mbqc", "statevector"};
  EXPECT_EQ(router->options().candidates, forced);
  const Workload w = Workload::maxcut(cycle_graph(4));
  EXPECT_EQ(router->route(w, kGenericPoint).backend_name, "mbqc");

  // The override resolves at create() time, so bad values fail loudly
  // there: unknown names and all-empty lists are both hard errors.
  ::setenv("MBQ_ROUTER_CANDIDATES", "no-such-backend", 1);
  EXPECT_THROW(BackendRegistry::instance().create("router"), Error);
  ::setenv("MBQ_ROUTER_CANDIDATES", ",,", 1);
  EXPECT_THROW(BackendRegistry::instance().create("router-checked"), Error);

  // Explicit construction keeps the documented cost-ordered defaults.
  const RouterBackend untouched;
  ASSERT_FALSE(untouched.options().candidates.empty());
  EXPECT_EQ(untouched.options().candidates.front(), "clifford");
}

TEST(Router, CrossCheckPassesWhenAdaptersAgree) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  Session reference(w, "statevector");
  Session checked(w, "router-checked");
  // Generic point: zx checked against statevector; Clifford point:
  // clifford checked against zx.  Both must agree with the reference.
  EXPECT_NEAR(checked.expectation(kGenericPoint),
              reference.expectation(kGenericPoint), 1e-9);
  EXPECT_NEAR(checked.expectation(kCliffordPoint),
              reference.expectation(kCliffordPoint), 1e-9);
}

TEST(Router, CrossCheckReportsTheCheckingAdapter) {
  RouterOptions options;
  options.cross_check = true;
  const RouterBackend router(options);
  const Workload w = Workload::maxcut(cycle_graph(4));
  const RouteDecision d = router.route(w, kGenericPoint);
  EXPECT_EQ(d.backend_name, "zx");
  EXPECT_EQ(d.cross_check_backend, "statevector");
}

/// Deliberately wrong adapter: statevector shifted by a constant — the
/// injected disagreement the cross-check must catch.
class LyingBackend final : public Backend {
 public:
  std::string name() const override { return "lying-statevector"; }
  Capabilities capabilities() const override { return inner_.capabilities(); }
  real expectation(const Workload& w, const qaoa::Angles& a, Rng& rng,
                   const Prepared* prep) const override {
    return inner_.expectation(w, a, rng, prep) + 0.5;
  }
  std::uint64_t sample_one(const Workload& w, const qaoa::Angles& a, Rng& rng,
                           const Prepared* prep) const override {
    return inner_.sample_one(w, a, rng, prep);
  }

 private:
  StatevectorBackend inner_;
};

TEST(Router, CrossCheckCatchesInjectedDisagreement) {
  auto& registry = BackendRegistry::instance();
  if (!registry.contains("lying-statevector"))
    registry.add("lying-statevector",
                 [] { return std::make_shared<LyingBackend>(); });

  RouterOptions options;
  options.candidates = {"lying-statevector", "statevector"};
  options.cross_check = true;
  const Workload w = Workload::maxcut(cycle_graph(4));

  Session session(w, std::make_shared<RouterBackend>(options));
  try {
    session.expectation(kGenericPoint);
    FAIL() << "cross-check accepted a 0.5 disagreement";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cross-check disagreement"), std::string::npos)
        << what;
    EXPECT_NE(what.find("lying-statevector"), std::string::npos) << what;
  }

  // The same injected pair passes once the tolerance swallows the shift —
  // the throw above really is the comparison, not an unrelated failure.
  options.cross_check_tolerance = 1.0;
  Session lenient(w, std::make_shared<RouterBackend>(options));
  EXPECT_NO_THROW(lenient.expectation(kGenericPoint));
}

TEST(Router, CapabilitiesAggregateTheCandidates) {
  const RouterBackend router;
  const Capabilities caps = router.capabilities();
  EXPECT_EQ(caps.max_qubits, 64);  // clifford's reach
  EXPECT_FALSE(caps.clifford_angles_only);
  EXPECT_TRUE(caps.supports_mis_ansatz);
  EXPECT_TRUE(caps.exact_expectation);
}

}  // namespace
}  // namespace mbq::api
