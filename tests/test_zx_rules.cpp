// Property tests for the Fig. 1 rewrite rules: every rule application must
// preserve the diagram's tensor (exactly, or up to a scalar where
// documented).  Randomized contexts catch wiring mistakes that
// hand-picked examples miss.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/linalg/tensor.h"
#include "mbq/zx/diagram.h"
#include "mbq/zx/rules.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

/// Attach a fresh output boundary to every non-boundary node that has
/// fewer than `min_deg` connections, so the tensor keeps full information.
void expose(Diagram& d, int node, int extra) {
  for (int i = 0; i < extra; ++i) {
    const int out = d.add_output();
    d.add_edge(node, out);
  }
}

real diff_up_to_scalar(const Diagram& a, const Diagram& b) {
  return Tensor::proportionality_distance(evaluate(a), evaluate(b));
}

real diff_exact(const Diagram& a, const Diagram& b) {
  return Tensor::max_abs_diff(evaluate(a), evaluate(b));
}

TEST(Rules, FuseAddsPhasesExact) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const bool use_x = rng.coin();
    const real pa = rng.angle(), pb = rng.angle();
    const int deg_a = 1 + static_cast<int>(rng.uniform_index(3));
    const int deg_b = 1 + static_cast<int>(rng.uniform_index(3));
    const int links = 1 + static_cast<int>(rng.uniform_index(2));

    Diagram d;
    const int a = use_x ? d.add_x(pa) : d.add_z(pa);
    const int b = use_x ? d.add_x(pb) : d.add_z(pb);
    for (int l = 0; l < links; ++l) d.add_edge(a, b);
    expose(d, a, deg_a);
    expose(d, b, deg_b);
    Diagram before = d;
    ASSERT_TRUE(rules::fuse(d, a, b));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9)
        << "trial " << trial << " links=" << links;
    EXPECT_NEAR(wrap_angle(d.phase(a) - pa - pb), 0.0, 1e-9);
  }
}

TEST(Rules, FuseRejectsMismatch) {
  Diagram d;
  const int a = d.add_z(0.1);
  const int b = d.add_x(0.2);
  d.add_edge(a, b);
  EXPECT_FALSE(rules::fuse(d, a, b));  // different colours
  Diagram d2;
  const int p = d2.add_z(0.0);
  const int q = d2.add_z(0.0);
  EXPECT_FALSE(rules::fuse(d2, p, q));  // not connected
}

TEST(Rules, IdentityRemovalExact) {
  Rng rng(2);
  for (const bool use_x : {false, true}) {
    Diagram d;
    const int left = d.add_z(rng.angle());
    const int mid = use_x ? d.add_x(0.0) : d.add_z(0.0);
    const int right = d.add_x(rng.angle());
    d.add_edge(left, mid);
    d.add_edge(mid, right);
    expose(d, left, 1);
    expose(d, right, 1);
    Diagram before = d;
    ASSERT_TRUE(rules::remove_identity(d, mid));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9);
  }
}

TEST(Rules, IdentityRemovalRejectsPhasedOrWrongArity) {
  Diagram d;
  const int v = d.add_z(0.3);
  expose(d, v, 2);
  EXPECT_FALSE(rules::remove_identity(d, v));  // phased
  Diagram d2;
  const int w = d2.add_z(0.0);
  expose(d2, w, 3);
  EXPECT_FALSE(rules::remove_identity(d2, w));  // arity 3
}

TEST(Rules, HHCancelExact) {
  Diagram d;
  const int in = d.add_input();
  const int out = d.add_output();
  const int h1 = d.add_hbox();
  const int h2 = d.add_hbox();
  d.add_edge(in, h1);
  d.add_edge(h1, h2);
  d.add_edge(h2, out);
  Diagram before = d;
  ASSERT_TRUE(rules::cancel_hh(d, h1, h2));
  EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9);
  // Both diagrams evaluate to 2*I (each H-box is sqrt(2)*H); the rewrite
  // keeps that scalar in Diagram::scalar().
  EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(d),
                                   Matrix::identity(2) * cplx{2.0, 0.0}));
  EXPECT_EQ(d.count_kind(NodeKind::HBox), 0);
}

TEST(Rules, ColorChangeExact) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const int deg = 1 + static_cast<int>(rng.uniform_index(4));
    Diagram d;
    const int v = rng.coin() ? d.add_z(rng.angle()) : d.add_x(rng.angle());
    // Mix of plain wires and pre-existing H-edges to boundaries.
    for (int i = 0; i < deg; ++i) {
      const int out = d.add_output();
      if (rng.coin()) {
        d.add_edge(v, out);
      } else {
        const int h = d.add_hbox();
        d.add_edge(v, h);
        d.add_edge(h, out);
      }
    }
    Diagram before = d;
    ASSERT_TRUE(rules::color_change(d, v));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9) << "trial " << trial;
    // Applying it twice returns to the original tensor as well.
    ASSERT_TRUE(rules::color_change(d, v));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9);
  }
}

TEST(Rules, PiCopyExact) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const bool pi_is_x = rng.coin();
    const real alpha = rng.angle();
    const int extra_legs = 1 + static_cast<int>(rng.uniform_index(3));
    Diagram d;
    const int spider = pi_is_x ? d.add_z(alpha) : d.add_x(alpha);
    const int pi = pi_is_x ? d.add_x(kPi) : d.add_z(kPi);
    const int in = d.add_input();
    d.add_edge(in, pi);
    d.add_edge(pi, spider);
    expose(d, spider, extra_legs);
    Diagram before = d;
    ASSERT_TRUE(rules::pi_copy(d, pi));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9)
        << "trial " << trial << " alpha=" << alpha;
    EXPECT_NEAR(wrap_angle(d.phase(spider) + alpha), 0.0, 1e-9);
  }
}

TEST(Rules, PiCopyRejectsNonPi) {
  Diagram d;
  const int s = d.add_z(0.4);
  const int p = d.add_x(0.5);  // not pi
  const int in = d.add_input();
  d.add_edge(in, p);
  d.add_edge(p, s);
  expose(d, s, 1);
  EXPECT_FALSE(rules::pi_copy(d, p));
}

TEST(Rules, StateCopyExact) {
  Rng rng(5);
  for (int trial = 0; trial < 16; ++trial) {
    const bool state_is_x = rng.coin();
    const real state_phase = rng.coin() ? 0.0 : kPi;
    const int fanout = 1 + static_cast<int>(rng.uniform_index(3));
    Diagram d;
    const int spider = state_is_x ? d.add_z(0.0) : d.add_x(0.0);
    const int st = state_is_x ? d.add_x(state_phase) : d.add_z(state_phase);
    d.add_edge(st, spider);
    expose(d, spider, fanout);
    Diagram before = d;
    ASSERT_TRUE(rules::state_copy(d, st));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9)
        << "trial " << trial << " fanout=" << fanout;
  }
}

TEST(Rules, StateCopyRejectsPhasedSpider) {
  Diagram d;
  const int spider = d.add_z(0.7);
  const int st = d.add_x(0.0);
  d.add_edge(st, spider);
  expose(d, spider, 2);
  EXPECT_FALSE(rules::state_copy(d, st));
}

TEST(Rules, BialgebraUpToScalar) {
  // The 2-2 bialgebra of Fig. 1(b).
  Diagram d;
  const int z = d.add_z(0.0);
  const int x = d.add_x(0.0);
  d.add_edge(z, x);
  const int i1 = d.add_input();
  const int i2 = d.add_input();
  const int o1 = d.add_output();
  const int o2 = d.add_output();
  d.add_edge(i1, z);
  d.add_edge(i2, z);
  d.add_edge(x, o1);
  d.add_edge(x, o2);
  Diagram before = d;
  ASSERT_TRUE(rules::bialgebra(d, z, x));
  EXPECT_NEAR(diff_up_to_scalar(before, d), 0.0, 1e-9);
}

TEST(Rules, BialgebraAsymmetricArity) {
  // 1-3 variant, still up to scalar.
  Diagram d;
  const int z = d.add_z(0.0);
  const int x = d.add_x(0.0);
  d.add_edge(z, x);
  const int i1 = d.add_input();
  d.add_edge(i1, z);
  for (int k = 0; k < 3; ++k) {
    const int o = d.add_output();
    d.add_edge(x, o);
  }
  Diagram before = d;
  ASSERT_TRUE(rules::bialgebra(d, z, x));
  EXPECT_NEAR(diff_up_to_scalar(before, d), 0.0, 1e-9);
}

TEST(Rules, HopfExact) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Diagram d;
    const int z = d.add_z(rng.angle());
    const int x = d.add_x(rng.angle());
    d.add_edge(z, x);
    d.add_edge(z, x);
    expose(d, z, 1);
    expose(d, x, 1);
    Diagram before = d;
    ASSERT_TRUE(rules::hopf(d, z, x));
    EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9) << "trial " << trial;
    EXPECT_TRUE(d.edges_between(z, x).empty());
  }
}

TEST(Rules, HopfNeedsTwoEdges) {
  Diagram d;
  const int z = d.add_z(0.0);
  const int x = d.add_x(0.0);
  d.add_edge(z, x);
  EXPECT_FALSE(rules::hopf(d, z, x));
}

TEST(Rules, SelfLoopRemovalExact) {
  Rng rng(7);
  for (const bool use_x : {false, true}) {
    Diagram d;
    const int v = use_x ? d.add_x(rng.angle()) : d.add_z(rng.angle());
    d.add_edge(v, v);
    expose(d, v, 2);
    Diagram before = d;
    // Reference without the loop: evaluate(before) would throw on the
    // self-loop; build the loop-free diagram directly.
    ASSERT_TRUE(rules::remove_self_loops(d, v));
    Diagram clean;
    const int w = use_x ? clean.add_x(before.phase(v)) : clean.add_z(before.phase(v));
    expose(clean, w, 2);
    EXPECT_NEAR(diff_exact(clean, d), 0.0, 1e-9);
  }
}

TEST(Rules, HadamardSelfLoopAddsPi) {
  Rng rng(8);
  const real alpha = rng.angle();
  Diagram d;
  const int v = d.add_z(alpha);
  const int h = d.add_hbox();
  d.add_edge(v, h);
  d.add_edge(h, v);
  expose(d, v, 2);
  ASSERT_TRUE(rules::absorb_hadamard_self_loop(d, h));
  EXPECT_NEAR(wrap_angle(d.phase(v) - alpha - kPi), 0.0, 1e-9);
  // Tensor check against a directly-built spider with alpha+pi.
  Diagram clean;
  const int w = clean.add_z(alpha + kPi);
  expose(clean, w, 2);
  EXPECT_NEAR(diff_exact(clean, d), 0.0, 1e-9);
}

TEST(Rules, ParallelHadamardPairCancelsExact) {
  Rng rng(9);
  Diagram d;
  const int a = d.add_z(rng.angle());
  const int b = d.add_z(rng.angle());
  d.add_hadamard_edge(a, b);
  d.add_hadamard_edge(a, b);
  expose(d, a, 1);
  expose(d, b, 1);
  Diagram before = d;
  ASSERT_TRUE(rules::cancel_parallel_hadamard_pair(d, a, b));
  EXPECT_NEAR(diff_exact(before, d), 0.0, 1e-9);
  EXPECT_EQ(d.count_kind(NodeKind::HBox), 0);
}

}  // namespace
}  // namespace mbq::zx
