// Iterative quantum optimization (Sec. V / refs [56], [60], [61]):
// correlation-guided contraction with all expectations obtained through
// the measurement-based protocol.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/iterative.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::core {
namespace {

real exact_maxcut(const Graph& g, const std::vector<real>& w) {
  return opt::brute_force_maximum(
             qaoa::CostHamiltonian::maxcut_weighted(g, w))
      .value;
}

TEST(Iterative, SolvesEvenCycleExactly) {
  const Graph g = cycle_graph(8);
  const std::vector<real> w(8, 1.0);
  Rng rng(1);
  const IterativeResult r = iterative_maxcut(g, w, {}, rng);
  EXPECT_NEAR(r.value, 8.0, 1e-9);  // bipartite: cut everything
  EXPECT_EQ(r.rounds.size(), 8u - 4u);
  // The first round operates on the all-(+1) instance, where the p=1
  // optimum anti-correlates every edge.  (Later rounds see contracted
  // instances with negative weights, where alignment can be optimal.)
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_TRUE(r.rounds.front().anti_aligned);
}

TEST(Iterative, NearOptimalOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_gnm_graph(8, 12, rng);
    const std::vector<real> w(12, 1.0);
    const real best = exact_maxcut(g, w);
    Rng solve_rng(trial);
    const IterativeResult r = iterative_maxcut(g, w, {}, solve_rng);
    EXPECT_GE(r.value, 0.85 * best) << "trial " << trial;
    // Value reported must equal the cut of the returned assignment.
    EXPECT_NEAR(
        r.value,
        qaoa::CostHamiltonian::maxcut_weighted(g, w).evaluate(r.x), 1e-9);
  }
}

TEST(Iterative, HandlesWeights) {
  // Triangle with one dominant edge: the heavy edge must be cut.
  const Graph g = complete_graph(3);
  std::vector<real> w{5.0, 1.0, 1.0};  // edges (0,1), (0,2), (1,2)
  Rng rng(3);
  IterativeOptions opt;
  opt.base_case_size = 2;
  const IterativeResult r = iterative_maxcut(g, w, opt, rng);
  EXPECT_NEAR(r.value, 6.0, 1e-9);  // cut (0,1) and one unit edge
}

TEST(Iterative, NegativeWeightsAlign) {
  // A single negative edge: best cut leaves it uncut (aligned).
  Graph g(2);
  g.add_edge(0, 1);
  Rng rng(4);
  IterativeOptions opt;
  opt.base_case_size = 1;
  const IterativeResult r = iterative_maxcut(g, {-2.0}, opt, rng);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_FALSE(r.rounds[0].anti_aligned);
}

TEST(Iterative, BaseCaseOnlyReducesToBruteForce) {
  // With base_case_size >= n there are no quantum rounds at all.
  const Graph g = cycle_graph(5);
  const std::vector<real> w(5, 1.0);
  Rng rng(5);
  IterativeOptions opt;
  opt.base_case_size = 5;
  const IterativeResult r = iterative_maxcut(g, w, opt, rng);
  EXPECT_TRUE(r.rounds.empty());
  EXPECT_NEAR(r.value, 4.0, 1e-9);  // odd cycle optimum
}

TEST(Iterative, RejectsBadArguments) {
  const Graph g = cycle_graph(4);
  Rng rng(6);
  EXPECT_THROW(iterative_maxcut(g, {1.0}, {}, rng), Error);
  IterativeOptions opt;
  opt.base_case_size = 0;
  EXPECT_THROW(iterative_maxcut(g, std::vector<real>(4, 1.0), opt, rng),
               Error);
}

}  // namespace
}  // namespace mbq::core
