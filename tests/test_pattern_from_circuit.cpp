// The generic circuit -> pattern translation must reproduce the circuit
// branch-by-branch.  This is the "general method with overhead" baseline
// the paper contrasts with its tailored construction.

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/runner.h"
#include "mbq/sim/statevector.h"

namespace mbq::mbqc {
namespace {

/// Reference: circuit applied to |+...+>.
std::vector<cplx> reference_on_plus(const Circuit& c) {
  Statevector sv = Statevector::all_plus(c.num_qubits());
  c.apply_to(sv);
  return sv.amplitudes();
}

void expect_pattern_equals_circuit_on_plus(const Circuit& c,
                                           int max_branches = 10) {
  const Pattern p = pattern_from_circuit(c, /*plus_inputs=*/true);
  const auto expect = reference_on_plus(c);
  if (p.num_measurements() <= max_branches) {
    for (const auto& b : run_all_branches(p, max_branches))
      ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9);
  } else {
    // Sample random branches.
    Rng rng(99);
    for (int trial = 0; trial < 12; ++trial) {
      const RunResult r = run(p, rng);
      ASSERT_NEAR(fidelity(r.output_state, expect), 1.0, 1e-9);
    }
  }
}

TEST(FromCircuit, SingleJGates) {
  for (auto build :
       {+[](Circuit& c) { c.h(0); }, +[](Circuit& c) { c.rz(0, 0.37); },
        +[](Circuit& c) { c.rx(0, -0.9); }, +[](Circuit& c) { c.x(0); },
        +[](Circuit& c) { c.z(0); }, +[](Circuit& c) { c.s(0); },
        +[](Circuit& c) { c.t(0); }, +[](Circuit& c) { c.y(0); }}) {
    Circuit c(1);
    build(c);
    expect_pattern_equals_circuit_on_plus(c);
  }
}

TEST(FromCircuit, CzAndCx) {
  {
    Circuit c(2);
    c.rz(0, 0.4).cz(0, 1).rx(1, 0.8);
    expect_pattern_equals_circuit_on_plus(c);
  }
  {
    Circuit c(2);
    c.cx(0, 1).rz(1, -0.3);
    expect_pattern_equals_circuit_on_plus(c);
  }
}

TEST(FromCircuit, PhaseGadgetLadder) {
  Circuit c(3);
  c.phase_gadget({0, 1, 2}, 0.63);
  expect_pattern_equals_circuit_on_plus(c, 20);
}

TEST(FromCircuit, RandomCircuitsSampledBranches) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(2));
    Circuit c(n);
    for (int step = 0; step < 8; ++step) {
      const int q = static_cast<int>(rng.uniform_index(n));
      int r = static_cast<int>(rng.uniform_index(n));
      if (r == q) r = (r + 1) % n;
      switch (rng.uniform_index(5)) {
        case 0: c.h(q); break;
        case 1: c.rz(q, rng.angle()); break;
        case 2: c.rx(q, rng.angle()); break;
        case 3: c.cz(q, r); break;
        case 4: c.cx(q, r); break;
      }
    }
    expect_pattern_equals_circuit_on_plus(c);
  }
}

TEST(FromCircuit, UnitaryPatternOnProductInputs) {
  // With open inputs the pattern realizes the circuit as a map; verify on
  // random product states.
  Rng rng(13);
  Circuit c(2);
  c.rz(0, 0.5).cx(0, 1).rx(1, 1.1).cz(0, 1).h(0);
  const Pattern p = pattern_from_circuit(c, /*plus_inputs=*/false);
  EXPECT_EQ(p.inputs().size(), 2u);
  const Matrix u = c.unitary();
  for (int trial = 0; trial < 5; ++trial) {
    RunOptions opt;
    std::vector<cplx> in(4, cplx{0, 0});
    std::vector<std::vector<cplx>> q(2);
    for (int i = 0; i < 2; ++i) {
      const cplx a0{rng.normal(), rng.normal()};
      const cplx a1{rng.normal(), rng.normal()};
      opt.input_states[i] = {a0, a1};
      q[i] = {a0, a1};
    }
    for (int b = 0; b < 4; ++b) in[b] = q[0][b & 1] * q[1][(b >> 1) & 1];
    const auto expect = u * in;
    Rng run_rng(trial);
    const RunResult r = run(p, run_rng, opt);
    ASSERT_NEAR(fidelity(r.output_state, expect), 1.0, 1e-9);
  }
}

TEST(FromCircuit, ResourceCounts) {
  // H = 1 J = 1 ancilla; Rz = 2 J; CZ = 0 ancillas.
  Circuit c(2);
  c.h(0).rz(1, 0.3).cz(0, 1);
  const Pattern p = pattern_from_circuit(c, true);
  EXPECT_EQ(p.num_prepared(), 2 + 3);  // 2 initial wires + 3 J ancillas
  EXPECT_EQ(p.num_measurements(), 3);
  EXPECT_EQ(p.num_entangling(), 3 + 1);  // one per J + the CZ
}

TEST(FromCircuit, ControlledGateExpandedAndCorrect) {
  Circuit c(2);
  c.controlled_exp_x(0, {1}, 0.7, 0);
  expect_pattern_equals_circuit_on_plus(c, 8);
}

}  // namespace
}  // namespace mbq::mbqc
