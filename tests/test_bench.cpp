// Unit tests for mbq/bench: distance toolkit closed forms, corpus
// manifest codec, instance generators, report JSON codec, and the
// replay harness's determinism contract.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "mbq/api/api.h"
#include "mbq/bench/corpus.h"
#include "mbq/bench/distance.h"
#include "mbq/bench/generators.h"
#include "mbq/bench/harness.h"
#include "mbq/bench/report.h"
#include "mbq/graph/generators.h"

namespace mbq::bench {
namespace {

namespace fs = std::filesystem;

constexpr real kTol = 1e-12;

// --- distance toolkit: hand-computed closed forms ---------------------------

TEST(Distance, TwoOutcomeClosedForm) {
  // p = (3/4, 1/4), q = (1/4, 3/4):
  //   BC  = 2 sqrt(3/16) = sqrt(3)/2, fidelity = BC^2 = 3/4
  //   H   = sqrt(1 - sqrt(3)/2), TVD = 1/2
  const SparseDist p{{0, 0.75}, {1, 0.25}};
  const SparseDist q{{0, 0.25}, {1, 0.75}};
  EXPECT_NEAR(bhattacharyya(p, q), std::sqrt(3.0) / 2.0, kTol);
  EXPECT_NEAR(hellinger_fidelity(p, q), 0.75, kTol);
  EXPECT_NEAR(hellinger(p, q), std::sqrt(1.0 - std::sqrt(3.0) / 2.0), kTol);
  EXPECT_NEAR(tvd(p, q), 0.5, kTol);
}

TEST(Distance, ThreeOutcomeClosedForm) {
  // p = (1/2, 1/4, 1/4), q = (1/4, 1/2, 1/4):
  //   BC  = 2 sqrt(1/8) + 1/4,  TVD = 1/4
  const SparseDist p{{0, 0.5}, {1, 0.25}, {2, 0.25}};
  const SparseDist q{{0, 0.25}, {1, 0.5}, {2, 0.25}};
  const real bc = 2.0 * std::sqrt(0.125) + 0.25;
  EXPECT_NEAR(bhattacharyya(p, q), bc, kTol);
  EXPECT_NEAR(hellinger_fidelity(p, q), bc * bc, kTol);
  EXPECT_NEAR(tvd(p, q), 0.25, kTol);
}

TEST(Distance, ChiSquaredClosedForm) {
  // Observed {30, 70} against uniform over 2 outcomes at N = 100:
  // expected 50 each, chi^2 = 20^2/50 + 20^2/50 = 16.
  const SparseHist obs{{0, 30}, {1, 70}};
  const SparseDist uniform{{0, 0.5}, {1, 0.5}};
  EXPECT_NEAR(chi_squared(obs, uniform), 16.0, kTol);
}

TEST(Distance, IdentityIsZero) {
  const SparseDist p{{3, 0.6}, {9, 0.4}};
  EXPECT_NEAR(hellinger(p, p), 0.0, kTol);
  EXPECT_NEAR(hellinger_fidelity(p, p), 1.0, kTol);
  EXPECT_NEAR(tvd(p, p), 0.0, kTol);
  // Perfectly proportional counts score a chi-squared of exactly 0.
  const SparseHist obs{{3, 60}, {9, 40}};
  EXPECT_NEAR(chi_squared(obs, p), 0.0, kTol);
}

TEST(Distance, DisjointSupportIsMaximal) {
  const SparseDist p{{0, 0.5}, {1, 0.5}};
  const SparseDist q{{2, 0.5}, {3, 0.5}};
  EXPECT_NEAR(hellinger(p, q), 1.0, kTol);
  EXPECT_NEAR(hellinger_fidelity(p, q), 0.0, kTol);
  EXPECT_NEAR(tvd(p, q), 1.0, kTol);
  // An observation outside the expected support is an infinite statistic.
  const SparseHist obs{{0, 10}};
  EXPECT_TRUE(std::isinf(chi_squared(obs, q)));
}

TEST(Distance, NormalizeValidatesInput) {
  EXPECT_THROW(normalize(SparseHist{}), Error);
  EXPECT_THROW(normalize(SparseHist{{0, -1}}), Error);
  EXPECT_THROW(normalize(SparseHist{{0, 0}, {1, 0}}), Error);
  const SparseDist d = normalize(SparseHist{{0, 1}, {1, 3}, {2, 0}});
  ASSERT_EQ(d.size(), 2u);  // zero-count outcomes dropped
  EXPECT_NEAR(d.at(0), 0.25, kTol);
  EXPECT_NEAR(d.at(1), 0.75, kTol);
}

TEST(Distance, ReferenceUniformAtZeroAngles) {
  // gamma = beta = 0 leaves |+>^n untouched: exactly uniform over 2^n.
  const api::Workload w = api::Workload::maxcut(complete_graph(3));
  const SparseDist ref = reference_distribution(w, qaoa::Angles{{0.0}, {0.0}});
  ASSERT_EQ(ref.size(), 8u);
  for (const auto& [x, p] : ref) EXPECT_NEAR(p, 0.125, 1e-9);
}

TEST(Distance, BestCostAndRatio) {
  // MaxCut on a triangle: best cut value is 2.
  const api::Workload w = api::Workload::maxcut(complete_graph(3));
  EXPECT_NEAR(best_cost(w), 2.0, kTol);
  EXPECT_NEAR(approximation_ratio(1.5, 2.0), 0.75, kTol);
  EXPECT_EQ(approximation_ratio(1.0, 0.0), 0.0);  // degenerate best
}

// --- counts_map: the sparse histogram behind the toolkit --------------------

TEST(CountsMap, SparseAndCapFree) {
  api::SampleResult r;
  const std::uint64_t big = std::uint64_t{1} << 60;  // 61-qubit outcome
  r.shots = {{big, 0.0}, {3, 0.0}, {big, 0.0}, {3, 0.0}, {big, 0.0}};
  const auto m = r.counts_map();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(3), 2);
  EXPECT_EQ(m.at(big), 3);
}

TEST(CountsMap, DenseCountsBoundaryIntact) {
  api::SampleResult r;
  r.shots = {{0, 0.0}, {1, 0.0}, {1, 0.0}};
  // 24 qubits is the documented dense cap: still allowed...
  const auto dense = r.counts(24);
  EXPECT_EQ(dense.size(), std::size_t{1} << 24);
  EXPECT_EQ(dense[1], 2);
  // ...25 must refuse (and counts_map has no such cap).
  EXPECT_THROW(r.counts(25), Error);
  EXPECT_EQ(r.counts_map().at(1), 2);
}

// --- instance generators ----------------------------------------------------

TEST(BenchGenerators, FamilyNamesRoundTrip) {
  for (const Family f :
       {Family::Sk, Family::ErdosRenyi, Family::Regular, Family::Grid})
    EXPECT_EQ(family_from_name(family_name(f)), f);
  EXPECT_THROW(family_from_name("petersen"), Error);
}

TEST(BenchGenerators, DeterministicAcrossCalls) {
  for (const Family f :
       {Family::Sk, Family::ErdosRenyi, Family::Regular, Family::Grid}) {
    const api::WorkloadSpec a = make_instance(f, 6, 1, 77);
    const api::WorkloadSpec b = make_instance(f, 6, 1, 77);
    EXPECT_EQ(api::spec_fingerprint(a), api::spec_fingerprint(b))
        << family_name(f);
  }
}

TEST(BenchGenerators, IndexAndSeedChangeInstances) {
  const std::uint64_t base = api::spec_fingerprint(make_instance(Family::Sk, 6, 0, 77));
  EXPECT_NE(api::spec_fingerprint(make_instance(Family::Sk, 6, 1, 77)), base);
  EXPECT_NE(api::spec_fingerprint(make_instance(Family::Sk, 6, 0, 78)), base);
}

TEST(BenchGenerators, ShapePolicies) {
  Rng rng(5);
  // SK is complete with +-1 couplings: C(5,2) pairwise terms.
  const api::Workload sk =
      api::Workload::from_spec(sk_instance(5, SkCouplings::PlusMinusOne, rng));
  EXPECT_EQ(sk.num_qubits(), 5);
  EXPECT_EQ(sk.cost().interaction_graph().num_edges(), 10);
  // Grid on 6 = 2 x 3.
  const api::Workload grid = api::Workload::from_spec(grid_instance(2, 3, rng));
  EXPECT_EQ(grid.num_qubits(), 6);
  EXPECT_EQ(grid.cost().interaction_graph().num_edges(), 7);  // 2*2 + 1*3
}

TEST(BenchGenerators, LargeNInstancesAreWellFormed) {
  // The large-n wall (bench_scaling) and the corpus generator both reach
  // n = 24 now: every family must produce a valid, serializable,
  // fingerprint-stable spec there without touching any dense 2^n path.
  for (const Family f :
       {Family::Sk, Family::ErdosRenyi, Family::Regular, Family::Grid}) {
    for (const int n : {20, 24}) {
      const api::WorkloadSpec spec = make_instance(f, n, 0, 77);
      const api::Workload w = api::Workload::from_spec(spec);
      EXPECT_EQ(w.num_qubits(), n) << family_name(f);
      // Binary codec round trip preserves identity — the property the
      // shard layer and on-disk corpora rely on.
      const api::WorkloadSpec back =
          api::parse_spec(api::serialize_spec(spec));
      EXPECT_EQ(api::spec_fingerprint(back), api::spec_fingerprint(spec))
          << family_name(f) << " n=" << n;
      EXPECT_EQ(api::spec_fingerprint(spec),
                api::spec_fingerprint(make_instance(f, n, 0, 77)))
          << family_name(f) << " n=" << n;
    }
  }
}

TEST(Distance, ReferenceScoresExactlyAtLargeN) {
  // n = 20 sits under kExactReferenceMaxQubits: the dense reference runs.
  // Zero angles leave |+>^20 untouched, so every outcome has probability
  // exactly 2^-20 ~ 9.54e-7; a cutoff just above that must yield an
  // empty distribution (proving the full 2^20 sweep actually executed
  // and the amplitudes are exact), and one just below keeps full support.
  const api::WorkloadSpec spec = make_instance(Family::Grid, 20, 0, 77);
  const api::Workload w = api::Workload::from_spec(spec);
  const qaoa::Angles zero{{0.0}, {0.0}};
  EXPECT_TRUE(reference_distribution(w, zero, 1e-6).empty());
  const SparseDist full = reference_distribution(w, zero, 9e-7);
  EXPECT_EQ(full.size(), std::size_t{1} << 20);
}

TEST(Distance, ReferenceRefusesAboveExactCap) {
  // Above the 28-qubit dense cap the scorer degrades loudly: a clear
  // Error naming the bound, thrown before any allocation is attempted.
  const api::WorkloadSpec spec = make_instance(Family::Sk, 30, 0, 77);
  const api::Workload w = api::Workload::from_spec(spec);
  try {
    reference_distribution(w, qaoa::Angles::linear_ramp(1));
    FAIL() << "expected Error for n = 30";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(kExactReferenceMaxQubits)),
              std::string::npos)
        << msg;
  }
}

// --- corpus manifest codec --------------------------------------------------

Manifest sample_manifest() {
  Manifest m;
  m.name = "unit";
  ManifestEntry e;
  e.id = "sk-n4-i0";
  e.family = Family::Sk;
  e.num_qubits = 4;
  e.index = 0;
  e.angles = qaoa::Angles{{0.4}, {0.3}};
  e.shots = 512;
  e.spec_fingerprint = 0xDEADBEEFCAFEF00DULL;
  e.spec_file = "instances/sk-n4-i0.spec";
  m.entries.push_back(e);
  e.id = "grid-n6-i1";
  e.family = Family::Grid;
  e.num_qubits = 6;
  e.index = 1;
  e.spec_file = "instances/grid-n6-i1.spec";
  m.entries.push_back(e);
  return m;
}

TEST(Corpus, ManifestRoundTrip) {
  const Manifest m = sample_manifest();
  const Manifest back = decode_manifest(encode_manifest(m));
  EXPECT_EQ(back.name, m.name);
  ASSERT_EQ(back.entries.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.entries[i].id, m.entries[i].id);
    EXPECT_EQ(back.entries[i].family, m.entries[i].family);
    EXPECT_EQ(back.entries[i].num_qubits, m.entries[i].num_qubits);
    EXPECT_EQ(back.entries[i].index, m.entries[i].index);
    EXPECT_EQ(back.entries[i].angles.gamma, m.entries[i].angles.gamma);
    EXPECT_EQ(back.entries[i].angles.beta, m.entries[i].angles.beta);
    EXPECT_EQ(back.entries[i].shots, m.entries[i].shots);
    EXPECT_EQ(back.entries[i].spec_fingerprint,
              m.entries[i].spec_fingerprint);
    EXPECT_EQ(back.entries[i].spec_file, m.entries[i].spec_file);
  }
}

TEST(Corpus, ManifestRejectsMalformedFrames) {
  std::vector<std::byte> frame = encode_manifest(sample_manifest());

  // Truncation anywhere is a hard error.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                frame.size() / 2, frame.size() - 1}) {
    std::vector<std::byte> t(frame.begin(),
                             frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_manifest(t), Error) << "cut=" << cut;
  }
  // Wrong magic (byte 0 of the little-endian u32).
  {
    auto bad = frame;
    bad[0] = static_cast<std::byte>(0x00);
    EXPECT_THROW(decode_manifest(bad), Error);
  }
  // Unknown version (byte 4).
  {
    auto bad = frame;
    bad[4] = static_cast<std::byte>(0x7F);
    EXPECT_THROW(decode_manifest(bad), Error);
  }
  // Trailing bytes after a well-formed manifest.
  {
    auto bad = frame;
    bad.push_back(static_cast<std::byte>(0));
    EXPECT_THROW(decode_manifest(bad), Error);
  }
  // Duplicate ids.
  {
    Manifest m = sample_manifest();
    m.entries[1].id = m.entries[0].id;
    EXPECT_THROW(decode_manifest(encode_manifest(m)), Error);
  }
}

TEST(Corpus, WriteReadRoundTripAndTamperDetection) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "mbq_bench_corpus_test";
  fs::remove_all(dir);

  Corpus corpus;
  corpus.name = "unit";
  for (const std::uint64_t i : {0, 1}) {
    Instance inst;
    inst.id = "sk-n4-i" + std::to_string(i);
    inst.family = Family::Sk;
    inst.num_qubits = 4;
    inst.index = i;
    inst.angles = qaoa::Angles::linear_ramp(1);
    inst.shots = 128;
    inst.spec = make_instance(Family::Sk, 4, i, 7);
    corpus.instances.push_back(std::move(inst));
  }
  write_corpus(dir.string(), corpus);

  const Corpus back = read_corpus(dir.string());
  EXPECT_EQ(back.name, corpus.name);
  ASSERT_EQ(back.instances.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.instances[i].id, corpus.instances[i].id);
    EXPECT_EQ(api::spec_fingerprint(back.instances[i].spec),
              api::spec_fingerprint(corpus.instances[i].spec));
  }

  // Tamper with one spec frame on disk: the manifest fingerprint check
  // must refuse to score the corrupted workload.
  const fs::path spec0 = dir / "instances" / "sk-n4-i0.spec";
  ASSERT_TRUE(fs::exists(spec0));
  {
    std::fstream f(spec0, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x5a');
  }
  EXPECT_THROW(read_corpus(dir.string()), Error);
  fs::remove_all(dir);
}

// --- report JSON codec ------------------------------------------------------

Report sample_report(bool timing) {
  Report r;
  r.corpus = "unit";
  r.backend = "router";
  r.seed = 0xFFFFFFFFFFFFFFFFULL;  // would lose precision as a JSON number
  r.noise = 0.25;
  r.timing = timing;
  if (timing) {
    r.processes = 2;
    r.endpoint = "unix:/tmp/mbqd.sock";
  }
  InstanceResult row;
  row.id = "sk-n4-i0";
  row.family = Family::Sk;
  row.num_qubits = 4;
  row.shots = 512;
  row.spec_fingerprint = 0x0123456789ABCDEFULL;
  row.outcomes_fnv = 0xFEDCBA9876543210ULL;
  row.distinct_outcomes = 11;
  row.hellinger_distance = 0.1;
  row.hellinger_fidelity = 1.0 / 3.0;  // full-mantissa double
  row.tvd = 0.05;
  row.chi_squared = std::numeric_limits<real>::infinity();
  row.mean_cost = 1.625;
  row.best_cost = 3.0;
  row.approximation_ratio = 1.625 / 3.0;
  if (timing) {
    row.elapsed_ms = 12.5;
    row.shots_per_sec = 40960.0;
  }
  r.instances.push_back(row);
  return r;
}

TEST(ReportJson, RoundTripBitExact) {
  for (const bool timing : {false, true}) {
    const Report r = sample_report(timing);
    const std::string json = to_json(r);
    const Report back = report_from_json(json);
    // Re-serialization is the strongest equality: every field (including
    // the 17-digit doubles, hex u64s, and the "inf" chi-squared) must
    // survive the text round trip bit-exactly.
    EXPECT_EQ(to_json(back), json) << "timing=" << timing;
    EXPECT_EQ(back.seed, r.seed);
    ASSERT_EQ(back.instances.size(), 1u);
    EXPECT_EQ(back.instances[0].outcomes_fnv, r.instances[0].outcomes_fnv);
    EXPECT_TRUE(std::isinf(back.instances[0].chi_squared));
    EXPECT_EQ(back.instances[0].hellinger_fidelity,
              r.instances[0].hellinger_fidelity);
  }
}

TEST(ReportJson, DeterministicModeOmitsContextFields) {
  const std::string json = to_json(sample_report(false));
  EXPECT_EQ(json.find("elapsed_ms"), std::string::npos);
  EXPECT_EQ(json.find("shots_per_sec"), std::string::npos);
  EXPECT_EQ(json.find("processes"), std::string::npos);
  EXPECT_EQ(json.find("endpoint"), std::string::npos);
}

TEST(ReportJson, RejectsMalformed) {
  const std::string json = to_json(sample_report(true));
  EXPECT_THROW(report_from_json(""), Error);
  EXPECT_THROW(report_from_json("{"), Error);
  EXPECT_THROW(report_from_json(json + "x"), Error);  // trailing garbage
  EXPECT_THROW(report_from_json("{\"mbq_bench_report\": 2}"), Error);
  EXPECT_THROW(report_from_json(json.substr(0, json.size() / 2)), Error);
}

TEST(ReportJson, Summarize) {
  Report r = sample_report(false);
  InstanceResult second = r.instances[0];
  second.id = "sk-n4-i1";
  second.hellinger_fidelity = 0.9;
  second.approximation_ratio = 0.8;
  r.instances.push_back(second);
  const auto rows = summarize(r);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].family, Family::Sk);
  EXPECT_EQ(rows[0].instances, 2);
  EXPECT_NEAR(rows[0].mean_fidelity, (1.0 / 3.0 + 0.9) / 2.0, kTol);
  EXPECT_NEAR(rows[0].min_fidelity, 1.0 / 3.0, kTol);
}

// --- replay harness: determinism + noise acceptance -------------------------

Corpus tiny_corpus() {
  Corpus corpus;
  corpus.name = "tiny";
  int k = 0;
  for (const Family f : {Family::Sk, Family::ErdosRenyi}) {
    Instance inst;
    inst.id = family_name(f) + "-n4-i0";
    inst.family = f;
    inst.num_qubits = 4;
    inst.index = 0;
    inst.angles = qaoa::Angles::linear_ramp(1);
    inst.shots = 256;
    inst.spec = make_instance(f, 4, 0, 7);
    corpus.instances.push_back(std::move(inst));
    ++k;
  }
  return corpus;
}

TEST(Harness, ProcessCountInvariance) {
  const Corpus corpus = tiny_corpus();
  RunOptions opts;
  opts.backend = "router";
  opts.timing = false;  // deterministic document
  opts.processes = 1;
  const std::string one = to_json(run_corpus(corpus, opts));
  opts.processes = 2;  // mbq_worker resolves beside the test binary
  const std::string two = to_json(run_corpus(corpus, opts));
  EXPECT_EQ(one, two);
}

TEST(Harness, ScoresAreSane) {
  const Corpus corpus = tiny_corpus();
  RunOptions opts;
  opts.backend = "statevector";
  opts.timing = false;
  const Report r = run_corpus(corpus, opts);
  ASSERT_EQ(r.instances.size(), 2u);
  for (const InstanceResult& row : r.instances) {
    // Noiseless sampling from the exact distribution: high fidelity,
    // scores within their ranges, digest and fingerprint populated.
    EXPECT_GT(row.hellinger_fidelity, 0.9) << row.id;
    EXPECT_GE(row.tvd, 0.0);
    EXPECT_LE(row.tvd, 1.0);
    EXPECT_GE(row.hellinger_distance, 0.0);
    EXPECT_LE(row.hellinger_distance, 1.0);
    EXPECT_NE(row.outcomes_fnv, 0u);
    EXPECT_NE(row.spec_fingerprint, 0u);
    EXPECT_GT(row.distinct_outcomes, 0);
    // Deterministic mode leaves wall-clock fields unrecorded.
    EXPECT_LT(row.elapsed_ms, 0.0);
  }
}

TEST(Harness, NoiseDegradesFidelityMonotonically) {
  // The acceptance sweep: one SK instance on the mbqc backend at
  // increasing entangler noise.  Fidelity must fall from near-ideal and
  // stay non-increasing within shot-noise slack.
  Corpus corpus;
  corpus.name = "sweep";
  Instance inst;
  inst.id = "sk-n4-i0";
  inst.family = Family::Sk;
  inst.num_qubits = 4;
  inst.index = 0;
  inst.angles = qaoa::Angles::linear_ramp(1);
  inst.shots = 3000;
  inst.spec = make_instance(Family::Sk, 4, 0, 7);
  corpus.instances.push_back(std::move(inst));

  RunOptions opts;
  opts.backend = "mbqc";
  opts.timing = false;

  std::vector<real> fidelity;
  for (const real noise : {0.0, 0.15, 0.4, 0.7}) {
    opts.noise = noise;
    const Report r = run_corpus(corpus, opts);
    ASSERT_EQ(r.instances.size(), 1u);
    fidelity.push_back(r.instances[0].hellinger_fidelity);
  }
  EXPECT_GT(fidelity.front(), 0.95);
  EXPECT_LT(fidelity.back(), fidelity.front() - 0.05);
  constexpr real kSlack = 0.03;  // shot noise at 3000 shots
  for (std::size_t i = 1; i < fidelity.size(); ++i)
    EXPECT_LE(fidelity[i], fidelity[i - 1] + kSlack)
        << "noise step " << i << ": " << fidelity[i - 1] << " -> "
        << fidelity[i];
}

}  // namespace
}  // namespace mbq::bench
