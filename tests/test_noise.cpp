// Noise-injection semantics of the pattern runner.

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::mbqc {
namespace {

TEST(Noise, ZeroNoiseIsNoiseless) {
  Rng rng(1);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(3));
  const auto cp = core::compile_qaoa(cost, qaoa::Angles::random(1, rng));
  const auto ideal = qaoa::qaoa_state(cost, qaoa::Angles::random(1, rng));
  RunOptions opt;
  opt.entangler_noise = 0.0;
  Rng run_rng(2);
  const auto r = run(cp.pattern, run_rng, opt);
  EXPECT_NEAR(r.output_state.size(), 8u, 0);
}

TEST(Noise, FullDepolarizationDestroysFidelity) {
  Rng rng(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(3));
  const qaoa::Angles a = qaoa::Angles::random(1, rng);
  const auto cp = core::compile_qaoa(cost, a);
  const auto ideal = qaoa::qaoa_state(cost, a).amplitudes();
  RunOptions opt;
  opt.entangler_noise = 1.0;
  Rng run_rng(4);
  real mean = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t)
    mean += fidelity(run(cp.pattern, run_rng, opt).output_state, ideal);
  mean /= trials;
  EXPECT_LT(mean, 0.9);
}

TEST(Noise, FidelityDecreasesWithNoise) {
  Rng rng(5);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(4));
  const qaoa::Angles a = qaoa::Angles::random(1, rng);
  const auto cp = core::compile_qaoa(cost, a);
  const auto ideal = qaoa::qaoa_state(cost, a).amplitudes();
  auto mean_fid = [&](real noise) {
    RunOptions opt;
    opt.entangler_noise = noise;
    Rng run_rng(6);
    real acc = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t)
      acc += fidelity(run(cp.pattern, run_rng, opt).output_state, ideal);
    return acc / trials;
  };
  const real f0 = mean_fid(0.0);
  const real f1 = mean_fid(0.05);
  const real f2 = mean_fid(0.3);
  EXPECT_NEAR(f0, 1.0, 1e-9);
  EXPECT_GT(f0, f1);
  EXPECT_GT(f1, f2);
}

TEST(Noise, IncompatibleWithForcedBranches) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.set_outputs({1});
  RunOptions opt;
  opt.entangler_noise = 0.1;
  opt.forced = {0};
  Rng rng(7);
  EXPECT_THROW(run(p, rng, opt), Error);
  opt.forced.clear();
  opt.entangler_noise = 1.5;
  EXPECT_THROW(run(p, rng, opt), Error);
}

}  // namespace
}  // namespace mbq::mbqc
