// MIS in the MBQC paradigm (Sec. IV): the compiled pattern reproduces the
// constraint-preserving ansatz and never leaves the feasible subspace.

#include <gtest/gtest.h>

#include <bit>

#include "mbq/common/rng.h"
#include "mbq/core/mis.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/mixers.h"

namespace mbq::core {
namespace {

using qaoa::Angles;

TEST(MisMbqc, PatternMatchesCircuitStatevector) {
  Rng rng(1);
  for (const Graph& g : {path_graph(3), cycle_graph(4)}) {
    const int n = g.num_vertices();
    const Angles a = Angles::random(1, rng);
    // Reference: the gate-model ansatz from |0...0>.
    Statevector sv(n);
    qaoa::mis_qaoa_circuit(g, a).apply_to(sv);
    // MBQC pattern.
    const CompiledPattern cp = compile_mis_qaoa(g, a);
    Rng run_rng(2);
    for (int i = 0; i < 3; ++i) {
      const auto r = mbqc::run(cp.pattern, run_rng);
      ASSERT_NEAR(fidelity(r.output_state, sv.amplitudes()), 1.0, 1e-9)
          << g.str();
    }
  }
}

TEST(MisMbqc, OutputsStayFeasible) {
  Rng rng(3);
  const Graph g = cycle_graph(5);
  const Angles a = Angles::random(2, rng);
  const CompiledPattern cp = compile_mis_qaoa(g, a);
  Rng run_rng(4);
  const auto r = mbqc::run(cp.pattern, run_rng);
  // All probability mass on independent sets.
  real infeasible = 0.0;
  for (std::uint64_t x = 0; x < r.output_state.size(); ++x)
    if (!qaoa::is_independent_set(g, x))
      infeasible += std::norm(r.output_state[x]);
  EXPECT_NEAR(infeasible, 0.0, 1e-10);
}

TEST(MisMbqc, GadgetCountsExponentialInDegree) {
  EXPECT_EQ(mis_partial_mixer_gadget_count(star_graph(5), 0), 16);  // 2^4
  EXPECT_EQ(mis_partial_mixer_gadget_count(star_graph(5), 1), 2);   // 2^1
  EXPECT_EQ(mis_mixer_layer_gadget_count(cycle_graph(4)), 4 * 4);   // 2^2 each
}

TEST(MisMbqc, FindsMaximumIndependentSetOnSmallGraph) {
  // P3: MIS = {0, 2}, size 2.  Optimized shallow ansatz + sampling should
  // find it.
  const Graph g = path_graph(3);
  Rng rng(5);
  const Angles a({0.7}, {0.9});
  const CompiledPattern cp = compile_mis_qaoa(g, a);
  Rng run_rng(6);
  std::uint64_t best_x = 0;
  int best_size = -1;
  for (int shot = 0; shot < 32; ++shot) {
    const auto r = mbqc::run(cp.pattern, run_rng);
    real u = run_rng.uniform();
    std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < r.output_state.size(); ++i) {
      u -= std::norm(r.output_state[i]);
      if (u <= 0.0) {
        x = i;
        break;
      }
    }
    ASSERT_TRUE(qaoa::is_independent_set(g, x));
    const int size = std::popcount(x);
    if (size > best_size) {
      best_size = size;
      best_x = x;
    }
  }
  EXPECT_EQ(best_size, 2);
  EXPECT_TRUE(best_x == 0b101);
}

TEST(MisMbqc, GreedyBaselineOnPetersen) {
  // The Petersen graph has independence number 4; greedy achieves it.
  const Graph g = petersen_graph();
  const std::uint64_t set = opt::greedy_mis(g);
  EXPECT_TRUE(qaoa::is_independent_set(g, set));
  EXPECT_EQ(std::popcount(set), 4);
}

}  // namespace
}  // namespace mbq::core
