// Tests for graph-like simplification and open-graph extraction: the
// bridge between ZX diagrams and MBQC resource states (Sec. II-B).

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/tensor.h"
#include "mbq/zx/builder.h"
#include "mbq/zx/simplify.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

real diff_up_to_scalar(const Diagram& a, const Diagram& b) {
  return Tensor::proportionality_distance(evaluate(a), evaluate(b));
}

TEST(Simplify, GraphStateDiagramIsAlreadyGraphLike) {
  const Diagram d = graph_state_diagram(cycle_graph(4));
  EXPECT_TRUE(is_graph_like(d));
}

TEST(Simplify, CzCircuitBecomesGraphLike) {
  Circuit c(3);
  c.h(0).cz(0, 1).cz(1, 2).rz(2, 0.4);
  Diagram d = from_circuit(c);
  const Diagram before = d;
  const SimplifyStats stats = to_graph_like(d);
  EXPECT_GT(stats.total(), 0);
  EXPECT_TRUE(is_graph_like(d)) << d.str();
  EXPECT_NEAR(diff_up_to_scalar(before, d), 0.0, 1e-8);
}

TEST(Simplify, RandomCircuitsPreserveSemantics) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(2));
    Circuit c(n);
    for (int step = 0; step < 12; ++step) {
      const int q = static_cast<int>(rng.uniform_index(n));
      int r = static_cast<int>(rng.uniform_index(n));
      if (r == q) r = (r + 1) % n;
      switch (rng.uniform_index(6)) {
        case 0: c.h(q); break;
        case 1: c.rz(q, rng.angle()); break;
        case 2: c.rx(q, rng.angle()); break;
        case 3: c.cz(q, r); break;
        case 4: c.cx(q, r); break;
        case 5: c.x(q); break;
      }
    }
    Diagram d = from_circuit(c);
    const Diagram before = d;
    to_graph_like(d);
    EXPECT_TRUE(is_graph_like(d)) << "trial " << trial << "\n" << d.str();
    EXPECT_NEAR(diff_up_to_scalar(before, d), 0.0, 1e-8) << "trial " << trial;
  }
}

TEST(Simplify, QaoaLayerOnPlusBecomesGraphLike) {
  // One QAOA layer on a triangle: phase gadgets + mixer.
  Circuit c(3);
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {0, 2}})
    c.phase_gadget({u, v}, 0.8);
  for (int q = 0; q < 3; ++q) c.rx(q, 0.6);
  Diagram d = from_circuit_on_plus(c);
  const Diagram before = d;
  to_graph_like(d);
  EXPECT_TRUE(is_graph_like(d));
  EXPECT_NEAR(diff_up_to_scalar(before, d), 0.0, 1e-8);
}

TEST(Simplify, ExtractOpenGraphOfGraphState) {
  const Graph g = petersen_graph();
  const Diagram d = graph_state_diagram(g);
  const ExtractedOpenGraph og = extract_open_graph(d);
  EXPECT_EQ(og.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(og.graph.num_edges(), g.num_edges());
  EXPECT_EQ(og.output_vertex.size(), 10u);
  // Spider degrees mirror graph degrees.
  for (int v = 0; v < og.graph.num_vertices(); ++v)
    EXPECT_EQ(og.graph.degree(v), 3);
}

TEST(Simplify, ExtractRequiresGraphLike) {
  Circuit c(2);
  c.cx(0, 1);
  Diagram d = from_circuit(c);  // contains an X spider
  EXPECT_FALSE(is_graph_like(d));
  EXPECT_THROW(extract_open_graph(d), Error);
}

TEST(Simplify, ExtractionReportsPhases) {
  Circuit c(2);
  c.rz(0, 0.5).cz(0, 1).rz(1, -0.25);
  Diagram d = from_circuit_on_plus(c);
  to_graph_like(d);
  const ExtractedOpenGraph og = extract_open_graph(d);
  // Two spiders with the rz phases fused in.
  ASSERT_EQ(og.vertex_phase.size(), 2u);
  std::vector<real> phases = og.vertex_phase;
  std::sort(phases.begin(), phases.end());
  EXPECT_NEAR(phases[0], -0.25, 1e-9);
  EXPECT_NEAR(phases[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace mbq::zx
