// The paper's main result (Sec. III): the compiled measurement patterns
// reproduce gate-model QAOA exactly — for arbitrary depth p, arbitrary
// angles, and arbitrary QUBO (and higher-order) cost functions — while
// matching the resource formulas of Sec. III-A and admitting gflow
// (determinism).

#include <gtest/gtest.h>

#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/core/resources.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/scheduler.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::core {
namespace {

using qaoa::Angles;
using qaoa::CostHamiltonian;

/// Reference QAOA state via the fast gate-model simulator.
std::vector<cplx> reference_state(const CostHamiltonian& c, const Angles& a) {
  return qaoa_state(c, a).amplitudes();
}

void expect_equivalent_sampled(const CostHamiltonian& c, const Angles& a,
                               const CompileOptions& opt, int runs = 6) {
  const CompiledPattern cp = compile_qaoa(c, a, opt);
  const auto expect = reference_state(c, a);
  Rng rng(12345);
  for (int i = 0; i < runs; ++i) {
    const mbqc::RunResult r = mbqc::run(cp.pattern, rng);
    ASSERT_NEAR(fidelity(r.output_state, expect), 1.0, 1e-9)
        << "run " << i << " p=" << a.p();
  }
}

TEST(Compiler, SingleEdgeAllBranchesExhaustive) {
  // Smallest instance: MaxCut on one edge, p=1 — every branch checked.
  Graph g(2);
  g.add_edge(0, 1);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a({0.67}, {0.31});
  const CompiledPattern cp = compile_qaoa(c, a);
  EXPECT_EQ(cp.pattern.num_measurements(), 5);  // 1 gadget + 4 mixer
  const auto expect = reference_state(c, a);
  for (const auto& b : mbqc::run_all_branches(cp.pattern))
    ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9);
}

TEST(Compiler, SingleEdgeDepthTwoExhaustive) {
  // p = 2 on one edge: 10 measurements, all 1024 branches enumerated.
  // This is the strongest determinism statement we can check directly:
  // every possible sequence of measurement outcomes, corrected, yields
  // the same state.
  Graph g(2);
  g.add_edge(0, 1);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a({0.43, -0.91}, {0.77, 0.28});
  const CompiledPattern cp = compile_qaoa(c, a);
  ASSERT_EQ(cp.pattern.num_measurements(), 10);
  const auto expect = reference_state(c, a);
  for (const auto& b : mbqc::run_all_branches(cp.pattern, 10))
    ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9);
}

TEST(Compiler, LinearTermExhaustiveBranches) {
  // Single vertex with linear + single edge (the full Eq. 12 anatomy),
  // p = 1: edge gadget + linear gadget + two mixer chains = 6
  // measurements, 64 branches.
  CostHamiltonian c(2, 0.0);
  c.add_term({0, 1}, -0.5);
  c.add_term({0}, 0.4);
  const Angles a({0.9}, {-0.6});
  const CompiledPattern cp = compile_qaoa(c, a);
  ASSERT_EQ(cp.pattern.num_measurements(), 6);
  const auto expect = reference_state(c, a);
  for (const auto& b : mbqc::run_all_branches(cp.pattern, 6))
    ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9);
}

TEST(Compiler, MaxCutFamiliesAndDepths) {
  Rng rng(7);
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(3));
  graphs.push_back(cycle_graph(4));
  graphs.push_back(complete_graph(3));  // triangles exercise P_u parities
  graphs.push_back(star_graph(4));
  for (const Graph& g : graphs) {
    const CostHamiltonian c = CostHamiltonian::maxcut(g);
    for (int p : {1, 2, 3}) {
      const Angles a = Angles::random(p, rng);
      expect_equivalent_sampled(c, a, {}, 3);
    }
  }
}

TEST(Compiler, GeneralQuboWithLinearTermsBothStyles) {
  Rng rng(8);
  const std::vector<real> lin{0.7, -1.1, 0.4};
  const std::vector<std::pair<Edge, real>> quad{{{0, 1}, 1.0},
                                                {{1, 2}, -0.8},
                                                {{0, 2}, 0.5}};
  const CostHamiltonian c = CostHamiltonian::qubo(3, lin, quad, 2.0);
  EXPECT_TRUE(c.has_linear_terms());
  for (int p : {1, 2}) {
    const Angles a = Angles::random(p, rng);
    CompileOptions gadget;
    gadget.linear_style = LinearTermStyle::Gadget;
    expect_equivalent_sampled(c, a, gadget, 3);
    CompileOptions fused;
    fused.linear_style = LinearTermStyle::FusedIntoMixer;
    expect_equivalent_sampled(c, a, fused, 3);
  }
}

TEST(Compiler, HigherOrderPubo) {
  // 3-local term: the "extends to higher-order cost functions" claim.
  CostHamiltonian c(3, 0.0);
  c.add_term({0, 1, 2}, 0.9);
  c.add_term({0, 1}, -0.4);
  c.add_term({2}, 0.6);
  Rng rng(9);
  const Angles a = Angles::random(2, rng);
  expect_equivalent_sampled(c, a, {}, 4);
}

TEST(Compiler, ResourceCountsMatchPaperFormulasExactly) {
  // Pure-quadratic QUBO: N_Q = p(|E| + 2|V|), N_E = p(2|E| + 2|V|).
  Rng rng(10);
  for (const Graph& g : {cycle_graph(5), complete_graph(4), path_graph(6)}) {
    const CostHamiltonian c = CostHamiltonian::maxcut(g);
    for (int p : {1, 2, 3}) {
      const Angles a = Angles::random(p, rng);
      const CompiledPattern cp = compile_qaoa(c, a);
      const ResourceEstimate r = measure_resources(c, p, cp);
      const int V = g.num_vertices(), E = g.num_edges();
      EXPECT_EQ(r.paper_ancilla_bound, p * (E + 2 * V));
      EXPECT_EQ(r.paper_entangler_bound, p * (2 * E + 2 * V));
      EXPECT_EQ(r.ancillas, r.paper_ancilla_bound);      // bound is tight
      EXPECT_EQ(r.entanglers, r.paper_entangler_bound);  // bound is tight
      EXPECT_EQ(r.measurements, r.paper_ancilla_bound);  // all but outputs
      EXPECT_EQ(r.total_wires, V + r.ancillas);
    }
  }
}

TEST(Compiler, LinearTermsAddOneQubitOneEntanglerPerVertex) {
  // Sec. III-A: "at most one additional qubit and entangling gate for
  // each vertex per QAOA layer" in the general QUBO case.
  const Graph g = cycle_graph(4);
  const int V = 4, E = 4, p = 2;
  CostHamiltonian c = CostHamiltonian::maxcut(g);
  for (int q = 0; q < V; ++q) c.add_term({q}, 0.3);
  Rng rng(11);
  const Angles a = Angles::random(p, rng);
  const CompiledPattern cp = compile_qaoa(c, a);
  const ResourceEstimate r = measure_resources(c, p, cp);
  EXPECT_EQ(r.ancillas, p * (E + 2 * V) + p * V);
  EXPECT_EQ(r.entanglers, p * (2 * E + 2 * V) + p * V);
  // The fused variant removes that overhead entirely.
  CompileOptions fused;
  fused.linear_style = LinearTermStyle::FusedIntoMixer;
  const CompiledPattern cp2 = compile_qaoa(c, a, fused);
  EXPECT_EQ(cp2.pattern.num_prepared() - V, p * (E + 2 * V));
}

TEST(Compiler, CompiledPatternsHaveGFlow) {
  Rng rng(12);
  for (const Graph& g : {path_graph(3), complete_graph(3)}) {
    const CostHamiltonian c = CostHamiltonian::maxcut(g);
    for (int p : {1, 2}) {
      const CompiledPattern cp = compile_qaoa(c, Angles::random(p, rng));
      const mbqc::OpenGraph og = mbqc::open_graph_from_pattern(cp.pattern);
      const auto gf = mbqc::find_gflow(og);
      ASSERT_TRUE(gf.has_value()) << g.str() << " p=" << p;
      EXPECT_TRUE(mbqc::verify_gflow(og, *gf));
    }
  }
}

TEST(Compiler, StandardizedAndScheduledStayEquivalent) {
  Rng rng(13);
  const Graph g = cycle_graph(3);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const Angles a = Angles::random(2, rng);
  const CompiledPattern cp = compile_qaoa(c, a);
  const auto expect = reference_state(c, a);

  const mbqc::Pattern std_form = mbqc::standardize(cp.pattern);
  EXPECT_TRUE(mbqc::is_standard(std_form));
  const mbqc::Schedule sched = mbqc::schedule_for_reuse(cp.pattern);
  // Reuse keeps the live register near the problem size.
  EXPECT_LE(sched.peak_live, g.num_vertices() + 2);

  Rng run_rng(14);
  for (int i = 0; i < 3; ++i) {
    const auto r1 = mbqc::run(std_form, run_rng);
    ASSERT_NEAR(fidelity(r1.output_state, expect), 1.0, 1e-9);
    const auto r2 = mbqc::run(sched.pattern, run_rng);
    ASSERT_NEAR(fidelity(r2.output_state, expect), 1.0, 1e-9);
  }
}

TEST(Compiler, TailoredCircuitTranslation) {
  // compile_circuit_tailored on a mixed circuit acting on |+...+>.
  Rng rng(15);
  Circuit c(3);
  c.rz(0, 0.4).cz(0, 1).h(2).phase_gadget({0, 1, 2}, 0.7).rx(1, -0.5).t(0);
  const CompiledPattern cp = compile_circuit_tailored(c);
  Statevector sv = Statevector::all_plus(3);
  c.apply_to(sv);
  Rng run_rng(16);
  for (int i = 0; i < 4; ++i) {
    const auto r = mbqc::run(cp.pattern, run_rng);
    ASSERT_NEAR(fidelity(r.output_state, sv.amplitudes()), 1.0, 1e-9);
  }
}

TEST(Compiler, MeasurementOrderMatchesPaper) {
  // Sec. III fixes the deterministic order per layer: the edge-ancilla
  // (YZ) measurements come first, then the per-vertex mixer chains
  // (XY).  Verify the compiled command stream has that structure, layer
  // by layer.
  const Graph g = cycle_graph(4);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  const int p = 3;
  Rng rng(20);
  const CompiledPattern cp = compile_qaoa(c, Angles::random(p, rng));
  // Collect the plane sequence of measurements.
  std::vector<MeasBasis> planes;
  for (const auto& cmd : cp.pattern.commands())
    if (const auto* m = std::get_if<mbqc::CmdMeasure>(&cmd))
      planes.push_back(m->plane);
  const int per_layer = g.num_edges() + 2 * g.num_vertices();
  ASSERT_EQ(static_cast<int>(planes.size()), p * per_layer);
  for (int k = 0; k < p; ++k) {
    for (int i = 0; i < g.num_edges(); ++i)
      EXPECT_EQ(planes[k * per_layer + i], MeasBasis::YZ)
          << "layer " << k << " gadget " << i;
    for (int i = g.num_edges(); i < per_layer; ++i)
      EXPECT_EQ(planes[k * per_layer + i], MeasBasis::XY)
          << "layer " << k << " mixer step " << i;
  }
}

TEST(Compiler, AdaptiveDomainsReproducePaperParities) {
  // The mixer's second J measurement must carry the (-1)^{m_u} beta
  // adaptation: its s-domain is exactly the outcome of the first J
  // measurement of the same vertex chain (paper Eq. (9)); and the edge
  // gadget of layer 2 must depend on the X-frame parities of layer 1
  // (the P_u mechanism).
  Graph g(2);
  g.add_edge(0, 1);
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  Rng rng(21);
  const CompiledPattern cp = compile_qaoa(c, Angles::random(2, rng));
  std::vector<const mbqc::CmdMeasure*> ms;
  for (const auto& cmd : cp.pattern.commands())
    if (const auto* m = std::get_if<mbqc::CmdMeasure>(&cmd))
      ms.push_back(m);
  // Layer 1: [gadget, u-wire, u-anc, v-wire, v-anc] = signals 0..4.
  ASSERT_EQ(ms.size(), 10u);
  // First wire measurement (J(0) step) has empty domains on layer 1.
  EXPECT_TRUE(ms[1]->s_domain.empty());
  // Its ancilla partner adapts by the wire outcome: s-domain = {s1}.
  EXPECT_EQ(ms[2]->s_domain, SignalExpr(ms[1]->outcome));
  // Layer 2 gadget sign-adapts by BOTH vertices' X frames (the mixer
  // outputs' frames are the layer-1 ancilla outcomes).
  EXPECT_EQ(ms[5]->plane, MeasBasis::YZ);
  SignalExpr expected;
  expected ^= SignalExpr(ms[2]->outcome);
  expected ^= SignalExpr(ms[4]->outcome);
  EXPECT_EQ(ms[5]->s_domain, expected);
}

TEST(Compiler, DegreeBoundedUnfusing) {
  // Sec. III: the resource graph "can be compiled in a straight-forward
  // way into [hardware] graphs via un-fusing nodes".  With a degree
  // bound, hub vertices are teleported through identity J-chains; the
  // resource graph respects the bound and the semantics are unchanged.
  const Graph g = star_graph(6);  // hub degree 5
  const CostHamiltonian c = CostHamiltonian::maxcut(g);
  Rng rng(30);
  const Angles a = Angles::random(2, rng);

  const CompiledPattern unbounded = compile_qaoa(c, a);
  const auto [gu, wu] = unbounded.pattern.entanglement_graph();
  EXPECT_GT(gu.max_degree(), 4);  // the hub exceeds small bounds

  CompileOptions opt;
  opt.max_wire_degree = 4;
  const CompiledPattern bounded = compile_qaoa(c, a, opt);
  const auto [gb, wb] = bounded.pattern.entanglement_graph();
  EXPECT_LE(gb.max_degree(), 4);
  // Un-fusing costs ancillas but preserves the computation exactly.
  EXPECT_GT(bounded.pattern.num_prepared(), unbounded.pattern.num_prepared());
  const auto expect = reference_state(c, a);
  Rng run_rng(31);
  for (int i = 0; i < 3; ++i) {
    const auto r = mbqc::run(bounded.pattern, run_rng);
    ASSERT_NEAR(fidelity(r.output_state, expect), 1.0, 1e-9);
  }
  // Determinism survives the transformation.
  const auto og = mbqc::open_graph_from_pattern(bounded.pattern);
  const auto gf = mbqc::find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(mbqc::verify_gflow(og, *gf));
}

TEST(Compiler, DegreeBoundValidation) {
  const CostHamiltonian c = CostHamiltonian::maxcut(cycle_graph(3));
  Rng rng(32);
  CompileOptions opt;
  opt.max_wire_degree = 2;  // < 3: cannot even host gadget + teleports
  EXPECT_THROW(compile_qaoa(c, Angles::random(1, rng), opt), Error);
}

TEST(Compiler, TailoredBeatsGenericOnDiagonalGates) {
  // Diagonal gates cost zero teleportations in the tailored translation.
  Circuit c(2);
  c.rz(0, 0.3).rz(1, 0.8).cz(0, 1).s(0).t(1);
  const CompiledPattern tailored = compile_circuit_tailored(c);
  // 2 initial wires + 4 gadget ancillas, no J ancillas.
  EXPECT_EQ(tailored.pattern.num_prepared(), 2 + 4);
}

}  // namespace
}  // namespace mbq::core
