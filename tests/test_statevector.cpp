// Unit tests for the fixed-width statevector simulator, cross-checked
// against dense unitaries.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/rng.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/sim/pauli.h"
#include "mbq/sim/statevector.h"

namespace mbq {
namespace {

Statevector random_state(int n, Rng& rng) {
  std::vector<cplx> a(std::size_t{1} << n);
  for (auto& x : a) x = cplx{rng.normal(), rng.normal()};
  Statevector sv(n, std::move(a));
  sv.normalize();
  return sv;
}

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(Statevector, AllPlus) {
  const Statevector sv = Statevector::all_plus(4);
  for (const auto& a : sv.amplitudes())
    EXPECT_NEAR(std::abs(a - cplx{0.25, 0}), 0.0, kTol);
}

TEST(Statevector, SingleQubitGateMatchesDense) {
  Rng rng(1);
  for (int n : {1, 3, 5}) {
    for (int q = 0; q < n; ++q) {
      Statevector sv = random_state(n, rng);
      const auto before = sv.amplitudes();
      const Matrix u = gates::rz(0.7) * gates::h() * gates::t();
      sv.apply_1q(u, q);
      const auto expect = gates::embed1(u, q, n) * before;
      EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
    }
  }
}

TEST(Statevector, HXZRzRx) {
  Rng rng(2);
  Statevector sv = random_state(4, rng);
  Statevector ref = sv;
  sv.apply_h(2);
  ref.apply_1q(gates::h(), 2);
  sv.apply_x(0);
  ref.apply_1q(gates::x(), 0);
  sv.apply_z(3);
  ref.apply_1q(gates::z(), 3);
  sv.apply_rz(1, 0.31);
  ref.apply_1q(gates::rz(0.31), 1);
  sv.apply_rx(1, -1.21);
  ref.apply_1q(gates::rx(-1.21), 1);
  EXPECT_NEAR(fidelity(sv.amplitudes(), ref.amplitudes()), 1.0, kTol);
}

TEST(Statevector, CzMatchesDense) {
  Rng rng(3);
  Statevector sv = random_state(3, rng);
  const auto before = sv.amplitudes();
  sv.apply_cz(0, 2);
  const auto expect = gates::embed2(gates::cz(), 0, 2, 3) * before;
  EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
}

TEST(Statevector, CxMatchesDense) {
  Rng rng(4);
  Statevector sv = random_state(3, rng);
  const auto before = sv.amplitudes();
  sv.apply_cx(1, 0);
  const auto expect = gates::embed2(gates::cx(), 1, 0, 3) * before;
  EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
  // CX with control=1: |010> (= index 2) -> |011> (= index 3).
  Statevector basis(3);
  basis.apply_x(1);
  basis.apply_cx(1, 0);
  EXPECT_NEAR(std::abs(basis.amplitudes()[3] - cplx{1, 0}), 0.0, kTol);
}

TEST(Statevector, ExpZsMatchesDense) {
  Rng rng(5);
  Statevector sv = random_state(4, rng);
  const auto before = sv.amplitudes();
  sv.apply_exp_zs(0.83, {0, 1, 3});
  const auto expect = gates::exp_zs(0.83, {0, 1, 3}, 4) * before;
  EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
}

TEST(Statevector, MixerLayerMatchesExpX) {
  Rng rng(6);
  const real beta = 0.47;
  Statevector sv = random_state(3, rng);
  Statevector ref = sv;
  sv.apply_mixer_layer(beta);
  for (int q = 0; q < 3; ++q) ref.apply_1q(gates::exp_x(2 * beta), q);
  EXPECT_NEAR(fidelity(sv.amplitudes(), ref.amplitudes()), 1.0, kTol);
}

TEST(Statevector, ControlledExpXMatchesDense) {
  Rng rng(7);
  Statevector sv = random_state(4, rng);
  const auto before = sv.amplitudes();
  sv.apply_controlled_exp_x(0.9, 2, {0, 3}, 0);
  const auto expect = gates::controlled_exp_x(0.9, 2, {0, 3}, 0, 4) * before;
  EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
}

TEST(Statevector, PhaseOfCostMatchesExpZs) {
  // cost(x) = parity(x_0, x_1) has Ising form (1 - Z0 Z1)/2; check the
  // fast diagonal path against exp_zs composition.
  const int n = 3;
  std::vector<real> cost(8);
  for (std::uint64_t x = 0; x < 8; ++x)
    cost[x] = static_cast<real>((x & 1) ^ ((x >> 1) & 1));
  Rng rng(8);
  Statevector sv = random_state(n, rng);
  Statevector ref = sv;
  const real gamma = 0.41;
  sv.apply_phase_of_cost(gamma, cost);
  // e^{-i gamma (1 - Z0Z1)/2} = e^{-i gamma/2} e^{+i (gamma/2) Z0 Z1}
  ref.apply_exp_zs(-gamma, {0, 1});
  // fidelity ignores the global phase e^{-i gamma/2}
  EXPECT_NEAR(fidelity(sv.amplitudes(), ref.amplitudes()), 1.0, kTol);
}

TEST(Statevector, ExpectationDiagonal) {
  Statevector sv = Statevector::all_plus(2);
  const std::vector<real> cost{0, 1, 2, 3};
  EXPECT_NEAR(sv.expectation_diagonal(cost), 1.5, kTol);
}

TEST(Statevector, ProbOne) {
  Statevector sv(2);
  sv.apply_h(0);
  EXPECT_NEAR(sv.prob_one(0), 0.5, kTol);
  EXPECT_NEAR(sv.prob_one(1), 0.0, kTol);
}

TEST(Statevector, MeasureForcedAndCollapse) {
  Statevector sv(2);
  sv.apply_h(0);
  sv.apply_cx(0, 1);  // Bell state
  Rng rng(9);
  const int m0 = sv.measure(0, rng, 1);
  EXPECT_EQ(m0, 1);
  // Perfect correlation.
  EXPECT_NEAR(sv.prob_one(1), 1.0, kTol);
  // Forcing an impossible outcome now throws.
  EXPECT_THROW(sv.measure(1, rng, 0), Error);
}

TEST(Statevector, MeasureStatistics) {
  Rng rng(10);
  int ones = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    Statevector sv(1);
    sv.apply_1q(gates::rx(0.6), 0);  // |<1|rx(0.6)|0>|^2 = sin^2(0.3)
    ones += sv.measure(0, rng);
  }
  const real expect = std::pow(std::sin(0.3), 2);
  EXPECT_NEAR(static_cast<real>(ones) / trials, expect, 0.03);
}

TEST(Statevector, SampleDistribution) {
  Rng rng(11);
  Statevector sv(2);
  sv.apply_h(0);
  sv.apply_cx(0, 1);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 2000; ++i) counts[sv.sample(rng)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 2000.0, 0.5, 0.05);
}

TEST(Pauli, StringRoundTrip) {
  const PauliString p("XIZY");
  EXPECT_EQ(p.str(), "XIZY");
  EXPECT_EQ(p.y_count(), 1);
  EXPECT_EQ(p.op_at(2), 'Z');
}

TEST(Pauli, Commutation) {
  EXPECT_FALSE(PauliString("X").commutes_with(PauliString("Z")));
  EXPECT_TRUE(PauliString("XX").commutes_with(PauliString("ZZ")));
  EXPECT_TRUE(PauliString("XI").commutes_with(PauliString("IZ")));
  EXPECT_FALSE(PauliString("XY").commutes_with(PauliString("ZY")));
}

TEST(Pauli, ExpectationMatchesDense) {
  Rng rng(12);
  const Statevector sv = random_state(3, rng);
  for (const char* s : {"XIZ", "YYI", "ZZZ", "IXI", "XYZ"}) {
    const PauliString p(s);
    Matrix m = Matrix::identity(1);
    for (int q = 0; q < 3; ++q) {
      Matrix f;
      switch (p.op_at(q)) {
        case 'I': f = gates::id2(); break;
        case 'X': f = gates::x(); break;
        case 'Y': f = gates::y(); break;
        case 'Z': f = gates::z(); break;
      }
      m = f.kron(m);  // qubit q is bit q: higher q = left factor
    }
    const auto mv = m * sv.amplitudes();
    const cplx expect = inner(sv.amplitudes(), mv);
    const cplx got = p.expectation(sv);
    EXPECT_NEAR(std::abs(got - expect), 0.0, kTol) << s;
  }
}

TEST(Pauli, PlusStateExpectations) {
  const Statevector plus = Statevector::all_plus(2);
  EXPECT_NEAR(std::real(PauliString("XI").expectation(plus)), 1.0, kTol);
  EXPECT_NEAR(std::real(PauliString("ZI").expectation(plus)), 0.0, kTol);
  EXPECT_NEAR(std::real(PauliString("XX").expectation(plus)), 1.0, kTol);
}

}  // namespace
}  // namespace mbq
