// Compiled pattern executor: exhaustive forced-branch equivalence with
// the enumeration wrapper and the interpreted reference on every pattern
// shape the repo generates, bit-identical sampled outcome streams, the
// forced-run/noise foot-gun, and arena-reuse determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/collapse_threaded.h"

// --- global allocation counter ----------------------------------------
// Replaces the global operator new/delete for THIS test binary so the
// zero-steady-state-allocation contract of the shot loop is a tested
// invariant, not a comment.  Counting is monotonic; tests snapshot the
// counter around the region that must not allocate.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mbq::mbqc {
namespace {

struct Shape {
  std::string name;
  Pattern pattern;
};

Pattern j_pattern(real alpha) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});
  return p;
}

Pattern zz_gadget(real theta) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 2);
  p.add_entangle(1, 2);
  const signal_t m = p.add_measure(2, MeasBasis::YZ, theta);
  p.add_correct_z(0, SignalExpr(m));
  p.add_correct_z(1, SignalExpr(m));
  p.set_outputs({0, 1});
  return p;
}

/// One compiled QAOA pattern per graph generator family (p = 1 keeps the
/// measurement count within exhaustive-enumeration range), plus the
/// hand-built gadget shapes the runner tests use.
std::vector<Shape> shape_patterns() {
  Rng rng(7);
  const qaoa::Angles a = qaoa::Angles::random(1, rng);
  std::vector<Shape> shapes;
  auto add_qaoa = [&](const std::string& name, const Graph& g) {
    const auto cost = qaoa::CostHamiltonian::maxcut(g);
    shapes.push_back({name, core::compile_qaoa(cost, a).pattern});
  };
  add_qaoa("path4", path_graph(4));
  add_qaoa("cycle4", cycle_graph(4));
  add_qaoa("complete3", complete_graph(3));
  add_qaoa("star4", star_graph(4));
  add_qaoa("grid2x2", grid_graph(2, 2));
  add_qaoa("bipartite22", complete_bipartite_graph(2, 2));
  add_qaoa("gnm44", random_gnm_graph(4, 4, rng));
  shapes.push_back({"j", j_pattern(0.71)});
  shapes.push_back({"zz", zz_gadget(0.77)});
  return shapes;
}

void expect_same_result(const RunResult& want, const RunResult& got,
                        const std::string& context) {
  ASSERT_EQ(want.outcomes, got.outcomes) << context;
  EXPECT_EQ(want.peak_live, got.peak_live) << context;
  ASSERT_EQ(want.output_state.size(), got.output_state.size()) << context;
  for (std::size_t i = 0; i < want.output_state.size(); ++i)
    ASSERT_LT(std::abs(want.output_state[i] - got.output_state[i]), 1e-12)
        << context << " amplitude " << i;
  EXPECT_EQ(want.pending_x, got.pending_x) << context;
  EXPECT_EQ(want.pending_z, got.pending_z) << context;
}

TEST(CompiledPattern, ForcedBranchEquivalenceAcrossShapes) {
  for (const Shape& shape : shape_patterns()) {
    const Pattern& p = shape.pattern;
    const int m = p.num_measurements();
    ASSERT_LE(m, 12) << shape.name << " outgrew exhaustive enumeration";
    const auto branches = run_all_branches(p, 12);
    ASSERT_EQ(branches.size(), std::size_t{1} << m) << shape.name;

    PatternExecutor executor(std::make_shared<const CompiledPattern>(p));
    Rng unused(0);
    for (std::uint64_t b = 0; b < branches.size(); ++b) {
      // Exercise a few full comparisons per shape and spot-check the
      // rest on outcomes (the state comparison is the expensive part).
      const RunResult forced = executor.run_forced(b);
      ASSERT_EQ(branches[b].outcomes, forced.outcomes)
          << shape.name << " branch " << b;
      if (b % 17 != 0) continue;
      expect_same_result(branches[b], forced,
                         shape.name + " branch " + std::to_string(b));
      // Differential against the interpreted reference.
      RunOptions opt;
      opt.forced.resize(m);
      for (int i = 0; i < m; ++i) opt.forced[i] = get_bit(b, i);
      expect_same_result(run_interpreted(p, unused, opt), forced,
                         shape.name + " vs interpreter, branch " +
                             std::to_string(b));
    }
  }
}

TEST(CompiledPattern, SampledStreamsBitIdenticalToInterpreter) {
  Rng setup(11);
  const Graph g = random_gnm_graph(5, 6, setup);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, setup);
  const Pattern p = core::compile_qaoa(cost, a).pattern;

  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL}) {
    Rng interpreted_rng(seed);
    Rng compiled_rng(seed);
    PatternExecutor executor(std::make_shared<const CompiledPattern>(p));
    for (int rep = 0; rep < 16; ++rep) {
      const RunResult want = run_interpreted(p, interpreted_rng);
      const RunResult got = executor.run(compiled_rng);
      ASSERT_EQ(want.outcomes, got.outcomes)
          << "seed " << seed << " rep " << rep;
      ASSERT_EQ(want.output_state, got.output_state)
          << "seed " << seed << " rep " << rep;
      EXPECT_EQ(want.peak_live, got.peak_live);
    }
  }
}

TEST(CompiledPattern, SampledStreamsBitIdenticalWithNoise) {
  const Pattern p = zz_gadget(1.23);
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL}) {
    Rng interpreted_rng(seed);
    Rng compiled_rng(seed);
    RunOptions opt;
    opt.entangler_noise = 0.35;
    ExecOptions exec;
    exec.entangler_noise = 0.35;
    PatternExecutor executor(std::make_shared<const CompiledPattern>(p), exec);
    for (int rep = 0; rep < 64; ++rep) {
      const RunResult want = run_interpreted(p, interpreted_rng, opt);
      const RunResult got = executor.run(compiled_rng);
      ASSERT_EQ(want.outcomes, got.outcomes)
          << "seed " << seed << " rep " << rep;
      ASSERT_EQ(want.output_state, got.output_state)
          << "seed " << seed << " rep " << rep;
    }
  }
}

TEST(CompiledPattern, SessionSamplingInvariantAcrossThreadCounts) {
  Rng setup(5);
  const Graph g = random_gnm_graph(6, 8, setup);
  const api::Workload workload = api::Workload::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, setup);

  for (const std::string backend : {"mbqc", "mbqc-classical"}) {
    std::vector<std::vector<std::uint64_t>> per_thread_count;
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      api::Session session(workload, backend, {.seed = 99});
      const api::SampleResult r = session.sample(a, 96);
      std::vector<std::uint64_t> xs;
      xs.reserve(r.shots.size());
      for (const api::Shot& s : r.shots) xs.push_back(s.x);
      per_thread_count.push_back(std::move(xs));
    }
    set_num_threads(0);
    ASSERT_EQ(per_thread_count[0], per_thread_count[1]) << backend;
    ASSERT_EQ(per_thread_count[0], per_thread_count[2]) << backend;
  }
}

TEST(CompiledPattern, ForcedRunsRejectEntanglerNoise) {
  const Pattern p = j_pattern(0.3);
  ExecOptions noisy;
  noisy.entangler_noise = 0.1;
  PatternExecutor executor(std::make_shared<const CompiledPattern>(p), noisy);
  // Sampling with noise is fine...
  Rng rng(1);
  EXPECT_NO_THROW(executor.run(rng));
  // ...forcing a branch under noise is the foot-gun and must throw.
  EXPECT_THROW(executor.run_forced(std::uint64_t{0}), Error);
  EXPECT_THROW(executor.run_forced(std::vector<int>{0}), Error);

  // Same guard on the enumeration wrapper's base options.
  RunOptions base;
  base.entangler_noise = 0.1;
  EXPECT_THROW(run_all_branches(p, 12, base), Error);
  RunOptions forced_base;
  forced_base.forced = {0};
  EXPECT_THROW(run_all_branches(p, 12, forced_base), Error);
  // run() keeps the historical check for the combined options.
  RunOptions both;
  both.forced = {0};
  both.entangler_noise = 0.1;
  EXPECT_THROW(run(p, rng, both), Error);
}

TEST(CompiledPattern, ForcedSizeAndRangeChecked) {
  const Pattern p = j_pattern(0.4);
  PatternExecutor executor(std::make_shared<const CompiledPattern>(p));
  EXPECT_THROW(executor.run_forced(std::vector<int>{0, 1}), Error);
  EXPECT_THROW(executor.run_forced(std::vector<int>{2}), Error);
  EXPECT_NO_THROW(executor.run_forced(std::vector<int>{1}));
}

TEST(CompiledPattern, RunSampleMatchesGatheredReadout) {
  Rng setup(21);
  const Graph g = random_gnm_graph(5, 7, setup);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, setup);
  const Pattern p = core::compile_qaoa(cost, a).pattern;
  auto compiled = std::make_shared<const CompiledPattern>(p);

  // run_sample must be bit-identical to run() followed by the cumulative
  // walk over the gathered output_state (the readout MbqcBackend used to
  // perform on the copy).
  PatternExecutor reference(compiled);
  PatternExecutor sampled(compiled);
  Rng r1(7), r2(7);
  for (int rep = 0; rep < 64; ++rep) {
    const RunResult want = reference.run(r1);
    real u = r1.uniform();
    std::uint64_t x = 0;
    for (std::uint64_t i = 0; i < want.output_state.size(); ++i) {
      u -= std::norm(want.output_state[i]);
      if (u <= 0.0) {
        x = i;
        break;
      }
      if (i + 1 == want.output_state.size()) x = i;
    }
    const PatternExecutor::SampledShot got = sampled.run_sample(r2);
    ASSERT_EQ(x, got.x) << "rep " << rep;
    ASSERT_EQ(want.outcomes, sampled.last_outcomes()) << "rep " << rep;
    EXPECT_EQ(want.peak_live, got.peak_live);
  }
}

TEST(CompiledPattern, ArenaReuseIsDeterministic) {
  Rng setup(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(5));
  const qaoa::Angles a = qaoa::Angles::random(1, setup);
  const Pattern p = core::compile_qaoa(cost, a).pattern;
  auto compiled = std::make_shared<const CompiledPattern>(p);

  // The same executor re-run from an equal seed replays the identical
  // trajectory: reset-in-place leaks no state between runs.
  PatternExecutor reused(compiled);
  Rng r1(17), r2(17);
  std::vector<RunResult> first, second;
  for (int i = 0; i < 8; ++i) first.push_back(reused.run(r1));
  for (int i = 0; i < 8; ++i) second.push_back(reused.run(r2));
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(first[i].outcomes, second[i].outcomes) << i;
    ASSERT_EQ(first[i].output_state, second[i].output_state) << i;
    ASSERT_EQ(first[i].peak_live, second[i].peak_live) << i;
  }
  // And matches a fresh executor per run.
  Rng r3(17);
  for (int i = 0; i < 8; ++i) {
    PatternExecutor fresh(compiled);
    const RunResult got = fresh.run(r3);
    ASSERT_EQ(first[i].outcomes, got.outcomes) << i;
    ASSERT_EQ(first[i].output_state, got.output_state) << i;
  }
}

TEST(CompiledPattern, InputStatesAndPendingByproducts) {
  // Input wires keep their caller-facing ids (the executor renames wires
  // to dense slots internally), and skipped corrections report pending
  // byproducts keyed by the ORIGINAL wire ids.
  Pattern p;
  p.add_input(5);
  p.add_prep(9);
  p.add_entangle(5, 9);
  const signal_t m = p.add_measure(5, MeasBasis::XY, -0.33);
  p.add_correct_x(9, SignalExpr(m));
  p.set_outputs({9});

  RunOptions opt;
  opt.apply_corrections = false;
  opt.input_states[5] = {cplx{0.6, 0.0}, cplx{0.0, 0.8}};
  opt.forced = {1};
  Rng unused(2);
  const RunResult want = run_interpreted(p, unused, opt);

  ExecOptions exec;
  exec.apply_corrections = false;
  exec.input_states = opt.input_states;
  PatternExecutor executor(std::make_shared<const CompiledPattern>(p), exec);
  const RunResult got = executor.run_forced(std::uint64_t{1});
  ASSERT_EQ(want.outcomes, got.outcomes);
  ASSERT_EQ(want.output_state, got.output_state);
  EXPECT_EQ(got.pending_x.at(9), 1);
  EXPECT_EQ(want.pending_x, got.pending_x);
  EXPECT_EQ(want.pending_z, got.pending_z);
}

TEST(CompiledPattern, LoweringStatistics) {
  const Pattern p = zz_gadget(0.5);
  const CompiledPattern compiled(p);
  EXPECT_EQ(compiled.num_measurements(), 1);
  EXPECT_EQ(compiled.num_slots(), 3);
  // Fusion merges the gadget block (N;E;E;M -> one op) and the terminal
  // correction pair: 8 source commands lower to 4 tape ops.
  EXPECT_LE(compiled.num_ops(), static_cast<int>(p.commands().size()));
  EXPECT_EQ(compiled.num_ops(), 4);
  EXPECT_EQ(compiled.output_wires(), p.outputs());
  // Invalid patterns are rejected at compile time, not per run.
  Pattern bad;
  bad.add_entangle(0, 1);  // wires never prepared
  bad.set_outputs({});
  EXPECT_THROW(CompiledPattern{bad}, Error);
}

TEST(CompiledPattern, SteadyStateShotLoopAllocatesNothing) {
  // The executor's documented contract: once the arena, the outcome
  // buffer and the cached readout gather table have reached their
  // steady-state capacity, run_sample performs ZERO heap allocations
  // per shot.  This regression test is what caught the per-call
  // state_in_order/sample_in_order table builds.
  Rng rng(31);
  const qaoa::Angles angles = qaoa::Angles::random(2, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(8));
  const auto compiled = std::make_shared<const CompiledPattern>(
      core::compile_qaoa(cost, angles).pattern);
  PatternExecutor exec(compiled);
  for (int shot = 0; shot < 5; ++shot) exec.run_sample(rng);  // warm up
  const std::uint64_t before = g_alloc_count.load();
  std::uint64_t sink = 0;
  for (int shot = 0; shot < 50; ++shot) sink ^= exec.run_sample(rng).x;
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "sink " << sink;
}

TEST(CompiledPattern, SteadyStateShotLoopAllocatesNothingWithThreads) {
  // Same contract with the kernel thread knob engaged: the knob must
  // not cost the shot loop its zero-allocation property.
  struct ThreadGuard {
    int saved = thr::kernel_threads();
    ~ThreadGuard() { thr::set_kernel_threads(saved); }
  } guard;
  thr::set_kernel_threads(2);
  Rng rng(31);
  const qaoa::Angles angles = qaoa::Angles::random(2, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(6));
  const auto compiled = std::make_shared<const CompiledPattern>(
      core::compile_qaoa(cost, angles).pattern);
  PatternExecutor exec(compiled);
  for (int shot = 0; shot < 5; ++shot) exec.run_sample(rng);  // warm up
  const std::uint64_t before = g_alloc_count.load();
  std::uint64_t sink = 0;
  for (int shot = 0; shot < 50; ++shot) sink ^= exec.run_sample(rng).x;
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u) << "sink " << sink;
}

TEST(CompiledPattern, ChunkedThreadedSweepsAllocateNothingInSteadyState) {
  // The chunked drivers themselves: a 15-wire register (2^15 amps, above
  // the chunk cutoff) driven through in-place sweeps and re-folds with
  // two kernel threads.  The chunk-partial slots grow on first use —
  // warmed up before the counted region — after which a steady-state
  // pass performs ZERO heap allocations.  (OpenMP-runtime internals use
  // malloc, not operator new, and are deliberately outside this
  // counter; the contract here is about OUR per-sweep buffers.)
  struct ThreadGuard {
    int saved = thr::kernel_threads();
    ~ThreadGuard() { thr::set_kernel_threads(saved); }
  } guard;
  thr::set_kernel_threads(2);
  DynamicStatevector dsv;
  for (int w = 0; w < 15; ++w) dsv.add_wire(w);
  const std::uint64_t masks[2] = {0b11, (std::uint64_t{1} << 14) | 0b100};
  auto sweep = [&] {
    dsv.apply_cz_masks(masks, 2);
    dsv.apply_rz(4, 0.37);
    dsv.apply_pauli_masks(std::uint64_t{1} << 3, std::uint64_t{1} << 9,
                          false);
    dsv.normalize();  // full chunked fold + scale
  };
  sweep();
  sweep();  // warm up the chunk-partial slots
  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 8; ++i) sweep();
  EXPECT_EQ(g_alloc_count.load() - before, 0u);
}

}  // namespace
}  // namespace mbq::mbqc
