// Mixer tests: MIS partial mixers (three implementations against each
// other) and XY mixers, including the invariant-subspace properties the
// paper relies on in Secs. IV and V.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/qaoa/mixers.h"

namespace mbq::qaoa {
namespace {

TEST(MisMixer, PartialMixerThreeWaysAgree) {
  Rng rng(1);
  const Graph g = path_graph(3);
  const real beta = 0.83;
  for (int v = 0; v < 3; ++v) {
    // 1. Oracle matrix.
    const Matrix oracle =
        gates::controlled_exp_x(beta, v, g.neighbors(v), 0, 3);
    // 2. Circuit gate.
    const Matrix direct = mis_partial_mixer(g, v, beta).unitary();
    // 3. Phase-polynomial expansion.
    const Matrix expanded =
        mis_partial_mixer(g, v, beta).expand_controlled_gates().unitary();
    EXPECT_TRUE(Matrix::approx_equal(direct, oracle));
    EXPECT_TRUE(Matrix::approx_equal_up_to_phase(expanded, oracle));
  }
}

TEST(MisMixer, PreservesIndependentSetSubspace) {
  Rng rng(2);
  for (const auto& g : {path_graph(4), cycle_graph(5), star_graph(5)}) {
    const int n = g.num_vertices();
    // Start from a random superposition of independent sets.
    Statevector sv(n);
    {
      std::vector<cplx> amps(std::size_t{1} << n, cplx{0, 0});
      for (std::uint64_t x = 0; x < amps.size(); ++x)
        if (is_independent_set(g, x))
          amps[x] = cplx{rng.normal(), rng.normal()};
      sv = Statevector(n, std::move(amps));
      sv.normalize();
    }
    mis_mixer(g, 0.9).apply_to(sv);
    EXPECT_NEAR(infeasible_mass(g, sv), 0.0, 1e-10) << g.str();
  }
}

TEST(MisMixer, ActsOnlyWhenNeighborsAllZero) {
  // Star graph: center 0 with leaves.  If any leaf is 1, the center
  // rotation must not fire.
  const Graph g = star_graph(3);
  Statevector sv(3);
  sv.apply_x(1);  // leaf 1 set
  Statevector before = sv;
  mis_partial_mixer(g, 0, 1.1).apply_to(sv);
  EXPECT_NEAR(sv.fidelity_with(before), 1.0, 1e-10);
  // With all leaves 0 it does fire.
  Statevector sv2(3);
  mis_partial_mixer(g, 0, 1.1).apply_to(sv2);
  EXPECT_NEAR(sv2.prob_one(0), std::pow(std::sin(1.1), 2), 1e-9);
}

TEST(MisMixer, QaoaCircuitStaysFeasible) {
  Rng rng(3);
  const Graph g = cycle_graph(5);
  const Angles a = Angles::random(2, rng);
  Statevector sv(5);  // |00000> = empty set, feasible
  mis_qaoa_circuit(g, a).apply_to(sv);
  EXPECT_NEAR(infeasible_mass(g, sv), 0.0, 1e-10);
  // And it actually explores: expected set size > 0.
  std::vector<real> size_table(32);
  for (std::uint64_t x = 0; x < 32; ++x)
    size_table[x] = static_cast<real>(std::popcount(x));
  EXPECT_GT(sv.expectation_diagonal(size_table), 0.1);
}

TEST(XyMixer, PairMatchesOracle) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const real beta = rng.angle();
    const Matrix xx = gates::x().kron(gates::x());  // qubits (1,0) order
    const Matrix yy = gates::y().kron(gates::y());
    const Matrix i4 = Matrix::identity(4);
    const cplx c = std::cos(beta), is = kI * std::sin(beta);
    const Matrix oracle = (i4 * c + xx * is) * (i4 * c + yy * is);
    const Matrix built = xy_mixer_pair(2, 0, 1, beta).unitary();
    EXPECT_TRUE(Matrix::approx_equal_up_to_phase(built, oracle))
        << "beta=" << beta;
  }
}

TEST(XyMixer, PreservesHammingWeight) {
  Rng rng(5);
  const int n = 4;
  // Start in an equal superposition of all weight-1 states (one-hot).
  std::vector<cplx> amps(16, cplx{0, 0});
  for (int q = 0; q < n; ++q) amps[1u << q] = 0.5;
  Statevector sv(n, std::move(amps));
  const Circuit ring = xy_mixer_ring(n, {0, 1, 2, 3}, 0.7);
  ring.apply_to(sv);
  // All mass still on weight-1 states.
  real w1 = 0.0;
  for (std::uint64_t x = 0; x < 16; ++x)
    if (std::popcount(x) == 1) w1 += std::norm(sv.amplitudes()[x]);
  EXPECT_NEAR(w1, 1.0, 1e-10);
  // And the mixer genuinely moves amplitude between one-hot states.
  Statevector onehot(n);
  onehot.apply_x(0);
  ring.apply_to(onehot);
  EXPECT_LT(onehot.prob_one(0), 0.999);
}

TEST(XyMixer, TwoVertexRingNoDuplicate) {
  const Circuit c = xy_mixer_ring(3, {0, 2}, 0.4);
  int gadgets = 0;
  for (const Gate& g : c.gates()) gadgets += g.kind == GateKind::PhaseGadget;
  EXPECT_EQ(gadgets, 2);  // one XX + one YY, not doubled
}

TEST(Feasibility, IndependentSetPredicate) {
  const Graph g = path_graph(3);
  EXPECT_TRUE(is_independent_set(g, parse_bitstring("101")));
  EXPECT_FALSE(is_independent_set(g, parse_bitstring("110")));
  EXPECT_TRUE(is_independent_set(g, 0));
}

}  // namespace
}  // namespace mbq::qaoa
