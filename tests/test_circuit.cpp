// Unit tests for the circuit IR: building, execution, unitaries,
// controlled-gate expansion.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/linalg/unitaries.h"

namespace mbq {
namespace {

TEST(Circuit, BuildAndValidate) {
  Circuit c(3);
  c.h(0).cz(0, 1).rz(2, 0.5).phase_gadget({0, 2}, 0.7);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_THROW(c.h(3), Error);
  EXPECT_THROW(c.cz(1, 1), Error);
  EXPECT_THROW(c.phase_gadget({}, 0.1), Error);
}

TEST(Circuit, ApplyMatchesUnitary) {
  Rng rng(1);
  Circuit c(3);
  c.h(0).h(1).h(2);
  c.cz(0, 1).cx(1, 2);
  c.rz(0, 0.31).rx(1, -0.7).t(2).s(0).sdg(1).tdg(2);
  c.phase_gadget({0, 1, 2}, 0.9);
  c.y(0).z(1).x(2);

  Statevector sv(3);
  c.apply_to(sv);
  const auto expect = c.unitary() * Statevector(3).amplitudes();
  EXPECT_NEAR(fidelity(sv.amplitudes(), expect), 1.0, kTol);
}

TEST(Circuit, AppendCircuit) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cz(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wide(3);
  EXPECT_THROW(Circuit(2).append(wide), Error);
}

TEST(Circuit, PhaseGadgetEqualsCxRzCx) {
  // exp(-i t/2 Z0 Z1) == CX(0,1) rz_1(t) CX(0,1) up to global phase.
  const real t = 0.77;
  Circuit pg(2);
  pg.phase_gadget({0, 1}, t);
  Circuit comp(2);
  comp.cx(0, 1).rz(1, t).cx(0, 1);
  EXPECT_TRUE(Matrix::approx_equal_up_to_phase(pg.unitary(), comp.unitary()));
}

TEST(Circuit, EntanglingCount) {
  Circuit c(4);
  c.h(0).cz(0, 1).cx(1, 2);
  c.phase_gadget({0, 1, 2}, 0.4);  // 2*(3-1) = 4 CX
  EXPECT_EQ(c.entangling_count_compiled(), 2u + 4u);
}

TEST(Circuit, ControlledExpXOracle) {
  Rng rng(2);
  for (int nc = 0; nc <= 3; ++nc) {
    const int n = nc + 1;
    std::vector<int> controls;
    for (int i = 1; i <= nc; ++i) controls.push_back(i);
    for (int v : {0, 1}) {
      const real beta = rng.angle();
      Circuit c(n);
      c.controlled_exp_x(0, controls, beta, v);
      const Matrix expect =
          gates::controlled_exp_x(beta, 0, controls, v, n);
      EXPECT_TRUE(Matrix::approx_equal(c.unitary(), expect))
          << "nc=" << nc << " v=" << v;
    }
  }
}

TEST(Circuit, ExpandControlledGatesExact) {
  // The phase-polynomial expansion must reproduce the controlled rotation
  // exactly (up to global phase) for every control count and value.
  Rng rng(3);
  for (int nc = 0; nc <= 3; ++nc) {
    const int n = nc + 1;
    std::vector<int> controls;
    for (int i = 1; i <= nc; ++i) controls.push_back(i);
    for (int v : {0, 1}) {
      const real beta = rng.angle();
      Circuit c(n);
      c.controlled_exp_x(0, controls, beta, v);
      const Circuit expanded = c.expand_controlled_gates();
      // Expansion contains no controlled gates.
      for (const Gate& g : expanded.gates())
        EXPECT_NE(g.kind, GateKind::ControlledExpX);
      EXPECT_TRUE(Matrix::approx_equal_up_to_phase(c.unitary(),
                                                   expanded.unitary()))
          << "nc=" << nc << " v=" << v << " beta=" << beta;
    }
  }
}

TEST(Circuit, ExpandGadgetCount) {
  Circuit c(4);
  c.controlled_exp_x(0, {1, 2, 3}, 0.5, 0);
  const Circuit e = c.expand_controlled_gates();
  int gadgets = 0, hs = 0;
  for (const Gate& g : e.gates()) {
    gadgets += g.kind == GateKind::PhaseGadget;
    hs += g.kind == GateKind::H;
  }
  EXPECT_EQ(gadgets, 8);  // 2^3 subsets
  EXPECT_EQ(hs, 2);
}

TEST(Circuit, StrContainsGateNames) {
  Circuit c(2);
  c.h(0).cz(0, 1);
  const std::string s = c.str();
  EXPECT_NE(s.find("H(0)"), std::string::npos);
  EXPECT_NE(s.find("CZ(0,1)"), std::string::npos);
}

}  // namespace
}  // namespace mbq
