// Standardization (N* E* M* C* normal form) and qubit-reuse scheduling
// must both preserve pattern semantics exactly, branch by branch.

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/scheduler.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/sim/statevector.h"

namespace mbq::mbqc {
namespace {

Circuit random_circuit(int n, int steps, Rng& rng) {
  Circuit c(n);
  for (int step = 0; step < steps; ++step) {
    const int q = static_cast<int>(rng.uniform_index(n));
    int r = static_cast<int>(rng.uniform_index(n));
    if (r == q) r = (r + 1) % n;
    switch (rng.uniform_index(5)) {
      case 0: c.h(q); break;
      case 1: c.rz(q, rng.angle()); break;
      case 2: c.rx(q, rng.angle()); break;
      case 3: c.cz(q, r); break;
      case 4: c.cx(q, r); break;
    }
  }
  return c;
}

std::vector<cplx> reference_on_plus(const Circuit& c) {
  Statevector sv = Statevector::all_plus(c.num_qubits());
  c.apply_to(sv);
  return sv.amplitudes();
}

TEST(Standardize, ProducesNormalForm) {
  Rng rng(1);
  const Circuit c = random_circuit(2, 8, rng);
  const Pattern p = pattern_from_circuit(c, true);
  EXPECT_FALSE(is_standard(p));  // translation interleaves N/E/M
  const Pattern s = standardize(p);
  EXPECT_TRUE(is_standard(s));
  // Same resources, same signals.
  EXPECT_EQ(s.num_prepared(), p.num_prepared());
  EXPECT_EQ(s.num_entangling(), p.num_entangling());
  EXPECT_EQ(s.num_measurements(), p.num_measurements());
  EXPECT_EQ(s.num_signals(), p.num_signals());
}

TEST(Standardize, SemanticsPreservedAllBranches) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    Circuit c = random_circuit(2, 4, rng);
    const Pattern p = pattern_from_circuit(c, true);
    const Pattern s = standardize(p);
    const auto expect = reference_on_plus(c);
    if (s.num_measurements() > 10) continue;
    for (const auto& b : run_all_branches(s))
      ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9)
          << "trial " << trial;
  }
}

TEST(Standardize, GraphStatePartIsAlgorithmIndependent) {
  // Patterns for rz(0.3) and rz(-1.1) share the same entanglement graph
  // after standardization — "the graph state is independent of the
  // algorithm" (Sec. II-B).
  Circuit c1(1), c2(1);
  c1.rz(0, 0.3);
  c2.rz(0, -1.1);
  const auto g1 = standardize(pattern_from_circuit(c1, true))
                      .entanglement_graph()
                      .first;
  const auto g2 = standardize(pattern_from_circuit(c2, true))
                      .entanglement_graph()
                      .first;
  EXPECT_EQ(g1, g2);
}

TEST(Schedule, ReducesPeakLive) {
  Rng rng(3);
  const Circuit c = random_circuit(3, 12, rng);
  const Pattern p = standardize(pattern_from_circuit(c, true));
  // Standard form preps everything first: peak == total wires.
  EXPECT_EQ(peak_live_of(p), p.num_wires());
  const Schedule s = schedule_for_reuse(p);
  EXPECT_LT(s.peak_live, p.num_wires());
  // A J-chain translation should keep roughly n+1 wires alive.
  EXPECT_LE(s.peak_live, c.num_qubits() + 2);
}

TEST(Schedule, SemanticsPreservedAllBranches) {
  Rng rng(4);
  for (int trial = 0; trial < 4; ++trial) {
    Circuit c = random_circuit(2, 4, rng);
    const Pattern p = standardize(pattern_from_circuit(c, true));
    const Schedule s = schedule_for_reuse(p);
    const auto expect = reference_on_plus(c);
    if (s.pattern.num_measurements() > 10) continue;
    for (const auto& b : run_all_branches(s.pattern))
      ASSERT_NEAR(fidelity(b.output_state, expect), 1.0, 1e-9)
          << "trial " << trial;
  }
}

TEST(Schedule, PreservesResourceCounts) {
  Rng rng(5);
  const Circuit c = random_circuit(3, 10, rng);
  const Pattern p = pattern_from_circuit(c, true);
  const Schedule s = schedule_for_reuse(p);
  EXPECT_EQ(s.pattern.num_prepared(), p.num_prepared());
  EXPECT_EQ(s.pattern.num_entangling(), p.num_entangling());
  EXPECT_EQ(s.pattern.num_measurements(), p.num_measurements());
}

TEST(Schedule, PeakLiveOfCountsInputs) {
  Pattern p;
  p.add_input(0);
  p.add_input(1);
  p.set_outputs({0, 1});
  EXPECT_EQ(peak_live_of(p), 2);
}

}  // namespace
}  // namespace mbq::mbqc
