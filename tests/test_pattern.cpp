// Unit tests for the pattern IR: construction, validation, statistics.

#include <gtest/gtest.h>

#include "mbq/mbqc/pattern.h"

namespace mbq::mbqc {
namespace {

Pattern j_gate_pattern(real alpha) {
  // The canonical single-J pattern: input 0, ancilla 1.
  Pattern p;
  p.add_input(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -alpha);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});
  return p;
}

TEST(Pattern, JGateStructure) {
  const Pattern p = j_gate_pattern(0.5);
  p.validate();
  EXPECT_EQ(p.num_wires(), 2);
  EXPECT_EQ(p.num_prepared(), 1);
  EXPECT_EQ(p.num_entangling(), 1);
  EXPECT_EQ(p.num_measurements(), 1);
  EXPECT_EQ(p.num_corrections(), 1);
  EXPECT_EQ(p.num_signals(), 1);
}

TEST(Pattern, EntanglementGraph) {
  Pattern p;
  p.add_prep(10);
  p.add_prep(20);
  p.add_prep(30);
  p.add_entangle(10, 20);
  p.add_entangle(20, 30);
  p.add_entangle(10, 20);  // parallel E collapses in the graph
  p.set_outputs({10, 20, 30});
  const auto [g, wires] = p.entanglement_graph();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(wires, (std::vector<int>{10, 20, 30}));
}

TEST(Pattern, ValidateRejectsUnpreparedWire) {
  Pattern p;
  p.add_entangle(0, 1);
  p.set_outputs({});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, ValidateRejectsDoublePrep) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(0);
  p.set_outputs({0});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, ValidateRejectsUseAfterMeasure) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.add_entangle(0, 1);  // wire 0 is dead
  p.set_outputs({1});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, ValidateRejectsFutureSignal) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  // Measurement of wire 0 depends on signal 1, which is measured later.
  CmdMeasure bad;
  p.add_measure(0, MeasBasis::XY, 0.3, SignalExpr(1), {});
  p.add_measure(1, MeasBasis::XY, 0.3);
  p.set_outputs({});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, ValidateRejectsWrongOutputs) {
  Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_measure(0, MeasBasis::X, 0.0);
  p.set_outputs({0});  // 0 is measured; 1 is the live wire
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, ValidateRejectsCorrectionOnMeasuredWire) {
  Pattern p;
  p.add_prep(0);
  const signal_t m = p.add_measure(0, MeasBasis::X, 0.0);
  p.add_correct_x(0, SignalExpr(m));
  p.set_outputs({});
  EXPECT_THROW(p.validate(), Error);
}

TEST(Pattern, StrMentionsDomains) {
  const Pattern p = j_gate_pattern(0.25);
  const std::string s = p.str();
  EXPECT_NE(s.find("MXY(0"), std::string::npos);
  EXPECT_NE(s.find("X(1)^s0"), std::string::npos);
}

}  // namespace
}  // namespace mbq::mbqc
