// The acceptance test of the unified backend API: every registered
// backend is an interchangeable implementation of the same mathematical
// object.  For random small MaxCut/QUBO instances and random angles at
// p = 1, 2, all supporting backends must agree on expectation() to 1e-9
// (the paper's Eq. 12 as an API property), and sample() histograms must
// pass a chi-squared sanity check against the statevector Born
// distribution.  Session-level behaviors — caching, thread-count
// independent sampling, registry errors — are covered here too.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/mixers.h"

namespace mbq::api {
namespace {

using qaoa::Angles;
using qaoa::CostHamiltonian;

/// Random QUBO with both linear and quadratic terms.
Workload random_qubo_workload(int n, Rng& rng) {
  const Graph g = random_gnm_graph(n, std::min(2 * n, n * (n - 1) / 2), rng);
  CostHamiltonian c = CostHamiltonian::maxcut(g);
  for (int q = 0; q < n; ++q)
    if (rng.coin()) c.add_term({q}, rng.uniform(-0.5, 0.5));
  return Workload::qaoa(std::move(c));
}

/// Chi-squared statistic of observed counts against the model Born
/// distribution, pooling low-expectation bins.
real chi_squared(const std::vector<std::int64_t>& counts,
                 const std::vector<real>& probs, int* dof) {
  const std::int64_t shots =
      std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  real stat = 0.0;
  real pooled_expected = 0.0;
  real pooled_observed = 0.0;
  *dof = 0;
  for (std::size_t x = 0; x < counts.size(); ++x) {
    const real expected = probs[x] * static_cast<real>(shots);
    if (expected < 5.0) {  // pool sparse bins, the standard validity rule
      pooled_expected += expected;
      pooled_observed += static_cast<real>(counts[x]);
      continue;
    }
    const real d = static_cast<real>(counts[x]) - expected;
    stat += d * d / expected;
    ++*dof;
  }
  if (pooled_expected >= 5.0) {
    const real d = pooled_observed - pooled_expected;
    stat += d * d / pooled_expected;
    ++*dof;
  }
  *dof = std::max(*dof - 1, 1);
  return stat;
}

TEST(Registry, BuiltinsPresent) {
  auto& registry = BackendRegistry::instance();
  for (const char* name :
       {"statevector", "mbqc", "mbqc-classical", "clifford", "zx"})
    EXPECT_TRUE(registry.contains(name)) << name;
  EXPECT_THROW(registry.create("no-such-backend"), Error);
}

TEST(Registry, CustomBackendRegisters) {
  auto& registry = BackendRegistry::instance();
  ASSERT_FALSE(registry.contains("statevector-alias"));
  registry.add("statevector-alias",
               [] { return std::make_shared<StatevectorBackend>(); });
  EXPECT_TRUE(registry.contains("statevector-alias"));
  EXPECT_THROW(registry.add("statevector-alias",
                            [] { return std::make_shared<StatevectorBackend>(); }),
               Error);
  EXPECT_EQ(registry.create("statevector-alias")->name(), "statevector");
}

TEST(BackendEquivalence, AllBackendsAgreeOnExpectation) {
  Rng rng(11);
  for (int instance = 0; instance < 3; ++instance) {
    Workload w = instance == 0 ? Workload::maxcut(cycle_graph(5))
                               : random_qubo_workload(4 + instance, rng);
    for (int p : {1, 2}) {
      const Angles a = Angles::random(p, rng);
      Session reference(w, "statevector");
      const real expected = reference.expectation(a);
      for (const std::string& name : BackendRegistry::instance().names()) {
        Session session(w, name);
        if (!session.unsupported_reason(a).empty()) continue;  // clifford
        EXPECT_NEAR(session.expectation(a), expected, 1e-9)
            << name << " instance " << instance << " p=" << p;
      }
    }
  }
}

TEST(BackendEquivalence, CliffordAnglesRunOnAllBackends) {
  // gamma = pi/2 with unit MaxCut weights (w = +-1/2 per edge plus the
  // constant) and beta = pi/4 compile to pi/2-multiple pattern angles.
  Rng rng(13);
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({kPi / 2}, {kPi / 4});
  Session reference(w, "statevector");
  const real expected = reference.expectation(a);
  int ran = 0;
  for (const std::string& name : BackendRegistry::instance().names()) {
    Session session(w, name);
    ASSERT_EQ(session.unsupported_reason(a), "") << name;
    EXPECT_NEAR(session.expectation(a), expected, 1e-9) << name;
    ++ran;
  }
  EXPECT_GE(ran, 5);  // including "clifford"
  // And the clifford backend indeed rejects generic angles.
  Session clifford(w, "clifford");
  EXPECT_NE(clifford.unsupported_reason(Angles::random(1, rng)), "");
}

TEST(BackendEquivalence, SampleHistogramsMatchStatevector) {
  Rng rng(17);
  const Graph g = cycle_graph(4);
  const Workload w = Workload::maxcut(g);
  const Angles a = Angles::random(1, rng);
  const int n = g.num_vertices();
  const int shots = 4096;

  // Model distribution from the reference state.
  const Statevector sv = w.reference_state(a);
  std::vector<real> probs(sv.dim());
  for (std::uint64_t x = 0; x < sv.dim(); ++x)
    probs[x] = std::norm(sv.amplitudes()[x]);

  for (const std::string& name : BackendRegistry::instance().names()) {
    Session session(w, name, {.seed = 99});
    if (!session.unsupported_reason(a).empty()) continue;
    const SampleResult result = session.sample(a, shots);
    ASSERT_EQ(result.shots.size(), static_cast<std::size_t>(shots));
    int dof = 0;
    const real stat = chi_squared(result.counts(n), probs, &dof);
    // Very loose gate: ~5x the dof catches wrong distributions while
    // keeping the false-positive rate negligible.
    EXPECT_LT(stat, 5.0 * dof + 30.0) << name << " chi2=" << stat;
  }
}

TEST(BackendEquivalence, MisAnsatzAgreesAcrossSupportingBackends) {
  Rng rng(19);
  const Graph g = path_graph(4);
  const Workload w = Workload::mis(g);
  const Angles a = Angles::random(1, rng);
  Session reference(w, "statevector");
  Session mbqc(w, "mbqc");
  EXPECT_NEAR(mbqc.expectation(a), reference.expectation(a), 1e-9);
  // Every sample is a valid independent set by construction (Sec. IV).
  for (const Shot& s : mbqc.sample(a, 64).shots)
    EXPECT_TRUE(qaoa::is_independent_set(g, s.x));
}

TEST(BackendEquivalence, CustomCircuitAnsatzAgrees) {
  Rng rng(23);
  const Graph g = cycle_graph(3);
  CostHamiltonian c = CostHamiltonian::maxcut(g);
  const auto builder = [n = g.num_vertices(), c](const Angles& a) {
    Circuit circ(n);
    for (int k = 0; k < a.p(); ++k) {
      for (const auto& t : c.terms())
        circ.phase_gadget(t.support, 2.0 * a.gamma[k] * t.coeff);
      for (int q = 0; q < n; ++q) circ.rx(q, 2.0 * a.beta[k]);
    }
    return circ;
  };
  const Workload w = Workload::custom(c, builder);
  const Angles a = Angles::random(2, rng);
  Session reference(w, "statevector");
  Session mbqc(w, "mbqc");
  EXPECT_NEAR(mbqc.expectation(a), reference.expectation(a), 1e-9);
}

TEST(Session, SamplingIsReproducibleAndThreadCountIndependent) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.6}, {0.4});
  SessionOptions serial{.seed = 7, .parallel_shots = false};
  SessionOptions parallel{.seed = 7, .parallel_shots = true};
  Session s1(w, "mbqc", serial);
  Session s2(w, "mbqc", parallel);
  const SampleResult r1 = s1.sample(a, 64);
  const SampleResult r2 = s2.sample(a, 64);
  ASSERT_EQ(r1.shots.size(), r2.shots.size());
  for (std::size_t i = 0; i < r1.shots.size(); ++i)
    EXPECT_EQ(r1.shots[i].x, r2.shots[i].x) << i;
  // Distinct calls draw distinct streams.
  const SampleResult r3 = s1.sample(a, 64);
  bool any_differ = false;
  for (std::size_t i = 0; i < r1.shots.size(); ++i)
    any_differ |= (r1.shots[i].x != r3.shots[i].x);
  EXPECT_TRUE(any_differ);
}

TEST(Session, PatternCacheHitsOnRepeatedAngles) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  const Angles a({0.3}, {0.2});
  const Angles b({0.9}, {-0.4});
  Session session(w, "mbqc");
  session.expectation(a);
  session.expectation(a);
  session.sample(a, 4);
  session.expectation(b);
  EXPECT_EQ(session.cache_misses(), 2u);  // a, b
  EXPECT_EQ(session.cache_hits(), 2u);    // repeat a twice
  EXPECT_EQ(session.cache_entries(), 2u);
}

TEST(Session, CacheEvictsLeastRecentlyUsed) {
  const Workload w = Workload::maxcut(cycle_graph(3));
  Session session(w, "statevector", {.cache_capacity = 2});
  session.expectation(Angles({0.1}, {0.1}));
  session.expectation(Angles({0.2}, {0.2}));
  session.expectation(Angles({0.1}, {0.1}));  // refresh the first entry
  session.expectation(Angles({0.3}, {0.3}));  // evicts (0.2, 0.2)
  EXPECT_EQ(session.cache_entries(), 2u);
  session.expectation(Angles({0.1}, {0.1}));  // still cached: was refreshed
  EXPECT_EQ(session.cache_hits(), 2u);
  EXPECT_EQ(session.cache_misses(), 3u);
}

TEST(Session, ObjectiveDrivesOptimizerThroughBackend) {
  const Workload w = Workload::maxcut(cycle_graph(4));
  Session session(w, "statevector");
  auto objective = session.objective();
  const real at_zero = objective({0.0, 0.0});
  EXPECT_NEAR(at_zero, 2.0, 1e-9);  // <cut> of C4 in |+...+> is |E|/2
  const auto p1 = qaoa::maxcut_p1_grid_optimum(cycle_graph(4), 32);
  EXPECT_GT(objective({p1.gamma, p1.beta}), at_zero + 0.1);
  EXPECT_GT(session.cache_entries(), 0u);
}

TEST(Session, UnsupportedWorkloadThrowsWithReason) {
  const Workload w = Workload::mis(path_graph(3));
  Session clifford_session(w, "clifford");
  // MIS patterns at generic angles are not Clifford.
  Rng rng(29);
  EXPECT_THROW(clifford_session.expectation(Angles::random(1, rng)), Error);
}

TEST(Rng, StreamsAreStableAndDecorrelated) {
  Rng root(5);
  Rng a = root.stream(0);
  Rng b = root.stream(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c = root.stream(1);
  Rng d = root.stream(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c.next() == d.next());
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace mbq::api
