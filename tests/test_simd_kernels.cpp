// Runtime-dispatched SIMD collapse kernels: randomized scalar-vs-vector
// bitwise differentials on every table entry, end-to-end bit-identity of
// amplitudes / outcome streams / norm folds across every ISA this host
// can run (with a forced-scalar leg that exists on every host), and the
// MBQ_SIMD parse / reject-at-dispatch behavior.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mbq/common/cpu.h"
#include "mbq/common/error.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/collapse_kernels.h"
#include "mbq/sim/dynamic_statevector.h"

namespace mbq {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool same_fold(double a, double b) { return bits(a) == bits(b); }
bool same_bits(double a, double b) { return same_fold(a, b); }

bool same_bits(const cplx& a, const cplx& b) {
  return same_bits(a.real(), b.real()) && same_bits(a.imag(), b.imag());
}

::testing::AssertionResult buffers_bit_equal(const std::vector<cplx>& want,
                                             const std::vector<cplx>& got) {
  if (want.size() != got.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  for (std::size_t i = 0; i < want.size(); ++i)
    if (!same_bits(want[i], got[i]))
      return ::testing::AssertionFailure()
             << "amplitude " << i << ": (" << got[i].real() << ", "
             << got[i].imag() << ") != (" << want[i].real() << ", "
             << want[i].imag() << ")";
  return ::testing::AssertionSuccess();
}

/// Restores the process-global kernel table no matter how a test exits.
struct IsaGuard {
  SimdIsa saved;
  IsaGuard() : saved(active_simd_isa()) {}
  ~IsaGuard() { force_simd_isa(saved); }
};

std::vector<cplx> random_amps(Rng& rng, std::size_t n) {
  std::vector<cplx> v(n);
  for (auto& a : v)
    a = cplx{rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  return v;
}

cplx random_eff(Rng& rng, int kind_sel) {
  const double r = rng.uniform() * 2.0 - 1.0;
  const double i = rng.uniform() * 2.0 - 1.0;
  switch (kind_sel) {
    case 0: return cplx{r, 0.0};   // EffKind::Real
    case 1: return cplx{0.0, i};   // EffKind::Imag
    default: return cplx{r, i};    // EffKind::Generic
  }
}

TEST(SimdKernels, SupportedListAlwaysIncludesScalar) {
  const auto isas = supported_simd_isas();
  ASSERT_FALSE(isas.empty());
  bool has_scalar = false;
  for (SimdIsa isa : isas) {
    has_scalar |= (isa == SimdIsa::Scalar);
    const CollapseKernels* k = kernels_for_isa(isa);
    ASSERT_NE(k, nullptr) << isa_name(isa);
    EXPECT_EQ(k->isa, isa);
  }
  EXPECT_TRUE(has_scalar);
}

TEST(SimdKernels, EveryHostFlavorPassesTheSelfCheckBattery) {
  for (SimdIsa isa : supported_simd_isas())
    EXPECT_TRUE(verify_kernels(*kernels_for_isa(isa))) << isa_name(isa);
}

// Randomized per-entry differential, beyond the fixed-size dispatch
// battery: random sizes (including remainders the vector flavors must
// delegate), random masks, random effect kinds — every output amplitude
// and every returned fold compared bit-for-bit against scalar.
TEST(SimdKernels, RandomizedKernelsMatchScalarBitwise) {
  const CollapseKernels& s = scalar_kernels();
  Rng rng(20240819);
  for (SimdIsa isa : supported_simd_isas()) {
    if (isa == SimdIsa::Scalar) continue;
    const CollapseKernels& k = *kernels_for_isa(isa);
    for (int rep = 0; rep < 40; ++rep) {
      const std::size_t n = 1 + rng.uniform_index(400);
      const auto x = random_amps(rng, n);
      const double sc = rng.uniform() + 0.25;

      EXPECT_PRED2(same_fold, s.fold_norms(x.data(), n),
                   k.fold_norms(x.data(), n));
      EXPECT_PRED2(same_fold, s.fold_norms_scaled(x.data(), n, sc),
                   k.fold_norms_scaled(x.data(), n, sc));
      EXPECT_PRED2(same_fold, s.prep_total_fold(x.data(), n, sc),
                   k.prep_total_fold(x.data(), n, sc));

      auto a = x, b = x;
      EXPECT_PRED2(same_fold, s.scale_fold(a.data(), n, sc),
                   k.scale_fold(b.data(), n, sc));
      EXPECT_TRUE(buffers_bit_equal(a, b));
    }
    // Structured kernels want power-of-two registers, like the simulator.
    for (int rep = 0; rep < 30; ++rep) {
      const int nq = 1 + rng.uniform_index(8);  // 2..256 amplitudes
      const std::uint64_t dim = std::uint64_t{1} << nq;
      const auto x = random_amps(rng, dim);
      const cplx e0 = random_eff(rng, rng.uniform_index(3));
      const cplx e1 = random_eff(rng, rng.uniform_index(3));
      const int q = rng.uniform_index(nq);
      const std::uint64_t pmask = rng.uniform_index(dim);
      const double sc = rng.uniform() + 0.25;

      std::vector<cplx> oa(dim / 2), ob(dim / 2);
      EXPECT_PRED2(same_fold,
                   s.collapse_pairs(x.data(), oa.data(), dim / 2, q, e0, e1),
                   k.collapse_pairs(x.data(), ob.data(), dim / 2, q, e0, e1));
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      oa.assign(dim, cplx{});
      ob.assign(dim, cplx{});
      EXPECT_PRED2(
          same_fold,
          s.prep_collapse(x.data(), oa.data(), dim, pmask, e0, e1, sc),
          k.prep_collapse(x.data(), ob.data(), dim, pmask, e0, e1, sc));
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      s.teleport_collapse(x.data(), oa.data(), dim, q, pmask, e0, e1, sc);
      k.teleport_collapse(x.data(), ob.data(), dim, q, pmask, e0, e1, sc);
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      auto ga = x, gb = x;
      ga.resize(2 * dim);
      gb.resize(2 * dim);
      EXPECT_PRED2(same_fold, s.add_plus_cz(ga.data(), dim, pmask, sc),
                   k.add_plus_cz(gb.data(), dim, pmask, sc));
      EXPECT_TRUE(buffers_bit_equal(ga, gb));

      const std::uint64_t eq = rng.uniform_index(dim);
      const std::uint64_t par = rng.uniform_index(dim);
      const bool neg = rng.uniform_index(2) != 0;
      auto pa = x, pb = x;
      s.sign_pass(pa.data(), dim, eq, par, neg);
      k.sign_pass(pb.data(), dim, eq, par, neg);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      const std::uint64_t xmask = std::uint64_t{1} << rng.uniform_index(nq);
      pa = x;
      pb = x;
      s.pauli_swap_pass(pa.data(), dim, xmask, par, eq, neg);
      k.pauli_swap_pass(pb.data(), dim, xmask, par, eq, neg);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      std::uint64_t masks[3];
      const int count = 1 + rng.uniform_index(3);
      for (int c = 0; c < count; ++c) masks[c] = rng.uniform_index(dim);
      pa = x;
      pb = x;
      s.cz_masks_pass(pa.data(), dim, masks, count);
      k.cz_masks_pass(pb.data(), dim, masks, count);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      const cplx e = std::exp(cplx{0.0, 1.0} * (rng.uniform() * 6.0 - 3.0));
      pa = x;
      pb = x;
      s.phase_pass(pa.data(), dim, q, e);
      k.phase_pass(pb.data(), dim, q, e);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));
    }
  }
}

// A scripted DynamicStatevector run — primitive gates, every fused
// kernel, sampled and removed measurements — executed once per ISA with
// identical seeds.  Amplitudes, outcome streams, the running fold value
// AND its validity flag must match the scalar leg bit-for-bit.
struct ScriptResult {
  std::vector<int> outcomes;
  std::vector<cplx> amps;
  double fold;
  bool fold_valid;
};

ScriptResult run_script(SimdIsa isa, std::uint64_t seed) {
  force_simd_isa(isa);
  DynamicStatevector dsv;
  Rng rng(seed);
  dsv.add_wire(0);
  dsv.add_wire(1, /*plus=*/false);
  dsv.add_wire(2);
  dsv.apply_h(1);
  dsv.apply_rz(1, 0.37);
  dsv.apply_cz(0, 2);
  dsv.add_wire_plus_cz(3, 0b101);  // CZ against positions 0 and 2
  const std::uint64_t cz_masks[2] = {0b0011, 0b1100};
  dsv.apply_cz_masks(cz_masks, 2);
  dsv.apply_pauli_masks(0b0010, 0b0100, true);
  ScriptResult r;
  r.outcomes.push_back(dsv.prep_cz_measure(
      4, 0b0101, measurement_basis(MeasBasis::XY, 0.3), rng));
  r.outcomes.push_back(dsv.prep_cz_teleport_measure(
      5, 0b1000, 1, measurement_basis(MeasBasis::YZ, 0.9), rng));
  r.outcomes.push_back(
      dsv.measure_remove(2, measurement_basis(MeasBasis::X, 0.0), rng));
  dsv.normalize();
  r.amps = dsv.state_in_order(dsv.wire_order());
  r.fold = dsv.norm_fold();
  r.fold_valid = dsv.norm_fold_valid();
  return r;
}

TEST(SimdKernels, StatevectorScriptBitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const ScriptResult want = run_script(SimdIsa::Scalar, seed);
    EXPECT_TRUE(want.fold_valid);
    for (SimdIsa isa : supported_simd_isas()) {
      const ScriptResult got = run_script(isa, seed);
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(want.outcomes, got.outcomes);
      EXPECT_TRUE(buffers_bit_equal(want.amps, got.amps));
      EXPECT_PRED2(same_fold, want.fold, got.fold);
      EXPECT_EQ(want.fold_valid, got.fold_valid);
    }
  }
}

// End-to-end: compiled QAOA pattern sampling.  The sampled readouts and
// the per-shot measurement outcome streams must be identical under every
// flavor — the property the shard merge layer relies on when a fleet
// mixes hosts.  The forced-scalar leg always runs, even on hosts with
// no vector unit.
TEST(SimdKernels, SampledStreamsIdenticalAcrossIsas) {
  IsaGuard guard;
  Rng setup(5);
  const qaoa::Angles angles = qaoa::Angles::random(2, setup);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(6));
  const auto compiled = std::make_shared<const mbqc::CompiledPattern>(
      core::compile_qaoa(cost, angles).pattern);

  struct Leg {
    std::vector<std::uint64_t> xs;
    std::vector<std::vector<int>> outcomes;
  };
  auto run_leg = [&](SimdIsa isa, std::uint64_t seed) {
    force_simd_isa(isa);
    Leg leg;
    mbqc::PatternExecutor exec(compiled);
    Rng rng(seed);
    for (int shot = 0; shot < 32; ++shot) {
      leg.xs.push_back(exec.run_sample(rng).x);
      leg.outcomes.push_back(exec.last_outcomes());
    }
    return leg;
  };

  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const Leg want = run_leg(SimdIsa::Scalar, seed);
    for (SimdIsa isa : supported_simd_isas()) {
      const Leg got = run_leg(isa, seed);
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(want.xs, got.xs);
      EXPECT_EQ(want.outcomes, got.outcomes);
    }
  }
}

TEST(SimdKernels, ParseSimdIsaRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(parse_simd_isa("scalar"), SimdIsa::Scalar);
  EXPECT_EQ(parse_simd_isa("avx2"), SimdIsa::Avx2);
  EXPECT_EQ(parse_simd_isa("avx512"), SimdIsa::Avx512);
  EXPECT_EQ(parse_simd_isa("neon"), SimdIsa::Neon);
  for (SimdIsa isa :
       {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon})
    EXPECT_EQ(parse_simd_isa(isa_name(isa)), isa);
  EXPECT_THROW(parse_simd_isa("sse9"), Error);
  EXPECT_THROW(parse_simd_isa("AVX2"), Error);  // names are lowercase
  EXPECT_THROW(parse_simd_isa(""), Error);
}

TEST(SimdKernels, EnvOverrideReadsAndValidatesMbqSimd) {
  const char* old = std::getenv("MBQ_SIMD");
  const std::string saved = old ? old : "";
  ::setenv("MBQ_SIMD", "scalar", 1);
  EXPECT_EQ(simd_env_override(), SimdIsa::Scalar);
  ::setenv("MBQ_SIMD", "auto", 1);
  EXPECT_EQ(simd_env_override(), std::nullopt);
  ::setenv("MBQ_SIMD", "", 1);
  EXPECT_EQ(simd_env_override(), std::nullopt);
  ::setenv("MBQ_SIMD", "altivec", 1);
  EXPECT_THROW(simd_env_override(), Error);
  ::unsetenv("MBQ_SIMD");
  EXPECT_EQ(simd_env_override(), std::nullopt);
  if (old)
    ::setenv("MBQ_SIMD", saved.c_str(), 1);
}

TEST(SimdKernels, ForcingAnUnavailableFlavorIsRejectedAtDispatch) {
  IsaGuard guard;
  for (SimdIsa isa :
       {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon}) {
    if (kernels_for_isa(isa) == nullptr) {
      EXPECT_THROW(force_simd_isa(isa), Error) << isa_name(isa);
    } else {
      force_simd_isa(isa);
      EXPECT_EQ(active_simd_isa(), isa);
      EXPECT_EQ(kernels().isa, isa);
    }
  }
}

}  // namespace
}  // namespace mbq
