// Runtime-dispatched SIMD collapse kernels: randomized scalar-vs-vector
// bitwise differentials on every table entry, end-to-end bit-identity of
// amplitudes / outcome streams / norm folds across every ISA this host
// can run (with a forced-scalar leg that exists on every host), and the
// MBQ_SIMD parse / reject-at-dispatch behavior.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mbq/common/cpu.h"
#include "mbq/common/error.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/collapse_kernels.h"
#include "mbq/sim/collapse_threaded.h"
#include "mbq/sim/dynamic_statevector.h"

namespace mbq {
namespace {

std::uint64_t bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

bool same_fold(double a, double b) { return bits(a) == bits(b); }
bool same_bits(double a, double b) { return same_fold(a, b); }

bool same_bits(const cplx& a, const cplx& b) {
  return same_bits(a.real(), b.real()) && same_bits(a.imag(), b.imag());
}

::testing::AssertionResult buffers_bit_equal(const std::vector<cplx>& want,
                                             const std::vector<cplx>& got) {
  if (want.size() != got.size())
    return ::testing::AssertionFailure()
           << "size " << got.size() << " != " << want.size();
  for (std::size_t i = 0; i < want.size(); ++i)
    if (!same_bits(want[i], got[i]))
      return ::testing::AssertionFailure()
             << "amplitude " << i << ": (" << got[i].real() << ", "
             << got[i].imag() << ") != (" << want[i].real() << ", "
             << want[i].imag() << ")";
  return ::testing::AssertionSuccess();
}

/// Restores the process-global kernel table no matter how a test exits.
struct IsaGuard {
  SimdIsa saved;
  IsaGuard() : saved(active_simd_isa()) {}
  ~IsaGuard() { force_simd_isa(saved); }
};

std::vector<cplx> random_amps(Rng& rng, std::size_t n) {
  std::vector<cplx> v(n);
  for (auto& a : v)
    a = cplx{rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0};
  return v;
}

cplx random_eff(Rng& rng, int kind_sel) {
  const double r = rng.uniform() * 2.0 - 1.0;
  const double i = rng.uniform() * 2.0 - 1.0;
  switch (kind_sel) {
    case 0: return cplx{r, 0.0};   // EffKind::Real
    case 1: return cplx{0.0, i};   // EffKind::Imag
    default: return cplx{r, i};    // EffKind::Generic
  }
}

TEST(SimdKernels, SupportedListAlwaysIncludesScalar) {
  const auto isas = supported_simd_isas();
  ASSERT_FALSE(isas.empty());
  bool has_scalar = false;
  for (SimdIsa isa : isas) {
    has_scalar |= (isa == SimdIsa::Scalar);
    const CollapseKernels* k = kernels_for_isa(isa);
    ASSERT_NE(k, nullptr) << isa_name(isa);
    EXPECT_EQ(k->isa, isa);
  }
  EXPECT_TRUE(has_scalar);
}

TEST(SimdKernels, EveryHostFlavorPassesTheSelfCheckBattery) {
  for (SimdIsa isa : supported_simd_isas())
    EXPECT_TRUE(verify_kernels(*kernels_for_isa(isa))) << isa_name(isa);
}

// Randomized per-entry differential, beyond the fixed-size dispatch
// battery: random sizes (including remainders the vector flavors must
// delegate), random masks, random effect kinds — every output amplitude
// and every returned fold compared bit-for-bit against scalar.
TEST(SimdKernels, RandomizedKernelsMatchScalarBitwise) {
  const CollapseKernels& s = scalar_kernels();
  Rng rng(20240819);
  for (SimdIsa isa : supported_simd_isas()) {
    if (isa == SimdIsa::Scalar) continue;
    const CollapseKernels& k = *kernels_for_isa(isa);
    for (int rep = 0; rep < 40; ++rep) {
      const std::size_t n = 1 + rng.uniform_index(400);
      const auto x = random_amps(rng, n);
      const double sc = rng.uniform() + 0.25;

      EXPECT_PRED2(same_fold, s.fold_norms(x.data(), n),
                   k.fold_norms(x.data(), n));
      EXPECT_PRED2(same_fold, s.fold_norms_scaled(x.data(), n, sc),
                   k.fold_norms_scaled(x.data(), n, sc));
      EXPECT_PRED2(same_fold, s.prep_total_fold(x.data(), n, sc),
                   k.prep_total_fold(x.data(), n, sc));

      auto a = x, b = x;
      EXPECT_PRED2(same_fold, s.scale_fold(a.data(), n, sc),
                   k.scale_fold(b.data(), n, sc));
      EXPECT_TRUE(buffers_bit_equal(a, b));
    }
    // Structured kernels want power-of-two registers, like the simulator.
    for (int rep = 0; rep < 30; ++rep) {
      const int nq = 1 + rng.uniform_index(8);  // 2..256 amplitudes
      const std::uint64_t dim = std::uint64_t{1} << nq;
      const auto x = random_amps(rng, dim);
      const cplx e0 = random_eff(rng, rng.uniform_index(3));
      const cplx e1 = random_eff(rng, rng.uniform_index(3));
      const int q = rng.uniform_index(nq);
      const std::uint64_t pmask = rng.uniform_index(dim);
      const double sc = rng.uniform() + 0.25;

      std::vector<cplx> oa(dim / 2), ob(dim / 2);
      EXPECT_PRED2(same_fold,
                   s.collapse_pairs(x.data(), oa.data(), dim / 2, q, e0, e1),
                   k.collapse_pairs(x.data(), ob.data(), dim / 2, q, e0, e1));
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      oa.assign(dim, cplx{});
      ob.assign(dim, cplx{});
      EXPECT_PRED2(
          same_fold,
          s.prep_collapse(x.data(), oa.data(), dim, pmask, e0, e1, sc),
          k.prep_collapse(x.data(), ob.data(), dim, pmask, e0, e1, sc));
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      s.teleport_collapse(x.data(), oa.data(), dim, q, pmask, e0, e1, sc);
      k.teleport_collapse(x.data(), ob.data(), dim, q, pmask, e0, e1, sc);
      EXPECT_TRUE(buffers_bit_equal(oa, ob));

      auto ga = x, gb = x;
      ga.resize(2 * dim);
      gb.resize(2 * dim);
      EXPECT_PRED2(same_fold, s.add_plus_cz(ga.data(), dim, pmask, sc),
                   k.add_plus_cz(gb.data(), dim, pmask, sc));
      EXPECT_TRUE(buffers_bit_equal(ga, gb));

      const std::uint64_t eq = rng.uniform_index(dim);
      const std::uint64_t par = rng.uniform_index(dim);
      const bool neg = rng.uniform_index(2) != 0;
      auto pa = x, pb = x;
      s.sign_pass(pa.data(), dim, eq, par, neg);
      k.sign_pass(pb.data(), dim, eq, par, neg);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      const std::uint64_t xmask = std::uint64_t{1} << rng.uniform_index(nq);
      pa = x;
      pb = x;
      s.pauli_swap_pass(pa.data(), dim, xmask, par, eq, neg);
      k.pauli_swap_pass(pb.data(), dim, xmask, par, eq, neg);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      std::uint64_t masks[3];
      const int count = 1 + rng.uniform_index(3);
      for (int c = 0; c < count; ++c) masks[c] = rng.uniform_index(dim);
      pa = x;
      pb = x;
      s.cz_masks_pass(pa.data(), dim, masks, count);
      k.cz_masks_pass(pb.data(), dim, masks, count);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      const cplx e = std::exp(cplx{0.0, 1.0} * (rng.uniform() * 6.0 - 3.0));
      pa = x;
      pb = x;
      s.phase_pass(pa.data(), dim, q, e);
      k.phase_pass(pb.data(), dim, q, e);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));
    }
  }
}

// A scripted DynamicStatevector run — primitive gates, every fused
// kernel, sampled and removed measurements — executed once per ISA with
// identical seeds.  Amplitudes, outcome streams, the running fold value
// AND its validity flag must match the scalar leg bit-for-bit.
struct ScriptResult {
  std::vector<int> outcomes;
  std::vector<cplx> amps;
  double fold;
  bool fold_valid;
};

ScriptResult run_script(SimdIsa isa, std::uint64_t seed) {
  force_simd_isa(isa);
  DynamicStatevector dsv;
  Rng rng(seed);
  dsv.add_wire(0);
  dsv.add_wire(1, /*plus=*/false);
  dsv.add_wire(2);
  dsv.apply_h(1);
  dsv.apply_rz(1, 0.37);
  dsv.apply_cz(0, 2);
  dsv.add_wire_plus_cz(3, 0b101);  // CZ against positions 0 and 2
  const std::uint64_t cz_masks[2] = {0b0011, 0b1100};
  dsv.apply_cz_masks(cz_masks, 2);
  dsv.apply_pauli_masks(0b0010, 0b0100, true);
  ScriptResult r;
  r.outcomes.push_back(dsv.prep_cz_measure(
      4, 0b0101, measurement_basis(MeasBasis::XY, 0.3), rng));
  r.outcomes.push_back(dsv.prep_cz_teleport_measure(
      5, 0b1000, 1, measurement_basis(MeasBasis::YZ, 0.9), rng));
  r.outcomes.push_back(
      dsv.measure_remove(2, measurement_basis(MeasBasis::X, 0.0), rng));
  dsv.normalize();
  r.amps = dsv.state_in_order(dsv.wire_order());
  r.fold = dsv.norm_fold();
  r.fold_valid = dsv.norm_fold_valid();
  return r;
}

TEST(SimdKernels, StatevectorScriptBitIdenticalAcrossIsas) {
  IsaGuard guard;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    const ScriptResult want = run_script(SimdIsa::Scalar, seed);
    EXPECT_TRUE(want.fold_valid);
    for (SimdIsa isa : supported_simd_isas()) {
      const ScriptResult got = run_script(isa, seed);
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(want.outcomes, got.outcomes);
      EXPECT_TRUE(buffers_bit_equal(want.amps, got.amps));
      EXPECT_PRED2(same_fold, want.fold, got.fold);
      EXPECT_EQ(want.fold_valid, got.fold_valid);
    }
  }
}

// End-to-end: compiled QAOA pattern sampling.  The sampled readouts and
// the per-shot measurement outcome streams must be identical under every
// flavor — the property the shard merge layer relies on when a fleet
// mixes hosts.  The forced-scalar leg always runs, even on hosts with
// no vector unit.
TEST(SimdKernels, SampledStreamsIdenticalAcrossIsas) {
  IsaGuard guard;
  Rng setup(5);
  const qaoa::Angles angles = qaoa::Angles::random(2, setup);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(6));
  const auto compiled = std::make_shared<const mbqc::CompiledPattern>(
      core::compile_qaoa(cost, angles).pattern);

  struct Leg {
    std::vector<std::uint64_t> xs;
    std::vector<std::vector<int>> outcomes;
  };
  auto run_leg = [&](SimdIsa isa, std::uint64_t seed) {
    force_simd_isa(isa);
    Leg leg;
    mbqc::PatternExecutor exec(compiled);
    Rng rng(seed);
    for (int shot = 0; shot < 32; ++shot) {
      leg.xs.push_back(exec.run_sample(rng).x);
      leg.outcomes.push_back(exec.last_outcomes());
    }
    return leg;
  };

  for (std::uint64_t seed : {101u, 202u, 303u}) {
    const Leg want = run_leg(SimdIsa::Scalar, seed);
    for (SimdIsa isa : supported_simd_isas()) {
      const Leg got = run_leg(isa, seed);
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " seed=" + std::to_string(seed));
      EXPECT_EQ(want.xs, got.xs);
      EXPECT_EQ(want.outcomes, got.outcomes);
    }
  }
}

TEST(SimdKernels, ParseSimdIsaRoundTripsAndRejectsGarbage) {
  EXPECT_EQ(parse_simd_isa("scalar"), SimdIsa::Scalar);
  EXPECT_EQ(parse_simd_isa("avx2"), SimdIsa::Avx2);
  EXPECT_EQ(parse_simd_isa("avx512"), SimdIsa::Avx512);
  EXPECT_EQ(parse_simd_isa("neon"), SimdIsa::Neon);
  for (SimdIsa isa :
       {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon})
    EXPECT_EQ(parse_simd_isa(isa_name(isa)), isa);
  EXPECT_THROW(parse_simd_isa("sse9"), Error);
  EXPECT_THROW(parse_simd_isa("AVX2"), Error);  // names are lowercase
  EXPECT_THROW(parse_simd_isa(""), Error);
}

TEST(SimdKernels, EnvOverrideReadsAndValidatesMbqSimd) {
  const char* old = std::getenv("MBQ_SIMD");
  const std::string saved = old ? old : "";
  ::setenv("MBQ_SIMD", "scalar", 1);
  EXPECT_EQ(simd_env_override(), SimdIsa::Scalar);
  ::setenv("MBQ_SIMD", "auto", 1);
  EXPECT_EQ(simd_env_override(), std::nullopt);
  ::setenv("MBQ_SIMD", "", 1);
  EXPECT_EQ(simd_env_override(), std::nullopt);
  ::setenv("MBQ_SIMD", "altivec", 1);
  EXPECT_THROW(simd_env_override(), Error);
  ::unsetenv("MBQ_SIMD");
  EXPECT_EQ(simd_env_override(), std::nullopt);
  if (old)
    ::setenv("MBQ_SIMD", saved.c_str(), 1);
}

// --- ranged chunk-driver entries ---------------------------------------
// The three *_range entries exist solely for the chunked drivers; they
// get the same treatment as every other table slot: randomized
// ISA-vs-scalar bitwise differentials, plus a scalar consistency check
// that concatenated slices reproduce the full pass.
TEST(SimdKernels, RandomizedRangedKernelsMatchScalarBitwise) {
  const CollapseKernels& s = scalar_kernels();
  Rng rng(20250809);
  for (SimdIsa isa : supported_simd_isas()) {
    const CollapseKernels& k = *kernels_for_isa(isa);
    for (int rep = 0; rep < 25; ++rep) {
      const int nq = 3 + rng.uniform_index(6);  // 8..256 amplitudes
      const std::uint64_t dim = std::uint64_t{1} << nq;
      const std::uint64_t ranks = dim / 2;
      const auto x = random_amps(rng, dim);
      const cplx e0 = random_eff(rng, rng.uniform_index(3));
      const cplx e1 = random_eff(rng, rng.uniform_index(3));
      const double sc = rng.uniform() + 0.25;
      const int q = rng.uniform_index(nq);
      // teleport pmask may not involve the measured wire or above.
      const std::uint64_t pmask =
          rng.uniform_index(dim) & ~((std::uint64_t{2} << q) - 1);

      // teleport_collapse_range: identical slice writes and STORED folds.
      const std::uint64_t r0 = rng.uniform_index(ranks);
      const std::uint64_t r1 = r0 + 1 + rng.uniform_index(ranks - r0);
      auto oa = random_amps(rng, dim);
      auto ob = oa;
      double la = 0, ha = 0, lb = 1, hb = 1;  // differing seeds: must be stored
      s.teleport_collapse_range(x.data(), oa.data(), dim, q, pmask, e0, e1,
                                sc, r0, r1, &la, &ha);
      k.teleport_collapse_range(x.data(), ob.data(), dim, q, pmask, e0, e1,
                                sc, r0, r1, &lb, &hb);
      EXPECT_TRUE(buffers_bit_equal(oa, ob));
      EXPECT_PRED2(same_fold, la, lb);
      EXPECT_PRED2(same_fold, ha, hb);

      // Scalar consistency: two covering slices == the full pass.
      std::vector<cplx> full(dim), sliced(dim);
      s.teleport_collapse(x.data(), full.data(), dim, q, pmask, e0, e1, sc);
      const std::uint64_t mid = ranks / 2;
      double f0, f1, f2, f3;
      s.teleport_collapse_range(x.data(), sliced.data(), dim, q, pmask, e0,
                                e1, sc, 0, mid, &f0, &f1);
      s.teleport_collapse_range(x.data(), sliced.data(), dim, q, pmask, e0,
                                e1, sc, mid, ranks, &f2, &f3);
      EXPECT_TRUE(buffers_bit_equal(full, sliced));

      // mirror_cz_range (upper half of add_plus_cz, lower half already
      // scaled by the caller).
      auto ga = random_amps(rng, 2 * dim);
      auto gb = ga;
      const std::uint64_t i0 = rng.uniform_index(dim);
      const std::uint64_t i1 = i0 + 1 + rng.uniform_index(dim - i0);
      const std::uint64_t gmask = rng.uniform_index(dim);
      EXPECT_PRED2(same_fold,
                   s.mirror_cz_range(ga.data(), dim, i0, i1, gmask),
                   k.mirror_cz_range(gb.data(), dim, i0, i1, gmask));
      EXPECT_TRUE(buffers_bit_equal(ga, gb));

      // pauli_swap_range over pair ranks of the top xmask bit.
      const std::uint64_t xmask = std::uint64_t{1} << rng.uniform_index(nq);
      const std::uint64_t zmask = rng.uniform_index(dim);
      const std::uint64_t eq = rng.uniform_index(dim);
      const bool neg = rng.uniform_index(2) != 0;
      const std::uint64_t p0 = rng.uniform_index(ranks);
      const std::uint64_t p1 = p0 + 1 + rng.uniform_index(ranks - p0);
      auto pa = x, pb = x;
      s.pauli_swap_range(pa.data(), xmask, zmask, eq, neg, p0, p1);
      k.pauli_swap_range(pb.data(), xmask, zmask, eq, neg, p0, p1);
      EXPECT_TRUE(buffers_bit_equal(pa, pb));

      // Scalar consistency: covering rank slices == the full pass.
      auto pf = x, ps = x;
      s.pauli_swap_pass(pf.data(), dim, xmask, zmask, eq, neg);
      s.pauli_swap_range(ps.data(), xmask, zmask, eq, neg, 0, mid);
      s.pauli_swap_range(ps.data(), xmask, zmask, eq, neg, mid, ranks);
      EXPECT_TRUE(buffers_bit_equal(pf, ps));
    }
  }
}

// --- chunked / threaded drivers ----------------------------------------

/// Restores the process-global kernel thread count no matter how a test
/// exits (0 = re-resolve from the environment on next use).
struct ThreadGuard {
  int saved;
  ThreadGuard() : saved(thr::kernel_threads()) {}
  ~ThreadGuard() { thr::set_kernel_threads(saved); }
};

TEST(SimdKernels, KernelThreadsKnobResolvesOverrideAndEnv) {
  ThreadGuard guard;
  const char* old = std::getenv("MBQ_KERNEL_THREADS");
  const std::string saved = old ? old : "";

  thr::set_kernel_threads(3);
  EXPECT_EQ(thr::kernel_threads(), 3);

  ::setenv("MBQ_KERNEL_THREADS", "5", 1);
  thr::set_kernel_threads(0);  // back to env resolution
  EXPECT_EQ(thr::kernel_threads(), 5);

  ::setenv("MBQ_KERNEL_THREADS", "auto", 1);
  thr::set_kernel_threads(0);
  EXPECT_GE(thr::kernel_threads(), 1);

  for (const char* bad : {"0", "-2", "4097", "two", "2x"}) {
    ::setenv("MBQ_KERNEL_THREADS", bad, 1);
    thr::set_kernel_threads(0);
    EXPECT_THROW(thr::kernel_threads(), Error) << bad;
  }

  // An explicit override wins without consulting the (invalid) env.
  thr::set_kernel_threads(2);
  EXPECT_EQ(thr::kernel_threads(), 2);

  if (old)
    ::setenv("MBQ_KERNEL_THREADS", saved.c_str(), 1);
  else
    ::unsetenv("MBQ_KERNEL_THREADS");
}

// Every thr:: driver at the chunk cutoff, for every host flavor, at
// thread counts {1, 2, 8}: bit-identical to the scalar single-threaded
// leg.  This is the public-API face of the dispatch-time driver battery.
TEST(SimdKernels, ChunkedDriversBitIdenticalAcrossThreadCounts) {
  constexpr std::uint64_t dim = thr::kChunkCutoffDim;
  Rng rng(77);
  const auto x = random_amps(rng, 2 * dim);
  const cplx e0{0.6, -0.8}, e1{0.0, 0.7071067811865476};
  const double sc = 0.8125;
  const std::uint64_t pmask = 0x2BULL | (0x5ULL << 12);
  const std::uint64_t cz_masks[3] = {0x3, (1ULL << 13) | 0x18, 1ULL << 12};

  struct Results {
    std::vector<double> folds;
    std::vector<cplx> amps;
  };
  auto run = [&](const CollapseKernels& k, int t) {
    Results r;
    r.folds.push_back(thr::fold_norms(k, x.data(), 2 * dim, t));
    r.folds.push_back(thr::prep_total_fold(k, x.data(), dim, sc, t));

    auto sca = x;
    r.folds.push_back(thr::scale_fold(k, sca.data(), 2 * dim, sc, t));
    r.amps.insert(r.amps.end(), sca.begin(), sca.end());

    std::vector<cplx> out(dim);
    for (int q : {0, 13, 14}) {
      const auto f = thr::collapse_pairs_with_total(k, x.data(), out.data(),
                                                    dim, q, e0, e1, t);
      r.folds.push_back(f.total);
      r.folds.push_back(f.proj);
      r.amps.insert(r.amps.end(), out.begin(), out.end());
    }

    const auto fp = thr::prep_collapse_with_total(k, x.data(), out.data(),
                                                  dim, pmask, e0, e1, sc, t);
    r.folds.push_back(fp.total);
    r.folds.push_back(fp.proj);
    r.amps.insert(r.amps.end(), out.begin(), out.end());

    for (int q : {2, 13}) {
      const std::uint64_t tp = pmask & ~((std::uint64_t{2} << q) - 1);
      r.folds.push_back(thr::teleport_collapse_fold(
          k, x.data(), out.data(), dim, q, tp, e0, e1, sc, t));
      r.amps.insert(r.amps.end(), out.begin(), out.end());
    }

    auto gad = x;
    gad.resize(2 * dim);
    r.folds.push_back(
        thr::add_plus_cz(k, gad.data(), dim, pmask, sc, t));
    r.amps.insert(r.amps.end(), gad.begin(), gad.end());

    auto p = x;
    thr::sign_pass(k, p.data(), 2 * dim, (1ULL << 13) | 0x6,
                   (1ULL << 12) | 0x5, true, t);
    thr::cz_masks_pass(k, p.data(), 2 * dim, cz_masks, 3, t);
    thr::pauli_swap_pass(k, p.data(), 2 * dim, 1ULL << 13, pmask,
                         (1ULL << 14) | 0x3, false, t);
    thr::phase_pass(k, p.data(), 2 * dim, 13, e0, t);
    r.amps.insert(r.amps.end(), p.begin(), p.end());
    return r;
  };

  const Results want = run(scalar_kernels(), 1);
  for (SimdIsa isa : supported_simd_isas()) {
    const CollapseKernels& k = *kernels_for_isa(isa);
    for (int t : {1, 2, 8}) {
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " threads=" + std::to_string(t));
      const Results got = run(k, t);
      ASSERT_EQ(want.folds.size(), got.folds.size());
      for (std::size_t i = 0; i < want.folds.size(); ++i)
        EXPECT_PRED2(same_fold, want.folds[i], got.folds[i]) << "fold " << i;
      EXPECT_TRUE(buffers_bit_equal(want.amps, got.amps));
    }
  }
}

// A DynamicStatevector register ABOVE the chunk cutoff (15 wires =
// 2^15 amplitudes), driven through every fused measure path, swept over
// ISA flavors AND kernel thread counts: outcome streams, amplitudes and
// the running fold must all match the scalar single-threaded leg
// bit-for-bit — the large-n face of the determinism contract.
ScriptResult run_big_script(SimdIsa isa, int threads, std::uint64_t seed) {
  force_simd_isa(isa);
  thr::set_kernel_threads(threads);
  DynamicStatevector dsv;
  Rng rng(seed);
  for (int w = 0; w < 15; ++w) dsv.add_wire(w);
  const std::uint64_t cz_masks[2] = {(1ULL << 14) | 0x3, 0b110000};
  dsv.apply_cz_masks(cz_masks, 2);
  dsv.apply_rz(5, 0.37);
  dsv.apply_rz(13, -1.1);
  dsv.apply_pauli_masks(1ULL << 3, 1ULL << 9, false);
  ScriptResult r;
  r.outcomes.push_back(dsv.prep_cz_measure(
      15, 0b101000000000101, measurement_basis(MeasBasis::XY, 0.3), rng));
  r.outcomes.push_back(dsv.prep_cz_teleport_measure(
      16, 0b1000000000010, 4, measurement_basis(MeasBasis::YZ, 0.9), rng));
  dsv.apply_h(2);  // invalidates the fold: next measure re-folds fused
  r.outcomes.push_back(
      dsv.measure_remove(2, measurement_basis(MeasBasis::X, 0.0), rng));
  r.outcomes.push_back(
      dsv.measure_remove(7, measurement_basis(MeasBasis::XY, -0.4), rng));
  dsv.normalize();
  r.amps = dsv.state_in_order(dsv.wire_order());
  r.fold = dsv.norm_fold();
  r.fold_valid = dsv.norm_fold_valid();
  return r;
}

TEST(SimdKernels, LargeRegisterBitIdenticalAcrossThreadsAndIsas) {
  IsaGuard isa_guard;
  ThreadGuard thread_guard;
  const ScriptResult want = run_big_script(SimdIsa::Scalar, 1, 99);
  EXPECT_TRUE(want.fold_valid);
  for (SimdIsa isa : supported_simd_isas()) {
    for (int t : {1, 2, 8}) {
      const ScriptResult got = run_big_script(isa, t, 99);
      SCOPED_TRACE(std::string("isa=") + isa_name(isa) +
                   " threads=" + std::to_string(t));
      EXPECT_EQ(want.outcomes, got.outcomes);
      EXPECT_TRUE(buffers_bit_equal(want.amps, got.amps));
      EXPECT_PRED2(same_fold, want.fold, got.fold);
      EXPECT_EQ(want.fold_valid, got.fold_valid);
    }
  }
}

TEST(SimdKernels, ForcingAnUnavailableFlavorIsRejectedAtDispatch) {
  IsaGuard guard;
  for (SimdIsa isa :
       {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon}) {
    if (kernels_for_isa(isa) == nullptr) {
      EXPECT_THROW(force_simd_isa(isa), Error) << isa_name(isa);
    } else {
      force_simd_isa(isa);
      EXPECT_EQ(active_simd_isa(), isa);
      EXPECT_EQ(kernels().isa, isa);
    }
  }
}

}  // namespace
}  // namespace mbq
