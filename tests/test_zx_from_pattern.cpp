// Whole-stack cross-validation: a pattern rendered as a ZX diagram (the
// all-zero branch) must evaluate — by pure tensor contraction, no
// simulator — to the same state the measurement-calculus runner produces
// on that branch.  This ties together the ZX semantics, the pattern
// semantics, and the compiler, exactly the correspondence the paper's
// derivations rely on.

#include <gtest/gtest.h>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/tensor.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/zx/from_pattern.h"
#include "mbq/zx/simplify.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

/// Output state of the all-raw-zero branch from the runner.
std::vector<cplx> zero_branch_state(const mbqc::Pattern& p) {
  mbqc::RunOptions opt;
  opt.forced.assign(p.num_measurements(), 0);
  Rng rng(0);
  return mbqc::run(p, rng, opt).output_state;
}

void expect_diagram_matches_runner(const mbqc::Pattern& p) {
  const Diagram d = diagram_from_pattern(p);
  const Matrix m = evaluate_matrix(d);
  ASSERT_EQ(m.cols(), 1u);
  std::vector<cplx> zx_state(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) zx_state[i] = m(i, 0);
  const auto runner_state = zero_branch_state(p);
  ASSERT_EQ(zx_state.size(), runner_state.size());
  EXPECT_NEAR(fidelity(zx_state, runner_state), 1.0, 1e-9);
}

TEST(FromPattern, SingleJGadget) {
  mbqc::Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_entangle(0, 1);
  const signal_t m = p.add_measure(0, MeasBasis::XY, -0.8);
  p.add_correct_x(1, SignalExpr(m));
  p.set_outputs({1});
  expect_diagram_matches_runner(p);
}

TEST(FromPattern, YZGadget) {
  mbqc::Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 2);
  p.add_entangle(1, 2);
  const signal_t m = p.add_measure(2, MeasBasis::YZ, 1.3);
  p.add_correct_z(0, SignalExpr(m));
  p.add_correct_z(1, SignalExpr(m));
  p.set_outputs({0, 1});
  expect_diagram_matches_runner(p);
}

TEST(FromPattern, CompiledQaoaPatterns) {
  Rng rng(3);
  for (const Graph& g : {path_graph(3), complete_graph(3)}) {
    const auto cost = qaoa::CostHamiltonian::maxcut(g);
    for (int p : {1, 2}) {
      const auto cp = core::compile_qaoa(cost, qaoa::Angles::random(p, rng));
      expect_diagram_matches_runner(cp.pattern);
    }
  }
}

TEST(FromPattern, QuboWithLinearTerms) {
  Rng rng(4);
  const auto cost = qaoa::CostHamiltonian::qubo(
      3, {0.5, -0.7, 0.2}, {{{0, 1}, 1.0}, {{1, 2}, -0.4}}, 0.0);
  const auto cp = core::compile_qaoa(cost, qaoa::Angles::random(1, rng));
  expect_diagram_matches_runner(cp.pattern);
}

TEST(FromPattern, GenericTranslationPatterns) {
  Rng rng(5);
  Circuit c(2);
  c.h(0).rz(0, 0.4).cz(0, 1).rx(1, -0.9);
  const mbqc::Pattern p = mbqc::pattern_from_circuit(c, /*plus=*/true);
  expect_diagram_matches_runner(p);
}

TEST(FromPattern, DiagramIsGraphLikeAfterSimplify) {
  // The pattern diagram simplifies to graph-like form — the "pattern =
  // graph state + measurements" reading of Sec. II-B.
  Rng rng(6);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(3));
  const auto cp = core::compile_qaoa(cost, qaoa::Angles::random(1, rng));
  Diagram d = diagram_from_pattern(cp.pattern);
  const Diagram before = d;
  to_graph_like(d);
  EXPECT_TRUE(is_graph_like(d));
  EXPECT_NEAR(
      Tensor::proportionality_distance(evaluate(before), evaluate(d)), 0.0,
      1e-8);
}

TEST(FromPattern, RejectsOpenInputs) {
  mbqc::Pattern p;
  p.add_input(0);
  p.set_outputs({0});
  EXPECT_THROW(diagram_from_pattern(p), Error);
}

}  // namespace
}  // namespace mbq::zx
