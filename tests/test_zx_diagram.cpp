// Unit tests for the ZX diagram structure and tensor evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/sim/statevector.h"
#include "mbq/zx/builder.h"
#include "mbq/zx/diagram.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

TEST(Diagram, BasicStructure) {
  Diagram d;
  const int a = d.add_z(0.5);
  const int b = d.add_x(-0.5);
  const int e = d.add_edge(a, b);
  EXPECT_EQ(d.num_nodes(), 2);
  EXPECT_EQ(d.num_edges(), 1);
  EXPECT_EQ(d.other_end(e, a), b);
  EXPECT_EQ(d.degree(a), 1);
  d.remove_node(b);
  EXPECT_EQ(d.num_nodes(), 1);
  EXPECT_EQ(d.num_edges(), 0);
  EXPECT_FALSE(d.edge_alive(e));
  EXPECT_THROW(d.other_end(e, a), Error);
}

TEST(Diagram, SelfLoopDegree) {
  Diagram d;
  const int a = d.add_z(0.0);
  d.add_edge(a, a);
  EXPECT_EQ(d.degree(a), 2);
  EXPECT_TRUE(d.is_self_loop(d.incident_edges(a)[0]));
}

TEST(Diagram, ValidateCatchesBadBoundary) {
  Diagram d;
  const int in = d.add_input();
  (void)in;
  EXPECT_THROW(d.validate(), Error);  // boundary with degree 0
}

TEST(Diagram, ParallelEdges) {
  Diagram d;
  const int a = d.add_z(0.0);
  const int b = d.add_x(0.0);
  d.add_edge(a, b);
  d.add_edge(a, b);
  EXPECT_EQ(d.edges_between(a, b).size(), 2u);
}

// --- node tensors ---

TEST(TensorEval, ZSpiderStates) {
  // Z(0) arity-1 = sqrt(2)|+>; Z(pi) arity-1 = sqrt(2)|->.  (Eq. (3))
  const Tensor z0 = node_tensor(NodeKind::Z, 0.0, -1.0, 1);
  EXPECT_NEAR(std::abs(z0.data()[0] - cplx{1, 0}), 0, kTol);
  EXPECT_NEAR(std::abs(z0.data()[1] - cplx{1, 0}), 0, kTol);
  const Tensor zpi = node_tensor(NodeKind::Z, kPi, -1.0, 1);
  EXPECT_NEAR(std::abs(zpi.data()[1] - cplx{-1, 0}), 0, kTol);
}

TEST(TensorEval, XSpiderStates) {
  // X(0) arity-1 = sqrt(2)|0>; X(pi) arity-1 = sqrt(2)|1>.  (Eq. (3))
  const real s = std::sqrt(2.0);
  const Tensor x0 = node_tensor(NodeKind::X, 0.0, -1.0, 1);
  EXPECT_NEAR(std::abs(x0.data()[0] - cplx{s, 0}), 0, kTol);
  EXPECT_NEAR(std::abs(x0.data()[1]), 0, kTol);
  const Tensor xpi = node_tensor(NodeKind::X, kPi, -1.0, 1);
  EXPECT_NEAR(std::abs(xpi.data()[0]), 0, kTol);
  EXPECT_NEAR(std::abs(xpi.data()[1] - cplx{s, 0}), 0, kTol);
}

TEST(TensorEval, HBoxIsSqrt2H) {
  const Tensor h = node_tensor(NodeKind::HBox, 0.0, -1.0, 2);
  const real s = std::sqrt(2.0);
  const Matrix hm = gates::h();
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      EXPECT_NEAR(std::abs(h.data()[i + 2 * j] - s * hm(i, j)), 0, kTol);
}

// --- circuit -> diagram exactness ---

TEST(TensorEval, WireIsIdentity) {
  Circuit c(1);
  const Diagram d = from_circuit(c);
  EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(d), Matrix::identity(2)));
}

TEST(TensorEval, SingleGatesExact) {
  for (auto build : {+[](Circuit& c) { c.h(0); },
                     +[](Circuit& c) { c.rz(0, 0.37); },
                     +[](Circuit& c) { c.rx(0, -0.91); },
                     +[](Circuit& c) { c.x(0); }, +[](Circuit& c) { c.y(0); },
                     +[](Circuit& c) { c.z(0); }, +[](Circuit& c) { c.s(0); },
                     +[](Circuit& c) { c.t(0); }}) {
    Circuit c(1);
    build(c);
    const Diagram d = from_circuit(c);
    EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(d), c.unitary(), 1e-9))
        << c.str();
  }
}

TEST(TensorEval, TwoQubitGatesExact) {
  {
    Circuit c(2);
    c.cz(0, 1);
    EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(from_circuit(c)),
                                     c.unitary(), 1e-9));
  }
  {
    Circuit c(2);
    c.cx(0, 1);
    EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(from_circuit(c)),
                                     c.unitary(), 1e-9));
  }
}

TEST(TensorEval, PhaseGadgetExact) {
  for (int k = 1; k <= 3; ++k) {
    Circuit c(k);
    std::vector<int> support;
    for (int q = 0; q < k; ++q) support.push_back(q);
    c.phase_gadget(support, 0.73);
    EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(from_circuit(c)),
                                     c.unitary(), 1e-9))
        << "k=" << k;
  }
}

TEST(TensorEval, RandomCircuitExact) {
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniform_index(2));
    Circuit c(n);
    for (int step = 0; step < 10; ++step) {
      const int q = static_cast<int>(rng.uniform_index(n));
      int r = static_cast<int>(rng.uniform_index(n));
      if (r == q) r = (r + 1) % n;
      switch (rng.uniform_index(6)) {
        case 0: c.h(q); break;
        case 1: c.rz(q, rng.angle()); break;
        case 2: c.rx(q, rng.angle()); break;
        case 3: c.cz(q, r); break;
        case 4: c.cx(q, r); break;
        case 5: c.phase_gadget({q, r}, rng.angle()); break;
      }
    }
    EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(from_circuit(c)),
                                     c.unitary(), 1e-8))
        << "trial " << trial;
  }
}

TEST(TensorEval, CircuitOnPlusMatchesState) {
  Rng rng(22);
  Circuit c(3);
  c.rz(0, 0.4).cz(0, 1).rx(1, 0.9).cx(1, 2).t(2);
  const Diagram d = from_circuit_on_plus(c);
  EXPECT_TRUE(d.inputs().empty());
  Statevector sv = Statevector::all_plus(3);
  c.apply_to(sv);
  const Matrix m = evaluate_matrix(d);  // 8 x 1 column
  ASSERT_EQ(m.rows(), 8u);
  ASSERT_EQ(m.cols(), 1u);
  std::vector<cplx> amps(8);
  for (std::size_t i = 0; i < 8; ++i) amps[i] = m(i, 0);
  EXPECT_NEAR(fidelity(amps, sv.amplitudes()), 1.0, 1e-9);
  // Exact, including normalization:
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(amps[i] - sv.amplitudes()[i]), 0.0, 1e-9);
}

TEST(TensorEval, GraphStateDiagramMatchesStabilizerConstruction) {
  // Eq. (5): the diagram of |G> for the square graph.
  const Graph g = cycle_graph(4);
  const Diagram d = graph_state_diagram(g);
  const Matrix m = evaluate_matrix(d);
  // Reference via statevector.
  Statevector sv = Statevector::all_plus(4);
  for (const Edge& e : g.edges()) sv.apply_cz(e.u, e.v);
  std::vector<cplx> amps(16);
  for (std::size_t i = 0; i < 16; ++i) amps[i] = m(i, 0);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(std::abs(amps[i] - sv.amplitudes()[i]), 0.0, 1e-9);
}

TEST(TensorEval, RejectsSelfLoop) {
  Diagram d;
  const int a = d.add_z(0.0);
  d.add_edge(a, a);
  const int out = d.add_output();
  d.add_edge(a, out);
  EXPECT_THROW(evaluate(d), Error);
}

TEST(TensorEval, BareWire) {
  // input connected directly to output.
  Diagram d;
  const int in = d.add_input();
  const int out = d.add_output();
  d.add_edge(in, out);
  EXPECT_TRUE(Matrix::approx_equal(evaluate_matrix(d), Matrix::identity(2)));
}

TEST(TensorEval, ScalarDiagram) {
  // A lone Z(theta) spider of arity 0 evaluates to 1 + e^{i theta}.
  Diagram d;
  d.add_z(0.8);
  const Tensor t = evaluate(d);
  EXPECT_EQ(t.rank(), 0);
  EXPECT_NEAR(std::abs(t.data()[0] - (cplx{1, 0} + std::exp(kI * 0.8))), 0,
              kTol);
}

}  // namespace
}  // namespace mbq::zx
