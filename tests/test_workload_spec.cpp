// The declarative WorkloadSpec IR: PUBO / weighted-MIS frontends,
// declarative ParamCircuit ansätze, the entangler-noise knob, the exact
// binary codec, and — the acceptance bar — process-sharded execution of
// every serializable ansatz kind bit-identical to the in-process path
// with NO silent fallback.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/common/serialize.h"
#include "mbq/graph/generators.h"
#include "mbq/qaoa/hea.h"
#include "mbq/qaoa/mixers.h"
#include "mbq/shard/protocol.h"

namespace mbq {
namespace {

using api::AnsatzKind;
using api::SampleResult;
using api::Session;
using api::SessionOptions;
using api::Workload;
using api::WorkloadSpec;
using qaoa::Angles;
using qaoa::CostHamiltonian;
using qaoa::Param;
using qaoa::ParamCircuit;
using qaoa::PuboTerm;

SessionOptions session_options(std::uint64_t seed, int processes) {
  SessionOptions o;
  o.seed = seed;
  // Explicit at every call site: tier-1 runs under MBQ_NUM_PROCESSES=2
  // in CI, and the env default (num_processes = 0) would silently shard
  // the "in-process" half of the comparisons.
  o.num_processes = processes;
  return o;
}

void expect_same_shots(const SampleResult& got, const SampleResult& want,
                       const std::string& context) {
  ASSERT_EQ(got.shots.size(), want.shots.size()) << context;
  for (std::size_t s = 0; s < want.shots.size(); ++s) {
    EXPECT_EQ(got.shots[s].x, want.shots[s].x) << context << " shot " << s;
    EXPECT_EQ(got.shots[s].cost, want.shots[s].cost)
        << context << " shot " << s;
  }
}

/// Round-trip through the binary spec codec.
Workload round_tripped(const Workload& w) {
  return Workload::from_spec(api::parse_spec(api::serialize_spec(w.spec())));
}

/// A third-order PUBO instance: c(x) over 6 vars with monomials of order
/// 1, 2 and 3 (all coefficients exact binary fractions).
Workload third_order_pubo() {
  const std::vector<PuboTerm> terms = {
      {1.5, {0, 1, 2}}, {-2.0, {2, 3}},    {0.5, {4}},
      {0.75, {1, 3, 4}}, {1.25, {5}},      {-0.5, {0, 5}},
  };
  return Workload::pubo(6, terms, 0.25);
}

Workload weighted_mis_workload() {
  Rng rng(7);
  const Graph g = random_gnm_graph(5, 6, rng);
  return Workload::mis_weighted(g, {1.5, 0.5, 2.0, 1.0, 0.25});
}

/// The XY-mixer one-hot ansatz of examples/coloring_xy.cpp as a
/// declarative ParamCircuit (no closure anywhere).
Workload xy_declarative_workload(int p) {
  const int n = 4;  // 2 vertices x 2 colors
  std::vector<std::pair<Edge, real>> quad = {{{0, 2}, -1.0}, {{1, 3}, -1.0}};
  const auto cost =
      CostHamiltonian::qubo(n, std::vector<real>(n, 0.0), quad, 1.0);
  ParamCircuit pc(n);
  for (int q = 0; q < n; ++q) pc.h(q);
  pc.x(0).x(2);
  for (int layer = 0; layer < p; ++layer) {
    for (const auto& t : cost.terms())
      pc.phase_gadget(t.support, Param::gamma(layer, 2.0 * t.coeff));
    pc.xy_ring({0, 1}, Param::beta(layer));
    pc.xy_ring({2, 3}, Param::beta(layer));
  }
  return Workload::parameterized(cost, std::move(pc));
}

// --- CostHamiltonian frontends ----------------------------------------

TEST(PuboFrontend, MatchesBruteForceMonomials) {
  const std::vector<PuboTerm> terms = {
      {1.5, {0, 1, 2}}, {-2.0, {2, 3}}, {0.5, {4}}, {0.75, {1, 3, 4}}};
  const real constant = 0.25;
  const auto c = CostHamiltonian::pubo(5, terms, constant);
  EXPECT_EQ(c.max_order(), 3);
  for (std::uint64_t x = 0; x < 32; ++x) {
    real want = constant;
    for (const auto& t : terms) {
      real prod = t.coeff;
      for (int v : t.vars) prod *= get_bit(x, v);
      want += prod;
    }
    EXPECT_NEAR(c.evaluate(x), want, 1e-12) << "x = " << x;
  }
}

TEST(PuboFrontend, RepeatedVariablesCollapse) {
  // x_i^2 = x_i: {0,0,1} is the SAME monomial as {0,1}.
  const auto a = CostHamiltonian::pubo(2, {{1.0, {0, 0, 1}}});
  const auto b = CostHamiltonian::pubo(2, {{1.0, {0, 1}}});
  for (std::uint64_t x = 0; x < 4; ++x)
    EXPECT_NEAR(a.evaluate(x), b.evaluate(x), 1e-15);
}

TEST(PuboFrontend, ExactCancellationsDropOut) {
  // Monomials that cancel exactly must not leave zero-coefficient
  // Ising terms behind (they would inflate max_order() and compile to
  // dead gadgets).
  const auto c = CostHamiltonian::pubo(
      3, {{1.0, {0, 1, 2}}, {-1.0, {0, 1, 2}}, {0.5, {0}}});
  EXPECT_EQ(c.max_order(), 1);
  for (const auto& t : c.terms()) EXPECT_NE(t.coeff, 0.0);
  for (std::uint64_t x = 0; x < 8; ++x)
    EXPECT_NEAR(c.evaluate(x), 0.5 * get_bit(x, 0), 1e-15);
}

TEST(PuboFrontend, ValidatesInput) {
  EXPECT_THROW(CostHamiltonian::pubo(3, {{1.0, {0, 3}}}), Error);
  EXPECT_THROW(CostHamiltonian::pubo(3, {{1.0, {-1}}}), Error);
  std::vector<int> wide(17);
  for (int i = 0; i < 17; ++i) wide[i] = i;
  EXPECT_THROW(CostHamiltonian::pubo(20, {{1.0, wide}}), Error);
}

TEST(WeightedIndependentSet, EvaluatesWeightedSetSize) {
  const std::vector<real> w = {1.5, 0.5, 2.0};
  const auto c = CostHamiltonian::weighted_independent_set(w);
  for (std::uint64_t x = 0; x < 8; ++x) {
    real want = 0.0;
    for (int i = 0; i < 3; ++i) want += get_bit(x, i) * w[i];
    EXPECT_NEAR(c.evaluate(x), want, 1e-12);
  }
}

// --- input validation regressions (satellite) -------------------------

TEST(CostValidation, MaxcutWeightedRejectsWrongWeightCount) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(CostHamiltonian::maxcut_weighted(g, {1.0, 2.0}), Error);
  EXPECT_THROW(CostHamiltonian::maxcut_weighted(g, {}), Error);
  EXPECT_NO_THROW(
      CostHamiltonian::maxcut_weighted(g, {1.0, 2.0, 3.0, 4.0}));
}

TEST(CostValidation, QuboRejectsSelfEdgesDuplicatesAndOutOfRange) {
  const std::vector<real> lin(3, 0.0);
  EXPECT_THROW(CostHamiltonian::qubo(3, lin, {{{1, 1}, 1.0}}), Error);
  EXPECT_THROW(CostHamiltonian::qubo(3, lin, {{{0, 3}, 1.0}}), Error);
  EXPECT_THROW(CostHamiltonian::qubo(3, lin, {{{-1, 0}, 1.0}}), Error);
  // Duplicates (in either orientation) would silently sum coefficients.
  EXPECT_THROW(
      CostHamiltonian::qubo(3, lin, {{{0, 1}, 1.0}, {{0, 1}, 2.0}}), Error);
  EXPECT_THROW(
      CostHamiltonian::qubo(3, lin, {{{0, 1}, 1.0}, {{1, 0}, 2.0}}), Error);
  EXPECT_NO_THROW(
      CostHamiltonian::qubo(3, lin, {{{0, 1}, 1.0}, {{1, 2}, 2.0}}));
  EXPECT_THROW(CostHamiltonian::qubo(2, lin, {}), Error);  // lin size != n
}

// --- Workload accessors ------------------------------------------------

TEST(WorkloadSpecApi, AccessorsThrowDescriptivelyOnWrongKind) {
  const Workload w = Workload::maxcut(cycle_graph(3));
  try {
    w.mis_graph();
    FAIL() << "mis_graph() on a qaoa workload must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("qaoa"), std::string::npos)
        << "throw message should name the actual ansatz: " << e.what();
  }
  EXPECT_THROW(w.mis_weights(), Error);
  EXPECT_THROW(w.param_circuit(), Error);
  EXPECT_FALSE(w.has_custom_builder());

  const Workload m = weighted_mis_workload();
  EXPECT_EQ(m.mis_weights().size(), 5u);
  EXPECT_NO_THROW(m.mis_graph());
}

TEST(WorkloadSpecApi, FactoriesLowerToValidatedSpecs) {
  for (const Workload& w :
       {Workload::maxcut(cycle_graph(4)), third_order_pubo(),
        weighted_mis_workload(), xy_declarative_workload(1)}) {
    EXPECT_NO_THROW(w.spec().validate());
    EXPECT_TRUE(w.spec().serializable());
  }
  const Workload c = Workload::custom(
      CostHamiltonian::maxcut(cycle_graph(3)),
      [](const Angles&) { return Circuit(3); });
  EXPECT_FALSE(c.spec().serializable());
  EXPECT_TRUE(c.has_custom_builder());
  ByteWriter out;
  EXPECT_THROW(api::encode_spec(out, c.spec()), Error);
}

TEST(WorkloadSpecApi, FromSpecValidates) {
  WorkloadSpec bad;
  bad.kind = AnsatzKind::MisConstrained;  // no graph attached
  bad.cost = CostHamiltonian::independent_set_size(3);
  EXPECT_THROW(Workload::from_spec(bad), Error);

  WorkloadSpec mismatched;
  mismatched.kind = AnsatzKind::MisConstrained;
  mismatched.cost = CostHamiltonian::independent_set_size(3);
  mismatched.graph = std::make_shared<const Graph>(path_graph(3));
  mismatched.vertex_weights = {1.0, 2.0};  // 2 weights, 3 vertices
  EXPECT_THROW(Workload::from_spec(mismatched), Error);

  WorkloadSpec noisy;
  noisy.cost = CostHamiltonian::maxcut(cycle_graph(3));
  noisy.entangler_noise = 1.5;
  EXPECT_THROW(Workload::from_spec(noisy), Error);
}

// --- ParamCircuit ------------------------------------------------------

TEST(ParamCircuitIr, InstantiateMatchesHandBuiltCircuit) {
  ParamCircuit pc(2);
  pc.h(0).rz(1, Param::gamma(0, 2.0, 0.5)).rx(0, Param::beta(0, -1.0));
  pc.phase_gadget({0, 1}, Param::constant(0.75)).cz(0, 1);
  const Angles a({0.3}, {0.7});
  Circuit want(2);
  want.h(0).rz(1, 2.0 * 0.3 + 0.5).rx(0, -0.7);
  want.phase_gadget({0, 1}, 0.75).cz(0, 1);
  EXPECT_EQ(pc.instantiate(a).str(), want.str());
  EXPECT_EQ(pc.min_gamma(), 1);
  EXPECT_EQ(pc.min_beta(), 1);
}

TEST(ParamCircuitIr, InstantiateRejectsMissingLayers) {
  ParamCircuit pc(1);
  pc.rz(0, Param::gamma(2));
  EXPECT_EQ(pc.min_gamma(), 3);
  EXPECT_THROW(pc.instantiate(Angles({0.1}, {0.2})), Error);
  EXPECT_NO_THROW(
      pc.instantiate(Angles({0.1, 0.2, 0.3}, {0.0, 0.0, 0.0})));
}

TEST(ParamCircuitIr, AppendValidates) {
  ParamCircuit pc(2);
  EXPECT_THROW(pc.h(2), Error);
  EXPECT_THROW(pc.cz(0, 0), Error);
  EXPECT_THROW(pc.rz(0, Param::gamma(-1)), Error);
  EXPECT_THROW(pc.controlled_exp_x(0, {1}, Param::constant(0.1), 2), Error);
  EXPECT_THROW(pc.phase_gadget({}, Param::constant(0.1)), Error);
  // Canonicality: angle expressions / ctrl values on gates that have
  // none are rejected (they would break spec equal-encoding).
  EXPECT_THROW(pc.append({GateKind::H, {0}, Param::gamma(0)}), Error);
  EXPECT_THROW(pc.append({GateKind::H, {0}, Param::constant(0.0), 1}),
               Error);
}

TEST(ParamCircuitIr, HeaTemplateMatchesHeaCircuit) {
  Rng rng(3);
  const Graph coupling = path_graph(3);
  const auto params = qaoa::HeaParameters::random(2, 3, rng);
  const Circuit direct = qaoa::hea_circuit(coupling, params);
  const Circuit declarative = qaoa::hea_param_circuit(coupling, 2)
                                  .instantiate(qaoa::hea_angles(params));
  EXPECT_EQ(declarative.str(), direct.str());

  // A jagged theta — or a width that disagrees with the circuit it
  // will bind to — must throw, not silently shift the layer*n + q
  // packing.
  qaoa::HeaParameters jagged = params;
  jagged.theta[1].pop_back();
  EXPECT_THROW(qaoa::hea_angles(jagged), Error);
  EXPECT_THROW(qaoa::hea_angles(params, 4), Error);
}

TEST(ParamCircuitIr, XyRingMatchesMixerCircuit) {
  ParamCircuit pc(4);
  pc.xy_ring({0, 1, 2}, Param::beta(0));
  const real beta = 0.45;
  const Circuit want = qaoa::xy_mixer_ring(4, {0, 1, 2}, beta);
  EXPECT_EQ(pc.instantiate(Angles({0.0}, {beta})).str(), want.str());
}

TEST(ParamCircuitIr, DeclarativeWorkloadMatchesCustomClosure) {
  // The declarative XY workload and the same ansatz as a closure must be
  // indistinguishable: equal reference states, equal sampled streams.
  const Workload declarative = xy_declarative_workload(2);
  const auto cost = declarative.cost();
  const api::Workload closure = Workload::custom(
      cost, [cost](const Angles& a) {
        Circuit circ(4);
        for (int q = 0; q < 4; ++q) circ.h(q);
        circ.x(0).x(2);
        for (int layer = 0; layer < a.p(); ++layer) {
          for (const auto& t : cost.terms())
            circ.phase_gadget(t.support, 2.0 * a.gamma[layer] * t.coeff);
          circ.append(qaoa::xy_mixer_ring(4, {0, 1}, a.beta[layer]));
          circ.append(qaoa::xy_mixer_ring(4, {2, 3}, a.beta[layer]));
        }
        return circ;
      });
  const Angles a({0.4, -0.3}, {0.6, 0.2});
  const auto sv_a = declarative.reference_state(a).amplitudes();
  const auto sv_b = closure.reference_state(a).amplitudes();
  ASSERT_EQ(sv_a.size(), sv_b.size());
  for (std::size_t i = 0; i < sv_a.size(); ++i)
    EXPECT_EQ(sv_a[i], sv_b[i]) << "amplitude " << i;

  for (const char* backend : {"statevector", "mbqc"}) {
    Session sd(declarative, backend, session_options(11, 1));
    Session sc(closure, backend, session_options(11, 1));
    expect_same_shots(sd.sample(a, 24), sc.sample(a, 24), backend);
  }
}

// --- spec codec round trips -------------------------------------------

TEST(SpecCodec, RoundTripsEverySerializableKindBitExactly) {
  const Workload qaoa_w = [] {
    Workload w = Workload::maxcut(cycle_graph(5));
    w.with_linear_style(core::LinearTermStyle::FusedIntoMixer)
        .with_max_wire_degree(4)
        .with_entangler_noise(0.05);
    return w;
  }();
  const Workload pubo_w = third_order_pubo();
  const Workload mis_w = Workload::mis(path_graph(4));
  const Workload wmis_w = weighted_mis_workload();
  const Workload xy_w = xy_declarative_workload(2);
  const Workload hea_w = Workload::parameterized(
      CostHamiltonian::maxcut(path_graph(3)),
      qaoa::hea_param_circuit(path_graph(3), 2));

  for (const Workload* w :
       {&qaoa_w, &pubo_w, &mis_w, &wmis_w, &xy_w, &hea_w}) {
    const auto frame = api::serialize_spec(w->spec());
    const WorkloadSpec back = api::parse_spec(frame);
    // Bit-exact: re-encoding the decoded spec reproduces the frame.
    EXPECT_EQ(api::serialize_spec(back), frame)
        << ansatz_kind_name(w->ansatz());
    EXPECT_EQ(back.kind, w->ansatz());
    EXPECT_EQ(back.cost.num_qubits(), w->num_qubits());
    EXPECT_EQ(back.cost.constant(), w->cost().constant());
    ASSERT_EQ(back.cost.terms().size(), w->cost().terms().size());
    for (std::size_t t = 0; t < back.cost.terms().size(); ++t) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.cost.terms()[t].coeff),
                std::bit_cast<std::uint64_t>(w->cost().terms()[t].coeff));
      EXPECT_EQ(back.cost.terms()[t].support, w->cost().terms()[t].support);
    }
    EXPECT_EQ(back.linear_style, w->linear_style());
    EXPECT_EQ(back.max_wire_degree, w->max_wire_degree());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.entangler_noise),
              std::bit_cast<std::uint64_t>(w->entangler_noise()));
  }

  // Structured members survive: the MIS graph/weights and the gate list.
  const WorkloadSpec wmis_back =
      api::parse_spec(api::serialize_spec(wmis_w.spec()));
  EXPECT_EQ(*wmis_back.graph, wmis_w.mis_graph());
  EXPECT_EQ(wmis_back.vertex_weights, wmis_w.mis_weights());
  const WorkloadSpec xy_back =
      api::parse_spec(api::serialize_spec(xy_w.spec()));
  EXPECT_EQ(*xy_back.circuit, xy_w.param_circuit());
}

TEST(SpecCodec, RejectsMalformedFrames) {
  auto frame = api::serialize_spec(third_order_pubo().spec());
  auto truncated = frame;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(api::parse_spec(truncated), Error);

  auto bad_kind = frame;
  bad_kind[0] = static_cast<std::byte>(0x7F);
  EXPECT_THROW(api::parse_spec(bad_kind), Error);

  auto custom_kind = frame;
  custom_kind[0] =
      static_cast<std::byte>(AnsatzKind::CustomCircuit);
  EXPECT_THROW(api::parse_spec(custom_kind), Error);

  auto trailing = frame;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(api::parse_spec(trailing), Error);
}

TEST(SpecCodec, RoundTrippedWorkloadExecutesBitIdentically) {
  const Angles a({0.5, -0.4}, {0.3, 0.8});
  struct Case {
    Workload w;
    const char* backend;
  };
  const Case cases[] = {
      {third_order_pubo(), "statevector"},
      {third_order_pubo(), "mbqc"},
      {weighted_mis_workload(), "mbqc"},
      {xy_declarative_workload(2), "mbqc-classical"},
  };
  for (const Case& c : cases) {
    Session direct(c.w, c.backend, session_options(42, 1));
    Session decoded(round_tripped(c.w), c.backend, session_options(42, 1));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(direct.expectation(a)),
              std::bit_cast<std::uint64_t>(decoded.expectation(a)))
        << c.backend;
    expect_same_shots(decoded.sample(a, 16), direct.sample(a, 16),
                      c.backend);
  }
}

// --- frontends agree across backends ----------------------------------

TEST(Frontends, PuboAndWeightedMisAgreeAcrossBackends) {
  const Angles a({0.35}, {0.55});
  for (const Workload& w : {third_order_pubo(), weighted_mis_workload()}) {
    Session sv(w, "statevector", session_options(1, 1));
    Session mb(w, "mbqc", session_options(1, 1));
    EXPECT_NEAR(sv.expectation(a), mb.expectation(a), 1e-9)
        << ansatz_kind_name(w.ansatz());
  }
}

TEST(Frontends, WeightedMisSamplesStayIndependentSets) {
  const Workload w = weighted_mis_workload();
  Session s(w, "mbqc", session_options(5, 1));
  const SampleResult r = s.sample(Angles({0.65}, {0.85}), 64);
  for (const api::Shot& shot : r.shots) {
    EXPECT_TRUE(qaoa::is_independent_set(w.mis_graph(), shot.x));
    EXPECT_NEAR(shot.cost, w.cost().evaluate(shot.x), 1e-12);
  }
}

TEST(Frontends, AllOnesWeightsReproduceUnweightedMisExactly) {
  const Graph g = path_graph(4);
  const Angles a({0.4}, {0.9});
  Session unweighted(Workload::mis(g), "mbqc", session_options(3, 1));
  Session weighted(Workload::mis_weighted(g, {1.0, 1.0, 1.0, 1.0}), "mbqc",
                   session_options(3, 1));
  expect_same_shots(weighted.sample(a, 32), unweighted.sample(a, 32),
                    "all-ones weighted MIS");
}

// --- noise knob --------------------------------------------------------

TEST(NoiseKnob, OnlyMeasurementBackendsAcceptNoisyWorkloads) {
  Workload w = Workload::maxcut(cycle_graph(4));
  w.with_entangler_noise(0.1);
  const Angles a({0.5}, {0.3});
  for (const char* backend : {"statevector", "clifford", "zx"}) {
    Session s(w, backend, session_options(1, 1));
    EXPECT_NE(s.unsupported_reason(a), "") << backend;
    EXPECT_THROW(s.expectation(a), Error) << backend;
  }
  for (const char* backend : {"mbqc", "mbqc-classical"}) {
    Session s(w, backend, session_options(1, 1));
    EXPECT_EQ(s.unsupported_reason(a), "") << backend;
    EXPECT_NO_THROW(s.sample(a, 8)) << backend;
  }
}

TEST(NoiseKnob, RouterRoutesNoisyWorkloadsToMbqc) {
  // 6 qubits: above the router's zx tiny-instance policy, so the
  // noiseless route is statevector and the only noise difference is the
  // new capability gate.
  Workload noiseless = Workload::maxcut(cycle_graph(6));
  Workload noisy = noiseless;
  noisy.with_entangler_noise(0.1);
  const Angles a({0.5}, {0.3});  // generic (non-Clifford) angles
  api::RouterBackend router;
  EXPECT_EQ(router.route(noiseless, a).backend_name, "statevector");
  const api::RouteDecision d = router.route(noisy, a);
  EXPECT_EQ(d.backend_name, "mbqc");
  EXPECT_TRUE(router.capabilities().supports_noise);

  Session s(noisy, "router", session_options(2, 1));
  EXPECT_NO_THROW(s.sample(a, 8));

  // Cross-check mode must NOT pair two noise-capable adapters on a
  // noisy workload: each evaluates an independent stochastic
  // trajectory, so they legitimately disagree beyond any tolerance.
  api::RouterOptions cc;
  cc.candidates = {"mbqc", "mbqc-classical"};
  cc.cross_check = true;
  const api::RouterBackend checked(cc);
  const api::RouteDecision noisy_d = checked.route(noisy, a);
  EXPECT_EQ(noisy_d.backend_name, "mbqc");
  EXPECT_EQ(noisy_d.cross_check_backend, "");
  Rng rng(1);
  EXPECT_NO_THROW(checked.expectation(noisy, a, rng, nullptr));
  // Noiseless workloads keep the second adapter.
  EXPECT_EQ(checked.route(noiseless, a).cross_check_backend,
            "mbqc-classical");
}

TEST(NoiseKnob, SessionOptionAppliesAndConflictsThrow) {
  const Graph g = cycle_graph(4);
  const Angles a({0.5}, {0.3});
  SessionOptions with_noise = session_options(9, 1);
  with_noise.entangler_noise = 0.2;
  Session via_option(Workload::maxcut(g), "mbqc", with_noise);
  EXPECT_EQ(via_option.workload().entangler_noise(), 0.2);
  Session via_workload(
      Workload::maxcut(g).with_entangler_noise(0.2), "mbqc",
      session_options(9, 1));
  expect_same_shots(via_option.sample(a, 24), via_workload.sample(a, 24),
                    "option vs workload noise");

  SessionOptions conflicting = session_options(9, 1);
  conflicting.entangler_noise = 0.3;
  EXPECT_THROW(Session(Workload::maxcut(g).with_entangler_noise(0.2), "mbqc",
                       conflicting),
               Error);
  EXPECT_THROW(Workload::maxcut(g).with_entangler_noise(1.5), Error);
}

TEST(NoiseKnob, NoisySamplingIsThreadCountInvariant) {
  Workload w = Workload::maxcut(cycle_graph(4));
  w.with_entangler_noise(0.15);
  const Angles a({0.5}, {0.3});
  Session s1(w, "mbqc", session_options(13, 1));
  set_num_threads(1);
  const SampleResult serial = s1.sample(a, 32);
  set_num_threads(8);
  Session s8(w, "mbqc", session_options(13, 1));
  const SampleResult parallel = s8.sample(a, 32);
  set_num_threads(0);
  expect_same_shots(parallel, serial, "noisy thread sweep");
}

// --- capability gates --------------------------------------------------

TEST(Capabilities, MaxTermOrderGatesHigherOrderCosts) {
  // A backend bounded at order 2 must reject the third-order PUBO with a
  // reason naming the offending order; unlimited backends accept it.
  class Order2Backend final : public api::Backend {
   public:
    std::string name() const override { return "order2"; }
    api::Capabilities capabilities() const override {
      api::Capabilities caps;
      caps.max_term_order = 2;
      return caps;
    }
    real expectation(const Workload&, const Angles&, Rng&,
                     const api::Prepared*) const override {
      return 0.0;
    }
    std::uint64_t sample_one(const Workload&, const Angles&, Rng&,
                             const api::Prepared*) const override {
      return 0;
    }
  };
  const Order2Backend bounded;
  const Angles a({0.5}, {0.3});
  const std::string reason =
      bounded.unsupported_reason(third_order_pubo(), a, nullptr);
  EXPECT_NE(reason.find("order"), std::string::npos) << reason;
  EXPECT_EQ(bounded.unsupported_reason(Workload::maxcut(cycle_graph(4)), a,
                                       nullptr),
            "");
  // The built-in adapters are order-unlimited: the paper's per-term
  // gadget covers |S| > 2.
  for (const char* backend : {"statevector", "mbqc"}) {
    Session s(third_order_pubo(), backend, session_options(1, 1));
    EXPECT_EQ(s.unsupported_reason(a), "") << backend;
  }
}

// --- process sharding: the acceptance bar ------------------------------

TEST(SpecSharding, WeightedMisAndPuboShardBitIdenticallyWithNoFallback) {
  const Angles a({0.5, -0.4}, {0.3, 0.8});
  const std::vector<Angles> points = {a, Angles({0.1, 0.2}, {0.3, 0.4}),
                                      Angles({-0.7, 0.6}, {0.2, -0.1})};
  for (const Workload& w : {weighted_mis_workload(), third_order_pubo()}) {
    const std::string kind = ansatz_kind_name(w.ansatz());
    for (const char* backend : {"statevector", "mbqc"}) {
      Session serial(w, backend, session_options(21, 1));
      Session sharded(w, backend, session_options(21, 2));
      expect_same_shots(sharded.sample(a, 32), serial.sample(a, 32),
                        kind + std::string("/") + backend);
      // The acceptance criterion: the call actually crossed process
      // boundaries — no silent in-process fallback.
      EXPECT_GT(sharded.shard_workers(), 0) << kind << "/" << backend;

      const auto serial_vals = serial.expectation_batch(points);
      const auto sharded_vals = sharded.expectation_batch(points);
      ASSERT_EQ(serial_vals.size(), sharded_vals.size());
      for (std::size_t i = 0; i < serial_vals.size(); ++i)
        EXPECT_EQ(std::bit_cast<std::uint64_t>(serial_vals[i]),
                  std::bit_cast<std::uint64_t>(sharded_vals[i]))
            << kind << "/" << backend << " point " << i;
    }
  }
}

TEST(SpecSharding, DeclarativeAndNoisyWorkloadsShardToo) {
  const Angles a2({0.5, -0.4}, {0.3, 0.8});
  // The 1-layer HEA over 3 qubits reads gamma[0..2]/beta[0..2] (one slot
  // per (layer, qubit) — see hea_param_circuit).
  const Angles hea_a({0.5, -0.4, 0.2}, {0.3, 0.8, -0.6});
  Workload noisy = Workload::maxcut(cycle_graph(4));
  noisy.with_entangler_noise(0.1);
  struct Case {
    Workload w;
    const char* backend;
    Angles a;
  };
  const Case cases[] = {
      {xy_declarative_workload(2), "statevector", a2},
      {xy_declarative_workload(2), "mbqc", a2},
      {Workload::parameterized(qaoa::CostHamiltonian::maxcut(path_graph(3)),
                               qaoa::hea_param_circuit(path_graph(3), 1)),
       "mbqc", hea_a},
      {noisy, "mbqc", a2},
  };
  for (const Case& c : cases) {
    EXPECT_TRUE(shard::shardable(c.w));
    Session serial(c.w, c.backend, session_options(33, 1));
    Session sharded(c.w, c.backend, session_options(33, 2));
    expect_same_shots(sharded.sample(c.a, 24), serial.sample(c.a, 24),
                      std::string(c.backend) + "/" +
                          ansatz_kind_name(c.w.ansatz()));
    EXPECT_GT(sharded.shard_workers(), 0)
        << c.backend << "/" << ansatz_kind_name(c.w.ansatz());
  }
}

TEST(SpecSharding, OnlyCustomClosuresFallBack) {
  const auto cost = CostHamiltonian::maxcut(cycle_graph(3));
  const Workload custom = Workload::custom(cost, [](const Angles& a) {
    Circuit c(3);
    for (int q = 0; q < 3; ++q) c.rz(q, a.gamma.front());
    return c;
  });
  EXPECT_FALSE(shard::shardable(custom));
  Session s(custom, "statevector", session_options(4, 2));
  EXPECT_NO_THROW(s.sample(Angles({0.2}, {0.4}), 16));
  EXPECT_EQ(s.shard_workers(), 0) << "custom workloads must fall back";
}

// --- spec fingerprints -------------------------------------------------

TEST(SpecFingerprint, IsInvariantUnderCodecRoundTrips) {
  // The fingerprint hashes the exact codec bytes, so
  // fingerprint(decode(encode(spec))) == fingerprint(spec) for every
  // serializable ansatz — the property the daemon's warm cache needs to
  // recognize a workload that traveled through the wire protocol.
  const std::vector<Workload> workloads = {
      Workload::maxcut(cycle_graph(4)), third_order_pubo(),
      weighted_mis_workload(), xy_declarative_workload(2)};
  for (const Workload& w : workloads) {
    const std::uint64_t fp = api::spec_fingerprint(w.spec());
    EXPECT_EQ(api::spec_fingerprint(w.spec()), fp) << "not deterministic";
    EXPECT_EQ(api::spec_fingerprint(round_tripped(w).spec()), fp)
        << "round trip changed the fingerprint";
    EXPECT_EQ(api::spec_fingerprint(round_tripped(round_tripped(w)).spec()),
              fp);
  }
  // No pointer or process-lifetime dependence: an independently rebuilt
  // equal workload fingerprints equal.
  EXPECT_EQ(api::spec_fingerprint(Workload::maxcut(cycle_graph(4)).spec()),
            api::spec_fingerprint(workloads[0].spec()));
}

TEST(SpecFingerprint, DistinguishesWhatTheCodecDistinguishes) {
  const std::vector<Workload> distinct = {
      Workload::maxcut(cycle_graph(4)),
      Workload::maxcut(cycle_graph(5)),        // different graph
      Workload::maxcut(path_graph(4)),         // same size, different edges
      third_order_pubo(),
      weighted_mis_workload(),
      xy_declarative_workload(1),
      xy_declarative_workload(2),              // different layer count
  };
  for (std::size_t i = 0; i < distinct.size(); ++i)
    for (std::size_t j = i + 1; j < distinct.size(); ++j)
      EXPECT_NE(api::spec_fingerprint(distinct[i].spec()),
                api::spec_fingerprint(distinct[j].spec()))
          << "workloads " << i << " and " << j << " collide";

  // The noise knob is part of the identity: a recompile-relevant field.
  Workload noisy = Workload::maxcut(cycle_graph(4));
  const std::uint64_t clean_fp = api::spec_fingerprint(noisy.spec());
  noisy.with_entangler_noise(0.125);
  EXPECT_NE(api::spec_fingerprint(noisy.spec()), clean_fp);
}

TEST(SpecFingerprint, CustomCircuitsThrowInsteadOfLying) {
  const Workload c = Workload::custom(
      CostHamiltonian::maxcut(cycle_graph(3)),
      [](const Angles&) { return Circuit(3); });
  EXPECT_THROW(api::spec_fingerprint(c.spec()), Error);
}

TEST(SpecFingerprint, Fnv1a64MatchesThePublishedVectors) {
  const auto hash = [](std::string_view s) {
    return api::fnv1a64(std::as_bytes(std::span<const char>(s.data(),
                                                            s.size())));
  };
  // Reference values of the standard FNV-1a 64 parameters.
  EXPECT_EQ(hash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(hash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash("foobar"), 0x85944171f73967e8ULL);
  // Seed chaining: hashing "ab" equals hashing "b" seeded with hash("a").
  EXPECT_EQ(hash("ab"),
            api::fnv1a64(std::as_bytes(std::span<const char>("b", 1)),
                         hash("a")));
}

}  // namespace
}  // namespace mbq
