// Parameterized property sweeps (TEST_P): the core invariants checked
// systematically across graph families, depths, gates, angles and seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "mbq/api/api.h"
#include "mbq/common/bits.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/statevector.h"
#include "mbq/speccomp/speccomp.h"
#include "mbq/stab/tableau.h"
#include "mbq/zx/builder.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq {
namespace {

Graph make_family(const std::string& family, int n, Rng& rng) {
  if (family == "path") return path_graph(n);
  if (family == "cycle") return cycle_graph(n);
  if (family == "complete") return complete_graph(n);
  if (family == "star") return star_graph(n);
  if (family == "gnm") return random_gnm_graph(n, std::min(2 * n, n * (n - 1) / 2), rng);
  throw Error("unknown family " + family);
}

// ---------------------------------------------------------------------
// Sweep 1: MBQC-QAOA == gate-model QAOA over (family, p).

using FamilyDepth = std::tuple<std::string, int>;

class EquivalenceSweep : public ::testing::TestWithParam<FamilyDepth> {};

TEST_P(EquivalenceSweep, PatternReproducesQaoaState) {
  const auto [family, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(p) * 101 + family.size());
  const Graph g = make_family(family, 4, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(p, rng);
  const auto cp = core::compile_qaoa(cost, a);
  const auto expect = qaoa::qaoa_state(cost, a);
  Rng run_rng(p);
  for (int i = 0; i < 2; ++i) {
    const auto r = mbqc::run(cp.pattern, run_rng);
    ASSERT_NEAR(fidelity(r.output_state, expect.amplitudes()), 1.0, 1e-9);
  }
  // Determinism certificate.
  const auto og = mbqc::open_graph_from_pattern(cp.pattern);
  const auto gf = mbqc::find_gflow(og);
  ASSERT_TRUE(gf.has_value());
  EXPECT_TRUE(mbqc::verify_gflow(og, *gf));
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndDepths, EquivalenceSweep,
    ::testing::Combine(::testing::Values("path", "cycle", "complete", "star",
                                         "gnm"),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<FamilyDepth>& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: the ZZ gadget across a dense angle grid, every branch.

class GadgetAngleSweep : public ::testing::TestWithParam<int> {};

TEST_P(GadgetAngleSweep, ZZGadgetExactEverywhere) {
  const real theta = -kPi + kTwoPi * GetParam() / 16.0;
  mbqc::Pattern p;
  p.add_prep(0);
  p.add_prep(1);
  p.add_prep(2);
  p.add_entangle(0, 2);
  p.add_entangle(1, 2);
  const signal_t m = p.add_measure(2, MeasBasis::YZ, theta);
  p.add_correct_z(0, SignalExpr(m));
  p.add_correct_z(1, SignalExpr(m));
  p.set_outputs({0, 1});
  Statevector ref = Statevector::all_plus(2);
  ref.apply_exp_zs(theta, {0, 1});
  for (const auto& b : mbqc::run_all_branches(p))
    ASSERT_NEAR(fidelity(b.output_state, ref.amplitudes()), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AngleGrid, GadgetAngleSweep,
                         ::testing::Range(0, 16));

// ---------------------------------------------------------------------
// Sweep 3: every gate kind through BOTH pattern translators.

class TranslatorGateSweep : public ::testing::TestWithParam<int> {};

Circuit single_gate_circuit(int kind_index) {
  Circuit c(2);
  switch (kind_index) {
    case 0: c.h(0); break;
    case 1: c.x(1); break;
    case 2: c.y(0); break;
    case 3: c.z(1); break;
    case 4: c.s(0); break;
    case 5: c.sdg(1); break;
    case 6: c.t(0); break;
    case 7: c.tdg(1); break;
    case 8: c.rx(0, 0.73); break;
    case 9: c.rz(1, -1.21); break;
    case 10: c.cz(0, 1); break;
    case 11: c.cx(1, 0); break;
    case 12: c.phase_gadget({0, 1}, 0.61); break;
    case 13: c.controlled_exp_x(0, {1}, 0.57, 0); break;
    default: throw Error("bad gate index");
  }
  return c;
}

TEST_P(TranslatorGateSweep, BothTranslationsMatchStatevector) {
  const Circuit c = single_gate_circuit(GetParam());
  Statevector ref = Statevector::all_plus(2);
  c.apply_to(ref);

  const mbqc::Pattern generic = mbqc::pattern_from_circuit(c, true);
  const auto tailored = core::compile_circuit_tailored(c);

  Rng rng(GetParam());
  for (int i = 0; i < 3; ++i) {
    const auto rg = mbqc::run(generic, rng);
    ASSERT_NEAR(fidelity(rg.output_state, ref.amplitudes()), 1.0, 1e-9)
        << "generic translation";
    const auto rt = mbqc::run(tailored.pattern, rng);
    ASSERT_NEAR(fidelity(rt.output_state, ref.amplitudes()), 1.0, 1e-9)
        << "tailored translation";
  }
}

INSTANTIATE_TEST_SUITE_P(AllGateKinds, TranslatorGateSweep,
                         ::testing::Range(0, 14));

// ---------------------------------------------------------------------
// Sweep 4: weighted MaxCut QUBOs over random seeds.

class WeightedMaxcutSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightedMaxcutSweep, WeightedInstancesReproduce) {
  Rng rng(GetParam());
  const Graph g = random_gnm_graph(4, 5, rng);
  std::vector<real> w(5);
  for (auto& x : w) x = rng.uniform(-2.0, 2.0);
  const auto cost = qaoa::CostHamiltonian::maxcut_weighted(g, w);
  // Weighted cut values match a direct computation.
  for (std::uint64_t x = 0; x < 16; ++x) {
    real cut = 0.0;
    const auto& es = g.edges();
    for (std::size_t i = 0; i < es.size(); ++i)
      if (get_bit(x, es[i].u) != get_bit(x, es[i].v)) cut += w[i];
    ASSERT_NEAR(cost.evaluate(x), cut, 1e-9);
  }
  // And the MBQC protocol reproduces <C>.
  const qaoa::Angles a = qaoa::Angles::random(2, rng);
  const core::MbqcQaoaSolver solver(cost);
  Rng run_rng(GetParam() + 100);
  ASSERT_NEAR(solver.expectation(a, run_rng),
              qaoa::qaoa_expectation(cost, a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedMaxcutSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Sweep 5: graph-state diagrams match the stabilizer construction across
// families.

class GraphStateSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GraphStateSweep, ZxStateMatchesCzConstruction) {
  Rng rng(1);
  const Graph g = make_family(GetParam(), 5, rng);
  const zx::Diagram d = zx::graph_state_diagram(g);
  const Matrix m = zx::evaluate_matrix(d);
  Statevector sv = Statevector::all_plus(g.num_vertices());
  for (const Edge& e : g.edges()) sv.apply_cz(e.u, e.v);
  for (std::size_t i = 0; i < m.rows(); ++i)
    ASSERT_NEAR(std::abs(m(i, 0) - sv.amplitudes()[i]), 0.0, 1e-9);
  // Stabilizer check: K_v = X_v prod_{w~v} Z_w for every vertex.
  Tableau t = Tableau::graph_state(g);
  for (int v = 0; v < g.num_vertices(); ++v) {
    std::uint64_t xm = 1ULL << v, zm = 0;
    for (int w : g.neighbors(v)) zm |= 1ULL << w;
    ASSERT_EQ(t.expectation(PauliString(xm, zm, g.num_vertices())), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GraphStateSweep,
                         ::testing::Values("path", "cycle", "complete",
                                           "star", "gnm"));

// ---------------------------------------------------------------------
// Sweep 6: api::SampleResult accessors are mutually consistent across
// random seeds — counts() sums to the shot total, best() is the max-cost
// shot, mean_cost() is the arithmetic mean of per-shot costs.

class SampleResultSweep : public ::testing::TestWithParam<int> {};

TEST_P(SampleResultSweep, AccessorsAreConsistent) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const int n = 4;
  const Graph g = random_gnm_graph(n, 5, rng);
  api::Session session(api::Workload::maxcut(g), "statevector",
                       {.seed = seed * 977 + 1});
  const qaoa::Angles a = qaoa::Angles::random(1, rng);
  const int shots = 256;
  const api::SampleResult r = session.sample(a, shots);
  ASSERT_EQ(r.shots.size(), static_cast<std::size_t>(shots));

  // counts(n): one bin per bitstring, totals the shot count, and every
  // outcome fits the register.
  const auto counts = r.counts(n);
  ASSERT_EQ(counts.size(), std::size_t{1} << n);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            shots);
  for (const api::Shot& s : r.shots) {
    ASSERT_LT(s.x, std::uint64_t{1} << n);
    ASSERT_NEAR(s.cost, session.workload().cost().evaluate(s.x), 1e-12);
  }
  for (std::uint64_t x = 0; x < counts.size(); ++x) {
    const auto expected = static_cast<std::int64_t>(
        std::count_if(r.shots.begin(), r.shots.end(),
                      [x](const api::Shot& s) { return s.x == x; }));
    ASSERT_EQ(counts[x], expected) << "bin " << x;
  }

  // best(): the maximum cost over the shots.
  real max_cost = r.shots.front().cost;
  real sum = 0.0;
  for (const api::Shot& s : r.shots) {
    max_cost = std::max(max_cost, s.cost);
    sum += s.cost;
  }
  EXPECT_EQ(r.best().cost, max_cost);
  EXPECT_NEAR(r.mean_cost(), sum / shots, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleResultSweep, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Sweep 7: compiled vs interpreted pattern execution over ~200 random
// standardized patterns (random entanglement graphs, measurement planes
// and signal domains): same seeds must give the same outcome streams,
// the same peak live width, and output states matching to 1e-12.

mbqc::Pattern random_standardized_pattern(Rng& rng) {
  const int n = 3 + static_cast<int>(rng.uniform_index(4));  // 3..6 wires
  const int outputs = 1 + static_cast<int>(rng.uniform_index(2));
  mbqc::Pattern p;
  for (int w = 0; w < n; ++w) p.add_prep(w);
  // Random entanglement graph over the wires (standard form: all E
  // commands up front), always including a spanning path so nothing is
  // trivially disconnected.
  for (int w = 0; w + 1 < n; ++w) p.add_entangle(w, w + 1);
  const Graph extra = random_gnp_graph(n, 0.4, rng);
  for (const Edge& e : extra.edges())
    if (e.v != e.u + 1) p.add_entangle(e.u, e.v);

  const MeasBasis planes[] = {MeasBasis::Z, MeasBasis::X, MeasBasis::XY,
                              MeasBasis::YZ};
  auto random_domain = [&](int measured) {
    SignalExpr d;
    for (int v = 0; v < measured; ++v)
      if (rng.coin()) d ^= SignalExpr(static_cast<signal_t>(v));
    return d;
  };
  for (int w = 0; w < n - outputs; ++w)
    p.add_measure(w, planes[rng.uniform_index(4)], rng.angle(),
                  random_domain(w), random_domain(w));
  std::vector<int> outs;
  for (int w = n - outputs; w < n; ++w) {
    const int m = n - outputs;
    if (rng.coin()) p.add_correct_x(w, random_domain(m));
    if (rng.coin()) p.add_correct_z(w, random_domain(m));
    outs.push_back(w);
  }
  p.set_outputs(std::move(outs));
  return p;
}

class CompiledExecutorSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompiledExecutorSweep, CompiledAgreesWithInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 25; ++i) {
    const mbqc::Pattern p = random_standardized_pattern(rng);
    mbqc::PatternExecutor executor(
        std::make_shared<const mbqc::CompiledPattern>(p));
    const std::uint64_t seed = rng.next();
    Rng interpreted_rng(seed);
    Rng compiled_rng(seed);
    for (int rep = 0; rep < 3; ++rep) {
      const mbqc::RunResult want = mbqc::run_interpreted(p, interpreted_rng);
      const mbqc::RunResult got = executor.run(compiled_rng);
      ASSERT_EQ(want.outcomes, got.outcomes) << "pattern " << i << "\n"
                                             << p.str();
      ASSERT_EQ(want.peak_live, got.peak_live) << "pattern " << i;
      ASSERT_EQ(want.output_state.size(), got.output_state.size());
      for (std::size_t k = 0; k < want.output_state.size(); ++k)
        ASSERT_LT(std::abs(want.output_state[k] - got.output_state[k]), 1e-12)
            << "pattern " << i << " amplitude " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledExecutorSweep, ::testing::Range(0, 8));

TEST(SampleResultCounts, RejectsOversizedRegistersDescriptively) {
  // Regression: counts() must refuse n > 24 with an explanatory Error
  // instead of silently allocating a 2^n histogram.
  api::SampleResult r;
  r.shots = {{3, 1.0}, {5, 2.0}};
  EXPECT_EQ(r.counts(3).size(), 8u);
  EXPECT_THROW(r.counts(0), Error);
  try {
    r.counts(25);
    FAIL() << "counts(25) did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("24"), std::string::npos) << what;
    EXPECT_NE(what.find("2^25"), std::string::npos) << what;
  }
  EXPECT_THROW(r.counts(63), Error);
}

// ---------------------------------------------------------------------
// Sweep 8: serialize(lower(w)) -> parse -> execute is bit-identical to
// direct execution across every serializable ansatz kind, seeds
// {0, 1, 42}, and process counts {1, 2, 4} — the WorkloadSpec wire
// format IS the workload, wherever and however it runs.

class SpecRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecRoundTripSweep, SerializedSpecExecutesBitIdentically) {
  const std::uint64_t seed = GetParam();
  struct Case {
    const char* label;
    api::Workload w;
    const char* backend;
    qaoa::Angles a;
  };
  Rng graph_rng(9);
  const Graph gnm = random_gnm_graph(5, 6, graph_rng);
  qaoa::ParamCircuit xy(4);
  for (int q = 0; q < 4; ++q) xy.h(q);
  xy.x(0).x(2);
  xy.phase_gadget({0, 2}, qaoa::Param::gamma(0, -2.0));
  xy.phase_gadget({1, 3}, qaoa::Param::gamma(0, -2.0));
  xy.xy_ring({0, 1}, qaoa::Param::beta(0));
  xy.xy_ring({2, 3}, qaoa::Param::beta(0));
  const qaoa::Angles a1({0.45}, {0.65});
  const Case cases[] = {
      {"qaoa-maxcut", api::Workload::maxcut(cycle_graph(5)), "mbqc", a1},
      {"qaoa-pubo3",
       api::Workload::pubo(
           5, {{1.5, {0, 1, 2}}, {-0.75, {2, 3}}, {0.5, {3, 4, 0}}}, 0.25),
       "statevector", a1},
      {"mis", api::Workload::mis(gnm), "mbqc", a1},
      {"mis-weighted",
       api::Workload::mis_weighted(gnm, {1.5, 0.5, 2.0, 1.0, 0.25}), "mbqc",
       a1},
      {"param-circuit",
       api::Workload::parameterized(
           qaoa::CostHamiltonian::qubo(4, std::vector<real>(4, 0.0),
                                       {{{0, 2}, -1.0}, {{1, 3}, -1.0}}, 1.0),
           xy),
       "mbqc-classical", a1},
      {"noisy-qaoa",
       api::Workload::maxcut(cycle_graph(4)).with_entangler_noise(0.1),
       "mbqc", a1},
  };
  for (const Case& c : cases) {
    const api::Workload decoded = api::Workload::from_spec(
        api::parse_spec(api::serialize_spec(c.w.spec())));
    api::SessionOptions direct_opt;
    direct_opt.seed = seed;
    direct_opt.num_processes = 1;
    api::Session direct(c.w, c.backend, direct_opt);
    const api::SampleResult want = direct.sample(c.a, 12);
    const real want_e = direct.expectation(c.a);
    for (const int processes : {1, 2, 4}) {
      api::SessionOptions opt;
      opt.seed = seed;
      opt.num_processes = processes;
      api::Session session(decoded, c.backend, opt);
      const api::SampleResult got = session.sample(c.a, 12);
      ASSERT_EQ(got.shots.size(), want.shots.size());
      for (std::size_t s = 0; s < want.shots.size(); ++s) {
        ASSERT_EQ(got.shots[s].x, want.shots[s].x)
            << c.label << " @" << processes << "p seed " << seed << " shot "
            << s;
        ASSERT_EQ(got.shots[s].cost, want.shots[s].cost)
            << c.label << " @" << processes << "p seed " << seed;
      }
      ASSERT_EQ(std::bit_cast<std::uint64_t>(session.expectation(c.a)),
                std::bit_cast<std::uint64_t>(want_e))
          << c.label << " @" << processes << "p seed " << seed;
      if (processes > 1)
        EXPECT_GT(session.shard_workers(), 0)
            << c.label << " @" << processes
            << "p: serializable workloads must not fall back";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecRoundTripSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL));

// ---------------------------------------------------------------------
// Sweep: the spec compiler's default pass set is bit-neutral.  For every
// backend × seed × process count, a workload lowered with the default
// passes produces the same outcome stream and expectation, bit for bit,
// as one lowered with the pipeline off.

class SpecCompilerNeutralitySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpecCompilerNeutralitySweep, OptimizedMatchesUnoptimizedBitwise) {
  const std::uint64_t seed = GetParam();
  // A cost with an exactly cancelled term plus a declarative circuit
  // with peephole fodder, so the default passes genuinely rewrite the
  // lowered spec (the neutrality claim is not vacuous).
  qaoa::CostHamiltonian cost(4, 0.5);
  cost.add_term({0, 1}, 0.75);
  cost.add_term({1, 2}, 0.5);
  cost.add_term({1, 2}, -0.5);  // merges to exact zero: canonicalize drops
  cost.add_term({2, 3}, -0.25);
  cost.add_term({3}, 0.5);
  qaoa::ParamCircuit pc(4);
  pc.rz(0, qaoa::Param::constant(0.0));  // peephole removes
  for (const auto& t : cost.terms())
    if (t.coeff != 0.0)
      pc.phase_gadget(t.support, qaoa::Param::gamma(0, 2.0 * t.coeff));
  for (int q = 0; q < 4; ++q) pc.rx(q, qaoa::Param::beta(0, 2.0));

  struct Case {
    const char* label;
    api::Workload w;
  };
  const Case cases[] = {
      {"qaoa", api::Workload::qaoa(cost)},
      {"param-circuit", api::Workload::parameterized(cost, pc)},
  };
  const qaoa::Angles a({0.55}, {-0.35});
  for (const Case& c : cases) {
    api::Workload optimized = c.w;
    api::Workload unoptimized = c.w;
    optimized.with_spec_compile(speccomp::SpecCompileOptions{});
    unoptimized.with_spec_compile(speccomp::SpecCompileOptions::off());
    ASSERT_TRUE(optimized.lowered().changed) << c.label;
    for (const char* backend : {"statevector", "mbqc", "router"}) {
      for (const int processes : {1, 2}) {
        api::SessionOptions opt;
        opt.seed = seed;
        opt.num_processes = processes;
        api::Session s_on(optimized, backend, opt);
        api::Session s_off(unoptimized, backend, opt);
        const api::SampleResult r_on = s_on.sample(a, 16);
        const api::SampleResult r_off = s_off.sample(a, 16);
        ASSERT_EQ(r_on.shots.size(), r_off.shots.size());
        for (std::size_t s = 0; s < r_off.shots.size(); ++s)
          ASSERT_EQ(r_on.shots[s].x, r_off.shots[s].x)
              << c.label << "/" << backend << " @" << processes << "p seed "
              << seed << " shot " << s;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(s_on.expectation(a)),
                  std::bit_cast<std::uint64_t>(s_off.expectation(a)))
            << c.label << "/" << backend << " @" << processes << "p seed "
            << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecCompilerNeutralitySweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL));

}  // namespace
}  // namespace mbq
