// The spec-level compiler pipeline (mbq::speccomp) and its codecs: the
// pass algebra (canonicalize / peephole / fuse / schedule) with honest
// PassStats, MBQ_SPEC_OPT-style option parsing, the canonical JSON text
// format (byte-stable round trips, exact f64 reproduction, strict
// malformed-input rejection), the registry-pluggable Registered ansatz
// kind through both codecs, and — the acceptance bar — fingerprint and
// wire-byte invariance under optimization plus bit-identical execution
// with the pipeline on and off.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mbq/api/ansatz_registry.h"
#include "mbq/api/api.h"
#include "mbq/common/serialize.h"
#include "mbq/graph/generators.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/serve/frames.h"
#include "mbq/shard/protocol.h"
#include "mbq/speccomp/json.h"
#include "mbq/speccomp/speccomp.h"

namespace mbq {
namespace {

using api::AnsatzKind;
using api::SampleResult;
using api::Session;
using api::SessionOptions;
using api::Workload;
using api::WorkloadSpec;
using qaoa::CostHamiltonian;
using qaoa::Param;
using qaoa::ParamCircuit;
using speccomp::CompiledSpec;
using speccomp::PassStats;
using speccomp::SpecCompileOptions;
using speccomp::compile_spec;
using speccomp::spec_from_json;
using speccomp::spec_to_json;

CostHamiltonian ring_cost(int n) {
  CostHamiltonian c(n, 0.25);
  for (int q = 0; q < n; ++q) c.add_term({q, (q + 1) % n}, 0.5 + 0.125 * q);
  return c;
}

const PassStats& stats_for(const CompiledSpec& cs, const std::string& pass) {
  for (const PassStats& s : cs.stats)
    if (s.pass == pass) return s;
  throw Error("no stats row for pass " + pass);
}

// ---------------------------------------------------------------------
// Options parsing (the MBQ_SPEC_OPT grammar).

TEST(SpecCompileOptionsParse, GrammarCoversOnOffAllAndLists) {
  const SpecCompileOptions on = SpecCompileOptions::parse("on");
  EXPECT_TRUE(on.canonicalize);
  EXPECT_TRUE(on.peephole);
  EXPECT_FALSE(on.fuse);      // distribution-preserving only: opt-in
  EXPECT_FALSE(on.schedule);  // ulp-level Born shifts: opt-in

  const SpecCompileOptions off = SpecCompileOptions::parse("off");
  EXPECT_FALSE(off.canonicalize || off.peephole || off.fuse || off.schedule);

  const SpecCompileOptions all = SpecCompileOptions::parse("all");
  EXPECT_TRUE(all.canonicalize && all.peephole && all.fuse && all.schedule);

  const SpecCompileOptions list = SpecCompileOptions::parse("fuse,schedule");
  EXPECT_FALSE(list.canonicalize);
  EXPECT_FALSE(list.peephole);
  EXPECT_TRUE(list.fuse);
  EXPECT_TRUE(list.schedule);

  // Empty string == defaults, like an unset MBQ_SPEC_OPT.
  const SpecCompileOptions empty = SpecCompileOptions::parse("");
  EXPECT_TRUE(empty.canonicalize && empty.peephole);
}

TEST(SpecCompileOptionsParse, UnknownPassNamesListTheKnownOnes) {
  try {
    SpecCompileOptions::parse("canonicalize,vectorize");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("vectorize"), std::string::npos) << msg;
    EXPECT_NE(msg.find("canonicalize, peephole, fuse, schedule"),
              std::string::npos)
        << msg;
  }
}

// ---------------------------------------------------------------------
// Pass semantics.

TEST(CanonicalizePass, DropsExactZeroTermsAndCountsThem) {
  CostHamiltonian c(3, 1.0);
  c.add_term({0}, 0.75);
  c.add_term({1, 2}, 0.5);
  c.add_term({1, 2}, -0.5);  // merges to an exact 0.0 coefficient
  ASSERT_EQ(c.terms().size(), 2u);

  WorkloadSpec spec = Workload::qaoa(c).spec();
  const CompiledSpec cs = compile_spec(spec, SpecCompileOptions{});
  EXPECT_EQ(cs.spec.cost.terms().size(), 1u);
  EXPECT_EQ(cs.spec.cost.terms()[0].support, std::vector<int>{0});
  const PassStats& st = stats_for(cs, "canonicalize");
  EXPECT_TRUE(st.enabled);
  EXPECT_TRUE(st.changed);
  EXPECT_EQ(st.terms_dropped, 1);
  EXPECT_TRUE(cs.changed);

  // Disabled pass rows still appear, marked as such.
  const CompiledSpec off = compile_spec(spec, SpecCompileOptions::off());
  EXPECT_EQ(off.stats.size(), 4u);
  EXPECT_FALSE(stats_for(off, "canonicalize").enabled);
  EXPECT_EQ(off.spec.cost.terms().size(), 2u);
  EXPECT_FALSE(off.changed);
}

TEST(PeepholePass, RemovesOnlyConstantSourceZeroDiagonals) {
  ParamCircuit pc(2);
  pc.rz(0, Param::constant(0.0));            // removable: identically 0
  pc.rz(1, Param::gamma(0, 0.0, 0.0));       // zero, but gamma-sourced:
                                             // removal would relax the
                                             // min_gamma validation floor
  pc.rx(0, Param::constant(0.0));            // Rx: lowering is a real
                                             // teleport, not removable
  pc.phase_gadget({0, 1}, Param::constant(0.0));  // removable
  pc.rz(0, Param::beta(0, 1.0));             // live gate, stays

  const WorkloadSpec spec =
      Workload::parameterized(ring_cost(2), pc).spec();
  const CompiledSpec cs = compile_spec(spec, SpecCompileOptions{});
  const PassStats& st = stats_for(cs, "peephole");
  EXPECT_EQ(st.gates_eliminated, 2);
  EXPECT_TRUE(st.changed);
  ASSERT_EQ(cs.spec.circuit->gates().size(), 3u);
  // min_gamma floor must be preserved by what remains.
  EXPECT_EQ(cs.spec.circuit->min_gamma(), spec.circuit->min_gamma());
  EXPECT_EQ(cs.spec.circuit->min_beta(), spec.circuit->min_beta());
}

TEST(FusePass, FusesAdjacentSameAxisRotationsViaAffineAlgebra) {
  ParamCircuit pc(2);
  pc.rz(0, Param::gamma(0, 1.0, 0.25));
  pc.rz(0, Param::gamma(0, 2.0, 0.5));   // same source+index: coefficients add
  pc.rz(0, Param::constant(0.125));      // constant folds into the offset
  pc.rx(1, Param::beta(0, 1.0));
  pc.rx(1, Param::gamma(0, 1.0));        // cross-source: NOT fusable
  pc.rz(1, Param::constant(0.5));
  pc.rz(1, Param::constant(-0.5));       // fuses to 0 and is then removed

  const WorkloadSpec spec =
      Workload::parameterized(ring_cost(2), pc).spec();
  const CompiledSpec cs =
      compile_spec(spec, SpecCompileOptions{true, true, true, false});
  const PassStats& st = stats_for(cs, "fuse");
  EXPECT_EQ(st.gates_fused, 3);
  EXPECT_EQ(st.gates_eliminated, 1);  // the fused-to-zero rz(1)

  const auto& gates = cs.spec.circuit->gates();
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_EQ(gates[0].kind, GateKind::Rz);
  EXPECT_EQ(gates[0].angle.source, Param::Source::Gamma);
  EXPECT_EQ(gates[0].angle.scale, 3.0);
  EXPECT_EQ(gates[0].angle.offset, 0.875);
  EXPECT_EQ(gates[1].kind, GateKind::Rx);
  EXPECT_EQ(gates[2].kind, GateKind::Rx);
}

TEST(SchedulePass, EstimatesDeferrablePrepsAndSetsTheHint) {
  // QAOA ring on 4 qubits: wire 0 is in the first gadget (not
  // deferrable past anything), wires 1..3 first appear later.
  const WorkloadSpec spec = Workload::qaoa(ring_cost(4)).spec();
  const CompiledSpec cs =
      compile_spec(spec, SpecCompileOptions{true, true, false, true});
  const PassStats& st = stats_for(cs, "schedule");
  EXPECT_TRUE(cs.hints.defer_initial_preps);
  // Canonical term order {0,1},{0,3},{1,2},{2,3}: the first gadget
  // touches wires 0 AND 1, so exactly wires 2 and 3 defer.
  EXPECT_EQ(st.wires_total, 4);
  EXPECT_EQ(st.wires_deferrable, 2);

  const CompiledSpec no_sched = compile_spec(spec, SpecCompileOptions{});
  EXPECT_FALSE(no_sched.hints.defer_initial_preps);
  EXPECT_TRUE(no_sched.hints.trivial());
}

// ---------------------------------------------------------------------
// The acceptance contract: optimization never changes identity bytes.

TEST(SpecCompiler, FingerprintAndWireBytesAreInvariantUnderOptimization) {
  CostHamiltonian c = ring_cost(3);
  c.add_term({0, 1}, 0.5);
  c.add_term({0, 1}, -1.0);  // leaves a live merged term plus structure
  c.add_term({2}, 0.25);
  c.add_term({2}, -0.25);  // exact zero: canonicalize will drop it

  Workload on = Workload::qaoa(c);
  Workload off = Workload::qaoa(c);
  on.with_spec_compile(SpecCompileOptions{true, true, true, true});
  off.with_spec_compile(SpecCompileOptions::off());

  // The raw spec — what fingerprints, caches, and ships — is untouched.
  EXPECT_EQ(api::spec_fingerprint(on.spec()), api::spec_fingerprint(off.spec()));
  EXPECT_EQ(api::serialize_spec(on.spec()), api::serialize_spec(off.spec()));
  ByteWriter wire_on, wire_off;
  shard::encode_workload(wire_on, on);
  shard::encode_workload(wire_off, off);
  EXPECT_EQ(wire_on.data(), wire_off.data());

  // ...and so is a full serve Submit frame (the daemon protocol embeds
  // the same workload bytes), so daemon warm-cache keys stay stable.
  const auto submit_frame = [](const Workload& w) {
    serve::Submit s;
    s.request_id = 1;
    s.request.backend = "router";
    s.request.seed = 5;
    s.request.workload = w;
    s.request.points = {qaoa::Angles({0.1}, {0.2})};
    s.request.shots = 8;
    s.request.end = 8;
    return serve::encode_submit(s);
  };
  EXPECT_EQ(submit_frame(on), submit_frame(off));

  // The lowered spec differs (the zero term is gone) — proof the
  // invariance above is a property of the raw/lowered split, not of the
  // passes doing nothing.
  EXPECT_LT(on.lowered().spec.cost.terms().size(),
            off.lowered().spec.cost.terms().size());
}

TEST(SpecCompiler, DefaultPassesAreBitNeutralOnEveryBuiltinKind) {
  struct Case {
    std::string name;
    Workload w;
    qaoa::Angles angles;
  };
  // hea-line consumes one gamma/beta slot per (layer, qubit): 1 layer
  // over 3 qubits reads gamma[0..2]/beta[0..2].
  const std::vector<Case> cases = {
      {"qaoa", Workload::qaoa(ring_cost(4)), qaoa::Angles({0.7}, {0.3})},
      {"mis", Workload::mis(cycle_graph(4)), qaoa::Angles({0.7}, {0.3})},
      {"param-circuit",
       Workload::parameterized(ring_cost(3), [] {
         ParamCircuit pc(3);
         pc.rz(0, Param::constant(0.0));  // peephole fodder
         pc.phase_gadget({0, 1}, Param::gamma(0, 2.0));
         pc.rx(0, Param::beta(0, 2.0));
         pc.rx(1, Param::beta(0, 2.0));
         pc.rx(2, Param::beta(0, 2.0));
         return pc;
       }()),
       qaoa::Angles({0.7}, {0.3})},
      {"registered", Workload::registered("hea-line", ring_cost(3), {1}),
       qaoa::Angles({0.7, -0.2, 0.4}, {0.3, 0.6, -0.5})},
  };
  for (const auto& [name, w, angles] : cases) {
    Workload on = w;
    Workload off = w;
    on.with_spec_compile(SpecCompileOptions{});  // defaults
    off.with_spec_compile(SpecCompileOptions::off());
    SessionOptions opt;
    opt.seed = 11;
    opt.num_processes = 1;
    Session s_on(on, "router", opt);
    Session s_off(off, "router", opt);
    EXPECT_EQ(s_on.expectation(angles), s_off.expectation(angles)) << name;
    const SampleResult r_on = s_on.sample(angles, 64);
    const SampleResult r_off = s_off.sample(angles, 64);
    ASSERT_EQ(r_on.shots.size(), r_off.shots.size()) << name;
    for (std::size_t i = 0; i < r_on.shots.size(); ++i)
      ASSERT_EQ(r_on.shots[i].x, r_off.shots[i].x) << name << " shot " << i;
  }
}

// ---------------------------------------------------------------------
// JSON text codec.

TEST(SpecJson, RoundTripsEveryKindByteStably) {
  const std::vector<WorkloadSpec> specs = {
      Workload::qaoa(ring_cost(3)).spec(),
      Workload::mis_weighted(cycle_graph(4), {0.5, 1.0, 1.5, 2.0}).spec(),
      Workload::parameterized(ring_cost(2), [] {
        ParamCircuit pc(2);
        pc.h(0).cx(0, 1);
        pc.phase_gadget({0, 1}, Param::gamma(0, 2.0, 0.125));
        pc.rx(1, Param::beta(0, 2.0));
        pc.controlled_exp_x(0, {1}, Param::beta(0, 1.0), 1);
        return pc;
      }()).spec(),
      Workload::registered("hea-line", ring_cost(3), {2}).spec(),
  };
  for (const WorkloadSpec& spec : specs) {
    const std::string text = spec_to_json(spec);
    const WorkloadSpec back = spec_from_json(text);
    // Canonical emission: JSON -> spec -> JSON is byte-stable, and the
    // binary codec agrees bit for bit.
    EXPECT_EQ(spec_to_json(back), text);
    EXPECT_EQ(api::serialize_spec(back), api::serialize_spec(spec));
    // And through the binary codec and back to text.
    const WorkloadSpec rebuilt = api::parse_spec(api::serialize_spec(back));
    EXPECT_EQ(spec_to_json(rebuilt), text);
  }
}

TEST(SpecJson, ReproducesDoublesExactlyIncludingNonFinite) {
  // 0.1 has no finite binary expansion; the codec must reproduce the
  // exact bits, not a close decimal.
  CostHamiltonian c(2, 0.1);
  c.add_term({0}, 0.1 + 0.2);  // the classic 0.30000000000000004
  c.add_term({0, 1}, -0.0);    // negative zero survives too
  WorkloadSpec spec = Workload::qaoa(c).spec();
  const WorkloadSpec back = spec_from_json(spec_to_json(spec));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.cost.constant()),
            std::bit_cast<std::uint64_t>(spec.cost.constant()));
  for (std::size_t t = 0; t < spec.cost.terms().size(); ++t)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.cost.terms()[t].coeff),
              std::bit_cast<std::uint64_t>(spec.cost.terms()[t].coeff));

  // Non-finite reals ride as IEEE-754 bit-pattern hex strings; the
  // registered payload is the one place a spec can carry them and still
  // validate (hea-line rejects reals, so use the raw helpers).
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::string text =
      "{\"mbq_spec\": 1, \"kind\": \"qaoa\","
      " \"cost\": {\"num_qubits\": 1, \"constant\": \"inf\","
      " \"terms\": [{\"coeff\": \"0x7ff8000000000000\", \"support\": [0]}]}}";
  const WorkloadSpec exotic = spec_from_json(text);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(exotic.cost.constant()),
            std::bit_cast<std::uint64_t>(inf));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(exotic.cost.terms()[0].coeff),
            std::bit_cast<std::uint64_t>(nan));
  // ...and they round trip byte-stably through the canonical emitter.
  EXPECT_EQ(spec_to_json(spec_from_json(spec_to_json(exotic))),
            spec_to_json(exotic));
}

TEST(SpecJson, OptionalKnobsDefaultLikeAFreshSpec) {
  const WorkloadSpec minimal = spec_from_json(
      "{\"mbq_spec\": 1, \"kind\": \"qaoa\","
      " \"cost\": {\"num_qubits\": 2,"
      " \"terms\": [{\"coeff\": 1.0, \"support\": [0, 1]}]}}");
  EXPECT_EQ(minimal.linear_style, core::LinearTermStyle::Gadget);
  EXPECT_EQ(minimal.max_wire_degree, 0);
  EXPECT_EQ(minimal.entangler_noise, 0.0);
  EXPECT_EQ(minimal.cost.constant(), 0.0);
}

TEST(SpecJson, RejectsMalformedInput) {
  const std::string good =
      "{\"mbq_spec\": 1, \"kind\": \"qaoa\","
      " \"cost\": {\"num_qubits\": 2,"
      " \"terms\": [{\"coeff\": 1.0, \"support\": [0, 1]}]}}";
  ASSERT_NO_THROW(spec_from_json(good));

  const std::vector<std::pair<std::string, std::string>> bad = {
      {"trailing garbage", good + " x"},
      {"truncated", good.substr(0, good.size() / 2)},
      {"not an object", "[1, 2, 3]"},
      {"wrong version",
       "{\"mbq_spec\": 2, \"kind\": \"qaoa\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []}}"},
      {"missing kind",
       "{\"mbq_spec\": 1,"
       " \"cost\": {\"num_qubits\": 1, \"terms\": []}}"},
      {"unknown kind",
       "{\"mbq_spec\": 1, \"kind\": \"vqe\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []}}"},
      {"custom is not serializable",
       "{\"mbq_spec\": 1, \"kind\": \"custom\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []}}"},
      {"unknown linear_style",
       "{\"mbq_spec\": 1, \"kind\": \"qaoa\", \"linear_style\": \"loop\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []}}"},
      {"bad hex real",
       "{\"mbq_spec\": 1, \"kind\": \"qaoa\","
       " \"cost\": {\"num_qubits\": 1, \"constant\": \"0x12xyz\","
       " \"terms\": []}}"},
      {"non-integer int",
       "{\"mbq_spec\": 1, \"kind\": \"qaoa\","
       " \"cost\": {\"num_qubits\": 1.5, \"terms\": []}}"},
      {"edge triple",
       "{\"mbq_spec\": 1, \"kind\": \"mis\","
       " \"cost\": {\"num_qubits\": 3, \"terms\": []},"
       " \"graph\": {\"num_vertices\": 3, \"edges\": [[0, 1, 2]]},"
       " \"vertex_weights\": [1, 1, 1]}"},
      {"unknown gate kind",
       "{\"mbq_spec\": 1, \"kind\": \"param-circuit\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []},"
       " \"circuit\": {\"num_qubits\": 1, \"gates\": [{\"kind\": \"ccz\","
       " \"qubits\": [0], \"angle\": {\"source\": \"constant\","
       " \"index\": 0, \"scale\": 0, \"offset\": 0}, \"ctrl_value\": 0}]}}"},
      {"unknown param source",
       "{\"mbq_spec\": 1, \"kind\": \"param-circuit\","
       " \"cost\": {\"num_qubits\": 1, \"terms\": []},"
       " \"circuit\": {\"num_qubits\": 1, \"gates\": [{\"kind\": \"rz\","
       " \"qubits\": [0], \"angle\": {\"source\": \"delta\","
       " \"index\": 0, \"scale\": 1, \"offset\": 0}, \"ctrl_value\": 0}]}}"},
      {"unknown registered name",
       "{\"mbq_spec\": 1, \"kind\": \"registered\","
       " \"cost\": {\"num_qubits\": 2, \"terms\": []},"
       " \"registered\": {\"name\": \"no-such-kind\", \"ints\": [],"
       " \"reals\": []}}"},
  };
  for (const auto& [label, text] : bad)
    EXPECT_THROW(spec_from_json(text), Error) << label;
}

// ---------------------------------------------------------------------
// The Registered ansatz kind and its registry.

TEST(AnsatzRegistry, ListingNamesBuiltinsAndErrorsNameTheOffender) {
  auto& reg = api::AnsatzKindRegistry::instance();
  EXPECT_TRUE(reg.contains("hea-line"));
  EXPECT_TRUE(reg.is_builtin("hea-line"));
  const std::string listing = api::ansatz_kind_listing();
  EXPECT_NE(listing.find("qaoa"), std::string::npos);
  EXPECT_NE(listing.find("registered:hea-line"), std::string::npos);

  // Unknown names throw with the full listing.
  try {
    Workload::registered("no-such-ansatz", ring_cost(2));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-ansatz"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hea-line"), std::string::npos) << msg;
  }

  // Wrong-kind accessor errors name the actual kind and list the rest.
  try {
    Workload::qaoa(ring_cost(2)).mis_graph();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("qaoa"), std::string::npos) << msg;
    EXPECT_NE(msg.find("known kinds:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hea-line"), std::string::npos) << msg;
  }

  // hea-line's payload validation runs at construction.
  EXPECT_THROW(Workload::registered("hea-line", ring_cost(2)), Error);
  EXPECT_THROW(Workload::registered("hea-line", ring_cost(2), {0}), Error);
  EXPECT_THROW(Workload::registered("hea-line", ring_cost(2), {1}, {0.5}),
               Error);
}

TEST(AnsatzRegistry, BuiltinKindShardsAcrossProcessesBitIdentically) {
  // The acceptance bar: a registered (non-enum) ansatz kind round-trips
  // the wire and executes on real worker processes, bit-identical to
  // the in-process path.
  const Workload w = Workload::registered("hea-line", ring_cost(3), {1});
  EXPECT_TRUE(shard::shardable(w)) << shard::unshardable_reason(w);

  const WorkloadSpec back = api::parse_spec(api::serialize_spec(w.spec()));
  EXPECT_EQ(back.registered_name, "hea-line");
  EXPECT_EQ(back.registered_ints, std::vector<int>{1});

  // hea-line consumes one gamma/beta slot per (layer, qubit): p = 3.
  const qaoa::Angles angles({0.3, -0.2, 0.1}, {0.5, 0.1, -0.4});
  SessionOptions serial;
  serial.seed = 7;
  serial.num_processes = 1;
  SessionOptions sharded;
  sharded.seed = 7;
  sharded.num_processes = 2;
  Session s1(w, "router", serial);
  Session s2(w, "router", sharded);
  EXPECT_EQ(s1.expectation(angles), s2.expectation(angles));
  const SampleResult r1 = s1.sample(angles, 96);
  const SampleResult r2 = s2.sample(angles, 96);
  // The pool spawns on first use: assert the cross-process half was
  // real only after sampling, like the no-fallback acceptance demands.
  ASSERT_GT(s2.shard_workers(), 0)
      << "sharding fell back in-process; the cross-process half of this "
         "test would be vacuous";
  ASSERT_EQ(r1.shots.size(), r2.shots.size());
  for (std::size_t i = 0; i < r1.shots.size(); ++i)
    ASSERT_EQ(r1.shots[i].x, r2.shots[i].x) << "shot " << i;
}

TEST(AnsatzRegistry, RuntimeRegistrationsExecuteInProcessOnly) {
  auto& reg = api::AnsatzKindRegistry::instance();
  if (!reg.contains("test-gamma-ring")) {
    api::AnsatzKindHooks hooks;
    hooks.validate = [](const WorkloadSpec& spec) {
      MBQ_REQUIRE(spec.registered_ints.empty() &&
                      spec.registered_reals.size() == 1,
                  "test-gamma-ring expects reals = {scale}");
    };
    hooks.build = [](const WorkloadSpec& spec) {
      const int n = spec.cost.num_qubits();
      ParamCircuit pc(n);
      for (int q = 0; q < n; ++q)
        pc.phase_gadget({q, (q + 1) % n},
                        Param::gamma(0, spec.registered_reals[0]));
      for (int q = 0; q < n; ++q) pc.rx(q, Param::beta(0, 2.0));
      return pc;
    };
    reg.add("test-gamma-ring", hooks);
  }
  EXPECT_TRUE(reg.contains("test-gamma-ring"));
  EXPECT_FALSE(reg.is_builtin("test-gamma-ring"));
  EXPECT_THROW(reg.add("test-gamma-ring", api::AnsatzKindHooks{}), Error);

  const Workload w =
      Workload::registered("test-gamma-ring", ring_cost(3), {}, {2.0});
  // Registered in this process only: a freshly exec'd worker could not
  // resolve the name, so the workload must not shard...
  const std::string reason = shard::unshardable_reason(w);
  EXPECT_NE(reason.find("test-gamma-ring"), std::string::npos) << reason;
  // ...but both codecs still carry it (any process that registers the
  // kind can decode and run it).
  const WorkloadSpec back = spec_from_json(spec_to_json(w.spec()));
  EXPECT_EQ(back.registered_name, "test-gamma-ring");
  EXPECT_EQ(api::serialize_spec(back), api::serialize_spec(w.spec()));

  // And it executes in-process, even when the session asks for workers
  // (documented fallback for unshardable workloads).
  SessionOptions opt;
  opt.seed = 3;
  opt.num_processes = 2;
  Session session(w, "router", opt);
  EXPECT_EQ(session.shard_workers(), 0);
  const SampleResult r = session.sample(qaoa::Angles({0.4}, {0.6}), 32);
  EXPECT_EQ(r.shots.size(), 32u);
}

}  // namespace
}  // namespace mbq
