// E4/E5/E6 — the three building-block gadgets of Sec. III:
//   Eq. (8)  per-edge phase gadget      exp(-i gamma Z_u Z_v)
//   Eq. (9)  mixer J-chain              exp(-i beta X_v)
//   Eq. (10) single-qubit Z rotation    exp(-i gamma Z_v)
// Each is compiled in isolation and compared against its unitary oracle
// over an angle sweep, enumerating every correction branch.  Gadget
// inputs are generic single-qubit states (no accidental eigenstates).

#include <cmath>
#include <iostream>

#include "mbq/common/bits.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/runner.h"

namespace mbq {
namespace {

// A generic, well-spread test state.
const cplx kA0{0.6, 0.2};
const cplx kA1{0.3, -0.7};

std::vector<cplx> normalized(std::vector<cplx> v) {
  real n = 0;
  for (auto& x : v) n += std::norm(x);
  n = std::sqrt(n);
  for (auto& x : v) x /= n;
  return v;
}

struct SweepResult {
  real worst_fidelity = 1.0;
  int branches = 0;
};

SweepResult check_all_branches(const mbqc::Pattern& pattern,
                               const mbqc::RunOptions& base,
                               const std::vector<cplx>& expect) {
  SweepResult r;
  const int m = pattern.num_measurements();
  Rng rng(0);
  for (std::uint64_t branch = 0; branch < (1ULL << m); ++branch) {
    mbqc::RunOptions opt = base;
    opt.forced.resize(m);
    for (int i = 0; i < m; ++i) opt.forced[i] = get_bit(branch, i);
    const auto res = mbqc::run(pattern, rng, opt);
    r.worst_fidelity =
        std::min(r.worst_fidelity, fidelity(res.output_state, expect));
    ++r.branches;
  }
  return r;
}

}  // namespace
}  // namespace mbq

int main() {
  using namespace mbq;
  std::cout << "# E4/E5/E6 — gadget-level verification (Eqs. 8, 9, 10)\n\n"
            << "Worst-case fidelity over ALL correction branches, across an "
               "angle sweep,\non generic (non-eigenstate) inputs.\n\n";

  Table t({"gadget", "angle", "ancillas", "CZ", "branches",
           "worst fidelity"});
  const std::vector<real> sweep{-2.7, -1.3, -0.4, 0.0, 0.5, 1.1, 2.2, 3.0};

  // Two-qubit generic product input for the ZZ gadget.
  const std::vector<cplx> in1 = normalized({kA0, kA1});
  const std::vector<cplx> in2 = normalized({cplx{0.8, -0.1}, cplx{0.2, 0.55}});

  for (real angle : sweep) {
    // --- Eq. (8): ZZ gadget on two input wires.
    {
      mbqc::Pattern p;
      p.add_input(0);
      p.add_input(1);
      p.add_prep(2);  // ancilla
      p.add_entangle(0, 2);
      p.add_entangle(1, 2);
      const signal_t m = p.add_measure(2, MeasBasis::YZ, 2.0 * angle);
      p.add_correct_z(0, SignalExpr(m));
      p.add_correct_z(1, SignalExpr(m));
      p.set_outputs({0, 1});
      mbqc::RunOptions opt;
      opt.input_states[0] = {in1[0], in1[1]};
      opt.input_states[1] = {in2[0], in2[1]};
      // expect = exp(-i angle Z0 Z1) (in1 ⊗ in2)
      std::vector<cplx> expect(4);
      for (int b = 0; b < 4; ++b) {
        const int parity = (b & 1) ^ ((b >> 1) & 1);
        expect[b] = in1[b & 1] * in2[(b >> 1) & 1] *
                    std::exp(-kI * angle * (parity ? -1.0 : 1.0));
      }
      const auto res = check_all_branches(p, opt, expect);
      t.row()
          .add("ZZ (Eq. 8)")
          .add(angle, 3)
          .add(1)
          .add(2)
          .add(res.branches)
          .add(res.worst_fidelity, 12);
    }
    // --- Eq. (10): single-qubit Z rotation gadget.
    {
      mbqc::Pattern p;
      p.add_input(0);
      p.add_prep(1);
      p.add_entangle(0, 1);
      const signal_t m = p.add_measure(1, MeasBasis::YZ, 2.0 * angle);
      p.add_correct_z(0, SignalExpr(m));
      p.set_outputs({0});
      mbqc::RunOptions opt;
      opt.input_states[0] = {in1[0], in1[1]};
      const auto expect = gates::exp_z(2.0 * angle) * in1;
      const auto res = check_all_branches(p, opt, expect);
      t.row()
          .add("Z (Eq. 10)")
          .add(angle, 3)
          .add(1)
          .add(1)
          .add(res.branches)
          .add(res.worst_fidelity, 12);
    }
    // --- Eq. (9): mixer J-chain on an input wire.
    {
      mbqc::Pattern p;
      p.add_input(0);
      p.add_prep(1);
      p.add_prep(2);
      p.add_entangle(0, 1);
      const signal_t m0 = p.add_measure(0, MeasBasis::XY, -0.0);
      p.add_entangle(1, 2);
      const signal_t m1 =
          p.add_measure(1, MeasBasis::XY, -2.0 * angle, SignalExpr(m0), {});
      p.add_correct_x(2, SignalExpr(m1));
      p.add_correct_z(2, SignalExpr(m0));
      p.set_outputs({2});
      mbqc::RunOptions opt;
      opt.input_states[0] = {in1[0], in1[1]};
      const auto expect = gates::exp_x(2.0 * angle) * in1;
      const auto res = check_all_branches(p, opt, expect);
      t.row()
          .add("X mixer (Eq. 9)")
          .add(angle, 3)
          .add(2)
          .add(2)
          .add(res.branches)
          .add(res.worst_fidelity, 12);
    }
  }
  t.print(std::cout);
  std::cout << "All gadgets reproduce their unitaries with fidelity 1 on "
               "every branch,\nmatching the paper's per-edge (1 ancilla / 2 "
               "CZ), per-vertex rotation\n(1 / 1) and mixer (2 / 2) resource "
               "structure.\n";
  return 0;
}
