// E15 — ablations over the design choices DESIGN.md calls out:
//   1. correction mode: quantum terminal corrections vs classical
//      post-processing of samples (resource-free on hardware);
//   2. linear-term style: paper's Eq. (10) gadget vs fusing the rotation
//      into the first mixer J angle (saves p|V| ancillas);
//   3. command scheduling: standard form vs reuse schedule (live width).
// All variants must agree on <C> to numerical precision.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/protocol.h"
#include "mbq/core/resources.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/scheduler.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(77);

  std::cout << "# E15 — ablations\n\n";

  // Instance: QUBO with linear terms so every knob matters.
  const Graph g = cycle_graph(5);
  qaoa::CostHamiltonian cost = qaoa::CostHamiltonian::maxcut(g);
  for (int q = 0; q < g.num_vertices(); ++q)
    cost.add_term({q}, 0.15 * (q + 1));
  const int p = 2;
  const qaoa::Angles a = qaoa::Angles::random(p, rng);
  const real reference = qaoa::qaoa_expectation(cost, a);

  Table t({"variant", "<C>", "|d<C>| vs gate model", "pattern qubits",
           "pattern CZ", "peak live"});

  auto add_row = [&](const std::string& name, core::CorrectionMode mode,
                     core::LinearTermStyle style, bool reschedule) {
    const core::MbqcQaoaSolver solver(cost, mode, style);
    auto cp = solver.compile(a);
    mbqc::Pattern pat = cp.pattern;
    if (reschedule) pat = mbqc::schedule_for_reuse(pat).pattern;
    Rng run_rng(4);
    const real val = solver.expectation(a, run_rng);
    Rng peek_rng(5);
    const int peak = mbqc::run(pat, peek_rng).peak_live;
    t.row()
        .add(name)
        .add(val, 9)
        .add(std::abs(val - reference), 3)
        .add(pat.num_wires())
        .add(pat.num_entangling())
        .add(peak);
  };

  add_row("quantum corrections, Eq.10 gadgets, compiled order",
          core::CorrectionMode::Quantum, core::LinearTermStyle::Gadget,
          false);
  add_row("quantum corrections, Eq.10 gadgets, reuse schedule",
          core::CorrectionMode::Quantum, core::LinearTermStyle::Gadget, true);
  add_row("quantum corrections, fused linear terms",
          core::CorrectionMode::Quantum,
          core::LinearTermStyle::FusedIntoMixer, false);
  add_row("classical post-processing, Eq.10 gadgets",
          core::CorrectionMode::ClassicalPostProcess,
          core::LinearTermStyle::Gadget, false);
  add_row("classical post-processing, fused linear terms",
          core::CorrectionMode::ClassicalPostProcess,
          core::LinearTermStyle::FusedIntoMixer, false);

  // Degree-bounded un-fusing (Sec. III / ref [49]): same instance with
  // the resource graph capped at degree 4.
  {
    core::CompileOptions opt;
    opt.max_wire_degree = 4;
    const auto cp = core::compile_qaoa(cost, a, opt);
    const auto [graph, wires] = cp.pattern.entanglement_graph();
    Rng run_rng(4);
    const auto r = mbqc::run(cp.pattern, run_rng);
    real val = 0.0;
    const auto table = cost.cost_table();
    for (std::uint64_t x = 0; x < r.output_state.size(); ++x)
      val += std::norm(r.output_state[x]) * table[x];
    t.row()
        .add("degree-bounded (<=4) un-fused resource graph")
        .add(val, 9)
        .add(std::abs(val - reference), 3)
        .add(cp.pattern.num_wires())
        .add(cp.pattern.num_entangling())
        .add(graph.max_degree());
  }

  t.print(std::cout, "all variants, p = 2 QUBO with linear terms on C5 "
                     "(last column of the un-fused row = resource-graph "
                     "max degree)");

  // Standard form: the algorithm-independent resource state.
  const core::MbqcQaoaSolver solver(cost);
  const auto cp = solver.compile(a);
  const auto standard = mbqc::standardize(cp.pattern);
  Table t2({"form", "commands N,E first", "peak live", "entanglement graph "
            "edges"});
  t2.row()
      .add("compiled (causal) order")
      .add(mbqc::is_standard(cp.pattern))
      .add(mbqc::peak_live_of(cp.pattern))
      .add(cp.pattern.entanglement_graph().first.num_edges());
  t2.row()
      .add("standard form N* E* M* C*")
      .add(mbqc::is_standard(standard))
      .add(mbqc::peak_live_of(standard))
      .add(standard.entanglement_graph().first.num_edges());
  t2.print(std::cout, "standardization (resource-state-first execution)");

  std::cout << "All variants give identical <C>.  Classical post-processing "
               "removes the\nterminal correction layer; fusing linear terms "
               "removes p|V| ancillas;\nreuse scheduling shrinks the live "
               "register; standardization exposes the\nalgorithm-independent "
               "graph state at the price of max width.\n";
  return 0;
}
