// E15 — ablations over the design choices DESIGN.md calls out, phrased
// as workload/backend combinations of the unified API:
//   1. correction mode: backend "mbqc" (quantum terminal corrections) vs
//      "mbqc-classical" (post-processing, resource-free on hardware);
//   2. linear-term style: paper's Eq. (10) gadget vs fusing the rotation
//      into the first mixer J angle (saves p|V| ancillas) — a Workload
//      compile option;
//   3. command scheduling: standard form vs reuse schedule (live width).
// All variants must agree on <C> to numerical precision.

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/scheduler.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(77);

  std::cout << "# E15 — ablations (through mbq::api)\n\n";

  // Instance: QUBO with linear terms so every knob matters.
  const Graph g = cycle_graph(5);
  qaoa::CostHamiltonian cost = qaoa::CostHamiltonian::maxcut(g);
  for (int q = 0; q < g.num_vertices(); ++q)
    cost.add_term({q}, 0.15 * (q + 1));
  const int p = 2;
  const qaoa::Angles a = qaoa::Angles::random(p, rng);
  api::Session reference(api::Workload::qaoa(cost), "statevector");
  const real ref_value = reference.expectation(a);

  Table t({"variant", "<C>", "|d<C>| vs gate model", "pattern qubits",
           "pattern CZ", "peak live"});

  auto add_row = [&](const std::string& name, const std::string& backend,
                     core::LinearTermStyle style, bool reschedule) {
    api::Workload workload = api::Workload::qaoa(cost);
    workload.with_linear_style(style);
    api::Session session(workload, backend, {.seed = 4});
    const real val = session.expectation(a);

    const bool quantum = backend == "mbqc";
    auto cp = workload.compile_pattern(a, quantum);
    mbqc::Pattern pat = cp.pattern;
    if (reschedule) pat = mbqc::schedule_for_reuse(pat).pattern;
    Rng peek_rng(5);
    const int peak = mbqc::run(pat, peek_rng).peak_live;
    t.row()
        .add(name)
        .add(val, 9)
        .add(std::abs(val - ref_value), 3)
        .add(pat.num_wires())
        .add(pat.num_entangling())
        .add(peak);
  };

  add_row("quantum corrections, Eq.10 gadgets, compiled order", "mbqc",
          core::LinearTermStyle::Gadget, false);
  add_row("quantum corrections, Eq.10 gadgets, reuse schedule", "mbqc",
          core::LinearTermStyle::Gadget, true);
  add_row("quantum corrections, fused linear terms", "mbqc",
          core::LinearTermStyle::FusedIntoMixer, false);
  add_row("classical post-processing, Eq.10 gadgets", "mbqc-classical",
          core::LinearTermStyle::Gadget, false);
  add_row("classical post-processing, fused linear terms", "mbqc-classical",
          core::LinearTermStyle::FusedIntoMixer, false);

  // Degree-bounded un-fusing (Sec. III / ref [49]): same instance with
  // the resource graph capped at degree 4.
  {
    api::Workload workload = api::Workload::qaoa(cost);
    workload.with_max_wire_degree(4);
    api::Session session(workload, "mbqc", {.seed = 4});
    const real val = session.expectation(a);
    const auto cp = workload.compile_pattern(a, true);
    const auto [graph, wires] = cp.pattern.entanglement_graph();
    t.row()
        .add("degree-bounded (<=4) un-fused resource graph")
        .add(val, 9)
        .add(std::abs(val - ref_value), 3)
        .add(cp.pattern.num_wires())
        .add(cp.pattern.num_entangling())
        .add(graph.max_degree());
  }

  t.print(std::cout, "all variants, p = 2 QUBO with linear terms on C5 "
                     "(last column of the un-fused row = resource-graph "
                     "max degree)");

  // Standard form: the algorithm-independent resource state.
  const auto cp = api::Workload::qaoa(cost).compile_pattern(a, true);
  const auto standard = mbqc::standardize(cp.pattern);
  Table t2({"form", "commands N,E first", "peak live", "entanglement graph "
            "edges"});
  t2.row()
      .add("compiled (causal) order")
      .add(mbqc::is_standard(cp.pattern))
      .add(mbqc::peak_live_of(cp.pattern))
      .add(cp.pattern.entanglement_graph().first.num_edges());
  t2.row()
      .add("standard form N* E* M* C*")
      .add(mbqc::is_standard(standard))
      .add(mbqc::peak_live_of(standard))
      .add(standard.entanglement_graph().first.num_edges());
  t2.print(std::cout, "standardization (resource-state-first execution)");

  // Routed, cross-checked evaluation of the same instance: the router
  // picks the cheapest capable adapter and a second independent adapter
  // re-evaluates every expectation (throws on >1e-9 disagreement).
  {
    const api::Workload workload = api::Workload::qaoa(cost);
    const api::RouterBackend router;
    const api::RouteDecision d = router.route(workload, a);
    api::Session checked(workload, "router-checked", {.seed = 4});
    std::cout << "router: picks '" << d.backend_name << "' for this cell";
    for (const auto& [name, why] : d.rejected)
      std::cout << "; passes over '" << name << "'";
    std::cout << ".  cross-checked <C> = " << checked.expectation(a)
              << " (|d| vs gate model = "
              << std::abs(checked.expectation(a) - ref_value) << ")\n\n";
  }

  std::cout << "All variants give identical <C>.  Classical post-processing "
               "removes the\nterminal correction layer; fusing linear terms "
               "removes p|V| ancillas;\nreuse scheduling shrinks the live "
               "register; standardization exposes the\nalgorithm-independent "
               "graph state at the price of max width.\n";
  return 0;
}
