// E13 — HPC scaling microbenchmarks (Google Benchmark): statevector gate
// kernels, fast QAOA layers, pattern execution, and the stabilizer
// backend, as functions of problem size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "mbq/api/api.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/clifford_runner.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/collapse_kernels.h"
#include "mbq/sim/collapse_threaded.h"
#include "mbq/stab/tableau.h"

namespace {

using namespace mbq;

void BM_Statevector1QGate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Statevector sv = Statevector::all_plus(n);
  int q = 0;
  for (auto _ : state) {
    sv.apply_h(q);
    q = (q + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_Statevector1QGate)->DenseRange(10, 22, 4);

void BM_StatevectorCz(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Statevector sv = Statevector::all_plus(n);
  int q = 0;
  for (auto _ : state) {
    sv.apply_cz(q, (q + 1) % n);
    q = (q + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_StatevectorCz)->DenseRange(10, 22, 4);

void BM_QaoaLayerFastPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Graph g = random_regular_graph(n, 3, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const auto table = cost.cost_table();
  Statevector sv = Statevector::all_plus(n);
  for (auto _ : state) {
    sv.apply_phase_of_cost(0.4, table);
    sv.apply_mixer_layer(0.3);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_QaoaLayerFastPath)->DenseRange(10, 18, 4);

void BM_PatternCompile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Graph g = random_regular_graph(n, 3, rng);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(4, rng);
  for (auto _ : state) {
    auto cp = core::compile_qaoa(cost, a);
    benchmark::DoNotOptimize(cp.pattern.num_wires());
  }
}
BENCHMARK(BM_PatternCompile)->DenseRange(8, 60, 26);

// Interpreted vs compiled execution of the same p=2 MaxCut pattern:
// items/sec IS shots/sec, so the compiled speedup reads directly off the
// two rows.  The interpreted row pays per-shot validation, command-list
// walking and basis construction; the compiled row replays the lowered
// op tape on one reused arena whose fused gadget/teleport kernels never
// materialize the doubled register.  (Outcome streams are bit-identical
// — test_compiled_pattern asserts it; the table below only times it.)
//
// Baselines, measured on the reference box (see
// BENCH_pattern_executor.json): the compiled row is > 2x the per-shot
// mbqc::run hot path this executor replaced (which also re-allocated
// its arena per measure), and ~1.6x the in-tree run_interpreted row
// below — run_interpreted itself inherited this change's simulator
// kernel upgrades (ping-pong collapse buffers, dedicated X/Z kernels,
// inlined complex products), so it is a strictly harder baseline than
// what shipped before.
void BM_PatternRunInterpreted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = cycle_graph(n);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, rng);
  const auto cp = core::compile_qaoa(cost, a);
  Rng run_rng(4);
  for (auto _ : state) {
    auto r = mbqc::run_interpreted(cp.pattern, run_rng);
    benchmark::DoNotOptimize(r.output_state.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternRunInterpreted)->Arg(6)->Arg(10)->Arg(12)->Arg(14);

void BM_PatternRunCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Graph g = cycle_graph(n);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, rng);
  const auto cp = core::compile_qaoa(cost, a);
  mbqc::PatternExecutor executor(
      std::make_shared<const mbqc::CompiledPattern>(cp.pattern));
  Rng run_rng(4);
  for (auto _ : state) {
    auto r = executor.run(run_rng);
    benchmark::DoNotOptimize(r.output_state.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternRunCompiled)->Arg(6)->Arg(10)->Arg(12)->Arg(14);

// The shots/sec-vs-n perf wall for the runtime-dispatched collapse
// kernels: identical p=2 cycle-graph MaxCut sampling, once forced onto
// the scalar reference kernels and once on the best vector flavor this
// host can run (the auto-dispatch choice).  items/sec IS shots/sec and
// the time column is ms/shot — the ROADMAP tracking numbers at n = 14
// and 16 read straight off the two rows.  Every row first replays a
// short differential leg and SkipWithError's on any bitwise divergence,
// so the wall can never report a speedup the kernel contract would not
// back with identical outcome streams.  Run
//   --benchmark_filter=PatternSample
//       --benchmark_out=BENCH_simd_kernels.json
// to produce the artifact CI uploads from both matrix legs.
SimdIsa best_vector_isa() {
  const auto isas = supported_simd_isas();
  for (SimdIsa want : {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon})
    for (SimdIsa have : isas)
      if (have == want) return want;
  return SimdIsa::Scalar;
}

void pattern_sample_isa(benchmark::State& state, SimdIsa isa) {
  const SimdIsa orig = active_simd_isa();
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(n));
  const qaoa::Angles a = qaoa::Angles::random(2, rng);
  const auto compiled = std::make_shared<const mbqc::CompiledPattern>(
      core::compile_qaoa(cost, a).pattern);

  auto stream = [&](SimdIsa leg) {
    force_simd_isa(leg);
    mbqc::PatternExecutor exec(compiled);
    Rng leg_rng(17);
    std::vector<std::uint64_t> xs;
    for (int shot = 0; shot < 8; ++shot)
      xs.push_back(exec.run_sample(leg_rng).x);
    return xs;
  };
  const bool identical = stream(SimdIsa::Scalar) == stream(isa);
  if (!identical) {
    force_simd_isa(orig);
    state.SkipWithError("scalar vs vector sampled streams diverged");
    return;
  }

  force_simd_isa(isa);
  mbqc::PatternExecutor exec(compiled);
  Rng run_rng(4);
  for (auto _ : state) {
    auto s = exec.run_sample(run_rng);
    benchmark::DoNotOptimize(s.x);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(isa_name(isa));
  force_simd_isa(orig);
}

void BM_PatternSampleScalar(benchmark::State& state) {
  pattern_sample_isa(state, SimdIsa::Scalar);
}
BENCHMARK(BM_PatternSampleScalar)
    ->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Repetitions(3)->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

void BM_PatternSampleSimd(benchmark::State& state) {
  pattern_sample_isa(state, best_vector_isa());
}
BENCHMARK(BM_PatternSampleSimd)
    ->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Repetitions(3)->ReportAggregatesOnly(true)
    ->Unit(benchmark::kMillisecond);

// The large-n wall: the same shots/sec-vs-n table pushed to n = 18..24
// (peak register 2^19..2^25 amplitudes — every sweep above the 2^14
// chunk cutoff runs the chunked drivers), with a threaded row and an
// f32-storage row next to the single-threaded f64 baseline.  Every row
// first replays a short differential leg against the scalar
// single-threaded kernels AT ITS OWN precision and SkipWithError's on
// any divergence — f64 rows must be bit-identical to scalar/1-thread,
// f32 rows must be bit-identical to the scalar/1-thread f32 leg (f32 is
// deterministic within its precision; it is NOT comparable to f64).
//
// Threading on a 1-vCPU box is within noise by construction — the
// honest signal there is the n-scaling SLOPE of the blocked drivers
// (ms/shot growing ~2x per +1 wire instead of the >2x DRAM-bound
// slope), not the threaded/single ratio.  Run
//   --benchmark_filter='LargeNSample.*/(18|20|22|24)'
// for the full wall (minutes at n = 24), or restrict to /(18|20) for a
// bounded CI pass.
void large_n_sample(benchmark::State& state, SimdIsa isa, int threads,
                    Precision prec) {
  const SimdIsa orig = active_simd_isa();
  const int orig_threads = thr::kernel_threads();
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto cost = qaoa::CostHamiltonian::maxcut(cycle_graph(n));
  const qaoa::Angles a = qaoa::Angles::random(2, rng);
  const auto compiled = std::make_shared<const mbqc::CompiledPattern>(
      core::compile_qaoa(cost, a).pattern);
  mbqc::ExecOptions opts;
  opts.precision = prec;

  auto stream = [&](SimdIsa leg, int t) {
    force_simd_isa(leg);
    thr::set_kernel_threads(t);
    mbqc::PatternExecutor exec(compiled, opts);
    Rng leg_rng(17);
    std::vector<std::uint64_t> xs;
    for (int shot = 0; shot < 2; ++shot)
      xs.push_back(exec.run_sample(leg_rng).x);
    return xs;
  };
  const bool identical = stream(SimdIsa::Scalar, 1) == stream(isa, threads);
  if (!identical) {
    force_simd_isa(orig);
    thr::set_kernel_threads(orig_threads);
    state.SkipWithError(
        "sampled streams diverged from the scalar single-threaded leg");
    return;
  }

  force_simd_isa(isa);
  thr::set_kernel_threads(threads);
  mbqc::PatternExecutor exec(compiled, opts);
  Rng run_rng(4);
  for (auto _ : state) {
    auto s = exec.run_sample(run_rng);
    benchmark::DoNotOptimize(s.x);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["kernel_threads"] = threads;
  state.SetLabel(std::string(isa_name(isa)) + "/" + precision_name(prec));
  force_simd_isa(orig);
  thr::set_kernel_threads(orig_threads);
}

void BM_LargeNSampleSimd(benchmark::State& state) {
  large_n_sample(state, best_vector_isa(), 1, Precision::F64);
}
BENCHMARK(BM_LargeNSampleSimd)
    ->Arg(18)->Arg(20)->Arg(22)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_LargeNSampleThreaded(benchmark::State& state) {
  large_n_sample(state, best_vector_isa(), 2, Precision::F64);
}
BENCHMARK(BM_LargeNSampleThreaded)
    ->Arg(18)->Arg(20)->Arg(22)->Arg(24)
    ->UseRealTime()  // the threaded row burns CPU on >1 thread
    ->Unit(benchmark::kMillisecond);

void BM_LargeNSampleF32(benchmark::State& state) {
  large_n_sample(state, best_vector_isa(), 1, Precision::F32);
}
BENCHMARK(BM_LargeNSampleF32)
    ->Arg(18)->Arg(20)->Arg(22)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_PatternRunClifford(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = cycle_graph(n);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a({kPi / 2}, {kPi / 4});
  const auto cp = core::compile_qaoa(cost, a);
  Rng rng(5);
  for (auto _ : state) {
    auto r = mbqc::run_clifford(cp.pattern, rng);
    benchmark::DoNotOptimize(r.outcomes.data());
  }
}
BENCHMARK(BM_PatternRunClifford)->DenseRange(16, 60, 22);

// Process-sharded Session sampling: shots/sec at 1 vs N worker
// processes on the p=2 MaxCut workload (items/sec IS shots/sec).  The
// 1-process row is the in-process path; rows with processes >= 2 fan
// contiguous shot slices out to single-threaded mbq_worker children
// (outcome streams are bit-identical across ALL rows — test_shard
// asserts it; this table only times the fan-out).  Speedup tracks the
// physical core count: on a 1-core box the sharded rows only measure
// protocol overhead.  Run with
//   --benchmark_filter=SessionSampleProcesses
//       --benchmark_out=BENCH_shard_scaling.json
// to produce the shard-scaling artifact CI uploads.
void BM_SessionSampleProcesses(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int processes = static_cast<int>(state.range(1));
  Rng rng(3);
  const Graph g = cycle_graph(n);
  const api::Workload w = api::Workload::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(2, rng);

  api::SessionOptions options;
  options.seed = 9;
  options.num_processes = processes;
  api::Session session(w, "mbqc", options);
  const int shots = 32;
  // Warm up outside the timed loop: compile/cache the pattern and (for
  // sharded rows) spawn the worker pool.
  session.sample(a, shots);
  if (processes > 1 && session.shard_workers() != processes)
    state.SkipWithError("worker pool did not spawn (mbq_worker missing?)");

  for (auto _ : state) {
    const api::SampleResult r = session.sample(a, shots);
    benchmark::DoNotOptimize(r.shots.data());
  }
  state.SetItemsProcessed(state.iterations() * shots);
  state.counters["processes"] = processes;
  state.counters["threads_inproc"] = num_threads();
}
BENCHMARK(BM_SessionSampleProcesses)
    ->Args({12, 1})
    ->Args({12, 2})
    ->Args({12, 4})
    ->Args({14, 1})
    ->Args({14, 2})
    ->Args({14, 4})
    // Wall clock, not parent CPU: the sharded rows burn their cycles in
    // the worker processes, which process CPU time never sees.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_GraphStateTableau(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = cycle_graph(n);
  for (auto _ : state) {
    Tableau t = Tableau::graph_state(g);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_GraphStateTableau)->DenseRange(128, 1024, 448);

}  // namespace

// Older libbenchmark JSON reporters (e.g. the distro 1.6 era) drop
// AddCustomContext keys from --benchmark_out files.  Patch them into
// the emitted JSON's "context" object directly so the build-type stamp
// is present regardless of library vintage.  Best-effort: a missing or
// unparseable file is left alone.
static std::string benchmark_out_path(int argc, char** argv) {
  const std::string key = "--benchmark_out=";
  std::string path;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind(key, 0) == 0)
      path = std::string(argv[i] + key.size());
  return path;
}

static void stamp_json_context(const std::string& path) {
  if (path.empty()) return;
  std::ifstream in(path);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  in.close();
  if (text.find("\"mbq_build_type\"") != std::string::npos) return;
  const std::string anchor = "\"context\": {";
  const std::size_t at = text.find(anchor);
  if (at == std::string::npos) return;
  std::string inject = "\n    \"mbq_build_type\": \"";
#ifdef NDEBUG
  inject += "release\",";
#else
  inject += "debug\",\n    \"debug_build\": true,";
#endif
  text.insert(at + anchor.size(), inject);
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

// Custom main instead of BENCHMARK_MAIN(): refuse to let unoptimized
// numbers masquerade as a perf wall.  An assertions-on (non-NDEBUG)
// build prints a loud warning and stamps "debug_build": true into the
// JSON context, so an artifact from the wrong build type is
// self-identifying (the committed BENCH_simd_kernels.json must come
// from a Release build — check its context block).
int main(int argc, char** argv) {
#ifndef NDEBUG
  std::fprintf(
      stderr,
      "\n*** WARNING: bench_scaling was built WITHOUT NDEBUG (Debug/"
      "assertions build).\n*** Every number below is unrepresentative of "
      "the optimized library.\n*** Rebuild with -DCMAKE_BUILD_TYPE=Release "
      "before citing or committing results.\n\n");
  benchmark::AddCustomContext("debug_build", "true");
#endif
  // The stock "library_build_type" context describes the BENCHMARK
  // library's build (a distro libbenchmark is often a debug build); this
  // key describes ours, which is the one the numbers depend on.
#ifdef NDEBUG
  benchmark::AddCustomContext("mbq_build_type", "release");
#else
  benchmark::AddCustomContext("mbq_build_type", "debug");
#endif
  // Initialize() consumes recognized flags, so grab the out path first.
  const std::string out_path = benchmark_out_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  stamp_json_context(out_path);
  return 0;
}
