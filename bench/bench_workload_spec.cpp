// WorkloadSpec pipeline costs: the codec itself (encode + decode of
// every serializable ansatz kind) and the headline row — sharded vs
// in-process sampling throughput for a third-order PUBO workload, the
// workload shape PR 4's shard layer could not ship at all.  Outcome
// streams are bit-identical across the process rows (test_workload_spec
// asserts it); the table times the fan-out only.  Run with
//   --benchmark_filter=PuboSample
//       --benchmark_out=BENCH_workload_spec.json
// to produce the artifact CI uploads.

#include <benchmark/benchmark.h>

#include "mbq/api/api.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/qaoa/hea.h"
#include "mbq/shard/protocol.h"

namespace {

using namespace mbq;

api::Workload pubo_workload(int n) {
  // Ring of overlapping third-order monomials plus a few pair terms:
  // order-3 everywhere, so every phase layer exercises the |S| = 3
  // gadget path.
  std::vector<qaoa::PuboTerm> terms;
  for (int i = 0; i < n; ++i)
    terms.push_back({(i % 2 == 0) ? 0.75 : -0.5,
                     {i, (i + 1) % n, (i + 2) % n}});
  for (int i = 0; i + 1 < n; i += 2) terms.push_back({0.25, {i, i + 1}});
  return api::Workload::pubo(n, terms, 0.5);
}

/// Codec throughput across ansatz kinds: arg 0 selects the workload.
void BM_SpecRoundTrip(benchmark::State& state) {
  Rng rng(5);
  const api::Workload w = [&]() -> api::Workload {
    switch (state.range(0)) {
      case 0: return pubo_workload(10);
      case 1:
        return api::Workload::mis_weighted(
            random_gnm_graph(10, 18, rng),
            std::vector<real>(10, 1.25));
      default:
        return api::Workload::parameterized(
            qaoa::CostHamiltonian::maxcut(path_graph(8)),
            qaoa::hea_param_circuit(path_graph(8), 3));
    }
  }();
  for (auto _ : state) {
    const auto frame = api::serialize_spec(w.spec());
    const api::WorkloadSpec back = api::parse_spec(frame);
    benchmark::DoNotOptimize(back.cost.num_qubits());
  }
  state.counters["bytes"] =
      static_cast<double>(api::serialize_spec(w.spec()).size());
}
BENCHMARK(BM_SpecRoundTrip)->Arg(0)->Arg(1)->Arg(2);

/// The satellite row: sharded vs in-process throughput for a
/// third-order PUBO instance on the mbqc backend.
void BM_PuboSampleProcesses(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int processes = static_cast<int>(state.range(1));
  Rng rng(3);
  const api::Workload w = pubo_workload(n);
  const qaoa::Angles a = qaoa::Angles::random(1, rng);

  api::SessionOptions options;
  options.seed = 9;
  options.num_processes = processes;
  api::Session session(w, "mbqc", options);
  const int shots = 32;
  // Warm up outside the timed loop: compile/cache the pattern and (for
  // sharded rows) spawn the worker pool.
  session.sample(a, shots);
  if (processes > 1 && session.shard_workers() != processes)
    state.SkipWithError("worker pool did not spawn (mbq_worker missing?)");

  for (auto _ : state) {
    const api::SampleResult r = session.sample(a, shots);
    benchmark::DoNotOptimize(r.shots.data());
  }
  state.SetItemsProcessed(state.iterations() * shots);
  state.counters["processes"] = processes;
  state.counters["threads_inproc"] = num_threads();
  state.counters["term_order"] = w.cost().max_order();
}
BENCHMARK(BM_PuboSampleProcesses)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({10, 1})
    ->Args({10, 2})
    // Wall clock, not parent CPU: the sharded rows burn their cycles in
    // the worker processes, which process CPU time never sees.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
