// E2 — Fig. 2: the QAOA circuit compiled to basic gates.
//
// Rebuilds the figure's 3-qubit example and reports, across instance
// families, the gate counts of the compiled circuit together with a
// verification column: the circuit unitary must equal
// exp(-i beta B) exp(-i gamma C) (up to global phase) layer by layer.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/graph/generators.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq {
namespace {

/// Dense exp(-i gamma C) exp(-i beta B) ... oracle for small n.
Matrix qaoa_oracle(const qaoa::CostHamiltonian& c, const qaoa::Angles& a) {
  const int n = c.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  Matrix u(dim, dim);
  // Start from H^{\otimes n}.
  Matrix h = Matrix::identity(1);
  for (int q = 0; q < n; ++q) h = gates::h().kron(h);
  u = h;
  const auto table = c.cost_table();
  for (int k = 0; k < a.p(); ++k) {
    Matrix phase(dim, dim);
    for (std::size_t x = 0; x < dim; ++x)
      phase(x, x) = std::exp(-kI * a.gamma[k] * table[x]);
    Matrix mix = Matrix::identity(dim);
    for (int q = 0; q < n; ++q)
      mix = gates::embed1(gates::exp_x(2 * a.beta[k]), q, n) * mix;
    u = mix * phase * u;
  }
  return u;
}

}  // namespace
}  // namespace mbq

int main() {
  using namespace mbq;
  Rng rng(7);

  std::cout << "# E2 / Fig. 2 — QAOA circuit construction\n\n";

  // The figure's instance: 3 qubits, one layer shown with H, RZ, RX.
  {
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    const auto c = qaoa::CostHamiltonian::maxcut(g);
    const qaoa::Angles a({0.4}, {0.7});
    const Circuit circ = qaoa::qaoa_circuit(c, a);
    std::cout << "Fig. 2 instance (path graph on 3 qubits, p = 1):\n\n```\n"
              << circ.str() << "```\n\n";
  }

  Table t({"graph", "|V|", "|E|", "p", "total gates",
           "entangling (compiled)", "2p|E| (paper)", "unitary == oracle"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path P4", path_graph(4)});
  cases.push_back({"cycle C5", cycle_graph(5)});
  cases.push_back({"complete K4", complete_graph(4)});
  cases.push_back({"star S5", star_graph(5)});
  cases.push_back({"Petersen", petersen_graph()});

  for (auto& cs : cases) {
    const auto c = qaoa::CostHamiltonian::maxcut(cs.g);
    for (int p : {1, 2}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);
      const Circuit circ = qaoa::qaoa_circuit(c, a);
      bool ok = true;
      if (cs.g.num_vertices() <= 5) {
        ok = Matrix::approx_equal_up_to_phase(circ.unitary(),
                                              qaoa_oracle(c, a), 1e-8);
      } else {
        // Verify on the state level for larger instances.
        Statevector sv(cs.g.num_vertices());
        circ.apply_to(sv);
        const Statevector fast = qaoa::qaoa_state(c, a);
        ok = std::abs(sv.fidelity_with(fast) - 1.0) < 1e-9;
      }
      t.row()
          .add(cs.name)
          .add(cs.g.num_vertices())
          .add(cs.g.num_edges())
          .add(p)
          .add(static_cast<std::int64_t>(circ.size()))
          .add(static_cast<std::int64_t>(circ.entangling_count_compiled()))
          .add(static_cast<std::int64_t>(2 * p * cs.g.num_edges()))
          .add(ok);
    }
  }
  t.print(std::cout, "gate counts and verification");
  std::cout << "The compiled entangling count equals the paper's 2p|E| "
               "baseline for standard\nphase-gadget compilation.\n";
  return 0;
}
