// E17 — noise sensitivity vs resource counts.
//
// The paper motivates tailored patterns by resource overhead: generic
// circuit->pattern translation needs far more entanglers, and each
// entangler is a noise opportunity.  This bench injects depolarizing
// noise after every E command and measures the average output fidelity
// of tailored vs generic patterns for the SAME QAOA instance — the
// resource gap becomes a fidelity gap.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq {
namespace {

real mean_fidelity(const mbqc::Pattern& p, const std::vector<cplx>& ideal,
                   real noise, int trials, Rng& rng) {
  mbqc::RunOptions opt;
  opt.entangler_noise = noise;
  real acc = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto r = mbqc::run(p, rng, opt);
    acc += fidelity(r.output_state, ideal);
  }
  return acc / trials;
}

}  // namespace
}  // namespace mbq

int main() {
  using namespace mbq;
  Rng rng(13);

  std::cout << "# E17 — depolarizing noise after every entangler: tailored "
               "vs generic patterns\n\n";

  const Graph g = cycle_graph(4);
  const auto cost = qaoa::CostHamiltonian::maxcut(g);
  const qaoa::Angles a = qaoa::Angles::random(1, rng);
  const auto ideal = qaoa::qaoa_state(cost, a).amplitudes();

  const auto tailored = core::compile_qaoa(cost, a);
  // The generic translation starts from |+...+> already, so drop the
  // H-preparation layer from the circuit before translating.
  Circuit layers(g.num_vertices());
  const Circuit full = qaoa::qaoa_circuit(cost, a);
  for (const Gate& gate : full.gates())
    if (gate.kind != GateKind::H) layers.append(gate);
  const auto generic = mbqc::pattern_from_circuit(layers, true);

  std::cout << "instance: MaxCut C4, p = 1; tailored pattern: "
            << tailored.pattern.num_entangling() << " CZ, generic: "
            << generic.num_entangling() << " CZ\n\n";

  Table t({"noise / entangler", "tailored mean fidelity",
           "generic mean fidelity", "advantage"});
  const int trials = 120;
  for (real noise : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
    Rng r1(100), r2(100);
    const real ft =
        mean_fidelity(tailored.pattern, ideal, noise, trials, r1);
    const real fg = mean_fidelity(generic, ideal, noise, trials, r2);
    t.row()
        .add(noise, 4)
        .add(ft, 5)
        .add(fg, 5)
        .add(ft - fg, 5);
  }
  t.print(std::cout);
  std::cout << "With equal per-entangler noise, the tailored construction's "
               "smaller\nN_E translates directly into higher output fidelity "
               "— the quantitative\nform of the paper's argument against "
               "generic translations.\n";
  return 0;
}
