// E16 — batched angle evaluation: wall-clock of the variational outer
// loop's fan-out.  A 32-point angle sweep (one simplex neighborhood's
// worth of candidates) is evaluated (a) as 32 serial expectation()
// calls and (b) as one expectation_batch() call, at increasing thread
// counts.  The contract under test and timing alike: batch values are
// bit-identical to the serial loop at every thread count (the per-point
// Rng::stream assignment makes them a pure function of seed and call
// index), so the speedup column is free of any accuracy trade-off.
//
// The acceptance bar for this experiment is >= 2x at 8 threads on the
// adaptive mbqc path when >= 8 hardware threads exist; single-core CI
// boxes report ~1x (oversubscribed threads), which the table makes
// visible rather than hiding.

#include <iostream>
#include <memory>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/compiled.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(2024);

  std::cout << "# E16 — batched angle evaluation (Session::expectation_batch)"
            << "\n\nHardware threads available: " << num_threads()
            << " (with OpenMP: " << (has_openmp() ? "yes" : "no") << ")\n\n";

  const Graph g = random_regular_graph(10, 3, rng);
  const api::Workload workload = api::Workload::maxcut(g);
  const int points_count = 32;
  std::vector<qaoa::Angles> points;
  points.reserve(points_count);
  for (int i = 0; i < points_count; ++i)
    points.push_back(qaoa::Angles::random(2, rng));

  Table t({"backend", "threads", "serial 32 pts [ms]", "batch 32 pts [ms]",
           "speedup", "bit-identical"});

  for (const std::string backend : {"mbqc", "statevector"}) {
    // Serial reference, timed once (it is single-threaded by nature).
    std::vector<real> serial;
    real serial_ms = 0.0;
    {
      api::Session session(workload, backend, {.seed = 7});
      Timer timer;
      for (const auto& a : points) serial.push_back(session.expectation(a));
      serial_ms = timer.milliseconds();
    }

    for (int threads : {1, 2, 4, 8}) {
      set_num_threads(threads);
      api::Session session(workload, backend, {.seed = 7});
      Timer timer;
      const std::vector<real> batch = session.expectation_batch(points);
      const real batch_ms = timer.milliseconds();
      bool identical = batch.size() == serial.size();
      for (std::size_t i = 0; identical && i < batch.size(); ++i)
        identical = batch[i] == serial[i];
      t.row()
          .add(backend)
          .add(threads)
          .add(serial_ms, 2)
          .add(batch_ms, 2)
          .add(serial_ms / batch_ms, 2)
          .add(identical);
    }
    set_num_threads(0);
  }
  t.print(std::cout,
          "32 random p=2 points, MaxCut on a 3-regular n=10 graph; the "
          "speedup column is serial/batch wall-clock");

  // The same fan-out through the optimizer's batch path: Nelder-Mead with
  // a batch objective overlaps its simplex evaluations.
  {
    opt::NelderMeadOptions nm;
    nm.max_evaluations = 120;
    const std::vector<real> x0 = qaoa::Angles::linear_ramp(2).flat();

    api::Session scalar_session(workload, "mbqc", {.seed = 11});
    Rng rng_a(3);
    Timer t_scalar;
    const auto scalar =
        opt::nelder_mead(scalar_session.objective(), x0, nm, rng_a);
    const real scalar_ms = t_scalar.milliseconds();

    api::Session batch_session(workload, "mbqc", {.seed = 11});
    Rng rng_b(3);
    Timer t_batch;
    const auto batch =
        opt::nelder_mead(batch_session.batch_objective(), x0, nm, rng_b);
    const real batch_ms = t_batch.milliseconds();

    std::cout << "\nNelder-Mead (120 evals, p=2): scalar objective "
              << scalar_ms << " ms, batch objective " << batch_ms
              << " ms; same optimum: "
              << (batch.value == scalar.value ? "yes" : "NO") << " (<C> = "
              << batch.value << ")\n";
  }

  // Compiled vs interpreted single-thread shot loops: the same p=2
  // MaxCut pattern executed shot by shot through the per-call
  // interpreter (validate + walk the variant list + rebuild bases every
  // shot) and through one PatternExecutor replaying the lowered op tape
  // on a reused arena.  Equal seeds must give equal outcome streams —
  // the bit-identical column is asserted, not assumed.
  {
    Table ct({"n", "path", "shots", "wall [ms]", "shots/sec", "speedup",
              "bit-identical"});
    for (const int n : {8, 12, 14}) {
      const Graph g = cycle_graph(n);
      const auto cost = qaoa::CostHamiltonian::maxcut(g);
      Rng angle_rng(3);
      const qaoa::Angles a = qaoa::Angles::random(2, angle_rng);
      const auto cp = core::compile_qaoa(cost, a);
      const int shots = n >= 12 ? 100 : 400;

      std::vector<std::vector<int>> interpreted_streams;
      Rng ri(9);
      Timer ti;
      for (int s = 0; s < shots; ++s)
        interpreted_streams.push_back(
            mbqc::run_interpreted(cp.pattern, ri).outcomes);
      const real interpreted_ms = ti.milliseconds();

      mbqc::PatternExecutor executor(
          std::make_shared<const mbqc::CompiledPattern>(cp.pattern));
      std::vector<std::vector<int>> compiled_streams;
      Rng rc(9);
      Timer tc;
      for (int s = 0; s < shots; ++s)
        compiled_streams.push_back(executor.run(rc).outcomes);
      const real compiled_ms = tc.milliseconds();

      const bool identical = interpreted_streams == compiled_streams;
      ct.row()
          .add(n)
          .add("interpreted")
          .add(shots)
          .add(interpreted_ms, 2)
          .add(1000.0 * shots / interpreted_ms, 1)
          .add(1.0, 2)
          .add(identical);
      ct.row()
          .add(n)
          .add("compiled")
          .add(shots)
          .add(compiled_ms, 2)
          .add(1000.0 * shots / compiled_ms, 1)
          .add(interpreted_ms / compiled_ms, 2)
          .add(identical);
    }
    std::cout << '\n';
    ct.print(std::cout,
             "single-thread shot loops on a p=2 MaxCut cycle pattern; "
             "bit-identical = compiled outcome streams equal the "
             "interpreter's for the same seed");
    std::cout
        << "\nNote: run_interpreted shares this build's upgraded simulator"
           "\nkernels; against the pre-executor per-shot mbqc::run (which"
           "\nalso reallocated its arena every measure) the compiled path"
           "\nmeasures >= 2.3x — see BENCH_pattern_executor.json.\n";
  }

  std::cout << "\nBatch slot i always draws rng.stream(base + i): the fan-out"
               "\nis a pure wall-clock knob, never an accuracy knob.\n";
  return 0;
}
