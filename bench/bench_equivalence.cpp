// E7 — the main result (Sec. III, Eq. 12): MBQC-QAOA equals gate-model
// QAOA for arbitrary layer count and arbitrary QUBO instances — phrased
// as a property of the unified backend API: every registered backend
// that supports an (instance, p) cell must report the same <C> as the
// statevector reference.
//
// Per cell the table shows |d<C>| per backend (— where the backend
// declines the cell, e.g. "clifford" at non-Clifford angles, "zx" past
// its contraction budget), the compiled pattern width, gflow existence
// (determinism certificate) and ms per adaptive mbqc expectation.

#include <iostream>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/open_graph.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(42);

  std::cout << "# E7 — backend equivalence (Sec. III / Eq. 12 through "
               "mbq::api)\n\n"
            << "Per cell: <C> from the statevector reference, then |d<C>| "
               "for every other\nregistry backend that accepts the cell, "
               "plus pattern width, gflow and the\ncost of one adaptive "
               "mbqc expectation.\n\n";

  struct Case {
    std::string name;
    Graph g;
    bool linear = false;
  };
  std::vector<Case> cases;
  cases.push_back({"path P5", path_graph(5), false});
  cases.push_back({"cycle C6", cycle_graph(6), false});
  cases.push_back({"complete K4", complete_graph(4), false});
  cases.push_back({"star S5", star_graph(5), false});
  cases.push_back({"3-regular n=6", random_regular_graph(6, 3, rng), false});
  cases.push_back({"G(6,8)", random_gnm_graph(6, 8, rng), false});
  cases.push_back({"QUBO w/ linear n=5", random_gnm_graph(5, 6, rng), true});

  const std::vector<std::string> backends =
      api::BackendRegistry::instance().names();
  std::vector<std::string> columns = {"instance", "p", "pattern qubits",
                                      "<C> (statevector)"};
  for (const auto& name : backends)
    if (name != "statevector") columns.push_back("|d<C>| " + name);
  columns.push_back("router picks");
  columns.push_back("gflow");
  columns.push_back("ms/mbqc run");
  Table t(columns);
  const api::RouterBackend router;  // per-cell routing report

  for (const auto& cs : cases) {
    qaoa::CostHamiltonian cost = qaoa::CostHamiltonian::maxcut(cs.g);
    if (cs.linear) {
      for (int q = 0; q < cs.g.num_vertices(); ++q)
        cost.add_term({q}, 0.2 + 0.1 * q);
    }
    const api::Workload workload = api::Workload::qaoa(cost);
    for (int p : {1, 2, 3, 4}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);

      api::Session reference(workload, "statevector");
      const real expect_c = reference.expectation(a);

      const auto cp = workload.compile_pattern(a, true);
      const auto og = mbqc::open_graph_from_pattern(cp.pattern);
      const auto gf = mbqc::find_gflow(og);
      const bool has_gflow = gf.has_value() && mbqc::verify_gflow(og, *gf);

      auto& row = t.row();
      row.add(cs.name).add(p).add(cp.pattern.num_wires()).add(expect_c, 6);
      real ms = 0.0;
      for (const auto& name : backends) {
        if (name == "statevector") continue;
        api::Session session(workload, name,
                             {.seed = std::uint64_t(p * 1000 +
                                                    cs.g.num_vertices())});
        if (!session.unsupported_reason(a).empty()) {
          row.add("—");
          continue;
        }
        Timer timer;
        const real val = session.expectation(a);
        if (name == "mbqc") ms = timer.milliseconds();
        row.add(std::abs(val - expect_c), 3);
      }
      row.add(router.route(workload, a).backend_name);
      row.add(has_gflow).add(ms, 2);
    }
  }
  t.print(std::cout);
  std::cout << "Zero deviation and gflow in every supported cell: each "
               "execution path of the\nunified API reproduces QAOA exactly "
               "at every depth, as the paper derives.\n";
  return 0;
}
