// E7 — the main result (Sec. III, Eq. 12): MBQC-QAOA equals gate-model
// QAOA for arbitrary layer count and arbitrary QUBO instances.
//
// For every (family, n, p) cell the compiled pattern is executed with
// sampled measurement branches; the table reports the worst fidelity
// against the gate-model state and the agreement of <C>.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/gflow.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(42);

  std::cout << "# E7 — MBQC-QAOA vs gate-model QAOA (Sec. III / Eq. 12)\n\n"
            << "Per cell: 4 full adaptive runs (random branches, random "
               "angles), worst\nfidelity vs the gate-model state, |d<C>|, "
               "and gflow existence\n(determinism certificate).\n\n";

  struct Case {
    std::string name;
    Graph g;
    bool linear = false;
  };
  std::vector<Case> cases;
  cases.push_back({"path P5", path_graph(5), false});
  cases.push_back({"cycle C6", cycle_graph(6), false});
  cases.push_back({"complete K4", complete_graph(4), false});
  cases.push_back({"star S5", star_graph(5), false});
  cases.push_back({"3-regular n=6", random_regular_graph(6, 3, rng), false});
  cases.push_back({"G(6,8)", random_gnm_graph(6, 8, rng), false});
  cases.push_back({"QUBO w/ linear n=5", random_gnm_graph(5, 6, rng), true});

  Table t({"instance", "|V|", "|E|", "p", "pattern qubits", "worst fidelity",
           "|d<C>|", "gflow", "ms/run"});

  for (const auto& cs : cases) {
    qaoa::CostHamiltonian cost = qaoa::CostHamiltonian::maxcut(cs.g);
    if (cs.linear) {
      for (int q = 0; q < cs.g.num_vertices(); ++q)
        cost.add_term({q}, 0.2 + 0.1 * q);
    }
    const auto table = cost.cost_table();
    for (int p : {1, 2, 3, 4}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);
      const auto cp = core::compile_qaoa(cost, a);
      const auto expect = qaoa::qaoa_state(cost, a, &table);
      const real expect_c = expect.expectation_diagonal(table);

      real worst_fid = 1.0;
      real worst_dc = 0.0;
      Timer timer;
      const int runs = 4;
      Rng run_rng(p * 1000 + cs.g.num_vertices());
      for (int i = 0; i < runs; ++i) {
        const auto r = mbqc::run(cp.pattern, run_rng);
        worst_fid =
            std::min(worst_fid, fidelity(r.output_state, expect.amplitudes()));
        real c = 0.0;
        for (std::uint64_t x = 0; x < r.output_state.size(); ++x)
          c += std::norm(r.output_state[x]) * table[x];
        worst_dc = std::max(worst_dc, std::abs(c - expect_c));
      }
      const real ms = timer.milliseconds() / runs;

      const auto og = mbqc::open_graph_from_pattern(cp.pattern);
      const auto gf = mbqc::find_gflow(og);
      const bool has_gflow = gf.has_value() && mbqc::verify_gflow(og, *gf);

      t.row()
          .add(cs.name)
          .add(cs.g.num_vertices())
          .add(cs.g.num_edges())
          .add(p)
          .add(cp.pattern.num_wires())
          .add(worst_fid, 12)
          .add(worst_dc, 3)
          .add(has_gflow)
          .add(ms, 2);
    }
  }
  t.print(std::cout);
  std::cout << "Fidelity 1 and gflow in every cell: the measurement-based "
               "protocol\nreproduces QAOA exactly at every depth, as the "
               "paper derives.\n";
  return 0;
}
