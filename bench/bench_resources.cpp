// E8 — resource estimates (Sec. III-A).
//
// Columns reproduce the paper's accounting:
//   N_Q = p(|E| + 2|V|), N_E = p(2|E| + 2|V|)    (tailored MBQC, QUBO)
//   gate model: |V| qubits, >= 2p|E| entanglers   (standard compilation)
//   generic circuit->pattern translation           (the overhead baseline)
// The measured columns must equal the closed forms exactly; the ordering
// gate-model < tailored MBQC < generic translation reproduces the
// discussion in the paper.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/compiler.h"
#include "mbq/core/resources.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/from_circuit.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(11);

  std::cout << "# E8 — resource estimates (Sec. III-A)\n\n";

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path P8", path_graph(8)});
  cases.push_back({"cycle C8", cycle_graph(8)});
  cases.push_back({"complete K6", complete_graph(6)});
  cases.push_back({"Petersen", petersen_graph()});
  cases.push_back({"3-regular n=10", random_regular_graph(10, 3, rng)});
  cases.push_back({"grid 3x4", grid_graph(3, 4)});

  Table t({"instance", "p", "N_Q formula", "N_Q measured", "N_E formula",
           "N_E measured", "gate-model qubits", "gate-model CX (2p|E|)",
           "generic MBQC qubits", "generic MBQC CZ"});

  for (const auto& cs : cases) {
    const auto cost = qaoa::CostHamiltonian::maxcut(cs.g);
    for (int p : {1, 2, 4}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);
      const auto cp = core::compile_qaoa(cost, a);
      const auto r = core::measure_resources(cost, p, cp);
      // Generic translation baseline of the same circuit.
      const auto generic =
          mbqc::pattern_from_circuit(qaoa::qaoa_circuit(cost, a), true);
      t.row()
          .add(cs.name)
          .add(p)
          .add(r.paper_ancilla_bound)
          .add(r.ancillas)
          .add(r.paper_entangler_bound)
          .add(r.entanglers)
          .add(r.gate_model_qubits)
          .add(r.gate_model_entanglers)
          .add(generic.num_prepared() - cs.g.num_vertices())
          .add(generic.num_entangling());
    }
  }
  t.print(std::cout, "pure-quadratic QUBO (MaxCut)");

  // Linear-term overhead (general QUBO, Eq. 12 case).
  Table t2({"instance", "p", "extra qubits (paper: p|V|)",
            "extra CZ (paper: p|V|)", "fused-mixer extra qubits"});
  for (const auto& cs : cases) {
    auto cost = qaoa::CostHamiltonian::maxcut(cs.g);
    for (int q = 0; q < cs.g.num_vertices(); ++q) cost.add_term({q}, 0.3);
    const auto quad = qaoa::CostHamiltonian::maxcut(cs.g);
    for (int p : {1, 2}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);
      const auto with_linear = core::compile_qaoa(cost, a);
      const auto without = core::compile_qaoa(quad, a);
      core::CompileOptions fused;
      fused.linear_style = core::LinearTermStyle::FusedIntoMixer;
      const auto fused_cp = core::compile_qaoa(cost, a, fused);
      t2.row()
          .add(cs.name)
          .add(p)
          .add(with_linear.pattern.num_prepared() -
               without.pattern.num_prepared())
          .add(with_linear.pattern.num_entangling() -
               without.pattern.num_entangling())
          .add(fused_cp.pattern.num_prepared() -
               without.pattern.num_prepared());
    }
  }
  t2.print(std::cout, "linear-term overhead (general QUBO)");
  std::cout
      << "Measured counts equal the closed-form N_Q, N_E exactly; the gate "
         "model\nuses fewer circuit resources (as the paper concedes), and "
         "the generic\nJ-decomposition translation pays a large overhead — "
         "the motivation for\nthe tailored construction.\n";
  return 0;
}
