// E11 — MIS with constraint-preserving mixers in MBQC (Sec. IV).
//
// Reports, per instance and depth: feasibility of the MBQC-run ansatz
// (infeasible probability mass must be 0), expected and best independent
// set size, the exact optimum, the greedy baseline, and the gadget-count
// scaling of the partial mixers (exponential in degree).

#include <bit>
#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/mis.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/mixers.h"

int main() {
  using namespace mbq;
  Rng rng(23);

  std::cout << "# E11 — MIS QAOA in the MBQC paradigm (Sec. IV)\n\n";

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path P5", path_graph(5)});
  cases.push_back({"cycle C6", cycle_graph(6)});
  cases.push_back({"star S5", star_graph(5)});
  cases.push_back({"G(6,7)", random_gnm_graph(6, 7, rng)});

  Table t({"instance", "p", "infeasible mass", "E[|set|]", "best shot",
           "alpha(G) exact", "greedy", "pattern qubits"});

  for (const auto& cs : cases) {
    const int n = cs.g.num_vertices();
    // Exact independence number by brute force.
    int alpha = 0;
    std::uint64_t dim = 1ULL << n;
    for (std::uint64_t x = 0; x < dim; ++x)
      if (qaoa::is_independent_set(cs.g, x))
        alpha = std::max(alpha, std::popcount(x));
    const int greedy = std::popcount(opt::greedy_mis(cs.g));

    for (int p : {1, 2}) {
      const qaoa::Angles a({0.6, 0.9}, {0.8, 0.5});
      const qaoa::Angles use(
          std::vector<real>(a.gamma.begin(), a.gamma.begin() + p),
          std::vector<real>(a.beta.begin(), a.beta.begin() + p));
      const auto cp = core::compile_mis_qaoa(cs.g, use);
      Rng run_rng(p);
      const auto r = mbqc::run(cp.pattern, run_rng);
      real infeasible = 0.0, esize = 0.0;
      for (std::uint64_t x = 0; x < r.output_state.size(); ++x) {
        const real pr = std::norm(r.output_state[x]);
        if (!qaoa::is_independent_set(cs.g, x)) infeasible += pr;
        esize += pr * std::popcount(x);
      }
      // Shots: sample the final state across fresh pattern runs.
      int best = 0;
      for (int shot = 0; shot < 24; ++shot) {
        const auto rr = mbqc::run(cp.pattern, run_rng);
        real u = run_rng.uniform();
        std::uint64_t x = 0;
        for (std::uint64_t i = 0; i < rr.output_state.size(); ++i) {
          u -= std::norm(rr.output_state[i]);
          if (u <= 0.0) {
            x = i;
            break;
          }
        }
        best = std::max(best, static_cast<int>(std::popcount(x)));
      }
      t.row()
          .add(cs.name)
          .add(p)
          .add(infeasible, 3)
          .add(esize, 4)
          .add(best)
          .add(alpha)
          .add(greedy)
          .add(cp.pattern.num_wires());
    }
  }
  t.print(std::cout, "feasibility and quality through the MBQC protocol");

  // Gadget scaling of the partial mixer.
  Table t2({"max degree", "gadgets per partial mixer (2^deg)",
            "layer gadgets on star S_n"});
  for (int d = 1; d <= 6; ++d) {
    const Graph star = star_graph(d + 1);
    t2.row()
        .add(d)
        .add(static_cast<std::int64_t>(
            core::mis_partial_mixer_gadget_count(star, 0)))
        .add(static_cast<std::int64_t>(
            core::mis_mixer_layer_gadget_count(star)));
  }
  t2.print(std::cout, "partial-mixer cost scaling (ZH expansion)");
  std::cout
      << "Infeasible mass is exactly 0 in every run — the hard constraints "
         "are\nenforced by construction, no penalties needed (Sec. IV).  "
         "The\nexponential gadget growth with degree is the honest price of "
         "a generic\nmulti-controlled rotation.\n";
  return 0;
}
