// E12 — XY mixers (Sec. V): e^{i beta (XX+YY)} compiled to MBQC via
// basis-changed ZZ gadgets, verified against the dense oracle, plus the
// one-hot (graph-coloring) subspace-preservation property.

#include <bit>
#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/compiler.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/runner.h"
#include "mbq/qaoa/mixers.h"

int main() {
  using namespace mbq;
  std::cout << "# E12 — XY mixers in MBQC (Sec. V)\n\n";

  // Gate-level check: circuit vs dense oracle.
  Table t({"beta", "circuit == oracle (up to phase)",
           "MBQC fidelity (4 runs, worst)", "pattern qubits", "pattern CZ"});
  Rng rng(3);
  for (real beta : {-1.1, -0.3, 0.45, 1.7}) {
    const Circuit c = qaoa::xy_mixer_pair(2, 0, 1, beta);
    const Matrix xx = gates::x().kron(gates::x());
    const Matrix yy = gates::y().kron(gates::y());
    const Matrix i4 = Matrix::identity(4);
    const cplx cb = std::cos(beta), isb = kI * std::sin(beta);
    const Matrix oracle = (i4 * cb + xx * isb) * (i4 * cb + yy * isb);
    const bool circuit_ok =
        Matrix::approx_equal_up_to_phase(c.unitary(), oracle, 1e-9);

    // MBQC: compile the circuit acting on |++>.
    const auto cp = core::compile_circuit_tailored(c);
    Statevector sv = Statevector::all_plus(2);
    c.apply_to(sv);
    real worst = 1.0;
    Rng run_rng(7);
    for (int i = 0; i < 4; ++i) {
      const auto r = mbqc::run(cp.pattern, run_rng);
      worst = std::min(worst, fidelity(r.output_state, sv.amplitudes()));
    }
    t.row()
        .add(beta, 3)
        .add(circuit_ok)
        .add(worst, 12)
        .add(cp.pattern.num_wires())
        .add(cp.pattern.num_entangling());
  }
  t.print(std::cout, "XY pair mixer verification");

  // One-hot subspace preservation through the MBQC pipeline: a 4-qubit
  // one-hot register evolved by a ring-XY mixer layer.
  {
    const int n = 4;
    Circuit prep(n);
    // |1000> from |++++>: H everywhere then X on qubit 0.
    for (int q = 0; q < n; ++q) prep.h(q);
    prep.x(0);
    prep.append(qaoa::xy_mixer_ring(n, {0, 1, 2, 3}, 0.8));
    const auto cp = core::compile_circuit_tailored(prep);
    Rng run_rng(9);
    const auto r = mbqc::run(cp.pattern, run_rng);
    real w1 = 0.0;
    real moved = 0.0;
    for (std::uint64_t x = 0; x < r.output_state.size(); ++x) {
      const real pr = std::norm(r.output_state[x]);
      if (std::popcount(x) == 1) w1 += pr;
      if (std::popcount(x) == 1 && x != 1) moved += pr;
    }
    Table t2({"weight-1 mass", "mass moved off the start vertex",
              "pattern qubits"});
    t2.row().add(w1, 9).add(moved, 4).add(cp.pattern.num_wires());
    t2.print(std::cout, "one-hot (coloring) subspace preservation, MBQC run");
  }
  std::cout << "The XY gadgets preserve Hamming weight exactly (one-hot mass "
               "1) while\nmoving amplitude between feasible states — the "
               "coloring-mixer property\nthe paper points to in Sec. V.\n";
  return 0;
}
