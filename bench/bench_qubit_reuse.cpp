// E9 — qubit reuse (Sec. III-A, citing DeCross et al. [51]).
//
// The conservative count N_Q assumes no reuse; scheduling measurements
// early and preparations late shrinks the LIVE register to about
// |V| + O(1).  The table compares the pattern width, the naive peak of
// the standard (resource-state-first) ordering, and the reuse schedule's
// peak, plus the runner's observed peak during execution.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/runner.h"
#include "mbq/mbqc/scheduler.h"
#include "mbq/mbqc/standardize.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(19);

  std::cout << "# E9 — qubit-reuse scheduling (Sec. III-A / ref [51])\n\n";

  Table t({"instance", "p", "total wires (|V|+N_Q)", "standard-form peak",
           "reuse-schedule peak", "runner observed peak", "reduction"});

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path P6", path_graph(6)});
  cases.push_back({"cycle C6", cycle_graph(6)});
  cases.push_back({"Petersen", petersen_graph()});
  cases.push_back({"3-regular n=8", random_regular_graph(8, 3, rng)});
  cases.push_back({"complete K5", complete_graph(5)});

  for (const auto& cs : cases) {
    const auto cost = qaoa::CostHamiltonian::maxcut(cs.g);
    for (int p : {1, 2, 4}) {
      const qaoa::Angles a = qaoa::Angles::random(p, rng);
      const auto cp = core::compile_qaoa(cost, a);
      const auto standard = mbqc::standardize(cp.pattern);
      const auto sched = mbqc::schedule_for_reuse(cp.pattern);
      // Observed peak while actually executing the scheduled pattern.
      int observed = 0;
      if (cs.g.num_vertices() <= 10) {
        Rng run_rng(3);
        observed = mbqc::run(sched.pattern, run_rng).peak_live;
      } else {
        observed = sched.peak_live;
      }
      const real reduction =
          1.0 - static_cast<real>(sched.peak_live) /
                    static_cast<real>(standard.num_wires());
      t.row()
          .add(cs.name)
          .add(p)
          .add(cp.pattern.num_wires())
          .add(mbqc::peak_live_of(standard))
          .add(sched.peak_live)
          .add(observed)
          .add(format_real(100.0 * reduction, 3) + "%");
    }
  }
  t.print(std::cout);
  std::cout << "Reuse keeps the live register near |V|+2 regardless of p, "
               "while the\nno-reuse width grows linearly in p — \"the number "
               "of qubits required can\nbe significantly reduced ... by "
               "reusing qubits after measurement\".\n";
  return 0;
}
