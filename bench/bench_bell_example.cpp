// E3 — the Sec. II-B worked example (and Appendix A): the measurement
// pattern {M4^Z -> n, M2^X -> m, Lambda3^m(X)} on the square graph state
// creates a Bell pair on qubits 1 and 3.
//
// We enumerate all four outcome branches on the statevector runner,
// verify each branch is maximally entangled, identify the residual
// n-dependent byproduct the paper leaves in the diagram (searching over
// Pauli corrections), and cross-check correlators on the stabilizer
// runner.

#include <cmath>
#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/linalg/unitaries.h"
#include "mbq/mbqc/clifford_runner.h"
#include "mbq/mbqc/runner.h"
#include "mbq/sim/pauli.h"

namespace mbq {
namespace {

/// |det| of the 2x2 amplitude matrix: 1/2 for maximally entangled states.
real entanglement_det(const std::vector<cplx>& s) {
  return std::abs(s[0] * s[3] - s[1] * s[2]);
}

mbqc::Pattern bell_pattern() {
  // Paper qubits 1,2,3,4 -> wires 0,1,2,3; square 0-1-2-3-0.
  mbqc::Pattern p;
  for (int v = 0; v < 4; ++v) p.add_prep(v);
  p.add_entangle(0, 1);
  p.add_entangle(1, 2);
  p.add_entangle(2, 3);
  p.add_entangle(3, 0);
  p.add_measure(3, MeasBasis::Z, 0.0);                     // M4^Z -> n
  const signal_t m = p.add_measure(1, MeasBasis::X, 0.0);  // M2^X -> m
  p.add_correct_x(2, SignalExpr(m));                       // Lambda3^m(X)
  p.set_outputs({0, 2});
  return p;
}

Matrix pauli_of(int k) {
  switch (k) {
    case 1: return gates::x();
    case 2: return gates::y();
    case 3: return gates::z();
    default: return gates::id2();
  }
}

const char* pauli_name(int k) {
  static const char* names[] = {"I", "X", "Y", "Z"};
  return names[k];
}

}  // namespace
}  // namespace mbq

int main() {
  using namespace mbq;
  const mbqc::Pattern p = bell_pattern();
  std::cout << "# E3 — square-graph Bell example (Sec. II-B, Appendix A)\n\n"
            << "Pattern:\n```\n"
            << p.str() << "```\n";

  const auto branches = mbqc::run_all_branches(p);
  // Find the Pauli P0 ⊗ P2 aligning each branch with branch (0,0).
  const auto& ref = branches[0].output_state;
  Table t({"branch (n,m)", "|amp matrix det|", "aligning Pauli (q1,q3)",
           "fidelity after correction"});
  for (std::size_t b = 0; b < branches.size(); ++b) {
    const int n = branches[b].outcomes[0];
    const int m = branches[b].outcomes[1];
    real best_fid = 0.0;
    std::string best_pauli = "?";
    for (int p0 = 0; p0 < 4; ++p0) {
      for (int p2 = 0; p2 < 4; ++p2) {
        const Matrix u = gates::embed2(pauli_of(p2).kron(pauli_of(p0)), 0, 1,
                                       2);  // q0 low bit
        const auto corrected = u * branches[b].output_state;
        const real fid = fidelity(corrected, ref);
        if (fid > best_fid + 1e-12) {
          best_fid = fid;
          best_pauli = std::string(pauli_name(p0)) + "⊗" + pauli_name(p2);
        }
      }
    }
    t.row()
        .add("(" + std::to_string(n) + "," + std::to_string(m) + ")")
        .add(entanglement_det(branches[b].output_state), 6)
        .add(best_pauli)
        .add(best_fid, 9);
  }
  t.print(std::cout, "statevector runner, all branches");
  std::cout
      << "All four branches are maximally entangled (|det| = 1/2) and in "
         "fact\nIDENTICAL (aligning Pauli = I⊗I): the residual n-pi "
         "byproduct of the\npaper's final diagram is Z^n ⊗ Z^n on the output "
         "pair, which stabilizes\nthe Bell state and therefore acts "
         "trivially — the pattern is fully\ndeterministic with only the "
         "Lambda3^m(X) correction.\n\n";

  // Stabilizer cross-check: enumerate the nontrivial correlators of the
  // output pair; a maximally entangled stabilizer pair has exactly three.
  Rng rng(5);
  Table t2({"run", "n", "m", "stabilizing correlators of (q1, q3)"});
  for (int run = 0; run < 4; ++run) {
    auto r = mbqc::run_clifford(p, rng);
    const int qa = r.output_qubits[0];
    const int qb = r.output_qubits[1];
    const int width = r.tableau.num_qubits();
    std::string found;
    int count = 0;
    for (int pa = 0; pa < 4; ++pa) {
      for (int pb = 0; pb < 4; ++pb) {
        if (pa == 0 && pb == 0) continue;
        std::uint64_t xm = 0, zm = 0;
        if (pa == 1 || pa == 2) xm |= 1ULL << qa;
        if (pa == 2 || pa == 3) zm |= 1ULL << qa;
        if (pb == 1 || pb == 2) xm |= 1ULL << qb;
        if (pb == 2 || pb == 3) zm |= 1ULL << qb;
        const int e = r.tableau.expectation(PauliString(xm, zm, width));
        if (e != 0) {
          if (count) found += ", ";
          found += std::string(e > 0 ? "+" : "-") + pauli_name(pa) +
                   pauli_name(pb);
          ++count;
        }
      }
    }
    t2.row().add(run).add(r.outcomes[0]).add(r.outcomes[1]).add(found);
  }
  t2.print(std::cout, "stabilizer runner: full correlator enumeration");
  std::cout << "Exactly three nontrivial two-qubit stabilizers in every run: "
               "the output\npair is a maximally entangled stabilizer (Bell-"
               "type) state on the tableau\nbackend as well.\n";
  return 0;
}
