// Spec-compiler costs and effects: what does the pass pipeline cost per
// compile, and what does it actually change?  Every row carries the pass
// effect counters, INCLUDING the no-win rows — a clean MaxCut spec where
// every counter is zero is a result, not a failure (the default pass set
// mirrors rewrites the pattern compilers already perform, so the honest
// headline is "sampling throughput is unchanged; compile cost is sub-
// microsecond-per-term and paid once per Workload").  Run with
//   --benchmark_out=BENCH_speccomp.json
// to produce the artifact CI uploads.

#include <benchmark/benchmark.h>

#include "mbq/api/api.h"
#include "mbq/common/rng.h"
#include "mbq/graph/generators.h"
#include "mbq/speccomp/json.h"
#include "mbq/speccomp/speccomp.h"

namespace {

using namespace mbq;

/// A spec the passes genuinely rewrite: exactly cancelled cost terms
/// plus a declarative circuit with removable and fusable rotations.
api::WorkloadSpec rewritable_spec(int n) {
  qaoa::CostHamiltonian cost(n, 0.5);
  for (int i = 0; i < n; ++i) {
    cost.add_term({i, (i + 1) % n}, 0.5 + 0.0625 * i);
    cost.add_term({i}, 0.25);
    cost.add_term({i}, -0.25);  // merges to an exact zero
  }
  qaoa::ParamCircuit pc(n);
  for (int i = 0; i < n; ++i) {
    pc.rz(i, qaoa::Param::constant(0.0));  // peephole fodder
    pc.rz(i, qaoa::Param::gamma(0, 1.0));
    pc.rz(i, qaoa::Param::gamma(0, 1.0));  // fuses with the previous
    pc.rx(i, qaoa::Param::beta(0, 2.0));
  }
  return api::Workload::parameterized(std::move(cost), std::move(pc)).spec();
}

/// A spec the passes cannot improve: the honest no-win row.
api::WorkloadSpec clean_spec(int n) {
  return api::Workload::maxcut(cycle_graph(n)).spec();
}

void record_effects(benchmark::State& state,
                    const speccomp::CompiledSpec& compiled) {
  using PS = speccomp::PassStats;
  state.counters["terms_dropped"] =
      static_cast<double>(compiled.total(&PS::terms_dropped));
  state.counters["gates_eliminated"] =
      static_cast<double>(compiled.total(&PS::gates_eliminated));
  state.counters["gates_fused"] =
      static_cast<double>(compiled.total(&PS::gates_fused));
  state.counters["wires_deferrable"] =
      static_cast<double>(compiled.total(&PS::wires_deferrable));
  state.counters["changed"] = compiled.changed ? 1.0 : 0.0;
}

/// Pipeline cost per compile: arg 0 picks the spec shape, arg 1 the
/// option mode (0 = off, 1 = defaults, 2 = all passes).
void BM_CompileSpec(benchmark::State& state) {
  const api::WorkloadSpec spec =
      state.range(0) == 0 ? clean_spec(12) : rewritable_spec(12);
  const speccomp::SpecCompileOptions opt =
      state.range(1) == 0   ? speccomp::SpecCompileOptions::off()
      : state.range(1) == 1 ? speccomp::SpecCompileOptions{}
                            : speccomp::SpecCompileOptions{true, true, true,
                                                           true};
  speccomp::CompiledSpec last;
  for (auto _ : state) {
    last = speccomp::compile_spec(spec, opt);
    benchmark::DoNotOptimize(last.changed);
  }
  record_effects(state, last);
  state.counters["terms_in"] = static_cast<double>(spec.cost.terms().size());
  state.counters["terms_out"] =
      static_cast<double>(last.spec.cost.terms().size());
}
BENCHMARK(BM_CompileSpec)
    ->ArgNames({"rewritable", "mode"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2});

/// JSON text codec vs the binary codec, same spec.
void BM_SpecCodec(benchmark::State& state) {
  const api::WorkloadSpec spec = rewritable_spec(12);
  if (state.range(0) == 0) {
    for (auto _ : state) {
      const auto frame = api::serialize_spec(spec);
      const api::WorkloadSpec back = api::parse_spec(frame);
      benchmark::DoNotOptimize(back.cost.num_qubits());
    }
    state.counters["bytes"] =
        static_cast<double>(api::serialize_spec(spec).size());
  } else {
    for (auto _ : state) {
      const std::string text = speccomp::spec_to_json(spec);
      const api::WorkloadSpec back = speccomp::spec_from_json(text);
      benchmark::DoNotOptimize(back.cost.num_qubits());
    }
    state.counters["bytes"] =
        static_cast<double>(speccomp::spec_to_json(spec).size());
  }
}
BENCHMARK(BM_SpecCodec)->ArgNames({"json"})->Arg(0)->Arg(1);

/// End-to-end: sampling throughput with the pipeline on vs off.  The
/// default passes are bit-neutral BY MIRRORING rewrites the pattern
/// compilers already do, so "no speedup" here is the expected, honest
/// answer — the row exists to prove optimization costs nothing per
/// sample (compilation is cached per Workload).
void BM_SampleOnVsOff(benchmark::State& state) {
  api::Workload w =
      state.range(1) == 0
          ? api::Workload::pubo(8,
                                {{1.5, {0, 1, 2}},
                                 {-0.75, {2, 3}},
                                 {0.5, {4, 5, 6}},
                                 {0.25, {6, 7}},
                                 {0.25, {3, 4}},
                                 // The pubo frontend drops this exact
                                 // cancellation itself, so the PUBO row
                                 // is an honest no-win for the passes.
                                 {-0.25, {3, 4}}},
                                0.5)
          : api::Workload::from_spec(rewritable_spec(8));
  w.with_spec_compile(state.range(0) == 0
                          ? speccomp::SpecCompileOptions::off()
                          : speccomp::SpecCompileOptions{});
  api::SessionOptions opt;
  opt.seed = 9;
  opt.num_processes = 1;
  api::Session session(w, "statevector", opt);
  const qaoa::Angles a({0.45}, {-0.3});
  for (auto _ : state) {
    const api::SampleResult r = session.sample(a, 64);
    benchmark::DoNotOptimize(r.shots.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
  record_effects(state, w.lowered());
}
BENCHMARK(BM_SampleOnVsOff)
    ->ArgNames({"opt", "circuit"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

}  // namespace

BENCHMARK_MAIN();
