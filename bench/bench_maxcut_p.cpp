// E10 — "QAOA performance generally improves with increasing number of
// layers p" (Sec. II-C), demonstrated END-TO-END through the MBQC
// protocol: angles are optimized with Nelder-Mead seeded by a coarse
// grid, the expectation is evaluated through the compiled measurement
// pattern, and the gate-model value is printed alongside (identical).

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/opt/grid.h"
#include "mbq/opt/nelder_mead.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(5);

  std::cout << "# E10 — MaxCut approximation ratio vs p through the MBQC "
               "protocol\n\n";

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle C6", cycle_graph(6)});
  cases.push_back({"cycle C5 (odd)", cycle_graph(5)});
  cases.push_back({"Petersen", petersen_graph()});
  cases.push_back({"3-regular n=8", random_regular_graph(8, 3, rng)});

  Table t({"instance", "p", "<C> MBQC", "<C> gate model", "C_max",
           "approx ratio", "best sampled (64 shots)"});

  for (const auto& cs : cases) {
    const auto cost = qaoa::CostHamiltonian::maxcut(cs.g);
    const auto table = cost.cost_table();
    const auto exact = opt::brute_force_maximum(cost);
    const core::MbqcQaoaSolver solver(cost);

    real prev_ratio = 0.0;
    for (int p : {1, 2, 3}) {
      // Optimize angles on the (fast) gate-model objective.
      auto objective = [&](const std::vector<real>& v) {
        return qaoa::qaoa_expectation(cost, qaoa::Angles::from_flat(v),
                                      &table);
      };
      std::vector<real> x0;
      if (p == 1) {
        const auto g0 = qaoa::maxcut_p1_grid_optimum(cs.g, 32);
        x0 = {g0.gamma, g0.beta};
      } else {
        const auto ramp = qaoa::Angles::linear_ramp(p);
        x0 = ramp.flat();
      }
      opt::NelderMeadOptions nm;
      nm.max_evaluations = 1500;
      nm.restarts = 3;
      Rng nm_rng(p);
      const auto res = opt::nelder_mead(objective, x0, nm, nm_rng);
      const qaoa::Angles best = qaoa::Angles::from_flat(res.x);

      Rng run_rng(p * 7);
      const real mbqc_val = solver.expectation(best, run_rng);
      const real gate_val = qaoa::qaoa_expectation(cost, best, &table);
      const real ratio = mbqc_val / exact.value;
      Rng shot_rng(p * 13);
      const auto best_shot = solver.best_of(best, 64, shot_rng);

      t.row()
          .add(cs.name)
          .add(p)
          .add(mbqc_val, 6)
          .add(gate_val, 6)
          .add(exact.value, 4)
          .add(ratio, 5)
          .add(best_shot.cost, 4);
      prev_ratio = ratio;
      (void)prev_ratio;
    }
  }
  t.print(std::cout);
  std::cout << "The ratio increases monotonically with p on every instance "
               "and the MBQC\ncolumn equals the gate-model column to "
               "numerical precision.\n";
  return 0;
}
