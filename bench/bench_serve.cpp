// Serving-daemon wall clock: what does routing a Session through mbqd
// cost, and what does the shared fleet buy?  Three measurements against
// an in-process daemon (unix socket, 2 workers):
//
//   1. single tenant — remote sample() vs the single-process local path
//      (the protocol + scheduling overhead, paid per call);
//   2. four concurrent tenants — aggregate throughput when four Sessions
//      share one fleet (the multi-tenant case mbqd exists for);
//   3. warm prepare cache — latency of a tiny request whose (spec,
//      angles) fingerprint the fleet has already compiled vs a cold one.
//
// Every remote result is bit-compared against the local path before its
// row counts — a fast wrong answer is not a benchmark result.
//
// Honest-box note: on a single-vCPU container the fleet time-slices one
// core, so concurrency CANNOT beat 1x in aggregate here; the point of
// rows 1 and 2 on such a box is the overhead bound, and the numbers
// below say so explicitly.  The warm-cache row measures compile
// avoidance and is meaningful at any core count.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "mbq/api/api.h"
#include "mbq/common/parallel.h"
#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/graph/generators.h"
#include "mbq/serve/client.h"
#include "mbq/serve/daemon.h"
#include "mbq/shard/worker_pool.h"

int main() {
  using namespace mbq;

  const std::string sock =
      "/tmp/mbq-bench-serve-" + std::to_string(::getpid()) + ".sock";
  serve::DaemonOptions opts;
  opts.endpoints = {"unix:" + sock};
  opts.workers = 2;
  opts.worker_path = shard::resolve_worker_path();
  if (opts.worker_path.empty()) {
    std::cerr << "bench_serve: mbq_worker not found next to this binary\n";
    return 1;
  }
  serve::Daemon daemon(std::move(opts));
  daemon.start();
  const std::string endpoint = "unix:" + sock;

  std::cout << "# bench_serve — mbqd serving daemon wall clock\n\n"
            << "Hardware threads available: " << num_threads()
            << "; fleet: " << daemon.workers() << " workers on " << endpoint
            << "\n\n";

  Rng rng(2026);
  const Graph g = random_regular_graph(12, 3, rng);
  const api::Workload workload = api::Workload::maxcut(g);
  const qaoa::Angles a({0.42}, {0.31});
  constexpr int kShots = 256;

  const auto remote_opts = [&](std::uint64_t seed) {
    api::SessionOptions o;
    o.seed = seed;
    o.daemon_endpoint = endpoint;
    return o;
  };
  const auto local_opts = [](std::uint64_t seed) {
    api::SessionOptions o;
    o.seed = seed;
    o.num_processes = 1;
    return o;
  };

  const auto same_shots = [](const api::SampleResult& x,
                             const api::SampleResult& y) {
    if (x.shots.size() != y.shots.size()) return false;
    for (std::size_t s = 0; s < x.shots.size(); ++s)
      if (x.shots[s].x != y.shots[s].x) return false;
    return true;
  };

  Table t({"configuration", "shots", "wall [ms]", "shots/s",
           "vs local", "bit-identical"});
  bool all_identical = true;
  const auto fmt = [](const char* pattern, real v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), pattern, v);
    return std::string(buf);
  };

  // --- 1. single tenant, remote vs local --------------------------------
  real local_ms = 0.0;
  api::SampleResult local_result;
  {
    api::Session local(workload, "mbqc", local_opts(1));
    local.sample(a, 8);  // compile outside the timed window
    Timer timer;
    local_result = local.sample(a, kShots);
    local_ms = timer.milliseconds();
  }
  t.row()
      .add("local, 1 process")
      .add(kShots)
      .add(fmt("%.1f", local_ms))
      .add(fmt("%.0f", kShots / (local_ms / 1e3)))
      .add("1.00x")
      .add("(reference)");

  {
    api::Session remote(workload, "mbqc", remote_opts(1));
    remote.sample(a, 8);  // connect + fleet compile outside the window
    Timer timer;
    const api::SampleResult remote_result = remote.sample(a, kShots);
    const real ms = timer.milliseconds();
    // Both sessions are on their SECOND sample call: same stream index.
    api::Session ref(workload, "mbqc", local_opts(1));
    ref.sample(a, 8);
    const bool identical = same_shots(remote_result, ref.sample(a, kShots));
    all_identical = all_identical && identical;
    t.row()
        .add("remote, 1 tenant")
        .add(kShots)
        .add(fmt("%.1f", ms))
        .add(fmt("%.0f", kShots / (ms / 1e3)))
        .add(fmt("%.2fx", local_ms / ms))
        .add(identical ? "yes" : "NO");
  }

  // --- 2. four concurrent tenants ---------------------------------------
  {
    constexpr int kTenants = 4;
    // Warm the fleet per fingerprint and pre-compute local references.
    std::vector<api::SampleResult> refs;
    for (int i = 0; i < kTenants; ++i) {
      api::Session warm(workload, "mbqc", remote_opts(100 + i));
      warm.sample(a, 8);
      api::Session ref(workload, "mbqc", local_opts(100 + i));
      ref.sample(a, 8);
      refs.push_back(ref.sample(a, kShots));
    }
    std::vector<api::SampleResult> got(kTenants);
    std::atomic<int> failures{0};
    Timer timer;
    std::vector<std::thread> tenants;
    for (int i = 0; i < kTenants; ++i)
      tenants.emplace_back([&, i] {
        try {
          api::Session s(workload, "mbqc", remote_opts(100 + i));
          s.sample(a, 8);  // second call matches the reference's second
          got[i] = s.sample(a, kShots);
        } catch (...) {
          failures.fetch_add(1);
        }
      });
    for (auto& th : tenants) th.join();
    const real ms = timer.milliseconds();
    bool identical = failures.load() == 0;
    for (int i = 0; identical && i < kTenants; ++i)
      identical = same_shots(got[i], refs[i]);
    all_identical = all_identical && identical;
    const real total_shots = static_cast<real>(kTenants) * kShots;
    t.row()
        .add("remote, 4 tenants (aggregate)")
        .add(kTenants * kShots)
        .add(fmt("%.1f", ms))
        .add(fmt("%.0f", total_shots / (ms / 1e3)))
        .add(fmt("%.2fx", (kTenants * local_ms) / ms))
        .add(identical ? "yes" : "NO");
  }
  t.print(std::cout);

  // --- 3. warm prepare-cache latency ------------------------------------
  // Tiny requests (2 shots) isolate the compile: a cold fingerprint pays
  // pattern compilation in the worker, a warm one is served from its
  // prepare LRU.  Medians over 9 fresh/repeated angle points.
  {
    serve::DaemonClient client(endpoint, "bench-serve");
    shard::Request req;
    req.kind = shard::TaskKind::kSample;
    // The statevector backend front-loads its work into prepare (a
    // 2^n-entry cost table; ~tens of ms at n = 16) and then samples in
    // microseconds — exactly the shape where the warm cache pays.  (For
    // mbqc the per-shot pattern run dominates and the same cache saves
    // only the ~2 ms compile.)
    req.backend = "statevector";
    req.seed = 9;
    Rng wrng(4242);
    req.workload = api::Workload::maxcut(random_regular_graph(16, 3, wrng));
    req.shots = 2;
    req.end = 2;

    constexpr int kReps = 9;
    std::vector<real> cold_ms, warm_ms;
    Rng arng(555);
    for (int i = 0; i < kReps; ++i) {
      req.points = {qaoa::Angles::random(2, arng)};
      Timer timer;
      const auto first = client.run(req);
      cold_ms.push_back(timer.milliseconds());
      timer.reset();
      const auto again = client.run(req);
      warm_ms.push_back(timer.milliseconds());
      if (first.warm_hit || !again.warm_hit || first.outcomes != again.outcomes)
        all_identical = false;
    }
    std::sort(cold_ms.begin(), cold_ms.end());
    std::sort(warm_ms.begin(), warm_ms.end());
    const real cold = cold_ms[kReps / 2], warm = warm_ms[kReps / 2];
    std::cout << "\nwarm prepare cache (2-shot request, median of " << kReps
              << "): cold " << cold << " ms, warm " << warm << " ms ("
              << cold / warm << "x)\n";
  }

  std::cout << "\n" << serve::format_stats(daemon.stats()) << "\n"
            << (all_identical
                    ? "all remote results bit-identical to local: yes\n"
                    : "BIT-IDENTITY VIOLATION — see rows above\n");
  daemon.stop();
  return all_identical ? 0 : 1;
}
