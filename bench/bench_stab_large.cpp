// E14 — resource states and Clifford-point patterns at scale.
//
// Graph states are stabilizer states, so preparation and Pauli-basis
// pattern execution run on the tableau simulator far beyond statevector
// reach.  This bench prepares MBQC-QAOA resource states with hundreds of
// qubits and executes full adaptive patterns at Clifford parameter
// points, checking output-register correlators against the statevector
// result computed on the small problem register.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/core/compiler.h"
#include "mbq/graph/generators.h"
#include "mbq/mbqc/clifford_runner.h"
#include "mbq/qaoa/qaoa.h"
#include "mbq/sim/pauli.h"
#include "mbq/stab/tableau.h"

int main() {
  using namespace mbq;
  Rng rng(31);

  std::cout << "# E14 — stabilizer backend: graph states and Clifford "
               "patterns at scale\n\n";

  // 1. Resource-state preparation timing.
  Table t({"graph state", "qubits", "edges", "prep ms"});
  for (int n : {100, 400, 900}) {
    const Graph ring = cycle_graph(n);
    Timer timer;
    Tableau tab = Tableau::graph_state(ring);
    t.row().add("ring C_n").add(n).add(ring.num_edges()).add(
        timer.milliseconds(), 3);
  }
  {
    const Graph grid = grid_graph(20, 20);
    Timer timer;
    Tableau tab = Tableau::graph_state(grid);
    t.row()
        .add("cluster 20x20")
        .add(grid.num_vertices())
        .add(grid.num_edges())
        .add(timer.milliseconds(), 3);
  }
  t.print(std::cout, "resource-state preparation (tableau)");

  // 2. Full adaptive MBQC-QAOA at Clifford points, large instances.
  Table t2({"instance", "p", "pattern qubits", "run ms",
            "edge <ZZ> matches statevector"});
  for (int n : {12, 20, 40}) {
    const Graph g = cycle_graph(n);
    const auto cost = qaoa::CostHamiltonian::maxcut(g);
    // gamma = pi/2, beta = pi/4 are Clifford for MaxCut gadgets.
    const qaoa::Angles a({kPi / 2}, {kPi / 4});
    for (int p : {1, 2}) {
      qaoa::Angles ap(std::vector<real>(p, kPi / 2),
                      std::vector<real>(p, kPi / 4));
      const auto cp = core::compile_qaoa(cost, ap);
      Timer timer;
      const auto r = mbqc::run_clifford(cp.pattern, rng);
      const real ms = timer.milliseconds();
      bool match = true;
      if (n <= 20) {
        const Statevector ref = qaoa::qaoa_state(cost, ap);
        for (const Edge& e : g.edges()) {
          const real expect = std::real(
              PauliString(0, (1ULL << e.u) | (1ULL << e.v), n)
                  .expectation(ref));
          const int got = r.tableau.expectation_zs(
              {r.output_qubits[e.u], r.output_qubits[e.v]});
          if (std::abs(expect - got) > 1e-9) match = false;
        }
      }
      t2.row()
          .add("ring C" + std::to_string(n))
          .add(p)
          .add(cp.pattern.num_wires())
          .add(ms, 3)
          .add(n <= 20 ? (match ? "yes" : "NO") : "n/a (too wide for sv)");
    }
  }
  t2.print(std::cout, "adaptive Clifford MBQC-QAOA runs");
  std::cout << "Patterns with hundreds of physical qubits execute in "
               "milliseconds on the\ntableau; where the statevector "
               "reference exists the correlators agree\nexactly.\n";
  return 0;
}
