// E16 — iterative quantum optimization (Sec. V outlook; refs [56], [60],
// [61]): correlation-guided contraction where every expectation value is
// obtained through the measurement-based protocol, compared against
// plain (non-iterative) QAOA sampling at the same depth, greedy rounding
// and the exact optimum.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/core/iterative.h"
#include "mbq/core/protocol.h"
#include "mbq/graph/generators.h"
#include "mbq/opt/exact.h"
#include "mbq/qaoa/analytic.h"
#include "mbq/qaoa/qaoa.h"

int main() {
  using namespace mbq;
  Rng rng(57);

  std::cout << "# E16 — iterative (quantum-enhanced greedy) MBQC "
               "optimization\n\n";

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle C8", cycle_graph(8)});
  cases.push_back({"Petersen", petersen_graph()});
  cases.push_back({"3-regular n=10", random_regular_graph(10, 3, rng)});
  cases.push_back({"G(9,14)", random_gnm_graph(9, 14, rng)});

  Table t({"instance", "C_max", "iterative value", "iterative ratio",
           "plain p=1 QAOA best of 64", "SA baseline", "rounds"});

  for (const auto& cs : cases) {
    const std::vector<real> w(cs.g.num_edges(), 1.0);
    const auto cost = qaoa::CostHamiltonian::maxcut(cs.g);
    const auto exact = opt::brute_force_maximum(cost);

    Rng it_rng(1);
    const core::IterativeResult iter =
        core::iterative_maxcut(cs.g, w, {}, it_rng);

    // Plain QAOA at p=1 optimum, best of 64 shots through the protocol.
    const auto p1 = qaoa::maxcut_p1_grid_optimum(cs.g, 32);
    const core::MbqcQaoaSolver solver(cost);
    Rng shot_rng(2);
    const auto plain =
        solver.best_of(qaoa::Angles({p1.gamma}, {p1.beta}), 64, shot_rng);

    opt::AnnealOptions sa_opt;
    sa_opt.sweeps = 60;
    Rng sa_rng(3);
    const auto sa = opt::simulated_annealing(cost, sa_opt, sa_rng);

    t.row()
        .add(cs.name)
        .add(exact.value, 4)
        .add(iter.value, 4)
        .add(iter.value / exact.value, 4)
        .add(plain.cost, 4)
        .add(sa.value, 4)
        .add(static_cast<std::int64_t>(iter.rounds.size()));
  }
  t.print(std::cout);
  std::cout << "The iterative scheme matches or beats one-shot sampling at "
               "the same depth\nby re-optimizing angles on every contracted "
               "(weighted) residual instance —\nthe Sec. V observation that "
               "MBQC expectation estimation slots directly\ninto iterative "
               "solvers.\n";
  return 0;
}
