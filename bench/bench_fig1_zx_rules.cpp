// E1 — Fig. 1: the ZX rewrite rules.
//
// Each rule is instantiated on randomized diagrams (random phases,
// arities, edge mixes); the diagram tensor before and after must agree —
// exactly for the scalar-exact rules, up to a constant for the others.
// The table reports the maximum deviation observed and the rewrite
// throughput.

#include <iostream>

#include "mbq/common/rng.h"
#include "mbq/common/table.h"
#include "mbq/common/timer.h"
#include "mbq/linalg/tensor.h"
#include "mbq/zx/diagram.h"
#include "mbq/zx/rules.h"
#include "mbq/zx/tensor_eval.h"

namespace mbq::zx {
namespace {

struct RuleStats {
  int applications = 0;
  real max_exact_dev = 0.0;
  real max_prop_dev = 0.0;
  real seconds = 0.0;
};

void expose(Diagram& d, int node, int extra) {
  for (int i = 0; i < extra; ++i) {
    const int out = d.add_output();
    d.add_edge(node, out);
  }
}

template <typename Setup>
RuleStats exercise(const char* /*name*/, int trials, Rng& rng, Setup&& setup,
                   bool exact) {
  RuleStats st;
  Timer timer;
  for (int t = 0; t < trials; ++t) {
    Diagram d;
    auto apply = setup(d, rng);  // returns a callable applying the rule
    const Diagram before = d;
    if (!apply()) continue;
    ++st.applications;
    const Tensor ta = evaluate(before);
    const Tensor tb = evaluate(d);
    st.max_prop_dev =
        std::max(st.max_prop_dev, Tensor::proportionality_distance(ta, tb));
    if (exact)
      st.max_exact_dev = std::max(st.max_exact_dev,
                                  Tensor::max_abs_diff(ta, tb));
  }
  st.seconds = timer.seconds();
  return st;
}

}  // namespace
}  // namespace mbq::zx

int main() {
  using namespace mbq;
  using namespace mbq::zx;
  Rng rng(2024);
  const int trials = 60;

  Table table({"rule (Fig. 1)", "applications", "max |T-T'| (exact rules)",
               "max 1-cos (up to scalar)", "ms total"});

  auto report = [&](const char* name, const RuleStats& st, bool exact) {
    table.row()
        .add(name)
        .add(st.applications)
        .add(exact ? format_real(st.max_exact_dev, 3) : std::string("n/a"))
        .add(st.max_prop_dev, 3)
        .add(st.seconds * 1e3, 3);
  };

  // (f) fusion
  report("(f) spider fusion",
         exercise("f", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const bool x = r.coin();
                    const int a = x ? d.add_x(r.angle()) : d.add_z(r.angle());
                    const int b = x ? d.add_x(r.angle()) : d.add_z(r.angle());
                    const int links = 1 + (int)r.uniform_index(2);
                    for (int l = 0; l < links; ++l) d.add_edge(a, b);
                    expose(d, a, 1 + (int)r.uniform_index(2));
                    expose(d, b, 1 + (int)r.uniform_index(2));
                    return [&d, a, b] { return rules::fuse(d, a, b); };
                  },
                  true),
         true);

  // (h) colour change
  report("(h) colour change",
         exercise("h", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const int v =
                        r.coin() ? d.add_z(r.angle()) : d.add_x(r.angle());
                    const int deg = 1 + (int)r.uniform_index(3);
                    for (int i = 0; i < deg; ++i) {
                      const int out = d.add_output();
                      if (r.coin()) {
                        d.add_edge(v, out);
                      } else {
                        d.add_hadamard_edge(v, out);
                      }
                    }
                    return [&d, v] { return rules::color_change(d, v); };
                  },
                  true),
         true);

  // (id)
  report("(id) identity removal",
         exercise("id", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const int left = d.add_z(r.angle());
                    const int mid = r.coin() ? d.add_z(0.0) : d.add_x(0.0);
                    const int right = d.add_x(r.angle());
                    d.add_edge(left, mid);
                    d.add_edge(mid, right);
                    expose(d, left, 1);
                    expose(d, right, 1);
                    return [&d, mid] { return rules::remove_identity(d, mid); };
                  },
                  true),
         true);

  // (hh)
  report("(hh) Hadamard cancel",
         exercise("hh", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const int a = d.add_z(r.angle());
                    const int b = d.add_z(r.angle());
                    const int h1 = d.add_hbox();
                    const int h2 = d.add_hbox();
                    d.add_edge(a, h1);
                    d.add_edge(h1, h2);
                    d.add_edge(h2, b);
                    expose(d, a, 1);
                    expose(d, b, 1);
                    return [&d, h1, h2] { return rules::cancel_hh(d, h1, h2); };
                  },
                  true),
         true);

  // (pi)
  report("(pi) pi-commutation",
         exercise("pi", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const bool pix = r.coin();
                    const int s = pix ? d.add_z(r.angle()) : d.add_x(r.angle());
                    const int pi = pix ? d.add_x(kPi) : d.add_z(kPi);
                    const int in = d.add_input();
                    d.add_edge(in, pi);
                    d.add_edge(pi, s);
                    expose(d, s, 1 + (int)r.uniform_index(3));
                    return [&d, pi] { return rules::pi_copy(d, pi); };
                  },
                  true),
         true);

  // (c)
  report("(c) state copy",
         exercise("c", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const bool sx = r.coin();
                    const int spider = sx ? d.add_z(0.0) : d.add_x(0.0);
                    const int st = sx ? d.add_x(r.coin() ? kPi : 0.0)
                                      : d.add_z(r.coin() ? kPi : 0.0);
                    d.add_edge(st, spider);
                    expose(d, spider, 1 + (int)r.uniform_index(3));
                    return [&d, st] { return rules::state_copy(d, st); };
                  },
                  true),
         true);

  // (b)
  report("(b) bialgebra",
         exercise("b", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const int z = d.add_z(0.0);
                    const int x = d.add_x(0.0);
                    d.add_edge(z, x);
                    const int nz = 1 + (int)r.uniform_index(2);
                    const int nx = 1 + (int)r.uniform_index(2);
                    for (int i = 0; i < nz; ++i) {
                      const int in = d.add_input();
                      d.add_edge(in, z);
                    }
                    for (int i = 0; i < nx; ++i) {
                      const int out = d.add_output();
                      d.add_edge(x, out);
                    }
                    return [&d, z, x] { return rules::bialgebra(d, z, x); };
                  },
                  false),
         false);

  // (hopf)
  report("(hopf)",
         exercise("hopf", trials, rng,
                  [](Diagram& d, Rng& r) {
                    const int z = d.add_z(r.angle());
                    const int x = d.add_x(r.angle());
                    d.add_edge(z, x);
                    d.add_edge(z, x);
                    expose(d, z, 1);
                    expose(d, x, 1);
                    return [&d, z, x] { return rules::hopf(d, z, x); };
                  },
                  true),
         true);

  std::cout << "# E1 / Fig. 1 — ZX rewrite rule verification\n\n"
            << "Every rule applied on randomized diagrams; tensors compared "
               "before/after.\nExact rules must satisfy |T-T'| <= 1e-9; all "
               "rules must be proportional (1-cos <= 1e-9).\n\n";
  table.print(std::cout);
  return 0;
}
