#pragma once
// Dense complex matrices.
//
// Sized for verification work (unitaries on <= ~12 qubits, ZX tensor
// evaluation), not for the statevector hot path, which lives in mbq/sim.
// Row-major storage, value semantics.

#include <vector>

#include "mbq/common/error.h"
#include "mbq/common/types.h"

namespace mbq {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<cplx> data);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  cplx& operator()(std::size_t r, std::size_t c);
  const cplx& operator()(std::size_t r, std::size_t c) const;

  const std::vector<cplx>& data() const noexcept { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(cplx scalar) const;
  friend Matrix operator*(cplx scalar, const Matrix& m) { return m * scalar; }

  Matrix adjoint() const;
  Matrix transpose() const;
  Matrix conj() const;
  cplx trace() const;

  /// Kronecker product (this ⊗ rhs); qubit 0 of the result is the
  /// LOW-order index of `this` block convention documented in kron().
  Matrix kron(const Matrix& rhs) const;

  /// Frobenius norm.
  real norm() const;
  /// max_ij |a_ij - b_ij|.
  static real max_abs_diff(const Matrix& a, const Matrix& b);

  bool is_square() const noexcept { return rows_ == cols_; }
  /// ||U U† - I||_max <= tol.
  bool is_unitary(real tol = kTol) const;

  /// True if a == c * b for some unimodular-or-positive scalar c != 0
  /// (equality up to global phase and normalization).
  static bool approx_equal_up_to_phase(const Matrix& a, const Matrix& b,
                                       real tol = kTol);
  /// Strict elementwise comparison.
  static bool approx_equal(const Matrix& a, const Matrix& b, real tol = kTol);

  std::string str(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Matrix-vector product.
std::vector<cplx> operator*(const Matrix& m, const std::vector<cplx>& v);

/// Inner product <a|b> (conjugate-linear in a).
cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// |<a|b>|^2 / (<a|a><b|b>): squared fidelity of two (unnormalized) pure
/// state vectors.
real fidelity(const std::vector<cplx>& a, const std::vector<cplx>& b);

}  // namespace mbq
