#include "mbq/linalg/unitaries.h"

#include <cmath>

#include "mbq/common/bits.h"

namespace mbq::gates {

namespace {
const real kInvSqrt2 = 1.0 / std::sqrt(2.0);
}

Matrix id2() { return Matrix::identity(2); }

Matrix x() { return Matrix(2, 2, {0, 1, 1, 0}); }

Matrix y() {
  return Matrix(2, 2, {0, cplx{0, -1}, cplx{0, 1}, 0});
}

Matrix z() { return Matrix(2, 2, {1, 0, 0, -1}); }

Matrix h() {
  return Matrix(2, 2, {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}

Matrix s() { return Matrix(2, 2, {1, 0, 0, kI}); }
Matrix sdg() { return Matrix(2, 2, {1, 0, 0, -kI}); }

Matrix t() {
  return Matrix(2, 2, {1, 0, 0, std::exp(kI * (kPi / 4))});
}

Matrix tdg() {
  return Matrix(2, 2, {1, 0, 0, std::exp(-kI * (kPi / 4))});
}

Matrix rz(real theta) {
  return Matrix(2, 2, {1, 0, 0, std::exp(kI * theta)});
}

Matrix rx(real theta) { return h() * rz(theta) * h(); }

Matrix ry(real theta) {
  // sdg * rx(theta) * s in our convention equals a Y-axis rotation up to
  // phase; define directly for clarity.
  const real c = std::cos(theta / 2), sn = std::sin(theta / 2);
  return std::exp(kI * (theta / 2)) *
         Matrix(2, 2, {c, -sn, sn, c});
}

Matrix exp_z(real theta) {
  return Matrix(2, 2,
                {std::exp(-kI * (theta / 2)), 0, 0, std::exp(kI * (theta / 2))});
}

Matrix exp_x(real theta) { return h() * exp_z(theta) * h(); }

Matrix j(real alpha) { return h() * rz(alpha); }

Matrix cz() {
  Matrix m = Matrix::identity(4);
  m(3, 3) = -1.0;
  return m;
}

Matrix cx() {
  // control = qubit 0 (low bit): |x1 x0> -> |x1 ^ x0, x0>.
  Matrix m(4, 4);
  m(0, 0) = 1;  // |00> -> |00>
  m(3, 1) = 1;  // |01> -> |11>   (x0=1 flips x1)
  m(2, 2) = 1;  // |10> -> |10>
  m(1, 3) = 1;  // |11> -> |01>
  return m;
}

Matrix swap2() {
  Matrix m(4, 4);
  m(0, 0) = m(3, 3) = 1;
  m(1, 2) = m(2, 1) = 1;
  return m;
}

Matrix proj0() { return Matrix(2, 2, {1, 0, 0, 0}); }
Matrix proj1() { return Matrix(2, 2, {0, 0, 0, 1}); }

Matrix identity_n(int n) {
  MBQ_REQUIRE(n >= 0 && n <= 16, "identity_n: n out of range " << n);
  return Matrix::identity(std::size_t{1} << n);
}

Matrix embed1(const Matrix& u, int q, int n) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "embed1 needs a 2x2 matrix");
  MBQ_REQUIRE(q >= 0 && q < n, "qubit " << q << " out of range [0," << n << ")");
  const std::size_t dim = std::size_t{1} << n;
  Matrix out(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const int b = get_bit(col, q);
    for (int rbit = 0; rbit < 2; ++rbit) {
      const cplx a = u(rbit, b);
      if (a == cplx{0.0, 0.0}) continue;
      const std::size_t row = set_bit(col, q, rbit);
      out(row, col) += a;
    }
  }
  return out;
}

Matrix embed2(const Matrix& u, int q0, int q1, int n) {
  MBQ_REQUIRE(u.rows() == 4 && u.cols() == 4, "embed2 needs a 4x4 matrix");
  MBQ_REQUIRE(q0 != q1, "embed2 needs distinct qubits");
  MBQ_REQUIRE(q0 >= 0 && q0 < n && q1 >= 0 && q1 < n, "qubit out of range");
  const std::size_t dim = std::size_t{1} << n;
  Matrix out(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const int b0 = get_bit(col, q0);
    const int b1 = get_bit(col, q1);
    const int colsub = b0 | (b1 << 1);
    for (int rowsub = 0; rowsub < 4; ++rowsub) {
      const cplx a = u(rowsub, colsub);
      if (a == cplx{0.0, 0.0}) continue;
      std::size_t row = set_bit(col, q0, rowsub & 1);
      row = set_bit(row, q1, (rowsub >> 1) & 1);
      out(row, col) += a;
    }
  }
  return out;
}

Matrix exp_zs(real theta, const std::vector<int>& support, int n) {
  const std::size_t dim = std::size_t{1} << n;
  Matrix out(dim, dim);
  std::uint64_t mask = 0;
  for (int q : support) {
    MBQ_REQUIRE(q >= 0 && q < n, "support qubit out of range: " << q);
    mask |= (1ULL << q);
  }
  for (std::size_t i = 0; i < dim; ++i) {
    const int par = parity64(i & mask);
    out(i, i) = std::exp(-kI * (theta / 2) * (par ? -1.0 : 1.0));
  }
  return out;
}

Matrix controlled_exp_x(real beta, int target, const std::vector<int>& controls,
                        int ctrl_value, int n) {
  MBQ_REQUIRE(ctrl_value == 0 || ctrl_value == 1, "ctrl_value must be 0/1");
  MBQ_REQUIRE(target >= 0 && target < n, "target out of range");
  const std::size_t dim = std::size_t{1} << n;
  Matrix out = Matrix::identity(dim);
  // e^{i beta X} = cos(beta) I + i sin(beta) X.
  const cplx c = std::cos(beta);
  const cplx is = kI * std::sin(beta);
  for (std::size_t col = 0; col < dim; ++col) {
    bool active = true;
    for (int q : controls) {
      MBQ_REQUIRE(q >= 0 && q < n && q != target, "bad control qubit " << q);
      if (get_bit(col, q) != ctrl_value) {
        active = false;
        break;
      }
    }
    if (!active) continue;
    const std::size_t flip = flip_bit(col, target);
    out(col, col) = c;
    out(flip, col) = is;
  }
  return out;
}

}  // namespace mbq::gates
