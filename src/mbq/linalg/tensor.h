#pragma once
// Small dense tensors over qubit-sized (dimension-2) legs, used to give
// ZX-diagrams their linear-map semantics by pairwise contraction.
//
// A Tensor owns a list of leg identifiers (arbitrary distinct ints; in ZX
// evaluation these are edge ids) and 2^rank amplitudes.  Leg 0 of the legs
// vector addresses the least-significant bit of the flat index.

#include <vector>

#include "mbq/common/error.h"
#include "mbq/common/types.h"

namespace mbq {

class Tensor {
 public:
  Tensor() : data_{cplx{1.0, 0.0}} {}  // rank-0 scalar 1
  Tensor(std::vector<int> legs, std::vector<cplx> data);

  /// Scalar tensor.
  static Tensor scalar(cplx value);

  int rank() const noexcept { return static_cast<int>(legs_.size()); }
  const std::vector<int>& legs() const noexcept { return legs_; }
  const std::vector<cplx>& data() const noexcept { return data_; }

  bool has_leg(int leg) const noexcept;
  /// Position of `leg` in legs(); throws if absent.
  int leg_position(int leg) const;

  /// Amplitude for the assignment bits[i] of legs()[i].
  cplx at(const std::vector<int>& bits) const;

  /// Multiply all amplitudes by a scalar.
  void scale(cplx factor);

  /// Reorder legs into the given order (must be a permutation of legs()).
  Tensor permuted(const std::vector<int>& new_leg_order) const;

  /// Contract two tensors over ALL legs they share (Einstein summation on
  /// common leg ids).  Shared legs must appear exactly once in each.
  static Tensor contract(const Tensor& a, const Tensor& b);

  /// Contract two legs of the same tensor (partial trace over a wire that
  /// loops back); both legs are removed.
  Tensor self_contract(int leg_a, int leg_b) const;

  /// L2 norm of all amplitudes.
  real norm() const;

  /// Cosine distance 1 - |<a,b>| / (|a||b|) after aligning leg orders;
  /// 0 means proportional (equal up to a scalar).  Throws if the leg sets
  /// differ.
  static real proportionality_distance(const Tensor& a, const Tensor& b);

  /// Strict max-abs difference after aligning leg order.
  static real max_abs_diff(const Tensor& a, const Tensor& b);

 private:
  std::vector<int> legs_;
  std::vector<cplx> data_;
};

}  // namespace mbq
