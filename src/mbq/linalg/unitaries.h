#pragma once
// Standard gate unitaries as dense matrices (the oracle side of tests).
//
// Convention (matches DESIGN.md and the ZX Z-spider semantics):
//   rz(theta) = diag(1, e^{i theta})        -- NOT the e^{∓i theta/2} form
//   rx(theta) = H rz(theta) H
//   j(alpha)  = H rz(alpha)                 -- the MBQC building block
// Multi-qubit embeddings use little-endian qubit order: qubit 0 indexes
// the least-significant bit of the basis state.

#include "mbq/linalg/dense.h"

namespace mbq::gates {

Matrix id2();
Matrix x();
Matrix y();
Matrix z();
Matrix h();
Matrix s();
Matrix sdg();
Matrix t();
Matrix tdg();
Matrix rz(real theta);
Matrix rx(real theta);
Matrix ry(real theta);
/// Physics-convention rotations exp(-i theta P / 2); used by QAOA oracles.
Matrix exp_z(real theta);
Matrix exp_x(real theta);
/// J(alpha) = H rz(alpha), the universal MBQC primitive.
Matrix j(real alpha);
Matrix cz();
Matrix cx();  // control = qubit 0 (low bit), target = qubit 1
Matrix swap2();

/// Projectors |0><0|, |1><1|.
Matrix proj0();
Matrix proj1();

/// n-qubit identity.
Matrix identity_n(int n);

/// Embed a single-qubit gate at qubit `q` of an n-qubit register.
Matrix embed1(const Matrix& u, int q, int n);
/// Embed a two-qubit gate given its action on (q0 -> low bit, q1 -> high
/// bit of the 4x4 matrix).
Matrix embed2(const Matrix& u, int q0, int q1, int n);

/// exp(-i theta/2 * Z_S) on n qubits for a set S of qubit indices
/// (diagonal); the phase-gadget oracle.
Matrix exp_zs(real theta, const std::vector<int>& support, int n);

/// Multi-controlled rx: applies rx-style rotation exp(-i beta X_target)
/// iff every control qubit is in |ctrl_value>.  Oracle for the MIS partial
/// mixer Lambda_{N(v)}(e^{i beta X_v}) (ctrl_value = 0, angle -2*beta...
/// see mis.h for the exact mapping used).
Matrix controlled_exp_x(real beta, int target,
                        const std::vector<int>& controls, int ctrl_value,
                        int n);

}  // namespace mbq::gates
