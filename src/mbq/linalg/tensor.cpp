#include "mbq/linalg/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "mbq/common/bits.h"

namespace mbq {

Tensor::Tensor(std::vector<int> legs, std::vector<cplx> data)
    : legs_(std::move(legs)), data_(std::move(data)) {
  MBQ_REQUIRE(legs_.size() <= 30, "tensor rank too large: " << legs_.size());
  std::unordered_set<int> seen(legs_.begin(), legs_.end());
  MBQ_REQUIRE(seen.size() == legs_.size(), "duplicate leg ids in tensor");
  MBQ_REQUIRE(data_.size() == (std::size_t{1} << legs_.size()),
              "tensor data size " << data_.size() << " != 2^" << legs_.size());
}

Tensor Tensor::scalar(cplx value) {
  Tensor t;
  t.data_[0] = value;
  return t;
}

bool Tensor::has_leg(int leg) const noexcept {
  return std::find(legs_.begin(), legs_.end(), leg) != legs_.end();
}

int Tensor::leg_position(int leg) const {
  auto it = std::find(legs_.begin(), legs_.end(), leg);
  MBQ_REQUIRE(it != legs_.end(), "tensor has no leg " << leg);
  return static_cast<int>(it - legs_.begin());
}

cplx Tensor::at(const std::vector<int>& bits) const {
  MBQ_REQUIRE(bits.size() == legs_.size(),
              "expected " << legs_.size() << " bits, got " << bits.size());
  return data_[index_of(bits)];
}

void Tensor::scale(cplx factor) {
  for (auto& x : data_) x *= factor;
}

Tensor Tensor::permuted(const std::vector<int>& new_leg_order) const {
  MBQ_REQUIRE(new_leg_order.size() == legs_.size(),
              "permutation size mismatch");
  std::vector<int> pos(new_leg_order.size());
  for (std::size_t i = 0; i < new_leg_order.size(); ++i)
    pos[i] = leg_position(new_leg_order[i]);
  std::vector<cplx> out(data_.size());
  const std::size_t n = legs_.size();
  for (std::size_t idx = 0; idx < data_.size(); ++idx) {
    // idx indexes the NEW layout; gather bit i from old position pos[i].
    std::uint64_t old_idx = 0;
    for (std::size_t i = 0; i < n; ++i)
      old_idx = set_bit(old_idx, pos[i], get_bit(idx, static_cast<int>(i)));
    out[idx] = data_[old_idx];
  }
  return Tensor(new_leg_order, std::move(out));
}

Tensor Tensor::contract(const Tensor& a, const Tensor& b) {
  // Identify shared legs.
  std::vector<int> shared;
  for (int leg : a.legs_)
    if (b.has_leg(leg)) shared.push_back(leg);

  std::vector<int> a_free, b_free;
  for (int leg : a.legs_)
    if (!b.has_leg(leg)) a_free.push_back(leg);
  for (int leg : b.legs_)
    if (!a.has_leg(leg)) b_free.push_back(leg);

  std::vector<int> out_legs = a_free;
  out_legs.insert(out_legs.end(), b_free.begin(), b_free.end());
  MBQ_REQUIRE(out_legs.size() <= 30,
              "contraction result rank too large: " << out_legs.size());

  // Precompute bit positions.
  std::vector<int> a_shared_pos, b_shared_pos, a_free_pos, b_free_pos;
  for (int leg : shared) {
    a_shared_pos.push_back(a.leg_position(leg));
    b_shared_pos.push_back(b.leg_position(leg));
  }
  for (int leg : a_free) a_free_pos.push_back(a.leg_position(leg));
  for (int leg : b_free) b_free_pos.push_back(b.leg_position(leg));

  const std::size_t n_out = out_legs.size();
  const std::size_t n_shared = shared.size();
  const std::size_t na_free = a_free.size();
  std::vector<cplx> out(std::size_t{1} << n_out, cplx{0.0, 0.0});

  for (std::uint64_t o = 0; o < out.size(); ++o) {
    cplx acc{0.0, 0.0};
    for (std::uint64_t s = 0; s < (std::uint64_t{1} << n_shared); ++s) {
      std::uint64_t ia = 0, ib = 0;
      for (std::size_t i = 0; i < na_free; ++i)
        ia = set_bit(ia, a_free_pos[i], get_bit(o, static_cast<int>(i)));
      for (std::size_t i = 0; i < b_free_pos.size(); ++i)
        ib = set_bit(ib, b_free_pos[i],
                     get_bit(o, static_cast<int>(na_free + i)));
      for (std::size_t i = 0; i < n_shared; ++i) {
        const int bit = get_bit(s, static_cast<int>(i));
        ia = set_bit(ia, a_shared_pos[i], bit);
        ib = set_bit(ib, b_shared_pos[i], bit);
      }
      acc += a.data_[ia] * b.data_[ib];
    }
    out[o] = acc;
  }
  return Tensor(std::move(out_legs), std::move(out));
}

Tensor Tensor::self_contract(int leg_a, int leg_b) const {
  MBQ_REQUIRE(leg_a != leg_b, "self_contract needs two distinct legs");
  const int pa = leg_position(leg_a);
  const int pb = leg_position(leg_b);
  std::vector<int> out_legs;
  for (int leg : legs_)
    if (leg != leg_a && leg != leg_b) out_legs.push_back(leg);
  std::vector<int> out_pos;
  for (int leg : out_legs) out_pos.push_back(leg_position(leg));

  std::vector<cplx> out(std::size_t{1} << out_legs.size(), cplx{0.0, 0.0});
  for (std::uint64_t o = 0; o < out.size(); ++o) {
    cplx acc{0.0, 0.0};
    for (int bit = 0; bit < 2; ++bit) {
      std::uint64_t idx = 0;
      for (std::size_t i = 0; i < out_pos.size(); ++i)
        idx = set_bit(idx, out_pos[i], get_bit(o, static_cast<int>(i)));
      idx = set_bit(idx, pa, bit);
      idx = set_bit(idx, pb, bit);
      acc += data_[idx];
    }
    out[o] = acc;
  }
  return Tensor(std::move(out_legs), std::move(out));
}

real Tensor::norm() const {
  real s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

real Tensor::proportionality_distance(const Tensor& a, const Tensor& b) {
  std::vector<int> sa = a.legs_, sb = b.legs_;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  MBQ_REQUIRE(sa == sb, "proportionality_distance: leg sets differ");
  const Tensor bb = b.permuted(a.legs_);
  const real na = a.norm();
  const real nb = bb.norm();
  if (na == 0.0 || nb == 0.0) return (na == 0.0 && nb == 0.0) ? 0.0 : 1.0;
  cplx dot{0.0, 0.0};
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    dot += std::conj(a.data_[i]) * bb.data_[i];
  return 1.0 - std::abs(dot) / (na * nb);
}

real Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  std::vector<int> sa = a.legs_, sb = b.legs_;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  MBQ_REQUIRE(sa == sb, "max_abs_diff: leg sets differ");
  const Tensor bb = b.permuted(a.legs_);
  real m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - bb.data_[i]));
  return m;
}

}  // namespace mbq
