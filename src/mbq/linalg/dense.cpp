#include "mbq/linalg/dense.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace mbq {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::initializer_list<cplx> data)
    : Matrix(rows, cols) {
  MBQ_REQUIRE(data.size() == rows * cols,
              "initializer has " << data.size() << " entries, expected "
                                 << rows * cols);
  std::copy(data.begin(), data.end(), data_.begin());
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

cplx& Matrix::operator()(std::size_t r, std::size_t c) {
  MBQ_REQUIRE(r < rows_ && c < cols_,
              "index (" << r << "," << c << ") out of " << rows_ << "x"
                        << cols_);
  return data_[r * cols_ + c];
}

const cplx& Matrix::operator()(std::size_t r, std::size_t c) const {
  MBQ_REQUIRE(r < rows_ && c < cols_,
              "index (" << r << "," << c << ") out of " << rows_ << "x"
                        << cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  MBQ_REQUIRE(cols_ == rhs.rows_, "matmul shape mismatch: " << rows_ << "x"
                                  << cols_ << " * " << rhs.rows_ << "x"
                                  << rhs.cols_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = data_[i * cols_ + k];
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out.data_[i * rhs.cols_ + j] += a * rhs.data_[k * rhs.cols_ + j];
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  MBQ_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  MBQ_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(cplx scalar) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= scalar;
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj(data_[r * cols_ + c]);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::conj() const {
  Matrix out = *this;
  for (auto& x : out.data_) x = std::conj(x);
  return out;
}

cplx Matrix::trace() const {
  MBQ_REQUIRE(is_square(), "trace of non-square matrix");
  cplx t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += data_[i * cols_ + i];
  return t;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t r1 = 0; r1 < rows_; ++r1)
    for (std::size_t c1 = 0; c1 < cols_; ++c1) {
      const cplx a = data_[r1 * cols_ + c1];
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t r2 = 0; r2 < rhs.rows_; ++r2)
        for (std::size_t c2 = 0; c2 < rhs.cols_; ++c2)
          out(r1 * rhs.rows_ + r2, c1 * rhs.cols_ + c2) =
              a * rhs(r2, c2);
    }
  return out;
}

real Matrix::norm() const {
  real s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

real Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  MBQ_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
              "shape mismatch in max_abs_diff");
  real m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

bool Matrix::is_unitary(real tol) const {
  if (!is_square()) return false;
  const Matrix p = (*this) * adjoint();
  return max_abs_diff(p, identity(rows_)) <= tol;
}

bool Matrix::approx_equal(const Matrix& a, const Matrix& b, real tol) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  return max_abs_diff(a, b) <= tol;
}

bool Matrix::approx_equal_up_to_phase(const Matrix& a, const Matrix& b,
                                      real tol) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  const real na = a.norm();
  const real nb = b.norm();
  if (na <= tol || nb <= tol) return na <= tol && nb <= tol;
  // <A, B> = sum conj(a_ij) b_ij; equality up to scalar iff
  // |<A,B>| == ||A|| * ||B||.
  cplx dot = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    dot += std::conj(a.data_[i]) * b.data_[i];
  return std::abs(std::abs(dot) - na * nb) <= tol * na * nb + tol;
}

std::string Matrix::str(int precision) const {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx& x = data_[r * cols_ + c];
      oss << x.real() << (x.imag() < 0 ? "-" : "+") << std::abs(x.imag())
          << "i ";
    }
    oss << "]\n";
  }
  return oss.str();
}

std::vector<cplx> operator*(const Matrix& m, const std::vector<cplx>& v) {
  MBQ_REQUIRE(m.cols() == v.size(), "matvec shape mismatch");
  std::vector<cplx> out(m.rows(), cplx{0.0, 0.0});
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) out[r] += m(r, c) * v[c];
  return out;
}

cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  MBQ_REQUIRE(a.size() == b.size(), "inner product shape mismatch");
  cplx s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

real fidelity(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  const real na = std::real(inner(a, a));
  const real nb = std::real(inner(b, b));
  MBQ_REQUIRE(na > 0 && nb > 0, "fidelity of zero vector");
  return std::norm(inner(a, b)) / (na * nb);
}

}  // namespace mbq
