// AVX2 flavor of the collapse kernels (4 doubles / register).
//
// Compiled with -mavx2 and -DMBQ_TU_AVX2 when the toolchain supports it
// (see CMakeLists); otherwise this TU degrades to a nullptr factory so
// the build links unchanged on any platform.  No FMA: the bitwise
// contract requires the same separate mul+add the scalar path performs.

#include "mbq/sim/collapse_kernels.h"

#if defined(MBQ_TU_AVX2)

#include <immintrin.h>

#include "mbq/sim/collapse_kernels_vec.h"

namespace mbq::detail {
namespace {

struct Avx2Traits {
  using R = double;
  static constexpr int kW = 4;
  using V = __m256d;

  static V load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) noexcept { _mm256_storeu_pd(p, v); }
  static V set1(double x) noexcept { return _mm256_set1_pd(x); }
  static V zero() noexcept { return _mm256_setzero_pd(); }
  static V add(V a, V b) noexcept { return _mm256_add_pd(a, b); }
  static V mul(V a, V b) noexcept { return _mm256_mul_pd(a, b); }
  /// [re0,im0,re1,im1] -> [im0,re0,im1,re1] (swap within 128-bit pairs).
  static V swap_pairs(V v) noexcept { return _mm256_permute_pd(v, 0b0101); }
  static V xor_signs(V v, V m) noexcept { return _mm256_xor_pd(v, m); }
  static V neg(V v) noexcept {
    return _mm256_xor_pd(
        v, _mm256_castsi256_pd(_mm256_set1_epi64x(
               static_cast<long long>(kSignBit))));
  }
  /// Negate the re lanes (stream-even positions) only.
  static V neg_even(V v) noexcept {
    return _mm256_xor_pd(
        v, _mm256_castsi256_pd(_mm256_set_epi64x(
               0, static_cast<long long>(kSignBit), 0,
               static_cast<long long>(kSignBit))));
  }
};

/// f32 flavor: 8 floats / register, half the canonical 16-lane fold in
/// one accumulator register.  Same op-for-op structure as the f64
/// traits — only the element width changes.
struct Avx2TraitsF32 {
  using R = float;
  static constexpr int kW = 8;
  using V = __m256;

  static V load(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void store(float* p, V v) noexcept { _mm256_storeu_ps(p, v); }
  static V set1(float x) noexcept { return _mm256_set1_ps(x); }
  static V zero() noexcept { return _mm256_setzero_ps(); }
  static V add(V a, V b) noexcept { return _mm256_add_ps(a, b); }
  static V mul(V a, V b) noexcept { return _mm256_mul_ps(a, b); }
  /// Swap within each 64-bit (re,im) pair: imm 0b10110001 = 2,3,0,1.
  static V swap_pairs(V v) noexcept { return _mm256_permute_ps(v, 0b10110001); }
  static V xor_signs(V v, V m) noexcept { return _mm256_xor_ps(v, m); }
  static V neg(V v) noexcept {
    return _mm256_xor_ps(
        v, _mm256_castsi256_ps(_mm256_set1_epi32(
               static_cast<int>(kSignBitU<float>))));
  }
  /// Negate the re lanes (stream-even positions) only.
  static V neg_even(V v) noexcept {
    const int s = static_cast<int>(kSignBitU<float>);
    return _mm256_xor_ps(
        v, _mm256_castsi256_ps(_mm256_set_epi32(0, s, 0, s, 0, s, 0, s)));
  }
};

}  // namespace

const CollapseKernels* avx2_kernels_impl() noexcept {
  return make_vec_table<Avx2Traits>(SimdIsa::Avx2);
}

const CollapseKernelsF32* avx2_kernels_f32_impl() noexcept {
  return make_vec_table<Avx2TraitsF32>(SimdIsa::Avx2);
}

}  // namespace mbq::detail

#else  // !MBQ_TU_AVX2

namespace mbq::detail {
const CollapseKernels* avx2_kernels_impl() noexcept { return nullptr; }
const CollapseKernelsF32* avx2_kernels_f32_impl() noexcept { return nullptr; }
}  // namespace mbq::detail

#endif
