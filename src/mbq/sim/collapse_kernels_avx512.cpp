// AVX-512 flavor of the collapse kernels (8 doubles / register — the
// whole canonical fold in ONE accumulator register).
//
// Uses AVX512F only: the sign-bit xors route through the 512-bit
// integer domain (_mm512_xor_si512) instead of requiring DQ's xor_pd,
// so any F-capable host qualifies.  Compiled with -mavx512f and
// -DMBQ_TU_AVX512 when available; nullptr factory otherwise.  No FMA.

#include "mbq/sim/collapse_kernels.h"

#if defined(MBQ_TU_AVX512)

#include <immintrin.h>

#include "mbq/sim/collapse_kernels_vec.h"

namespace mbq::detail {
namespace {

struct Avx512Traits {
  using R = double;
  static constexpr int kW = 8;
  using V = __m512d;

  static V load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, V v) noexcept { _mm512_storeu_pd(p, v); }
  static V set1(double x) noexcept { return _mm512_set1_pd(x); }
  static V zero() noexcept { return _mm512_setzero_pd(); }
  static V add(V a, V b) noexcept { return _mm512_add_pd(a, b); }
  static V mul(V a, V b) noexcept { return _mm512_mul_pd(a, b); }
  /// Swap within each 128-bit (re,im) pair: imm 0x55 = 01 per pair.
  static V swap_pairs(V v) noexcept { return _mm512_permute_pd(v, 0x55); }
  static V xor_signs(V v, V m) noexcept {
    return _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(v),
                                                _mm512_castpd_si512(m)));
  }
  static V neg(V v) noexcept {
    return xor_signs(v, _mm512_castsi512_pd(_mm512_set1_epi64(
                            static_cast<long long>(kSignBit))));
  }
  /// Negate the re lanes (stream-even positions) only.
  static V neg_even(V v) noexcept {
    const long long s = static_cast<long long>(kSignBit);
    return xor_signs(
        v, _mm512_castsi512_pd(_mm512_set_epi64(0, s, 0, s, 0, s, 0, s)));
  }
};

/// f32 flavor: 16 floats / register — the whole canonical 16-lane f32
/// fold in ONE accumulator register.  Still AVX512F only: ps sign xors
/// route through the integer domain (no DQ xor_ps needed).
struct Avx512TraitsF32 {
  using R = float;
  static constexpr int kW = 16;
  using V = __m512;

  static V load(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static void store(float* p, V v) noexcept { _mm512_storeu_ps(p, v); }
  static V set1(float x) noexcept { return _mm512_set1_ps(x); }
  static V zero() noexcept { return _mm512_setzero_ps(); }
  static V add(V a, V b) noexcept { return _mm512_add_ps(a, b); }
  static V mul(V a, V b) noexcept { return _mm512_mul_ps(a, b); }
  /// Swap within each 64-bit (re,im) pair: imm 0xB1 = 2,3,0,1 per lane
  /// quad.
  static V swap_pairs(V v) noexcept { return _mm512_permute_ps(v, 0xB1); }
  static V xor_signs(V v, V m) noexcept {
    return _mm512_castsi512_ps(_mm512_xor_si512(_mm512_castps_si512(v),
                                                _mm512_castps_si512(m)));
  }
  static V neg(V v) noexcept {
    return xor_signs(v, _mm512_castsi512_ps(_mm512_set1_epi32(
                            static_cast<int>(kSignBitU<float>))));
  }
  /// Negate the re lanes (stream-even positions) only.
  static V neg_even(V v) noexcept {
    const int s = static_cast<int>(kSignBitU<float>);
    return xor_signs(v, _mm512_castsi512_ps(_mm512_set_epi32(
                            0, s, 0, s, 0, s, 0, s, 0, s, 0, s, 0, s, 0, s)));
  }
};

}  // namespace

const CollapseKernels* avx512_kernels_impl() noexcept {
  return make_vec_table<Avx512Traits>(SimdIsa::Avx512);
}

const CollapseKernelsF32* avx512_kernels_f32_impl() noexcept {
  return make_vec_table<Avx512TraitsF32>(SimdIsa::Avx512);
}

}  // namespace mbq::detail

#else  // !MBQ_TU_AVX512

namespace mbq::detail {
const CollapseKernels* avx512_kernels_impl() noexcept { return nullptr; }
const CollapseKernelsF32* avx512_kernels_f32_impl() noexcept {
  return nullptr;
}
}  // namespace mbq::detail

#endif
