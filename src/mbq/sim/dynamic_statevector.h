#pragma once
// Statevector with dynamic qubit (wire) allocation.
//
// MBQC patterns touch far more qubits than are ever simultaneously alive:
// an ancilla is prepared, entangled, measured and discarded within a few
// commands.  This simulator exploits that (the "qubit reuse" of DeCross et
// al. cited in the paper, ref [51]): wires are added lazily and removed on
// measurement, so the amplitude vector tracks only the LIVE wires.  Wires
// are addressed by stable non-negative integer ids independent of their
// current bit position.
//
// Every hot amplitude sweep — collapses, folds, sign/swap passes — runs
// through the runtime-dispatched SIMD kernel table (sim/collapse_kernels.h,
// scalar/AVX2/AVX-512/NEON), wrapped in the chunked drivers of
// sim/collapse_threaded.h: above the chunk cutoff a sweep is tiled into
// L2-sized blocks (and optionally executed by multiple threads — see
// MBQ_KERNEL_THREADS).  The kernels' canonical reduction order and the
// drivers' fixed chunk decomposition make results bit-identical across
// ISAs AND across thread counts, so neither choice leaks into outcome
// streams.
//
// The element type is chosen at construction (Precision::F64 default,
// Precision::F32 optional): f32 halves the memory traffic per amplitude
// — roughly one extra qubit of reach at a given footprint — and is
// deterministic under the same contract WITHIN the precision, but its
// streams are NOT bit-comparable to f64's (see common/types.h).

#include <cstdint>
#include <type_traits>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"
#include "mbq/linalg/dense.h"

namespace mbq {

/// Single-qubit measurement bases used by patterns.
enum class MeasBasis : std::uint8_t { Z, X, XY, YZ };

/// Basis kets as the columns of a 2x2 unitary: column m is the outcome-m
/// state.  XY(angle): (|0> ± e^{i a}|1>)/sqrt(2); YZ(angle): e^{i a X/2}|m>.
Matrix measurement_basis(MeasBasis basis, real angle);

class DynamicStatevector {
 public:
  // --- zero-state thresholds -------------------------------------------
  // Three DISTINCT guards with distinct units, named so no call site
  // picks the wrong one again (they used to be scattered magic numbers
  // with accidentally different scales):

  /// Minimum AMPLITUDE norm |a| = sqrt(|a0|²+|a1|²) accepted when adding
  /// a wire in an explicit state — below this the direction of the state
  /// is numerically meaningless.
  static constexpr real kMinAddWireNorm = 1e-12;

  /// Minimum SQUARED state norm |ψ|² accepted as a Born-rule denominator
  /// (and by normalize()) — dividing probabilities by anything smaller
  /// amplifies noise past any usable precision.  Note the unit: this
  /// guards Σ|amp|² directly, the quantity the fold tracks.
  static constexpr real kMinBornNorm2 = 1e-14;

  /// Minimum SQUARED norm |Πψ|² of a post-measurement projection —
  /// deliberately far looser than kMinBornNorm2, because a legitimately
  /// unlikely (but sampled or forced-with-reason) outcome may leave a
  /// tiny residual state that renormalization then rescues.
  static constexpr real kMinProjectionNorm2 = 1e-18;

  explicit DynamicStatevector(Precision p = Precision::F64) : prec_(p) {
    if (prec_ == Precision::F64)
      amps_ = {cplx{1.0, 0.0}};
    else
      amps32_ = {cplxf{1.0f, 0.0f}};
  }

  /// Element type of the amplitude storage, fixed at construction.
  Precision precision() const noexcept { return prec_; }

  /// Return to the empty register (scalar state 1) WITHOUT releasing the
  /// amplitude buffers or the wire-position table: a simulator reset in a
  /// shot loop reuses the same arena, so steady-state execution performs
  /// no allocations at all.
  void reset();

  int num_live() const noexcept { return static_cast<int>(order_.size()); }
  int peak_live() const noexcept { return peak_live_; }
  std::uint64_t dim() const noexcept { return std::uint64_t{1} << order_.size(); }
  bool has_wire(int wire) const noexcept {
    return wire >= 0 && static_cast<std::size_t>(wire) < pos_.size() &&
           pos_[static_cast<std::size_t>(wire)] >= 0;
  }
  /// Live wire ids in bit-position order (position 0 first).
  const std::vector<int>& wire_order() const noexcept { return order_; }
  /// Current bit position of a live wire (throws if not live).  The
  /// compiled executor uses this to build position masks for the fused
  /// kernels below.
  int bit_position(int wire) const { return position(wire); }

  /// Add wire `wire` in |+> (plus=true) or |0>.
  void add_wire(int wire, bool plus = true);

  /// Add wire `wire` in the state a0|0> + a1|1> (normalized internally;
  /// rejects amplitude norms below kMinAddWireNorm).
  void add_wire_state(int wire, cplx a0, cplx a1);

  void apply_1q(int wire, const Matrix& u);
  void apply_h(int wire);
  void apply_x(int wire);
  void apply_z(int wire);
  /// Dedicated diagonal-phase kernel: diag(1, e^{iθ}) touches only the
  /// bit-set half and preserves every per-element norm, so — like
  /// apply_z — it keeps the norm fold usable (see fold_ below for the
  /// documented ulp-level caveat).  Bit-identical amplitudes to routing
  /// the same matrix through apply_1q.
  void apply_rz(int wire, real theta);
  void apply_cz(int wire_a, int wire_b);

  /// CZ followed by the entangler noise channel: each touched wire
  /// suffers a uniformly random Pauli with probability p.  Draws from
  /// rng in the same order as apply_cz + two per-wire checks would, but
  /// executes everything as ONE fused amplitude pass (sign flips and
  /// index swaps only, so the result is bit-identical to the sequential
  /// gate composition).  p <= 0 degrades to plain apply_cz.
  void apply_cz_depolarize(int wire_a, int wire_b, real p, Rng& rng);

  /// Measure `wire` in the given basis and REMOVE it from the register.
  /// forced in {-1 (sample from Born rule), 0, 1}.  Returns the outcome.
  int measure_remove(int wire, const Matrix& basis, Rng& rng, int forced = -1);

  // --- fused kernels for the compiled pattern executor -----------------
  // Each replaces a sequence of the primitive operations above with one
  // amplitude pass, producing bit-identical amplitudes and outcome
  // streams (everything they fuse is a scale, a sign flip, an index swap
  // or a sum evaluated in the canonical kernel order).  They also
  // maintain the running norm fold (see fold_ below), which lets the
  // next sampled measurement skip its full normalization pass.

  /// add_wire(wire, plus=true) immediately followed by a CZ against
  /// every live wire whose POSITION bit is set in partner_pos_mask, as
  /// one pass (the fresh wire occupies the top position, so the CZs only
  /// sign the upper half being written anyway).
  void add_wire_plus_cz(int wire, std::uint64_t partner_pos_mask);

  /// A run of CZs given as position-pair masks (each mask = both
  /// endpoint position bits), one sign pass instead of `count` passes.
  void apply_cz_masks(const std::uint64_t* pair_masks, int count);

  /// The ordered composition of X- and Z-corrections folded to
  /// X^{xmask} with a Z-phase mask and an overall sign, one pass instead
  /// of one per correction.  Masks are position masks; `negate` carries
  /// the anticommutation sign the sequential order would have produced.
  void apply_pauli_masks(std::uint64_t xmask, std::uint64_t zmask,
                         bool negate);

  /// The paper's gadget step fused end to end: prepare `wire` in |+> at
  /// the top position, CZ it against partner_pos_mask, and measure it in
  /// `basis` — without ever materializing the doubled register.  The
  /// upper amplitude half is ±(scaled lower half), so probabilities,
  /// projections and the collapsed state are computed straight from the
  /// untouched register: the whole N;E...;M block costs ~3 passes at the
  /// SMALL dimension.  Contract matches measure_remove.
  int prep_cz_measure(int wire, std::uint64_t partner_pos_mask,
                      const Matrix& basis, Rng& rng, int forced = -1);

  /// The teleport step fused end to end: prepare `new_wire` in |+> at
  /// the top position, CZ it against partner_pos_mask, then measure
  /// `meas_wire` (a DIFFERENT, live wire) in `basis`.  Again the doubled
  /// register never exists — the virtual upper half is ±(scaled lower
  /// half), so the collapse reads the untouched register directly and
  /// writes the final (same-sized) state in one pass.  After the call
  /// `meas_wire` is gone and `new_wire` is live at the top position,
  /// exactly as the sequential chain would leave them.
  int prep_cz_teleport_measure(int new_wire, std::uint64_t partner_pos_mask,
                               int meas_wire, const Matrix& basis, Rng& rng,
                               int forced = -1);

  /// Probability that measuring `wire` in `basis` yields 1.
  real prob_one(int wire, const Matrix& basis) const;

  /// Precomputed readout gather: source bit position per output bit plus
  /// the Gray-walk flip table that advances the source index with one
  /// lookup per element.  fill_gather_table into a caller-owned table is
  /// allocation-free once the table has its steady-state capacity, which
  /// is what lets PatternExecutor::run_sample keep the documented
  /// zero-steady-state-allocation contract.
  struct GatherTable {
    std::vector<int> src;
    std::vector<std::uint64_t> flip;
  };

  /// Resolve `wires` (each live wire exactly once) against the CURRENT
  /// layout into `table`.  Reuses the table's storage.
  void fill_gather_table(const std::vector<int>& wires,
                         GatherTable& table) const;

  /// Amplitudes reordered so that wires[i] maps to bit i; every live wire
  /// must appear exactly once.  Use this to compare against a fixed-order
  /// reference state.
  std::vector<cplx> state_in_order(const std::vector<int>& wires) const;
  std::vector<cplx> state_in_order(const GatherTable& table) const;

  /// Cumulative Born walk over the state_in_order(wires) amplitudes
  /// WITHOUT materializing the copy: subtracts |amp|² from u in gathered
  /// order and returns the first index where u drops to <= 0 (the last
  /// index if it never does).  Bit-identical to walking the gathered
  /// vector, minus its allocation — the per-shot readout fast path.
  std::uint64_t sample_in_order(const std::vector<int>& wires, real u) const;
  std::uint64_t sample_in_order(const GatherTable& table, real u) const;

  real norm() const;
  void normalize();

  /// The running norm fold and its validity — introspection for the
  /// scalar-vs-SIMD differential tests, which assert fold values
  /// bit-identical across ISAs.
  real norm_fold() const noexcept { return fold_; }
  bool norm_fold_valid() const noexcept { return fold_valid_; }

 private:
  int position(int wire) const;
  void set_position(int wire, int p);

  /// Active amplitude / scratch storage for element type R.  The class
  /// is runtime-polymorphic over precision (one enum member, two buffer
  /// pairs — only the pair matching prec_ is ever non-empty); the hot
  /// paths are member templates in the .cpp dispatched through these.
  template <class R>
  std::vector<std::complex<R>>& amps() noexcept {
    if constexpr (std::is_same_v<R, double>)
      return amps_;
    else
      return amps32_;
  }
  template <class R>
  const std::vector<std::complex<R>>& amps() const noexcept {
    if constexpr (std::is_same_v<R, double>)
      return amps_;
    else
      return amps32_;
  }
  template <class R>
  std::vector<std::complex<R>>& scratch() noexcept {
    if constexpr (std::is_same_v<R, double>)
      return scratch_;
    else
      return scratch32_;
  }

  template <class R>
  void reset_impl();
  template <class R>
  void add_wire_impl(bool plus);
  template <class R>
  void apply_1q_impl(int q, const Matrix& u);
  template <class R>
  void apply_x_impl(std::uint64_t xmask);
  template <class R>
  void sign_pass_impl(std::uint64_t eq_mask, std::uint64_t par_mask,
                      bool negate);
  template <class R>
  void apply_rz_impl(int q, cplx e);
  template <class R>
  void pauli_swap_impl(std::uint64_t xmask, std::uint64_t zmask,
                       std::uint64_t eq_mask, bool negate);
  template <class R>
  void add_plus_cz_impl(std::uint64_t partner_pos_mask);
  template <class R>
  void cz_masks_impl(const std::uint64_t* pair_masks, int count);
  template <class R>
  int prep_cz_measure_impl(std::uint64_t partner_pos_mask, const Matrix& basis,
                           Rng& rng, int forced, int wire);
  template <class R>
  int teleport_measure_impl(std::uint64_t partner_pos_mask, int q,
                            const Matrix& basis, Rng& rng, int forced,
                            int meas_wire);
  template <class R>
  real prob_one_impl(int q, const Matrix& basis) const;
  template <class R>
  int measure_remove_impl(int q, const Matrix& basis, Rng& rng, int forced,
                          int wire);
  template <class R>
  std::vector<cplx> state_in_order_impl(const GatherTable& table) const;
  template <class R>
  std::uint64_t sample_in_order_impl(const GatherTable& table, real u) const;
  template <class R>
  real norm_impl() const;
  template <class R>
  void normalize_impl();

  Precision prec_ = Precision::F64;
  std::vector<cplx> amps_;
  std::vector<cplx> scratch_;  // measure_remove ping-pong buffer
  std::vector<cplxf> amps32_;    // f32 storage (prec_ == F32 only)
  std::vector<cplxf> scratch32_;
  std::vector<int> order_;     // wire id per bit position
  // wire id -> bit position, -1 = not live.  A flat vector instead of a
  // hash map: position() is on every kernel's setup path, and map node
  // churn was the last steady-state allocation in the shot loop.
  std::vector<std::int32_t> pos_;
  int peak_live_ = 0;

  // Running Σ|amp|² in the kernels' canonical fold order — bitwise equal
  // to what a fresh kernels().fold_norms pass would compute, which is
  // the ONLY reason a sampled measurement may reuse it (Born
  // probabilities stay bit-identical).  Maintained by the fused kernels
  // and the measure collapses; sign passes (Z, CZ, Pauli-Z) keep it
  // valid untouched.  apply_rz also keeps it usable: the phase preserves
  // every |amp|² mathematically but re-rounds the squares, so after an
  // rz the fold is within an ulp of (not bitwise equal to) a fresh pass
  // — acceptable because no cross-path comparison ever runs through
  // apply_rz (pattern execution lowers rotations into measurement
  // angles).  Everything else invalidates it.
  real fold_ = 1.0;
  bool fold_valid_ = true;
};

}  // namespace mbq
