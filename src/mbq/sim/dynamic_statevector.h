#pragma once
// Statevector with dynamic qubit (wire) allocation.
//
// MBQC patterns touch far more qubits than are ever simultaneously alive:
// an ancilla is prepared, entangled, measured and discarded within a few
// commands.  This simulator exploits that (the "qubit reuse" of DeCross et
// al. cited in the paper, ref [51]): wires are added lazily and removed on
// measurement, so the amplitude vector tracks only the LIVE wires.  Wires
// are addressed by stable integer ids independent of their current bit
// position.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"
#include "mbq/linalg/dense.h"

namespace mbq {

/// Single-qubit measurement bases used by patterns.
enum class MeasBasis : std::uint8_t { Z, X, XY, YZ };

/// Basis kets as the columns of a 2x2 unitary: column m is the outcome-m
/// state.  XY(angle): (|0> ± e^{i a}|1>)/sqrt(2); YZ(angle): e^{i a X/2}|m>.
Matrix measurement_basis(MeasBasis basis, real angle);

class DynamicStatevector {
 public:
  DynamicStatevector() { amps_ = {cplx{1.0, 0.0}}; }

  /// Return to the empty register (scalar state 1) WITHOUT releasing the
  /// amplitude buffers: a simulator reset in a shot loop reuses the same
  /// arena, so steady-state execution performs no allocations at all.
  void reset();

  int num_live() const noexcept { return static_cast<int>(order_.size()); }
  int peak_live() const noexcept { return peak_live_; }
  std::uint64_t dim() const noexcept { return std::uint64_t{1} << order_.size(); }
  bool has_wire(int wire) const noexcept { return pos_.count(wire) != 0; }
  /// Live wire ids in bit-position order (position 0 first).
  const std::vector<int>& wire_order() const noexcept { return order_; }
  /// Current bit position of a live wire (throws if not live).  The
  /// compiled executor uses this to build position masks for the fused
  /// kernels below.
  int bit_position(int wire) const { return position(wire); }

  /// Add wire `wire` in |+> (plus=true) or |0>.
  void add_wire(int wire, bool plus = true);

  /// Add wire `wire` in the state a0|0> + a1|1> (normalized internally).
  void add_wire_state(int wire, cplx a0, cplx a1);

  void apply_1q(int wire, const Matrix& u);
  void apply_h(int wire);
  void apply_x(int wire);
  void apply_z(int wire);
  void apply_rz(int wire, real theta);
  void apply_cz(int wire_a, int wire_b);

  /// CZ followed by the entangler noise channel: each touched wire
  /// suffers a uniformly random Pauli with probability p.  Draws from
  /// rng in the same order as apply_cz + two per-wire checks would, but
  /// executes everything as ONE fused amplitude pass (sign flips and
  /// index swaps only, so the result is bit-identical to the sequential
  /// gate composition).  p <= 0 degrades to plain apply_cz.
  void apply_cz_depolarize(int wire_a, int wire_b, real p, Rng& rng);

  /// Measure `wire` in the given basis and REMOVE it from the register.
  /// forced in {-1 (sample from Born rule), 0, 1}.  Returns the outcome.
  int measure_remove(int wire, const Matrix& basis, Rng& rng, int forced = -1);

  // --- fused kernels for the compiled pattern executor -----------------
  // Each replaces a sequence of the primitive operations above with one
  // amplitude pass, producing bit-identical amplitudes and outcome
  // streams (everything they fuse is a scale, a sign flip, an index swap
  // or a sum evaluated in the reference order).  They also maintain the
  // running norm fold (see fold_ below), which lets the next sampled
  // measurement skip its full normalization pass.

  /// add_wire(wire, plus=true) immediately followed by a CZ against
  /// every live wire whose POSITION bit is set in partner_pos_mask, as
  /// one pass (the fresh wire occupies the top position, so the CZs only
  /// sign the upper half being written anyway).
  void add_wire_plus_cz(int wire, std::uint64_t partner_pos_mask);

  /// A run of CZs given as position-pair masks (each mask = both
  /// endpoint position bits), one sign pass instead of `count` passes.
  void apply_cz_masks(const std::uint64_t* pair_masks, int count);

  /// The ordered composition of X- and Z-corrections folded to
  /// X^{xmask} with a Z-phase mask and an overall sign, one pass instead
  /// of one per correction.  Masks are position masks; `negate` carries
  /// the anticommutation sign the sequential order would have produced.
  void apply_pauli_masks(std::uint64_t xmask, std::uint64_t zmask,
                         bool negate);

  /// The paper's gadget step fused end to end: prepare `wire` in |+> at
  /// the top position, CZ it against partner_pos_mask, and measure it in
  /// `basis` — without ever materializing the doubled register.  The
  /// upper amplitude half is ±(scaled lower half), so probabilities,
  /// projections and the collapsed state are computed straight from the
  /// untouched register: the whole N;E...;M block costs ~3 passes at the
  /// SMALL dimension.  Contract matches measure_remove.
  int prep_cz_measure(int wire, std::uint64_t partner_pos_mask,
                      const Matrix& basis, Rng& rng, int forced = -1);

  /// The teleport step fused end to end: prepare `new_wire` in |+> at
  /// the top position, CZ it against partner_pos_mask, then measure
  /// `meas_wire` (a DIFFERENT, live wire) in `basis`.  Again the doubled
  /// register never exists — the virtual upper half is ±(scaled lower
  /// half), so the collapse reads the untouched register directly and
  /// writes the final (same-sized) state in one pass.  Every sum runs in
  /// the order the sequential add_wire/apply_cz/measure_remove chain
  /// folds it, so outcomes stay bit-identical.  After the call
  /// `meas_wire` is gone and `new_wire` is live at the top position,
  /// exactly as the sequential chain would leave them.
  int prep_cz_teleport_measure(int new_wire, std::uint64_t partner_pos_mask,
                               int meas_wire, const Matrix& basis, Rng& rng,
                               int forced = -1);

  /// Probability that measuring `wire` in `basis` yields 1.
  real prob_one(int wire, const Matrix& basis) const;

  /// Amplitudes reordered so that wires[i] maps to bit i; every live wire
  /// must appear exactly once.  Use this to compare against a fixed-order
  /// reference state.
  std::vector<cplx> state_in_order(const std::vector<int>& wires) const;

  /// Cumulative Born walk over the state_in_order(wires) amplitudes
  /// WITHOUT materializing the copy: subtracts |amp|² from u in gathered
  /// order and returns the first index where u drops to <= 0 (the last
  /// index if it never does).  Bit-identical to walking the gathered
  /// vector, minus its allocation — the per-shot readout fast path.
  std::uint64_t sample_in_order(const std::vector<int>& wires, real u) const;

  real norm() const;
  void normalize();

 private:
  int position(int wire) const;

  std::vector<cplx> amps_;
  std::vector<cplx> scratch_;            // measure_remove ping-pong buffer
  std::vector<int> order_;               // wire id per bit position
  std::unordered_map<int, int> pos_;     // wire id -> bit position
  int peak_live_ = 0;

  // Running Σ|amp|² folded in ascending index order — bitwise equal to
  // what a fresh normalization pass would compute, which is the ONLY
  // reason a sampled measurement may reuse it (Born probabilities stay
  // bit-identical).  Maintained by the fused kernels and by the
  // measure_remove collapse; norm-preserving sign passes (Z, CZ) keep it
  // valid untouched; everything else invalidates it.
  real fold_ = 1.0;
  bool fold_valid_ = true;
};

}  // namespace mbq
