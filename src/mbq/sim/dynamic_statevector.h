#pragma once
// Statevector with dynamic qubit (wire) allocation.
//
// MBQC patterns touch far more qubits than are ever simultaneously alive:
// an ancilla is prepared, entangled, measured and discarded within a few
// commands.  This simulator exploits that (the "qubit reuse" of DeCross et
// al. cited in the paper, ref [51]): wires are added lazily and removed on
// measurement, so the amplitude vector tracks only the LIVE wires.  Wires
// are addressed by stable integer ids independent of their current bit
// position.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"
#include "mbq/linalg/dense.h"

namespace mbq {

/// Single-qubit measurement bases used by patterns.
enum class MeasBasis : std::uint8_t { Z, X, XY, YZ };

/// Basis kets as the columns of a 2x2 unitary: column m is the outcome-m
/// state.  XY(angle): (|0> ± e^{i a}|1>)/sqrt(2); YZ(angle): e^{i a X/2}|m>.
Matrix measurement_basis(MeasBasis basis, real angle);

class DynamicStatevector {
 public:
  DynamicStatevector() { amps_ = {cplx{1.0, 0.0}}; }

  int num_live() const noexcept { return static_cast<int>(order_.size()); }
  int peak_live() const noexcept { return peak_live_; }
  std::uint64_t dim() const noexcept { return std::uint64_t{1} << order_.size(); }
  bool has_wire(int wire) const noexcept { return pos_.count(wire) != 0; }
  /// Live wire ids in bit-position order (position 0 first).
  const std::vector<int>& wire_order() const noexcept { return order_; }

  /// Add wire `wire` in |+> (plus=true) or |0>.
  void add_wire(int wire, bool plus = true);

  /// Add wire `wire` in the state a0|0> + a1|1> (normalized internally).
  void add_wire_state(int wire, cplx a0, cplx a1);

  void apply_1q(int wire, const Matrix& u);
  void apply_h(int wire);
  void apply_x(int wire);
  void apply_z(int wire);
  void apply_rz(int wire, real theta);
  void apply_cz(int wire_a, int wire_b);

  /// Measure `wire` in the given basis and REMOVE it from the register.
  /// forced in {-1 (sample from Born rule), 0, 1}.  Returns the outcome.
  int measure_remove(int wire, const Matrix& basis, Rng& rng, int forced = -1);

  /// Probability that measuring `wire` in `basis` yields 1.
  real prob_one(int wire, const Matrix& basis) const;

  /// Amplitudes reordered so that wires[i] maps to bit i; every live wire
  /// must appear exactly once.  Use this to compare against a fixed-order
  /// reference state.
  std::vector<cplx> state_in_order(const std::vector<int>& wires) const;

  real norm() const;
  void normalize();

 private:
  int position(int wire) const;

  std::vector<cplx> amps_;
  std::vector<int> order_;               // wire id per bit position
  std::unordered_map<int, int> pos_;     // wire id -> bit position
  int peak_live_ = 0;
};

}  // namespace mbq
