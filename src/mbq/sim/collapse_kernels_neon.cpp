// NEON / AdvSIMD flavor of the collapse kernels (2 doubles / register —
// one complex amplitude per register, four accumulator registers for
// the canonical fold).
//
// AdvSIMD is baseline on AArch64, so this TU gates on the architecture
// itself (plus -DMBQ_TU_NEON from the build); x86 builds get the
// nullptr factory.  vmulq/vaddq are plain (non-fused) IEEE ops, and the
// global -ffp-contract=off keeps the compiler from re-fusing them.

#include "mbq/sim/collapse_kernels.h"

#if defined(MBQ_TU_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "mbq/sim/collapse_kernels_vec.h"

namespace mbq::detail {
namespace {

struct NeonTraits {
  using R = double;
  static constexpr int kW = 2;
  using V = float64x2_t;

  static V load(const double* p) noexcept { return vld1q_f64(p); }
  static void store(double* p, V v) noexcept { vst1q_f64(p, v); }
  static V set1(double x) noexcept { return vdupq_n_f64(x); }
  static V zero() noexcept { return vdupq_n_f64(0.0); }
  static V add(V a, V b) noexcept { return vaddq_f64(a, b); }
  static V mul(V a, V b) noexcept { return vmulq_f64(a, b); }
  /// [re, im] -> [im, re].
  static V swap_pairs(V v) noexcept { return vextq_f64(v, v, 1); }
  static V xor_signs(V v, V m) noexcept {
    return vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(v), vreinterpretq_u64_f64(m)));
  }
  static V neg(V v) noexcept {
    return xor_signs(v, vreinterpretq_f64_u64(vdupq_n_u64(kSignBit)));
  }
  /// Negate the re lane (stream-even position) only.
  static V neg_even(V v) noexcept {
    return xor_signs(v, vreinterpretq_f64_u64(vcombine_u64(
                            vdup_n_u64(kSignBit), vdup_n_u64(0))));
  }
};

/// f32 flavor: 4 floats / register (two complex amplitudes), four
/// accumulator registers for the canonical 16-lane fold.
struct NeonTraitsF32 {
  using R = float;
  static constexpr int kW = 4;
  using V = float32x4_t;

  static V load(const float* p) noexcept { return vld1q_f32(p); }
  static void store(float* p, V v) noexcept { vst1q_f32(p, v); }
  static V set1(float x) noexcept { return vdupq_n_f32(x); }
  static V zero() noexcept { return vdupq_n_f32(0.0f); }
  static V add(V a, V b) noexcept { return vaddq_f32(a, b); }
  static V mul(V a, V b) noexcept { return vmulq_f32(a, b); }
  /// Swap within each 64-bit (re,im) pair.
  static V swap_pairs(V v) noexcept { return vrev64q_f32(v); }
  static V xor_signs(V v, V m) noexcept {
    return vreinterpretq_f32_u32(
        veorq_u32(vreinterpretq_u32_f32(v), vreinterpretq_u32_f32(m)));
  }
  static V neg(V v) noexcept {
    return xor_signs(v,
                     vreinterpretq_f32_u32(vdupq_n_u32(kSignBitU<float>)));
  }
  /// Negate the re lanes (stream-even positions) only.
  static V neg_even(V v) noexcept {
    const uint32_t m[4] = {kSignBitU<float>, 0, kSignBitU<float>, 0};
    return xor_signs(v, vreinterpretq_f32_u32(vld1q_u32(m)));
  }
};

}  // namespace

const CollapseKernels* neon_kernels_impl() noexcept {
  return make_vec_table<NeonTraits>(SimdIsa::Neon);
}

const CollapseKernelsF32* neon_kernels_f32_impl() noexcept {
  return make_vec_table<NeonTraitsF32>(SimdIsa::Neon);
}

}  // namespace mbq::detail

#else  // !MBQ_TU_NEON

namespace mbq::detail {
const CollapseKernels* neon_kernels_impl() noexcept { return nullptr; }
const CollapseKernelsF32* neon_kernels_f32_impl() noexcept { return nullptr; }
}  // namespace mbq::detail

#endif
