// NEON / AdvSIMD flavor of the collapse kernels (2 doubles / register —
// one complex amplitude per register, four accumulator registers for
// the canonical fold).
//
// AdvSIMD is baseline on AArch64, so this TU gates on the architecture
// itself (plus -DMBQ_TU_NEON from the build); x86 builds get the
// nullptr factory.  vmulq/vaddq are plain (non-fused) IEEE ops, and the
// global -ffp-contract=off keeps the compiler from re-fusing them.

#include "mbq/sim/collapse_kernels.h"

#if defined(MBQ_TU_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include "mbq/sim/collapse_kernels_vec.h"

namespace mbq::detail {
namespace {

struct NeonTraits {
  static constexpr int kW = 2;
  using V = float64x2_t;

  static V load(const double* p) noexcept { return vld1q_f64(p); }
  static void store(double* p, V v) noexcept { vst1q_f64(p, v); }
  static V set1(double x) noexcept { return vdupq_n_f64(x); }
  static V zero() noexcept { return vdupq_n_f64(0.0); }
  static V add(V a, V b) noexcept { return vaddq_f64(a, b); }
  static V mul(V a, V b) noexcept { return vmulq_f64(a, b); }
  /// [re, im] -> [im, re].
  static V swap_pairs(V v) noexcept { return vextq_f64(v, v, 1); }
  static V xor_signs(V v, V m) noexcept {
    return vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(v), vreinterpretq_u64_f64(m)));
  }
  static V neg(V v) noexcept {
    return xor_signs(v, vreinterpretq_f64_u64(vdupq_n_u64(kSignBit)));
  }
  /// Negate the re lane (stream-even position) only.
  static V neg_even(V v) noexcept {
    return xor_signs(v, vreinterpretq_f64_u64(vcombine_u64(
                            vdup_n_u64(kSignBit), vdup_n_u64(0))));
  }
};

}  // namespace

const CollapseKernels* neon_kernels_impl() noexcept {
  return make_vec_table<NeonTraits>(SimdIsa::Neon);
}

}  // namespace mbq::detail

#else  // !MBQ_TU_NEON

namespace mbq::detail {
const CollapseKernels* neon_kernels_impl() noexcept { return nullptr; }
}  // namespace mbq::detail

#endif
