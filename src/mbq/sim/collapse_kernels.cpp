// Kernel dispatch: resolve the active flavor once per process (and per
// element type), guarded by a bit-identity self-check battery against
// the scalar reference.
//
// Resolution order: an MBQ_SIMD override is honored strictly (missing
// flavor or failed self-check THROWS — a forced flavor must never
// silently degrade); auto mode walks best-first (avx512 > avx2 > neon)
// and falls back past anything that is not compiled in, not executable
// here, or fails its self-check, bottoming out at scalar.  The f64 and
// f32 tables dispatch independently (each runs its own battery) but
// share the override and the ladder.

#include "mbq/sim/collapse_kernels.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "mbq/common/error.h"
#include "mbq/sim/collapse_threaded.h"

namespace mbq {

namespace {

// ---- deterministic self-check battery --------------------------------

/// splitmix64: tiny, deterministic, no state shared with mbq::Rng.
std::uint64_t mix64(std::uint64_t& s) noexcept {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

template <class R>
R rand_unit(std::uint64_t& s) noexcept {
  // [-1, 1) with full mantissa churn; exact-zero components appear via
  // the effect products, not the inputs.  The f32 values are the f64
  // draws rounded once — still deterministic.
  return static_cast<R>(static_cast<double>(mix64(s) >> 11) * 0x1.0p-52 - 1.0);
}

template <class R>
void fill(std::vector<std::complex<R>>& buf, std::size_t n,
          std::uint64_t seed) {
  buf.resize(n);
  for (auto& v : buf) v = {rand_unit<R>(seed), rand_unit<R>(seed)};
}

template <class R>
bool same(R a, R b) noexcept {
  using U = std::conditional_t<sizeof(R) == 8, std::uint64_t, std::uint32_t>;
  return std::bit_cast<U>(a) == std::bit_cast<U>(b);
}

template <class R>
bool same(const std::vector<std::complex<R>>& a,
          const std::vector<std::complex<R>>& b) noexcept {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(std::complex<R>)) ==
             0;
}

/// Every kernel entry, against scalar, bit-for-bit, across sizes that
/// exercise both the vector main loops and the delegation shapes.
template <class R>
bool run_battery(const CollapseKernelsT<R>& k) {
  using C = std::complex<R>;
  const CollapseKernelsT<R>& ref = scalar_kernels_t<R>();
  const C effs[] = {{R(0.7071067811865476), R(0.0)},  // Real
                    {R(0.0), R(0.3141592653589793)},  // Imag
                    {R(0.6), R(-0.8)}};               // Generic
  const R kInvSqrt2 = R(0.7071067811865476);
  std::vector<C> x, y, ox, oy;

  const std::size_t sizes[] = {1, 2, 3, 4, 8, 12, 32, 64, 256};
  for (std::size_t n : sizes) {
    fill(x, n, 0xC0FFEE ^ n);
    y = x;
    if (!same(ref.fold_norms(x.data(), n), k.fold_norms(x.data(), n)))
      return false;
    if (!same(ref.fold_norms_scaled(x.data(), n, R(0.25)),
              k.fold_norms_scaled(x.data(), n, R(0.25))))
      return false;
    if (!same(ref.prep_total_fold(x.data(), n, kInvSqrt2),
              k.prep_total_fold(x.data(), n, kInvSqrt2)))
      return false;
    const R fa = ref.scale_fold(x.data(), n, R(1.3));
    const R fb = k.scale_fold(y.data(), n, R(1.3));
    if (!same(fa, fb) || !same(x, y)) return false;
  }

  const std::size_t dim = 256;
  for (const C& e0 : effs) {
    for (const C& e1 : effs) {
      for (int q : {0, 1, 2, 3, 5}) {
        fill(x, dim, 0xABCD ^ static_cast<std::uint64_t>(q));
        ox.assign(dim / 2, C{});
        oy.assign(dim / 2, C{});
        const R fa =
            ref.collapse_pairs(x.data(), ox.data(), dim / 2, q, e0, e1);
        const R fb = k.collapse_pairs(x.data(), oy.data(), dim / 2, q, e0, e1);
        if (!same(fa, fb) || !same(ox, oy)) return false;
      }
      for (std::uint64_t pmask : {0x0ULL, 0x1ULL, 0xAULL, 0x2BULL, 0xF0ULL}) {
        fill(x, dim, 0x5EED ^ pmask);
        ox.assign(dim, C{});
        oy.assign(dim, C{});
        const R fa = ref.prep_collapse(x.data(), ox.data(), dim, pmask, e0, e1,
                                       kInvSqrt2);
        const R fb =
            k.prep_collapse(x.data(), oy.data(), dim, pmask, e0, e1, kInvSqrt2);
        if (!same(fa, fb) || !same(ox, oy)) return false;
        for (int q : {0, 2, 4}) {
          ox.assign(dim, C{});
          oy.assign(dim, C{});
          ref.teleport_collapse(x.data(), ox.data(), dim, q, pmask, e0, e1,
                                kInvSqrt2);
          k.teleport_collapse(x.data(), oy.data(), dim, q, pmask, e0, e1,
                              kInvSqrt2);
          if (!same(ox, oy)) return false;
          // Ranged teleport: slices must agree with scalar's slices
          // bit-for-bit, including the per-slice fold pairs.
          for (const auto& rr :
               {std::pair<std::uint64_t, std::uint64_t>{0, 32},
                std::pair<std::uint64_t, std::uint64_t>{32, 128},
                std::pair<std::uint64_t, std::uint64_t>{0, 128}}) {
            ox.assign(dim, C{});
            oy.assign(dim, C{});
            R fla = R(0), fha = R(0), flb = R(0), fhb = R(0);
            ref.teleport_collapse_range(x.data(), ox.data(), dim, q, pmask, e0,
                                        e1, kInvSqrt2, rr.first, rr.second,
                                        &fla, &fha);
            k.teleport_collapse_range(x.data(), oy.data(), dim, q, pmask, e0,
                                      e1, kInvSqrt2, rr.first, rr.second, &flb,
                                      &fhb);
            if (!same(fla, flb) || !same(fha, fhb) || !same(ox, oy))
              return false;
          }
        }
      }
    }
  }

  for (std::uint64_t pmask : {0x0ULL, 0x3ULL, 0x15ULL, 0x81ULL}) {
    fill(x, 2 * dim, 0xADD ^ pmask);
    y = x;
    const R fa = ref.add_plus_cz(x.data(), dim, pmask, R(0.5));
    const R fb = k.add_plus_cz(y.data(), dim, pmask, R(0.5));
    if (!same(fa, fb) || !same(x, y)) return false;
    // Ranged mirror over the already-scaled lower half.
    for (const auto& rr : {std::pair<std::uint64_t, std::uint64_t>{0, 64},
                           std::pair<std::uint64_t, std::uint64_t>{64, 256}}) {
      const R ma = ref.mirror_cz_range(x.data(), dim, rr.first, rr.second,
                                       pmask);
      const R mb = k.mirror_cz_range(y.data(), dim, rr.first, rr.second,
                                     pmask);
      if (!same(ma, mb) || !same(x, y)) return false;
    }
  }

  for (std::uint64_t eq : {0x0ULL, 0x6ULL, 0x90ULL}) {
    for (std::uint64_t par : {0x0ULL, 0x5ULL, 0xC3ULL}) {
      for (bool neg : {false, true}) {
        fill(x, dim, eq * 131 + par * 7 + (neg ? 1 : 0));
        y = x;
        ref.sign_pass(x.data(), dim, eq, par, neg);
        k.sign_pass(y.data(), dim, eq, par, neg);
        if (!same(x, y)) return false;
        for (std::uint64_t xm : {0x1ULL, 0x8ULL, 0x22ULL, 0x88ULL}) {
          fill(x, dim, eq * 13 + par * 101 + xm);
          y = x;
          ref.pauli_swap_pass(x.data(), dim, xm, par, eq, neg);
          k.pauli_swap_pass(y.data(), dim, xm, par, eq, neg);
          if (!same(x, y)) return false;
          // Ranged pauli swap over a rank sub-interval.
          fill(x, dim, eq * 17 + par * 29 + xm);
          y = x;
          ref.pauli_swap_range(x.data(), xm, par, eq, neg, 16, 96);
          k.pauli_swap_range(y.data(), xm, par, eq, neg, 16, 96);
          if (!same(x, y)) return false;
        }
      }
    }
  }

  const std::uint64_t masks[] = {0x3, 0x18, 0x41, 0x6};
  for (int count : {1, 2, 4}) {
    fill(x, dim, 0xC2 ^ static_cast<std::uint64_t>(count));
    y = x;
    ref.cz_masks_pass(x.data(), dim, masks, count);
    k.cz_masks_pass(y.data(), dim, masks, count);
    if (!same(x, y)) return false;
  }

  for (int q : {0, 1, 3, 6}) {
    fill(x, dim, 0x9FA5E ^ static_cast<std::uint64_t>(q));
    y = x;
    const C e{R(0.984807753012208), R(0.17364817766693033)};
    ref.phase_pass(x.data(), dim, q, e);
    k.phase_pass(y.data(), dim, q, e);
    if (!same(x, y)) return false;
  }

  return true;
}

/// The chunk drivers at and above the cutoff, across thread counts:
/// driver(k, t) must equal driver(scalar, 1) bit-for-bit for every
/// t — this is where a divergent flavor×thread combination is
/// rejected.  Representative shapes: both stride regimes, mixed
/// high/low masks, the fused *_with_total pairs against their unfused
/// definitions.
template <class R>
bool run_driver_battery(const CollapseKernelsT<R>& k) {
  using C = std::complex<R>;
  const CollapseKernelsT<R>& ref = scalar_kernels_t<R>();
  const std::uint64_t dim = thr::kChunkCutoffDim;  // 2^14: two chunks
  const R s = R(0.7071067811865476);
  const C e0{R(0.6), R(-0.8)};
  const C e1{R(0.0), R(0.3141592653589793)};
  std::vector<C> x, y, ox, oy;
  const int threads[] = {1, 2, 8};

  fill(x, 2 * dim, 0xD1CE5);
  for (int t : threads) {
    if (!same(thr::fold_norms(ref, x.data(), dim, 1),
              thr::fold_norms(k, x.data(), dim, t)))
      return false;
    if (!same(thr::prep_total_fold(ref, x.data(), dim, s, 1),
              thr::prep_total_fold(k, x.data(), dim, s, t)))
      return false;
  }

  for (int q : {0, 13, 14}) {  // stride < C, == C, > C
    fill(x, 2 * dim, 0xFACE ^ static_cast<std::uint64_t>(q));
    ox.assign(dim, C{});
    const auto fa =
        thr::collapse_pairs_with_total(ref, x.data(), ox.data(), dim, q, e0,
                                       e1, 1);
    const R ua = thr::fold_norms(ref, x.data(), 2 * dim, 1);
    const R pa = thr::collapse_pairs(ref, x.data(), ox.data(), dim, q, e0, e1,
                                     1);
    if (!same(fa.total, ua) || !same(fa.proj, pa)) return false;  // fusion
    for (int t : threads) {
      oy.assign(dim, C{});
      const auto fb = thr::collapse_pairs_with_total(k, x.data(), oy.data(),
                                                     dim, q, e0, e1, t);
      if (!same(fa.total, fb.total) || !same(fa.proj, fb.proj) ||
          !same(ox, oy))
        return false;
    }
  }

  const std::uint64_t pmask = 0x2BULL | (0x5ULL << 12);  // low and high bits
  fill(x, dim, 0xBEEF);
  ox.assign(dim, C{});
  const auto pa = thr::prep_collapse_with_total(ref, x.data(), ox.data(), dim,
                                                pmask, e0, e1, s, 1);
  const R ta = thr::prep_total_fold(ref, x.data(), dim, s, 1);
  const R ja =
      thr::prep_collapse(ref, x.data(), ox.data(), dim, pmask, e0, e1, s, 1);
  if (!same(pa.total, ta) || !same(pa.proj, ja)) return false;  // fusion
  for (int t : threads) {
    oy.assign(dim, C{});
    const auto pb = thr::prep_collapse_with_total(k, x.data(), oy.data(), dim,
                                                  pmask, e0, e1, s, t);
    if (!same(pa.total, pb.total) || !same(pa.proj, pb.proj) || !same(ox, oy))
      return false;
  }

  for (int q : {2, 13}) {
    fill(x, dim, 0x7E1E ^ static_cast<std::uint64_t>(q));
    ox.assign(dim, C{});
    const R fa = thr::teleport_collapse_fold(ref, x.data(), ox.data(), dim, q,
                                             pmask & ~((1ULL << (q + 1)) - 1),
                                             e0, e1, s, 1);
    for (int t : threads) {
      oy.assign(dim, C{});
      const R fb = thr::teleport_collapse_fold(k, x.data(), oy.data(), dim, q,
                                               pmask & ~((1ULL << (q + 1)) - 1),
                                               e0, e1, s, t);
      if (!same(fa, fb) || !same(ox, oy)) return false;
    }
  }

  for (std::uint64_t half : {dim / 2, dim}) {
    fill(x, 2 * half, 0xADD2);
    y = x;
    const R fa = thr::add_plus_cz(ref, x.data(), half, pmask, s, 1);
    for (int t : threads) {
      y.assign(x.size(), C{});
      fill(y, 2 * half, 0xADD2);
      const R fb = thr::add_plus_cz(k, y.data(), half, pmask, s, t);
      if (!same(fa, fb) || !same(x, y)) return false;
    }
  }

  const std::uint64_t eqm = (1ULL << 13) | 0x6;
  const std::uint64_t parm = (1ULL << 12) | 0x5;
  fill(x, dim, 0x51C);
  y = x;
  thr::sign_pass(ref, x.data(), dim, eqm, parm, false, 1);
  for (int t : threads) {
    fill(y, dim, 0x51C);
    thr::sign_pass(k, y.data(), dim, eqm, parm, false, t);
    if (!same(x, y)) return false;
  }

  const std::uint64_t czm[] = {0x3, (1ULL << 13) | 0x18, 1ULL << 12, 0x41};
  fill(x, dim, 0xC20);
  thr::cz_masks_pass(ref, x.data(), dim, czm, 4, 1);
  for (int t : threads) {
    fill(y, dim, 0xC20);
    thr::cz_masks_pass(k, y.data(), dim, czm, 4, t);
    if (!same(x, y)) return false;
  }

  for (std::uint64_t xm : {0x22ULL, 1ULL << 13}) {
    fill(x, dim, 0x9A11 ^ xm);
    thr::pauli_swap_pass(ref, x.data(), dim, xm, parm, eqm, true, 1);
    for (int t : threads) {
      fill(y, dim, 0x9A11 ^ xm);
      thr::pauli_swap_pass(k, y.data(), dim, xm, parm, eqm, true, t);
      if (!same(x, y)) return false;
    }
  }

  for (int q : {2, 13}) {
    const C e{R(0.984807753012208), R(0.17364817766693033)};
    fill(x, dim, 0xFA5E ^ static_cast<std::uint64_t>(q));
    thr::phase_pass(ref, x.data(), dim, q, e, 1);
    for (int t : threads) {
      fill(y, dim, 0xFA5E ^ static_cast<std::uint64_t>(q));
      thr::phase_pass(k, y.data(), dim, q, e, t);
      if (!same(x, y)) return false;
    }
  }

  return true;
}

// ---- dispatch --------------------------------------------------------

std::atomic<const CollapseKernels*> g_active{nullptr};
std::atomic<const CollapseKernelsF32*> g_active_f32{nullptr};

/// Strict resolution for a NAMED flavor: must exist here and must pass
/// the battery, else throw — "rejected at dispatch time".
const CollapseKernels* resolve_forced(SimdIsa isa) {
  const CollapseKernels* k = kernels_for_isa(isa);
  MBQ_REQUIRE(k != nullptr,
              "SIMD flavor '" << isa_name(isa)
                              << "' is not available (not compiled into this "
                                 "build or not supported by this CPU)");
  MBQ_REQUIRE(isa == SimdIsa::Scalar || verify_kernels(*k),
              "SIMD flavor '" << isa_name(isa)
                              << "' failed the bit-identity self-check "
                                 "against the scalar reference; rejected at "
                                 "dispatch time");
  return k;
}

const CollapseKernelsF32* resolve_forced_f32(SimdIsa isa) {
  const CollapseKernelsF32* k = kernels_for_isa_f32(isa);
  MBQ_REQUIRE(k != nullptr,
              "SIMD flavor '" << isa_name(isa)
                              << "' is not available for f32 (not compiled "
                                 "into this build or not supported by this "
                                 "CPU)");
  MBQ_REQUIRE(isa == SimdIsa::Scalar || verify_kernels_f32(*k),
              "SIMD flavor '" << isa_name(isa)
                              << "' failed the f32 bit-identity self-check "
                                 "against the scalar reference; rejected at "
                                 "dispatch time");
  return k;
}

const CollapseKernels* resolve() {
  if (const auto forced = simd_env_override()) return resolve_forced(*forced);
  for (const SimdIsa isa : {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon}) {
    const CollapseKernels* k = kernels_for_isa(isa);
    if (k != nullptr && verify_kernels(*k)) return k;
  }
  return &scalar_kernels();
}

const CollapseKernelsF32* resolve_f32() {
  if (const auto forced = simd_env_override())
    return resolve_forced_f32(*forced);
  for (const SimdIsa isa : {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon}) {
    const CollapseKernelsF32* k = kernels_for_isa_f32(isa);
    if (k != nullptr && verify_kernels_f32(*k)) return k;
  }
  return &scalar_kernels_f32();
}

}  // namespace

bool verify_kernels(const CollapseKernels& k) {
  return run_battery(k) && run_driver_battery(k);
}

bool verify_kernels_f32(const CollapseKernelsF32& k) {
  return run_battery(k) && run_driver_battery(k);
}

const CollapseKernels* kernels_for_isa(SimdIsa isa) noexcept {
  if (!host_supports_isa(isa)) return nullptr;
  switch (isa) {
    case SimdIsa::Scalar: return &scalar_kernels();
    case SimdIsa::Avx2: return detail::avx2_kernels_impl();
    case SimdIsa::Avx512: return detail::avx512_kernels_impl();
    case SimdIsa::Neon: return detail::neon_kernels_impl();
  }
  return nullptr;
}

const CollapseKernelsF32* kernels_for_isa_f32(SimdIsa isa) noexcept {
  if (!host_supports_isa(isa)) return nullptr;
  switch (isa) {
    case SimdIsa::Scalar: return &scalar_kernels_f32();
    case SimdIsa::Avx2: return detail::avx2_kernels_f32_impl();
    case SimdIsa::Avx512: return detail::avx512_kernels_f32_impl();
    case SimdIsa::Neon: return detail::neon_kernels_f32_impl();
  }
  return nullptr;
}

std::vector<SimdIsa> supported_simd_isas() {
  std::vector<SimdIsa> out;
  for (const SimdIsa isa : {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512,
                            SimdIsa::Neon})
    if (kernels_for_isa(isa) != nullptr) out.push_back(isa);
  return out;
}

const CollapseKernels& kernels() {
  const CollapseKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // A concurrent first call resolves to the same table; the double
    // store is idempotent.
    k = resolve();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

const CollapseKernelsF32& kernels_f32() {
  const CollapseKernelsF32* k = g_active_f32.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolve_f32();
    g_active_f32.store(k, std::memory_order_release);
  }
  return *k;
}

template <>
const CollapseKernelsT<double>& kernels_t<double>() {
  return kernels();
}

template <>
const CollapseKernelsT<float>& kernels_t<float>() {
  return kernels_f32();
}

SimdIsa active_simd_isa() { return kernels().isa; }

SimdIsa active_simd_isa_f32() { return kernels_f32().isa; }

void force_simd_isa(SimdIsa isa) {
  g_active.store(resolve_forced(isa), std::memory_order_release);
  g_active_f32.store(resolve_forced_f32(isa), std::memory_order_release);
}

}  // namespace mbq
