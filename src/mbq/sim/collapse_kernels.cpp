// Kernel dispatch: resolve the active flavor once per process, guarded
// by a bit-identity self-check battery against the scalar reference.
//
// Resolution order: an MBQ_SIMD override is honored strictly (missing
// flavor or failed self-check THROWS — a forced flavor must never
// silently degrade); auto mode walks best-first (avx512 > avx2 > neon)
// and falls back past anything that is not compiled in, not executable
// here, or fails its self-check, bottoming out at scalar.

#include "mbq/sim/collapse_kernels.h"

#include <atomic>
#include <bit>
#include <cstring>

#include "mbq/common/error.h"

namespace mbq {

namespace {

// ---- deterministic self-check battery --------------------------------

/// splitmix64: tiny, deterministic, no state shared with mbq::Rng.
std::uint64_t mix64(std::uint64_t& s) noexcept {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double rand_unit(std::uint64_t& s) noexcept {
  // [-1, 1) with full mantissa churn; exact-zero components appear via
  // the effect products, not the inputs.
  return static_cast<double>(mix64(s) >> 11) * 0x1.0p-52 - 1.0;
}

void fill(std::vector<cplx>& buf, std::size_t n, std::uint64_t seed) {
  buf.resize(n);
  for (auto& v : buf) v = {rand_unit(seed), rand_unit(seed)};
}

bool same(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same(const std::vector<cplx>& a, const std::vector<cplx>& b) noexcept {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

/// Every kernel entry, against scalar, bit-for-bit, across sizes that
/// exercise both the vector main loops and the delegation shapes.
bool run_battery(const CollapseKernels& k) {
  const CollapseKernels& ref = scalar_kernels();
  const cplx effs[] = {{0.7071067811865476, 0.0},   // Real
                       {0.0, 0.3141592653589793},   // Imag
                       {0.6, -0.8}};                // Generic
  std::vector<cplx> x, y, ox, oy;

  const std::size_t sizes[] = {1, 2, 3, 4, 8, 12, 32, 64, 256};
  for (std::size_t n : sizes) {
    fill(x, n, 0xC0FFEE ^ n);
    y = x;
    if (!same(ref.fold_norms(x.data(), n), k.fold_norms(x.data(), n)))
      return false;
    if (!same(ref.fold_norms_scaled(x.data(), n, 0.25),
              k.fold_norms_scaled(x.data(), n, 0.25)))
      return false;
    if (!same(ref.prep_total_fold(x.data(), n, 0.7071067811865476),
              k.prep_total_fold(x.data(), n, 0.7071067811865476)))
      return false;
    const double fa = ref.scale_fold(x.data(), n, 1.3);
    const double fb = k.scale_fold(y.data(), n, 1.3);
    if (!same(fa, fb) || !same(x, y)) return false;
  }

  const std::size_t dim = 256;
  for (const cplx& e0 : effs) {
    for (const cplx& e1 : effs) {
      for (int q : {0, 1, 2, 3, 5}) {
        fill(x, dim, 0xABCD ^ static_cast<std::uint64_t>(q));
        ox.assign(dim / 2, cplx{});
        oy.assign(dim / 2, cplx{});
        const double fa =
            ref.collapse_pairs(x.data(), ox.data(), dim / 2, q, e0, e1);
        const double fb =
            k.collapse_pairs(x.data(), oy.data(), dim / 2, q, e0, e1);
        if (!same(fa, fb) || !same(ox, oy)) return false;
      }
      for (std::uint64_t pmask : {0x0ULL, 0x1ULL, 0xAULL, 0x2BULL, 0xF0ULL}) {
        fill(x, dim, 0x5EED ^ pmask);
        ox.assign(dim, cplx{});
        oy.assign(dim, cplx{});
        const double fa = ref.prep_collapse(x.data(), ox.data(), dim, pmask,
                                            e0, e1, 0.7071067811865476);
        const double fb = k.prep_collapse(x.data(), oy.data(), dim, pmask,
                                          e0, e1, 0.7071067811865476);
        if (!same(fa, fb) || !same(ox, oy)) return false;
        for (int q : {0, 2, 4}) {
          ox.assign(dim, cplx{});
          oy.assign(dim, cplx{});
          ref.teleport_collapse(x.data(), ox.data(), dim, q, pmask, e0, e1,
                                0.7071067811865476);
          k.teleport_collapse(x.data(), oy.data(), dim, q, pmask, e0, e1,
                              0.7071067811865476);
          if (!same(ox, oy)) return false;
        }
      }
    }
  }

  for (std::uint64_t pmask : {0x0ULL, 0x3ULL, 0x15ULL, 0x81ULL}) {
    fill(x, 2 * dim, 0xADD ^ pmask);
    y = x;
    const double fa = ref.add_plus_cz(x.data(), dim, pmask, 0.5);
    const double fb = k.add_plus_cz(y.data(), dim, pmask, 0.5);
    if (!same(fa, fb) || !same(x, y)) return false;
  }

  for (std::uint64_t eq : {0x0ULL, 0x6ULL, 0x90ULL}) {
    for (std::uint64_t par : {0x0ULL, 0x5ULL, 0xC3ULL}) {
      for (bool neg : {false, true}) {
        fill(x, dim, eq * 131 + par * 7 + (neg ? 1 : 0));
        y = x;
        ref.sign_pass(x.data(), dim, eq, par, neg);
        k.sign_pass(y.data(), dim, eq, par, neg);
        if (!same(x, y)) return false;
        for (std::uint64_t xm : {0x1ULL, 0x8ULL, 0x22ULL, 0x88ULL}) {
          fill(x, dim, eq * 13 + par * 101 + xm);
          y = x;
          ref.pauli_swap_pass(x.data(), dim, xm, par, eq, neg);
          k.pauli_swap_pass(y.data(), dim, xm, par, eq, neg);
          if (!same(x, y)) return false;
        }
      }
    }
  }

  const std::uint64_t masks[] = {0x3, 0x18, 0x41, 0x6};
  for (int count : {1, 2, 4}) {
    fill(x, dim, 0xC2 ^ static_cast<std::uint64_t>(count));
    y = x;
    ref.cz_masks_pass(x.data(), dim, masks, count);
    k.cz_masks_pass(y.data(), dim, masks, count);
    if (!same(x, y)) return false;
  }

  for (int q : {0, 1, 3, 6}) {
    fill(x, dim, 0x9FA5E ^ static_cast<std::uint64_t>(q));
    y = x;
    const cplx e{0.984807753012208, 0.17364817766693033};
    ref.phase_pass(x.data(), dim, q, e);
    k.phase_pass(y.data(), dim, q, e);
    if (!same(x, y)) return false;
  }

  return true;
}

// ---- dispatch --------------------------------------------------------

std::atomic<const CollapseKernels*> g_active{nullptr};

/// Strict resolution for a NAMED flavor: must exist here and must pass
/// the battery, else throw — "rejected at dispatch time".
const CollapseKernels* resolve_forced(SimdIsa isa) {
  const CollapseKernels* k = kernels_for_isa(isa);
  MBQ_REQUIRE(k != nullptr,
              "SIMD flavor '" << isa_name(isa)
                              << "' is not available (not compiled into this "
                                 "build or not supported by this CPU)");
  MBQ_REQUIRE(isa == SimdIsa::Scalar || verify_kernels(*k),
              "SIMD flavor '" << isa_name(isa)
                              << "' failed the bit-identity self-check "
                                 "against the scalar reference; rejected at "
                                 "dispatch time");
  return k;
}

const CollapseKernels* resolve() {
  if (const auto forced = simd_env_override()) return resolve_forced(*forced);
  for (const SimdIsa isa : {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon}) {
    const CollapseKernels* k = kernels_for_isa(isa);
    if (k != nullptr && verify_kernels(*k)) return k;
  }
  return &scalar_kernels();
}

}  // namespace

bool verify_kernels(const CollapseKernels& k) { return run_battery(k); }

const CollapseKernels* kernels_for_isa(SimdIsa isa) noexcept {
  if (!host_supports_isa(isa)) return nullptr;
  switch (isa) {
    case SimdIsa::Scalar: return &scalar_kernels();
    case SimdIsa::Avx2: return detail::avx2_kernels_impl();
    case SimdIsa::Avx512: return detail::avx512_kernels_impl();
    case SimdIsa::Neon: return detail::neon_kernels_impl();
  }
  return nullptr;
}

std::vector<SimdIsa> supported_simd_isas() {
  std::vector<SimdIsa> out;
  for (const SimdIsa isa : {SimdIsa::Scalar, SimdIsa::Avx2, SimdIsa::Avx512,
                            SimdIsa::Neon})
    if (kernels_for_isa(isa) != nullptr) out.push_back(isa);
  return out;
}

const CollapseKernels& kernels() {
  const CollapseKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // A concurrent first call resolves to the same table; the double
    // store is idempotent.
    k = resolve();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

SimdIsa active_simd_isa() { return kernels().isa; }

void force_simd_isa(SimdIsa isa) {
  g_active.store(resolve_forced(isa), std::memory_order_release);
}

}  // namespace mbq
