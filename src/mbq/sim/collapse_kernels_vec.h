#pragma once
// Shared vector implementation of the collapse kernels.
//
// Each ISA TU (collapse_kernels_{avx2,avx512,neon}.cpp) supplies a small
// Traits type — an element type R (double or float), W elements per
// register plus load/store/add/mul and three sign-bit xors — and
// instantiates make_vec_table<Traits>.  Everything else (lane
// bookkeeping, effect products, delegation rules) lives here ONCE, so
// the flavors cannot drift apart.
//
// Bitwise identity with the scalar reference comes from two facts:
//  * elementwise ops (mul/add/xor per lane) are the same IEEE operations
//    the scalar kernel performs, in the same per-element order — complex
//    products use explicit mul+add (never FMA), negation is a sign-bit
//    xor (exact), and a−b is computed as a+(−b) (IEEE-identical);
//  * folds keep the canonical kFoldLanes<R> lane accumulators in vector
//    registers: a W-wide chunk at stream position m (m ≡ 0 mod W) adds
//    its squares to lanes m..m+W−1 mod L, which is exactly what the
//    scalar reference's running lanes receive.
// Shapes that would break lane alignment (sizes not a multiple of L/2
// amplitudes, strides narrower than the register) delegate to the
// scalar table — same bits, just slower; real registers are powers of
// two so the delegation never triggers past small dims.

#include <bit>
#include <cstdint>
#include <type_traits>

#include "mbq/common/bits.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq::detail {

inline constexpr std::uint64_t kSignBit = std::uint64_t{1} << 63;

/// The unsigned integer carrying R's sign bit.
template <class R>
using UIntOf = std::conditional_t<sizeof(R) == 8, std::uint64_t, std::uint32_t>;

template <class R>
inline constexpr UIntOf<R> kSignBitU = UIntOf<R>{1} << (sizeof(R) * 8 - 1);

template <class T>
struct VecKernels {
  using R = typename T::R;            // element type (double or float)
  using C = std::complex<R>;
  using U = UIntOf<R>;
  static constexpr int kW = T::kW;    // elements per register
  static constexpr int kWc = kW / 2;  // complex amplitudes per register
  static constexpr int kL = kFoldLanes<R>;  // canonical fold lanes
  static constexpr int kQ = kL / 2;   // delegation quantum, in amplitudes
  using V = typename T::V;

  // std::complex<R> is array-layout-compatible with R[2].
  static const R* dp(const C* x) noexcept {
    return reinterpret_cast<const R*>(x);
  }
  static R* dp(C* x) noexcept { return reinterpret_cast<R*>(x); }

  static constexpr R sign_word(bool flip) noexcept {
    return std::bit_cast<R>(flip ? kSignBitU<R> : U{0});
  }

  /// The canonical kL-lane fold held in kL/W vector registers; add()
  /// consumes one W-wide chunk (stream position multiple of W, fed in
  /// ascending order from a position ≡ 0 mod kL).
  struct Acc {
    static constexpr int kNV = kL / kW;
    V v[kNV];
    int slot = 0;
    Acc() noexcept {
      for (int i = 0; i < kNV; ++i) v[i] = T::zero();
    }
    void add(V x) noexcept {
      v[slot] = T::add(v[slot], T::mul(x, x));
      slot = (slot + 1) & (kNV - 1);
    }
    R combine() const noexcept {
      alignas(64) R a[kL];
      for (int i = 0; i < kNV; ++i) T::store(a + i * kW, v[i]);
      return fold_combine<R>(a);
    }
  };

  /// Broadcast measurement effect; apply() performs per complex lane
  /// exactly the scalar eff_mul (Generic re uses a+(−b), IEEE-identical
  /// to the scalar a−b).
  struct Eff {
    EffKind k;
    V er, ei;
    explicit Eff(C e) noexcept
        : k(eff_kind(e)), er(T::set1(e.real())), ei(T::set1(e.imag())) {}
    V apply(V u) const noexcept {
      switch (k) {
        case EffKind::Real:
          return T::mul(u, er);
        case EffKind::Imag:
          return T::neg_even(T::mul(T::swap_pairs(u), ei));
        default:
          return T::add(T::mul(u, er),
                        T::neg_even(T::mul(T::swap_pairs(u), ei)));
      }
    }
  };

  /// Per-chunk sign masks for (−1)^parity(i & pmask) over kWc
  /// consecutive amplitudes: the low pmask bits fix a pattern within the
  /// chunk, the high bits a per-chunk base parity selecting m[0] or m[1].
  struct PairSigns {
    V m[2];
    std::uint64_t pm_hi;
    explicit PairSigns(std::uint64_t pmask) noexcept {
      const std::uint64_t pm_lo = pmask & (std::uint64_t(kWc) - 1);
      pm_hi = pmask & ~(std::uint64_t(kWc) - 1);
      alignas(64) R b0[kW], b1[kW];
      for (int t = 0; t < kWc; ++t) {
        const bool bit = parity64(std::uint64_t(t) & pm_lo) != 0;
        b0[2 * t] = b0[2 * t + 1] = sign_word(bit);
        b1[2 * t] = b1[2 * t + 1] = sign_word(!bit);
      }
      m[0] = T::load(b0);
      m[1] = T::load(b1);
    }
    V at(std::uint64_t base) const noexcept {
      return m[parity64(base & pm_hi)];
    }
  };

  static R fold_norms(const C* x, std::uint64_t n) {
    if (n % kQ != 0) return scalar_kernels_t<R>().fold_norms(x, n);
    const R* p = dp(x);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW) acc.add(T::load(p + m));
    return acc.combine();
  }

  static R fold_norms_scaled(const C* x, std::uint64_t n, R s) {
    if (n % kQ != 0) return scalar_kernels_t<R>().fold_norms_scaled(x, n, s);
    const R* p = dp(x);
    const V sv = T::set1(s);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW)
      acc.add(T::mul(T::load(p + m), sv));
    return acc.combine();
  }

  static R prep_total_fold(const C* x, std::uint64_t n, R s) {
    if (n % kQ != 0) return scalar_kernels_t<R>().prep_total_fold(x, n, s);
    const R* p = dp(x);
    const V sv = T::set1(s);
    Acc acc;  // ONE carried accumulator set across both sweeps
    for (int sweep = 0; sweep < 2; ++sweep)
      for (std::uint64_t m = 0; m < 2 * n; m += kW)
        acc.add(T::mul(T::load(p + m), sv));
    return acc.combine();
  }

  static R scale_fold(C* x, std::uint64_t n, R inv) {
    if (n % kQ != 0) return scalar_kernels_t<R>().scale_fold(x, n, inv);
    R* p = dp(x);
    const V iv = T::set1(inv);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW) {
      const V v = T::mul(T::load(p + m), iv);
      T::store(p + m, v);
      acc.add(v);
    }
    return acc.combine();
  }

  static R collapse_pairs(const C* x, C* out, std::uint64_t pairs, int q,
                          C e0, C e1) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    if (pairs % kQ != 0 || stride < std::uint64_t(kWc))
      return scalar_kernels_t<R>().collapse_pairs(x, out, pairs, q, e0, e1);
    const R* p = dp(x);
    R* o = dp(out);
    const Eff f0(e0), f1(e1);
    Acc acc;
    for (std::uint64_t k = 0; k < pairs; k += kWc) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      const V a = f0.apply(T::load(p + 2 * i0));
      const V b = f1.apply(T::load(p + 2 * (i0 | stride)));
      const V r = T::add(a, b);
      T::store(o + 2 * k, r);
      acc.add(r);
    }
    return acc.combine();
  }

  static R prep_collapse(const C* x, C* out, std::uint64_t dim,
                         std::uint64_t pmask, C e0, C e1, R s) {
    if (dim % kQ != 0)
      return scalar_kernels_t<R>().prep_collapse(x, out, dim, pmask, e0, e1,
                                                 s);
    const R* p = dp(x);
    R* o = dp(out);
    const V sv = T::set1(s);
    const Eff f0(e0), f1(e1);
    const PairSigns signs(pmask);
    Acc acc;
    for (std::uint64_t i = 0; i < dim; i += kWc) {
      const V low = T::mul(T::load(p + 2 * i), sv);
      const V up = T::xor_signs(low, signs.at(i));  // sign BEFORE effect
      const V r = T::add(f0.apply(low), f1.apply(up));
      T::store(o + 2 * i, r);
      acc.add(r);
    }
    return acc.combine();
  }

  static void teleport_collapse(const C* x, C* out, std::uint64_t dim, int q,
                                std::uint64_t pmask, C e0, C e1, R s) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    // A partner below the measured wire makes the ± signs vary inside a
    // block — rare (mixer J chains never do it); leave it to scalar.
    if (dim % kQ != 0 || stride < std::uint64_t(kWc) ||
        (pmask & (stride - 1)) != 0) {
      scalar_kernels_t<R>().teleport_collapse(x, out, dim, q, pmask, e0, e1,
                                              s);
      return;
    }
    const std::uint64_t rest_count = dim / 2;
    const int pm_q = static_cast<int>((pmask >> q) & 1);
    const R* p = dp(x);
    R* o = dp(out);
    const V sv = T::set1(s);
    const Eff f0(e0), f1(e1);
    for (std::uint64_t hp = 0; hp < rest_count >> q; ++hp) {
      const std::uint64_t i0b = hp << (q + 1);
      const std::uint64_t rb = hp << q;
      const int ph = parity64(i0b & pmask);
      const bool s0 = ph != 0;
      const bool s1 = (ph ^ pm_q) != 0;
      for (std::uint64_t lo = 0; lo < stride; lo += kWc) {
        const V a = f0.apply(T::mul(T::load(p + 2 * (i0b + lo)), sv));
        const V b =
            f1.apply(T::mul(T::load(p + 2 * (i0b + stride + lo)), sv));
        T::store(o + 2 * (rb + lo), T::add(a, b));
        const V an = s0 ? T::neg(a) : a;  // sign AFTER the product,
        const V bn = s1 ? T::neg(b) : b;  // as the scalar path always has
        T::store(o + 2 * (rest_count + rb + lo), T::add(an, bn));
      }
    }
  }

  static void teleport_collapse_range(const C* x, C* out, std::uint64_t dim,
                                      int q, std::uint64_t pmask, C e0, C e1,
                                      R s, std::uint64_t r_begin,
                                      std::uint64_t r_end, R* fold_lo,
                                      R* fold_hi) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    // The slice folds restart their lanes at r_begin, so the slice must
    // begin and end on the delegation quantum; partner bits below the
    // measured wire go to scalar as in the full pass.
    if (stride < std::uint64_t(kWc) || (pmask & (stride - 1)) != 0 ||
        r_begin % kQ != 0 || (r_end - r_begin) % kQ != 0) {
      scalar_kernels_t<R>().teleport_collapse_range(
          x, out, dim, q, pmask, e0, e1, s, r_begin, r_end, fold_lo, fold_hi);
      return;
    }
    const std::uint64_t rest_count = dim / 2;
    const int pm_q = static_cast<int>((pmask >> q) & 1);
    const R* p = dp(x);
    R* o = dp(out);
    const V sv = T::set1(s);
    const Eff f0(e0), f1(e1);
    Acc acc_lo;
    Acc acc_hi;
    // r and stride are both multiples of kWc, so each kWc-wide step
    // stays inside one measured-position block: i0 advances contiguously.
    for (std::uint64_t r = r_begin; r < r_end; r += kWc) {
      const std::uint64_t i0 = insert_zero_bit(r, q);
      const int ph = parity64(i0 & pmask);
      const V a = f0.apply(T::mul(T::load(p + 2 * i0), sv));
      const V b = f1.apply(T::mul(T::load(p + 2 * (i0 | stride)), sv));
      const V r0 = T::add(a, b);
      T::store(o + 2 * r, r0);
      acc_lo.add(r0);
      const V an = ph ? T::neg(a) : a;
      const V bn = (ph ^ pm_q) ? T::neg(b) : b;
      const V r1 = T::add(an, bn);
      T::store(o + 2 * (rest_count + r), r1);
      acc_hi.add(r1);
    }
    *fold_lo = acc_lo.combine();
    *fold_hi = acc_hi.combine();
  }

  static R add_plus_cz(C* x, std::uint64_t old_dim, std::uint64_t pmask,
                       R s) {
    if (old_dim % kQ != 0)
      return scalar_kernels_t<R>().add_plus_cz(x, old_dim, pmask, s);
    R* p = dp(x);
    const V sv = T::set1(s);
    const PairSigns signs(pmask);
    Acc acc;  // carried across both halves, ascending
    for (std::uint64_t i = 0; i < old_dim; i += kWc) {
      const V v = T::mul(T::load(p + 2 * i), sv);
      T::store(p + 2 * i, v);
      acc.add(v);
    }
    for (std::uint64_t i = 0; i < old_dim; i += kWc) {
      const V v = T::xor_signs(T::load(p + 2 * i), signs.at(i));
      T::store(p + 2 * (old_dim + i), v);
      acc.add(v);
    }
    return acc.combine();
  }

  static R mirror_cz_range(C* x, std::uint64_t old_dim, std::uint64_t i_begin,
                           std::uint64_t i_end, std::uint64_t pmask) {
    if (i_begin % kQ != 0 || (i_end - i_begin) % kQ != 0)
      return scalar_kernels_t<R>().mirror_cz_range(x, old_dim, i_begin, i_end,
                                                   pmask);
    R* p = dp(x);
    const PairSigns signs(pmask);
    Acc acc;  // fresh lanes, restarting at i_begin (the slice contract)
    for (std::uint64_t i = i_begin; i < i_end; i += kWc) {
      const V v = T::xor_signs(T::load(p + 2 * i), signs.at(i));
      T::store(p + 2 * (old_dim + i), v);
      acc.add(v);
    }
    return acc.combine();
  }

  static void sign_pass(C* x, std::uint64_t n, std::uint64_t eq_mask,
                        std::uint64_t par_mask, bool negate) {
    if (n % kQ != 0) {
      scalar_kernels_t<R>().sign_pass(x, n, eq_mask, par_mask, negate);
      return;
    }
    R* p = dp(x);
    alignas(64) R mb[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t j = base + std::uint64_t(t);
        const bool eq = eq_mask != 0 && (j & eq_mask) == eq_mask;
        const bool flip = eq ^ (parity64(j & par_mask) != 0) ^ negate;
        mb[2 * t] = mb[2 * t + 1] = sign_word(flip);
      }
      T::store(p + 2 * base,
               T::xor_signs(T::load(p + 2 * base), T::load(mb)));
    }
  }

  static void cz_masks_pass(C* x, std::uint64_t n,
                            const std::uint64_t* pair_masks, int count) {
    if (n % kQ != 0) {
      scalar_kernels_t<R>().cz_masks_pass(x, n, pair_masks, count);
      return;
    }
    R* p = dp(x);
    alignas(64) R mb[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t i = base + std::uint64_t(t);
        int flips = 0;
        for (int m = 0; m < count; ++m)
          flips ^= static_cast<int>((i & pair_masks[m]) == pair_masks[m]);
        mb[2 * t] = mb[2 * t + 1] = sign_word(flips != 0);
      }
      T::store(p + 2 * base,
               T::xor_signs(T::load(p + 2 * base), T::load(mb)));
    }
  }

  static void pauli_swap_pass(C* x, std::uint64_t n, std::uint64_t xmask,
                              std::uint64_t zmask, std::uint64_t eq_mask,
                              bool negate) {
    // xmask touching the intra-chunk bits would pair lanes within one
    // register; scalar handles that shape.
    if (n % kQ != 0 || (xmask & (std::uint64_t(kWc) - 1)) != 0) {
      scalar_kernels_t<R>().pauli_swap_pass(x, n, xmask, zmask, eq_mask,
                                            negate);
      return;
    }
    const int hb = 63 - std::countl_zero(xmask);
    R* p = dp(x);
    alignas(64) R mj[kW], mj2[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      if (get_bit(base, hb)) continue;  // pairs handled once (chunk-uniform)
      const std::uint64_t base2 = base ^ xmask;
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t j = base + std::uint64_t(t);
        const std::uint64_t j2 = base2 + std::uint64_t(t);
        const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
        const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
        const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
        const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
        mj[2 * t] = mj[2 * t + 1] = sign_word(flip_j);
        mj2[2 * t] = mj2[2 * t + 1] = sign_word(flip_j2);
      }
      const V vj = T::load(p + 2 * base);
      const V vj2 = T::load(p + 2 * base2);
      T::store(p + 2 * base, T::xor_signs(vj2, T::load(mj)));
      T::store(p + 2 * base2, T::xor_signs(vj, T::load(mj2)));
    }
  }

  static void pauli_swap_range(C* x, std::uint64_t xmask, std::uint64_t zmask,
                               std::uint64_t eq_mask, bool negate,
                               std::uint64_t p_begin, std::uint64_t p_end) {
    // Pair rank p maps to j = insert_zero_bit(p, hb); a kWc-wide step
    // stays contiguous because xmask (hence hb) clears the intra-chunk
    // bits.  No folds here, but the same alignment rules apply.
    if ((xmask & (std::uint64_t(kWc) - 1)) != 0 || p_begin % kWc != 0 ||
        (p_end - p_begin) % kWc != 0) {
      scalar_kernels_t<R>().pauli_swap_range(x, xmask, zmask, eq_mask, negate,
                                             p_begin, p_end);
      return;
    }
    const int hb = 63 - std::countl_zero(xmask);
    R* p = dp(x);
    alignas(64) R mj[kW], mj2[kW];
    for (std::uint64_t pr = p_begin; pr < p_end; pr += kWc) {
      const std::uint64_t base = insert_zero_bit(pr, hb);
      const std::uint64_t base2 = base ^ xmask;
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t j = base + std::uint64_t(t);
        const std::uint64_t j2 = base2 + std::uint64_t(t);
        const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
        const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
        const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
        const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
        mj[2 * t] = mj[2 * t + 1] = sign_word(flip_j);
        mj2[2 * t] = mj2[2 * t + 1] = sign_word(flip_j2);
      }
      const V vj = T::load(p + 2 * base);
      const V vj2 = T::load(p + 2 * base2);
      T::store(p + 2 * base, T::xor_signs(vj2, T::load(mj)));
      T::store(p + 2 * base2, T::xor_signs(vj, T::load(mj2)));
    }
  }

  static void phase_pass(C* x, std::uint64_t n, int q, C e) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    if (n % kQ != 0 || stride < std::uint64_t(kWc)) {
      scalar_kernels_t<R>().phase_pass(x, n, q, e);
      return;
    }
    R* p = dp(x);
    // Always the full product: the scalar phase kernel uses cmul
    // unconditionally, and only the Generic form matches it bitwise
    // including zero signs.
    const V er = T::set1(e.real());
    const V ei = T::set1(e.imag());
    const std::uint64_t pairs = n / 2;
    for (std::uint64_t k = 0; k < pairs; k += kWc) {
      const std::uint64_t i1 = insert_zero_bit(k, q) | stride;
      const V u = T::load(p + 2 * i1);
      const V r = T::add(T::mul(u, er),
                         T::neg_even(T::mul(T::swap_pairs(u), ei)));
      T::store(p + 2 * i1, r);
    }
  }
};

template <class T>
const CollapseKernelsT<typename T::R>* make_vec_table(SimdIsa isa) noexcept {
  using K = VecKernels<T>;
  static const CollapseKernelsT<typename T::R> table = {
      isa,
      K::fold_norms,
      K::fold_norms_scaled,
      K::prep_total_fold,
      K::scale_fold,
      K::collapse_pairs,
      K::prep_collapse,
      K::teleport_collapse,
      K::add_plus_cz,
      K::sign_pass,
      K::cz_masks_pass,
      K::pauli_swap_pass,
      K::phase_pass,
      K::teleport_collapse_range,
      K::mirror_cz_range,
      K::pauli_swap_range,
  };
  return &table;
}

}  // namespace mbq::detail
