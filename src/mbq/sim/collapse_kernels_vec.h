#pragma once
// Shared vector implementation of the collapse kernels.
//
// Each ISA TU (collapse_kernels_{avx2,avx512,neon}.cpp) supplies a small
// Traits type — W doubles per register plus load/store/add/mul and three
// sign-bit xors — and instantiates make_vec_table<Traits>.  Everything
// else (lane bookkeeping, effect products, delegation rules) lives here
// ONCE, so the three flavors cannot drift apart.
//
// Bitwise identity with the scalar reference comes from two facts:
//  * elementwise ops (mul/add/xor per lane) are the same IEEE operations
//    the scalar kernel performs, in the same per-element order — complex
//    products use explicit mul+add (never FMA), negation is a sign-bit
//    xor (exact), and a−b is computed as a+(−b) (IEEE-identical);
//  * folds keep the canonical 8-lane accumulators in vector registers:
//    a W-wide chunk at stream position m (m ≡ 0 mod W) adds its squares
//    to lanes m..m+W−1 mod 8, which is exactly what the scalar
//    reference's eight running doubles receive.
// Shapes that would break lane alignment (sizes not a multiple of four
// amplitudes, strides narrower than the register) delegate to the scalar
// table — same bits, just slower; real registers are powers of two so
// the delegation never triggers past dim 2.

#include <bit>
#include <cstdint>

#include "mbq/common/bits.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq::detail {

inline constexpr std::uint64_t kSignBit = std::uint64_t{1} << 63;

template <class T>
struct VecKernels {
  static constexpr int kW = T::kW;   // doubles per register
  static constexpr int kWc = kW / 2; // complex amplitudes per register
  using V = typename T::V;

  // std::complex<double> is array-layout-compatible with double[2].
  static const double* dp(const cplx* x) noexcept {
    return reinterpret_cast<const double*>(x);
  }
  static double* dp(cplx* x) noexcept { return reinterpret_cast<double*>(x); }

  /// The canonical 8-lane fold held in 8/W vector registers; add()
  /// consumes one W-wide chunk (stream position multiple of W, fed in
  /// ascending order from a position ≡ 0 mod 8).
  struct Acc {
    static constexpr int kNV = 8 / kW;
    V v[kNV];
    int slot = 0;
    Acc() noexcept {
      for (int i = 0; i < kNV; ++i) v[i] = T::zero();
    }
    void add(V x) noexcept {
      v[slot] = T::add(v[slot], T::mul(x, x));
      slot = (slot + 1) & (kNV - 1);
    }
    double combine() const noexcept {
      alignas(64) double a[8];
      for (int i = 0; i < kNV; ++i) T::store(a + i * kW, v[i]);
      return ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
    }
  };

  /// Broadcast measurement effect; apply() performs per complex lane
  /// exactly the scalar eff_mul (Generic re uses a+(−b), IEEE-identical
  /// to the scalar a−b).
  struct Eff {
    EffKind k;
    V er, ei;
    explicit Eff(cplx e) noexcept
        : k(eff_kind(e)), er(T::set1(e.real())), ei(T::set1(e.imag())) {}
    V apply(V u) const noexcept {
      switch (k) {
        case EffKind::Real:
          return T::mul(u, er);
        case EffKind::Imag:
          return T::neg_even(T::mul(T::swap_pairs(u), ei));
        default:
          return T::add(T::mul(u, er),
                        T::neg_even(T::mul(T::swap_pairs(u), ei)));
      }
    }
  };

  /// Per-chunk sign masks for (−1)^parity(i & pmask) over kWc
  /// consecutive amplitudes: the low pmask bits fix a pattern within the
  /// chunk, the high bits a per-chunk base parity selecting m[0] or m[1].
  struct PairSigns {
    V m[2];
    std::uint64_t pm_hi;
    explicit PairSigns(std::uint64_t pmask) noexcept {
      const std::uint64_t pm_lo = pmask & (std::uint64_t(kWc) - 1);
      pm_hi = pmask & ~(std::uint64_t(kWc) - 1);
      alignas(64) double b0[kW], b1[kW];
      for (int t = 0; t < kWc; ++t) {
        const bool bit = parity64(std::uint64_t(t) & pm_lo) != 0;
        const double sgn = std::bit_cast<double>(kSignBit);
        const double pos = std::bit_cast<double>(std::uint64_t{0});
        b0[2 * t] = b0[2 * t + 1] = bit ? sgn : pos;
        b1[2 * t] = b1[2 * t + 1] = bit ? pos : sgn;
      }
      m[0] = T::load(b0);
      m[1] = T::load(b1);
    }
    V at(std::uint64_t base) const noexcept {
      return m[parity64(base & pm_hi)];
    }
  };

  static double fold_norms(const cplx* x, std::uint64_t n) {
    if (n % 4 != 0) return scalar_kernels().fold_norms(x, n);
    const double* p = dp(x);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW) acc.add(T::load(p + m));
    return acc.combine();
  }

  static double fold_norms_scaled(const cplx* x, std::uint64_t n, double s) {
    if (n % 4 != 0) return scalar_kernels().fold_norms_scaled(x, n, s);
    const double* p = dp(x);
    const V sv = T::set1(s);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW)
      acc.add(T::mul(T::load(p + m), sv));
    return acc.combine();
  }

  static double prep_total_fold(const cplx* x, std::uint64_t n, double s) {
    if (n % 4 != 0) return scalar_kernels().prep_total_fold(x, n, s);
    const double* p = dp(x);
    const V sv = T::set1(s);
    Acc acc;  // ONE carried accumulator set across both sweeps
    for (int sweep = 0; sweep < 2; ++sweep)
      for (std::uint64_t m = 0; m < 2 * n; m += kW)
        acc.add(T::mul(T::load(p + m), sv));
    return acc.combine();
  }

  static double scale_fold(cplx* x, std::uint64_t n, double inv) {
    if (n % 4 != 0) return scalar_kernels().scale_fold(x, n, inv);
    double* p = dp(x);
    const V iv = T::set1(inv);
    Acc acc;
    for (std::uint64_t m = 0; m < 2 * n; m += kW) {
      const V v = T::mul(T::load(p + m), iv);
      T::store(p + m, v);
      acc.add(v);
    }
    return acc.combine();
  }

  static double collapse_pairs(const cplx* x, cplx* out, std::uint64_t pairs,
                               int q, cplx e0, cplx e1) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    if (pairs % 4 != 0 || stride < std::uint64_t(kWc))
      return scalar_kernels().collapse_pairs(x, out, pairs, q, e0, e1);
    const double* p = dp(x);
    double* o = dp(out);
    const Eff f0(e0), f1(e1);
    Acc acc;
    for (std::uint64_t k = 0; k < pairs; k += kWc) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      const V a = f0.apply(T::load(p + 2 * i0));
      const V b = f1.apply(T::load(p + 2 * (i0 | stride)));
      const V r = T::add(a, b);
      T::store(o + 2 * k, r);
      acc.add(r);
    }
    return acc.combine();
  }

  static double prep_collapse(const cplx* x, cplx* out, std::uint64_t dim,
                              std::uint64_t pmask, cplx e0, cplx e1,
                              double s) {
    if (dim % 4 != 0)
      return scalar_kernels().prep_collapse(x, out, dim, pmask, e0, e1, s);
    const double* p = dp(x);
    double* o = dp(out);
    const V sv = T::set1(s);
    const Eff f0(e0), f1(e1);
    const PairSigns signs(pmask);
    Acc acc;
    for (std::uint64_t i = 0; i < dim; i += kWc) {
      const V low = T::mul(T::load(p + 2 * i), sv);
      const V up = T::xor_signs(low, signs.at(i));  // sign BEFORE effect
      const V r = T::add(f0.apply(low), f1.apply(up));
      T::store(o + 2 * i, r);
      acc.add(r);
    }
    return acc.combine();
  }

  static void teleport_collapse(const cplx* x, cplx* out, std::uint64_t dim,
                                int q, std::uint64_t pmask, cplx e0, cplx e1,
                                double s) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    // A partner below the measured wire makes the ± signs vary inside a
    // block — rare (mixer J chains never do it); leave it to scalar.
    if (dim % 4 != 0 || stride < std::uint64_t(kWc) ||
        (pmask & (stride - 1)) != 0) {
      scalar_kernels().teleport_collapse(x, out, dim, q, pmask, e0, e1, s);
      return;
    }
    const std::uint64_t rest_count = dim / 2;
    const int pm_q = static_cast<int>((pmask >> q) & 1);
    const double* p = dp(x);
    double* o = dp(out);
    const V sv = T::set1(s);
    const Eff f0(e0), f1(e1);
    for (std::uint64_t hp = 0; hp < rest_count >> q; ++hp) {
      const std::uint64_t i0b = hp << (q + 1);
      const std::uint64_t rb = hp << q;
      const int ph = parity64(i0b & pmask);
      const bool s0 = ph != 0;
      const bool s1 = (ph ^ pm_q) != 0;
      for (std::uint64_t lo = 0; lo < stride; lo += kWc) {
        const V a = f0.apply(T::mul(T::load(p + 2 * (i0b + lo)), sv));
        const V b =
            f1.apply(T::mul(T::load(p + 2 * (i0b + stride + lo)), sv));
        T::store(o + 2 * (rb + lo), T::add(a, b));
        const V an = s0 ? T::neg(a) : a;  // sign AFTER the product,
        const V bn = s1 ? T::neg(b) : b;  // as the scalar path always has
        T::store(o + 2 * (rest_count + rb + lo), T::add(an, bn));
      }
    }
  }

  static double add_plus_cz(cplx* x, std::uint64_t old_dim,
                            std::uint64_t pmask, double s) {
    if (old_dim % 4 != 0)
      return scalar_kernels().add_plus_cz(x, old_dim, pmask, s);
    double* p = dp(x);
    const V sv = T::set1(s);
    const PairSigns signs(pmask);
    Acc acc;  // carried across both halves, ascending
    for (std::uint64_t i = 0; i < old_dim; i += kWc) {
      const V v = T::mul(T::load(p + 2 * i), sv);
      T::store(p + 2 * i, v);
      acc.add(v);
    }
    for (std::uint64_t i = 0; i < old_dim; i += kWc) {
      const V v = T::xor_signs(T::load(p + 2 * i), signs.at(i));
      T::store(p + 2 * (old_dim + i), v);
      acc.add(v);
    }
    return acc.combine();
  }

  static void sign_pass(cplx* x, std::uint64_t n, std::uint64_t eq_mask,
                        std::uint64_t par_mask, bool negate) {
    if (n % 4 != 0) {
      scalar_kernels().sign_pass(x, n, eq_mask, par_mask, negate);
      return;
    }
    double* p = dp(x);
    alignas(64) double mb[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t j = base + std::uint64_t(t);
        const bool eq = eq_mask != 0 && (j & eq_mask) == eq_mask;
        const bool flip = eq ^ (parity64(j & par_mask) != 0) ^ negate;
        const double w =
            std::bit_cast<double>(flip ? kSignBit : std::uint64_t{0});
        mb[2 * t] = mb[2 * t + 1] = w;
      }
      T::store(p + 2 * base,
               T::xor_signs(T::load(p + 2 * base), T::load(mb)));
    }
  }

  static void cz_masks_pass(cplx* x, std::uint64_t n,
                            const std::uint64_t* pair_masks, int count) {
    if (n % 4 != 0) {
      scalar_kernels().cz_masks_pass(x, n, pair_masks, count);
      return;
    }
    double* p = dp(x);
    alignas(64) double mb[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t i = base + std::uint64_t(t);
        int flips = 0;
        for (int m = 0; m < count; ++m)
          flips ^= static_cast<int>((i & pair_masks[m]) == pair_masks[m]);
        const double w =
            std::bit_cast<double>(flips ? kSignBit : std::uint64_t{0});
        mb[2 * t] = mb[2 * t + 1] = w;
      }
      T::store(p + 2 * base,
               T::xor_signs(T::load(p + 2 * base), T::load(mb)));
    }
  }

  static void pauli_swap_pass(cplx* x, std::uint64_t n, std::uint64_t xmask,
                              std::uint64_t zmask, std::uint64_t eq_mask,
                              bool negate) {
    // xmask touching the intra-chunk bits would pair lanes within one
    // register; scalar handles that shape.
    if (n % 4 != 0 || (xmask & (std::uint64_t(kWc) - 1)) != 0) {
      scalar_kernels().pauli_swap_pass(x, n, xmask, zmask, eq_mask, negate);
      return;
    }
    const int hb = 63 - std::countl_zero(xmask);
    double* p = dp(x);
    alignas(64) double mj[kW], mj2[kW];
    for (std::uint64_t base = 0; base < n; base += kWc) {
      if (get_bit(base, hb)) continue;  // pairs handled once (chunk-uniform)
      const std::uint64_t base2 = base ^ xmask;
      for (int t = 0; t < kWc; ++t) {
        const std::uint64_t j = base + std::uint64_t(t);
        const std::uint64_t j2 = base2 + std::uint64_t(t);
        const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
        const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
        const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
        const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
        mj[2 * t] = mj[2 * t + 1] =
            std::bit_cast<double>(flip_j ? kSignBit : std::uint64_t{0});
        mj2[2 * t] = mj2[2 * t + 1] =
            std::bit_cast<double>(flip_j2 ? kSignBit : std::uint64_t{0});
      }
      const V vj = T::load(p + 2 * base);
      const V vj2 = T::load(p + 2 * base2);
      T::store(p + 2 * base, T::xor_signs(vj2, T::load(mj)));
      T::store(p + 2 * base2, T::xor_signs(vj, T::load(mj2)));
    }
  }

  static void phase_pass(cplx* x, std::uint64_t n, int q, cplx e) {
    const std::uint64_t stride = std::uint64_t{1} << q;
    if (n % 4 != 0 || stride < std::uint64_t(kWc)) {
      scalar_kernels().phase_pass(x, n, q, e);
      return;
    }
    double* p = dp(x);
    // Always the full product: the scalar phase kernel uses cmul
    // unconditionally, and only the Generic form matches it bitwise
    // including zero signs.
    const V er = T::set1(e.real());
    const V ei = T::set1(e.imag());
    const std::uint64_t pairs = n / 2;
    for (std::uint64_t k = 0; k < pairs; k += kWc) {
      const std::uint64_t i1 = insert_zero_bit(k, q) | stride;
      const V u = T::load(p + 2 * i1);
      const V r = T::add(T::mul(u, er),
                         T::neg_even(T::mul(T::swap_pairs(u), ei)));
      T::store(p + 2 * i1, r);
    }
  }
};

template <class T>
const CollapseKernels* make_vec_table(SimdIsa isa) noexcept {
  using K = VecKernels<T>;
  static const CollapseKernels table = {
      isa,
      K::fold_norms,
      K::fold_norms_scaled,
      K::prep_total_fold,
      K::scale_fold,
      K::collapse_pairs,
      K::prep_collapse,
      K::teleport_collapse,
      K::add_plus_cz,
      K::sign_pass,
      K::cz_masks_pass,
      K::pauli_swap_pass,
      K::phase_pass,
  };
  return &table;
}

}  // namespace mbq::detail
