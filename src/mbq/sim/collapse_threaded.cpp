// Resolution of the kernel thread-count knob (MBQ_KERNEL_THREADS /
// SessionOptions::kernel_threads).  Purely a wall-clock knob: the
// chunked contract in collapse_threaded.h makes results bit-identical
// at every value.

#include "mbq/sim/collapse_threaded.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "mbq/common/error.h"

namespace mbq::thr {
namespace {

// 0 = unresolved; >= 1 = resolved count.
std::atomic<int> g_threads{0};

int resolve_from_env() {
  const char* env = std::getenv("MBQ_KERNEL_THREADS");
  if (env == nullptr || *env == '\0' || std::string(env) == "auto")
    return default_num_threads() > 0 ? default_num_threads() : 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || v < 1 || v > 4096)
    throw Error(std::string("MBQ_KERNEL_THREADS=") + env +
                " is not a recognized value (expected auto or a positive "
                "integer)");
  return static_cast<int>(v);
}

}  // namespace

int kernel_threads() {
  int v = g_threads.load(std::memory_order_acquire);
  if (v == 0) {
    v = resolve_from_env();
    g_threads.store(v, std::memory_order_release);
  }
  return v;
}

void set_kernel_threads(int n) noexcept {
  g_threads.store(n > 0 ? n : 0, std::memory_order_release);
}

}  // namespace mbq::thr
