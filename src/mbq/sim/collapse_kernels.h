#pragma once
// Runtime-dispatched SIMD kernels for the DynamicStatevector hot loops.
//
// Every amplitude sweep the simulator performs per shot — the
// measure-collapse projections, the fused prep+CZ(+teleport) gadgets,
// the Pauli/CZ sign and swap passes, and every norm fold — goes through
// the function-pointer table below.  The table is resolved ONCE per
// process (scalar / AVX2 / AVX-512 / NEON, see common/cpu.h and the
// MBQ_SIMD override) and the choice is invisible in the results:
//
//   THE BITWISE CONTRACT.  A norm fold over a stream of doubles
//   d[0], d[1], ... is defined as eight lane accumulators
//       A[j] = Σ d[m]·d[m]   over m ≡ j (mod 8), in ascending m,
//   combined as ((A0+A1) + (A2+A3)) + ((A4+A5) + (A6+A7)).
//   A complex amplitude contributes its re then im component as two
//   consecutive stream doubles.  Scalar keeps eight running doubles;
//   AVX-512 holds all eight lanes in one register, AVX2 in two, NEON in
//   four — every flavor performs the IDENTICAL additions in the
//   IDENTICAL order, so the result is bit-for-bit the same on every
//   ISA.  Elementwise work (complex products, sign flips, scaling) is
//   trivially exact; no kernel uses FMA (and the build sets
//   -ffp-contract=off so no compiler re-fuses one in).
//
// The fold-reuse machinery (DynamicStatevector::fold_) depends on this
// contract: a running fold maintained by one kernel must be bitwise
// equal to a fresh pass by another.  Dispatch therefore runs a
// self-check battery (verify_kernels) comparing every vector flavor
// against the scalar reference on deterministic data; a flavor that
// fails is rejected at dispatch time — auto mode falls back down the
// ladder, a forced MBQ_SIMD flavor throws.
//
// NOTE the canonical fold fixes the reduction ORDER once for all ISAs;
// it is intentionally not the old strictly-sequential accumulation, so
// the choice of ISA can never matter.  Heterogeneous fleets (an AVX-512
// host sharding to NEON workers) stay bit-identical for free.

#include <cstdint>
#include <vector>

#include "mbq/common/cpu.h"
#include "mbq/common/types.h"

namespace mbq {

// Measurement-effect coefficients are conjugated basis entries; for the
// pattern planes they are real (X, XY top row, YZ diagonal) or purely
// imaginary (YZ off-diagonal).  The reduced products below compute the
// same VALUES as the full complex multiply whose dropped factor is ±0 —
// only signs of zeros can differ, which no norm, Born probability or
// comparison observes — at a third of the arithmetic.
enum class EffKind : std::uint8_t { Real, Imag, Generic };

inline EffKind eff_kind(const cplx& e) noexcept {
  if (e.imag() == 0.0) return EffKind::Real;
  if (e.real() == 0.0) return EffKind::Imag;
  return EffKind::Generic;
}

/// The textbook complex product.  operator* on std::complex lowers to
/// the __muldc3 libcall, whose non-NaN fast path computes exactly this —
/// amplitudes and effects are finite and bounded, so inlining it is
/// bit-identical and drops a function call from the innermost loops.
/// (The vector kernels compute re as e.r·u.r + (−(e.i·u.i)), which IEEE
/// defines as exactly the subtraction here.)
inline cplx cmul(const cplx& e, const cplx& u) noexcept {
  return {e.real() * u.real() - e.imag() * u.imag(),
          e.real() * u.imag() + e.imag() * u.real()};
}

inline cplx eff_mul(EffKind k, const cplx& e, const cplx& u) noexcept {
  switch (k) {
    case EffKind::Real:
      return {e.real() * u.real(), e.real() * u.imag()};
    case EffKind::Imag:
      return {-(e.imag() * u.imag()), e.imag() * u.real()};
    default:
      return cmul(e, u);
  }
}

/// One ISA flavor of the hot-loop kernels.  All folds follow the
/// canonical 8-lane scheme above; all entries are safe for any n ≥ 1
/// (vector flavors delegate awkward shapes — tiny or non-multiple-of-
/// block sizes, strides below the vector width — to the scalar
/// reference, which is bit-identical by the contract).
struct CollapseKernels {
  SimdIsa isa;

  /// Canonical fold of Σ|x[i]|² over n amplitudes.
  double (*fold_norms)(const cplx* x, std::uint64_t n);

  /// Canonical fold of Σ|s·x[i]|² (the values are scaled first; the
  /// squares are of the scaled values, matching what a sequential prep
  /// would have stored).
  double (*fold_norms_scaled)(const cplx* x, std::uint64_t n, double s);

  /// The fused-prep Born denominator: the norm fold of the DOUBLED
  /// register [s·x | ±s·x], i.e. the scaled stream folded twice with
  /// ONE carried accumulator set (signs square away bitwise).
  double (*prep_total_fold)(const cplx* x, std::uint64_t n, double s);

  /// x[i] *= inv for all i, returning the canonical fold of the scaled
  /// values — the collapse-normalization pass shared by every measure.
  double (*scale_fold)(cplx* x, std::uint64_t n, double inv);

  /// measure_remove projection: for pair index k in [0, pairs),
  /// i0 = insert_zero_bit(k, q),
  ///   out[k] = eff_mul(e0, x[i0]) + eff_mul(e1, x[i0 | 1<<q]);
  /// returns the canonical fold over out (ascending k).
  double (*collapse_pairs)(const cplx* x, cplx* out, std::uint64_t pairs,
                           int q, cplx e0, cplx e1);

  /// Fused-gadget projection (prep_cz_measure): for i in [0, dim),
  ///   low = s·x[i];  up = parity(i & pmask) ? −low : low;
  ///   out[i] = eff_mul(e0, low) + eff_mul(e1, up);
  /// (sign applied BEFORE the effect product, as the sequential chain
  /// stores ±values then multiplies — keeps zero-signs identical too);
  /// returns the canonical fold over out.
  double (*prep_collapse)(const cplx* x, cplx* out, std::uint64_t dim,
                          std::uint64_t pmask, cplx e0, cplx e1, double s);

  /// Fused-teleport projection (prep_cz_teleport_measure), elementwise
  /// only — the caller folds `out` separately with fold_norms.  For
  /// each pair (i0, i0|1<<q) of the measured wire q:
  ///   a = eff_mul(e0, s·x[i0]);  b = eff_mul(e1, s·x[i0|1<<q]);
  ///   out[r]           = a + b                      (new wire bit = 0)
  ///   out[dim/2 + r]   = ±a ± b                     (new wire bit = 1)
  /// with r the pair's rank and the ± signs from parity(i & pmask)
  /// applied AFTER the products, exactly as the scalar code always has.
  void (*teleport_collapse)(const cplx* x, cplx* out, std::uint64_t dim,
                            int q, std::uint64_t pmask, cplx e0, cplx e1,
                            double s);

  /// add_wire_plus_cz in place: scale x[0..old_dim) by s, mirror into
  /// x[old_dim..2·old_dim) with sign (−1)^parity(i & pmask); returns
  /// the canonical fold over all 2·old_dim amplitudes (one carried
  /// accumulator set across both halves, ascending).
  double (*add_plus_cz)(cplx* x, std::uint64_t old_dim, std::uint64_t pmask,
                        double s);

  /// Generic sign pass: negate x[j] when
  ///   ((eq_mask != 0) && ((j & eq_mask) == eq_mask))
  ///     ^ parity(j & par_mask) ^ negate.
  /// Covers apply_z (eq = wire bit), apply_cz (eq = pair mask), the
  /// Pauli Z-only correction (par = zmask) and the fused depolarize
  /// sign branch (eq = cz pair, par = zmask).  Exact: fold unaffected.
  void (*sign_pass)(cplx* x, std::uint64_t n, std::uint64_t eq_mask,
                    std::uint64_t par_mask, bool negate);

  /// A run of CZs: negate x[i] when an odd number of pair_masks are
  /// fully set in i.  One pass instead of `count`.
  void (*cz_masks_pass)(cplx* x, std::uint64_t n,
                        const std::uint64_t* pair_masks, int count);

  /// Pauli swap pass (xmask != 0): for each index pair {j, j2 = j^xmask}
  /// (j with the top xmask bit clear),
  ///   x[j]  = flip_j  ? −x[j2] : x[j2],
  ///   x[j2] = flip_j2 ? −t     : t          (t = old x[j]), where
  ///   flip_j  = eq(j2) ^ parity(j  & zmask) ^ negate,
  ///   flip_j2 = eq(j)  ^ parity(j2 & zmask) ^ negate,
  ///   eq(i) = (eq_mask != 0) && ((i & eq_mask) == eq_mask).
  /// Covers apply_x, the X-bearing Pauli corrections, and the fused
  /// depolarize swap branch.
  void (*pauli_swap_pass)(cplx* x, std::uint64_t n, std::uint64_t xmask,
                          std::uint64_t zmask, std::uint64_t eq_mask,
                          bool negate);

  /// Diagonal phase on the bit-q=1 half: x[i1] = cmul(e, x[i1]) for
  /// every i1 with bit q set (n = full register size).  The dedicated
  /// apply_rz kernel — diagonal and norm-preserving, so the caller may
  /// keep its fold valid.
  void (*phase_pass)(cplx* x, std::uint64_t n, int q, cplx e);
};

/// The always-available scalar reference table (also the bit-exactness
/// oracle for verify_kernels).
const CollapseKernels& scalar_kernels() noexcept;

/// The table for one flavor, or nullptr when the flavor is not compiled
/// into this build or not executable on this host.  Scalar never null.
const CollapseKernels* kernels_for_isa(SimdIsa isa) noexcept;

/// Every flavor this build+host can actually run (always includes
/// Scalar).  The differential tests sweep this list.
std::vector<SimdIsa> supported_simd_isas();

/// Bit-identity self-check battery: runs every kernel entry of `k`
/// against the scalar reference on deterministic pseudo-random data
/// across a spread of sizes, strides, masks and effect kinds, comparing
/// results bit-for-bit.  True iff all match.
bool verify_kernels(const CollapseKernels& k);

/// The active table.  First call resolves it: MBQ_SIMD override (forced
/// flavor must exist AND pass verify_kernels, else throws — "rejected at
/// dispatch time"), otherwise best-first auto with fallback past any
/// flavor that fails its self-check.  Cheap afterwards (one atomic
/// acquire load) — call sites fetch it per operation.
const CollapseKernels& kernels();

/// The flavor kernels() currently resolves to.
SimdIsa active_simd_isa();

/// Re-dispatch to a specific flavor (testing/bench hook; same
/// validation as a forced MBQ_SIMD).  Affects the whole process.
void force_simd_isa(SimdIsa isa);

namespace detail {
// Per-TU factories: each collapse_kernels_<isa>.cpp returns its table
// when compiled with the matching ISA flag, nullptr otherwise (the TUs
// are always in the build; their content is preprocessor-gated so a
// build without, say, -mavx512f still links).
const CollapseKernels* avx2_kernels_impl() noexcept;
const CollapseKernels* avx512_kernels_impl() noexcept;
const CollapseKernels* neon_kernels_impl() noexcept;
}  // namespace detail

}  // namespace mbq
