#pragma once
// Runtime-dispatched SIMD kernels for the DynamicStatevector hot loops.
//
// Every amplitude sweep the simulator performs per shot — the
// measure-collapse projections, the fused prep+CZ(+teleport) gadgets,
// the Pauli/CZ sign and swap passes, and every norm fold — goes through
// the function-pointer table below.  The table is resolved ONCE per
// process and per element type (scalar / AVX2 / AVX-512 / NEON, see
// common/cpu.h and the MBQ_SIMD override) and the choice is invisible
// in the results:
//
//   THE BITWISE CONTRACT.  A norm fold over a stream of reals
//   d[0], d[1], ... is defined as kFoldLanes<R> lane accumulators
//       A[j] = Σ d[m]·d[m]   over m ≡ j (mod L), in ascending m,
//   combined by the fixed binary tree in fold_combine below.  A complex
//   amplitude contributes its re then im component as two consecutive
//   stream elements.  For f64, L = 8: scalar keeps eight running
//   doubles; AVX-512 holds all eight lanes in one register, AVX2 in
//   two, NEON in four.  For f32, L = 16 (AVX-512 holds sixteen floats
//   per register; AVX2 two registers, NEON four).  Every flavor
//   performs the IDENTICAL additions in the IDENTICAL order, so the
//   result is bit-for-bit the same on every ISA — within one element
//   type.  f32 results are NOT comparable bitwise to f64 results.
//   Elementwise work (complex products, sign flips, scaling) is
//   trivially exact; no kernel uses FMA (and the build sets
//   -ffp-contract=off so no compiler re-fuses one in).
//
// The fold-reuse machinery (DynamicStatevector::fold_) depends on this
// contract: a running fold maintained by one kernel must be bitwise
// equal to a fresh pass by another.  Dispatch therefore runs a
// self-check battery (verify_kernels) comparing every vector flavor
// against the scalar reference on deterministic data; a flavor that
// fails is rejected at dispatch time — auto mode falls back down the
// ladder, a forced MBQ_SIMD flavor throws.
//
// NOTE the canonical fold fixes the reduction ORDER once for all ISAs;
// it is intentionally not the old strictly-sequential accumulation, so
// the choice of ISA can never matter.  Heterogeneous fleets (an AVX-512
// host sharding to NEON workers) stay bit-identical for free.
//
// THREADING (see collapse_threaded.h) layers on top without touching
// this contract: above a size cutoff a sweep is DEFINED as fixed-size
// chunks, each folded with its own canonical accumulator set, combined
// by left-to-right addition in ascending chunk order.  The three
// *_range entries below exist so the chunk drivers can run any kernel
// on an arbitrary slice of its index space.

#include <cstdint>
#include <vector>

#include "mbq/common/cpu.h"
#include "mbq/common/types.h"

namespace mbq {

/// Lane count of the canonical fold for element type R (8 for double,
/// 16 for float — one AVX-512 register either way).
template <class R>
inline constexpr int kFoldLanes = sizeof(R) == 8 ? 8 : 16;

/// The fixed lane-combination tree of the canonical fold.  Every flavor
/// and every chunk driver reduces its lane accumulators through exactly
/// this expression.
template <class R>
inline R fold_combine(const R* a) noexcept {
  const R g0 = ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
  if constexpr (kFoldLanes<R> == 8) {
    return g0;
  } else {
    const R g1 =
        ((a[8] + a[9]) + (a[10] + a[11])) + ((a[12] + a[13]) + (a[14] + a[15]));
    return g0 + g1;
  }
}

// Measurement-effect coefficients are conjugated basis entries; for the
// pattern planes they are real (X, XY top row, YZ diagonal) or purely
// imaginary (YZ off-diagonal).  The reduced products below compute the
// same VALUES as the full complex multiply whose dropped factor is ±0 —
// only signs of zeros can differ, which no norm, Born probability or
// comparison observes — at a third of the arithmetic.
enum class EffKind : std::uint8_t { Real, Imag, Generic };

template <class R>
inline EffKind eff_kind(const std::complex<R>& e) noexcept {
  if (e.imag() == R{0}) return EffKind::Real;
  if (e.real() == R{0}) return EffKind::Imag;
  return EffKind::Generic;
}

/// The textbook complex product.  operator* on std::complex lowers to
/// the __muldc3 libcall, whose non-NaN fast path computes exactly this —
/// amplitudes and effects are finite and bounded, so inlining it is
/// bit-identical and drops a function call from the innermost loops.
/// (The vector kernels compute re as e.r·u.r + (−(e.i·u.i)), which IEEE
/// defines as exactly the subtraction here.)
template <class R>
inline std::complex<R> cmul(const std::complex<R>& e,
                            const std::complex<R>& u) noexcept {
  return {e.real() * u.real() - e.imag() * u.imag(),
          e.real() * u.imag() + e.imag() * u.real()};
}

template <class R>
inline std::complex<R> eff_mul(EffKind k, const std::complex<R>& e,
                               const std::complex<R>& u) noexcept {
  switch (k) {
    case EffKind::Real:
      return {e.real() * u.real(), e.real() * u.imag()};
    case EffKind::Imag:
      return {-(e.imag() * u.imag()), e.imag() * u.real()};
    default:
      return cmul(e, u);
  }
}

/// One ISA flavor of the hot-loop kernels for element type R.  All
/// folds follow the canonical kFoldLanes<R>-lane scheme above; all
/// entries are safe for any n ≥ 1 (vector flavors delegate awkward
/// shapes — tiny or non-multiple-of-block sizes, strides below the
/// vector width — to the scalar reference, which is bit-identical by
/// the contract).
template <class R>
struct CollapseKernelsT {
  using C = std::complex<R>;

  SimdIsa isa;

  /// Canonical fold of Σ|x[i]|² over n amplitudes.
  R (*fold_norms)(const C* x, std::uint64_t n);

  /// Canonical fold of Σ|s·x[i]|² (the values are scaled first; the
  /// squares are of the scaled values, matching what a sequential prep
  /// would have stored).
  R (*fold_norms_scaled)(const C* x, std::uint64_t n, R s);

  /// The fused-prep Born denominator: the norm fold of the DOUBLED
  /// register [s·x | ±s·x], i.e. the scaled stream folded twice with
  /// ONE carried accumulator set (signs square away bitwise).
  R (*prep_total_fold)(const C* x, std::uint64_t n, R s);

  /// x[i] *= inv for all i, returning the canonical fold of the scaled
  /// values — the collapse-normalization pass shared by every measure.
  R (*scale_fold)(C* x, std::uint64_t n, R inv);

  /// measure_remove projection: for pair index k in [0, pairs),
  /// i0 = insert_zero_bit(k, q),
  ///   out[k] = eff_mul(e0, x[i0]) + eff_mul(e1, x[i0 | 1<<q]);
  /// returns the canonical fold over out (ascending k).
  R (*collapse_pairs)(const C* x, C* out, std::uint64_t pairs, int q, C e0,
                      C e1);

  /// Fused-gadget projection (prep_cz_measure): for i in [0, dim),
  ///   low = s·x[i];  up = parity(i & pmask) ? −low : low;
  ///   out[i] = eff_mul(e0, low) + eff_mul(e1, up);
  /// (sign applied BEFORE the effect product, as the sequential chain
  /// stores ±values then multiplies — keeps zero-signs identical too);
  /// returns the canonical fold over out.
  R (*prep_collapse)(const C* x, C* out, std::uint64_t dim,
                     std::uint64_t pmask, C e0, C e1, R s);

  /// Fused-teleport projection (prep_cz_teleport_measure), elementwise
  /// only — the caller folds `out` separately with fold_norms.  For
  /// each pair (i0, i0|1<<q) of the measured wire q:
  ///   a = eff_mul(e0, s·x[i0]);  b = eff_mul(e1, s·x[i0|1<<q]);
  ///   out[r]           = a + b                      (new wire bit = 0)
  ///   out[dim/2 + r]   = ±a ± b                     (new wire bit = 1)
  /// with r the pair's rank and the ± signs from parity(i & pmask)
  /// applied AFTER the products, exactly as the scalar code always has.
  void (*teleport_collapse)(const C* x, C* out, std::uint64_t dim, int q,
                            std::uint64_t pmask, C e0, C e1, R s);

  /// add_wire_plus_cz in place: scale x[0..old_dim) by s, mirror into
  /// x[old_dim..2·old_dim) with sign (−1)^parity(i & pmask); returns
  /// the canonical fold over all 2·old_dim amplitudes (one carried
  /// accumulator set across both halves, ascending).
  R (*add_plus_cz)(C* x, std::uint64_t old_dim, std::uint64_t pmask, R s);

  /// Generic sign pass: negate x[j] when
  ///   ((eq_mask != 0) && ((j & eq_mask) == eq_mask))
  ///     ^ parity(j & par_mask) ^ negate.
  /// Covers apply_z (eq = wire bit), apply_cz (eq = pair mask), the
  /// Pauli Z-only correction (par = zmask) and the fused depolarize
  /// sign branch (eq = cz pair, par = zmask).  Exact: fold unaffected.
  void (*sign_pass)(C* x, std::uint64_t n, std::uint64_t eq_mask,
                    std::uint64_t par_mask, bool negate);

  /// A run of CZs: negate x[i] when an odd number of pair_masks are
  /// fully set in i.  One pass instead of `count`.
  void (*cz_masks_pass)(C* x, std::uint64_t n, const std::uint64_t* pair_masks,
                        int count);

  /// Pauli swap pass (xmask != 0): for each index pair {j, j2 = j^xmask}
  /// (j with the top xmask bit clear),
  ///   x[j]  = flip_j  ? −x[j2] : x[j2],
  ///   x[j2] = flip_j2 ? −t     : t          (t = old x[j]), where
  ///   flip_j  = eq(j2) ^ parity(j  & zmask) ^ negate,
  ///   flip_j2 = eq(j)  ^ parity(j2 & zmask) ^ negate,
  ///   eq(i) = (eq_mask != 0) && ((i & eq_mask) == eq_mask).
  /// Covers apply_x, the X-bearing Pauli corrections, and the fused
  /// depolarize swap branch.
  void (*pauli_swap_pass)(C* x, std::uint64_t n, std::uint64_t xmask,
                          std::uint64_t zmask, std::uint64_t eq_mask,
                          bool negate);

  /// Diagonal phase on the bit-q=1 half: x[i1] = cmul(e, x[i1]) for
  /// every i1 with bit q set (n = full register size).  The dedicated
  /// apply_rz kernel — diagonal and norm-preserving, so the caller may
  /// keep its fold valid.
  void (*phase_pass)(C* x, std::uint64_t n, int q, C e);

  /// Ranged teleport projection for the chunk drivers: pair ranks
  /// r ∈ [r_begin, r_end) of the teleport_collapse definition above,
  /// writing out[r] and out[dim/2 + r] and folding each half of the
  /// slice with its OWN fresh canonical accumulator set (lanes restart
  /// at the slice start), stored to *fold_lo / *fold_hi.  Equal to the
  /// full pass restricted to the slice, with folds equal to chunked
  /// fold_norms over out.
  void (*teleport_collapse_range)(const C* x, C* out, std::uint64_t dim,
                                  int q, std::uint64_t pmask, C e0, C e1, R s,
                                  std::uint64_t r_begin, std::uint64_t r_end,
                                  R* fold_lo, R* fold_hi);

  /// Ranged mirror half of add_plus_cz: for i ∈ [i_begin, i_end) with
  /// the LOWER half already scaled, x[old_dim + i] =
  /// parity(i & pmask) ? −x[i] : x[i]; returns the canonical fold of
  /// the written slice (fresh accumulator set, lanes restart at
  /// i_begin).
  R (*mirror_cz_range)(C* x, std::uint64_t old_dim, std::uint64_t i_begin,
                       std::uint64_t i_end, std::uint64_t pmask);

  /// Ranged pauli_swap_pass over pair ranks p ∈ [p_begin, p_end):
  /// j = insert_zero_bit(p, hb) with hb the top set bit of xmask —
  /// exactly the pairs the full pass visits, in the same order.
  void (*pauli_swap_range)(C* x, std::uint64_t xmask, std::uint64_t zmask,
                           std::uint64_t eq_mask, bool negate,
                           std::uint64_t p_begin, std::uint64_t p_end);
};

/// The default-precision table (the original f64 contract).
using CollapseKernels = CollapseKernelsT<double>;
using CollapseKernelsF32 = CollapseKernelsT<float>;

/// The always-available scalar reference table (also the bit-exactness
/// oracle for verify_kernels).
const CollapseKernels& scalar_kernels() noexcept;
const CollapseKernelsF32& scalar_kernels_f32() noexcept;

template <class R>
const CollapseKernelsT<R>& scalar_kernels_t() noexcept;
template <>
const CollapseKernelsT<double>& scalar_kernels_t<double>() noexcept;
template <>
const CollapseKernelsT<float>& scalar_kernels_t<float>() noexcept;

/// The table for one flavor, or nullptr when the flavor is not compiled
/// into this build or not executable on this host.  Scalar never null.
const CollapseKernels* kernels_for_isa(SimdIsa isa) noexcept;
const CollapseKernelsF32* kernels_for_isa_f32(SimdIsa isa) noexcept;

/// Every flavor this build+host can actually run (always includes
/// Scalar).  The differential tests sweep this list.  The set is the
/// same for both element types — every vector TU provides both tables.
std::vector<SimdIsa> supported_simd_isas();

/// Bit-identity self-check battery: runs every kernel entry of `k`
/// against the scalar reference on deterministic pseudo-random data
/// across a spread of sizes, strides, masks and effect kinds, comparing
/// results bit-for-bit — including the ranged entries and the chunked
/// thread drivers at thread counts {1, 2, 8} (a flavor×thread
/// combination that diverges is rejected here).  True iff all match.
bool verify_kernels(const CollapseKernels& k);
bool verify_kernels_f32(const CollapseKernelsF32& k);

/// The active table.  First call resolves it: MBQ_SIMD override (forced
/// flavor must exist AND pass verify_kernels, else throws — "rejected at
/// dispatch time"), otherwise best-first auto with fallback past any
/// flavor that fails its self-check.  Cheap afterwards (one atomic
/// acquire load) — call sites fetch it per operation.
const CollapseKernels& kernels();
const CollapseKernelsF32& kernels_f32();

template <class R>
const CollapseKernelsT<R>& kernels_t();
template <>
const CollapseKernelsT<double>& kernels_t<double>();
template <>
const CollapseKernelsT<float>& kernels_t<float>();

/// The flavor kernels() / kernels_f32() currently resolves to (the two
/// element types dispatch independently; under auto they land on the
/// same flavor unless one table fails its battery).
SimdIsa active_simd_isa();
SimdIsa active_simd_isa_f32();

/// Re-dispatch BOTH element types to a specific flavor (testing/bench
/// hook; same validation as a forced MBQ_SIMD).  Affects the whole
/// process.
void force_simd_isa(SimdIsa isa);

namespace detail {
// Per-TU factories: each collapse_kernels_<isa>.cpp returns its tables
// when compiled with the matching ISA flag, nullptr otherwise (the TUs
// are always in the build; their content is preprocessor-gated so a
// build without, say, -mavx512f still links).
const CollapseKernels* avx2_kernels_impl() noexcept;
const CollapseKernels* avx512_kernels_impl() noexcept;
const CollapseKernels* neon_kernels_impl() noexcept;
const CollapseKernelsF32* avx2_kernels_f32_impl() noexcept;
const CollapseKernelsF32* avx512_kernels_f32_impl() noexcept;
const CollapseKernelsF32* neon_kernels_f32_impl() noexcept;
}  // namespace detail

}  // namespace mbq
