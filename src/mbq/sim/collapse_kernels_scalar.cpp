// Scalar reference flavor of the collapse kernels.
//
// This TU defines the CANONICAL results: every vector flavor must
// reproduce these bit-for-bit (verify_kernels enforces it at dispatch).
// The folds keep eight running lane accumulators indexed by the global
// double-stream position mod 8 and combine them in the fixed tree
// documented in collapse_kernels.h — which is exactly what one vector
// register (or two, or four) of lane partials computes, so the scalar
// path is slower but never different.

#include <cstdint>

#include "mbq/common/bits.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq {
namespace {

/// The canonical 8-lane fold accumulator (see collapse_kernels.h).
struct FoldAcc8 {
  double a[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::uint64_t m = 0;  // global double-stream position

  void add(double d) noexcept {
    a[m & 7] += d * d;
    ++m;
  }
  void add(const cplx& v) noexcept {
    add(v.real());
    add(v.imag());
  }
  double combine() const noexcept {
    return ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
  }
};

double s_fold_norms(const cplx* x, std::uint64_t n) {
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i]);
  return acc.combine();
}

double s_fold_norms_scaled(const cplx* x, std::uint64_t n, double s) {
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  return acc.combine();
}

double s_prep_total_fold(const cplx* x, std::uint64_t n, double s) {
  // Two sweeps, ONE carried accumulator set: the doubled register's
  // upper half differs only in signs, which square away bitwise.
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  return acc.combine();
}

double s_scale_fold(cplx* x, std::uint64_t n, double inv) {
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < n; ++i) {
    x[i] *= inv;
    acc.add(x[i]);
  }
  return acc.combine();
}

double s_collapse_pairs(const cplx* x, cplx* out, std::uint64_t pairs, int q,
                        cplx e0, cplx e1) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  FoldAcc8 acc;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    out[k] = eff_mul(k0, e0, x[i0]) + eff_mul(k1, e1, x[i0 | stride]);
    acc.add(out[k]);
  }
  return acc.combine();
}

double s_prep_collapse(const cplx* x, cplx* out, std::uint64_t dim,
                       std::uint64_t pmask, cplx e0, cplx e1, double s) {
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const cplx low = x[i] * s;
    const cplx up = parity64(i & pmask) ? -low : low;
    out[i] = eff_mul(k0, e0, low) + eff_mul(k1, e1, up);
    acc.add(out[i]);
  }
  return acc.combine();
}

void s_teleport_collapse(const cplx* x, cplx* out, std::uint64_t dim, int q,
                         std::uint64_t pmask, cplx e0, cplx e1, double s) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t rest_count = dim / 2;
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  const std::uint64_t pm_low = pmask & (stride - 1);
  const int pm_q = static_cast<int>((pmask >> q) & 1);
  // Blocked on the measured position so all four streams (two reads,
  // two writes) advance sequentially; CZ-partner signs are constant per
  // block whenever no partner sits below the measured wire.
  for (std::uint64_t hp = 0; hp < rest_count >> q; ++hp) {
    const std::uint64_t i0b = hp << (q + 1);
    const std::uint64_t rb = hp << q;
    const int ph = parity64(i0b & pmask);
    if (pm_low == 0) {
      const bool s0 = ph != 0;
      const bool s1 = (ph ^ pm_q) != 0;
      for (std::uint64_t lo = 0; lo < stride; ++lo) {
        const cplx a = eff_mul(k0, e0, x[i0b + lo] * s);
        const cplx b = eff_mul(k1, e1, x[i0b + stride + lo] * s);
        out[rb + lo] = a + b;
        out[rest_count + rb + lo] = (s0 ? -a : a) + (s1 ? -b : b);
      }
    } else {
      for (std::uint64_t lo = 0; lo < stride; ++lo) {
        const cplx a = eff_mul(k0, e0, x[i0b + lo] * s);
        const cplx b = eff_mul(k1, e1, x[i0b + stride + lo] * s);
        out[rb + lo] = a + b;
        const int s0 = ph ^ parity64(lo & pm_low);
        out[rest_count + rb + lo] = (s0 ? -a : a) + ((s0 ^ pm_q) ? -b : b);
      }
    }
  }
}

double s_add_plus_cz(cplx* x, std::uint64_t old_dim, std::uint64_t pmask,
                     double s) {
  FoldAcc8 acc;
  for (std::uint64_t i = 0; i < old_dim; ++i) {
    x[i] *= s;
    acc.add(x[i]);
  }
  for (std::uint64_t i = 0; i < old_dim; ++i) {
    cplx v = x[i];
    if (parity64(i & pmask)) v = -v;
    x[old_dim + i] = v;
    acc.add(v);
  }
  return acc.combine();
}

void s_sign_pass(cplx* x, std::uint64_t n, std::uint64_t eq_mask,
                 std::uint64_t par_mask, bool negate) {
  for (std::uint64_t j = 0; j < n; ++j) {
    const bool eq = eq_mask != 0 && (j & eq_mask) == eq_mask;
    if (eq ^ (parity64(j & par_mask) != 0) ^ negate) x[j] = -x[j];
  }
}

void s_cz_masks_pass(cplx* x, std::uint64_t n, const std::uint64_t* pair_masks,
                     int count) {
  for (std::uint64_t i = 0; i < n; ++i) {
    int flips = 0;
    for (int m = 0; m < count; ++m)
      flips ^= static_cast<int>((i & pair_masks[m]) == pair_masks[m]);
    if (flips) x[i] = -x[i];
  }
}

void s_pauli_swap_pass(cplx* x, std::uint64_t n, std::uint64_t xmask,
                       std::uint64_t zmask, std::uint64_t eq_mask,
                       bool negate) {
  const int hb = 63 - std::countl_zero(xmask);
  for (std::uint64_t j = 0; j < n; ++j) {
    if (get_bit(j, hb)) continue;  // each {j, j^xmask} pair handled once
    const std::uint64_t j2 = j ^ xmask;
    const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
    const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
    const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
    const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
    const cplx t = x[j];
    x[j] = flip_j ? -x[j2] : x[j2];
    x[j2] = flip_j2 ? -t : t;
  }
}

void s_phase_pass(cplx* x, std::uint64_t n, int q, cplx e) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = n / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i1 = insert_zero_bit(k, q) | stride;
    x[i1] = cmul(e, x[i1]);
  }
}

constexpr CollapseKernels kScalarTable = {
    SimdIsa::Scalar,    s_fold_norms,     s_fold_norms_scaled,
    s_prep_total_fold,  s_scale_fold,     s_collapse_pairs,
    s_prep_collapse,    s_teleport_collapse, s_add_plus_cz,
    s_sign_pass,        s_cz_masks_pass,  s_pauli_swap_pass,
    s_phase_pass,
};

}  // namespace

const CollapseKernels& scalar_kernels() noexcept { return kScalarTable; }

}  // namespace mbq
