// Scalar reference flavor of the collapse kernels.
//
// This TU defines the CANONICAL results: every vector flavor must
// reproduce these bit-for-bit (verify_kernels enforces it at dispatch).
// The folds keep kFoldLanes<R> running lane accumulators indexed by the
// global element-stream position mod L and combine them in the fixed
// tree documented in collapse_kernels.h — which is exactly what one
// vector register (or two, or four) of lane partials computes, so the
// scalar path is slower but never different.  The whole TU is templated
// over the element type R (double and float instantiations).

#include <cstdint>

#include "mbq/common/bits.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq {
namespace {

/// The canonical fold accumulator (see collapse_kernels.h): 8 lanes for
/// double, 16 for float.
template <class R>
struct FoldAcc {
  static constexpr int kL = kFoldLanes<R>;
  R a[kL] = {};
  std::uint64_t m = 0;  // global element-stream position

  void add(R d) noexcept {
    a[m & (kL - 1)] += d * d;
    ++m;
  }
  void add(const std::complex<R>& v) noexcept {
    add(v.real());
    add(v.imag());
  }
  R combine() const noexcept { return fold_combine<R>(a); }
};

template <class R>
R s_fold_norms(const std::complex<R>* x, std::uint64_t n) {
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i]);
  return acc.combine();
}

template <class R>
R s_fold_norms_scaled(const std::complex<R>* x, std::uint64_t n, R s) {
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  return acc.combine();
}

template <class R>
R s_prep_total_fold(const std::complex<R>* x, std::uint64_t n, R s) {
  // Two sweeps, ONE carried accumulator set: the doubled register's
  // upper half differs only in signs, which square away bitwise.
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  for (std::uint64_t i = 0; i < n; ++i) acc.add(x[i] * s);
  return acc.combine();
}

template <class R>
R s_scale_fold(std::complex<R>* x, std::uint64_t n, R inv) {
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < n; ++i) {
    x[i] *= inv;
    acc.add(x[i]);
  }
  return acc.combine();
}

template <class R>
R s_collapse_pairs(const std::complex<R>* x, std::complex<R>* out,
                   std::uint64_t pairs, int q, std::complex<R> e0,
                   std::complex<R> e1) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  FoldAcc<R> acc;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    out[k] = eff_mul(k0, e0, x[i0]) + eff_mul(k1, e1, x[i0 | stride]);
    acc.add(out[k]);
  }
  return acc.combine();
}

template <class R>
R s_prep_collapse(const std::complex<R>* x, std::complex<R>* out,
                  std::uint64_t dim, std::uint64_t pmask, std::complex<R> e0,
                  std::complex<R> e1, R s) {
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const std::complex<R> low = x[i] * s;
    const std::complex<R> up = parity64(i & pmask) ? -low : low;
    out[i] = eff_mul(k0, e0, low) + eff_mul(k1, e1, up);
    acc.add(out[i]);
  }
  return acc.combine();
}

template <class R>
void s_teleport_collapse(const std::complex<R>* x, std::complex<R>* out,
                         std::uint64_t dim, int q, std::uint64_t pmask,
                         std::complex<R> e0, std::complex<R> e1, R s) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t rest_count = dim / 2;
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  const std::uint64_t pm_low = pmask & (stride - 1);
  const int pm_q = static_cast<int>((pmask >> q) & 1);
  // Blocked on the measured position so all four streams (two reads,
  // two writes) advance sequentially; CZ-partner signs are constant per
  // block whenever no partner sits below the measured wire.
  for (std::uint64_t hp = 0; hp < rest_count >> q; ++hp) {
    const std::uint64_t i0b = hp << (q + 1);
    const std::uint64_t rb = hp << q;
    const int ph = parity64(i0b & pmask);
    if (pm_low == 0) {
      const bool s0 = ph != 0;
      const bool s1 = (ph ^ pm_q) != 0;
      for (std::uint64_t lo = 0; lo < stride; ++lo) {
        const std::complex<R> a = eff_mul(k0, e0, x[i0b + lo] * s);
        const std::complex<R> b = eff_mul(k1, e1, x[i0b + stride + lo] * s);
        out[rb + lo] = a + b;
        out[rest_count + rb + lo] = (s0 ? -a : a) + (s1 ? -b : b);
      }
    } else {
      for (std::uint64_t lo = 0; lo < stride; ++lo) {
        const std::complex<R> a = eff_mul(k0, e0, x[i0b + lo] * s);
        const std::complex<R> b = eff_mul(k1, e1, x[i0b + stride + lo] * s);
        out[rb + lo] = a + b;
        const int s0 = ph ^ parity64(lo & pm_low);
        out[rest_count + rb + lo] = (s0 ? -a : a) + ((s0 ^ pm_q) ? -b : b);
      }
    }
  }
}

template <class R>
void s_teleport_collapse_range(const std::complex<R>* x, std::complex<R>* out,
                               std::uint64_t dim, int q, std::uint64_t pmask,
                               std::complex<R> e0, std::complex<R> e1, R s,
                               std::uint64_t r_begin, std::uint64_t r_end,
                               R* fold_lo, R* fold_hi) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t rest_count = dim / 2;
  const EffKind k0 = eff_kind(e0);
  const EffKind k1 = eff_kind(e1);
  FoldAcc<R> acc_lo;
  FoldAcc<R> acc_hi;
  // Per-rank form of the blocked loop above: i0 = insert_zero_bit(r, q),
  // sign = parity(i0 & pmask) since bit q of i0 is clear.  Bit-identical
  // to the full pass restricted to [r_begin, r_end); the two slice folds
  // restart their lanes at the slice start (the chunk-driver contract).
  for (std::uint64_t r = r_begin; r < r_end; ++r) {
    const std::uint64_t i0 = insert_zero_bit(r, q);
    const std::complex<R> a = eff_mul(k0, e0, x[i0] * s);
    const std::complex<R> b = eff_mul(k1, e1, x[i0 | stride] * s);
    out[r] = a + b;
    acc_lo.add(out[r]);
    const int s0 = parity64(i0 & pmask);
    const int s1 = s0 ^ static_cast<int>((pmask >> q) & 1);
    out[rest_count + r] = (s0 ? -a : a) + (s1 ? -b : b);
    acc_hi.add(out[rest_count + r]);
  }
  *fold_lo = acc_lo.combine();
  *fold_hi = acc_hi.combine();
}

template <class R>
R s_add_plus_cz(std::complex<R>* x, std::uint64_t old_dim, std::uint64_t pmask,
                R s) {
  FoldAcc<R> acc;
  for (std::uint64_t i = 0; i < old_dim; ++i) {
    x[i] *= s;
    acc.add(x[i]);
  }
  for (std::uint64_t i = 0; i < old_dim; ++i) {
    std::complex<R> v = x[i];
    if (parity64(i & pmask)) v = -v;
    x[old_dim + i] = v;
    acc.add(v);
  }
  return acc.combine();
}

template <class R>
R s_mirror_cz_range(std::complex<R>* x, std::uint64_t old_dim,
                    std::uint64_t i_begin, std::uint64_t i_end,
                    std::uint64_t pmask) {
  FoldAcc<R> acc;
  for (std::uint64_t i = i_begin; i < i_end; ++i) {
    std::complex<R> v = x[i];
    if (parity64(i & pmask)) v = -v;
    x[old_dim + i] = v;
    acc.add(v);
  }
  return acc.combine();
}

template <class R>
void s_sign_pass(std::complex<R>* x, std::uint64_t n, std::uint64_t eq_mask,
                 std::uint64_t par_mask, bool negate) {
  for (std::uint64_t j = 0; j < n; ++j) {
    const bool eq = eq_mask != 0 && (j & eq_mask) == eq_mask;
    if (eq ^ (parity64(j & par_mask) != 0) ^ negate) x[j] = -x[j];
  }
}

template <class R>
void s_cz_masks_pass(std::complex<R>* x, std::uint64_t n,
                     const std::uint64_t* pair_masks, int count) {
  for (std::uint64_t i = 0; i < n; ++i) {
    int flips = 0;
    for (int m = 0; m < count; ++m)
      flips ^= static_cast<int>((i & pair_masks[m]) == pair_masks[m]);
    if (flips) x[i] = -x[i];
  }
}

template <class R>
void s_pauli_swap_pass(std::complex<R>* x, std::uint64_t n,
                       std::uint64_t xmask, std::uint64_t zmask,
                       std::uint64_t eq_mask, bool negate) {
  const int hb = 63 - std::countl_zero(xmask);
  for (std::uint64_t j = 0; j < n; ++j) {
    if (get_bit(j, hb)) continue;  // each {j, j^xmask} pair handled once
    const std::uint64_t j2 = j ^ xmask;
    const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
    const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
    const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
    const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
    const std::complex<R> t = x[j];
    x[j] = flip_j ? -x[j2] : x[j2];
    x[j2] = flip_j2 ? -t : t;
  }
}

template <class R>
void s_pauli_swap_range(std::complex<R>* x, std::uint64_t xmask,
                        std::uint64_t zmask, std::uint64_t eq_mask, bool negate,
                        std::uint64_t p_begin, std::uint64_t p_end) {
  // The full pass visits j ascending with bit hb clear — exactly
  // j = insert_zero_bit(p, hb) for pair rank p ascending.
  const int hb = 63 - std::countl_zero(xmask);
  for (std::uint64_t p = p_begin; p < p_end; ++p) {
    const std::uint64_t j = insert_zero_bit(p, hb);
    const std::uint64_t j2 = j ^ xmask;
    const bool eq_j2 = eq_mask != 0 && (j2 & eq_mask) == eq_mask;
    const bool eq_j = eq_mask != 0 && (j & eq_mask) == eq_mask;
    const bool flip_j = eq_j2 ^ (parity64(j & zmask) != 0) ^ negate;
    const bool flip_j2 = eq_j ^ (parity64(j2 & zmask) != 0) ^ negate;
    const std::complex<R> t = x[j];
    x[j] = flip_j ? -x[j2] : x[j2];
    x[j2] = flip_j2 ? -t : t;
  }
}

template <class R>
void s_phase_pass(std::complex<R>* x, std::uint64_t n, int q,
                  std::complex<R> e) {
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = n / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i1 = insert_zero_bit(k, q) | stride;
    x[i1] = cmul(e, x[i1]);
  }
}

template <class R>
constexpr CollapseKernelsT<R> kScalarTable = {
    SimdIsa::Scalar,
    s_fold_norms<R>,
    s_fold_norms_scaled<R>,
    s_prep_total_fold<R>,
    s_scale_fold<R>,
    s_collapse_pairs<R>,
    s_prep_collapse<R>,
    s_teleport_collapse<R>,
    s_add_plus_cz<R>,
    s_sign_pass<R>,
    s_cz_masks_pass<R>,
    s_pauli_swap_pass<R>,
    s_phase_pass<R>,
    s_teleport_collapse_range<R>,
    s_mirror_cz_range<R>,
    s_pauli_swap_range<R>,
};

}  // namespace

const CollapseKernels& scalar_kernels() noexcept {
  return kScalarTable<double>;
}

const CollapseKernelsF32& scalar_kernels_f32() noexcept {
  return kScalarTable<float>;
}

template <>
const CollapseKernelsT<double>& scalar_kernels_t<double>() noexcept {
  return kScalarTable<double>;
}

template <>
const CollapseKernelsT<float>& scalar_kernels_t<float>() noexcept {
  return kScalarTable<float>;
}

}  // namespace mbq
