#include "mbq/sim/statevector.h"

#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq {

Statevector::Statevector(int n) : n_(n) {
  MBQ_REQUIRE(n >= 0 && n <= 28, "qubit count out of range: " << n);
  amps_.assign(std::size_t{1} << n, cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

Statevector::Statevector(int n, std::vector<cplx> amps)
    : n_(n), amps_(std::move(amps)) {
  MBQ_REQUIRE(n >= 0 && n <= 28, "qubit count out of range: " << n);
  MBQ_REQUIRE(amps_.size() == (std::size_t{1} << n),
              "amplitude count " << amps_.size() << " != 2^" << n);
}

Statevector Statevector::all_plus(int n) {
  Statevector sv(n);
  const real a = std::pow(2.0, -0.5 * n);
  std::fill(sv.amps_.begin(), sv.amps_.end(), cplx{a, 0.0});
  return sv;
}

void Statevector::apply_1q(const Matrix& u, int q) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_1q needs a 2x2 matrix");
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit " << q << " out of range");
  const std::int64_t stride = std::int64_t{1} << q;
  const std::int64_t pairs = static_cast<std::int64_t>(dim()) / 2;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  auto* a = amps_.data();
  parallel_for(pairs, [=](std::int64_t k) {
    // Index of the k-th pair: insert a 0 at bit q.
    const std::int64_t i0 =
        static_cast<std::int64_t>(insert_zero_bit(static_cast<std::uint64_t>(k), q));
    const std::int64_t i1 = i0 | stride;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = u00 * a0 + u01 * a1;
    a[i1] = u10 * a0 + u11 * a1;
  });
}

void Statevector::apply_h(int q) {
  static const real s = 1.0 / std::sqrt(2.0);
  apply_1q(Matrix(2, 2, {s, s, s, -s}), q);
}

void Statevector::apply_x(int q) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit " << q << " out of range");
  const std::int64_t stride = std::int64_t{1} << q;
  const std::int64_t pairs = static_cast<std::int64_t>(dim()) / 2;
  auto* a = amps_.data();
  parallel_for(pairs, [=](std::int64_t k) {
    const std::int64_t i0 =
        static_cast<std::int64_t>(insert_zero_bit(static_cast<std::uint64_t>(k), q));
    std::swap(a[i0], a[i0 | stride]);
  });
}

void Statevector::apply_z(int q) { apply_rz(q, kPi); }

void Statevector::apply_rz(int q, real theta) {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit " << q << " out of range");
  const cplx phase = std::exp(kI * theta);
  const std::uint64_t mask = std::uint64_t{1} << q;
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    if (static_cast<std::uint64_t>(i) & mask) a[i] *= phase;
  });
}

void Statevector::apply_rx(int q, real theta) {
  const cplx e = std::exp(kI * theta);
  const cplx p = (1.0 + e) * 0.5;
  const cplx m = (1.0 - e) * 0.5;
  apply_1q(Matrix(2, 2, {p, m, m, p}), q);  // H rz(theta) H
}

void Statevector::apply_cz(int q0, int q1) {
  MBQ_REQUIRE(q0 != q1 && q0 >= 0 && q1 >= 0 && q0 < n_ && q1 < n_,
              "bad CZ qubits " << q0 << "," << q1);
  const std::uint64_t mask = (std::uint64_t{1} << q0) | (std::uint64_t{1} << q1);
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    if ((static_cast<std::uint64_t>(i) & mask) == mask) a[i] = -a[i];
  });
}

void Statevector::apply_cx(int control, int target) {
  MBQ_REQUIRE(control != target && control >= 0 && target >= 0 &&
                  control < n_ && target < n_,
              "bad CX qubits " << control << "," << target);
  const std::uint64_t cmask = std::uint64_t{1} << control;
  const std::uint64_t tmask = std::uint64_t{1} << target;
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    const auto u = static_cast<std::uint64_t>(i);
    if ((u & cmask) && !(u & tmask)) {
      std::swap(a[u], a[u | tmask]);
    }
  });
}

void Statevector::apply_exp_zs(real theta, const std::vector<int>& support) {
  std::uint64_t mask = 0;
  for (int q : support) {
    MBQ_REQUIRE(q >= 0 && q < n_, "support qubit out of range: " << q);
    mask |= std::uint64_t{1} << q;
  }
  const cplx even = std::exp(-kI * (theta / 2));
  const cplx odd = std::exp(kI * (theta / 2));
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    a[i] *= parity64(static_cast<std::uint64_t>(i) & mask) ? odd : even;
  });
}

void Statevector::apply_diagonal(const std::vector<cplx>& phases) {
  MBQ_REQUIRE(phases.size() == dim(), "diagonal size mismatch");
  auto* a = amps_.data();
  const cplx* d = phases.data();
  parallel_for(static_cast<std::int64_t>(dim()),
               [=](std::int64_t i) { a[i] *= d[i]; });
}

void Statevector::apply_phase_of_cost(real gamma,
                                      const std::vector<real>& cost) {
  MBQ_REQUIRE(cost.size() == dim(), "cost table size mismatch");
  auto* a = amps_.data();
  const real* c = cost.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    a[i] *= std::exp(cplx{0.0, -gamma * c[i]});
  });
}

void Statevector::apply_mixer_layer(real beta) {
  // e^{-i beta X} = exp_x(2 beta) in the physics convention; as a 2x2:
  const cplx c = std::cos(beta);
  const cplx is = -kI * std::sin(beta);
  const Matrix u(2, 2, {c, is, is, c});
  for (int q = 0; q < n_; ++q) apply_1q(u, q);
}

void Statevector::apply_controlled_exp_x(real beta, int target,
                                         const std::vector<int>& controls,
                                         int ctrl_value) {
  MBQ_REQUIRE(ctrl_value == 0 || ctrl_value == 1, "ctrl_value must be 0/1");
  MBQ_REQUIRE(target >= 0 && target < n_, "target out of range");
  std::uint64_t cmask = 0;
  for (int q : controls) {
    MBQ_REQUIRE(q >= 0 && q < n_ && q != target, "bad control qubit " << q);
    cmask |= std::uint64_t{1} << q;
  }
  const std::uint64_t want = ctrl_value ? cmask : 0;
  const std::uint64_t tmask = std::uint64_t{1} << target;
  const cplx c = std::cos(beta);
  const cplx is = kI * std::sin(beta);
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    const auto u = static_cast<std::uint64_t>(i);
    if ((u & cmask) != want) return;
    if (u & tmask) return;  // handle each pair once, from the 0 side
    const std::uint64_t f = u | tmask;
    // The pair partner has the same control bits, so it is also active.
    const cplx a0 = a[u];
    const cplx a1 = a[f];
    a[u] = c * a0 + is * a1;
    a[f] = is * a0 + c * a1;
  });
}

real Statevector::expectation_diagonal(const std::vector<real>& cost) const {
  MBQ_REQUIRE(cost.size() == dim(), "cost table size mismatch");
  const auto* a = amps_.data();
  const real* c = cost.data();
  return parallel_sum(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    return std::norm(a[i]) * c[i];
  });
}

real Statevector::prob_one(int q) const {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit " << q << " out of range");
  const std::uint64_t mask = std::uint64_t{1} << q;
  const auto* a = amps_.data();
  return parallel_sum(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    return (static_cast<std::uint64_t>(i) & mask) ? std::norm(a[i]) : 0.0;
  });
}

std::uint64_t Statevector::sample(Rng& rng) const {
  real r = rng.uniform();
  // One linear scan; amplitudes are normalized so the cumulative hits 1.
  for (std::uint64_t i = 0; i < dim(); ++i) {
    r -= std::norm(amps_[i]);
    if (r <= 0.0) return i;
  }
  return dim() - 1;
}

int Statevector::measure(int q, Rng& rng, int forced) {
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  const real p1 = prob_one(q);
  int outcome;
  if (forced == -1) {
    outcome = rng.bernoulli(p1) ? 1 : 0;
  } else {
    outcome = forced;
    const real p = outcome ? p1 : 1.0 - p1;
    MBQ_REQUIRE(p > 1e-12, "forced outcome " << outcome << " on qubit " << q
                                             << " has probability " << p);
  }
  const std::uint64_t mask = std::uint64_t{1} << q;
  const std::uint64_t want = outcome ? mask : 0;
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()), [=](std::int64_t i) {
    if ((static_cast<std::uint64_t>(i) & mask) != want) a[i] = cplx{0.0, 0.0};
  });
  normalize();
  return outcome;
}

real Statevector::norm() const {
  const auto* a = amps_.data();
  return std::sqrt(parallel_sum(static_cast<std::int64_t>(dim()),
                                [=](std::int64_t i) { return std::norm(a[i]); }));
}

void Statevector::normalize() {
  const real nrm = norm();
  MBQ_REQUIRE(nrm > 1e-14, "cannot normalize a zero state");
  const real inv = 1.0 / nrm;
  auto* a = amps_.data();
  parallel_for(static_cast<std::int64_t>(dim()),
               [=](std::int64_t i) { a[i] *= inv; });
}

real Statevector::fidelity_with(const Statevector& other) const {
  MBQ_REQUIRE(n_ == other.n_, "fidelity between different widths");
  return fidelity(amps_, other.amps_);
}

}  // namespace mbq
