#pragma once
// Fixed-width statevector simulator.
//
// This is the workhorse for gate-model QAOA and all unitary oracles.
// Kernels are cache-friendly stride loops parallelized with OpenMP above a
// grain threshold (see mbq/common/parallel.h).  Qubit order is little-
// endian: qubit q addresses bit q of the amplitude index.

#include <cstdint>
#include <functional>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"
#include "mbq/linalg/dense.h"

namespace mbq {

class Statevector {
 public:
  /// |0...0> on n qubits (n <= 28).
  explicit Statevector(int n);
  /// Take ownership of raw amplitudes (size must be a power of two).
  Statevector(int n, std::vector<cplx> amps);

  static Statevector all_plus(int n);

  int num_qubits() const noexcept { return n_; }
  std::uint64_t dim() const noexcept { return std::uint64_t{1} << n_; }
  const std::vector<cplx>& amplitudes() const noexcept { return amps_; }
  std::vector<cplx>& amplitudes() noexcept { return amps_; }

  /// Apply an arbitrary single-qubit gate.
  void apply_1q(const Matrix& u, int q);
  void apply_h(int q);
  void apply_x(int q);
  void apply_z(int q);
  /// diag(1, e^{i theta}) on qubit q.
  void apply_rz(int q, real theta);
  void apply_rx(int q, real theta);

  void apply_cz(int q0, int q1);
  void apply_cx(int control, int target);
  /// exp(-i (theta/2) Z_S): phase e^{∓i theta/2} by parity of S.
  void apply_exp_zs(real theta, const std::vector<int>& support);
  /// Multiply amplitude of basis state i by phases[i] (|phases| == dim).
  void apply_diagonal(const std::vector<cplx>& phases);
  /// Multiply amplitude i by exp(-i gamma * cost[i]) (QAOA phase layer).
  void apply_phase_of_cost(real gamma, const std::vector<real>& cost);
  /// e^{-i beta X} on every qubit (QAOA transverse-field mixer layer).
  void apply_mixer_layer(real beta);
  /// Multi-controlled e^{i beta X_target}, controls required in ctrl_value.
  void apply_controlled_exp_x(real beta, int target,
                              const std::vector<int>& controls,
                              int ctrl_value);

  /// <psi | diag(cost) | psi>.
  real expectation_diagonal(const std::vector<real>& cost) const;
  /// Probability of measuring qubit q as 1.
  real prob_one(int q) const;
  /// Sample a full computational-basis measurement (state unchanged).
  std::uint64_t sample(Rng& rng) const;
  /// Measure qubit q: collapses the state. forced in {-1 (sample),0,1}.
  int measure(int q, Rng& rng, int forced = -1);

  real norm() const;
  void normalize();

  /// Squared overlap with another state of the same width.
  real fidelity_with(const Statevector& other) const;

 private:
  int n_ = 0;
  std::vector<cplx> amps_;
};

}  // namespace mbq
