#include "mbq/sim/pauli.h"

#include "mbq/common/bits.h"
#include "mbq/common/error.h"

namespace mbq {

PauliString::PauliString(const std::string& ops)
    : n_(static_cast<int>(ops.size())) {
  MBQ_REQUIRE(ops.size() <= 64, "Pauli string too long: " << ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const char c = ops[i];
    const int q = static_cast<int>(i);
    switch (c) {
      case 'I':
        break;
      case 'X':
        x_ |= 1ULL << q;
        break;
      case 'Y':
        x_ |= 1ULL << q;
        z_ |= 1ULL << q;
        break;
      case 'Z':
        z_ |= 1ULL << q;
        break;
      default:
        MBQ_REQUIRE(false, "invalid Pauli character '" << c << "'");
    }
  }
}

PauliString::PauliString(std::uint64_t x_mask, std::uint64_t z_mask, int n)
    : x_(x_mask), z_(z_mask), n_(n) {
  MBQ_REQUIRE(n >= 0 && n <= 64, "bad qubit count " << n);
  const std::uint64_t lim = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  MBQ_REQUIRE((x_ | z_) == ((x_ | z_) & lim), "mask exceeds qubit count");
}

int PauliString::y_count() const noexcept { return std::popcount(x_ & z_); }

char PauliString::op_at(int q) const {
  MBQ_REQUIRE(q >= 0 && q < n_, "qubit out of range " << q);
  const bool xb = (x_ >> q) & 1;
  const bool zb = (z_ >> q) & 1;
  if (xb && zb) return 'Y';
  if (xb) return 'X';
  if (zb) return 'Z';
  return 'I';
}

std::string PauliString::str() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(n_));
  for (int q = 0; q < n_; ++q) s.push_back(op_at(q));
  return s;
}

bool PauliString::commutes_with(const PauliString& other) const {
  // Symplectic form: they anticommute iff <x,z'> + <x',z> is odd.
  const int sym =
      parity64(x_ & other.z_) ^ parity64(other.x_ & z_);
  return sym == 0;
}

cplx PauliString::expectation(const Statevector& psi) const {
  MBQ_REQUIRE(n_ == psi.num_qubits(),
              "Pauli width " << n_ << " != state width " << psi.num_qubits());
  // P|b> = i^{|Y|} (-1)^{popcount(b & z_)} |b ^ x_>   with the convention
  // Y|0>=i|1>, Y|1>=-i|0>  (factor i (-1)^b per Y; the (-1)^b is absorbed
  // in z_ because Y sets both masks).
  const int ny = y_count();
  cplx global{1.0, 0.0};
  switch (ny & 3) {
    case 0: global = {1.0, 0.0}; break;
    case 1: global = {0.0, 1.0}; break;
    case 2: global = {-1.0, 0.0}; break;
    case 3: global = {0.0, -1.0}; break;
  }
  const auto& a = psi.amplitudes();
  cplx acc{0.0, 0.0};
  for (std::uint64_t b = 0; b < a.size(); ++b) {
    const real sign = parity64(b & z_) ? -1.0 : 1.0;
    acc += std::conj(a[b ^ x_]) * (global * sign * a[b]);
  }
  return acc;
}

}  // namespace mbq
