#pragma once
// Deterministic chunked (and optionally threaded) drivers over the
// collapse-kernel tables, plus the cache-blocked fusions of the
// multi-pass sweeps.
//
// THE CHUNKED CONTRACT.  Above a size cutoff, every sweep is DEFINED as
// a sequence of fixed-size chunks of its index space:
//
//   * chunk size kChunkAmps = 2^13 amplitudes (128 KiB f64 / 64 KiB f32
//     — two such blocks fit comfortably in any L2 we target);
//   * a sweep whose index space holds >= kChunkCutoffDim = 2^14 entries
//     is chunked; below that it is ONE plain kernel call, bit-identical
//     to what the library always did;
//   * each chunk's fold uses its OWN canonical accumulator set (the
//     lanes restart at the chunk start), and the chunk partials are
//     combined by left-to-right addition in ascending chunk order.
//
// Whether the cutoff triggers depends ONLY on the index-space size —
// never on the thread count.  Threads only decide WHO executes a chunk
// (parallel_for_threads with a static schedule); the work each chunk
// performs and the order partials are combined in are fixed.  Hence
// threaded ≡ single-threaded ≡ scalar bit-for-bit, at every thread
// count, for every ISA flavor — the dispatch battery rejects any
// flavor×thread combination that diverges.
//
// CACHE BLOCKING falls out of the same decomposition: the *_with_total
// drivers compute a sweep's Born denominator AND its projection chunk
// by chunk, so each amplitude block is read once and reused from L2
// instead of being streamed from DRAM twice.  Fusion never changes
// values: the per-chunk partials and their combination order are
// exactly those of the unfused drivers.
//
// Where two different drivers can cover the same logical fold (the
// compiled prep_total_fold vs the interpreted add_plus_cz over the
// doubled register; collapse_pairs vs prep_collapse over the same out
// array), their chunk decompositions are aligned by construction —
// both sides chunk the same array at the same boundaries — preserving
// the compiled ≡ interpreted bit-identity the tests assert.

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "mbq/common/bits.h"
#include "mbq/common/parallel.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq::thr {

/// Amplitudes per chunk (a power of two; 2^13 = 128 KiB of f64 amps).
inline constexpr std::uint64_t kChunkAmps = std::uint64_t{1} << 13;

/// An index space with at least this many entries is chunked.
inline constexpr std::uint64_t kChunkCutoffDim = std::uint64_t{1} << 14;

/// The process-global kernel thread count the DynamicStatevector
/// drivers use.  First call resolves MBQ_KERNEL_THREADS: a positive
/// integer pins the count, "auto"/unset picks the OpenMP default (1
/// without OpenMP), anything else throws.  Always >= 1.  Purely a
/// wall-clock knob — results are bit-identical at every value.
int kernel_threads();

/// Override the kernel thread count (SessionOptions::kernel_threads
/// routes here); n <= 0 re-resolves from the environment.
void set_kernel_threads(int n) noexcept;

namespace detail {

/// Chunk-partial slots, reused across calls (the steady-state shot loop
/// performs no allocations; the vector only grows on first use).
template <class R>
inline std::vector<R>& parts() {
  thread_local std::vector<R> v;
  return v;
}

/// Canonical combination of chunk partials: left-to-right addition in
/// ascending chunk order.
template <class R>
inline R combine(const R* p, std::uint64_t n) noexcept {
  R total = p[0];
  for (std::uint64_t c = 1; c < n; ++c) total += p[c];
  return total;
}

inline bool chunked(std::uint64_t space) noexcept {
  return space >= kChunkCutoffDim && space % kChunkAmps == 0;
}

}  // namespace detail

/// Both folds of a fused blocked measure pass.
template <class R>
struct Folds2 {
  R total;  // Born denominator (pre-measure norm fold)
  R proj;   // projection norm fold
};

// --- folds -------------------------------------------------------------------

template <class R>
R fold_norms(const CollapseKernelsT<R>& k, const std::complex<R>* x,
             std::uint64_t n, int threads) {
  if (!detail::chunked(n)) return k.fold_norms(x, n);
  const std::uint64_t nc = n / kChunkAmps;
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[c] = k.fold_norms(x + c * kChunkAmps, kChunkAmps);
  });
  return detail::combine(p.data(), nc);
}

template <class R>
R fold_norms_scaled(const CollapseKernelsT<R>& k, const std::complex<R>* x,
                    std::uint64_t n, R s, int threads) {
  if (!detail::chunked(n)) return k.fold_norms_scaled(x, n, s);
  const std::uint64_t nc = n / kChunkAmps;
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[c] = k.fold_norms_scaled(x + c * kChunkAmps, kChunkAmps, s);
  });
  return detail::combine(p.data(), nc);
}

/// prep_total_fold: the fold of the DOUBLED register [s·x | ±s·x].  The
/// chunk space is the doubled 2n array; the upper half's chunk partials
/// equal the lower half's bitwise (signs square away), so each is
/// computed once and added twice.
template <class R>
R prep_total_fold(const CollapseKernelsT<R>& k, const std::complex<R>* x,
                  std::uint64_t n, R s, int threads) {
  if (!detail::chunked(2 * n)) return k.prep_total_fold(x, n, s);
  const std::uint64_t nc = n / kChunkAmps;  // chunks per half
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[c] = k.fold_norms_scaled(x + c * kChunkAmps, kChunkAmps, s);
  });
  R total = p[0];
  for (std::uint64_t c = 1; c < nc; ++c) total += p[c];
  for (std::uint64_t c = 0; c < nc; ++c) total += p[c];
  return total;
}

template <class R>
R scale_fold(const CollapseKernelsT<R>& k, std::complex<R>* x,
             std::uint64_t n, R inv, int threads) {
  if (!detail::chunked(n)) return k.scale_fold(x, n, inv);
  const std::uint64_t nc = n / kChunkAmps;
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[c] = k.scale_fold(x + c * kChunkAmps, kChunkAmps, inv);
  });
  return detail::combine(p.data(), nc);
}

// --- measure_remove ----------------------------------------------------------

/// collapse_pairs over pair-rank chunks.  A chunk of kChunkAmps ranks
/// maps to a contiguous out slice and (for either stride regime) to
/// offset sub-calls of the plain kernel:
///   stride >= C: i0(k0 + t) = i0(k0) + t for t < C, so the sub-call
///     sees an effective q with stride > its range and reads
///     x + i0(k0) .. and x + i0(k0) + stride;
///   stride <  C: i0(k0 + t) = 2·k0 + i0(t) (k0 is a multiple of
///     stride), so the sub-call runs the same q on x + 2·k0.
template <class R>
R collapse_pairs(const CollapseKernelsT<R>& k, const std::complex<R>* x,
                 std::complex<R>* out, std::uint64_t pairs, int q,
                 std::complex<R> e0, std::complex<R> e1, int threads) {
  if (!detail::chunked(pairs)) return k.collapse_pairs(x, out, pairs, q, e0, e1);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t nc = pairs / kChunkAmps;
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t k0 = c * kChunkAmps;
    if (stride >= kChunkAmps) {
      p[c] = k.collapse_pairs(x + insert_zero_bit(k0, q), out + k0,
                              kChunkAmps, q, e0, e1);
    } else {
      p[c] = k.collapse_pairs(x + 2 * k0, out + k0, kChunkAmps, q, e0, e1);
    }
  });
  return detail::combine(p.data(), nc);
}

/// Fused measure_remove when the caller has no valid running fold:
/// total = fold_norms(x, 2·pairs) and proj = collapse_pairs(...), with
/// each source block folded in the same chunk pass that consumes it —
/// one read of x instead of two.  Chunk partials and combination order
/// are exactly those of the unfused drivers.
template <class R>
Folds2<R> collapse_pairs_with_total(const CollapseKernelsT<R>& k,
                                    const std::complex<R>* x,
                                    std::complex<R>* out, std::uint64_t pairs,
                                    int q, std::complex<R> e0,
                                    std::complex<R> e1, int threads) {
  if (!detail::chunked(pairs)) {
    // The total keeps the global fold definition (it may chunk at
    // 2·pairs even when the pair space is below the cutoff); below both
    // cutoffs this is EXACTLY the historical two-call sequence.
    const R total = fold_norms(k, x, 2 * pairs, threads);
    const R proj = k.collapse_pairs(x, out, pairs, q, e0, e1);
    return {total, proj};
  }
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t nc = pairs / kChunkAmps;        // projection chunks
  const std::uint64_t nx = (2 * pairs) / kChunkAmps;  // x-fold chunks
  auto& p = detail::parts<R>();
  p.resize(nc + nx);
  R* proj_parts = p.data();
  R* x_parts = p.data() + nc;
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t k0 = c * kChunkAmps;
    if (stride >= kChunkAmps) {
      // The two x blocks this rank chunk reads are themselves aligned
      // x-fold chunks: fold them here, while they are hot.
      const std::uint64_t i0 = insert_zero_bit(k0, q);
      x_parts[i0 / kChunkAmps] = k.fold_norms(x + i0, kChunkAmps);
      x_parts[(i0 + stride) / kChunkAmps] =
          k.fold_norms(x + i0 + stride, kChunkAmps);
      proj_parts[c] =
          k.collapse_pairs(x + i0, out + k0, kChunkAmps, q, e0, e1);
    } else {
      x_parts[2 * c] = k.fold_norms(x + 2 * k0, kChunkAmps);
      x_parts[2 * c + 1] = k.fold_norms(x + 2 * k0 + kChunkAmps, kChunkAmps);
      proj_parts[c] =
          k.collapse_pairs(x + 2 * k0, out + k0, kChunkAmps, q, e0, e1);
    }
  });
  return {detail::combine(x_parts, nx), detail::combine(proj_parts, nc)};
}

// --- fused prep+CZ+measure (prep_cz_measure) ---------------------------------

/// prep_collapse over dim chunks.  The offset sub-call passes the
/// low pmask bits and folds the chunk's base parity into the sign of
/// e1: eff(e1, −u) ≡ eff(−e1, u) bitwise, term by term (IEEE sign
/// symmetry of multiplication), so the sub-call's values are identical
/// to the full pass restricted to the chunk.
template <class R>
R prep_collapse(const CollapseKernelsT<R>& k, const std::complex<R>* x,
                std::complex<R>* out, std::uint64_t dim, std::uint64_t pmask,
                std::complex<R> e0, std::complex<R> e1, R s, int threads) {
  if (!detail::chunked(dim))
    return k.prep_collapse(x, out, dim, pmask, e0, e1, s);
  const std::uint64_t nc = dim / kChunkAmps;
  const std::uint64_t pm_lo = pmask & (kChunkAmps - 1);
  const std::uint64_t pm_hi = pmask & ~(kChunkAmps - 1);
  auto& p = detail::parts<R>();
  p.resize(nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t i0 = c * kChunkAmps;
    const std::complex<R> e1c = parity64(i0 & pm_hi) ? -e1 : e1;
    p[c] = k.prep_collapse(x + i0, out + i0, kChunkAmps, pm_lo, e0, e1c, s);
  });
  return detail::combine(p.data(), nc);
}

/// Fused prep_cz_measure: total = prep_total_fold(x, n, s) and
/// proj = prep_collapse(...), per chunk — each x block is read once for
/// both folds.  The two results keep their independent chunk contracts
/// (total chunks the doubled 2n array, proj chunks the n array), which
/// meet at the same physical boundaries.
template <class R>
Folds2<R> prep_collapse_with_total(const CollapseKernelsT<R>& k,
                                   const std::complex<R>* x,
                                   std::complex<R>* out, std::uint64_t dim,
                                   std::uint64_t pmask, std::complex<R> e0,
                                   std::complex<R> e1, R s, int threads) {
  if (!detail::chunked(2 * dim)) {
    const R total = k.prep_total_fold(x, dim, s);
    const R proj = k.prep_collapse(x, out, dim, pmask, e0, e1, s);
    return {total, proj};
  }
  if (!detail::chunked(dim)) {
    // 2·dim is exactly the cutoff: total is chunked (one half-chunk
    // added twice), the projection is still one plain call.
    const R half = k.fold_norms_scaled(x, dim, s);
    const R proj = k.prep_collapse(x, out, dim, pmask, e0, e1, s);
    return {half + half, proj};
  }
  const std::uint64_t nc = dim / kChunkAmps;
  const std::uint64_t pm_lo = pmask & (kChunkAmps - 1);
  const std::uint64_t pm_hi = pmask & ~(kChunkAmps - 1);
  auto& p = detail::parts<R>();
  p.resize(2 * nc);
  R* x_parts = p.data();
  R* proj_parts = p.data() + nc;
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t i0 = c * kChunkAmps;
    x_parts[c] = k.fold_norms_scaled(x + i0, kChunkAmps, s);
    const std::complex<R> e1c = parity64(i0 & pm_hi) ? -e1 : e1;
    proj_parts[c] =
        k.prep_collapse(x + i0, out + i0, kChunkAmps, pm_lo, e0, e1c, s);
  });
  R total = x_parts[0];
  for (std::uint64_t c = 1; c < nc; ++c) total += x_parts[c];
  for (std::uint64_t c = 0; c < nc; ++c) total += x_parts[c];
  return {total, detail::combine(proj_parts, nc)};
}

// --- fused prep+CZ+teleport+measure ------------------------------------------

/// teleport_collapse with the out fold fused into the projection pass
/// (removes the full-vector out re-read the historical
/// teleport_collapse + fold_norms(out) sequence performed).  Returns
/// fold_norms(out, dim) under its chunk contract: each pair-rank chunk
/// writes one lower and one upper out chunk and folds both in place;
/// the partials land in out-chunk order and combine left to right.
template <class R>
R teleport_collapse_fold(const CollapseKernelsT<R>& k,
                         const std::complex<R>* x, std::complex<R>* out,
                         std::uint64_t dim, int q, std::uint64_t pmask,
                         std::complex<R> e0, std::complex<R> e1, R s,
                         int threads) {
  if (!detail::chunked(dim)) {
    k.teleport_collapse(x, out, dim, q, pmask, e0, e1, s);
    return fold_norms(k, out, dim, threads);
  }
  const std::uint64_t nch = (dim / 2) / kChunkAmps;  // chunks per half
  auto& p = detail::parts<R>();
  p.resize(2 * nch);
  parallel_for_threads(static_cast<std::int64_t>(nch), threads, [&](auto c) {
    const std::uint64_t r0 = c * kChunkAmps;
    k.teleport_collapse_range(x, out, dim, q, pmask, e0, e1, s, r0,
                              r0 + kChunkAmps, &p[c], &p[nch + c]);
  });
  return detail::combine(p.data(), 2 * nch);
}

// --- interpreted-path prep (add_wire_plus_cz) --------------------------------

/// add_plus_cz over chunks of the doubled register: the scale pass
/// chunks the lower half in place, then (barrier) the mirror pass
/// chunks the upper half via the ranged kernel.  Partials combine in
/// doubled-array order — bitwise equal to prep_total_fold's chunked
/// result over the same physical array.
template <class R>
R add_plus_cz(const CollapseKernelsT<R>& k, std::complex<R>* x,
              std::uint64_t old_dim, std::uint64_t pmask, R s, int threads) {
  if (!detail::chunked(2 * old_dim)) return k.add_plus_cz(x, old_dim, pmask, s);
  const std::uint64_t nc = old_dim / kChunkAmps;  // chunks per half
  auto& p = detail::parts<R>();
  p.resize(2 * nc);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[c] = k.scale_fold(x + c * kChunkAmps, kChunkAmps, s);
  });
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    p[nc + c] = k.mirror_cz_range(x, old_dim, c * kChunkAmps,
                                  (c + 1) * kChunkAmps, pmask);
  });
  return detail::combine(p.data(), 2 * nc);
}

// --- exact passes (no folds — any decomposition is bit-identical) ------------

template <class R>
void sign_pass(const CollapseKernelsT<R>& k, std::complex<R>* x,
               std::uint64_t n, std::uint64_t eq_mask, std::uint64_t par_mask,
               bool negate, int threads) {
  if (!detail::chunked(n)) {
    k.sign_pass(x, n, eq_mask, par_mask, negate);
    return;
  }
  const std::uint64_t nc = n / kChunkAmps;
  const std::uint64_t eq_lo = eq_mask & (kChunkAmps - 1);
  const std::uint64_t eq_hi = eq_mask & ~(kChunkAmps - 1);
  const std::uint64_t par_lo = par_mask & (kChunkAmps - 1);
  const std::uint64_t par_hi = par_mask & ~(kChunkAmps - 1);
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t j0 = c * kChunkAmps;
    // Split the eq condition: the high bits are constant per chunk.
    const bool hi_match = (j0 & eq_hi) == eq_hi;
    const std::uint64_t eq_sub = (hi_match && eq_lo != 0) ? eq_lo : 0;
    const bool eq_const = eq_mask != 0 && hi_match && eq_lo == 0;
    const bool neg_sub =
        negate ^ eq_const ^ (parity64(j0 & par_hi) != 0);
    k.sign_pass(x + j0, kChunkAmps, eq_sub, par_lo, neg_sub);
  });
}

template <class R>
void cz_masks_pass(const CollapseKernelsT<R>& k, std::complex<R>* x,
                   std::uint64_t n, const std::uint64_t* pair_masks, int count,
                   int threads) {
  // A mask of 0 fires on every index ((i & 0) == 0), which is how a
  // chunk-constant flip is expressed below; cap the per-chunk list.
  if (!detail::chunked(n) || count > 64) {
    k.cz_masks_pass(x, n, pair_masks, count);
    return;
  }
  const std::uint64_t nc = n / kChunkAmps;
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t i0 = c * kChunkAmps;
    std::array<std::uint64_t, 65> sub;
    int sub_count = 0;
    bool const_flip = false;
    for (int m = 0; m < count; ++m) {
      const std::uint64_t hi = pair_masks[m] & ~(kChunkAmps - 1);
      if ((i0 & hi) != hi) continue;  // never fires in this chunk
      const std::uint64_t lo = pair_masks[m] & (kChunkAmps - 1);
      if (lo == 0)
        const_flip = !const_flip;  // fires on every index of the chunk
      else
        sub[static_cast<std::size_t>(sub_count++)] = lo;
    }
    if (const_flip) sub[static_cast<std::size_t>(sub_count++)] = 0;
    if (sub_count == 0) return;
    k.cz_masks_pass(x + i0, kChunkAmps, sub.data(), sub_count);
  });
}

template <class R>
void pauli_swap_pass(const CollapseKernelsT<R>& k, std::complex<R>* x,
                     std::uint64_t n, std::uint64_t xmask, std::uint64_t zmask,
                     std::uint64_t eq_mask, bool negate, int threads) {
  if (!detail::chunked(n) || n / 2 < kChunkAmps) {
    k.pauli_swap_pass(x, n, xmask, zmask, eq_mask, negate);
    return;
  }
  const std::uint64_t nc = (n / 2) / kChunkAmps;  // pair-rank chunks
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    k.pauli_swap_range(x, xmask, zmask, eq_mask, negate, c * kChunkAmps,
                       (c + 1) * kChunkAmps);
  });
}

template <class R>
void phase_pass(const CollapseKernelsT<R>& k, std::complex<R>* x,
                std::uint64_t n, int q, std::complex<R> e, int threads) {
  if (!detail::chunked(n) || n / 2 < kChunkAmps) {
    k.phase_pass(x, n, q, e);
    return;
  }
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t nc = (n / 2) / kChunkAmps;  // pair-rank chunks
  parallel_for_threads(static_cast<std::int64_t>(nc), threads, [&](auto c) {
    const std::uint64_t k0 = c * kChunkAmps;
    if (stride >= kChunkAmps) {
      // The chunk's i1 targets are one contiguous block starting at
      // j0 = i0(k0) | stride >= kChunkAmps; phase it as the upper half
      // of a 2·C register (only indices with the top bit set are read
      // or written, so the pointer backs up safely).
      const std::uint64_t j0 = insert_zero_bit(k0, q) | stride;
      k.phase_pass(x + j0 - kChunkAmps, 2 * kChunkAmps,
                   std::countr_zero(kChunkAmps), e);
    } else {
      // The pattern repeats every 2·stride amps; a rank chunk is the
      // same pass on a contiguous 2·C slice.
      k.phase_pass(x + 2 * k0, 2 * kChunkAmps, q, e);
    }
  });
}

}  // namespace mbq::thr
