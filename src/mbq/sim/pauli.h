#pragma once
// Pauli strings and their expectation values on statevectors.

#include <cstdint>
#include <string>

#include "mbq/common/types.h"
#include "mbq/sim/statevector.h"

namespace mbq {

/// A Pauli string on up to 64 qubits, e.g. "XIZY" (qubit 0 first).
/// Internally: x_mask marks X/Y qubits, z_mask marks Z/Y qubits.
class PauliString {
 public:
  PauliString() = default;
  /// From a string of I/X/Y/Z characters, qubit 0 first.
  explicit PauliString(const std::string& ops);
  PauliString(std::uint64_t x_mask, std::uint64_t z_mask, int n);

  int num_qubits() const noexcept { return n_; }
  std::uint64_t x_mask() const noexcept { return x_; }
  std::uint64_t z_mask() const noexcept { return z_; }
  bool is_identity() const noexcept { return x_ == 0 && z_ == 0; }

  /// Number of Y factors.
  int y_count() const noexcept;

  char op_at(int q) const;
  std::string str() const;

  /// Do two strings commute?
  bool commutes_with(const PauliString& other) const;

  /// <psi|P|psi> (must be real for Hermitian P; we return the real part
  /// and expose the imaginary residue for tests).
  cplx expectation(const Statevector& psi) const;

  friend bool operator==(const PauliString&, const PauliString&) = default;

 private:
  std::uint64_t x_ = 0;
  std::uint64_t z_ = 0;
  int n_ = 0;
};

}  // namespace mbq
