#include "mbq/sim/dynamic_statevector.h"

#include <algorithm>
#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"

namespace mbq {

Matrix measurement_basis(MeasBasis basis, real angle) {
  switch (basis) {
    case MeasBasis::Z:
      return Matrix::identity(2);
    case MeasBasis::X: {
      const real s = 1.0 / std::sqrt(2.0);
      return Matrix(2, 2, {s, s, s, -s});
    }
    case MeasBasis::XY: {
      const real s = 1.0 / std::sqrt(2.0);
      const cplx e = std::exp(kI * angle);
      return Matrix(2, 2, {s, s, s * e, -s * e});
    }
    case MeasBasis::YZ: {
      const cplx c = std::cos(angle / 2);
      const cplx is = kI * std::sin(angle / 2);
      return Matrix(2, 2, {c, is, is, c});
    }
  }
  throw InternalError("unknown measurement basis");
}

int DynamicStatevector::position(int wire) const {
  auto it = pos_.find(wire);
  MBQ_REQUIRE(it != pos_.end(), "wire " << wire << " is not live");
  return it->second;
}

void DynamicStatevector::add_wire(int wire, bool plus) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const std::size_t old_dim = amps_.size();
  amps_.resize(old_dim * 2);
  if (plus) {
    const real s = 1.0 / std::sqrt(2.0);
    for (std::size_t i = 0; i < old_dim; ++i) {
      amps_[i] *= s;
      amps_[old_dim + i] = amps_[i];
    }
  } else {
    std::fill(amps_.begin() + static_cast<std::ptrdiff_t>(old_dim),
              amps_.end(), cplx{0.0, 0.0});
  }
  pos_[wire] = static_cast<int>(order_.size());
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::add_wire_state(int wire, cplx a0, cplx a1) {
  const real nrm = std::sqrt(std::norm(a0) + std::norm(a1));
  MBQ_REQUIRE(nrm > 1e-12, "cannot add a wire in the zero state");
  add_wire(wire, false);  // |0>
  // Rotate |0> to the target state with a unitary whose first column is
  // the (normalized) state.
  const cplx b0 = a0 / nrm;
  const cplx b1 = a1 / nrm;
  apply_1q(wire, Matrix(2, 2, {b0, -std::conj(b1), b1, std::conj(b0)}));
}

void DynamicStatevector::apply_1q(int wire, const Matrix& u) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_1q needs 2x2");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    const std::uint64_t i1 = i0 | stride;
    const cplx a0 = amps_[i0];
    const cplx a1 = amps_[i1];
    amps_[i0] = u00 * a0 + u01 * a1;
    amps_[i1] = u10 * a0 + u11 * a1;
  }
}

void DynamicStatevector::apply_h(int wire) {
  const real s = 1.0 / std::sqrt(2.0);
  apply_1q(wire, Matrix(2, 2, {s, s, s, -s}));
}

void DynamicStatevector::apply_x(int wire) {
  apply_1q(wire, Matrix(2, 2, {0, 1, 1, 0}));
}

void DynamicStatevector::apply_z(int wire) {
  apply_1q(wire, Matrix(2, 2, {1, 0, 0, -1}));
}

void DynamicStatevector::apply_rz(int wire, real theta) {
  apply_1q(wire, Matrix(2, 2, {1, 0, 0, std::exp(kI * theta)}));
}

void DynamicStatevector::apply_cz(int wire_a, int wire_b) {
  MBQ_REQUIRE(wire_a != wire_b, "CZ needs two distinct wires");
  const std::uint64_t mask = (std::uint64_t{1} << position(wire_a)) |
                             (std::uint64_t{1} << position(wire_b));
  for (std::uint64_t i = 0; i < amps_.size(); ++i)
    if ((i & mask) == mask) amps_[i] = -amps_[i];
}

real DynamicStatevector::prob_one(int wire, const Matrix& basis) const {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  // Effect for outcome m is <b_m| = conj(column m)^T.
  const cplx e10 = std::conj(basis(0, 1));
  const cplx e11 = std::conj(basis(1, 1));
  real p1 = 0.0;
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    p1 += std::norm(e10 * amps_[i0] + e11 * amps_[i0 | stride]);
  }
  const real total = std::norm(norm());
  MBQ_REQUIRE(total > 1e-14, "zero state");
  return p1 / total;
}

int DynamicStatevector::measure_remove(int wire, const Matrix& basis, Rng& rng,
                                       int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = amps_.size() / 2;

  int outcome;
  if (forced == -1) {
    outcome = rng.bernoulli(prob_one(wire, basis)) ? 1 : 0;
  } else {
    outcome = forced;
  }

  // Collapse + compact in one pass: out[k] = <b_m| (pair k).
  const cplx em0 = std::conj(basis(0, outcome));
  const cplx em1 = std::conj(basis(1, outcome));
  std::vector<cplx> out(pairs);
  real nrm2 = 0.0;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    out[k] = em0 * amps_[i0] + em1 * amps_[i0 | stride];
    nrm2 += std::norm(out[k]);
  }
  MBQ_REQUIRE(nrm2 > 1e-18, "forced outcome " << outcome << " on wire " << wire
                                              << " has zero probability");
  const real inv = 1.0 / std::sqrt(nrm2);
  for (auto& x : out) x *= inv;
  amps_ = std::move(out);

  // Drop the wire and shift higher positions down.
  order_.erase(order_.begin() + q);
  pos_.erase(wire);
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[order_[i]] = static_cast<int>(i);
  return outcome;
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const std::vector<int>& wires) const {
  MBQ_REQUIRE(wires.size() == order_.size(),
              "expected all " << order_.size() << " live wires, got "
                              << wires.size());
  std::vector<int> src(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) src[i] = position(wires[i]);
  std::vector<cplx> out(amps_.size());
  for (std::uint64_t j = 0; j < out.size(); ++j) {
    std::uint64_t from = 0;
    for (std::size_t i = 0; i < src.size(); ++i)
      from = set_bit(from, src[i], get_bit(j, static_cast<int>(i)));
    out[j] = amps_[from];
  }
  return out;
}

real DynamicStatevector::norm() const {
  real s = 0.0;
  for (const auto& x : amps_) s += std::norm(x);
  return std::sqrt(s);
}

void DynamicStatevector::normalize() {
  const real nrm = norm();
  MBQ_REQUIRE(nrm > 1e-14, "cannot normalize a zero state");
  const real inv = 1.0 / nrm;
  for (auto& x : amps_) x *= inv;
}

}  // namespace mbq
