#include "mbq/sim/dynamic_statevector.h"

#include <algorithm>
#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"

namespace mbq {

namespace {

// Measurement-effect coefficients are conjugated basis entries; for the
// pattern planes they are real (X, XY top row, YZ diagonal) or purely
// imaginary (YZ off-diagonal).  The reduced products below compute the
// same VALUES as the full complex multiply whose dropped factor is ±0 —
// only signs of zeros can differ, which no norm, Born probability or
// comparison observes — at a third of the arithmetic.
enum class EffKind : std::uint8_t { Real, Imag, Generic };

inline EffKind eff_kind(const cplx& e) noexcept {
  if (e.imag() == 0.0) return EffKind::Real;
  if (e.real() == 0.0) return EffKind::Imag;
  return EffKind::Generic;
}

/// The textbook complex product.  operator* on std::complex lowers to
/// the __muldc3 libcall, whose non-NaN fast path computes exactly this —
/// amplitudes and effects are finite and bounded, so inlining it is
/// bit-identical and drops a function call from the innermost loops.
inline cplx cmul(const cplx& e, const cplx& u) noexcept {
  return {e.real() * u.real() - e.imag() * u.imag(),
          e.real() * u.imag() + e.imag() * u.real()};
}

inline cplx eff_mul(EffKind k, const cplx& e, const cplx& u) noexcept {
  switch (k) {
    case EffKind::Real:
      return {e.real() * u.real(), e.real() * u.imag()};
    case EffKind::Imag:
      return {-(e.imag() * u.imag()), e.imag() * u.real()};
    default:
      return cmul(e, u);
  }
}

}  // namespace

Matrix measurement_basis(MeasBasis basis, real angle) {
  switch (basis) {
    case MeasBasis::Z:
      return Matrix::identity(2);
    case MeasBasis::X: {
      const real s = 1.0 / std::sqrt(2.0);
      return Matrix(2, 2, {s, s, s, -s});
    }
    case MeasBasis::XY: {
      const real s = 1.0 / std::sqrt(2.0);
      const cplx e = std::exp(kI * angle);
      return Matrix(2, 2, {s, s, s * e, -s * e});
    }
    case MeasBasis::YZ: {
      const cplx c = std::cos(angle / 2);
      const cplx is = kI * std::sin(angle / 2);
      return Matrix(2, 2, {c, is, is, c});
    }
  }
  throw InternalError("unknown measurement basis");
}

void DynamicStatevector::reset() {
  amps_.clear();
  amps_.push_back(cplx{1.0, 0.0});
  order_.clear();
  pos_.clear();
  peak_live_ = 0;
  fold_ = 1.0;
  fold_valid_ = true;
}

int DynamicStatevector::position(int wire) const {
  auto it = pos_.find(wire);
  MBQ_REQUIRE(it != pos_.end(), "wire " << wire << " is not live");
  return it->second;
}

void DynamicStatevector::add_wire(int wire, bool plus) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  fold_valid_ = false;
  const std::size_t old_dim = amps_.size();
  amps_.resize(old_dim * 2);
  if (plus) {
    const real s = 1.0 / std::sqrt(2.0);
    for (std::size_t i = 0; i < old_dim; ++i) {
      amps_[i] *= s;
      amps_[old_dim + i] = amps_[i];
    }
  } else {
    std::fill(amps_.begin() + static_cast<std::ptrdiff_t>(old_dim),
              amps_.end(), cplx{0.0, 0.0});
  }
  pos_[wire] = static_cast<int>(order_.size());
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::add_wire_state(int wire, cplx a0, cplx a1) {
  const real nrm = std::sqrt(std::norm(a0) + std::norm(a1));
  MBQ_REQUIRE(nrm > 1e-12, "cannot add a wire in the zero state");
  add_wire(wire, false);  // |0>
  // Rotate |0> to the target state with a unitary whose first column is
  // the (normalized) state.
  const cplx b0 = a0 / nrm;
  const cplx b1 = a1 / nrm;
  apply_1q(wire, Matrix(2, 2, {b0, -std::conj(b1), b1, std::conj(b0)}));
}

void DynamicStatevector::apply_1q(int wire, const Matrix& u) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_1q needs 2x2");
  fold_valid_ = false;
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    const std::uint64_t i1 = i0 | stride;
    const cplx a0 = amps_[i0];
    const cplx a1 = amps_[i1];
    amps_[i0] = u00 * a0 + u01 * a1;
    amps_[i1] = u10 * a0 + u11 * a1;
  }
}

void DynamicStatevector::apply_h(int wire) {
  const real s = 1.0 / std::sqrt(2.0);
  apply_1q(wire, Matrix(2, 2, {s, s, s, -s}));
}

void DynamicStatevector::apply_x(int wire) {
  // Dedicated kernel: X is a pure amplitude swap, no complex arithmetic.
  // The swap reorders elements, so the linear norm fold is invalidated
  // (per-element norms survive, their fold order does not).
  fold_valid_ = false;
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    std::swap(amps_[i0], amps_[i0 | stride]);
  }
}

void DynamicStatevector::apply_z(int wire) {
  // Dedicated kernel: Z only negates the bit-set half.  Per-element
  // norms and their order are untouched, so the fold stays valid.
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i1 = insert_zero_bit(k, q) | stride;
    amps_[i1] = -amps_[i1];
  }
}

void DynamicStatevector::apply_rz(int wire, real theta) {
  apply_1q(wire, Matrix(2, 2, {1, 0, 0, std::exp(kI * theta)}));
}

void DynamicStatevector::apply_cz(int wire_a, int wire_b) {
  MBQ_REQUIRE(wire_a != wire_b, "CZ needs two distinct wires");
  const std::uint64_t mask = (std::uint64_t{1} << position(wire_a)) |
                             (std::uint64_t{1} << position(wire_b));
  // Sign flips preserve per-element norms in place: fold stays valid.
  for (std::uint64_t i = 0; i < amps_.size(); ++i)
    if ((i & mask) == mask) amps_[i] = -amps_[i];
}

void DynamicStatevector::apply_cz_depolarize(int wire_a, int wire_b, real p,
                                             Rng& rng) {
  if (p <= 0.0) {
    apply_cz(wire_a, wire_b);
    return;
  }
  // Draw the noise decisions first, in the order the sequential
  // composition (CZ, then per-wire Pauli checks for a, then b) would.
  // The draws are state-independent, so this preserves the rng stream;
  // every constituent operation is a sign flip or an index swap, so the
  // fused pass below is bit-identical to applying them one by one.
  std::uint64_t xmask = 0, zmask = 0;
  for (const int w : {wire_a, wire_b}) {
    if (!rng.bernoulli(p)) continue;
    const std::uint64_t m = std::uint64_t{1} << position(w);
    switch (rng.uniform_index(3)) {
      case 0: xmask ^= m; break;
      case 1: zmask ^= m; break;
      default:
        xmask ^= m;
        zmask ^= m;  // Y up to phase (X then Z)
        break;
    }
  }
  const std::uint64_t cz = (std::uint64_t{1} << position(wire_a)) |
                           (std::uint64_t{1} << position(wire_b));
  if (xmask != 0) fold_valid_ = false;  // swaps reorder the fold
  // Net operator Zmask · Xmask · CZ: new[j] = zs(j) · czs(j^xmask) ·
  // amps[j ^ xmask], where zs/czs are ±1 phases.
  if (xmask == 0) {
    for (std::uint64_t j = 0; j < amps_.size(); ++j) {
      const bool flip = ((j & cz) == cz) ^ (parity64(j & zmask) != 0);
      if (flip) amps_[j] = -amps_[j];
    }
    return;
  }
  const int hb = 63 - std::countl_zero(xmask);
  for (std::uint64_t j = 0; j < amps_.size(); ++j) {
    if (get_bit(j, hb)) continue;  // each {j, j^xmask} pair handled once
    const std::uint64_t j2 = j ^ xmask;
    const bool flip_j = ((j2 & cz) == cz) ^ (parity64(j & zmask) != 0);
    const bool flip_j2 = ((j & cz) == cz) ^ (parity64(j2 & zmask) != 0);
    const cplx t = amps_[j];
    amps_[j] = flip_j ? -amps_[j2] : amps_[j2];
    amps_[j2] = flip_j2 ? -t : t;
  }
}

void DynamicStatevector::add_wire_plus_cz(int wire,
                                          std::uint64_t partner_pos_mask) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const std::size_t old_dim = amps_.size();
  amps_.resize(old_dim * 2);
  const real s = 1.0 / std::sqrt(2.0);
  // The fresh wire takes the TOP bit, so every fused CZ signs only the
  // upper half being written: sign(i) = parity of partner bits in i.
  // Two linear sub-loops keep the norm fold in ascending index order.
  real fold = 0.0;
  for (std::size_t i = 0; i < old_dim; ++i) {
    amps_[i] *= s;
    fold += std::norm(amps_[i]);
  }
  for (std::size_t i = 0; i < old_dim; ++i) {
    cplx v = amps_[i];
    if (parity64(i & partner_pos_mask)) v = -v;
    amps_[old_dim + i] = v;
    fold += std::norm(v);
  }
  fold_ = fold;
  fold_valid_ = true;
  pos_[wire] = static_cast<int>(order_.size());
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::apply_cz_masks(const std::uint64_t* pair_masks,
                                        int count) {
  for (std::uint64_t i = 0; i < amps_.size(); ++i) {
    int flips = 0;
    for (int m = 0; m < count; ++m)
      flips ^= static_cast<int>((i & pair_masks[m]) == pair_masks[m]);
    if (flips) amps_[i] = -amps_[i];
  }
  // Pure sign pass: fold validity carries through untouched.
}

void DynamicStatevector::apply_pauli_masks(std::uint64_t xmask,
                                           std::uint64_t zmask, bool negate) {
  if (xmask == 0) {
    if (zmask == 0 && !negate) return;
    for (std::uint64_t j = 0; j < amps_.size(); ++j)
      if ((parity64(j & zmask) != 0) ^ negate) amps_[j] = -amps_[j];
    return;  // in-place sign pass: fold stays valid
  }
  fold_valid_ = false;
  const int hb = 63 - std::countl_zero(xmask);
  for (std::uint64_t j = 0; j < amps_.size(); ++j) {
    if (get_bit(j, hb)) continue;  // each {j, j^xmask} pair handled once
    const std::uint64_t j2 = j ^ xmask;
    const bool flip_j = (parity64(j & zmask) != 0) ^ negate;
    const bool flip_j2 = (parity64(j2 & zmask) != 0) ^ negate;
    const cplx t = amps_[j];
    amps_[j] = flip_j ? -amps_[j2] : amps_[j2];
    amps_[j2] = flip_j2 ? -t : t;
  }
}

int DynamicStatevector::prep_cz_measure(int wire,
                                        std::uint64_t partner_pos_mask,
                                        const Matrix& basis, Rng& rng,
                                        int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const std::size_t dim = amps_.size();
  // The wire exists only virtually: it would sit at the top position
  // with upper amplitude half up[i] = ±(amps[i] * s), the sign from the
  // fused CZ partners.  Probabilities, projections and the collapsed
  // state all derive from that relation, so the register never doubles
  // — the whole N;E...;M gadget block runs at the SMALL dimension.  All
  // sums run in the reference order over the values the sequential
  // kernels would have stored, keeping outcomes bit-identical.
  peak_live_ = std::max(peak_live_, num_live() + 1);
  scratch_.resize(dim);
  const real s = 1.0 / std::sqrt(2.0);
  // The scaled lower half s·amps[i] and its signed upper mirror are
  // computed on the fly (same products the sequential prep would have
  // stored), so the register is never even scaled in place.  The Born
  // denominator folds the lower-half norms inline (ascending) and the
  // upper-half norms in a second sweep — bitwise the sequential order,
  // since norm(±v) is the same product either way.

  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    const cplx e10 = std::conj(basis(0, 1));
    const cplx e11 = std::conj(basis(1, 1));
    const EffKind k0 = eff_kind(e10);
    const EffKind k1 = eff_kind(e11);
    real fold = 0.0;
    real p1 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const cplx low = amps_[i] * s;
      fold += std::norm(low);
      const cplx up = parity64(i & partner_pos_mask) ? -low : low;
      scratch_[i] = eff_mul(k0, e10, low) + eff_mul(k1, e11, up);
      p1 += std::norm(scratch_[i]);
    }
    for (std::size_t i = 0; i < dim; ++i) fold += std::norm(amps_[i] * s);
    const real total = std::norm(std::sqrt(fold));
    MBQ_REQUIRE(total > 1e-14, "zero state");
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    const cplx em0 = std::conj(basis(0, outcome));
    const cplx em1 = std::conj(basis(1, outcome));
    const EffKind k0 = eff_kind(em0);
    const EffKind k1 = eff_kind(em1);
    nrm2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const cplx low = amps_[i] * s;
      const cplx up = parity64(i & partner_pos_mask) ? -low : low;
      scratch_[i] = eff_mul(k0, em0, low) + eff_mul(k1, em1, up);
      nrm2 += std::norm(scratch_[i]);
    }
  }
  MBQ_REQUIRE(nrm2 > 1e-18, "forced outcome " << outcome << " on wire " << wire
                                              << " has zero probability");
  const real inv = 1.0 / std::sqrt(nrm2);
  real post = 0.0;
  for (auto& x : scratch_) {
    x *= inv;
    post += std::norm(x);
  }
  std::swap(amps_, scratch_);
  fold_ = post;
  fold_valid_ = true;
  return outcome;
}

int DynamicStatevector::prep_cz_teleport_measure(int new_wire,
                                                 std::uint64_t partner_pos_mask,
                                                 int meas_wire,
                                                 const Matrix& basis, Rng& rng,
                                                 int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(new_wire), "wire " << new_wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const int q = position(meas_wire);
  const int live = num_live();
  const std::size_t dim = amps_.size();
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t rest_count = dim / 2;
  // new_wire sits only VIRTUALLY at the top position: in the doubled
  // register its half-bit b selects between +s·amps[i] (b = 0) and
  // (-1)^{parity(i & partners)}·s·amps[i] (b = 1).  The sequential
  // chain's measurement pair index k over that register decomposes as
  // k = (b << (live-1)) | rest with i0 = insert_zero_bit(rest, q), and
  // the collapsed state indexed by k IS the final wire layout (meas
  // gone, new_wire on top), so one pass writes the result in place of
  // three passes over a doubled arena.  Loops split by b to keep every
  // fold in the sequential ascending-k order.
  peak_live_ = std::max(peak_live_, live + 1);
  scratch_.resize(dim);
  const real s = 1.0 / std::sqrt(2.0);

  // One pass computes the b = 0 projection A + B and reuses ±A ± B for
  // the b = 1 half (the sequential chain multiplies the effects into the
  // ±-signed stored values, and e·(−u) ≡ −(e·u) holds bitwise in IEEE).
  // Iteration is blocked on the measured position so all four streams
  // (two reads, two writes) advance sequentially; CZ-partner signs are
  // constant per block whenever no partner sits below the measured wire
  // (always true for the mixer J chains, whose only partner IS the
  // measured wire).  Every fold below accumulates in the reference
  // ascending order: the pre-measure norm fold walks each block's two
  // contiguous read streams back to back (globally ascending), and the
  // projection fold is DEFERRED to sequential sweeps over scratch.
  auto collapse = [&](const cplx em0, const cplx em1, real* pre_fold) {
    const EffKind k0 = eff_kind(em0);
    const EffKind k1 = eff_kind(em1);
    const std::uint64_t pm_low = partner_pos_mask & (stride - 1);
    const int pm_q = static_cast<int>((partner_pos_mask >> q) & 1);
    real pre = 0.0;
    for (std::uint64_t hp = 0; hp < rest_count >> q; ++hp) {
      const std::uint64_t i0b = hp << (q + 1);
      const std::uint64_t rb = hp << q;
      const int ph = parity64(i0b & partner_pos_mask);
      if (pm_low == 0) {
        const bool s0 = ph != 0;
        const bool s1 = (ph ^ pm_q) != 0;
        for (std::uint64_t lo = 0; lo < stride; ++lo) {
          const cplx u0 = amps_[i0b + lo] * s;
          if (pre_fold != nullptr) pre += std::norm(u0);
          const cplx a = eff_mul(k0, em0, u0);
          const cplx b = eff_mul(k1, em1, amps_[i0b + stride + lo] * s);
          scratch_[rb + lo] = a + b;
          scratch_[rest_count + rb + lo] = (s0 ? -a : a) + (s1 ? -b : b);
        }
      } else {
        for (std::uint64_t lo = 0; lo < stride; ++lo) {
          const cplx u0 = amps_[i0b + lo] * s;
          if (pre_fold != nullptr) pre += std::norm(u0);
          const cplx a = eff_mul(k0, em0, u0);
          const cplx b = eff_mul(k1, em1, amps_[i0b + stride + lo] * s);
          scratch_[rb + lo] = a + b;
          const int s0 = ph ^ parity64(lo & pm_low);
          scratch_[rest_count + rb + lo] =
              (s0 ? -a : a) + ((s0 ^ pm_q) ? -b : b);
        }
      }
      if (pre_fold != nullptr) {
        // Continue the block's ascending norm fold over its i1 stream.
        for (std::uint64_t lo = 0; lo < stride; ++lo)
          pre += std::norm(amps_[i0b + stride + lo] * s);
      }
    }
    if (pre_fold != nullptr) *pre_fold = pre;
    real fold = 0.0;
    for (const cplx& x : scratch_) fold += std::norm(x);
    return fold;
  };

  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    // The sequential total folds norm(s·amps[i]) over the lower half
    // then the (sign-flipped) upper half; negation leaves the squares
    // bit-identical, so the second half re-folds the same products.
    real total = 0.0;
    const real p1 =
        collapse(std::conj(basis(0, 1)), std::conj(basis(1, 1)), &total);
    for (std::size_t i = 0; i < dim; ++i) total += std::norm(amps_[i] * s);
    total = std::norm(std::sqrt(total));
    MBQ_REQUIRE(total > 1e-14, "zero state");
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1)
    nrm2 = collapse(std::conj(basis(0, outcome)), std::conj(basis(1, outcome)),
                    nullptr);
  MBQ_REQUIRE(nrm2 > 1e-18, "forced outcome " << outcome << " on wire "
                                              << meas_wire
                                              << " has zero probability");
  const real inv = 1.0 / std::sqrt(nrm2);
  real post = 0.0;
  for (auto& x : scratch_) {
    x *= inv;
    post += std::norm(x);
  }
  std::swap(amps_, scratch_);
  fold_ = post;
  fold_valid_ = true;

  // Bookkeeping exactly as add-then-measure would leave it: meas_wire's
  // position vanishes, higher wires shift down, new_wire lands on top.
  order_.erase(order_.begin() + q);
  pos_.erase(meas_wire);
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[order_[i]] = static_cast<int>(i);
  pos_[new_wire] = static_cast<int>(order_.size());
  order_.push_back(new_wire);
  return outcome;
}

real DynamicStatevector::prob_one(int wire, const Matrix& basis) const {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  // Effect for outcome m is <b_m| = conj(column m)^T.
  const cplx e10 = std::conj(basis(0, 1));
  const cplx e11 = std::conj(basis(1, 1));
  real p1 = 0.0;
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    p1 += std::norm(e10 * amps_[i0] + e11 * amps_[i0 | stride]);
  }
  const real total = std::norm(norm());
  MBQ_REQUIRE(total > 1e-14, "zero state");
  return p1 / total;
}

int DynamicStatevector::measure_remove(int wire, const Matrix& basis, Rng& rng,
                                       int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const std::uint64_t pairs = amps_.size() / 2;
  scratch_.resize(pairs);

  // Collapsed projections land in scratch_, which then SWAPS with amps_:
  // the two buffers ping-pong across calls, so a reused simulator never
  // reallocates.  The sampled path fuses the outcome-1 probability sweep
  // with its collapse (the projections are the same expressions), saving
  // a full pass whenever outcome 1 is drawn; every sum below runs in the
  // same order as the reference two-pass formulation, keeping outcomes
  // and amplitudes bit-identical.
  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    // Denominator, as prob_one computes it.  A valid fold (maintained in
    // the same ascending order by the fused kernels and the collapse
    // below) is bitwise the same sum, so the full pass is skipped.
    real total = fold_;
    if (!fold_valid_) {
      total = 0.0;
      for (const cplx& x : amps_) total += std::norm(x);
    }
    total = std::norm(std::sqrt(total));
    MBQ_REQUIRE(total > 1e-14, "zero state");
    const cplx e10 = std::conj(basis(0, 1));
    const cplx e11 = std::conj(basis(1, 1));
    const EffKind k0 = eff_kind(e10);
    const EffKind k1 = eff_kind(e11);
    real p1 = 0.0;
    for (std::uint64_t k = 0; k < pairs; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      scratch_[k] =
          eff_mul(k0, e10, amps_[i0]) + eff_mul(k1, e11, amps_[i0 | stride]);
      p1 += std::norm(scratch_[k]);
    }
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;  // outcome 1: the projections are already in scratch_
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    const cplx em0 = std::conj(basis(0, outcome));
    const cplx em1 = std::conj(basis(1, outcome));
    const EffKind k0 = eff_kind(em0);
    const EffKind k1 = eff_kind(em1);
    nrm2 = 0.0;
    for (std::uint64_t k = 0; k < pairs; ++k) {
      const std::uint64_t i0 = insert_zero_bit(k, q);
      scratch_[k] =
          eff_mul(k0, em0, amps_[i0]) + eff_mul(k1, em1, amps_[i0 | stride]);
      nrm2 += std::norm(scratch_[k]);
    }
  }
  MBQ_REQUIRE(nrm2 > 1e-18, "forced outcome " << outcome << " on wire " << wire
                                              << " has zero probability");
  const real inv = 1.0 / std::sqrt(nrm2);
  real post = 0.0;
  for (auto& x : scratch_) {
    x *= inv;
    post += std::norm(x);
  }
  std::swap(amps_, scratch_);
  fold_ = post;
  fold_valid_ = true;

  // Drop the wire and shift higher positions down.
  order_.erase(order_.begin() + q);
  pos_.erase(wire);
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[order_[i]] = static_cast<int>(i);
  return outcome;
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const std::vector<int>& wires) const {
  MBQ_REQUIRE(wires.size() == order_.size(),
              "expected all " << order_.size() << " live wires, got "
                              << wires.size());
  std::vector<int> src(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) src[i] = position(wires[i]);
  std::vector<cplx> out(amps_.size());
  // Incrementing j flips its trailing bits 0..t; the source index flips
  // the corresponding source-position bits, so the gather advances with
  // one table lookup per element instead of re-composing every bit.
  std::vector<std::uint64_t> flip(src.size() + 1, 0);
  for (std::size_t t = 0; t < src.size(); ++t)
    flip[t + 1] = flip[t] ^ (std::uint64_t{1} << src[t]);
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    out[j] = amps_[from];
    if (++j >= out.size()) break;
    from ^= flip[std::countr_zero(j) + 1];
  }
  return out;
}

std::uint64_t DynamicStatevector::sample_in_order(const std::vector<int>& wires,
                                                  real u) const {
  MBQ_REQUIRE(wires.size() == order_.size(),
              "expected all " << order_.size() << " live wires, got "
                              << wires.size());
  std::vector<int> src(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) src[i] = position(wires[i]);
  std::vector<std::uint64_t> flip(src.size() + 1, 0);
  for (std::size_t t = 0; t < src.size(); ++t)
    flip[t + 1] = flip[t] ^ (std::uint64_t{1} << src[t]);
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    u -= std::norm(amps_[from]);
    if (u <= 0.0 || j + 1 == amps_.size()) return j;
    ++j;
    from ^= flip[std::countr_zero(j) + 1];
  }
}

real DynamicStatevector::norm() const {
  real s = 0.0;
  for (const auto& x : amps_) s += std::norm(x);
  return std::sqrt(s);
}

void DynamicStatevector::normalize() {
  const real nrm = norm();
  MBQ_REQUIRE(nrm > 1e-14, "cannot normalize a zero state");
  fold_valid_ = false;
  const real inv = 1.0 / nrm;
  for (auto& x : amps_) x *= inv;
}

}  // namespace mbq
