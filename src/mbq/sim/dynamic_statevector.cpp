#include "mbq/sim/dynamic_statevector.h"

#include <algorithm>
#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/sim/collapse_kernels.h"

namespace mbq {

Matrix measurement_basis(MeasBasis basis, real angle) {
  switch (basis) {
    case MeasBasis::Z:
      return Matrix::identity(2);
    case MeasBasis::X: {
      const real s = 1.0 / std::sqrt(2.0);
      return Matrix(2, 2, {s, s, s, -s});
    }
    case MeasBasis::XY: {
      const real s = 1.0 / std::sqrt(2.0);
      const cplx e = std::exp(kI * angle);
      return Matrix(2, 2, {s, s, s * e, -s * e});
    }
    case MeasBasis::YZ: {
      const cplx c = std::cos(angle / 2);
      const cplx is = kI * std::sin(angle / 2);
      return Matrix(2, 2, {c, is, is, c});
    }
  }
  throw InternalError("unknown measurement basis");
}

void DynamicStatevector::reset() {
  amps_.clear();
  amps_.push_back(cplx{1.0, 0.0});
  // Clear only the live entries; pos_ keeps its capacity so the next
  // shot re-registers wires without touching the allocator.
  for (const int w : order_) pos_[static_cast<std::size_t>(w)] = -1;
  order_.clear();
  peak_live_ = 0;
  fold_ = 1.0;
  fold_valid_ = true;
}

int DynamicStatevector::position(int wire) const {
  MBQ_REQUIRE(has_wire(wire), "wire " << wire << " is not live");
  return pos_[static_cast<std::size_t>(wire)];
}

void DynamicStatevector::set_position(int wire, int p) {
  MBQ_REQUIRE(wire >= 0, "wire ids must be non-negative, got " << wire);
  if (static_cast<std::size_t>(wire) >= pos_.size())
    pos_.resize(static_cast<std::size_t>(wire) + 1, -1);
  pos_[static_cast<std::size_t>(wire)] = p;
}

void DynamicStatevector::add_wire(int wire, bool plus) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  fold_valid_ = false;
  const std::size_t old_dim = amps_.size();
  amps_.resize(old_dim * 2);
  if (plus) {
    const real s = 1.0 / std::sqrt(2.0);
    for (std::size_t i = 0; i < old_dim; ++i) {
      amps_[i] *= s;
      amps_[old_dim + i] = amps_[i];
    }
  } else {
    std::fill(amps_.begin() + static_cast<std::ptrdiff_t>(old_dim),
              amps_.end(), cplx{0.0, 0.0});
  }
  set_position(wire, static_cast<int>(order_.size()));
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::add_wire_state(int wire, cplx a0, cplx a1) {
  const real nrm = std::sqrt(std::norm(a0) + std::norm(a1));
  MBQ_REQUIRE(nrm > kMinAddWireNorm, "cannot add a wire in the zero state");
  add_wire(wire, false);  // |0>
  // Rotate |0> to the target state with a unitary whose first column is
  // the (normalized) state.
  const cplx b0 = a0 / nrm;
  const cplx b1 = a1 / nrm;
  apply_1q(wire, Matrix(2, 2, {b0, -std::conj(b1), b1, std::conj(b0)}));
}

void DynamicStatevector::apply_1q(int wire, const Matrix& u) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_1q needs 2x2");
  fold_valid_ = false;
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  const cplx u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    const std::uint64_t i1 = i0 | stride;
    const cplx a0 = amps_[i0];
    const cplx a1 = amps_[i1];
    amps_[i0] = u00 * a0 + u01 * a1;
    amps_[i1] = u10 * a0 + u11 * a1;
  }
}

void DynamicStatevector::apply_h(int wire) {
  const real s = 1.0 / std::sqrt(2.0);
  apply_1q(wire, Matrix(2, 2, {s, s, s, -s}));
}

void DynamicStatevector::apply_x(int wire) {
  // X is a pure amplitude swap: the swap-pass kernel with no phase
  // masks.  The swap reorders elements, so the norm fold is invalidated
  // (per-element norms survive, their fold order does not).
  fold_valid_ = false;
  const std::uint64_t xmask = std::uint64_t{1} << position(wire);
  kernels().pauli_swap_pass(amps_.data(), amps_.size(), xmask, 0, 0, false);
}

void DynamicStatevector::apply_z(int wire) {
  // Z only negates the bit-set half.  Per-element norms and their order
  // are untouched, so the fold stays valid.
  const std::uint64_t stride = std::uint64_t{1} << position(wire);
  kernels().sign_pass(amps_.data(), amps_.size(), stride, 0, false);
}

void DynamicStatevector::apply_rz(int wire, real theta) {
  // Dedicated diagonal-phase kernel: bit-identical amplitudes to
  // apply_1q(diag(1, e^{iθ})) on the touched half at a third of the
  // work, and the fold stays usable (see the fold_ contract note).
  const int q = position(wire);
  kernels().phase_pass(amps_.data(), amps_.size(), q, std::exp(kI * theta));
}

void DynamicStatevector::apply_cz(int wire_a, int wire_b) {
  MBQ_REQUIRE(wire_a != wire_b, "CZ needs two distinct wires");
  const std::uint64_t mask = (std::uint64_t{1} << position(wire_a)) |
                             (std::uint64_t{1} << position(wire_b));
  // Sign flips preserve per-element norms in place: fold stays valid.
  kernels().sign_pass(amps_.data(), amps_.size(), mask, 0, false);
}

void DynamicStatevector::apply_cz_depolarize(int wire_a, int wire_b, real p,
                                             Rng& rng) {
  if (p <= 0.0) {
    apply_cz(wire_a, wire_b);
    return;
  }
  // Draw the noise decisions first, in the order the sequential
  // composition (CZ, then per-wire Pauli checks for a, then b) would.
  // The draws are state-independent, so this preserves the rng stream;
  // every constituent operation is a sign flip or an index swap, so the
  // fused pass below is bit-identical to applying them one by one.
  std::uint64_t xmask = 0, zmask = 0;
  for (const int w : {wire_a, wire_b}) {
    if (!rng.bernoulli(p)) continue;
    const std::uint64_t m = std::uint64_t{1} << position(w);
    switch (rng.uniform_index(3)) {
      case 0: xmask ^= m; break;
      case 1: zmask ^= m; break;
      default:
        xmask ^= m;
        zmask ^= m;  // Y up to phase (X then Z)
        break;
    }
  }
  const std::uint64_t cz = (std::uint64_t{1} << position(wire_a)) |
                           (std::uint64_t{1} << position(wire_b));
  // Net operator Zmask · Xmask · CZ: new[j] = zs(j) · czs(j^xmask) ·
  // amps[j ^ xmask], where zs/czs are ±1 phases.
  if (xmask == 0) {
    kernels().sign_pass(amps_.data(), amps_.size(), cz, zmask, false);
    return;  // in-place sign pass: fold stays valid
  }
  fold_valid_ = false;  // swaps reorder the fold
  kernels().pauli_swap_pass(amps_.data(), amps_.size(), xmask, zmask, cz,
                            false);
}

void DynamicStatevector::add_wire_plus_cz(int wire,
                                          std::uint64_t partner_pos_mask) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const std::size_t old_dim = amps_.size();
  amps_.resize(old_dim * 2);
  // The fresh wire takes the TOP bit, so every fused CZ signs only the
  // upper half being written: sign(i) = parity of partner bits in i.
  // The kernel folds both halves with one carried accumulator set.
  fold_ = kernels().add_plus_cz(amps_.data(), old_dim, partner_pos_mask,
                                1.0 / std::sqrt(2.0));
  fold_valid_ = true;
  set_position(wire, static_cast<int>(order_.size()));
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::apply_cz_masks(const std::uint64_t* pair_masks,
                                        int count) {
  kernels().cz_masks_pass(amps_.data(), amps_.size(), pair_masks, count);
  // Pure sign pass: fold validity carries through untouched.
}

void DynamicStatevector::apply_pauli_masks(std::uint64_t xmask,
                                           std::uint64_t zmask, bool negate) {
  if (xmask == 0) {
    if (zmask == 0 && !negate) return;
    kernels().sign_pass(amps_.data(), amps_.size(), 0, zmask, negate);
    return;  // in-place sign pass: fold stays valid
  }
  fold_valid_ = false;
  kernels().pauli_swap_pass(amps_.data(), amps_.size(), xmask, zmask, 0,
                            negate);
}

int DynamicStatevector::prep_cz_measure(int wire,
                                        std::uint64_t partner_pos_mask,
                                        const Matrix& basis, Rng& rng,
                                        int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const std::size_t dim = amps_.size();
  // The wire exists only virtually: it would sit at the top position
  // with upper amplitude half up[i] = ±(amps[i] * s), the sign from the
  // fused CZ partners.  Probabilities, projections and the collapsed
  // state all derive from that relation, so the register never doubles
  // — the whole N;E...;M gadget block runs at the SMALL dimension.  The
  // Born denominator is the doubled register's canonical fold
  // (prep_total_fold: the scaled lower half folded twice, signs square
  // away), and the projection folds ride inside the collapse kernels.
  peak_live_ = std::max(peak_live_, num_live() + 1);
  scratch_.resize(dim);
  const real s = 1.0 / std::sqrt(2.0);
  const CollapseKernels& kn = kernels();

  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    const real total = std::norm(std::sqrt(kn.prep_total_fold(
        amps_.data(), dim, s)));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    const real p1 =
        kn.prep_collapse(amps_.data(), scratch_.data(), dim, partner_pos_mask,
                         std::conj(basis(0, 1)), std::conj(basis(1, 1)), s);
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;  // outcome 1: the projections are already in scratch_
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    nrm2 = kn.prep_collapse(amps_.data(), scratch_.data(), dim,
                            partner_pos_mask, std::conj(basis(0, outcome)),
                            std::conj(basis(1, outcome)), s);
  }
  MBQ_REQUIRE(nrm2 > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << wire
                                << " has zero probability");
  fold_ = kn.scale_fold(scratch_.data(), dim, 1.0 / std::sqrt(nrm2));
  std::swap(amps_, scratch_);
  fold_valid_ = true;
  return outcome;
}

int DynamicStatevector::prep_cz_teleport_measure(int new_wire,
                                                 std::uint64_t partner_pos_mask,
                                                 int meas_wire,
                                                 const Matrix& basis, Rng& rng,
                                                 int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(new_wire), "wire " << new_wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const int q = position(meas_wire);
  const std::size_t dim = amps_.size();
  // new_wire sits only VIRTUALLY at the top position: in the doubled
  // register its half-bit b selects between +s·amps[i] (b = 0) and
  // (-1)^{parity(i & partners)}·s·amps[i] (b = 1).  The collapsed state
  // indexed by the measurement pair rank IS the final wire layout (meas
  // gone, new_wire on top), so one kernel pass writes the result in
  // place of three passes over a doubled arena.  The Born denominator is
  // again prep_total_fold; the projection fold is a fresh canonical pass
  // over the collapsed scratch.
  peak_live_ = std::max(peak_live_, num_live() + 1);
  scratch_.resize(dim);
  const real s = 1.0 / std::sqrt(2.0);
  const CollapseKernels& kn = kernels();

  const auto project = [&](int m) {
    kn.teleport_collapse(amps_.data(), scratch_.data(), dim, q,
                         partner_pos_mask, std::conj(basis(0, m)),
                         std::conj(basis(1, m)), s);
    return kn.fold_norms(scratch_.data(), dim);
  };

  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    const real total = std::norm(std::sqrt(kn.prep_total_fold(
        amps_.data(), dim, s)));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    const real p1 = project(1);
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) nrm2 = project(outcome);
  MBQ_REQUIRE(nrm2 > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << meas_wire
                                << " has zero probability");
  fold_ = kn.scale_fold(scratch_.data(), dim, 1.0 / std::sqrt(nrm2));
  std::swap(amps_, scratch_);
  fold_valid_ = true;

  // Bookkeeping exactly as add-then-measure would leave it: meas_wire's
  // position vanishes, higher wires shift down, new_wire lands on top.
  order_.erase(order_.begin() + q);
  pos_[static_cast<std::size_t>(meas_wire)] = -1;
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[static_cast<std::size_t>(order_[i])] = static_cast<int>(i);
  set_position(new_wire, static_cast<int>(order_.size()));
  order_.push_back(new_wire);
  return outcome;
}

real DynamicStatevector::prob_one(int wire, const Matrix& basis) const {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  const int q = position(wire);
  const std::uint64_t stride = std::uint64_t{1} << q;
  // Effect for outcome m is <b_m| = conj(column m)^T.  Diagnostic path:
  // a plain sequential sweep is fine here, but the denominator must use
  // the canonical fold so it agrees bitwise with the sampling paths.
  const cplx e10 = std::conj(basis(0, 1));
  const cplx e11 = std::conj(basis(1, 1));
  real p1 = 0.0;
  const std::uint64_t pairs = amps_.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    p1 += std::norm(e10 * amps_[i0] + e11 * amps_[i0 | stride]);
  }
  const real total = std::norm(norm());
  MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
  return p1 / total;
}

int DynamicStatevector::measure_remove(int wire, const Matrix& basis, Rng& rng,
                                       int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  const int q = position(wire);
  const std::uint64_t pairs = amps_.size() / 2;
  scratch_.resize(pairs);
  const CollapseKernels& kn = kernels();

  // Collapsed projections land in scratch_, which then SWAPS with amps_:
  // the two buffers ping-pong across calls, so a reused simulator never
  // reallocates.  The sampled path fuses the outcome-1 probability fold
  // into its collapse kernel, saving a full pass whenever outcome 1 is
  // drawn; every fold is canonical, keeping outcomes and amplitudes
  // bit-identical across ISAs and across the fold-reuse fast path.
  int outcome;
  real nrm2 = 0.0;
  if (forced == -1) {
    // Denominator: a valid fold (maintained in canonical order by the
    // fused kernels and the collapse below) is bitwise the same sum a
    // fresh kernel pass computes, so the full pass is skipped.
    real total = fold_;
    if (!fold_valid_) total = kn.fold_norms(amps_.data(), amps_.size());
    total = std::norm(std::sqrt(total));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    const real p1 =
        kn.collapse_pairs(amps_.data(), scratch_.data(), pairs, q,
                          std::conj(basis(0, 1)), std::conj(basis(1, 1)));
    outcome = rng.bernoulli(p1 / total) ? 1 : 0;
    nrm2 = p1;  // outcome 1: the projections are already in scratch_
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    nrm2 = kn.collapse_pairs(amps_.data(), scratch_.data(), pairs, q,
                             std::conj(basis(0, outcome)),
                             std::conj(basis(1, outcome)));
  }
  MBQ_REQUIRE(nrm2 > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << wire
                                << " has zero probability");
  fold_ = kn.scale_fold(scratch_.data(), pairs, 1.0 / std::sqrt(nrm2));
  std::swap(amps_, scratch_);
  fold_valid_ = true;

  // Drop the wire and shift higher positions down.
  order_.erase(order_.begin() + q);
  pos_[static_cast<std::size_t>(wire)] = -1;
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[static_cast<std::size_t>(order_[i])] = static_cast<int>(i);
  return outcome;
}

void DynamicStatevector::fill_gather_table(const std::vector<int>& wires,
                                           GatherTable& table) const {
  MBQ_REQUIRE(wires.size() == order_.size(),
              "expected all " << order_.size() << " live wires, got "
                              << wires.size());
  table.src.resize(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i)
    table.src[i] = position(wires[i]);
  // Incrementing j flips its trailing bits 0..t; the source index flips
  // the corresponding source-position bits, so the gather advances with
  // one table lookup per element instead of re-composing every bit.
  table.flip.assign(wires.size() + 1, 0);
  for (std::size_t t = 0; t < table.src.size(); ++t)
    table.flip[t + 1] =
        table.flip[t] ^ (std::uint64_t{1} << table.src[t]);
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const GatherTable& table) const {
  MBQ_REQUIRE(table.src.size() == order_.size(),
              "gather table covers " << table.src.size() << " wires, "
                                     << order_.size() << " live");
  std::vector<cplx> out(amps_.size());
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    out[j] = amps_[from];
    if (++j >= out.size()) break;
    from ^= table.flip[std::countr_zero(j) + 1];
  }
  return out;
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const std::vector<int>& wires) const {
  GatherTable table;
  fill_gather_table(wires, table);
  return state_in_order(table);
}

std::uint64_t DynamicStatevector::sample_in_order(const GatherTable& table,
                                                  real u) const {
  MBQ_REQUIRE(table.src.size() == order_.size(),
              "gather table covers " << table.src.size() << " wires, "
                                     << order_.size() << " live");
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    u -= std::norm(amps_[from]);
    if (u <= 0.0 || j + 1 == amps_.size()) return j;
    ++j;
    from ^= table.flip[std::countr_zero(j) + 1];
  }
}

std::uint64_t DynamicStatevector::sample_in_order(const std::vector<int>& wires,
                                                  real u) const {
  GatherTable table;
  fill_gather_table(wires, table);
  return sample_in_order(table, u);
}

real DynamicStatevector::norm() const {
  return std::sqrt(kernels().fold_norms(amps_.data(), amps_.size()));
}

void DynamicStatevector::normalize() {
  const real nrm2 = kernels().fold_norms(amps_.data(), amps_.size());
  // Uniform Born-denominator guard (on |ψ|², like every sampling path;
  // this used to test |ψ| against the same 1e-14, an inconsistency the
  // named constants exist to prevent).
  MBQ_REQUIRE(nrm2 > kMinBornNorm2, "cannot normalize a zero state");
  fold_ = kernels().scale_fold(amps_.data(), amps_.size(),
                               1.0 / std::sqrt(nrm2));
  fold_valid_ = true;  // scale_fold refreshes the canonical fold
}

}  // namespace mbq
