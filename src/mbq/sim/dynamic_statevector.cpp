#include "mbq/sim/dynamic_statevector.h"

#include <algorithm>
#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/sim/collapse_kernels.h"
#include "mbq/sim/collapse_threaded.h"

namespace mbq {

namespace {

/// Narrow a basis-matrix entry to the register's element type.  For
/// R = double this is the identity, keeping the f64 paths bit-identical
/// to what they always computed.
template <class R>
std::complex<R> to_c(cplx v) noexcept {
  return {static_cast<R>(v.real()), static_cast<R>(v.imag())};
}

}  // namespace

Matrix measurement_basis(MeasBasis basis, real angle) {
  switch (basis) {
    case MeasBasis::Z:
      return Matrix::identity(2);
    case MeasBasis::X: {
      const real s = 1.0 / std::sqrt(2.0);
      return Matrix(2, 2, {s, s, s, -s});
    }
    case MeasBasis::XY: {
      const real s = 1.0 / std::sqrt(2.0);
      const cplx e = std::exp(kI * angle);
      return Matrix(2, 2, {s, s, s * e, -s * e});
    }
    case MeasBasis::YZ: {
      const cplx c = std::cos(angle / 2);
      const cplx is = kI * std::sin(angle / 2);
      return Matrix(2, 2, {c, is, is, c});
    }
  }
  throw InternalError("unknown measurement basis");
}

template <class R>
void DynamicStatevector::reset_impl() {
  auto& a = amps<R>();
  a.clear();
  a.push_back(std::complex<R>{R(1), R(0)});
}

void DynamicStatevector::reset() {
  if (prec_ == Precision::F64)
    reset_impl<double>();
  else
    reset_impl<float>();
  // Clear only the live entries; pos_ keeps its capacity so the next
  // shot re-registers wires without touching the allocator.
  for (const int w : order_) pos_[static_cast<std::size_t>(w)] = -1;
  order_.clear();
  peak_live_ = 0;
  fold_ = 1.0;
  fold_valid_ = true;
}

int DynamicStatevector::position(int wire) const {
  MBQ_REQUIRE(has_wire(wire), "wire " << wire << " is not live");
  return pos_[static_cast<std::size_t>(wire)];
}

void DynamicStatevector::set_position(int wire, int p) {
  MBQ_REQUIRE(wire >= 0, "wire ids must be non-negative, got " << wire);
  if (static_cast<std::size_t>(wire) >= pos_.size())
    pos_.resize(static_cast<std::size_t>(wire) + 1, -1);
  pos_[static_cast<std::size_t>(wire)] = p;
}

template <class R>
void DynamicStatevector::add_wire_impl(bool plus) {
  auto& a = amps<R>();
  const std::size_t old_dim = a.size();
  a.resize(old_dim * 2);
  if (plus) {
    const R s = static_cast<R>(1.0 / std::sqrt(2.0));
    for (std::size_t i = 0; i < old_dim; ++i) {
      a[i] *= s;
      a[old_dim + i] = a[i];
    }
  } else {
    std::fill(a.begin() + static_cast<std::ptrdiff_t>(old_dim), a.end(),
              std::complex<R>{});
  }
}

void DynamicStatevector::add_wire(int wire, bool plus) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  fold_valid_ = false;
  if (prec_ == Precision::F64)
    add_wire_impl<double>(plus);
  else
    add_wire_impl<float>(plus);
  set_position(wire, static_cast<int>(order_.size()));
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

void DynamicStatevector::add_wire_state(int wire, cplx a0, cplx a1) {
  const real nrm = std::sqrt(std::norm(a0) + std::norm(a1));
  MBQ_REQUIRE(nrm > kMinAddWireNorm, "cannot add a wire in the zero state");
  add_wire(wire, false);  // |0>
  // Rotate |0> to the target state with a unitary whose first column is
  // the (normalized) state.
  const cplx b0 = a0 / nrm;
  const cplx b1 = a1 / nrm;
  apply_1q(wire, Matrix(2, 2, {b0, -std::conj(b1), b1, std::conj(b0)}));
}

template <class R>
void DynamicStatevector::apply_1q_impl(int q, const Matrix& u) {
  auto& a = amps<R>();
  using C = std::complex<R>;
  const std::uint64_t stride = std::uint64_t{1} << q;
  const C u00 = to_c<R>(u(0, 0)), u01 = to_c<R>(u(0, 1));
  const C u10 = to_c<R>(u(1, 0)), u11 = to_c<R>(u(1, 1));
  const std::uint64_t pairs = a.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    const std::uint64_t i1 = i0 | stride;
    const C a0 = a[i0];
    const C a1 = a[i1];
    a[i0] = u00 * a0 + u01 * a1;
    a[i1] = u10 * a0 + u11 * a1;
  }
}

void DynamicStatevector::apply_1q(int wire, const Matrix& u) {
  MBQ_REQUIRE(u.rows() == 2 && u.cols() == 2, "apply_1q needs 2x2");
  fold_valid_ = false;
  const int q = position(wire);
  if (prec_ == Precision::F64)
    apply_1q_impl<double>(q, u);
  else
    apply_1q_impl<float>(q, u);
}

void DynamicStatevector::apply_h(int wire) {
  const real s = 1.0 / std::sqrt(2.0);
  apply_1q(wire, Matrix(2, 2, {s, s, s, -s}));
}

template <class R>
void DynamicStatevector::apply_x_impl(std::uint64_t xmask) {
  auto& a = amps<R>();
  thr::pauli_swap_pass(kernels_t<R>(), a.data(), a.size(), xmask, 0, 0, false,
                       thr::kernel_threads());
}

void DynamicStatevector::apply_x(int wire) {
  // X is a pure amplitude swap: the swap-pass kernel with no phase
  // masks.  The swap reorders elements, so the norm fold is invalidated
  // (per-element norms survive, their fold order does not).
  fold_valid_ = false;
  const std::uint64_t xmask = std::uint64_t{1} << position(wire);
  if (prec_ == Precision::F64)
    apply_x_impl<double>(xmask);
  else
    apply_x_impl<float>(xmask);
}

template <class R>
void DynamicStatevector::sign_pass_impl(std::uint64_t eq_mask,
                                        std::uint64_t par_mask, bool negate) {
  auto& a = amps<R>();
  thr::sign_pass(kernels_t<R>(), a.data(), a.size(), eq_mask, par_mask, negate,
                 thr::kernel_threads());
}

void DynamicStatevector::apply_z(int wire) {
  // Z only negates the bit-set half.  Per-element norms and their order
  // are untouched, so the fold stays valid.
  const std::uint64_t stride = std::uint64_t{1} << position(wire);
  if (prec_ == Precision::F64)
    sign_pass_impl<double>(stride, 0, false);
  else
    sign_pass_impl<float>(stride, 0, false);
}

template <class R>
void DynamicStatevector::apply_rz_impl(int q, cplx e) {
  auto& a = amps<R>();
  thr::phase_pass(kernels_t<R>(), a.data(), a.size(), q, to_c<R>(e),
                  thr::kernel_threads());
}

void DynamicStatevector::apply_rz(int wire, real theta) {
  // Dedicated diagonal-phase kernel: bit-identical amplitudes to
  // apply_1q(diag(1, e^{iθ})) on the touched half at a third of the
  // work, and the fold stays usable (see the fold_ contract note).
  const int q = position(wire);
  if (prec_ == Precision::F64)
    apply_rz_impl<double>(q, std::exp(kI * theta));
  else
    apply_rz_impl<float>(q, std::exp(kI * theta));
}

void DynamicStatevector::apply_cz(int wire_a, int wire_b) {
  MBQ_REQUIRE(wire_a != wire_b, "CZ needs two distinct wires");
  const std::uint64_t mask = (std::uint64_t{1} << position(wire_a)) |
                             (std::uint64_t{1} << position(wire_b));
  // Sign flips preserve per-element norms in place: fold stays valid.
  if (prec_ == Precision::F64)
    sign_pass_impl<double>(mask, 0, false);
  else
    sign_pass_impl<float>(mask, 0, false);
}

template <class R>
void DynamicStatevector::pauli_swap_impl(std::uint64_t xmask,
                                         std::uint64_t zmask,
                                         std::uint64_t eq_mask, bool negate) {
  auto& a = amps<R>();
  thr::pauli_swap_pass(kernels_t<R>(), a.data(), a.size(), xmask, zmask,
                       eq_mask, negate, thr::kernel_threads());
}

void DynamicStatevector::apply_cz_depolarize(int wire_a, int wire_b, real p,
                                             Rng& rng) {
  if (p <= 0.0) {
    apply_cz(wire_a, wire_b);
    return;
  }
  // Draw the noise decisions first, in the order the sequential
  // composition (CZ, then per-wire Pauli checks for a, then b) would.
  // The draws are state-independent, so this preserves the rng stream;
  // every constituent operation is a sign flip or an index swap, so the
  // fused pass below is bit-identical to applying them one by one.
  std::uint64_t xmask = 0, zmask = 0;
  for (const int w : {wire_a, wire_b}) {
    if (!rng.bernoulli(p)) continue;
    const std::uint64_t m = std::uint64_t{1} << position(w);
    switch (rng.uniform_index(3)) {
      case 0: xmask ^= m; break;
      case 1: zmask ^= m; break;
      default:
        xmask ^= m;
        zmask ^= m;  // Y up to phase (X then Z)
        break;
    }
  }
  const std::uint64_t cz = (std::uint64_t{1} << position(wire_a)) |
                           (std::uint64_t{1} << position(wire_b));
  // Net operator Zmask · Xmask · CZ: new[j] = zs(j) · czs(j^xmask) ·
  // amps[j ^ xmask], where zs/czs are ±1 phases.
  if (xmask == 0) {
    if (prec_ == Precision::F64)
      sign_pass_impl<double>(cz, zmask, false);
    else
      sign_pass_impl<float>(cz, zmask, false);
    return;  // in-place sign pass: fold stays valid
  }
  fold_valid_ = false;  // swaps reorder the fold
  if (prec_ == Precision::F64)
    pauli_swap_impl<double>(xmask, zmask, cz, false);
  else
    pauli_swap_impl<float>(xmask, zmask, cz, false);
}

template <class R>
void DynamicStatevector::add_plus_cz_impl(std::uint64_t partner_pos_mask) {
  auto& a = amps<R>();
  const std::uint64_t old_dim = a.size();
  a.resize(old_dim * 2);
  // The fresh wire takes the TOP bit, so every fused CZ signs only the
  // upper half being written: sign(i) = parity of partner bits in i.
  // The chunked driver folds both halves under the global contract.
  fold_ = static_cast<real>(thr::add_plus_cz(
      kernels_t<R>(), a.data(), old_dim, partner_pos_mask,
      static_cast<R>(1.0 / std::sqrt(2.0)), thr::kernel_threads()));
}

void DynamicStatevector::add_wire_plus_cz(int wire,
                                          std::uint64_t partner_pos_mask) {
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  if (prec_ == Precision::F64)
    add_plus_cz_impl<double>(partner_pos_mask);
  else
    add_plus_cz_impl<float>(partner_pos_mask);
  fold_valid_ = true;
  set_position(wire, static_cast<int>(order_.size()));
  order_.push_back(wire);
  peak_live_ = std::max(peak_live_, num_live());
}

template <class R>
void DynamicStatevector::cz_masks_impl(const std::uint64_t* pair_masks,
                                       int count) {
  auto& a = amps<R>();
  thr::cz_masks_pass(kernels_t<R>(), a.data(), a.size(), pair_masks, count,
                     thr::kernel_threads());
}

void DynamicStatevector::apply_cz_masks(const std::uint64_t* pair_masks,
                                        int count) {
  if (prec_ == Precision::F64)
    cz_masks_impl<double>(pair_masks, count);
  else
    cz_masks_impl<float>(pair_masks, count);
  // Pure sign pass: fold validity carries through untouched.
}

void DynamicStatevector::apply_pauli_masks(std::uint64_t xmask,
                                           std::uint64_t zmask, bool negate) {
  if (xmask == 0) {
    if (zmask == 0 && !negate) return;
    if (prec_ == Precision::F64)
      sign_pass_impl<double>(0, zmask, negate);
    else
      sign_pass_impl<float>(0, zmask, negate);
    return;  // in-place sign pass: fold stays valid
  }
  fold_valid_ = false;
  if (prec_ == Precision::F64)
    pauli_swap_impl<double>(xmask, zmask, 0, negate);
  else
    pauli_swap_impl<float>(xmask, zmask, 0, negate);
}

template <class R>
int DynamicStatevector::prep_cz_measure_impl(std::uint64_t partner_pos_mask,
                                             const Matrix& basis, Rng& rng,
                                             int forced, int wire) {
  auto& a = amps<R>();
  auto& sc = scratch<R>();
  const std::uint64_t dim = a.size();
  sc.resize(dim);
  const R s = static_cast<R>(1.0 / std::sqrt(2.0));
  const CollapseKernelsT<R>& kn = kernels_t<R>();
  const int threads = thr::kernel_threads();

  int outcome;
  R nrm2 = R(0);
  if (forced == -1) {
    // Fused blocked pass: the Born denominator (the doubled register's
    // canonical fold) and the outcome-1 projection are computed chunk by
    // chunk from ONE read of the register instead of two streamed
    // passes — the cache-blocking win at large dim.
    const auto f = thr::prep_collapse_with_total(
        kn, a.data(), sc.data(), dim, partner_pos_mask,
        to_c<R>(std::conj(basis(0, 1))), to_c<R>(std::conj(basis(1, 1))), s,
        threads);
    const real total =
        std::norm(std::sqrt(static_cast<real>(f.total)));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    outcome = rng.bernoulli(static_cast<real>(f.proj) / total) ? 1 : 0;
    nrm2 = f.proj;  // outcome 1: the projections are already in scratch
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    nrm2 = thr::prep_collapse(kn, a.data(), sc.data(), dim, partner_pos_mask,
                              to_c<R>(std::conj(basis(0, outcome))),
                              to_c<R>(std::conj(basis(1, outcome))), s,
                              threads);
  }
  MBQ_REQUIRE(static_cast<real>(nrm2) > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << wire
                                << " has zero probability");
  fold_ = static_cast<real>(thr::scale_fold(
      kn, sc.data(), dim,
      static_cast<R>(1.0 / std::sqrt(static_cast<real>(nrm2))), threads));
  std::swap(a, sc);
  fold_valid_ = true;
  return outcome;
}

int DynamicStatevector::prep_cz_measure(int wire,
                                        std::uint64_t partner_pos_mask,
                                        const Matrix& basis, Rng& rng,
                                        int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(wire), "wire " << wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  // The wire exists only virtually: it would sit at the top position
  // with upper amplitude half up[i] = ±(amps[i] * s), the sign from the
  // fused CZ partners.  Probabilities, projections and the collapsed
  // state all derive from that relation, so the register never doubles
  // — the whole N;E...;M gadget block runs at the SMALL dimension.
  peak_live_ = std::max(peak_live_, num_live() + 1);
  return prec_ == Precision::F64
             ? prep_cz_measure_impl<double>(partner_pos_mask, basis, rng,
                                            forced, wire)
             : prep_cz_measure_impl<float>(partner_pos_mask, basis, rng,
                                           forced, wire);
}

template <class R>
int DynamicStatevector::teleport_measure_impl(std::uint64_t partner_pos_mask,
                                              int q, const Matrix& basis,
                                              Rng& rng, int forced,
                                              int meas_wire) {
  auto& a = amps<R>();
  auto& sc = scratch<R>();
  const std::uint64_t dim = a.size();
  sc.resize(dim);
  const R s = static_cast<R>(1.0 / std::sqrt(2.0));
  const CollapseKernelsT<R>& kn = kernels_t<R>();
  const int threads = thr::kernel_threads();

  // Projection fold fused into the collapse pass (the chunked driver
  // folds each out block as it is written instead of re-reading the
  // whole vector afterwards).
  const auto project = [&](int m) {
    return thr::teleport_collapse_fold(kn, a.data(), sc.data(), dim, q,
                                       partner_pos_mask,
                                       to_c<R>(std::conj(basis(0, m))),
                                       to_c<R>(std::conj(basis(1, m))), s,
                                       threads);
  };

  int outcome;
  R nrm2 = R(0);
  if (forced == -1) {
    const real total = std::norm(std::sqrt(static_cast<real>(
        thr::prep_total_fold(kn, a.data(), dim, s, threads))));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    const R p1 = project(1);
    outcome = rng.bernoulli(static_cast<real>(p1) / total) ? 1 : 0;
    nrm2 = p1;
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) nrm2 = project(outcome);
  MBQ_REQUIRE(static_cast<real>(nrm2) > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << meas_wire
                                << " has zero probability");
  fold_ = static_cast<real>(thr::scale_fold(
      kn, sc.data(), dim,
      static_cast<R>(1.0 / std::sqrt(static_cast<real>(nrm2))), threads));
  std::swap(a, sc);
  fold_valid_ = true;
  return outcome;
}

int DynamicStatevector::prep_cz_teleport_measure(int new_wire,
                                                 std::uint64_t partner_pos_mask,
                                                 int meas_wire,
                                                 const Matrix& basis, Rng& rng,
                                                 int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  MBQ_REQUIRE(!has_wire(new_wire), "wire " << new_wire << " already live");
  MBQ_REQUIRE(order_.size() < 28, "too many live wires");
  const int q = position(meas_wire);
  // new_wire sits only VIRTUALLY at the top position: in the doubled
  // register its half-bit b selects between +s·amps[i] (b = 0) and
  // (-1)^{parity(i & partners)}·s·amps[i] (b = 1).  The collapsed state
  // indexed by the measurement pair rank IS the final wire layout (meas
  // gone, new_wire on top), so one kernel pass writes the result in
  // place of three passes over a doubled arena.
  peak_live_ = std::max(peak_live_, num_live() + 1);
  const int outcome =
      prec_ == Precision::F64
          ? teleport_measure_impl<double>(partner_pos_mask, q, basis, rng,
                                          forced, meas_wire)
          : teleport_measure_impl<float>(partner_pos_mask, q, basis, rng,
                                         forced, meas_wire);

  // Bookkeeping exactly as add-then-measure would leave it: meas_wire's
  // position vanishes, higher wires shift down, new_wire lands on top.
  order_.erase(order_.begin() + q);
  pos_[static_cast<std::size_t>(meas_wire)] = -1;
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[static_cast<std::size_t>(order_[i])] = static_cast<int>(i);
  set_position(new_wire, static_cast<int>(order_.size()));
  order_.push_back(new_wire);
  return outcome;
}

template <class R>
real DynamicStatevector::prob_one_impl(int q, const Matrix& basis) const {
  const auto& a = amps<R>();
  using C = std::complex<R>;
  const std::uint64_t stride = std::uint64_t{1} << q;
  // Effect for outcome m is <b_m| = conj(column m)^T.  Diagnostic path:
  // a plain sequential sweep is fine here, but the denominator must use
  // the canonical fold so it agrees bitwise with the sampling paths.
  const C e10 = to_c<R>(std::conj(basis(0, 1)));
  const C e11 = to_c<R>(std::conj(basis(1, 1)));
  real p1 = 0.0;
  const std::uint64_t pairs = a.size() / 2;
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, q);
    p1 += static_cast<real>(std::norm(e10 * a[i0] + e11 * a[i0 | stride]));
  }
  const real total = std::norm(norm());
  MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
  return p1 / total;
}

real DynamicStatevector::prob_one(int wire, const Matrix& basis) const {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  const int q = position(wire);
  return prec_ == Precision::F64 ? prob_one_impl<double>(q, basis)
                                 : prob_one_impl<float>(q, basis);
}

template <class R>
int DynamicStatevector::measure_remove_impl(int q, const Matrix& basis,
                                            Rng& rng, int forced, int wire) {
  auto& a = amps<R>();
  auto& sc = scratch<R>();
  const std::uint64_t pairs = a.size() / 2;
  sc.resize(pairs);
  const CollapseKernelsT<R>& kn = kernels_t<R>();
  const int threads = thr::kernel_threads();

  // Collapsed projections land in scratch, which then SWAPS with amps:
  // the two buffers ping-pong across calls, so a reused simulator never
  // reallocates.  The sampled path fuses the outcome-1 probability fold
  // into its collapse pass; when the running fold is stale it fuses the
  // denominator fold in as well (collapse_pairs_with_total), reading
  // each source block once.  Every fold is canonical, keeping outcomes
  // and amplitudes bit-identical across ISAs, thread counts and the
  // fold-reuse fast path.
  int outcome;
  R nrm2 = R(0);
  if (forced == -1) {
    real total;
    R p1;
    if (fold_valid_) {
      // A valid fold (maintained under the global chunk contract) is
      // bitwise the same sum a fresh driver pass computes.
      total = fold_;
      p1 = thr::collapse_pairs(kn, a.data(), sc.data(), pairs, q,
                               to_c<R>(std::conj(basis(0, 1))),
                               to_c<R>(std::conj(basis(1, 1))), threads);
    } else {
      const auto f = thr::collapse_pairs_with_total(
          kn, a.data(), sc.data(), pairs, q, to_c<R>(std::conj(basis(0, 1))),
          to_c<R>(std::conj(basis(1, 1))), threads);
      total = static_cast<real>(f.total);
      p1 = f.proj;
    }
    total = std::norm(std::sqrt(total));
    MBQ_REQUIRE(total > kMinBornNorm2, "zero state");
    outcome = rng.bernoulli(static_cast<real>(p1) / total) ? 1 : 0;
    nrm2 = p1;  // outcome 1: the projections are already in scratch
  } else {
    outcome = forced;
  }
  if (outcome != 1 || forced != -1) {
    nrm2 = thr::collapse_pairs(kn, a.data(), sc.data(), pairs, q,
                               to_c<R>(std::conj(basis(0, outcome))),
                               to_c<R>(std::conj(basis(1, outcome))), threads);
  }
  MBQ_REQUIRE(static_cast<real>(nrm2) > kMinProjectionNorm2,
              "forced outcome " << outcome << " on wire " << wire
                                << " has zero probability");
  fold_ = static_cast<real>(thr::scale_fold(
      kn, sc.data(), pairs,
      static_cast<R>(1.0 / std::sqrt(static_cast<real>(nrm2))), threads));
  std::swap(a, sc);
  fold_valid_ = true;
  return outcome;
}

int DynamicStatevector::measure_remove(int wire, const Matrix& basis, Rng& rng,
                                       int forced) {
  MBQ_REQUIRE(basis.rows() == 2 && basis.cols() == 2, "basis must be 2x2");
  MBQ_REQUIRE(forced >= -1 && forced <= 1, "forced outcome must be -1/0/1");
  const int q = position(wire);
  const int outcome =
      prec_ == Precision::F64
          ? measure_remove_impl<double>(q, basis, rng, forced, wire)
          : measure_remove_impl<float>(q, basis, rng, forced, wire);

  // Drop the wire and shift higher positions down.
  order_.erase(order_.begin() + q);
  pos_[static_cast<std::size_t>(wire)] = -1;
  for (std::size_t i = static_cast<std::size_t>(q); i < order_.size(); ++i)
    pos_[static_cast<std::size_t>(order_[i])] = static_cast<int>(i);
  return outcome;
}

void DynamicStatevector::fill_gather_table(const std::vector<int>& wires,
                                           GatherTable& table) const {
  MBQ_REQUIRE(wires.size() == order_.size(),
              "expected all " << order_.size() << " live wires, got "
                              << wires.size());
  table.src.resize(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i)
    table.src[i] = position(wires[i]);
  // Incrementing j flips its trailing bits 0..t; the source index flips
  // the corresponding source-position bits, so the gather advances with
  // one table lookup per element instead of re-composing every bit.
  table.flip.assign(wires.size() + 1, 0);
  for (std::size_t t = 0; t < table.src.size(); ++t)
    table.flip[t + 1] =
        table.flip[t] ^ (std::uint64_t{1} << table.src[t]);
}

template <class R>
std::vector<cplx> DynamicStatevector::state_in_order_impl(
    const GatherTable& table) const {
  const auto& a = amps<R>();
  // Widened to cplx on read: the reference-comparison helpers stay
  // precision-agnostic (float -> double widening is exact).
  std::vector<cplx> out(a.size());
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    out[j] = cplx(a[from]);
    if (++j >= out.size()) break;
    from ^= table.flip[std::countr_zero(j) + 1];
  }
  return out;
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const GatherTable& table) const {
  MBQ_REQUIRE(table.src.size() == order_.size(),
              "gather table covers " << table.src.size() << " wires, "
                                     << order_.size() << " live");
  return prec_ == Precision::F64 ? state_in_order_impl<double>(table)
                                 : state_in_order_impl<float>(table);
}

std::vector<cplx> DynamicStatevector::state_in_order(
    const std::vector<int>& wires) const {
  GatherTable table;
  fill_gather_table(wires, table);
  return state_in_order(table);
}

template <class R>
std::uint64_t DynamicStatevector::sample_in_order_impl(const GatherTable& table,
                                                       real u) const {
  const auto& a = amps<R>();
  std::uint64_t from = 0;
  for (std::uint64_t j = 0;;) {
    u -= static_cast<real>(std::norm(a[from]));
    if (u <= 0.0 || j + 1 == a.size()) return j;
    ++j;
    from ^= table.flip[std::countr_zero(j) + 1];
  }
}

std::uint64_t DynamicStatevector::sample_in_order(const GatherTable& table,
                                                  real u) const {
  MBQ_REQUIRE(table.src.size() == order_.size(),
              "gather table covers " << table.src.size() << " wires, "
                                     << order_.size() << " live");
  return prec_ == Precision::F64 ? sample_in_order_impl<double>(table, u)
                                 : sample_in_order_impl<float>(table, u);
}

std::uint64_t DynamicStatevector::sample_in_order(const std::vector<int>& wires,
                                                  real u) const {
  GatherTable table;
  fill_gather_table(wires, table);
  return sample_in_order(table, u);
}

template <class R>
real DynamicStatevector::norm_impl() const {
  const auto& a = amps<R>();
  return std::sqrt(static_cast<real>(thr::fold_norms(
      kernels_t<R>(), a.data(), a.size(), thr::kernel_threads())));
}

real DynamicStatevector::norm() const {
  return prec_ == Precision::F64 ? norm_impl<double>() : norm_impl<float>();
}

template <class R>
void DynamicStatevector::normalize_impl() {
  auto& a = amps<R>();
  const CollapseKernelsT<R>& kn = kernels_t<R>();
  const int threads = thr::kernel_threads();
  const R nrm2 = thr::fold_norms(kn, a.data(), a.size(), threads);
  // Uniform Born-denominator guard (on |ψ|², like every sampling path;
  // this used to test |ψ| against the same 1e-14, an inconsistency the
  // named constants exist to prevent).
  MBQ_REQUIRE(static_cast<real>(nrm2) > kMinBornNorm2,
              "cannot normalize a zero state");
  fold_ = static_cast<real>(thr::scale_fold(
      kn, a.data(), a.size(),
      static_cast<R>(1.0 / std::sqrt(static_cast<real>(nrm2))), threads));
  fold_valid_ = true;  // scale_fold refreshes the canonical fold
}

void DynamicStatevector::normalize() {
  if (prec_ == Precision::F64)
    normalize_impl<double>();
  else
    normalize_impl<float>();
}

}  // namespace mbq
