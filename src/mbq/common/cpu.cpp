#include "mbq/common/cpu.h"

#include <cstdlib>

#include "mbq/common/error.h"

namespace mbq {

const char* isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Scalar: return "scalar";
    case SimdIsa::Avx2: return "avx2";
    case SimdIsa::Avx512: return "avx512";
    case SimdIsa::Neon: return "neon";
  }
  return "?";
}

SimdIsa parse_simd_isa(const std::string& name) {
  if (name == "scalar") return SimdIsa::Scalar;
  if (name == "avx2") return SimdIsa::Avx2;
  if (name == "avx512") return SimdIsa::Avx512;
  if (name == "neon") return SimdIsa::Neon;
  throw Error("unknown SIMD flavor '" + name +
              "' (expected auto, scalar, avx2, avx512, or neon)");
}

bool host_supports_isa(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Scalar:
      return true;
    case SimdIsa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdIsa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
      // F is the only extension the kernels use (no DQ/BW/VL); the
      // sign-bit xors go through the 512-bit integer domain on purpose.
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case SimdIsa::Neon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is mandatory on AArch64.
#else
      return false;
#endif
  }
  return false;
}

std::optional<SimdIsa> simd_env_override() {
  const char* env = std::getenv("MBQ_SIMD");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const std::string value(env);
  if (value == "auto") return std::nullopt;
  try {
    return parse_simd_isa(value);
  } catch (const Error&) {
    throw Error("MBQ_SIMD=" + value +
                " is not a recognized value (expected auto, scalar, avx2, "
                "avx512, or neon)");
  }
}

}  // namespace mbq
