#pragma once
// Wall-clock timing for the experiment harnesses.

#include <chrono>

#include "mbq/common/types.h"

namespace mbq {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  real seconds() const {
    return std::chrono::duration<real>(clock::now() - start_).count();
  }
  real milliseconds() const { return seconds() * 1e3; }
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mbq
