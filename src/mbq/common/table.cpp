#include "mbq/common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "mbq/common/error.h"

namespace mbq {

std::string format_real(real v, int precision) {
  std::ostringstream oss;
  oss << std::setprecision(precision) << v;
  return oss.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  MBQ_REQUIRE(!columns_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) check_complete_row();
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  MBQ_REQUIRE(!rows_.empty(), "call row() before add()");
  MBQ_REQUIRE(rows_.back().size() < columns_.size(),
              "row already has " << columns_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(real v, int precision) { return add(format_real(v, precision)); }
Table& Table::add(bool v) { return add(std::string(v ? "yes" : "no")); }

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  MBQ_REQUIRE(r < rows_.size(), "row index out of range: " << r);
  MBQ_REQUIRE(c < rows_[r].size(), "column index out of range: " << c);
  return rows_[r][c];
}

void Table::check_complete_row() const {
  MBQ_REQUIRE(rows_.back().size() == columns_.size(),
              "incomplete table row: got " << rows_.back().size()
                                           << " cells, expected "
                                           << columns_.size());
}

std::string Table::markdown() const {
  if (!rows_.empty()) check_complete_row();
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    oss << "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      oss << " " << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    oss << "\n";
  };
  emit_row(columns_);
  oss << "|";
  for (std::size_t c = 0; c < columns_.size(); ++c)
    oss << std::string(width[c] + 2, '-') << "|";
  oss << "\n";
  for (const auto& r : rows_) emit_row(r);
  return oss.str();
}

std::string Table::csv() const {
  if (!rows_.empty()) check_complete_row();
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    oss << (c ? "," : "") << quote(columns_[c]);
  oss << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      oss << (c ? "," : "") << quote(r[c]);
    oss << "\n";
  }
  return oss.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "### " << title << "\n\n";
  os << markdown() << "\n";
}

}  // namespace mbq
