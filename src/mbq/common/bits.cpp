#include "mbq/common/bits.h"

namespace mbq {

std::vector<int> bits_of(std::uint64_t x, int n) {
  MBQ_REQUIRE(n >= 0 && n <= 64, "bit count out of range: " << n);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[i] = get_bit(x, i);
  return out;
}

std::uint64_t index_of(const std::vector<int>& bits) {
  MBQ_REQUIRE(bits.size() <= 64, "too many bits: " << bits.size());
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    MBQ_REQUIRE(bits[i] == 0 || bits[i] == 1,
                "bit " << i << " is not 0/1: " << bits[i]);
    x = set_bit(x, static_cast<int>(i), bits[i]);
  }
  return x;
}

std::string bitstring(std::uint64_t x, int n) {
  std::string s;
  s.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) s.push_back(get_bit(x, i) ? '1' : '0');
  return s;
}

std::uint64_t parse_bitstring(const std::string& s) {
  MBQ_REQUIRE(s.size() <= 64, "bitstring too long: " << s.size());
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    MBQ_REQUIRE(s[i] == '0' || s[i] == '1',
                "invalid character in bitstring: '" << s[i] << "'");
    x = set_bit(x, static_cast<int>(i), s[i] == '1');
  }
  return x;
}

}  // namespace mbq
