#include "mbq/common/parallel.h"

namespace mbq {

int num_threads() noexcept {
#ifdef MBQ_HAS_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) noexcept {
#ifdef MBQ_HAS_OPENMP
  // Captured on first use, before any override can have taken effect.
  static const int default_threads = omp_get_max_threads();
  omp_set_num_threads(n >= 1 ? n : default_threads);
#else
  (void)n;
#endif
}

}  // namespace mbq
