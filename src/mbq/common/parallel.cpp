#include "mbq/common/parallel.h"

namespace mbq {

namespace {

#ifdef MBQ_HAS_OPENMP
/// The startup thread count, captured during static initialization —
/// i.e. before main() and therefore before any set_num_threads override
/// can run.  The previous implementation captured it lazily inside
/// set_num_threads, so when the FIRST call was already an override
/// (set_num_threads(2)), some OpenMP runtimes reported the overridden
/// max back and "restore default" then restored the override instead of
/// the build default.
const int kStartupThreads = omp_get_max_threads();
#endif

}  // namespace

int default_num_threads() noexcept {
#ifdef MBQ_HAS_OPENMP
  return kStartupThreads;
#else
  return 1;
#endif
}

int num_threads() noexcept {
#ifdef MBQ_HAS_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) noexcept {
#ifdef MBQ_HAS_OPENMP
  omp_set_num_threads(n >= 1 ? n : default_num_threads());
#else
  (void)n;
#endif
}

}  // namespace mbq
