#include "mbq/common/parallel.h"

namespace mbq {

int num_threads() noexcept {
#ifdef MBQ_HAS_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace mbq
