#pragma once
// Flat binary serialization for the process-sharding wire protocol.
//
// ByteWriter appends fixed-width little-endian primitives to a growable
// buffer; ByteReader walks one back with hard bounds checks (a truncated
// or corrupt frame throws Error instead of reading garbage).  real values
// round-trip through their IEEE-754 bit pattern, so a value decoded in a
// worker process is BIT-identical to the one encoded by the parent — the
// property the sharded determinism contract rests on.
//
// The format carries no type tags or versioning beyond what callers
// encode themselves: both ends of the pipe are the same build of this
// library (the parent fork/execs its own `mbq_worker`), so schema
// evolution is a non-goal.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mbq/common/error.h"
#include "mbq/common/types.h"

namespace mbq {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

  /// Exact IEEE-754 bit pattern; decoding reproduces the value bit-wise.
  void f64(real v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  void f64_vec(std::span<const real> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const real x : v) f64(x);
  }

  void u64_vec(std::span<const std::uint64_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) u64(x);
  }

  void i32_vec(std::span<const int> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const int x : v) i32(x);
  }

  const std::vector<std::byte>& data() const noexcept { return buf_; }
  std::vector<std::byte> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  real f64() { return std::bit_cast<real>(u64()); }

  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(len, '\0');
    for (std::uint32_t i = 0; i < len; ++i)
      s[i] = static_cast<char>(data_[pos_ + i]);
    pos_ += len;
    return s;
  }

  std::vector<real> f64_vec() {
    // Validate the (untrusted) length against the remaining bytes BEFORE
    // allocating: a corrupt prefix must throw Error, not bad_alloc.
    const std::uint32_t len = u32();
    need(std::size_t{len} * 8);
    std::vector<real> v(len);
    for (auto& x : v) x = f64();
    return v;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint32_t len = u32();
    need(std::size_t{len} * 8);
    std::vector<std::uint64_t> v(len);
    for (auto& x : v) x = u64();
    return v;
  }

  std::vector<int> i32_vec() {
    const std::uint32_t len = u32();
    need(std::size_t{len} * 4);
    std::vector<int> v(len);
    for (auto& x : v) x = i32();
    return v;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    MBQ_REQUIRE(data_.size() - pos_ >= n,
                "truncated message: wanted " << n << " more bytes, have "
                                             << (data_.size() - pos_));
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

static_assert(sizeof(real) == sizeof(std::uint64_t),
              "f64 wire format assumes 64-bit real");

}  // namespace mbq
