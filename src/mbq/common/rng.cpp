#include "mbq/common/rng.h"

#include <cmath>

namespace mbq {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // A state of all zeros is invalid for xoshiro; splitmix64 cannot produce
  // four zero outputs in a row, but guard against it regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

real Rng::uniform() noexcept {
  // 53-bit mantissa construction gives uniform doubles in [0, 1).
  return static_cast<real>(next() >> 11) * 0x1.0p-53;
}

real Rng::uniform(real lo, real hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation.
  if (n == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::coin() noexcept { return (next() >> 63) != 0; }

bool Rng::bernoulli(real p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

real Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  real u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const real f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  have_cached_normal_ = true;
  return u * f;
}

real Rng::angle() noexcept { return uniform(-kPi, kPi); }

Rng Rng::split() noexcept {
  Rng child(next() ^ 0xA5A5A5A5A5A5A5A5ULL);
  return child;
}

Rng Rng::stream(std::uint64_t index) const noexcept {
  // Fold the whole state into one word, perturb by the stream index, and
  // let splitmix64 (plus the seeding constructor's own splitmix chain)
  // decorrelate.  The parent state is read, never written.
  std::uint64_t x = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                    rotl(s_[3], 47);
  x ^= (index + 1) * 0x9E3779B97F4A7C15ULL;
  return Rng(splitmix64(x));
}

}  // namespace mbq
