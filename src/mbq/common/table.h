#pragma once
// Markdown / CSV table emission for the experiment harnesses.
//
// Every bench binary reports its rows through a Table so the output format
// matches across experiments and EXPERIMENTS.md can quote it verbatim.

#include <iosfwd>
#include <string>
#include <vector>

#include "mbq/common/types.h"

namespace mbq {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Begin a new row; subsequent add() calls fill cells left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v);
  Table& add(real v, int precision = 6);
  Table& add(bool v);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return columns_.size(); }
  const std::vector<std::string>& column_names() const noexcept {
    return columns_;
  }
  /// Cell accessor (row-major); throws on out-of-range.
  const std::string& cell(std::size_t r, std::size_t c) const;

  /// Render as a GitHub-flavoured markdown table.
  std::string markdown() const;
  /// Render as CSV (RFC-4180 quoting where needed).
  std::string csv() const;
  /// Print markdown with an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  void check_complete_row() const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed-precision real -> string without trailing noise.
std::string format_real(real v, int precision = 6);

}  // namespace mbq
