#pragma once
// Minimal in-house JSON: a strict recursive-descent reader plus the
// writer helpers our emitters share (bench/report.cpp, speccomp/json.cpp).
//
// The reader parses exactly the subset our writers emit (objects,
// arrays, strings, numbers, booleans, null) — enough to read our own
// text back without a dependency.  Malformed input throws Error with a
// byte offset; parse_json rejects trailing garbage.
//
// The writer helpers pin the exactness conventions: json_double emits 17
// significant digits (every finite double round-trips bit-exactly;
// non-finite values become quoted "inf"/"-inf"/"nan"), json_hex64 emits
// 64-bit values as "0x..." strings (JSON numbers are exact only up to
// 2^53), and json_real_bits emits a double's IEEE-754 bit pattern as a
// hex string for when even the text must be bit-precise.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "mbq/common/types.h"

namespace mbq::json {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, real, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_string() const { return std::holds_alternative<std::string>(v); }
  /// Typed accessors; each throws Error when the value holds another type.
  const std::string& str() const;
  real num() const;
  bool boolean() const;
  const JsonArray& array() const;
  const JsonObject& object() const;
};

/// Parse a complete JSON document; throws Error (with a byte offset) on
/// malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

/// Required-field lookup; throws Error naming the missing key.
const JsonValue& field(const JsonObject& obj, const std::string& key);

// --- writer helpers --------------------------------------------------------

std::string json_escape(const std::string& s);

/// 17 significant digits: every finite double round-trips bit-exactly
/// through this text.  Non-finite values become quoted strings (JSON has
/// no inf/nan literals).
std::string json_double(real v);

/// "0x%016x" string — exact for any 64-bit value.
std::string json_hex64(std::uint64_t v);

/// The double's IEEE-754 bit pattern as a json_hex64 string; the exact
/// form read_real accepts for any value, finite or not.
std::string json_real_bits(real v);

// --- typed readers ---------------------------------------------------------

/// Accepts json_double's encoding: a number, or one of the quoted
/// non-finite markers.
real read_double(const JsonValue& v);

/// Accepts a number, a "0x..." bit-pattern string (json_real_bits), or a
/// quoted non-finite marker — the lenient real reader for formats where
/// hand-authored numbers and bit-exact hex must both work.
real read_real(const JsonValue& v);

std::uint64_t read_hex64(const JsonValue& v);

/// A number that is an exact unsigned integer (<= 2^53).
std::uint64_t read_u64(const JsonValue& v);

/// A number that is an exact signed integer within int range.
int read_int(const JsonValue& v);

}  // namespace mbq::json
