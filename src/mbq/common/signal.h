#pragma once
// Signal expressions: XOR-combinations of measurement-outcome variables.
//
// The measurement calculus (Danos-Kashefi-Panangaden) expresses adaptive
// measurements and corrections through "signals": parities (XOR) of
// previously measured outcomes.  In the paper these are the binary
// variables n, n', m, m', and the neighbourhood parities P_u of Sec. III.
// SignalExpr keeps the variable set sorted and duplicate-free so that
// s ^ s == 0 holds structurally and expressions have a canonical form.

#include <initializer_list>
#include <string>
#include <vector>

#include "mbq/common/types.h"

namespace mbq {

class SignalExpr {
 public:
  SignalExpr() = default;
  /// Single-variable signal.
  explicit SignalExpr(signal_t var);
  SignalExpr(std::initializer_list<signal_t> vars);

  /// XOR this expression with another (in place); duplicates cancel.
  SignalExpr& operator^=(const SignalExpr& other);
  friend SignalExpr operator^(SignalExpr a, const SignalExpr& b) {
    a ^= b;
    return a;
  }

  bool operator==(const SignalExpr&) const = default;

  bool empty() const noexcept { return vars_.empty(); }
  std::size_t size() const noexcept { return vars_.size(); }
  const std::vector<signal_t>& variables() const noexcept { return vars_; }
  bool contains(signal_t v) const noexcept;

  /// Largest variable id referenced, or -1 if empty.
  signal_t max_variable() const noexcept;

  /// Evaluate given outcome values; outcomes[v] must be 0/1 for every
  /// referenced variable v.  Throws if a variable is out of range.
  int evaluate(const std::vector<int>& outcomes) const;

  /// Rendering such as "s3^s7^s12" ("0" when empty).
  std::string str() const;

 private:
  std::vector<signal_t> vars_;  // sorted, unique
};

}  // namespace mbq
