#pragma once
// Thin OpenMP wrappers.
//
// The simulator kernels are expressed against these helpers so the library
// builds (and tests identically) with or without OpenMP.  Grain-size
// thresholds keep small problem instances on a single thread where the
// fork/join overhead would dominate.

#include <cstdint>

#ifdef MBQ_HAS_OPENMP
#include <omp.h>
#endif

#include "mbq/common/types.h"

namespace mbq {

/// Number of threads the parallel helpers will use.
int num_threads() noexcept;

/// The startup default thread count — what set_num_threads(0) restores.
/// Captured at static-initialization time (before main), so it reports
/// the build/environment default even when the first set_num_threads
/// call of the process is already an override.
int default_num_threads() noexcept;

/// Override the thread count used by subsequent parallel regions; n <= 0
/// restores default_num_threads().  No-op without OpenMP.  Batched
/// evaluation is bit-identical at every thread count, so this is purely
/// a wall-clock knob (and what the determinism tests sweep).
void set_num_threads(int n) noexcept;

/// True when compiled with OpenMP support.
constexpr bool has_openmp() noexcept {
#ifdef MBQ_HAS_OPENMP
  return true;
#else
  return false;
#endif
}

/// Minimum loop trip count before a kernel goes parallel; below this the
/// serial path is faster on every machine we care about.
inline constexpr std::int64_t kParallelGrain = 1 << 12;

/// parallel_for(n, f): f(i) for i in [0, n), possibly in parallel.
template <typename F>
void parallel_for(std::int64_t n, F&& f) {
#ifdef MBQ_HAS_OPENMP
  if (n >= kParallelGrain) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) f(i);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) f(i);
}

/// parallel_for with a caller-chosen grain.  Shot batches have trip
/// counts far below kParallelGrain but each iteration is an entire
/// pattern execution, so they parallelize profitably at grain 1; dynamic
/// scheduling absorbs the per-shot variance of adaptive runs.
template <typename F>
void parallel_for_grain(std::int64_t n, std::int64_t grain, F&& f) {
#ifdef MBQ_HAS_OPENMP
  if (n >= grain && n > 1) {
#pragma omp parallel for schedule(dynamic)
    for (std::int64_t i = 0; i < n; ++i) f(i);
    return;
  }
#else
  (void)grain;
#endif
  for (std::int64_t i = 0; i < n; ++i) f(i);
}

/// parallel_for with an EXPLICIT thread count and static schedule, for
/// loops whose every iteration is a fixed-size chunk of work (the
/// kernel chunk drivers in sim/collapse_threaded.h).  The trip count is
/// the number of chunks — typically far below kParallelGrain — so the
/// decision to parallelize is the caller's, not a grain heuristic's.
/// threads <= 1 (or no OpenMP) runs serially; the WORK each f(i)
/// performs is identical either way, which is what keeps the chunked
/// folds thread-count-invariant.
template <typename F>
void parallel_for_threads(std::int64_t n, int threads, F&& f) {
#ifdef MBQ_HAS_OPENMP
  if (threads > 1 && n > 1) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (std::int64_t i = 0; i < n; ++i) f(i);
    return;
  }
#else
  (void)threads;
#endif
  for (std::int64_t i = 0; i < n; ++i) f(i);
}

/// Sum-reduction over [0, n) of a real-valued f(i).
template <typename F>
real parallel_sum(std::int64_t n, F&& f) {
  real acc = 0.0;
#ifdef MBQ_HAS_OPENMP
  if (n >= kParallelGrain) {
#pragma omp parallel for schedule(static) reduction(+ : acc)
    for (std::int64_t i = 0; i < n; ++i) acc += f(i);
    return acc;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) acc += f(i);
  return acc;
}

}  // namespace mbq
