#pragma once
// Bit-manipulation helpers used by the simulators and cost evaluators.

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "mbq/common/error.h"

namespace mbq {

/// Parity (XOR of all bits) of x.
constexpr int parity64(std::uint64_t x) noexcept {
  return std::popcount(x) & 1;
}

/// Bit `b` of x as 0/1.
constexpr int get_bit(std::uint64_t x, int b) noexcept {
  return static_cast<int>((x >> b) & 1ULL);
}

/// x with bit `b` set to `v`.
constexpr std::uint64_t set_bit(std::uint64_t x, int b, int v) noexcept {
  return v ? (x | (1ULL << b)) : (x & ~(1ULL << b));
}

/// x with bit `b` flipped.
constexpr std::uint64_t flip_bit(std::uint64_t x, int b) noexcept {
  return x ^ (1ULL << b);
}

/// Insert a 0 bit at position `b`, shifting higher bits up.
/// insert_zero_bit(0b101, 1) == 0b1001.
constexpr std::uint64_t insert_zero_bit(std::uint64_t x, int b) noexcept {
  const std::uint64_t low = x & ((1ULL << b) - 1ULL);
  const std::uint64_t high = (x >> b) << (b + 1);
  return high | low;
}

/// Remove bit at position `b`, shifting higher bits down.
constexpr std::uint64_t remove_bit(std::uint64_t x, int b) noexcept {
  const std::uint64_t low = x & ((1ULL << b) - 1ULL);
  const std::uint64_t high = (x >> (b + 1)) << b;
  return high | low;
}

/// Little-endian bitstring -> vector of 0/1 ints (index i == qubit i).
std::vector<int> bits_of(std::uint64_t x, int n);

/// Inverse of bits_of.
std::uint64_t index_of(const std::vector<int>& bits);

/// "q0q1q2..." rendering, qubit 0 first.
std::string bitstring(std::uint64_t x, int n);

/// Parse a bitstring in the bitstring() format.
std::uint64_t parse_bitstring(const std::string& s);

}  // namespace mbq
