#include "mbq/common/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <limits>

#include "mbq/common/error.h"

namespace mbq::json {

const std::string& JsonValue::str() const {
  MBQ_REQUIRE(is_string(), "JSON: expected a string");
  return std::get<std::string>(v);
}

real JsonValue::num() const {
  MBQ_REQUIRE(std::holds_alternative<real>(v), "JSON: expected a number");
  return std::get<real>(v);
}

bool JsonValue::boolean() const {
  MBQ_REQUIRE(std::holds_alternative<bool>(v), "JSON: expected a boolean");
  return std::get<bool>(v);
}

const JsonArray& JsonValue::array() const {
  MBQ_REQUIRE(std::holds_alternative<std::shared_ptr<JsonArray>>(v),
              "JSON: expected an array");
  return *std::get<std::shared_ptr<JsonArray>>(v);
}

const JsonObject& JsonValue::object() const {
  MBQ_REQUIRE(std::holds_alternative<std::shared_ptr<JsonObject>>(v),
              "JSON: expected an object");
  return *std::get<std::shared_ptr<JsonObject>>(v);
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    MBQ_REQUIRE(pos_ == text_.size(),
                "JSON: trailing garbage at byte " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    MBQ_REQUIRE(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    MBQ_REQUIRE(peek() == c, "JSON: expected '" << c << "' at byte " << pos_
                                                << ", got '" << peek()
                                                << "'");
    ++pos_;
  }

  bool try_consume(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string()};
    if (try_consume("true")) return JsonValue{true};
    if (try_consume("false")) return JsonValue{false};
    if (try_consume("null")) return JsonValue{nullptr};
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      MBQ_REQUIRE(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      MBQ_REQUIRE(pos_ < text_.size(), "JSON: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          MBQ_REQUIRE(pos_ + 4 <= text_.size(), "JSON: truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          throw Error("JSON: unsupported escape '\\" + std::string(1, e) +
                      "'");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    MBQ_REQUIRE(pos_ > start, "JSON: expected a value at byte " << start);
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    MBQ_REQUIRE(end == tok.c_str() + tok.size(),
                "JSON: bad number '" << tok << "' at byte " << start);
    return JsonValue{static_cast<real>(v)};
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      (*obj)[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

const JsonValue& field(const JsonObject& obj, const std::string& key) {
  const auto it = obj.find(key);
  MBQ_REQUIRE(it != obj.end(), "JSON: missing field '" << key << "'");
  return it->second;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(real v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", static_cast<double>(v));
  return buf;
}

std::string json_hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "\"0x%016" PRIx64 "\"", v);
  return buf;
}

std::string json_real_bits(real v) {
  return json_hex64(std::bit_cast<std::uint64_t>(static_cast<double>(v)));
}

real read_double(const JsonValue& v) {
  if (v.is_string()) {
    const std::string& s = v.str();
    if (s == "inf") return std::numeric_limits<real>::infinity();
    if (s == "-inf") return -std::numeric_limits<real>::infinity();
    if (s == "nan") return std::numeric_limits<real>::quiet_NaN();
    throw Error("JSON: '" + s + "' is not a number");
  }
  return v.num();
}

real read_real(const JsonValue& v) {
  if (v.is_string() && v.str().starts_with("0x"))
    return static_cast<real>(std::bit_cast<double>(read_hex64(v)));
  return read_double(v);
}

std::uint64_t read_hex64(const JsonValue& v) {
  const std::string& s = v.str();
  MBQ_REQUIRE(s.size() > 2 && s[0] == '0' && s[1] == 'x',
              "JSON: '" << s << "' is not a 0x hex string");
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(s.c_str() + 2, &end, 16);
  MBQ_REQUIRE(end == s.c_str() + s.size(),
              "JSON: bad hex string '" << s << "'");
  return out;
}

std::uint64_t read_u64(const JsonValue& v) {
  const real n = v.num();
  MBQ_REQUIRE(n >= 0 && n == std::floor(n) && n <= 9007199254740992.0,
              "JSON: " << n << " is not an exact unsigned integer");
  return static_cast<std::uint64_t>(n);
}

int read_int(const JsonValue& v) {
  const real n = v.num();
  MBQ_REQUIRE(n == std::floor(n) && n >= -2147483648.0 && n <= 2147483647.0,
              "JSON: " << n << " is not an exact 32-bit integer");
  return static_cast<int>(n);
}

}  // namespace mbq::json
