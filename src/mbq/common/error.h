#pragma once
// Error handling primitives for the mbq library.
//
// Library code validates preconditions with MBQ_REQUIRE (throws
// mbq::Error) and internal invariants with MBQ_ASSERT (throws
// mbq::InternalError).  Both are always on: the library is used for
// correctness verification, so silent UB on bad input is never acceptable.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mbq {

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violated internal invariant (a bug in mbq, not in user code).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* cond, const char* file,
                                        int line, const std::string& msg);
[[noreturn]] void throw_assert_failure(const char* cond, const char* file,
                                       int line);
}  // namespace detail

}  // namespace mbq

/// Precondition check; `msg` is a streamable expression, e.g.
///   MBQ_REQUIRE(n > 0, "qubit count must be positive, got " << n);
#define MBQ_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream mbq_oss_;                                      \
      mbq_oss_ << msg; /* NOLINT */                                     \
      ::mbq::detail::throw_require_failure(#cond, __FILE__, __LINE__,   \
                                           mbq_oss_.str());             \
    }                                                                   \
  } while (false)

/// Internal invariant check.
#define MBQ_ASSERT(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::mbq::detail::throw_assert_failure(#cond, __FILE__, __LINE__);     \
    }                                                                     \
  } while (false)
