#include "mbq/common/signal.h"

#include <algorithm>

#include "mbq/common/error.h"

namespace mbq {

SignalExpr::SignalExpr(signal_t var) : vars_{var} {
  MBQ_REQUIRE(var >= 0, "signal variable must be non-negative: " << var);
}

SignalExpr::SignalExpr(std::initializer_list<signal_t> vars) {
  for (signal_t v : vars) *this ^= SignalExpr(v);
}

SignalExpr& SignalExpr::operator^=(const SignalExpr& other) {
  // Merge two sorted unique lists, cancelling common elements.
  std::vector<signal_t> merged;
  merged.reserve(vars_.size() + other.vars_.size());
  auto a = vars_.begin();
  auto b = other.vars_.begin();
  while (a != vars_.end() && b != other.vars_.end()) {
    if (*a < *b) {
      merged.push_back(*a++);
    } else if (*b < *a) {
      merged.push_back(*b++);
    } else {  // equal: x ^ x == 0
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, vars_.end());
  merged.insert(merged.end(), b, other.vars_.end());
  vars_ = std::move(merged);
  return *this;
}

bool SignalExpr::contains(signal_t v) const noexcept {
  return std::binary_search(vars_.begin(), vars_.end(), v);
}

signal_t SignalExpr::max_variable() const noexcept {
  return vars_.empty() ? signal_t{-1} : vars_.back();
}

int SignalExpr::evaluate(const std::vector<int>& outcomes) const {
  int acc = 0;
  for (signal_t v : vars_) {
    MBQ_REQUIRE(static_cast<std::size_t>(v) < outcomes.size(),
                "signal variable s" << v << " not yet measured");
    const int bit = outcomes[static_cast<std::size_t>(v)];
    MBQ_REQUIRE(bit == 0 || bit == 1,
                "outcome for s" << v << " is not 0/1: " << bit);
    acc ^= bit;
  }
  return acc;
}

std::string SignalExpr::str() const {
  if (vars_.empty()) return "0";
  std::string s;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (i) s += '^';
    s += 's';
    s += std::to_string(vars_[i]);
  }
  return s;
}

}  // namespace mbq
