#include "mbq/common/types.h"

#include <cmath>
#include <cstring>

#include "mbq/common/error.h"

namespace mbq {

const char* precision_name(Precision p) noexcept {
  return p == Precision::F32 ? "f32" : "f64";
}

Precision parse_precision(const char* name) {
  MBQ_REQUIRE(name != nullptr, "precision name is null");
  if (std::strcmp(name, "f64") == 0) return Precision::F64;
  if (std::strcmp(name, "f32") == 0) return Precision::F32;
  throw Error(std::string("unknown precision '") + name +
              "' (expected f64 or f32)");
}

real wrap_angle(real theta) noexcept {
  theta = std::fmod(theta, kTwoPi);
  if (theta > kPi) theta -= kTwoPi;
  if (theta <= -kPi) theta += kTwoPi;
  return theta;
}

bool is_pi_multiple(real theta, real tol) noexcept {
  const real q = theta / kPi;
  return std::abs(q - std::round(q)) <= tol;
}

bool angles_equal_mod_2pi(real a, real b, real tol) noexcept {
  const real d = wrap_angle(a - b);
  return std::abs(d) <= tol || std::abs(std::abs(d) - kTwoPi) <= tol;
}

}  // namespace mbq
