#include "mbq/common/types.h"

#include <cmath>

namespace mbq {

real wrap_angle(real theta) noexcept {
  theta = std::fmod(theta, kTwoPi);
  if (theta > kPi) theta -= kTwoPi;
  if (theta <= -kPi) theta += kTwoPi;
  return theta;
}

bool is_pi_multiple(real theta, real tol) noexcept {
  const real q = theta / kPi;
  return std::abs(q - std::round(q)) <= tol;
}

bool angles_equal_mod_2pi(real a, real b, real tol) noexcept {
  const real d = wrap_angle(a - b);
  return std::abs(d) <= tol || std::abs(std::abs(d) - kTwoPi) <= tol;
}

}  // namespace mbq
