#pragma once
// Fundamental scalar types and numeric constants shared across the library.

#include <complex>
#include <cstdint>

namespace mbq {

using real = double;
using cplx = std::complex<double>;
using cplxf = std::complex<float>;

/// Amplitude storage width of a statevector execution.  F64 is the
/// default and the reference everything else is compared against.  F32
/// halves memory bandwidth and doubles effective SIMD width for large-n
/// workloads that tolerate reduced precision; f32 runs are deterministic
/// WITHIN the precision (bit-identical across ISAs, thread counts and
/// process counts at f32) but are NOT bit-comparable to f64 runs.
enum class Precision : std::uint8_t { F64 = 0, F32 = 1 };

const char* precision_name(Precision p) noexcept;
/// Parse "f64"/"f32" (case-sensitive); throws Error on anything else.
Precision parse_precision(const char* name);

inline constexpr real kPi = 3.14159265358979323846264338327950288;
inline constexpr real kTwoPi = 2.0 * kPi;
inline constexpr cplx kI{0.0, 1.0};

/// Default tolerance for floating-point comparisons of amplitudes,
/// fidelities and tensor entries throughout tests and verification code.
inline constexpr real kTol = 1e-9;

/// Index of a qubit/wire inside a register or pattern.
using qubit_t = std::int32_t;

/// Measurement-outcome variable identifier inside a pattern.
using signal_t = std::int32_t;

/// Reduce an angle to the half-open interval (-pi, pi].
real wrap_angle(real theta) noexcept;

/// True if `theta` is an integer multiple of pi within `tol`.
bool is_pi_multiple(real theta, real tol = 1e-12) noexcept;

/// True if `a` and `b` are congruent modulo 2*pi within `tol`.
bool angles_equal_mod_2pi(real a, real b, real tol = 1e-12) noexcept;

}  // namespace mbq
