#pragma once
// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The simulator's amplitude kernels (sim/collapse_kernels.h) are built
// in several instruction-set flavors and ONE is selected per process at
// first use.  This header owns the two inputs to that choice:
//   * what the host actually supports (CPUID on x86, baseline AdvSIMD
//     on aarch64 — where NEON is architecturally mandatory, so no HWCAP
//     probe is needed), and
//   * what the user requested via the MBQ_SIMD environment variable
//     (auto | scalar | avx2 | avx512 | neon).
// The dispatch itself — including the bit-identity self-check that can
// reject a vector flavor — lives in sim/collapse_kernels.{h,cpp}; this
// layer only answers "could we?" and "were we asked to?".

#include <cstdint>
#include <optional>
#include <string>

namespace mbq {

/// Kernel instruction-set flavors, best-first order is Avx512 > Avx2 >
/// Neon > Scalar on their respective architectures.  Scalar is always
/// available and is itself the bit-exactness reference.
enum class SimdIsa : std::uint8_t { Scalar, Avx2, Avx512, Neon };

/// Lower-case name as accepted by MBQ_SIMD ("scalar", "avx2", ...).
const char* isa_name(SimdIsa isa) noexcept;

/// Inverse of isa_name; throws Error on an unknown name.
SimdIsa parse_simd_isa(const std::string& name);

/// True if the RUNNING host can execute this flavor (independent of
/// whether this build compiled it in — see sim::kernels_for_isa for the
/// combined answer).  Scalar is always true.
bool host_supports_isa(SimdIsa isa) noexcept;

/// The MBQ_SIMD override: nullopt when unset or "auto", otherwise the
/// parsed flavor.  Throws Error on an unrecognized value — a typo must
/// fail loudly at dispatch time, never silently fall back.
std::optional<SimdIsa> simd_env_override();

}  // namespace mbq
