#include "mbq/common/error.h"

namespace mbq::detail {

void throw_require_failure(const char* cond, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream oss;
  oss << "mbq: requirement violated: " << msg << " [" << cond << " at "
      << file << ":" << line << "]";
  throw Error(oss.str());
}

void throw_assert_failure(const char* cond, const char* file, int line) {
  std::ostringstream oss;
  oss << "mbq: internal invariant failed: " << cond << " at " << file << ":"
      << line << " (please report)";
  throw InternalError(oss.str());
}

}  // namespace mbq::detail
