#pragma once
// Deterministic, fast pseudo-random generation (xoshiro256**).
//
// All stochastic components of the library (measurement sampling, random
// problem instances, optimizers) take an explicit Rng so experiments are
// reproducible from a single seed.  The engine satisfies the C++
// UniformRandomBitGenerator requirements and can be plugged into <random>
// distributions, but the common draws are provided as members to keep
// call sites terse and allocation-free.

#include <array>
#include <cstdint>
#include <vector>

#include "mbq/common/types.h"

namespace mbq {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform in [0, 1).
  real uniform() noexcept;
  /// Uniform in [lo, hi).
  real uniform(real lo, real hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Fair coin.
  bool coin() noexcept;
  /// Bernoulli with success probability p (clamped to [0,1]).
  bool bernoulli(real p) noexcept;
  /// Standard normal via Marsaglia polar method.
  real normal() noexcept;
  /// Random angle in (-pi, pi].
  real angle() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator, advancing this one (for
  /// sequential hand-offs where the parent keeps drawing afterwards).
  Rng split() noexcept;

  /// Derive the index-th child stream from the CURRENT state WITHOUT
  /// advancing it: stream(i) always returns the same generator until the
  /// parent is advanced, and distinct indices give decorrelated streams.
  /// This is the primitive behind reproducible parallel shot batching —
  /// shot s always draws from stream(s), whatever the thread count.
  Rng stream(std::uint64_t index) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_cached_normal_ = false;
  real cached_normal_ = 0.0;
};

}  // namespace mbq
