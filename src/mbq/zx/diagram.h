#pragma once
// ZX(H)-diagrams.
//
// The diagram is an undirected multigraph whose internal nodes are
// Z-spiders, X-spiders and H-boxes, plus ordered boundary nodes (inputs /
// outputs).  This mirrors Sec. II-A of the paper: spiders follow Eq. (1)
// and (2); 2-ary H-boxes with parameter -1 are Hadamard edges (up to the
// sqrt(2) normalization of the ZH convention); parameterized H-boxes give
// the ZH-calculus fragment used for the MIS partial mixer (Sec. IV).
//
// Nodes and edges carry stable ids; removal tombstones them so rewrite
// rules can hold references safely.  A global scalar accumulates factors
// from rewrites that are exact; rules documented as "up to scalar" leave
// it untouched and tests compare tensors up to proportionality, matching
// the paper's "equal up to an irrelevant constant".

#include <string>
#include <vector>

#include "mbq/common/error.h"
#include "mbq/common/types.h"

namespace mbq::zx {

enum class NodeKind : std::uint8_t { Z, X, HBox, Boundary };

std::string node_kind_name(NodeKind k);

struct NodeData {
  NodeKind kind = NodeKind::Z;
  real phase = 0.0;   // Z/X spiders
  cplx hparam = -1.0; // H-boxes; -1 is the plain Hadamard box
  bool alive = false;
};

class Diagram {
 public:
  Diagram() = default;

  // --- construction ---
  int add_z(real phase = 0.0);
  int add_x(real phase = 0.0);
  int add_hbox(cplx param = cplx{-1.0, 0.0});
  int add_input();
  int add_output();
  /// Add an edge; returns its id.  Self-loops are allowed structurally but
  /// rejected by the evaluator; rewrites remove them eagerly.
  int add_edge(int a, int b);
  /// Convenience: connect a and b through a fresh Hadamard box; returns
  /// the H-box node id.
  int add_hadamard_edge(int a, int b);

  void remove_edge(int e);
  /// Remove a node and all incident edges.
  void remove_node(int v);

  // --- queries ---
  bool node_alive(int v) const;
  bool edge_alive(int e) const;
  const NodeData& node(int v) const;
  NodeKind kind(int v) const { return node(v).kind; }
  real phase(int v) const { return node(v).phase; }
  cplx hparam(int v) const { return node(v).hparam; }
  void set_phase(int v, real phase);
  void set_kind(int v, NodeKind k);

  /// Endpoints of an edge.
  std::pair<int, int> endpoints(int e) const;
  /// The other endpoint of e relative to v.
  int other_end(int e, int v) const;
  /// Incident (alive) edge ids of node v.
  const std::vector<int>& incident_edges(int v) const;
  int degree(int v) const;
  /// Neighbour node ids (repeats for parallel edges).
  std::vector<int> neighbors(int v) const;
  /// Edges connecting a and b (there may be several).
  std::vector<int> edges_between(int a, int b) const;
  bool is_self_loop(int e) const;

  const std::vector<int>& inputs() const noexcept { return inputs_; }
  const std::vector<int>& outputs() const noexcept { return outputs_; }
  /// Alive node ids.
  std::vector<int> node_ids() const;
  /// Alive edge ids.
  std::vector<int> edge_ids() const;
  int num_nodes() const noexcept { return alive_nodes_; }
  int num_edges() const noexcept { return alive_edges_; }
  /// Count of alive nodes of a given kind.
  int count_kind(NodeKind k) const;

  cplx scalar() const noexcept { return scalar_; }
  void multiply_scalar(cplx f) { scalar_ *= f; }

  /// True if v is a Z or X spider.
  bool is_spider(int v) const;
  /// True if v is a 2-ary H-box with parameter -1 (a Hadamard "edge").
  bool is_hadamard_box(int v) const;

  /// Structural sanity: boundary nodes have degree exactly 1, tombstones
  /// consistent.  Throws on violation.
  void validate() const;

  std::string str() const;

 private:
  int add_node(NodeData d);
  void check_node(int v) const;
  void check_edge(int e) const;

  struct EdgeRec {
    int a = -1;
    int b = -1;
    bool alive = false;
  };

  std::vector<NodeData> nodes_;
  std::vector<EdgeRec> edges_;
  std::vector<std::vector<int>> incident_;
  std::vector<int> inputs_;
  std::vector<int> outputs_;
  int alive_nodes_ = 0;
  int alive_edges_ = 0;
  cplx scalar_{1.0, 0.0};
};

}  // namespace mbq::zx
