#include "mbq/zx/tensor_eval.h"

#include <algorithm>
#include <cmath>
#include <list>

#include "mbq/common/bits.h"

namespace mbq::zx {

namespace {

Tensor node_tensor_with_legs(NodeKind kind, real phase, cplx hparam,
                             const std::vector<int>& legs) {
  const std::size_t d = legs.size();
  const std::size_t dim = std::size_t{1} << d;
  std::vector<cplx> data(dim, cplx{0.0, 0.0});
  switch (kind) {
    case NodeKind::Z: {
      data[0] += 1.0;
      data[dim - 1] += std::exp(kI * phase);
      break;
    }
    case NodeKind::X: {
      const real norm = std::pow(2.0, -0.5 * static_cast<real>(d));
      const cplx e = std::exp(kI * phase);
      for (std::size_t b = 0; b < dim; ++b) {
        const real sign = parity64(b) ? -1.0 : 1.0;
        data[b] = norm * (1.0 + e * sign);
      }
      break;
    }
    case NodeKind::HBox: {
      for (std::size_t b = 0; b < dim; ++b) data[b] = 1.0;
      data[dim - 1] = hparam;
      break;
    }
    case NodeKind::Boundary:
      throw InternalError("boundary nodes have no tensor");
  }
  return Tensor(legs, std::move(data));
}

}  // namespace

Tensor node_tensor(NodeKind kind, real phase, cplx hparam, int deg) {
  std::vector<int> legs(static_cast<std::size_t>(deg));
  for (int i = 0; i < deg; ++i) legs[i] = i;
  return node_tensor_with_legs(kind, phase, hparam, legs);
}

Tensor evaluate(const Diagram& d) {
  d.validate();
  std::list<Tensor> pool;

  // Internal nodes: legs are incident edge ids.
  for (int v : d.node_ids()) {
    if (d.kind(v) == NodeKind::Boundary) continue;
    const auto& inc = d.incident_edges(v);
    for (int e : inc)
      MBQ_REQUIRE(!d.is_self_loop(e),
                  "evaluate: self-loop edge " << e << " on node " << v
                                              << "; simplify first");
    pool.push_back(
        node_tensor_with_legs(d.kind(v), d.phase(v), d.hparam(v), inc));
  }

  // Boundary nodes: a delta tensor bridging the incident edge to a
  // negative leg id -(node+1), which survives contraction as a free leg.
  for (int v : d.node_ids()) {
    if (d.kind(v) != NodeKind::Boundary) continue;
    MBQ_REQUIRE(d.degree(v) == 1,
                "boundary node " << v << " has degree " << d.degree(v));
    const int e = d.incident_edges(v)[0];
    // Boundary-boundary edges appear twice with the same edge leg; the two
    // deltas then contract with each other, which is exactly the identity
    // wire.
    pool.push_back(Tensor({e, -(v + 1)}, {1.0, 0.0, 0.0, 1.0}));
  }

  if (pool.empty()) return Tensor::scalar(d.scalar());

  // Greedy pairwise contraction: prefer the pair sharing legs with the
  // smallest resulting rank.
  while (pool.size() > 1) {
    auto best_a = pool.end(), best_b = pool.end();
    int best_rank = 1 << 30;
    for (auto i = pool.begin(); i != pool.end(); ++i) {
      for (auto j = std::next(i); j != pool.end(); ++j) {
        int shared = 0;
        for (int leg : i->legs())
          if (j->has_leg(leg)) ++shared;
        if (shared == 0) continue;
        const int rank = i->rank() + j->rank() - 2 * shared;
        if (rank < best_rank) {
          best_rank = rank;
          best_a = i;
          best_b = j;
        }
      }
    }
    if (best_a == pool.end()) {
      // Disconnected components: outer-product the two smallest.
      pool.sort([](const Tensor& x, const Tensor& y) {
        return x.rank() < y.rank();
      });
      auto i = pool.begin();
      auto j = std::next(i);
      Tensor prod = Tensor::contract(*i, *j);
      pool.erase(i);
      pool.erase(j);
      pool.push_front(std::move(prod));
      continue;
    }
    Tensor prod = Tensor::contract(*best_a, *best_b);
    pool.erase(best_a);
    pool.erase(best_b);
    pool.push_front(std::move(prod));
  }

  Tensor result = std::move(pool.front());
  result.scale(d.scalar());

  // Relabel boundary legs to canonical 0..k-1 (inputs then outputs).
  std::vector<int> want_order;
  for (int v : d.inputs()) want_order.push_back(-(v + 1));
  for (int v : d.outputs()) want_order.push_back(-(v + 1));
  MBQ_REQUIRE(static_cast<int>(want_order.size()) == result.rank(),
              "evaluator left " << result.rank() << " free legs, expected "
                                << want_order.size());
  Tensor ordered = result.rank() ? result.permuted(want_order) : result;
  std::vector<int> canonical(ordered.rank());
  for (int i = 0; i < ordered.rank(); ++i) canonical[i] = i;
  return Tensor(canonical, ordered.data());
}

Matrix evaluate_matrix(const Diagram& d) {
  const Tensor t = evaluate(d);
  const std::size_t n_in = d.inputs().size();
  const std::size_t n_out = d.outputs().size();
  MBQ_ASSERT(static_cast<std::size_t>(t.rank()) == n_in + n_out);
  Matrix m(std::size_t{1} << n_out, std::size_t{1} << n_in);
  const auto& data = t.data();
  for (std::size_t col = 0; col < m.cols(); ++col)
    for (std::size_t row = 0; row < m.rows(); ++row)
      m(row, col) = data[col | (row << n_in)];
  return m;
}

}  // namespace mbq::zx
