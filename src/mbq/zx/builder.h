#pragma once
// Translating circuits and graph states into ZX-diagrams.
//
// Scalars are tracked so that evaluate_matrix(from_circuit(c)) equals
// c.unitary() EXACTLY (not just up to phase); this pins down every
// convention and is verified in tests.

#include "mbq/circuit/circuit.h"
#include "mbq/graph/graph.h"
#include "mbq/zx/diagram.h"

namespace mbq::zx {

/// Diagram of the circuit's unitary: one input and one output boundary
/// per qubit.  ControlledExpX gates are expanded to phase gadgets first.
Diagram from_circuit(const Circuit& c);

/// Diagram of the STATE c|+...+> (no inputs; outputs only): each wire
/// starts as a phase-0 Z spider (the |+> state of Eq. (3)).
Diagram from_circuit_on_plus(const Circuit& c);

/// Graph-state diagram per Eq. (5): one phase-0 Z spider per vertex with
/// an output wire, one Hadamard edge per graph edge.
Diagram graph_state_diagram(const Graph& g);

}  // namespace mbq::zx
