#include "mbq/zx/builder.h"

#include <cmath>

#include "mbq/common/error.h"

namespace mbq::zx {

namespace {

const real kSqrt2 = std::sqrt(2.0);

class WireTracker {
 public:
  WireTracker(Diagram& d, int n, bool plus_states) : d_(d), frontier_(n, -1) {
    for (int q = 0; q < n; ++q) {
      if (plus_states) {
        // |+> = Z(0) state spider, which evaluates to sqrt(2)|+>.
        frontier_[q] = d_.add_z(0.0);
        d_.multiply_scalar(1.0 / kSqrt2);
      } else {
        frontier_[q] = d_.add_input();
      }
    }
  }

  /// Append node `v` to wire q (adds the connecting edge).
  void advance(int q, int v) {
    d_.add_edge(frontier_[q], v);
    frontier_[q] = v;
  }
  int frontier(int q) const { return frontier_[q]; }

  void finish() {
    for (std::size_t q = 0; q < frontier_.size(); ++q) {
      const int out = d_.add_output();
      d_.add_edge(frontier_[q], out);
    }
  }

 private:
  Diagram& d_;
  std::vector<int> frontier_;
};

void append_gate(Diagram& d, WireTracker& w, const Gate& g) {
  switch (g.kind) {
    case GateKind::H: {
      const int h = d.add_hbox();
      w.advance(g.qubits[0], h);
      d.multiply_scalar(1.0 / kSqrt2);  // H-box = sqrt(2) H
      break;
    }
    case GateKind::Rz:
      w.advance(g.qubits[0], d.add_z(g.angle));
      break;
    case GateKind::Rx:
      w.advance(g.qubits[0], d.add_x(g.angle));
      break;
    case GateKind::Z:
      w.advance(g.qubits[0], d.add_z(kPi));
      break;
    case GateKind::X:
      w.advance(g.qubits[0], d.add_x(kPi));
      break;
    case GateKind::Y:
      // Y = i X Z: Z(pi) then X(pi) with scalar i.
      w.advance(g.qubits[0], d.add_z(kPi));
      w.advance(g.qubits[0], d.add_x(kPi));
      d.multiply_scalar(kI);
      break;
    case GateKind::S:
      w.advance(g.qubits[0], d.add_z(kPi / 2));
      break;
    case GateKind::Sdg:
      w.advance(g.qubits[0], d.add_z(-kPi / 2));
      break;
    case GateKind::T:
      w.advance(g.qubits[0], d.add_z(kPi / 4));
      break;
    case GateKind::Tdg:
      w.advance(g.qubits[0], d.add_z(-kPi / 4));
      break;
    case GateKind::Cz: {
      const int zu = d.add_z(0.0);
      const int zv = d.add_z(0.0);
      w.advance(g.qubits[0], zu);
      w.advance(g.qubits[1], zv);
      d.add_hadamard_edge(zu, zv);  // exact: Z-H-Z block is CZ
      break;
    }
    case GateKind::Cx: {
      const int zc = d.add_z(0.0);
      const int xt = d.add_x(0.0);
      w.advance(g.qubits[0], zc);
      w.advance(g.qubits[1], xt);
      d.add_edge(zc, xt);
      d.multiply_scalar(kSqrt2);  // Z-X block is CX / sqrt(2)
      break;
    }
    case GateKind::PhaseGadget: {
      // exp(-i a/2 Z_S): hub X(0) spider with a Z(a) leaf, one Z spider
      // spliced into each wire of S.
      const int hub = d.add_x(0.0);
      const int leaf = d.add_z(g.angle);
      d.add_edge(hub, leaf);
      for (int q : g.qubits) {
        const int zq = d.add_z(0.0);
        w.advance(q, zq);
        d.add_edge(zq, hub);
      }
      // Diagram equals 2^{(1-k)/2} e^{ia/2} * PG(a, S); compensate.
      const real k = static_cast<real>(g.qubits.size());
      d.multiply_scalar(std::pow(2.0, 0.5 * (k - 1.0)) *
                        std::exp(-kI * (g.angle / 2.0)));
      break;
    }
    case GateKind::ControlledExpX:
      throw InternalError("ControlledExpX must be expanded before building");
  }
}

Diagram build(const Circuit& circuit, bool plus_states) {
  const Circuit c = circuit.expand_controlled_gates();
  Diagram d;
  WireTracker w(d, c.num_qubits(), plus_states);
  for (const Gate& g : c.gates()) append_gate(d, w, g);
  w.finish();
  d.validate();
  return d;
}

}  // namespace

Diagram from_circuit(const Circuit& c) { return build(c, false); }

Diagram from_circuit_on_plus(const Circuit& c) { return build(c, true); }

Diagram graph_state_diagram(const Graph& g) {
  Diagram d;
  std::vector<int> spider(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) spider[v] = d.add_z(0.0);
  for (const Edge& e : g.edges())
    d.add_hadamard_edge(spider[e.u], spider[e.v]);
  // The spiders force all legs equal, so the diagram's amplitude at output
  // bits b is prod_edges (-1)^{b_u b_v} = 2^{n/2} <b|G>; compensate.
  d.multiply_scalar(std::pow(2.0, -0.5 * g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int out = d.add_output();
    d.add_edge(spider[v], out);
  }
  d.validate();
  return d;
}

}  // namespace mbq::zx
