#pragma once
// Tensor semantics of ZX(H)-diagrams.
//
// evaluate() contracts the diagram to a Tensor whose legs are canonically
// numbered 0..k-1: inputs in diagram order first, then outputs.  Two
// diagrams with the same boundary arity are therefore directly comparable
// (exactly, or up to scalar via Tensor::proportionality_distance — the
// latter matches the paper's "equal up to constant" claims).
//
// Spider semantics follow Eq. (1)/(2) of the paper; H-boxes follow the ZH
// convention (all-ones entry = parameter, every other entry 1), so the
// 2-ary H-box with parameter -1 equals sqrt(2) * H.

#include "mbq/linalg/dense.h"
#include "mbq/linalg/tensor.h"
#include "mbq/zx/diagram.h"

namespace mbq::zx {

/// Contract the whole diagram.  Throws on self-loop edges (rewrites are
/// expected to remove them first) and if any intermediate tensor would
/// exceed 2^30 entries.
Tensor evaluate(const Diagram& d);

/// evaluate() reshaped into a matrix: rows indexed by outputs, columns by
/// inputs (both little-endian in diagram order).
Matrix evaluate_matrix(const Diagram& d);

/// Tensor of a single node as used by the evaluator (exposed for tests):
/// legs are labeled 0..deg-1.
Tensor node_tensor(NodeKind kind, real phase, cplx hparam, int deg);

}  // namespace mbq::zx
