#include "mbq/zx/diagram.h"

#include <algorithm>
#include <sstream>

namespace mbq::zx {

std::string node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::Z: return "Z";
    case NodeKind::X: return "X";
    case NodeKind::HBox: return "H";
    case NodeKind::Boundary: return "B";
  }
  return "?";
}

int Diagram::add_node(NodeData d) {
  d.alive = true;
  nodes_.push_back(d);
  incident_.emplace_back();
  ++alive_nodes_;
  return static_cast<int>(nodes_.size()) - 1;
}

int Diagram::add_z(real phase) {
  return add_node({NodeKind::Z, phase, cplx{-1, 0}, true});
}

int Diagram::add_x(real phase) {
  return add_node({NodeKind::X, phase, cplx{-1, 0}, true});
}

int Diagram::add_hbox(cplx param) {
  return add_node({NodeKind::HBox, 0.0, param, true});
}

int Diagram::add_input() {
  const int v = add_node({NodeKind::Boundary, 0.0, cplx{-1, 0}, true});
  inputs_.push_back(v);
  return v;
}

int Diagram::add_output() {
  const int v = add_node({NodeKind::Boundary, 0.0, cplx{-1, 0}, true});
  outputs_.push_back(v);
  return v;
}

int Diagram::add_edge(int a, int b) {
  check_node(a);
  check_node(b);
  const int e = static_cast<int>(edges_.size());
  edges_.push_back({a, b, true});
  incident_[a].push_back(e);
  if (b != a) incident_[b].push_back(e);
  ++alive_edges_;
  return e;
}

int Diagram::add_hadamard_edge(int a, int b) {
  const int h = add_hbox();
  add_edge(a, h);
  add_edge(h, b);
  return h;
}

void Diagram::remove_edge(int e) {
  check_edge(e);
  auto& rec = edges_[e];
  rec.alive = false;
  auto scrub = [&](int v) {
    auto& inc = incident_[v];
    inc.erase(std::remove(inc.begin(), inc.end(), e), inc.end());
  };
  scrub(rec.a);
  if (rec.b != rec.a) scrub(rec.b);
  --alive_edges_;
}

void Diagram::remove_node(int v) {
  check_node(v);
  // Copy: remove_edge mutates incident_[v].
  const std::vector<int> inc = incident_[v];
  for (int e : inc)
    if (edges_[e].alive) remove_edge(e);
  nodes_[v].alive = false;
  --alive_nodes_;
  auto drop = [&](std::vector<int>& io) {
    io.erase(std::remove(io.begin(), io.end(), v), io.end());
  };
  drop(inputs_);
  drop(outputs_);
}

void Diagram::check_node(int v) const {
  MBQ_REQUIRE(v >= 0 && v < static_cast<int>(nodes_.size()) &&
                  nodes_[v].alive,
              "no such node: " << v);
}

void Diagram::check_edge(int e) const {
  MBQ_REQUIRE(e >= 0 && e < static_cast<int>(edges_.size()) &&
                  edges_[e].alive,
              "no such edge: " << e);
}

bool Diagram::node_alive(int v) const {
  return v >= 0 && v < static_cast<int>(nodes_.size()) && nodes_[v].alive;
}

bool Diagram::edge_alive(int e) const {
  return e >= 0 && e < static_cast<int>(edges_.size()) && edges_[e].alive;
}

const NodeData& Diagram::node(int v) const {
  check_node(v);
  return nodes_[v];
}

void Diagram::set_phase(int v, real phase) {
  check_node(v);
  MBQ_REQUIRE(is_spider(v), "set_phase on non-spider node " << v);
  nodes_[v].phase = phase;
}

void Diagram::set_kind(int v, NodeKind k) {
  check_node(v);
  nodes_[v].kind = k;
}

std::pair<int, int> Diagram::endpoints(int e) const {
  check_edge(e);
  return {edges_[e].a, edges_[e].b};
}

int Diagram::other_end(int e, int v) const {
  check_edge(e);
  const auto& rec = edges_[e];
  MBQ_REQUIRE(rec.a == v || rec.b == v,
              "edge " << e << " not incident to node " << v);
  return rec.a == v ? rec.b : rec.a;
}

const std::vector<int>& Diagram::incident_edges(int v) const {
  check_node(v);
  return incident_[v];
}

int Diagram::degree(int v) const {
  check_node(v);
  int d = 0;
  for (int e : incident_[v]) d += is_self_loop(e) ? 2 : 1;
  return d;
}

std::vector<int> Diagram::neighbors(int v) const {
  check_node(v);
  std::vector<int> out;
  for (int e : incident_[v]) out.push_back(other_end(e, v));
  return out;
}

std::vector<int> Diagram::edges_between(int a, int b) const {
  check_node(a);
  check_node(b);
  std::vector<int> out;
  for (int e : incident_[a]) {
    const auto [u, w] = endpoints(e);
    if ((u == a && w == b) || (u == b && w == a)) out.push_back(e);
  }
  return out;
}

bool Diagram::is_self_loop(int e) const {
  check_edge(e);
  return edges_[e].a == edges_[e].b;
}

std::vector<int> Diagram::node_ids() const {
  std::vector<int> out;
  for (int v = 0; v < static_cast<int>(nodes_.size()); ++v)
    if (nodes_[v].alive) out.push_back(v);
  return out;
}

std::vector<int> Diagram::edge_ids() const {
  std::vector<int> out;
  for (int e = 0; e < static_cast<int>(edges_.size()); ++e)
    if (edges_[e].alive) out.push_back(e);
  return out;
}

int Diagram::count_kind(NodeKind k) const {
  int c = 0;
  for (const auto& n : nodes_) c += (n.alive && n.kind == k);
  return c;
}

bool Diagram::is_spider(int v) const {
  const NodeKind k = kind(v);
  return k == NodeKind::Z || k == NodeKind::X;
}

bool Diagram::is_hadamard_box(int v) const {
  return kind(v) == NodeKind::HBox && degree(v) == 2 &&
         std::abs(hparam(v) - cplx{-1.0, 0.0}) < 1e-12;
}

void Diagram::validate() const {
  for (int v : inputs_) {
    MBQ_REQUIRE(node_alive(v), "dead input node " << v);
    MBQ_REQUIRE(degree(v) == 1, "input " << v << " has degree " << degree(v));
  }
  for (int v : outputs_) {
    MBQ_REQUIRE(node_alive(v), "dead output node " << v);
    MBQ_REQUIRE(degree(v) == 1, "output " << v << " has degree " << degree(v));
  }
  int an = 0;
  for (const auto& n : nodes_) an += n.alive;
  MBQ_ASSERT(an == alive_nodes_);
  int ae = 0;
  for (const auto& e : edges_) ae += e.alive;
  MBQ_ASSERT(ae == alive_edges_);
  for (int e = 0; e < static_cast<int>(edges_.size()); ++e) {
    if (!edges_[e].alive) continue;
    MBQ_REQUIRE(node_alive(edges_[e].a) && node_alive(edges_[e].b),
                "edge " << e << " touches a dead node");
  }
}

std::string Diagram::str() const {
  std::ostringstream oss;
  oss << "Diagram(nodes=" << num_nodes() << ", edges=" << num_edges()
      << ", in=" << inputs_.size() << ", out=" << outputs_.size() << ")\n";
  for (int v : node_ids()) {
    oss << "  " << v << ": " << node_kind_name(kind(v));
    if (is_spider(v) && phase(v) != 0.0) oss << "(" << phase(v) << ")";
    if (kind(v) == NodeKind::HBox && std::abs(hparam(v) + 1.0) > 1e-12)
      oss << "(" << hparam(v).real() << "+" << hparam(v).imag() << "i)";
    oss << " --";
    for (int w : neighbors(v)) oss << " " << w;
    oss << "\n";
  }
  return oss.str();
}

}  // namespace mbq::zx
