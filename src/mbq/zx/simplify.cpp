#include "mbq/zx/simplify.h"

#include <algorithm>
#include <unordered_map>

#include "mbq/zx/rules.h"

namespace mbq::zx {

SimplifyStats to_graph_like(Diagram& d) {
  SimplifyStats stats;
  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Turn every X spider into a Z spider.
    for (int v : d.node_ids()) {
      if (d.node_alive(v) && d.kind(v) == NodeKind::X) {
        if (rules::remove_self_loops(d, v)) ++stats.self_loop_removals;
        if (rules::color_change(d, v)) {
          ++stats.color_changes;
          changed = true;
        }
      }
    }

    // 2. Cancel adjacent H-box pairs.
    for (int h : d.node_ids()) {
      if (!d.node_alive(h) || !d.is_hadamard_box(h)) continue;
      for (int o : d.neighbors(h)) {
        if (d.node_alive(h) && d.node_alive(o) && o != h &&
            d.is_hadamard_box(o) && rules::cancel_hh(d, h, o)) {
          ++stats.hh_cancellations;
          changed = true;
          break;
        }
      }
    }

    // 3. Hadamard self-loops become pi phases; plain self-loops vanish.
    for (int h : d.node_ids()) {
      if (d.node_alive(h) && d.kind(h) == NodeKind::HBox &&
          rules::absorb_hadamard_self_loop(d, h)) {
        ++stats.hadamard_self_loops;
        changed = true;
      }
    }
    for (int v : d.node_ids()) {
      if (d.node_alive(v) && d.is_spider(v) &&
          rules::remove_self_loops(d, v)) {
        ++stats.self_loop_removals;
        changed = true;
      }
    }

    // 4. Fuse spiders joined by plain edges.
    for (int v : d.node_ids()) {
      if (!d.node_alive(v) || !d.is_spider(v)) continue;
      bool fused = true;
      while (fused) {
        fused = false;
        for (int e : d.incident_edges(v)) {
          const int o = d.other_end(e, v);
          if (o != v && d.node_alive(o) && d.is_spider(o) &&
              d.kind(o) == d.kind(v)) {
            if (rules::fuse(d, v, o)) {
              ++stats.fusions;
              changed = true;
              fused = true;
              break;
            }
          }
        }
      }
    }

    // 5. Cancel parallel Hadamard edges between the same spider pair.
    for (int v : d.node_ids()) {
      if (!d.node_alive(v) || !d.is_spider(v)) continue;
      // Collect H-neighbours with multiplicity.
      std::unordered_map<int, int> hcount;
      for (int e : d.incident_edges(v)) {
        const int h = d.other_end(e, v);
        if (!d.is_hadamard_box(h)) continue;
        for (int f : d.incident_edges(h)) {
          const int w = d.other_end(f, h);
          if (w != v) ++hcount[w];
        }
      }
      for (const auto& [w, count] : hcount) {
        if (count >= 2 && d.node_alive(w) &&
            rules::cancel_parallel_hadamard_pair(d, v, w)) {
          ++stats.parallel_hadamard_pairs;
          changed = true;
        }
      }
    }
  }
  return stats;
}

bool is_graph_like(const Diagram& d) {
  for (int v : d.node_ids()) {
    if (!d.node_alive(v)) continue;
    switch (d.kind(v)) {
      case NodeKind::X:
        return false;
      case NodeKind::Z: {
        for (int e : d.incident_edges(v)) {
          if (d.is_self_loop(e)) return false;
          const int o = d.other_end(e, v);
          // Plain edges may only lead to boundaries or H-boxes.
          if (d.kind(o) == NodeKind::Z) return false;
        }
        break;
      }
      case NodeKind::HBox: {
        if (!d.is_hadamard_box(v)) return false;
        const auto ns = d.neighbors(v);
        if (ns.size() != 2 || ns[0] == ns[1]) return false;
        break;
      }
      case NodeKind::Boundary:
        break;
    }
  }
  // At most one H-edge per spider pair.
  for (int v : d.node_ids()) {
    if (!d.node_alive(v) || d.kind(v) != NodeKind::Z) continue;
    std::vector<int> hn;
    for (int e : d.incident_edges(v)) {
      const int h = d.other_end(e, v);
      if (d.is_hadamard_box(h))
        for (int f : d.incident_edges(h)) {
          const int w = d.other_end(f, h);
          if (w != v) hn.push_back(w);
        }
    }
    std::sort(hn.begin(), hn.end());
    if (std::adjacent_find(hn.begin(), hn.end()) != hn.end()) return false;
  }
  return true;
}

ExtractedOpenGraph extract_open_graph(const Diagram& d) {
  MBQ_REQUIRE(is_graph_like(d), "extract_open_graph needs graph-like form");
  ExtractedOpenGraph out;
  std::unordered_map<int, int> vertex_of_spider;
  for (int v : d.node_ids()) {
    if (d.kind(v) != NodeKind::Z) continue;
    vertex_of_spider[v] = out.graph.add_vertex();
    out.spider_of_vertex.push_back(v);
    out.vertex_phase.push_back(d.phase(v));
  }
  for (int h : d.node_ids()) {
    if (!d.node_alive(h) || !d.is_hadamard_box(h)) continue;
    const auto ns = d.neighbors(h);
    if (ns.size() == 2 && vertex_of_spider.count(ns[0]) &&
        vertex_of_spider.count(ns[1])) {
      out.graph.add_edge(vertex_of_spider[ns[0]], vertex_of_spider[ns[1]]);
    }
  }
  auto attach = [&](int boundary, std::vector<int>& vout,
                    std::vector<bool>& had) {
    const auto inc = d.incident_edges(boundary);
    MBQ_REQUIRE(inc.size() == 1, "boundary degree must be 1");
    int o = d.other_end(inc[0], boundary);
    bool h = false;
    if (d.is_hadamard_box(o)) {
      h = true;
      const int hbox = o;
      for (int f : d.incident_edges(hbox))
        if (d.other_end(f, hbox) != boundary) o = d.other_end(f, hbox);
    }
    MBQ_REQUIRE(vertex_of_spider.count(o),
                "boundary " << boundary << " not attached to a spider");
    vout.push_back(vertex_of_spider[o]);
    had.push_back(h);
  };
  for (int b : d.inputs()) attach(b, out.input_vertex, out.input_hadamard);
  for (int b : d.outputs()) attach(b, out.output_vertex, out.output_hadamard);
  return out;
}

}  // namespace mbq::zx
