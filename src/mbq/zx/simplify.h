#pragma once
// Graph-like normal form and open-graph extraction.
//
// A diagram is *graph-like* when every spider is a Z-spider, spiders are
// joined only by single Hadamard edges, and there are no self-loops or
// spider-spider plain edges.  This is the form in which a ZX-diagram IS a
// measurement-based resource state: spiders are graph-state qubits, H
// edges are CZ entanglers (Sec. II-B / Eq. (5) of the paper).

#include <vector>

#include "mbq/graph/graph.h"
#include "mbq/zx/diagram.h"

namespace mbq::zx {

struct SimplifyStats {
  int color_changes = 0;
  int fusions = 0;
  int hh_cancellations = 0;
  int identity_removals = 0;
  int self_loop_removals = 0;
  int hadamard_self_loops = 0;
  int parallel_hadamard_pairs = 0;
  int total() const {
    return color_changes + fusions + hh_cancellations + identity_removals +
           self_loop_removals + hadamard_self_loops + parallel_hadamard_pairs;
  }
};

/// Rewrite d into graph-like form (terminates; semantics preserved up to
/// the tracked scalar).  Returns counts of applied rules.
SimplifyStats to_graph_like(Diagram& d);

/// Check the graph-like invariants.
bool is_graph_like(const Diagram& d);

/// The open graph of a graph-like diagram.
struct ExtractedOpenGraph {
  Graph graph;                        // vertex per spider
  std::vector<int> spider_of_vertex;  // diagram node id per vertex
  std::vector<real> vertex_phase;     // spider phase per vertex
  // Per diagram input/output: which vertex it attaches to, and whether the
  // attachment wire carries a Hadamard.
  std::vector<int> input_vertex;
  std::vector<int> output_vertex;
  std::vector<bool> input_hadamard;
  std::vector<bool> output_hadamard;
};

/// Extract the open graph; requires is_graph_like(d).
ExtractedOpenGraph extract_open_graph(const Diagram& d);

}  // namespace mbq::zx
