#include "mbq/zx/from_pattern.h"

#include <unordered_map>

#include "mbq/common/error.h"

namespace mbq::zx {

Diagram diagram_from_pattern(const mbqc::Pattern& p) {
  p.validate();
  MBQ_REQUIRE(p.inputs().empty(),
              "diagram_from_pattern requires a pattern without open inputs");
  Diagram d;
  std::unordered_map<int, int> spider_of_wire;

  for (const mbqc::Command& c : p.commands()) {
    if (const auto* n = std::get_if<mbqc::CmdPrep>(&c)) {
      // |+> = phase-0 Z spider (state).  Z(0) arity-1 is sqrt(2)|+>.
      spider_of_wire[n->wire] = d.add_z(0.0);
    } else if (const auto* e = std::get_if<mbqc::CmdEntangle>(&c)) {
      // CZ between wires: Hadamard edge between their spiders.
      d.add_hadamard_edge(spider_of_wire.at(e->a), spider_of_wire.at(e->b));
    } else if (const auto* m = std::get_if<mbqc::CmdMeasure>(&c)) {
      // All-zero branch: s and t domains evaluate to 0, effective angle
      // is m->angle, recorded outcome 0.
      const int spider = spider_of_wire.at(m->wire);
      int effect = -1;
      switch (m->plane) {
        case MeasBasis::X:
        case MeasBasis::XY:
          // <+_alpha| proportional to the Z(-alpha) arity-1 effect.
          effect = d.add_z(-m->angle);
          break;
        case MeasBasis::Z:
        case MeasBasis::YZ:
          // <0| e^{-i theta X / 2} proportional to the X(theta) effect.
          effect = d.add_x(m->angle);
          break;
      }
      d.add_edge(spider, effect);
      spider_of_wire.erase(m->wire);
    } else if (std::holds_alternative<mbqc::CmdCorrectX>(c) ||
               std::holds_alternative<mbqc::CmdCorrectZ>(c)) {
      // Domains evaluate to 0 on this branch: identity.
    }
  }

  for (int w : p.outputs()) {
    const int out = d.add_output();
    d.add_edge(spider_of_wire.at(w), out);
  }
  d.validate();
  return d;
}

}  // namespace mbq::zx
