#pragma once
// The ZX rewrite rules of Fig. 1, as checked local graph rewrites.
//
// Every function validates its preconditions and returns false (leaving
// the diagram untouched) when they do not hold.  Rules marked [exact]
// update the diagram scalar so the tensor is preserved exactly; rules
// marked [up to scalar] preserve it up to a nonzero constant, matching
// the paper's usage.  Property tests in tests/test_zx_rules.cpp verify
// both behaviours on randomized diagrams.

#include "mbq/zx/diagram.h"

namespace mbq::zx::rules {

/// (f) spider fusion: same-colour spiders joined by >= 1 plain edge merge,
/// adding phases; all parallel edges between them vanish.  [exact]
bool fuse(Diagram& d, int a, int b);

/// (id) phase-0 arity-2 spider is the identity wire.  [exact]
bool remove_identity(Diagram& d, int v);

/// (hh) two Hadamard boxes in series cancel.  [exact]
bool cancel_hh(Diagram& d, int h1, int h2);

/// (h) colour change: flip Z<->X and toggle a Hadamard on every incident
/// wire.  [exact]
bool color_change(Diagram& d, int v);

/// (pi) pi-commutation: an arity-2 pi-phase spider pushed through an
/// opposite-colour spider negates its phase and copies pi to all other
/// legs.  [exact]
bool pi_copy(Diagram& d, int pi_node);

/// (c) state copy: an arity-1 spider with phase in {0, pi} copies through
/// an opposite-colour phase-0 spider onto all its other legs.  [exact]
bool state_copy(Diagram& d, int state_node);

/// (b) bialgebra: a plain-connected phase-0 Z/X spider pair is replaced by
/// the complete bipartite pattern on their other neighbours.
/// [up to scalar]
bool bialgebra(Diagram& d, int z_node, int x_node);

/// (hopf) two parallel plain edges between opposite-colour spiders vanish.
/// [exact: scalar 1/2]
bool hopf(Diagram& d, int a, int b);

/// Plain self-loops on a spider evaluate to nothing; remove them. [exact]
bool remove_self_loops(Diagram& d, int v);

/// A Hadamard box with both legs on the same Z/X spider adds pi to its
/// phase and disappears.  [exact]
bool absorb_hadamard_self_loop(Diagram& d, int hbox);

/// Two parallel Hadamard edges between the same pair of same-colour
/// spiders cancel.  [exact]
bool cancel_parallel_hadamard_pair(Diagram& d, int a, int b);

}  // namespace mbq::zx::rules
