#include "mbq/zx/rules.h"

#include <cmath>

#include "mbq/common/types.h"

namespace mbq::zx::rules {

namespace {

bool opposite_spiders(const Diagram& d, int a, int b) {
  if (!d.node_alive(a) || !d.node_alive(b)) return false;
  if (!d.is_spider(a) || !d.is_spider(b)) return false;
  return d.kind(a) != d.kind(b);
}

bool phase_is(const Diagram& d, int v, real value) {
  return angles_equal_mod_2pi(d.phase(v), value, 1e-9);
}

}  // namespace

bool fuse(Diagram& d, int a, int b) {
  if (a == b || !d.node_alive(a) || !d.node_alive(b)) return false;
  if (!d.is_spider(a) || !d.is_spider(b)) return false;
  if (d.kind(a) != d.kind(b)) return false;
  if (d.edges_between(a, b).empty()) return false;

  d.set_phase(a, wrap_angle(d.phase(a) + d.phase(b)));
  // Move b's non-a edges onto a; edges to a become self-loops, which are
  // scalar-free no-ops for spiders and are simply dropped.
  const std::vector<int> inc = d.incident_edges(b);
  for (int e : inc) {
    if (!d.edge_alive(e)) continue;
    const int o = d.other_end(e, b);
    d.remove_edge(e);
    if (o != a && o != b) d.add_edge(a, o);
  }
  d.remove_node(b);
  return true;
}

bool remove_identity(Diagram& d, int v) {
  if (!d.node_alive(v) || !d.is_spider(v)) return false;
  if (!phase_is(d, v, 0.0)) return false;
  const auto inc = d.incident_edges(v);
  if (inc.size() != 2) return false;
  if (d.is_self_loop(inc[0]) || d.is_self_loop(inc[1])) return false;
  const int n1 = d.other_end(inc[0], v);
  const int n2 = d.other_end(inc[1], v);
  d.remove_node(v);
  d.add_edge(n1, n2);
  return true;
}

bool cancel_hh(Diagram& d, int h1, int h2) {
  if (h1 == h2 || !d.node_alive(h1) || !d.node_alive(h2)) return false;
  if (!d.is_hadamard_box(h1) || !d.is_hadamard_box(h2)) return false;
  const auto between = d.edges_between(h1, h2);
  if (between.size() != 1) return false;
  // Other neighbours.
  int a = -1, b = -1;
  for (int e : d.incident_edges(h1))
    if (d.other_end(e, h1) != h2) a = d.other_end(e, h1);
  for (int e : d.incident_edges(h2))
    if (d.other_end(e, h2) != h1) b = d.other_end(e, h2);
  if (a < 0 || b < 0) return false;
  d.remove_node(h1);
  d.remove_node(h2);
  d.add_edge(a, b);
  // Two H-boxes are 2*H*H = 2*I; replacing them with a wire loses the
  // factor 2.
  d.multiply_scalar(2.0);
  return true;
}

bool color_change(Diagram& d, int v) {
  if (!d.node_alive(v) || !d.is_spider(v)) return false;
  for (int e : d.incident_edges(v))
    if (d.is_self_loop(e)) return false;

  d.set_kind(v, d.kind(v) == NodeKind::Z ? NodeKind::X : NodeKind::Z);
  const real kSqrt2 = std::sqrt(2.0);
  const std::vector<int> inc = d.incident_edges(v);
  for (int e : inc) {
    if (!d.edge_alive(e)) continue;
    const int o = d.other_end(e, v);
    if (d.node_alive(o) && d.is_hadamard_box(o)) {
      // Splice the H-box out: v -- H -- w  becomes  v -- w.
      int w = -1;
      for (int f : d.incident_edges(o))
        if (d.other_end(f, o) != v) w = d.other_end(f, o);
      if (w < 0) {
        // H-box had both edges on v: it becomes a Hadamard self-loop,
        // which is phase += pi (see absorb_hadamard_self_loop), but after
        // the colour flip it should instead be removed as H H = I; handle
        // by removing the box and compensating.
        d.remove_node(o);
        d.multiply_scalar(2.0);  // two sqrt(2)H legs collapse
        continue;
      }
      d.remove_node(o);
      d.add_edge(v, w);
      d.multiply_scalar(kSqrt2);  // removed an H-box (= sqrt(2) H)
    } else {
      // Insert a fresh H-box into this edge.
      d.remove_edge(e);
      const int h = d.add_hbox();
      d.add_edge(v, h);
      d.add_edge(h, o);
      d.multiply_scalar(1.0 / kSqrt2);  // inserted an H-box
    }
  }
  return true;
}

bool pi_copy(Diagram& d, int pi_node) {
  if (!d.node_alive(pi_node) || !d.is_spider(pi_node)) return false;
  if (!phase_is(d, pi_node, kPi)) return false;
  const auto inc = d.incident_edges(pi_node);
  if (inc.size() != 2) return false;
  if (d.is_self_loop(inc[0]) || d.is_self_loop(inc[1])) return false;
  // Find the opposite-colour spider it points into.
  int through = -1, e_through = -1, e_out = -1;
  for (int e : inc) {
    const int o = d.other_end(e, pi_node);
    if (opposite_spiders(d, pi_node, o)) {
      through = o;
      e_through = e;
    }
  }
  if (through < 0) return false;
  for (int e : inc)
    if (e != e_through) e_out = e;
  MBQ_ASSERT(e_out >= 0);
  const int out_node = d.other_end(e_out, pi_node);
  if (out_node == through) return false;  // degenerate loop; skip

  const NodeKind pi_kind = d.kind(pi_node);
  const real alpha = d.phase(through);

  d.remove_node(pi_node);  // drops e_through and e_out
  d.add_edge(through, out_node);
  // Copy pi onto every OTHER leg of `through`.
  const std::vector<int> legs = d.incident_edges(through);
  for (int f : legs) {
    if (!d.edge_alive(f)) continue;
    const int w = d.other_end(f, through);
    if (w == out_node) {
      // Skip exactly one edge to out_node (the wire the pi came from).
      // If there are parallel edges to out_node, only the first is spared.
      continue;
    }
    d.remove_edge(f);
    const int q = pi_kind == NodeKind::Z ? d.add_z(kPi) : d.add_x(kPi);
    d.add_edge(through, q);
    d.add_edge(q, w);
  }
  d.set_phase(through, wrap_angle(-alpha));
  d.multiply_scalar(std::exp(kI * alpha));
  return true;
}

bool state_copy(Diagram& d, int state_node) {
  if (!d.node_alive(state_node) || !d.is_spider(state_node)) return false;
  if (!(phase_is(d, state_node, 0.0) || phase_is(d, state_node, kPi)))
    return false;
  const auto inc = d.incident_edges(state_node);
  if (inc.size() != 1 || d.is_self_loop(inc[0])) return false;
  const int s = d.other_end(inc[0], state_node);
  if (!opposite_spiders(d, state_node, s)) return false;
  if (!phase_is(d, s, 0.0)) return false;

  const NodeKind state_kind = d.kind(state_node);
  const real state_phase = phase_is(d, state_node, kPi) ? kPi : 0.0;

  // Other neighbours of s.
  std::vector<int> targets;
  for (int e : d.incident_edges(s)) {
    const int o = d.other_end(e, s);
    if (o != state_node) targets.push_back(o);
  }
  const int deg_out = static_cast<int>(targets.size());
  d.remove_node(state_node);
  d.remove_node(s);
  for (int w : targets) {
    const int q =
        state_kind == NodeKind::Z ? d.add_z(state_phase) : d.add_x(state_phase);
    d.add_edge(q, w);
  }
  // Exact factor: sqrt(2) (from the copied pair) vs sqrt(2)^deg_out.
  d.multiply_scalar(std::pow(2.0, 0.5 * (1.0 - deg_out)));
  return true;
}

bool bialgebra(Diagram& d, int z_node, int x_node) {
  if (!d.node_alive(z_node) || !d.node_alive(x_node)) return false;
  if (d.kind(z_node) != NodeKind::Z || d.kind(x_node) != NodeKind::X)
    return false;
  if (!phase_is(d, z_node, 0.0) || !phase_is(d, x_node, 0.0)) return false;
  if (d.edges_between(z_node, x_node).size() != 1) return false;

  std::vector<int> z_ext, x_ext;
  for (int e : d.incident_edges(z_node)) {
    const int o = d.other_end(e, z_node);
    if (o != x_node) z_ext.push_back(o);
    if (o == z_node) return false;  // self-loop
  }
  for (int e : d.incident_edges(x_node)) {
    const int o = d.other_end(e, x_node);
    if (o != z_node) x_ext.push_back(o);
    if (o == x_node) return false;
  }
  d.remove_node(z_node);
  d.remove_node(x_node);
  std::vector<int> new_x, new_z;
  for (int w : z_ext) {
    const int q = d.add_x(0.0);
    d.add_edge(q, w);
    new_x.push_back(q);
  }
  for (int w : x_ext) {
    const int q = d.add_z(0.0);
    d.add_edge(q, w);
    new_z.push_back(q);
  }
  for (int qx : new_x)
    for (int qz : new_z) d.add_edge(qx, qz);
  return true;  // up to scalar
}

bool hopf(Diagram& d, int a, int b) {
  if (!opposite_spiders(d, a, b)) return false;
  const auto between = d.edges_between(a, b);
  if (between.size() < 2) return false;
  d.remove_edge(between[0]);
  d.remove_edge(between[1]);
  d.multiply_scalar(0.5);
  return true;
}

bool remove_self_loops(Diagram& d, int v) {
  if (!d.node_alive(v) || !d.is_spider(v)) return false;
  bool any = false;
  const std::vector<int> inc = d.incident_edges(v);
  for (int e : inc) {
    if (d.edge_alive(e) && d.is_self_loop(e)) {
      d.remove_edge(e);
      any = true;
    }
  }
  return any;
}

bool absorb_hadamard_self_loop(Diagram& d, int hbox) {
  if (!d.node_alive(hbox) || !d.is_hadamard_box(hbox)) return false;
  const auto inc = d.incident_edges(hbox);
  if (inc.size() != 2) return false;
  const int a = d.other_end(inc[0], hbox);
  const int b = d.other_end(inc[1], hbox);
  if (a != b || !d.is_spider(a)) return false;
  d.remove_node(hbox);
  d.set_phase(a, wrap_angle(d.phase(a) + kPi));
  return true;
}

bool cancel_parallel_hadamard_pair(Diagram& d, int a, int b) {
  if (a == b || !d.node_alive(a) || !d.node_alive(b)) return false;
  if (!d.is_spider(a) || !d.is_spider(b)) return false;
  if (d.kind(a) != d.kind(b)) return false;
  // Find two distinct H-boxes each joining a and b.
  std::vector<int> boxes;
  for (int e : d.incident_edges(a)) {
    const int h = d.other_end(e, a);
    if (!d.is_hadamard_box(h)) continue;
    bool to_b = false;
    for (int f : d.incident_edges(h))
      if (d.other_end(f, h) == b) to_b = true;
    if (to_b) boxes.push_back(h);
    if (boxes.size() == 2) break;
  }
  if (boxes.size() < 2) return false;
  d.remove_node(boxes[0]);
  d.remove_node(boxes[1]);
  // Exact: the two (-1)^{ab} factors square to 1; nothing else changes.
  return true;
}

}  // namespace mbq::zx::rules
