#pragma once
// Measurement patterns as ZX-diagrams — the reverse of the paper's
// derivation direction, used as a whole-stack cross-check.
//
// For a FIXED branch (all recorded outcomes 0) a pattern is a linear map
// built from:  |+> preparations (phase-0 Z spiders), CZ entanglers
// (Hadamard edges), and measurement effects:
//   XY(alpha), outcome 0:  <+_alpha|  = arity-1 Z(-alpha) effect spider
//   YZ(theta), outcome 0:  <0|e^{-i theta X/2} = arity-1 X(theta) spider
// (X and Z planes are the alpha/theta = 0 specials).  Corrections whose
// domains evaluate to 0 vanish.  The diagram therefore evaluates to the
// (unnormalized) output state of the runner on the all-zero branch —
// tests compare the two up to a scalar, tying the ZX semantics, the
// measurement calculus and both simulators together.

#include "mbq/mbqc/pattern.h"
#include "mbq/zx/diagram.h"

namespace mbq::zx {

/// Build the all-outcomes-zero branch diagram of a pattern.  The pattern
/// must have no open inputs (all wires N-prepared); outputs become
/// diagram outputs in pattern order.
Diagram diagram_from_pattern(const mbqc::Pattern& p);

}  // namespace mbq::zx
