#include "mbq/graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>

namespace mbq {

Graph path_graph(int n) {
  MBQ_REQUIRE(n >= 1, "path graph needs n >= 1, got " << n);
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(int n) {
  MBQ_REQUIRE(n >= 3, "cycle graph needs n >= 3, got " << n);
  Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph complete_graph(int n) {
  MBQ_REQUIRE(n >= 1, "complete graph needs n >= 1, got " << n);
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph star_graph(int n) {
  MBQ_REQUIRE(n >= 1, "star graph needs n >= 1, got " << n);
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid_graph(int rows, int cols) {
  MBQ_REQUIRE(rows >= 1 && cols >= 1,
              "grid needs positive dims, got " << rows << "x" << cols);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph complete_bipartite_graph(int a, int b) {
  MBQ_REQUIRE(a >= 1 && b >= 1, "K_{a,b} needs a,b >= 1, got " << a << "," << b);
  Graph g(a + b);
  for (int u = 0; u < a; ++u)
    for (int v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

Graph petersen_graph() {
  Graph g(10);
  // Outer 5-cycle, inner pentagram, spokes.
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  for (int i = 0; i < 5; ++i) g.add_edge(5 + i, 5 + (i + 2) % 5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, 5 + i);
  return g;
}

Graph random_gnm_graph(int n, int m, Rng& rng) {
  MBQ_REQUIRE(n >= 0, "negative n " << n);
  const std::int64_t max_m =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  MBQ_REQUIRE(m >= 0 && m <= max_m,
              "edge count " << m << " out of range [0, " << max_m << "]");
  Graph g(n);
  if (m > max_m / 2) {
    // Dense regime: rejection sampling degrades coupon-collector-style as
    // m -> max_m (the last edge alone needs ~max_m draws at m == max_m).
    // Enumerate every candidate edge once and take a partial Fisher-Yates
    // prefix instead: exactly m uniform draws, still a pure function of
    // the rng stream.
    std::vector<std::pair<int, int>> candidates;
    candidates.reserve(static_cast<std::size_t>(max_m));
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v) candidates.emplace_back(u, v);
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t j =
          i + static_cast<std::int64_t>(
                  rng.uniform_index(static_cast<std::uint64_t>(max_m - i)));
      std::swap(candidates[i], candidates[j]);
      g.add_edge(candidates[i].first, candidates[i].second);
    }
    return g;
  }
  std::set<std::pair<int, int>> chosen;
  while (static_cast<int>(chosen.size()) < m) {
    int u = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (chosen.insert({u, v}).second) g.add_edge(u, v);
  }
  return g;
}

Graph random_gnp_graph(int n, real p, Rng& rng) {
  MBQ_REQUIRE(n >= 0, "negative n " << n);
  MBQ_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range: " << p);
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_edge(u, v);
  return g;
}

Graph random_regular_graph(int n, int d, Rng& rng) {
  MBQ_REQUIRE(n >= 1 && d >= 0, "bad parameters n=" << n << " d=" << d);
  MBQ_REQUIRE(d < n, "degree " << d << " must be < n=" << n);
  MBQ_REQUIRE((static_cast<std::int64_t>(n) * d) % 2 == 0,
              "n*d must be even for a " << d << "-regular graph on " << n);
  // Configuration model with rejection; expected O(1) restarts for the
  // small degrees used in experiments.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (int v = 0; v < n; ++v)
      for (int k = 0; k < d; ++k) stubs.push_back(v);
    rng.shuffle(stubs);
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      const int u = stubs[i];
      const int v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        ok = false;
      } else {
        g.add_edge(u, v);
      }
    }
    if (ok) return g;
  }
  throw Error("random_regular_graph: failed to generate a simple graph "
              "after 1000 attempts (n=" +
              std::to_string(n) + ", d=" + std::to_string(d) + ")");
}

}  // namespace mbq
