#pragma once
// Plain-text edge-list serialization:
//   line 1: "<num_vertices> <num_edges>"
//   then one "u v" pair per line.

#include <iosfwd>
#include <string>

#include "mbq/graph/graph.h"

namespace mbq {

std::string to_edge_list(const Graph& g);
Graph from_edge_list(const std::string& text);

void write_edge_list(std::ostream& os, const Graph& g);
Graph read_edge_list(std::istream& is);

}  // namespace mbq
