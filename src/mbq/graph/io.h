#pragma once
// Plain-text edge-list serialization:
//   line 1: "<num_vertices> <num_edges>"
//   then one "u v" pair per line;
//   optionally followed by a vertex-weight section:
//     "weights <num_vertices>"
//     then one weight per line (printed with 17 significant digits, so
//     the text round-trips every double bit-exactly).
//
// Round-trip loss is a hard error, never silent: writing weights whose
// count does not match the vertex count throws, and the unweighted
// readers throw when the text carries a weights section (use the
// *_weighted readers, which also accept unweighted files and return
// empty weights for them).

#include <iosfwd>
#include <string>
#include <vector>

#include "mbq/common/types.h"
#include "mbq/graph/graph.h"

namespace mbq {

/// A graph plus optional per-vertex weights (empty = the file had none),
/// as produced by the *_weighted edge-list readers and consumed by e.g.
/// the weighted-MIS workload frontends.
struct WeightedGraph {
  Graph graph;
  std::vector<real> vertex_weights;
};

std::string to_edge_list(const Graph& g);
/// With a vertex-weight section; weights.size() must equal
/// g.num_vertices() (anything else would drop or invent weights — hard
/// error).
std::string to_edge_list(const Graph& g, const std::vector<real>& weights);

/// Throws Error when the text carries a weights section: decoding it to
/// a bare Graph would silently drop the weights.
Graph from_edge_list(const std::string& text);
/// Accepts both plain and weighted edge lists; vertex_weights is empty
/// for plain files and has exactly num_vertices entries otherwise.
WeightedGraph from_edge_list_weighted(const std::string& text);

void write_edge_list(std::ostream& os, const Graph& g);
void write_edge_list(std::ostream& os, const Graph& g,
                     const std::vector<real>& weights);
Graph read_edge_list(std::istream& is);
WeightedGraph read_edge_list_weighted(std::istream& is);

}  // namespace mbq
