#pragma once
// Graph families used as problem instances and resource-state layouts.

#include "mbq/common/rng.h"
#include "mbq/graph/graph.h"

namespace mbq {

/// Path P_n: 0-1-2-...-(n-1).
Graph path_graph(int n);
/// Cycle C_n (n >= 3).
Graph cycle_graph(int n);
/// Complete graph K_n.
Graph complete_graph(int n);
/// Star S_n: vertex 0 joined to 1..n-1.
Graph star_graph(int n);
/// rows x cols 2D grid (the classic cluster-state layout).
Graph grid_graph(int rows, int cols);
/// Complete bipartite K_{a,b}; parts are [0,a) and [a,a+b).
Graph complete_bipartite_graph(int a, int b);
/// The Petersen graph (10 vertices, 15 edges, 3-regular).
Graph petersen_graph();

/// Erdos-Renyi G(n, m): exactly m distinct edges, uniformly at random.
/// Sparse instances (m <= max_m/2) use rejection sampling; dense ones
/// take a partial Fisher-Yates prefix of the full candidate-edge list,
/// so the cost stays O(n^2 + m) instead of coupon-collecting.  Both
/// regimes are pure functions of the rng stream (but draw different
/// sequences, so the same seed yields different — equally uniform —
/// edge sets on either side of the threshold).
Graph random_gnm_graph(int n, int m, Rng& rng);
/// Erdos-Renyi G(n, p): each edge independently with probability p.
Graph random_gnp_graph(int n, real p, Rng& rng);
/// Random d-regular graph via the configuration model with restarts
/// (requires n*d even, d < n).
Graph random_regular_graph(int n, int d, Rng& rng);

}  // namespace mbq
