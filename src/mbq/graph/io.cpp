#include "mbq/graph/io.h"

#include <sstream>

namespace mbq {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream oss;
  write_edge_list(oss, g);
  return oss.str();
}

Graph read_edge_list(std::istream& is) {
  int n = -1, m = -1;
  MBQ_REQUIRE(static_cast<bool>(is >> n >> m),
              "edge list: missing header '<n> <m>'");
  MBQ_REQUIRE(n >= 0 && m >= 0, "edge list: bad header n=" << n << " m=" << m);
  Graph g(n);
  for (int i = 0; i < m; ++i) {
    int u = -1, v = -1;
    MBQ_REQUIRE(static_cast<bool>(is >> u >> v),
                "edge list: expected " << m << " edges, got " << i);
    g.add_edge(u, v);
  }
  return g;
}

Graph from_edge_list(const std::string& text) {
  std::istringstream iss(text);
  return read_edge_list(iss);
}

}  // namespace mbq
