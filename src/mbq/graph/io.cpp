#include "mbq/graph/io.h"

#include <iomanip>
#include <limits>
#include <sstream>

namespace mbq {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) os << e.u << " " << e.v << "\n";
}

void write_edge_list(std::ostream& os, const Graph& g,
                     const std::vector<real>& weights) {
  MBQ_REQUIRE(static_cast<int>(weights.size()) == g.num_vertices(),
              "edge list: " << weights.size() << " vertex weights for "
                            << g.num_vertices()
                            << " vertices — refusing to drop or invent "
                               "weights");
  write_edge_list(os, g);
  os << "weights " << weights.size() << "\n";
  // max_digits10 significant digits round-trip every finite double
  // bit-exactly through decimal text.
  os << std::setprecision(std::numeric_limits<real>::max_digits10);
  for (const real w : weights) os << w << "\n";
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream oss;
  write_edge_list(oss, g);
  return oss.str();
}

std::string to_edge_list(const Graph& g, const std::vector<real>& weights) {
  std::ostringstream oss;
  write_edge_list(oss, g, weights);
  return oss.str();
}

WeightedGraph read_edge_list_weighted(std::istream& is) {
  int n = -1, m = -1;
  MBQ_REQUIRE(static_cast<bool>(is >> n >> m),
              "edge list: missing header '<n> <m>'");
  MBQ_REQUIRE(n >= 0 && m >= 0, "edge list: bad header n=" << n << " m=" << m);
  WeightedGraph wg;
  wg.graph = Graph(n);
  for (int i = 0; i < m; ++i) {
    int u = -1, v = -1;
    MBQ_REQUIRE(static_cast<bool>(is >> u >> v),
                "edge list: expected " << m << " edges, got " << i);
    wg.graph.add_edge(u, v);
  }
  std::string section;
  if (!(is >> section)) return wg;  // plain file: no weights section
  MBQ_REQUIRE(section == "weights",
              "edge list: expected 'weights' section, got '" << section << "'");
  int count = -1;
  MBQ_REQUIRE(static_cast<bool>(is >> count),
              "edge list: 'weights' needs a count");
  MBQ_REQUIRE(count == n, "edge list: weights section has "
                              << count << " entries for " << n
                              << " vertices — a round trip would lose data");
  wg.vertex_weights.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    MBQ_REQUIRE(static_cast<bool>(is >> wg.vertex_weights[i]),
                "edge list: expected " << n << " weights, got " << i);
  return wg;
}

Graph read_edge_list(std::istream& is) {
  WeightedGraph wg = read_edge_list_weighted(is);
  // Decoding a weighted file into a bare Graph would silently drop the
  // weights — round-trip loss is a hard error here.
  MBQ_REQUIRE(wg.vertex_weights.empty(),
              "edge list carries a vertex-weight section; reading it as an "
              "unweighted Graph would drop the weights — use "
              "read_edge_list_weighted/from_edge_list_weighted");
  return std::move(wg.graph);
}

Graph from_edge_list(const std::string& text) {
  std::istringstream iss(text);
  return read_edge_list(iss);
}

WeightedGraph from_edge_list_weighted(const std::string& text) {
  std::istringstream iss(text);
  return read_edge_list_weighted(iss);
}

}  // namespace mbq
