#pragma once
// Undirected simple graphs.
//
// Graphs appear in three roles in this library: as optimization problem
// instances (MaxCut, MIS), as the interaction graph of a cost Hamiltonian,
// and as MBQC resource (cluster/graph) states.  The representation is a
// sorted adjacency list per vertex plus a canonical edge list, which keeps
// neighbourhood iteration, edge iteration and membership tests all cheap
// for the sizes we simulate.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mbq/common/error.h"

namespace mbq {

/// An undirected edge; stored with u < v.
struct Edge {
  int u = 0;
  int v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_vertices);
  Graph(int num_vertices, const std::vector<Edge>& edges);

  int num_vertices() const noexcept { return static_cast<int>(adj_.size()); }
  int num_edges() const noexcept { return static_cast<int>(edges_.size()); }

  /// Add an isolated vertex; returns its index.
  int add_vertex();
  /// Add edge {u, v}. Self-loops and duplicates are rejected.
  void add_edge(int u, int v);
  /// True if {u, v} is an edge.
  bool has_edge(int u, int v) const;

  /// Neighbours of v, sorted ascending.
  const std::vector<int>& neighbors(int v) const;
  int degree(int v) const;
  int max_degree() const noexcept;
  /// Edges with u < v, sorted lexicographically.
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Vertices adjacent to none; useful for sanity checks.
  std::vector<int> isolated_vertices() const;

  /// Connected components as vertex lists (BFS).
  std::vector<std::vector<int>> connected_components() const;
  bool is_connected() const;

  /// Number of triangles through edge {u,v} (common neighbours); the
  /// lambda_{uv} of the Wang et al. p=1 MaxCut formula.
  int common_neighbor_count(int u, int v) const;
  /// Total triangle count of the graph.
  std::int64_t triangle_count() const;

  /// Two-coloring if bipartite.
  bool is_bipartite() const;

  /// A human-readable summary like "Graph(n=5, m=6)".
  std::string str() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  void check_vertex(int v) const;

  std::vector<std::vector<int>> adj_;
  std::vector<Edge> edges_;
};

}  // namespace mbq
