#include "mbq/graph/graph.h"

#include <algorithm>
#include <queue>

namespace mbq {

Graph::Graph(int num_vertices) {
  MBQ_REQUIRE(num_vertices >= 0, "negative vertex count " << num_vertices);
  adj_.resize(static_cast<std::size_t>(num_vertices));
}

Graph::Graph(int num_vertices, const std::vector<Edge>& edges)
    : Graph(num_vertices) {
  for (const Edge& e : edges) add_edge(e.u, e.v);
}

void Graph::check_vertex(int v) const {
  MBQ_REQUIRE(v >= 0 && v < num_vertices(),
              "vertex " << v << " out of range [0, " << num_vertices() << ")");
}

int Graph::add_vertex() {
  adj_.emplace_back();
  return num_vertices() - 1;
}

void Graph::add_edge(int u, int v) {
  check_vertex(u);
  check_vertex(v);
  MBQ_REQUIRE(u != v, "self-loop at vertex " << u);
  MBQ_REQUIRE(!has_edge(u, v), "duplicate edge {" << u << "," << v << "}");
  if (u > v) std::swap(u, v);
  auto& au = adj_[u];
  au.insert(std::upper_bound(au.begin(), au.end(), v), v);
  auto& av = adj_[v];
  av.insert(std::upper_bound(av.begin(), av.end(), u), u);
  Edge e{u, v};
  edges_.insert(std::upper_bound(edges_.begin(), edges_.end(), e), e);
}

bool Graph::has_edge(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  if (u == v) return false;
  const auto& a = adj_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

const std::vector<int>& Graph::neighbors(int v) const {
  check_vertex(v);
  return adj_[v];
}

int Graph::degree(int v) const {
  check_vertex(v);
  return static_cast<int>(adj_[v].size());
}

int Graph::max_degree() const noexcept {
  int d = 0;
  for (const auto& a : adj_) d = std::max(d, static_cast<int>(a.size()));
  return d;
}

std::vector<int> Graph::isolated_vertices() const {
  std::vector<int> out;
  for (int v = 0; v < num_vertices(); ++v)
    if (adj_[v].empty()) out.push_back(v);
  return out;
}

std::vector<std::vector<int>> Graph::connected_components() const {
  std::vector<std::vector<int>> comps;
  std::vector<char> seen(static_cast<std::size_t>(num_vertices()), 0);
  for (int s = 0; s < num_vertices(); ++s) {
    if (seen[s]) continue;
    std::vector<int> comp;
    std::queue<int> q;
    q.push(s);
    seen[s] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      comp.push_back(v);
      for (int w : adj_[v]) {
        if (!seen[w]) {
          seen[w] = 1;
          q.push(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

bool Graph::is_connected() const {
  if (num_vertices() == 0) return true;
  return connected_components().size() == 1;
}

int Graph::common_neighbor_count(int u, int v) const {
  check_vertex(u);
  check_vertex(v);
  const auto& a = adj_[u];
  const auto& b = adj_[v];
  int count = 0;
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) ++i;
    else if (*j < *i) ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::int64_t Graph::triangle_count() const {
  std::int64_t total = 0;
  for (const Edge& e : edges_) total += common_neighbor_count(e.u, e.v);
  return total / 3;
}

bool Graph::is_bipartite() const {
  std::vector<int> color(static_cast<std::size_t>(num_vertices()), -1);
  for (int s = 0; s < num_vertices(); ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    std::queue<int> q;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : adj_[v]) {
        if (color[w] == -1) {
          color[w] = 1 - color[v];
          q.push(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::string Graph::str() const {
  return "Graph(n=" + std::to_string(num_vertices()) +
         ", m=" + std::to_string(num_edges()) + ")";
}

}  // namespace mbq
