#pragma once
// Classical optimizer interfaces for the variational outer loop.
//
// All optimizers MAXIMIZE the objective (matching the cost-Hamiltonian
// convention).  They are deterministic given the seed, so experiment
// tables are reproducible.

#include <functional>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"

namespace mbq::opt {

using Objective = std::function<real(const std::vector<real>&)>;

struct OptResult {
  std::vector<real> x;
  real value = -1e300;
  int evaluations = 0;
};

}  // namespace mbq::opt
