#pragma once
// Classical optimizer interfaces for the variational outer loop.
//
// All optimizers MAXIMIZE the objective (matching the cost-Hamiltonian
// convention).  They are deterministic given the seed, so experiment
// tables are reproducible.
//
// Two objective shapes are supported.  The scalar Objective evaluates one
// candidate point; the BatchObjective evaluates a whole set of candidate
// points in one call, letting the evaluation layer fan the points out
// across threads (api::Session::batch_objective) or, eventually, across
// processes.  Every optimizer offers both paths, and the batch path visits
// the same points in the same order as the scalar one, so results are
// identical — batching is purely a wall-clock knob.

#include <functional>
#include <vector>

#include "mbq/common/rng.h"
#include "mbq/common/types.h"

namespace mbq::opt {

using Objective = std::function<real(const std::vector<real>&)>;

/// Evaluate many candidate points at once; returns one value per point, in
/// order.  The caller may assume nothing about evaluation order WITHIN a
/// batch (points of one batch must be independent).
using BatchObjective =
    std::function<std::vector<real>(const std::vector<std::vector<real>>&)>;

/// Lift a scalar objective to the batch interface (serial loop), so any
/// optimizer's batch path can also run on a plain Objective.
BatchObjective batched(Objective f);

struct OptResult {
  std::vector<real> x;
  real value = -1e300;
  int evaluations = 0;
};

}  // namespace mbq::opt
