#include "mbq/opt/grid.h"

#include "mbq/common/error.h"

namespace mbq::opt {

OptResult grid_search(const Objective& f, const std::vector<GridAxis>& axes) {
  return grid_search(batched(f), axes);
}

OptResult grid_search(const BatchObjective& f, const std::vector<GridAxis>& axes,
                      int chunk_size) {
  MBQ_REQUIRE(!axes.empty(), "grid_search needs at least one axis");
  MBQ_REQUIRE(chunk_size >= 1, "chunk size must be >= 1, got " << chunk_size);
  std::int64_t total = 1;
  for (const auto& a : axes) {
    MBQ_REQUIRE(a.points >= 1, "axis needs >= 1 point");
    total *= a.points;
    MBQ_REQUIRE(total <= 10'000'000, "grid too large: " << total);
  }
  OptResult best;
  std::vector<real> x(axes.size());
  std::vector<std::vector<real>> chunk;
  chunk.reserve(static_cast<std::size_t>(chunk_size));
  // Scan the chunk's values in grid order so the first strictly-greater
  // point wins ties exactly as the serial loop does.
  auto flush = [&] {
    if (chunk.empty()) return;
    const std::vector<real> values = f(chunk);
    MBQ_REQUIRE(values.size() == chunk.size(),
                "batch objective returned " << values.size() << " values for "
                                            << chunk.size() << " points");
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      ++best.evaluations;
      if (values[i] > best.value) {
        best.value = values[i];
        best.x = chunk[i];
      }
    }
    chunk.clear();
  };
  for (std::int64_t idx = 0; idx < total; ++idx) {
    std::int64_t rem = idx;
    for (std::size_t d = 0; d < axes.size(); ++d) {
      const auto& a = axes[d];
      const int i = static_cast<int>(rem % a.points);
      rem /= a.points;
      x[d] = a.points == 1
                 ? a.lo
                 : a.lo + (a.hi - a.lo) * static_cast<real>(i) /
                       (a.points - 1);
    }
    chunk.push_back(x);
    if (chunk.size() >= static_cast<std::size_t>(chunk_size)) flush();
  }
  flush();
  return best;
}

}  // namespace mbq::opt
