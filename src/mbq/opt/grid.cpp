#include "mbq/opt/grid.h"

#include "mbq/common/error.h"

namespace mbq::opt {

OptResult grid_search(const Objective& f, const std::vector<GridAxis>& axes) {
  MBQ_REQUIRE(!axes.empty(), "grid_search needs at least one axis");
  std::int64_t total = 1;
  for (const auto& a : axes) {
    MBQ_REQUIRE(a.points >= 1, "axis needs >= 1 point");
    total *= a.points;
    MBQ_REQUIRE(total <= 10'000'000, "grid too large: " << total);
  }
  OptResult best;
  std::vector<real> x(axes.size());
  for (std::int64_t idx = 0; idx < total; ++idx) {
    std::int64_t rem = idx;
    for (std::size_t d = 0; d < axes.size(); ++d) {
      const auto& a = axes[d];
      const int i = static_cast<int>(rem % a.points);
      rem /= a.points;
      x[d] = a.points == 1
                 ? a.lo
                 : a.lo + (a.hi - a.lo) * static_cast<real>(i) /
                       (a.points - 1);
    }
    const real v = f(x);
    ++best.evaluations;
    if (v > best.value) {
      best.value = v;
      best.x = x;
    }
  }
  return best;
}

}  // namespace mbq::opt
