#include "mbq/opt/optimizer.h"

#include "mbq/common/error.h"

namespace mbq::opt {

BatchObjective batched(Objective f) {
  MBQ_REQUIRE(f != nullptr, "batched() needs a non-null objective");
  return [f = std::move(f)](const std::vector<std::vector<real>>& points) {
    std::vector<real> values;
    values.reserve(points.size());
    for (const auto& x : points) values.push_back(f(x));
    return values;
  };
}

}  // namespace mbq::opt
