#include "mbq/opt/exact.h"

#include <algorithm>
#include <cmath>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq::opt {

ExactSolution brute_force_maximum(const qaoa::CostHamiltonian& cost) {
  const auto table = cost.cost_table();
  ExactSolution best;
  // Serial argmax over the (possibly parallel-computed) table: the table
  // evaluation dominates, and a serial scan is deterministic.
  for (std::uint64_t x = 0; x < table.size(); ++x) {
    if (table[x] > best.value) {
      best.value = table[x];
      best.x = x;
    }
  }
  return best;
}

std::uint64_t greedy_mis(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<char> removed(n, 0);
  std::uint64_t set = 0;
  while (true) {
    int best = -1, best_deg = 1 << 30;
    for (int v = 0; v < n; ++v) {
      if (removed[v]) continue;
      int deg = 0;
      for (int w : g.neighbors(v)) deg += !removed[w];
      if (deg < best_deg) {
        best_deg = deg;
        best = v;
      }
    }
    if (best < 0) break;
    set |= std::uint64_t{1} << best;
    removed[best] = 1;
    for (int w : g.neighbors(best)) removed[w] = 1;
  }
  return set;
}

ExactSolution simulated_annealing(const qaoa::CostHamiltonian& cost,
                                  const AnnealOptions& options, Rng& rng) {
  const int n = cost.num_qubits();
  MBQ_REQUIRE(options.sweeps >= 1, "need at least one sweep");
  std::uint64_t x = rng.next() & ((n == 64) ? ~0ULL : ((1ULL << n) - 1));
  real cur = cost.evaluate(x);
  ExactSolution best{x, cur};
  const real ratio = options.t_final / options.t_initial;
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    const real t =
        options.t_initial *
        std::pow(ratio, static_cast<real>(sweep) / (options.sweeps - 1 + 1e-12));
    for (int flip = 0; flip < n; ++flip) {
      const int q = static_cast<int>(rng.uniform_index(n));
      const std::uint64_t y = flip_bit(x, q);
      const real cy = cost.evaluate(y);
      if (cy >= cur || rng.uniform() < std::exp((cy - cur) / t)) {
        x = y;
        cur = cy;
        if (cur > best.value) best = {x, cur};
      }
    }
  }
  return best;
}

}  // namespace mbq::opt
