#include "mbq/opt/nelder_mead.h"

#include <algorithm>

#include "mbq/common/error.h"

namespace mbq::opt {

namespace {

OptResult nelder_mead_single(const BatchObjective& f, std::vector<real> x0,
                             const NelderMeadOptions& opt, int* evals) {
  const std::size_t n = x0.size();
  // Simplex of n+1 points.
  std::vector<std::vector<real>> pts(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) pts[i + 1][i] += opt.initial_step;
  auto eval_many = [&](const std::vector<std::vector<real>>& xs) {
    *evals += static_cast<int>(xs.size());
    std::vector<real> values = f(xs);
    MBQ_REQUIRE(values.size() == xs.size(),
                "batch objective returned " << values.size() << " values for "
                                            << xs.size() << " points");
    return values;
  };
  auto eval = [&](const std::vector<real>& x) { return eval_many({x})[0]; };
  // The whole initial simplex is one batch.
  std::vector<real> val = eval_many(pts);

  const real alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
  while (*evals < opt.max_evaluations) {
    // Order descending by value (maximization).
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return val[a] > val[b]; });
    {
      std::vector<std::vector<real>> p2(n + 1);
      std::vector<real> v2(n + 1);
      for (std::size_t i = 0; i <= n; ++i) {
        p2[i] = pts[idx[i]];
        v2[i] = val[idx[i]];
      }
      pts = std::move(p2);
      val = std::move(v2);
    }
    if (val.front() - val.back() < opt.tolerance) break;

    // Centroid of all but the worst.
    std::vector<real> centroid(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < n; ++d) centroid[d] += pts[i][d] / n;

    auto affine = [&](real t) {
      std::vector<real> x(n);
      for (std::size_t d = 0; d < n; ++d)
        x[d] = centroid[d] + t * (pts[n][d] - centroid[d]);
      return x;
    };

    const auto reflected = affine(-alpha);
    const real fr = eval(reflected);
    if (fr > val[0]) {
      const auto expanded = affine(-gamma);
      const real fe = eval(expanded);
      if (fe > fr) {
        pts[n] = expanded;
        val[n] = fe;
      } else {
        pts[n] = reflected;
        val[n] = fr;
      }
      continue;
    }
    if (fr > val[n - 1]) {
      pts[n] = reflected;
      val[n] = fr;
      continue;
    }
    const auto contracted = affine(rho);
    const real fc = eval(contracted);
    if (fc > val[n]) {
      pts[n] = contracted;
      val[n] = fc;
      continue;
    }
    // Shrink toward the best; the n shrunk points are one batch.
    for (std::size_t i = 1; i <= n; ++i)
      for (std::size_t d = 0; d < n; ++d)
        pts[i][d] = pts[0][d] + sigma * (pts[i][d] - pts[0][d]);
    const std::vector<real> shrunk =
        eval_many({pts.begin() + 1, pts.end()});
    for (std::size_t i = 1; i <= n; ++i) val[i] = shrunk[i - 1];
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (val[i] > val[best]) best = i;
  OptResult r;
  r.x = pts[best];
  r.value = val[best];
  return r;
}

}  // namespace

OptResult nelder_mead(const Objective& f, std::vector<real> x0,
                      const NelderMeadOptions& options, Rng& rng) {
  return nelder_mead(batched(f), std::move(x0), options, rng);
}

OptResult nelder_mead(const BatchObjective& f, std::vector<real> x0,
                      const NelderMeadOptions& options, Rng& rng) {
  MBQ_REQUIRE(!x0.empty(), "empty parameter vector");
  int evals = 0;
  OptResult best = nelder_mead_single(f, x0, options, &evals);
  for (int r = 0; r < options.restarts && evals < options.max_evaluations;
       ++r) {
    std::vector<real> start = best.x;
    for (auto& v : start) v += rng.normal() * options.initial_step;
    OptResult cand = nelder_mead_single(f, start, options, &evals);
    if (cand.value > best.value) best = cand;
  }
  best.evaluations = evals;
  return best;
}

}  // namespace mbq::opt
