#include "mbq/opt/spsa.h"

#include <cmath>

#include "mbq/common/error.h"

namespace mbq::opt {

OptResult spsa(const Objective& f, std::vector<real> x0,
               const SpsaOptions& opt, Rng& rng) {
  return spsa(batched(f), std::move(x0), opt, rng);
}

OptResult spsa(const BatchObjective& f, std::vector<real> x0,
               const SpsaOptions& opt, Rng& rng) {
  MBQ_REQUIRE(!x0.empty(), "empty parameter vector");
  const std::size_t n = x0.size();
  std::vector<real> x = std::move(x0);
  OptResult best;

  auto record = [&](const std::vector<real>& pt, real v) {
    if (v > best.value) {
      best.value = v;
      best.x = pt;
    }
  };

  for (int k = 0; k < opt.iterations; ++k) {
    const real ak = opt.a / std::pow(k + 1 + opt.A, opt.alpha);
    const real ck = opt.c / std::pow(k + 1, opt.gamma);
    std::vector<real> delta(n);
    for (auto& d : delta) d = rng.coin() ? 1.0 : -1.0;
    std::vector<real> xp = x, xm = x;
    for (std::size_t i = 0; i < n; ++i) {
      xp[i] += ck * delta[i];
      xm[i] -= ck * delta[i];
    }
    // The two perturbed points are independent: one batch.
    const std::vector<real> fpm = f({xp, xm});
    MBQ_REQUIRE(fpm.size() == 2, "batch objective returned "
                                     << fpm.size() << " values for 2 points");
    const real fp = fpm[0];
    const real fm = fpm[1];
    best.evaluations += 2;
    record(xp, fp);
    record(xm, fm);
    // Ascent step (maximization).
    for (std::size_t i = 0; i < n; ++i)
      x[i] += ak * (fp - fm) / (2.0 * ck * delta[i]);
  }
  const std::vector<real> fxs = f({x});
  MBQ_REQUIRE(fxs.size() == 1, "batch objective returned " << fxs.size()
                                                           << " values for 1 point");
  const real fx = fxs[0];
  ++best.evaluations;
  record(x, fx);
  return best;
}

}  // namespace mbq::opt
