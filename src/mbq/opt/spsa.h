#pragma once
// Simultaneous Perturbation Stochastic Approximation: gradient-free
// maximization robust to noisy objectives (shot-based expectation
// estimates), two evaluations per iteration regardless of dimension.

#include "mbq/opt/optimizer.h"

namespace mbq::opt {

struct SpsaOptions {
  int iterations = 200;
  real a = 0.2;      // step-size numerator
  real c = 0.15;     // perturbation size
  real alpha = 0.602;
  real gamma = 0.101;
  real A = 10.0;     // step-size stability constant
};

OptResult spsa(const Objective& f, std::vector<real> x0,
               const SpsaOptions& options, Rng& rng);

/// Batch-aware variant: the two perturbed evaluations of each iteration
/// go through one BatchObjective call (they are independent), halving the
/// critical path on a parallel evaluator.  Identical trajectory and
/// result to the scalar overload.
OptResult spsa(const BatchObjective& f, std::vector<real> x0,
               const SpsaOptions& options, Rng& rng);

}  // namespace mbq::opt
