#pragma once
// Nelder-Mead simplex maximization with optional random restarts — the
// default parameter optimizer for QAOA angles.

#include "mbq/opt/optimizer.h"

namespace mbq::opt {

struct NelderMeadOptions {
  int max_evaluations = 2000;
  real initial_step = 0.4;
  real tolerance = 1e-8;  // simplex value spread stopping criterion
  int restarts = 0;       // additional random restarts around best point
};

OptResult nelder_mead(const Objective& f, std::vector<real> x0,
                      const NelderMeadOptions& options, Rng& rng);

/// Batch-aware variant: the initial simplex (n+1 points) and every shrink
/// step (n points) are evaluated through one BatchObjective call, so a
/// parallel evaluator (api::Session::batch_objective) overlaps them.  The
/// trajectory — points visited, their order, and the result — is identical
/// to the scalar overload.
OptResult nelder_mead(const BatchObjective& f, std::vector<real> x0,
                      const NelderMeadOptions& options, Rng& rng);

}  // namespace mbq::opt
