#pragma once
// Exact (brute-force) and heuristic classical baselines.

#include <cstdint>

#include "mbq/common/rng.h"
#include "mbq/graph/graph.h"
#include "mbq/qaoa/hamiltonian.h"

namespace mbq::opt {

struct ExactSolution {
  std::uint64_t x = 0;
  real value = -1e300;
};

/// argmax_x c(x) by exhaustive (OpenMP-parallel) enumeration; n <= 28.
ExactSolution brute_force_maximum(const qaoa::CostHamiltonian& cost);

/// Greedy maximum independent set: repeatedly take a minimum-degree
/// vertex and delete its neighbourhood.  Returns the chosen set as a
/// bitmask.
std::uint64_t greedy_mis(const Graph& g);

/// Simulated annealing over bit flips, maximizing the cost; the SA
/// baseline for comparing solution quality against QAOA sampling.
struct AnnealOptions {
  int sweeps = 200;
  real t_initial = 2.0;
  real t_final = 0.01;
};
ExactSolution simulated_annealing(const qaoa::CostHamiltonian& cost,
                                  const AnnealOptions& options, Rng& rng);

}  // namespace mbq::opt
