#pragma once
// Exhaustive grid search over parameter boxes; practical for the p=1
// (gamma, beta) landscape and as a seeding stage for Nelder-Mead.

#include "mbq/opt/optimizer.h"

namespace mbq::opt {

struct GridAxis {
  real lo = 0.0;
  real hi = 1.0;
  int points = 8;
};

/// Evaluate f on the Cartesian grid; returns the best point.
OptResult grid_search(const Objective& f, const std::vector<GridAxis>& axes);

/// Batch-aware variant: grid points are fed to f in chunks of
/// `chunk_size` (in grid order), so a parallel evaluator overlaps them.
/// Same points, same first-wins tie-breaking, same result as the scalar
/// overload.
OptResult grid_search(const BatchObjective& f, const std::vector<GridAxis>& axes,
                      int chunk_size = 256);

}  // namespace mbq::opt
