#include "mbq/qaoa/hea.h"

#include "mbq/common/error.h"
#include "mbq/common/rng.h"

namespace mbq::qaoa {

HeaParameters HeaParameters::random(int layers, int n, Rng& rng) {
  MBQ_REQUIRE(layers >= 1 && n >= 1, "bad HEA shape");
  HeaParameters p;
  p.theta.resize(layers);
  for (auto& layer : p.theta) {
    layer.resize(n);
    for (auto& q : layer) q = {rng.angle(), rng.angle()};
  }
  return p;
}

std::vector<real> HeaParameters::flat() const {
  std::vector<real> v;
  for (const auto& layer : theta)
    for (const auto& q : layer) {
      v.push_back(q[0]);
      v.push_back(q[1]);
    }
  return v;
}

HeaParameters HeaParameters::from_flat(const std::vector<real>& v, int layers,
                                       int n) {
  MBQ_REQUIRE(static_cast<int>(v.size()) == hea_parameter_count(layers, n),
              "flat HEA vector has wrong length " << v.size());
  HeaParameters p;
  p.theta.resize(layers);
  std::size_t i = 0;
  for (auto& layer : p.theta) {
    layer.resize(n);
    for (auto& q : layer) {
      q[0] = v[i++];
      q[1] = v[i++];
    }
  }
  return p;
}

int hea_parameter_count(int layers, int n) { return 2 * layers * n; }

ParamCircuit hea_param_circuit(const Graph& coupling, int layers) {
  const int n = coupling.num_vertices();
  MBQ_REQUIRE(layers >= 1, "HEA needs >= 1 layer");
  ParamCircuit pc(n);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) {
      pc.rz(q, Param::gamma(layer * n + q));
      pc.rx(q, Param::beta(layer * n + q));
    }
    for (const Edge& e : coupling.edges()) pc.cz(e.u, e.v);
  }
  return pc;
}

Angles hea_angles(const HeaParameters& params, int num_qubits) {
  MBQ_REQUIRE(params.layers() >= 1, "HEA needs >= 1 layer");
  const std::size_t width = num_qubits > 0
                                ? static_cast<std::size_t>(num_qubits)
                                : params.theta.front().size();
  Angles a;
  for (const auto& layer : params.theta) {
    // A jagged theta — or one wider/narrower than the circuit it will
    // be bound to — would silently shift every later (layer, qubit)
    // slot in the gamma/beta = layer*n + q packing.
    MBQ_REQUIRE(layer.size() == width,
                "HEA layer width mismatch: " << layer.size() << " vs "
                                             << width);
    for (const auto& q : layer) {
      a.gamma.push_back(q[0]);
      a.beta.push_back(q[1]);
    }
  }
  return a;
}

Circuit hea_circuit(const Graph& coupling, const HeaParameters& params) {
  // One source of truth: bind the declarative template, so the closure
  // and ParamCircuit paths cannot drift apart (hea_angles validates the
  // layer widths against the coupling graph).
  return hea_param_circuit(coupling, params.layers())
      .instantiate(hea_angles(params, coupling.num_vertices()));
}

}  // namespace mbq::qaoa
