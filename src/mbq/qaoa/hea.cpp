#include "mbq/qaoa/hea.h"

#include "mbq/common/error.h"
#include "mbq/common/rng.h"

namespace mbq::qaoa {

HeaParameters HeaParameters::random(int layers, int n, Rng& rng) {
  MBQ_REQUIRE(layers >= 1 && n >= 1, "bad HEA shape");
  HeaParameters p;
  p.theta.resize(layers);
  for (auto& layer : p.theta) {
    layer.resize(n);
    for (auto& q : layer) q = {rng.angle(), rng.angle()};
  }
  return p;
}

std::vector<real> HeaParameters::flat() const {
  std::vector<real> v;
  for (const auto& layer : theta)
    for (const auto& q : layer) {
      v.push_back(q[0]);
      v.push_back(q[1]);
    }
  return v;
}

HeaParameters HeaParameters::from_flat(const std::vector<real>& v, int layers,
                                       int n) {
  MBQ_REQUIRE(static_cast<int>(v.size()) == hea_parameter_count(layers, n),
              "flat HEA vector has wrong length " << v.size());
  HeaParameters p;
  p.theta.resize(layers);
  std::size_t i = 0;
  for (auto& layer : p.theta) {
    layer.resize(n);
    for (auto& q : layer) {
      q[0] = v[i++];
      q[1] = v[i++];
    }
  }
  return p;
}

int hea_parameter_count(int layers, int n) { return 2 * layers * n; }

Circuit hea_circuit(const Graph& coupling, const HeaParameters& params) {
  const int n = coupling.num_vertices();
  MBQ_REQUIRE(params.layers() >= 1, "HEA needs >= 1 layer");
  Circuit c(n);
  for (const auto& layer : params.theta) {
    MBQ_REQUIRE(static_cast<int>(layer.size()) == n,
                "HEA layer width mismatch");
    for (int q = 0; q < n; ++q) {
      c.rz(q, layer[q][0]);
      c.rx(q, layer[q][1]);
    }
    for (const Edge& e : coupling.edges()) c.cz(e.u, e.v);
  }
  return c;
}

}  // namespace mbq::qaoa
