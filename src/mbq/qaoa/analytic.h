#pragma once
// Closed-form p=1 MaxCut expectation (Wang, Hadfield, Jiang, Rieffel,
// PRA 97, 022304 (2018); ref [40] of the paper).
//
// For QAOA_1 with phase exp(-i gamma C), C = sum (1 - Z_u Z_v)/2, and
// mixer exp(-i beta B), the per-edge cut expectation has a closed form in
// the degrees d_u, d_v and the number of common neighbours lambda_uv.
// This is an independent oracle for the whole QAOA stack: it involves no
// statevector at all and must agree with the simulator to 1e-9.

#include "mbq/graph/graph.h"
#include "mbq/qaoa/qaoa.h"

namespace mbq::qaoa {

/// <C_uv> for a single edge at angles (gamma, beta).
real maxcut_p1_edge_expectation(const Graph& g, const Edge& e, real gamma,
                                real beta);

/// <C> = sum over edges.
real maxcut_p1_expectation(const Graph& g, real gamma, real beta);

/// Best (gamma, beta) on a grid for the analytic p=1 expectation.
struct P1Optimum {
  real gamma = 0.0;
  real beta = 0.0;
  real value = 0.0;
};
P1Optimum maxcut_p1_grid_optimum(const Graph& g, int grid = 64);

}  // namespace mbq::qaoa
