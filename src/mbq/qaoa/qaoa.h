#pragma once
// Gate-model QAOA: circuit construction and fast simulation.
//
// Two independent execution paths are provided and cross-checked:
//  1. qaoa_circuit() builds an explicit gate list (Fig. 2 of the paper)
//     executed by the generic circuit simulator;
//  2. qaoa_state()/qaoa_expectation() use the fast diagonal path — the
//     phase layer multiplies amplitudes by exp(-i gamma c(x)) elementwise
//     and the mixer is a product of single-qubit rotations.

#include <cstdint>
#include <vector>

#include "mbq/circuit/circuit.h"
#include "mbq/common/rng.h"
#include "mbq/qaoa/hamiltonian.h"
#include "mbq/sim/statevector.h"

namespace mbq::qaoa {

struct Angles {
  std::vector<real> gamma;
  std::vector<real> beta;

  Angles() = default;
  Angles(std::vector<real> g, std::vector<real> b);
  /// Number of layers p.
  int p() const { return static_cast<int>(gamma.size()); }
  /// Random angles in (-pi, pi] x (-pi/2, pi/2].
  static Angles random(int p, Rng& rng);
  /// Linear-ramp initialization (the standard annealing-inspired guess).
  static Angles linear_ramp(int p, real dt = 0.75);
  /// Flatten to a single parameter vector (gamma_1..gamma_p, beta_1..).
  std::vector<real> flat() const;
  static Angles from_flat(const std::vector<real>& v);
};

/// QAOA_p circuit: H layer, then alternating phase gadgets (one per Ising
/// term, angle 2*gamma_k*w_S) and mixer rotations rx(2*beta_k).
Circuit qaoa_circuit(const CostHamiltonian& c, const Angles& a);

/// Fast path: |gamma beta> via diagonal phase application.  cost_table
/// may be precomputed (pass non-null) to amortize across calls.
Statevector qaoa_state(const CostHamiltonian& c, const Angles& a,
                       const std::vector<real>* cost_table = nullptr);

/// <C> at the given angles.
real qaoa_expectation(const CostHamiltonian& c, const Angles& a,
                      const std::vector<real>* cost_table = nullptr);

/// Sample measurement outcomes from the QAOA state.
std::vector<std::uint64_t> qaoa_sample(const CostHamiltonian& c,
                                       const Angles& a, int shots, Rng& rng);

}  // namespace mbq::qaoa
