#include "mbq/qaoa/param_circuit.h"

#include <algorithm>
#include <unordered_set>

#include "mbq/common/error.h"

namespace mbq::qaoa {

real Param::evaluate(const Angles& a) const {
  switch (source) {
    case Source::Constant:
      return offset + scale;  // the documented affine form with source = 1
    case Source::Gamma:
      MBQ_REQUIRE(index >= 0 && index < static_cast<int>(a.gamma.size()),
                  "gate references gamma[" << index << "], angles carry "
                                           << a.gamma.size());
      return offset + scale * a.gamma[static_cast<std::size_t>(index)];
    case Source::Beta:
      MBQ_REQUIRE(index >= 0 && index < static_cast<int>(a.beta.size()),
                  "gate references beta[" << index << "], angles carry "
                                          << a.beta.size());
      return offset + scale * a.beta[static_cast<std::size_t>(index)];
  }
  throw InternalError("unreachable param source");
}

ParamCircuit::ParamCircuit(int num_qubits) : n_(num_qubits) {
  MBQ_REQUIRE(num_qubits >= 1,
              "circuit needs >= 1 qubit, got " << num_qubits);
}

ParamCircuit& ParamCircuit::h(int q) { return append({GateKind::H, {q}}); }
ParamCircuit& ParamCircuit::x(int q) { return append({GateKind::X, {q}}); }
ParamCircuit& ParamCircuit::y(int q) { return append({GateKind::Y, {q}}); }
ParamCircuit& ParamCircuit::z(int q) { return append({GateKind::Z, {q}}); }
ParamCircuit& ParamCircuit::s(int q) { return append({GateKind::S, {q}}); }
ParamCircuit& ParamCircuit::sdg(int q) { return append({GateKind::Sdg, {q}}); }
ParamCircuit& ParamCircuit::t(int q) { return append({GateKind::T, {q}}); }
ParamCircuit& ParamCircuit::tdg(int q) { return append({GateKind::Tdg, {q}}); }

ParamCircuit& ParamCircuit::rx(int q, Param theta) {
  return append({GateKind::Rx, {q}, theta});
}

ParamCircuit& ParamCircuit::rz(int q, Param theta) {
  return append({GateKind::Rz, {q}, theta});
}

ParamCircuit& ParamCircuit::cz(int a, int b) {
  return append({GateKind::Cz, {a, b}});
}

ParamCircuit& ParamCircuit::cx(int control, int target) {
  return append({GateKind::Cx, {control, target}});
}

ParamCircuit& ParamCircuit::phase_gadget(std::vector<int> support,
                                         Param theta) {
  return append({GateKind::PhaseGadget, std::move(support), theta});
}

ParamCircuit& ParamCircuit::controlled_exp_x(int target,
                                             std::vector<int> controls,
                                             Param beta, int ctrl_value) {
  std::vector<int> qs{target};
  qs.insert(qs.end(), controls.begin(), controls.end());
  ParamGate g{GateKind::ControlledExpX, std::move(qs), beta, ctrl_value};
  return append(std::move(g));
}

ParamCircuit& ParamCircuit::xy_pair(int u, int v, Param beta) {
  // Guard up front: a gadget append throwing mid-sequence would leave
  // stray H gates behind on a repeated or out-of-range qubit.
  MBQ_REQUIRE(u != v, "XY mixer needs distinct qubits");
  for (int q : {u, v})
    MBQ_REQUIRE(q >= 0 && q < n_,
                "qubit " << q << " out of range [0," << n_ << ")");
  // The defining gate sequence (mixers.h xy_mixer_pair delegates here):
  // both factors are ZZ phase gadgets at angle -2*beta, conjugated by H
  // (for XX) and by W = S·H (for YY).
  h(u).h(v);
  phase_gadget({u, v}, beta.scaled(-2.0));
  h(u).h(v);
  sdg(u).h(u).sdg(v).h(v);
  phase_gadget({u, v}, beta.scaled(-2.0));
  h(u).s(u).h(v).s(v);
  return *this;
}

ParamCircuit& ParamCircuit::xy_ring(const std::vector<int>& ring, Param beta) {
  MBQ_REQUIRE(ring.size() >= 2, "ring needs >= 2 vertices");
  // Validate the whole ring before mutating: see xy_pair.
  for (int q : ring)
    MBQ_REQUIRE(q >= 0 && q < n_,
                "qubit " << q << " out of range [0," << n_ << ")");
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring.size() == 2 && i == 1) break;  // avoid the duplicate pair
    xy_pair(ring[i], ring[(i + 1) % ring.size()], beta);
  }
  return *this;
}

ParamCircuit& ParamCircuit::append(ParamGate g) {
  std::unordered_set<int> seen;
  for (int q : g.qubits) {
    MBQ_REQUIRE(q >= 0 && q < n_,
                "qubit " << q << " out of range [0," << n_ << ")");
    MBQ_REQUIRE(seen.insert(q).second, "repeated qubit " << q << " in gate");
  }
  bool parameterized = false;
  switch (g.kind) {
    case GateKind::Cz:
    case GateKind::Cx:
      MBQ_REQUIRE(g.qubits.size() == 2, "two-qubit gate needs 2 qubits");
      break;
    case GateKind::PhaseGadget:
      MBQ_REQUIRE(!g.qubits.empty(), "phase gadget needs support");
      parameterized = true;
      break;
    case GateKind::ControlledExpX:
      MBQ_REQUIRE(!g.qubits.empty(), "controlled gate needs a target");
      MBQ_REQUIRE(g.ctrl_value == 0 || g.ctrl_value == 1,
                  "ctrl_value must be 0/1");
      parameterized = true;
      break;
    case GateKind::Rx:
    case GateKind::Rz:
      MBQ_REQUIRE(g.qubits.size() == 1, "single-qubit gate needs 1 qubit");
      parameterized = true;
      break;
    default:
      MBQ_REQUIRE(g.qubits.size() == 1, "single-qubit gate needs 1 qubit");
  }
  // Canonicality: angle-less gates carry exactly the default angle and
  // ctrl_value, so equal circuits have equal (and equal-encoding) gate
  // lists — the invariant WorkloadSpec::validate documents, enforced
  // here for the wire-format decoder too.
  if (g.kind != GateKind::ControlledExpX)
    MBQ_REQUIRE(g.ctrl_value == 0, "ctrl_value is only meaningful on "
                                   "ControlledExpX gates");
  if (!parameterized)
    MBQ_REQUIRE(g.angle == Param::constant(0.0),
                "angle expression on a parameterless "
                    << gate_kind_name(g.kind) << " gate");
  if (g.angle.source != Param::Source::Constant) {
    MBQ_REQUIRE(g.angle.index >= 0,
                "negative parameter index " << g.angle.index);
    int& floor = g.angle.source == Param::Source::Gamma ? min_gamma_
                                                        : min_beta_;
    floor = std::max(floor, g.angle.index + 1);
  }
  gates_.push_back(std::move(g));
  return *this;
}

ParamCircuit& ParamCircuit::append(const ParamCircuit& other) {
  MBQ_REQUIRE(other.n_ <= n_, "appended circuit is wider");
  for (const ParamGate& g : other.gates_) append(g);
  return *this;
}

Circuit ParamCircuit::instantiate(const Angles& a) const {
  MBQ_REQUIRE(n_ >= 1, "cannot instantiate an empty ParamCircuit");
  Circuit c(n_);
  for (const ParamGate& g : gates_) {
    Gate gate{g.kind, g.qubits, g.angle.evaluate(a)};
    gate.ctrl_value = g.ctrl_value;
    c.append(gate);
  }
  return c;
}

}  // namespace mbq::qaoa
