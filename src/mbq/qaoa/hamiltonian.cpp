#include "mbq/qaoa/hamiltonian.h"

#include <algorithm>
#include <map>

#include "mbq/common/bits.h"
#include "mbq/common/error.h"
#include "mbq/common/parallel.h"

namespace mbq::qaoa {

CostHamiltonian::CostHamiltonian(int num_qubits, real constant)
    : n_(num_qubits), constant_(constant) {
  MBQ_REQUIRE(num_qubits >= 1 && num_qubits <= 63,
              "qubit count out of range: " << num_qubits);
}

void CostHamiltonian::add_term(std::vector<int> support, real coeff) {
  // Repeated indices cancel pairwise (Z^2 = I).
  std::sort(support.begin(), support.end());
  std::vector<int> reduced;
  for (std::size_t i = 0; i < support.size();) {
    const int q = support[i];
    MBQ_REQUIRE(q >= 0 && q < n_, "term qubit out of range: " << q);
    std::size_t j = i;
    while (j < support.size() && support[j] == q) ++j;
    if ((j - i) % 2 == 1) reduced.push_back(q);
    i = j;
  }
  if (reduced.empty()) {
    constant_ += coeff;
    return;
  }
  for (auto& t : terms_) {
    if (t.support == reduced) {
      t.coeff += coeff;
      return;
    }
  }
  terms_.push_back({coeff, std::move(reduced)});
}

real CostHamiltonian::evaluate(std::uint64_t x) const {
  real c = constant_;
  for (const auto& t : terms_) {
    int par = 0;
    for (int q : t.support) par ^= get_bit(x, q);
    c += par ? -t.coeff : t.coeff;
  }
  return c;
}

std::vector<real> CostHamiltonian::cost_table() const {
  MBQ_REQUIRE(n_ <= 28, "cost table too large for n=" << n_);
  std::vector<real> table(std::size_t{1} << n_);
  // Precompute masks once; the per-x loop is the hot path.
  std::vector<std::uint64_t> masks(terms_.size());
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    std::uint64_t m = 0;
    for (int q : terms_[i].support) m |= 1ULL << q;
    masks[i] = m;
  }
  const real c0 = constant_;
  auto* out = table.data();
  parallel_for(static_cast<std::int64_t>(table.size()), [&](std::int64_t x) {
    real c = c0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      const int par = parity64(static_cast<std::uint64_t>(x) & masks[i]);
      c += par ? -terms_[i].coeff : terms_[i].coeff;
    }
    out[x] = c;
  });
  return table;
}

int CostHamiltonian::max_order() const {
  std::size_t k = 0;
  for (const auto& t : terms_) k = std::max(k, t.support.size());
  return static_cast<int>(k);
}

bool CostHamiltonian::has_linear_terms() const {
  return num_terms_of_order(1) > 0;
}

int CostHamiltonian::num_terms_of_order(int k) const {
  int c = 0;
  for (const auto& t : terms_)
    c += static_cast<int>(t.support.size()) == k;
  return c;
}

Graph CostHamiltonian::interaction_graph() const {
  Graph g(n_);
  for (const auto& t : terms_) {
    for (std::size_t i = 0; i < t.support.size(); ++i)
      for (std::size_t j = i + 1; j < t.support.size(); ++j)
        if (!g.has_edge(t.support[i], t.support[j]))
          g.add_edge(t.support[i], t.support[j]);
  }
  return g;
}

CostHamiltonian CostHamiltonian::maxcut(const Graph& g) {
  CostHamiltonian c(g.num_vertices(),
                    static_cast<real>(g.num_edges()) / 2.0);
  for (const Edge& e : g.edges()) c.add_term({e.u, e.v}, -0.5);
  return c;
}

CostHamiltonian CostHamiltonian::maxcut_weighted(
    const Graph& g, const std::vector<real>& weights) {
  MBQ_REQUIRE(static_cast<int>(weights.size()) == g.num_edges(),
              "weight count " << weights.size() << " != edge count "
                              << g.num_edges());
  real total = 0.0;
  for (real w : weights) total += w;
  CostHamiltonian c(g.num_vertices(), total / 2.0);
  const auto& edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i)
    c.add_term({edges[i].u, edges[i].v}, -weights[i] / 2.0);
  return c;
}

CostHamiltonian CostHamiltonian::qubo(
    int n, const std::vector<real>& linear,
    const std::vector<std::pair<Edge, real>>& quad, real constant) {
  MBQ_REQUIRE(static_cast<int>(linear.size()) == n,
              "linear coefficient count " << linear.size() << " != n=" << n);
  CostHamiltonian c(n, constant);
  // x_i = (1 - Z_i)/2.
  for (int i = 0; i < n; ++i) {
    if (linear[i] == 0.0) continue;
    c.constant_ += linear[i] / 2.0;
    c.add_term({i}, -linear[i] / 2.0);
  }
  for (const auto& [e, w] : quad) {
    MBQ_REQUIRE(e.u != e.v, "QUBO quadratic term on a single variable");
    if (w == 0.0) continue;
    // x_u x_v = (1 - Z_u - Z_v + Z_u Z_v)/4.
    c.constant_ += w / 4.0;
    c.add_term({e.u}, -w / 4.0);
    c.add_term({e.v}, -w / 4.0);
    c.add_term({e.u, e.v}, w / 4.0);
  }
  return c;
}

CostHamiltonian CostHamiltonian::independent_set_size(int n) {
  CostHamiltonian c(n, static_cast<real>(n) / 2.0);
  for (int i = 0; i < n; ++i) c.add_term({i}, -0.5);
  return c;
}

CostHamiltonian CostHamiltonian::mis_penalized(const Graph& g, real penalty) {
  std::vector<real> linear(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<std::pair<Edge, real>> quad;
  for (const Edge& e : g.edges()) quad.push_back({e, -penalty});
  return qubo(g.num_vertices(), linear, quad);
}

}  // namespace mbq::qaoa
